module d2t2

go 1.22
