package d2t2_test

import (
	"fmt"

	"d2t2"
)

// ExampleParseKernel shows the tensor index notation the library accepts.
func ExampleParseKernel() {
	k, err := d2t2.ParseKernel("C(i,j) = A(i,k) * B(k,j) | order: i,k,j")
	if err != nil {
		panic(err)
	}
	fmt.Println(k)
	// Output: C(i,j) = A(i,k) * B(k,j) | order: i,k,j
}

// ExampleOptimize runs the full D2T2 pipeline on a tiny matrix.
func ExampleOptimize() {
	// An 8x8 diagonal matrix: every tile on the diagonal, nothing else.
	a := d2t2.NewTensor(8, 8)
	for i := 0; i < 8; i++ {
		a.Set([]int{i, i}, 1)
	}
	inputs := d2t2.Inputs{"A": a, "B": a.Transpose()}

	plan, err := d2t2.Optimize(d2t2.Gustavson(), inputs, d2t2.Options{
		BufferWords: d2t2.DenseTileWords(4, 4),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("base tile:", plan.BaseTile)

	report, err := plan.Measure()
	if err != nil {
		panic(err)
	}
	// Diagonal x diagonal: every A tile is fetched exactly once.
	fmt.Println("A words:", report.InputWords["A"])
	// Output:
	// base tile: 4
	// A words: 38
}

// ExampleTensor_Spy renders the structure of a small banded matrix.
func ExampleTensor_Spy() {
	a := d2t2.NewTensor(8, 8)
	for i := 0; i < 8; i++ {
		a.Set([]int{i, i}, 1)
	}
	fmt.Println(a.Spy(8, 4))
	// Output:
	// +--------+
	// |..      |
	// |  ..    |
	// |    ..  |
	// |      ..|
	// +--------+
}

// ExampleMeasureConfig prices an explicit tile configuration.
func ExampleMeasureConfig() {
	a := d2t2.NewTensor(16, 16)
	for i := 0; i < 16; i++ {
		a.Set([]int{i, (i + 1) % 16}, float64(i))
	}
	inputs := d2t2.Inputs{"A": a, "B": a.Transpose()}
	rep, err := d2t2.MeasureConfig(d2t2.Gustavson(), inputs,
		d2t2.TileConfig{"i": 4, "k": 4, "j": 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("MACs:", rep.MACs)
	// Output: MACs: 16
}
