package d2t2

import (
	"d2t2/internal/einsum"
	"d2t2/internal/model"
	"d2t2/internal/stats"
)

// StatsSummary exposes the Tile Statistics Collector's outputs for one
// tensor at a conservative square tiling (paper §4.3–4.4).
type StatsSummary struct {
	// SizeTile is the mean tile footprint in words; MaxTile the maximum;
	// NumTiles the non-empty tile count.
	SizeTile float64
	MaxTile  int
	NumTiles int
	// PrTileIdx are the per-outer-level conditional occupancy
	// probabilities; ProbIndex the per-inner-level fiber densities.
	PrTileIdx []float64
	ProbIndex []float64
	// CorrSums holds, per axis, the sum of the Corrs shift-correlation
	// over one tile — the output-reuse proxy thresholded in Fig. 8.
	CorrSums []float64
}

// CollectStats tiles the tensor with square tiles of the given dimension
// and returns the collected statistics.
func CollectStats(t *Tensor, tile int) (*StatsSummary, error) {
	dims := make([]int, t.Order())
	for a := range dims {
		dims[a] = tile
		if dims[a] > t.coo.Dims[a] {
			dims[a] = t.coo.Dims[a]
		}
	}
	s, _, err := stats.Collect(t.coo, dims, nil, nil)
	if err != nil {
		return nil, err
	}
	return summarize(s, dims), nil
}

// summarize flattens collected statistics into the public summary.
func summarize(s *stats.Stats, dims []int) *StatsSummary {
	out := &StatsSummary{
		SizeTile:  s.SizeTile,
		MaxTile:   s.MaxTile,
		NumTiles:  s.NumTiles,
		PrTileIdx: append([]float64(nil), s.PrTileIdx...),
		ProbIndex: append([]float64(nil), s.ProbIndex...),
	}
	for a := range dims {
		out.CorrSums = append(out.CorrSums, s.CorrSum(a, dims[a]))
	}
	return out
}

// PredictConfig runs the probabilistic traffic model for one tile
// configuration and returns the predicted total traffic in megabytes.
// Statistics are collected at a conservative square tiling of dimension
// statsTile.
func PredictConfig(k *Kernel, inputs Inputs, cfg TileConfig, statsTile int) (float64, error) {
	st, err := collectKernelStats(k.expr, inputs, statsTile)
	if err != nil {
		return 0, err
	}
	return predictWithStats(k, cfg, st)
}

// predictWithStats prices one configuration given collected statistics.
func predictWithStats(k *Kernel, cfg TileConfig, st map[string]*stats.Stats) (float64, error) {
	pred, err := model.New(k.expr, st)
	if err != nil {
		return 0, err
	}
	p, err := pred.Predict(model.Config(cfg))
	if err != nil {
		return 0, err
	}
	return p.Total() * 4 / (1 << 20), nil
}

func collectKernelStats(e *einsum.Expr, inputs Inputs, tile int) (map[string]*stats.Stats, error) {
	out := make(map[string]*stats.Stats)
	for _, ref := range e.Inputs() {
		t, ok := inputs[ref.Name]
		if !ok {
			return nil, errMissing(ref.Name)
		}
		dims := make([]int, len(ref.Indices))
		for a := range dims {
			dims[a] = tile
			if dims[a] > t.coo.Dims[a] {
				dims[a] = t.coo.Dims[a]
			}
		}
		s, _, err := stats.Collect(t.coo, dims, e.LevelOrder(ref), nil)
		if err != nil {
			return nil, err
		}
		out[ref.Name] = s
	}
	return out, nil
}

type missingError string

func (e missingError) Error() string { return "d2t2: missing input tensor " + string(e) }

func errMissing(name string) error { return missingError(name) }
