package tensor

import "strings"

// Spy renders an ASCII occupancy plot of a matrix, the textual analogue
// of MATLAB's spy(): the matrix is bucketed into a width×height grid and
// each cell prints a glyph by occupancy density. Handy for eyeballing
// the structural classes the tiling optimizer reacts to.
func (t *COO) Spy(width, height int) string {
	if t.Order() != 2 {
		return "(spy requires a matrix)"
	}
	if width < 1 {
		width = 1
	}
	if height < 1 {
		height = 1
	}
	if width > t.Dims[1] {
		width = t.Dims[1]
	}
	if height > t.Dims[0] {
		height = t.Dims[0]
	}
	grid := make([]int, width*height)
	maxCount := 0
	for p := 0; p < t.NNZ(); p++ {
		r := t.Crds[0][p] * height / t.Dims[0]
		c := t.Crds[1][p] * width / t.Dims[1]
		grid[r*width+c]++
		if grid[r*width+c] > maxCount {
			maxCount = grid[r*width+c]
		}
	}
	glyphs := []byte(" .:+*#@")
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for r := 0; r < height; r++ {
		b.WriteByte('|')
		for c := 0; c < width; c++ {
			n := grid[r*width+c]
			if n == 0 {
				b.WriteByte(' ')
				continue
			}
			// Log-ish bucketing so light cells stay visible.
			idx := 1
			for threshold := 1; idx < len(glyphs)-1 && n > threshold; idx++ {
				threshold *= 4
			}
			b.WriteByte(glyphs[idx])
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+")
	return b.String()
}
