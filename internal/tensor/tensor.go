// Package tensor provides the coordinate-list (COO) sparse tensor value
// type that the rest of the system is built on. A COO tensor stores one
// coordinate tuple and one value per stored (structurally nonzero) entry.
//
// The package deliberately keeps the representation simple and fully
// in-memory: every downstream component (CSF construction, tiling, the
// statistics collector, the measurement backend) starts from a COO tensor.
package tensor

import (
	"fmt"
	"sort"
)

// COO is an order-N sparse tensor in coordinate format. Crds holds one
// slice per stored entry position: Crds[axis][p] is the coordinate of the
// p-th entry along axis. Vals[p] is the value of the p-th entry.
//
// A COO may transiently hold duplicate coordinates (e.g. while being
// assembled); call Dedup to combine them. Most consumers require sorted,
// deduplicated input and say so in their contracts.
type COO struct {
	Dims []int
	Crds [][]int
	Vals []float64
}

// New returns an empty COO tensor with the given dimension sizes.
func New(dims ...int) *COO {
	d := make([]int, len(dims))
	copy(d, dims)
	crds := make([][]int, len(dims))
	return &COO{Dims: d, Crds: crds}
}

// Order returns the number of dimensions (the tensor order).
func (t *COO) Order() int { return len(t.Dims) }

// NNZ returns the number of stored entries.
func (t *COO) NNZ() int { return len(t.Vals) }

// Density returns NNZ divided by the dense size of the tensor.
func (t *COO) Density() float64 {
	size := 1.0
	for _, d := range t.Dims {
		size *= float64(d)
	}
	if size == 0 {
		return 0
	}
	return float64(t.NNZ()) / size
}

// Append adds an entry. The coordinate slice must have one coordinate per
// dimension. Append does not check for duplicates; call Dedup afterwards
// if duplicates are possible.
func (t *COO) Append(coord []int, val float64) {
	if len(coord) != len(t.Dims) {
		//d2t2:ignore panicpolicy Append is the per-nonzero hot path; arity is a programmer invariant (callers build coord from t.Dims) and an error return would cost every construction loop
		panic(fmt.Sprintf("tensor: coordinate arity %d != order %d", len(coord), len(t.Dims)))
	}
	for a, c := range coord {
		if c < 0 || c >= t.Dims[a] {
			//d2t2:ignore panicpolicy same hot-path invariant: out-of-range coordinates are generator bugs, not recoverable input errors
			panic(fmt.Sprintf("tensor: coordinate %d out of range [0,%d) on axis %d", c, t.Dims[a], a))
		}
		t.Crds[a] = append(t.Crds[a], c)
	}
	t.Vals = append(t.Vals, val)
}

// At returns the coordinate tuple of entry p as a fresh slice.
func (t *COO) At(p int) []int {
	c := make([]int, t.Order())
	for a := range c {
		c[a] = t.Crds[a][p]
	}
	return c
}

// Clone returns a deep copy of the tensor.
func (t *COO) Clone() *COO {
	c := New(t.Dims...)
	for a := range t.Crds {
		c.Crds[a] = append([]int(nil), t.Crds[a]...)
	}
	c.Vals = append([]float64(nil), t.Vals...)
	return c
}

// Permute returns a new tensor whose axes are reordered so that new axis a
// is old axis perm[a]. For a matrix, Permute(1,0) is the transpose.
func (t *COO) Permute(perm ...int) *COO {
	if len(perm) != t.Order() {
		//d2t2:ignore panicpolicy permutations are literal at every call site; arity mismatch is a programmer invariant
		panic("tensor: permutation arity mismatch")
	}
	dims := make([]int, len(perm))
	for a, p := range perm {
		dims[a] = t.Dims[p]
	}
	out := New(dims...)
	for a, p := range perm {
		out.Crds[a] = append([]int(nil), t.Crds[p]...)
	}
	out.Vals = append([]float64(nil), t.Vals...)
	return out
}

// Transpose is Permute(1,0) and panics unless the tensor is a matrix.
func (t *COO) Transpose() *COO {
	if t.Order() != 2 {
		//d2t2:ignore panicpolicy documented contract ("panics unless the tensor is a matrix"); callers transpose matrices by construction
		panic("tensor: Transpose requires a matrix")
	}
	return t.Permute(1, 0)
}

// lessAt reports whether entry p sorts before entry q in lexicographic
// order of the axes listed in order.
func (t *COO) lessAt(order []int, p, q int) bool {
	for _, a := range order {
		cp, cq := t.Crds[a][p], t.Crds[a][q]
		if cp != cq {
			return cp < cq
		}
	}
	return false
}

// Sort sorts entries lexicographically by the given axis order. If order
// is nil the natural axis order (0,1,2,...) is used.
func (t *COO) Sort(order []int) {
	if order == nil {
		order = make([]int, t.Order())
		for a := range order {
			order[a] = a
		}
	}
	idx := make([]int, t.NNZ())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return t.lessAt(order, idx[i], idx[j]) })
	t.applyPermutation(idx)
}

// applyPermutation reorders entries so new position i holds old entry idx[i].
func (t *COO) applyPermutation(idx []int) {
	for a := range t.Crds {
		old := t.Crds[a]
		nw := make([]int, len(old))
		for i, p := range idx {
			nw[i] = old[p]
		}
		t.Crds[a] = nw
	}
	oldV := t.Vals
	nv := make([]float64, len(oldV))
	for i, p := range idx {
		nv[i] = oldV[p]
	}
	t.Vals = nv
}

// Dedup sorts the tensor in natural axis order and combines duplicate
// coordinates by summing their values. Entries whose combined value is
// exactly zero are retained (structural nonzeros), matching sparse-format
// convention.
func (t *COO) Dedup() {
	if t.NNZ() == 0 {
		return
	}
	t.Sort(nil)
	w := 0
	for r := 1; r < t.NNZ(); r++ {
		if t.sameCoord(w, r) {
			t.Vals[w] += t.Vals[r]
			continue
		}
		w++
		for a := range t.Crds {
			t.Crds[a][w] = t.Crds[a][r]
		}
		t.Vals[w] = t.Vals[r]
	}
	n := w + 1
	for a := range t.Crds {
		t.Crds[a] = t.Crds[a][:n]
	}
	t.Vals = t.Vals[:n]
}

func (t *COO) sameCoord(p, q int) bool {
	for a := range t.Crds {
		if t.Crds[a][p] != t.Crds[a][q] {
			return false
		}
	}
	return true
}

// Equal reports whether two tensors hold identical dims, coordinates and
// values after sorting both in natural order. It is intended for tests.
func Equal(a, b *COO) bool {
	if a.Order() != b.Order() || a.NNZ() != b.NNZ() {
		return false
	}
	for i, d := range a.Dims {
		if b.Dims[i] != d {
			return false
		}
	}
	ac, bc := a.Clone(), b.Clone()
	ac.Sort(nil)
	bc.Sort(nil)
	for p := 0; p < ac.NNZ(); p++ {
		for x := range ac.Crds {
			if ac.Crds[x][p] != bc.Crds[x][p] {
				return false
			}
		}
		if ac.Vals[p] != bc.Vals[p] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether two tensors agree structurally and their
// values agree within a relative tolerance — use for results whose
// floating-point summation order may differ.
func AlmostEqual(a, b *COO, tol float64) bool {
	if a.Order() != b.Order() || a.NNZ() != b.NNZ() {
		return false
	}
	for i, d := range a.Dims {
		if b.Dims[i] != d {
			return false
		}
	}
	ac, bc := a.Clone(), b.Clone()
	ac.Sort(nil)
	bc.Sort(nil)
	for p := 0; p < ac.NNZ(); p++ {
		for x := range ac.Crds {
			if ac.Crds[x][p] != bc.Crds[x][p] {
				return false
			}
		}
		va, vb := ac.Vals[p], bc.Vals[p]
		diff := va - vb
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if va > 1 || va < -1 {
			if va < 0 {
				scale = -va
			} else {
				scale = va
			}
		}
		if diff > tol*scale {
			return false
		}
	}
	return true
}

// Validate checks internal consistency (slice lengths and bounds) and
// returns a descriptive error on the first violation.
func (t *COO) Validate() error {
	if len(t.Crds) != len(t.Dims) {
		return fmt.Errorf("tensor: %d coordinate axes for order-%d tensor", len(t.Crds), len(t.Dims))
	}
	n := t.NNZ()
	for a := range t.Crds {
		if len(t.Crds[a]) != n {
			return fmt.Errorf("tensor: axis %d has %d coords, want %d", a, len(t.Crds[a]), n)
		}
		for p, c := range t.Crds[a] {
			if c < 0 || c >= t.Dims[a] {
				return fmt.Errorf("tensor: entry %d axis %d coordinate %d out of range [0,%d)", p, a, c, t.Dims[a])
			}
		}
	}
	return nil
}

// FromDense builds a COO matrix from a dense row-major [][]float64,
// storing every nonzero element.
func FromDense(rows [][]float64) *COO {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	t := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rows[i][j] != 0 {
				t.Append([]int{i, j}, rows[i][j])
			}
		}
	}
	return t
}

// ToDense materializes the tensor as a dense nested slice. It panics for
// tensors that are not matrices and is intended for small test inputs.
func (t *COO) ToDense() [][]float64 {
	if t.Order() != 2 {
		//d2t2:ignore panicpolicy documented contract; ToDense is a test-support helper for small matrices
		panic("tensor: ToDense requires a matrix")
	}
	out := make([][]float64, t.Dims[0])
	for i := range out {
		out[i] = make([]float64, t.Dims[1])
	}
	for p := 0; p < t.NNZ(); p++ {
		out[t.Crds[0][p]][t.Crds[1][p]] += t.Vals[p]
	}
	return out
}

// DegreeOrder returns the permutation that sorts coordinates of the
// given axis by decreasing occupancy (slice nnz): perm[new] = old. Used
// to cluster hubs of graph matrices before tiling, which concentrates
// occupancy into fewer, denser tiles.
func (t *COO) DegreeOrder(axis int) []int {
	counts := make([]int, t.Dims[axis])
	for p := 0; p < t.NNZ(); p++ {
		counts[t.Crds[axis][p]]++
	}
	perm := make([]int, t.Dims[axis])
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return counts[perm[a]] > counts[perm[b]] })
	return perm
}

// Relabel returns a copy with the given axis' coordinates renamed so the
// value at old position perm[new] becomes new — i.e. applying the
// permutation returned by DegreeOrder clusters heavy slices at low
// coordinates. Pass the same permutation to the matching axes of other
// operands to keep a computation consistent.
func (t *COO) Relabel(axis int, perm []int) *COO {
	if len(perm) != t.Dims[axis] {
		//d2t2:ignore panicpolicy the permutation comes from DegreeOrder over the same axis; a length mismatch is a programmer invariant
		panic("tensor: relabel permutation has wrong length")
	}
	inv := make([]int, len(perm))
	for n, o := range perm {
		inv[o] = n
	}
	out := t.Clone()
	for p := 0; p < out.NNZ(); p++ {
		out.Crds[axis][p] = inv[out.Crds[axis][p]]
	}
	return out
}

// DropAxis returns a lower-order tensor with the given axis removed,
// summing entries that collide. It mirrors the paper's FF* preprocessing
// (FROSTT higher-order tensors flattened to 3-tensors by dropping modes).
func (t *COO) DropAxis(axis int) *COO {
	if axis < 0 || axis >= t.Order() {
		//d2t2:ignore panicpolicy axis is literal at every call site (FROSTT preprocessing); out-of-range is a programmer invariant
		panic("tensor: DropAxis out of range")
	}
	dims := make([]int, 0, t.Order()-1)
	keep := make([]int, 0, t.Order()-1)
	for a, d := range t.Dims {
		if a != axis {
			dims = append(dims, d)
			keep = append(keep, a)
		}
	}
	out := New(dims...)
	coord := make([]int, len(keep))
	for p := 0; p < t.NNZ(); p++ {
		for i, a := range keep {
			coord[i] = t.Crds[a][p]
		}
		out.Append(coord, t.Vals[p])
	}
	out.Dedup()
	return out
}
