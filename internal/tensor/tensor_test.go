package tensor

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppendAndBasics(t *testing.T) {
	m := New(3, 4)
	if m.Order() != 2 || m.NNZ() != 0 {
		t.Fatalf("fresh tensor: order=%d nnz=%d", m.Order(), m.NNZ())
	}
	m.Append([]int{0, 1}, 2)
	m.Append([]int{2, 3}, -1)
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", m.NNZ())
	}
	if got := m.At(1); got[0] != 2 || got[1] != 3 {
		t.Fatalf("At(1) = %v", got)
	}
	if d := m.Density(); d != 2.0/12 {
		t.Fatalf("density = %v", d)
	}
}

func TestAppendPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range coordinate")
		}
	}()
	m := New(2, 2)
	m.Append([]int{0, 2}, 1)
}

func TestAppendPanicsArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong arity")
		}
	}()
	m := New(2, 2)
	m.Append([]int{0}, 1)
}

func TestSortNatural(t *testing.T) {
	m := New(4, 4)
	m.Append([]int{3, 0}, 1)
	m.Append([]int{0, 2}, 2)
	m.Append([]int{0, 1}, 3)
	m.Append([]int{2, 2}, 4)
	m.Sort(nil)
	want := [][2]int{{0, 1}, {0, 2}, {2, 2}, {3, 0}}
	for p, w := range want {
		if m.Crds[0][p] != w[0] || m.Crds[1][p] != w[1] {
			t.Fatalf("entry %d = (%d,%d), want %v", p, m.Crds[0][p], m.Crds[1][p], w)
		}
	}
	if m.Vals[0] != 3 || m.Vals[3] != 1 {
		t.Fatalf("values not permuted with coordinates: %v", m.Vals)
	}
}

func TestSortCustomOrder(t *testing.T) {
	m := New(3, 3)
	m.Append([]int{0, 2}, 1)
	m.Append([]int{1, 0}, 2)
	m.Append([]int{2, 1}, 3)
	m.Sort([]int{1, 0}) // column-major
	wantCols := []int{0, 1, 2}
	for p, w := range wantCols {
		if m.Crds[1][p] != w {
			t.Fatalf("col-major sort: entry %d col=%d want %d", p, m.Crds[1][p], w)
		}
	}
}

func TestDedupSums(t *testing.T) {
	m := New(2, 2)
	m.Append([]int{1, 1}, 2)
	m.Append([]int{0, 0}, 1)
	m.Append([]int{1, 1}, 3)
	m.Append([]int{1, 1}, -1)
	m.Dedup()
	if m.NNZ() != 2 {
		t.Fatalf("nnz after dedup = %d, want 2", m.NNZ())
	}
	d := m.ToDense()
	if d[0][0] != 1 || d[1][1] != 4 {
		t.Fatalf("dedup values wrong: %v", d)
	}
}

func TestDedupEmptyAndSingle(t *testing.T) {
	m := New(2, 2)
	m.Dedup()
	if m.NNZ() != 0 {
		t.Fatal("empty dedup changed nnz")
	}
	m.Append([]int{1, 0}, 5)
	m.Dedup()
	if m.NNZ() != 1 || m.Vals[0] != 5 {
		t.Fatal("single-entry dedup broke the entry")
	}
}

func TestPermuteTranspose(t *testing.T) {
	m := New(2, 3)
	m.Append([]int{0, 2}, 7)
	mt := m.Transpose()
	if mt.Dims[0] != 3 || mt.Dims[1] != 2 {
		t.Fatalf("transpose dims = %v", mt.Dims)
	}
	if mt.Crds[0][0] != 2 || mt.Crds[1][0] != 0 {
		t.Fatalf("transpose coords = (%d,%d)", mt.Crds[0][0], mt.Crds[1][0])
	}
	// Round trip.
	if !Equal(m, mt.Transpose()) {
		t.Fatal("double transpose is not identity")
	}
}

func TestPermute3(t *testing.T) {
	m := New(2, 3, 4)
	m.Append([]int{1, 2, 3}, 9)
	p := m.Permute(2, 0, 1)
	if p.Dims[0] != 4 || p.Dims[1] != 2 || p.Dims[2] != 3 {
		t.Fatalf("permuted dims = %v", p.Dims)
	}
	c := p.At(0)
	if c[0] != 3 || c[1] != 1 || c[2] != 2 {
		t.Fatalf("permuted coord = %v", c)
	}
}

func TestFromToDense(t *testing.T) {
	d := [][]float64{{1, 0, 2}, {0, 0, 0}, {3, 4, 0}}
	m := FromDense(d)
	if m.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", m.NNZ())
	}
	back := m.ToDense()
	for i := range d {
		for j := range d[i] {
			if back[i][j] != d[i][j] {
				t.Fatalf("dense round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	m := New(2, 2)
	m.Append([]int{1, 1}, 1)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid tensor rejected: %v", err)
	}
	m.Crds[0] = m.Crds[0][:0]
	if err := m.Validate(); err == nil {
		t.Fatal("corrupted tensor accepted")
	}
	m2 := New(2, 2)
	m2.Crds[0] = []int{5}
	m2.Crds[1] = []int{0}
	m2.Vals = []float64{1}
	if err := m2.Validate(); err == nil {
		t.Fatal("out-of-range coordinate accepted")
	}
}

func TestDropAxis(t *testing.T) {
	m := New(2, 3, 4)
	m.Append([]int{0, 1, 2}, 1)
	m.Append([]int{0, 1, 3}, 2) // collides with previous when axis 2 dropped
	m.Append([]int{1, 2, 0}, 5)
	d := m.DropAxis(2)
	if d.Order() != 2 || d.Dims[0] != 2 || d.Dims[1] != 3 {
		t.Fatalf("dropped dims = %v", d.Dims)
	}
	dense := d.ToDense()
	if dense[0][1] != 3 || dense[1][2] != 5 {
		t.Fatalf("DropAxis values wrong: %v", dense)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := New(2, 2)
	a.Append([]int{0, 0}, 1)
	b := New(2, 2)
	b.Append([]int{0, 0}, 2)
	if Equal(a, b) {
		t.Fatal("Equal ignored value difference")
	}
	c := New(2, 3)
	if Equal(a, c) {
		t.Fatal("Equal ignored dims difference")
	}
}

// randomCOO builds a random matrix for property tests.
func randomCOO(r *rand.Rand, dim, nnz int) *COO {
	m := New(dim, dim)
	for i := 0; i < nnz; i++ {
		m.Append([]int{r.Intn(dim), r.Intn(dim)}, float64(r.Intn(9)+1))
	}
	return m
}

func TestQuickDedupIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomCOO(r, 16, 40)
		m.Dedup()
		n := m.NNZ()
		snapshot := m.Clone()
		m.Dedup()
		return m.NNZ() == n && Equal(m, snapshot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSortPreservesMultiset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomCOO(r, 12, 30)
		sum := 0.0
		for _, v := range m.Vals {
			sum += v
		}
		m.Sort([]int{1, 0})
		sum2 := 0.0
		for _, v := range m.Vals {
			sum2 += v
		}
		return sum == sum2 && m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPermuteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New(6, 7, 8)
		for i := 0; i < 25; i++ {
			m.Append([]int{r.Intn(6), r.Intn(7), r.Intn(8)}, 1)
		}
		p := m.Permute(2, 0, 1).Permute(1, 2, 0)
		return Equal(m, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpy(t *testing.T) {
	m := New(100, 100)
	for i := 0; i < 100; i++ {
		m.Append([]int{i, i}, 1)
	}
	out := m.Spy(20, 10)
	lines := strings.Split(out, "\n")
	if len(lines) != 12 { // border + 10 rows + border
		t.Fatalf("spy has %d lines", len(lines))
	}
	// Diagonal: every row has exactly some non-space glyph, roughly on
	// the diagonal.
	for r := 1; r <= 10; r++ {
		if !strings.ContainsAny(lines[r], ".:+*#@") {
			t.Fatalf("row %d empty: %q", r, lines[r])
		}
	}
	// Empty corner must be blank.
	if lines[1][15] != ' ' {
		t.Fatalf("corner not blank: %q", lines[1])
	}
	// Non-matrix fallback.
	if out := New(2, 2, 2).Spy(4, 4); !strings.Contains(out, "matrix") {
		t.Fatal("3-tensor spy should refuse")
	}
}

func TestDegreeOrderAndRelabel(t *testing.T) {
	m := New(4, 4)
	// Column 2 is the hub (3 entries), column 0 has 1.
	m.Append([]int{0, 2}, 1)
	m.Append([]int{1, 2}, 1)
	m.Append([]int{3, 2}, 1)
	m.Append([]int{2, 0}, 1)
	perm := m.DegreeOrder(1)
	if perm[0] != 2 {
		t.Fatalf("hub column not first: %v", perm)
	}
	r := m.Relabel(1, perm)
	// The hub is now column 0.
	cnt := 0
	for p := 0; p < r.NNZ(); p++ {
		if r.Crds[1][p] == 0 {
			cnt++
		}
	}
	if cnt != 3 {
		t.Fatalf("relabel did not move hub: %v", r.Crds)
	}
	// Relabeling is a bijection: nnz preserved, valid.
	if r.NNZ() != m.NNZ() || r.Validate() != nil {
		t.Fatal("relabel broke the tensor")
	}
	// Identity permutation round trip.
	back := r.Relabel(1, invert(perm))
	if !Equal(m, back) {
		t.Fatal("relabel round trip failed")
	}
}

func invert(perm []int) []int {
	inv := make([]int, len(perm))
	for n, o := range perm {
		inv[o] = n
	}
	return inv
}
