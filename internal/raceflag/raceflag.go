// Package raceflag reports at compile time whether the race detector is
// enabled. Allocation-regression tests consult it: the race runtime
// instruments allocations and synchronization, so testing.AllocsPerRun
// ceilings calibrated for a normal build are meaningless under -race
// and those tests skip themselves.
package raceflag
