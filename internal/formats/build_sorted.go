package formats

import "d2t2/internal/checked"

// BuildSortedUniqueShared is BuildSortedUnique under the tiler's
// allocation discipline: dims and order are retained by the CSF without
// copying — a caller building thousands of inner CSFs per tiling shares
// one dims/order slice across all of them and must not mutate either
// afterwards — and the Seg/Crd arrays are exactly sized by a counting
// pre-pass (one backing array per kind, subsliced per level) instead of
// grown with append. crds[l][:n] and vals[:n] are only read, so callers
// may reuse them as per-worker scratch between calls. The resulting CSF
// is structurally identical to BuildSortedUnique's.
func BuildSortedUniqueShared(dims []int, order []int, crds [][]int32, vals []float64) *CSF {
	lv := len(dims)
	c := &CSF{
		Dims:  dims,
		Order: order,
		Seg:   make([][]int32, lv),
		Crd:   make([][]int32, lv),
		Vals:  append([]float64(nil), vals...),
	}
	n := len(vals)
	if n == 0 {
		seg := make([]int32, lv) // zeroed: one [0] boundary per level
		for l := 0; l < lv; l++ {
			c.Seg[l] = seg[l : l+1 : l+1]
		}
		return c
	}

	// Pass 1: count fibers per level (a fiber opens at every entry whose
	// path diverges from the previous entry's at or above that level).
	fibers := make([]int32, lv)
	for l := 0; l < lv; l++ {
		fibers[l] = 1 // the first entry opens every level
	}
	for p := 1; p < n; p++ {
		div := 0
		for div = 0; div < lv; div++ {
			if crds[div][p] != crds[div][p-1] {
				break
			}
		}
		for l := div; l < lv; l++ {
			fibers[l]++
		}
	}

	// Exact-size backing arrays: Crd[l] holds fibers[l] coordinates;
	// Seg[l] holds one start per parent node (fibers[l-1], or 1 for the
	// root) plus the closing boundary.
	crdTotal, segTotal := 0, 0
	for l := 0; l < lv; l++ {
		crdTotal += int(fibers[l])
		if l == 0 {
			segTotal += 2
		} else {
			segTotal += int(fibers[l-1]) + 1
		}
	}
	crdBack := make([]int32, crdTotal)
	segBack := make([]int32, segTotal)
	for l := 0; l < lv; l++ {
		c.Crd[l], crdBack = crdBack[:fibers[l]:fibers[l]], crdBack[fibers[l]:]
		segLen := 2
		if l > 0 {
			segLen = int(fibers[l-1]) + 1
		}
		c.Seg[l], segBack = segBack[:segLen:segLen], segBack[segLen:]
	}

	// Pass 2: fill. cur[l] is the next write position in Crd[l]; a new
	// node at level l records the current length of level l+1 as the
	// start of its child fiber, exactly as BuildSortedUnique's appends do.
	cur := make([]int32, lv)
	seg := make([]int32, lv) // next write position in Seg[l]
	for p := 0; p < n; p++ {
		div := 0
		if p > 0 {
			for div = 0; div < lv; div++ {
				if crds[div][p] != crds[div][p-1] {
					break
				}
			}
		}
		for l := div; l < lv; l++ {
			c.Crd[l][cur[l]] = crds[l][p]
			cur[l]++
			if l+1 < lv {
				c.Seg[l+1][seg[l+1]] = cur[l+1]
				seg[l+1]++
			}
		}
	}
	c.Seg[0][0] = 0
	for l := 0; l < lv; l++ {
		last := len(c.Seg[l]) - 1
		c.Seg[l][last] = checked.Int32(len(c.Crd[l]))
	}
	return c
}

// BuildSortedUnique constructs a CSF directly from coordinate arrays that
// are already in level order, lexicographically sorted and duplicate-free.
// crds[l][p] is the level-l coordinate of entry p. It is the fast path the
// tiler uses to build one inner CSF per tile without re-sorting.
//
// dims are the per-level dimension sizes; order records which original
// axis each level stores (used only for bookkeeping and may be nil for
// "level l is axis l").
func BuildSortedUnique(dims []int, order []int, crds [][]int32, vals []float64) *CSF {
	lv := len(dims)
	if order == nil {
		order = make([]int, lv)
		for l := range order {
			order[l] = l
		}
	}
	c := &CSF{
		Dims:  append([]int(nil), dims...),
		Order: append([]int(nil), order...),
		Seg:   make([][]int32, lv),
		Crd:   make([][]int32, lv),
		Vals:  append([]float64(nil), vals...),
	}
	n := len(vals)
	if n == 0 {
		for l := 0; l < lv; l++ {
			c.Seg[l] = []int32{0}
		}
		return c
	}
	c.Seg[0] = append(c.Seg[0], 0)
	for p := 0; p < n; p++ {
		div := 0
		if p > 0 {
			for div = 0; div < lv; div++ {
				if crds[div][p] != crds[div][p-1] {
					break
				}
			}
		}
		for l := div; l < lv; l++ {
			c.Crd[l] = append(c.Crd[l], crds[l][p])
			if l+1 < lv {
				c.Seg[l+1] = append(c.Seg[l+1], checked.Int32(len(c.Crd[l+1])))
			}
		}
	}
	for l := 0; l < lv; l++ {
		c.Seg[l] = append(c.Seg[l], checked.Int32(len(c.Crd[l])))
	}
	return c
}
