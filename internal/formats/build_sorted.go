package formats

import "d2t2/internal/checked"

// BuildSortedUnique constructs a CSF directly from coordinate arrays that
// are already in level order, lexicographically sorted and duplicate-free.
// crds[l][p] is the level-l coordinate of entry p. It is the fast path the
// tiler uses to build one inner CSF per tile without re-sorting.
//
// dims are the per-level dimension sizes; order records which original
// axis each level stores (used only for bookkeeping and may be nil for
// "level l is axis l").
func BuildSortedUnique(dims []int, order []int, crds [][]int32, vals []float64) *CSF {
	lv := len(dims)
	if order == nil {
		order = make([]int, lv)
		for l := range order {
			order[l] = l
		}
	}
	c := &CSF{
		Dims:  append([]int(nil), dims...),
		Order: append([]int(nil), order...),
		Seg:   make([][]int32, lv),
		Crd:   make([][]int32, lv),
		Vals:  append([]float64(nil), vals...),
	}
	n := len(vals)
	if n == 0 {
		for l := 0; l < lv; l++ {
			c.Seg[l] = []int32{0}
		}
		return c
	}
	c.Seg[0] = append(c.Seg[0], 0)
	for p := 0; p < n; p++ {
		div := 0
		if p > 0 {
			for div = 0; div < lv; div++ {
				if crds[div][p] != crds[div][p-1] {
					break
				}
			}
		}
		for l := div; l < lv; l++ {
			c.Crd[l] = append(c.Crd[l], crds[l][p])
			if l+1 < lv {
				c.Seg[l+1] = append(c.Seg[l+1], checked.Int32(len(c.Crd[l+1])))
			}
		}
	}
	for l := 0; l < lv; l++ {
		c.Seg[l] = append(c.Seg[l], checked.Int32(len(c.Crd[l])))
	}
	return c
}
