package formats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"d2t2/internal/tensor"
)

func TestCSRBuildAndRow(t *testing.T) {
	m := tensor.New(3, 4)
	m.Append([]int{0, 1}, 1)
	m.Append([]int{0, 3}, 2)
	m.Append([]int{2, 0}, 3)
	c := MustBuildCSR(m)
	if c.NNZ() != 3 {
		t.Fatalf("nnz = %d", c.NNZ())
	}
	cols, vals := c.Row(0)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 || vals[1] != 2 {
		t.Fatalf("row 0 = %v %v", cols, vals)
	}
	if cols, _ := c.Row(1); len(cols) != 0 {
		t.Fatal("row 1 should be empty")
	}
	if !tensor.Equal(m, c.ToCOO()) {
		t.Fatal("CSR round trip lost data")
	}
}

func TestMulGustavsonSmall(t *testing.T) {
	a := tensor.FromDense([][]float64{
		{1, 0, 2},
		{0, 3, 0},
	})
	b := tensor.FromDense([][]float64{
		{0, 1},
		{4, 0},
		{0, 5},
	})
	c, err := MulGustavson(MustBuildCSR(a), MustBuildCSR(b))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{
		{0, 11},
		{12, 0},
	}
	got := c.ToCOO().ToDense()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestMulGustavsonDimMismatch(t *testing.T) {
	a := MustBuildCSR(tensor.New(2, 3))
	b := MustBuildCSR(tensor.New(2, 3))
	if _, err := MulGustavson(a, b); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestRowNNZHistogram(t *testing.T) {
	m := tensor.New(3, 3)
	m.Append([]int{0, 0}, 1)
	m.Append([]int{0, 1}, 1)
	m.Append([]int{2, 2}, 1)
	h := MustBuildCSR(m).RowNNZHistogram()
	if h[0] != 2 || h[1] != 0 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

// denseMul is the brute-force oracle.
func denseMul(a, b [][]float64) [][]float64 {
	r, k, c := len(a), len(b), len(b[0])
	out := make([][]float64, r)
	for i := range out {
		out[i] = make([]float64, c)
		for x := 0; x < k; x++ {
			if a[i][x] == 0 {
				continue
			}
			for j := 0; j < c; j++ {
				out[i][j] += a[i][x] * b[x][j]
			}
		}
	}
	return out
}

func TestQuickGustavsonMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(6)
		a := tensor.New(n, n)
		b := tensor.New(n, n)
		for i := 0; i < 3*n; i++ {
			a.Append([]int{r.Intn(n), r.Intn(n)}, float64(1+r.Intn(4)))
			b.Append([]int{r.Intn(n), r.Intn(n)}, float64(1+r.Intn(4)))
		}
		a.Dedup()
		b.Dedup()
		c, err := MulGustavson(MustBuildCSR(a), MustBuildCSR(b))
		if err != nil {
			return false
		}
		got := c.ToCOO().ToDense()
		want := denseMul(a.ToDense(), b.ToDense())
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
