package formats

import (
	"fmt"

	"d2t2/internal/wire"
)

// maxCodecLevels bounds the tensor order accepted by the decoder; far
// above any real kernel, it keeps corrupted inputs from driving huge
// per-level allocations.
const maxCodecLevels = 16

// AppendBinary appends the CSF's snapshot wire encoding to buf and
// returns the extended slice. This is the encode hook the snapshot codec
// uses; DecodeCSF reverses it. The encoding is canonical — encoding a
// decoded CSF reproduces the input bytes exactly.
func (c *CSF) AppendBinary(buf []byte) []byte {
	buf = wire.AppendU8(buf, uint8(c.Levels()))
	buf = wire.AppendInts(buf, c.Dims)
	buf = wire.AppendInts(buf, c.Order)
	for l := 0; l < c.Levels(); l++ {
		buf = wire.AppendI32s(buf, c.Seg[l])
		buf = wire.AppendI32s(buf, c.Crd[l])
	}
	return wire.AppendF64s(buf, c.Vals)
}

// DecodeCSF reads one CSF from r (as written by AppendBinary) and
// validates the trie invariants, so a decoded CSF is safe to traverse
// even when the input is corrupted or adversarial.
func DecodeCSF(r *wire.Reader) (*CSF, error) {
	lv := int(r.U8())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if lv < 1 || lv > maxCodecLevels {
		return nil, fmt.Errorf("formats: decoded CSF has %d levels, want 1..%d", lv, maxCodecLevels)
	}
	c := &CSF{
		Dims:  r.Ints(),
		Order: r.Ints(),
		Seg:   make([][]int32, lv),
		Crd:   make([][]int32, lv),
	}
	for l := 0; l < lv; l++ {
		c.Seg[l] = r.I32s()
		c.Crd[l] = r.I32s()
	}
	c.Vals = r.F64s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(c.Dims) != lv || len(c.Order) != lv {
		return nil, fmt.Errorf("formats: decoded CSF arity mismatch: %d levels, %d dims, %d order",
			lv, len(c.Dims), len(c.Order))
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate checks the CSF trie invariants: Order is a permutation of the
// axes, segment arrays bound coordinate arrays level by level, fibers
// hold strictly increasing in-range coordinates, and the value count
// matches the leaf level. Builders establish these by construction; the
// snapshot decoder re-establishes them for untrusted input.
func (c *CSF) Validate() error {
	lv := c.Levels()
	if len(c.Order) != lv || len(c.Seg) != lv || len(c.Crd) != lv {
		return fmt.Errorf("formats: CSF arity mismatch across Dims/Order/Seg/Crd")
	}
	seen := make([]bool, lv)
	for _, a := range c.Order {
		if a < 0 || a >= lv || seen[a] {
			return fmt.Errorf("formats: CSF order %v is not a permutation of 0..%d", c.Order, lv-1)
		}
		seen[a] = true
	}
	for l, d := range c.Dims {
		if d < 1 {
			return fmt.Errorf("formats: CSF dimension %d at level %d", d, l)
		}
	}
	if len(c.Vals) == 0 {
		for l := 0; l < lv; l++ {
			if len(c.Crd[l]) != 0 || len(c.Seg[l]) != 1 || c.Seg[l][0] != 0 {
				return fmt.Errorf("formats: empty CSF has non-canonical level %d", l)
			}
		}
		return nil
	}
	for l := 0; l < lv; l++ {
		wantSeg := 2
		if l > 0 {
			wantSeg = len(c.Crd[l-1]) + 1
		}
		if len(c.Seg[l]) != wantSeg {
			return fmt.Errorf("formats: level %d has %d segment bounds, want %d", l, len(c.Seg[l]), wantSeg)
		}
		if c.Seg[l][0] != 0 || int(c.Seg[l][wantSeg-1]) != len(c.Crd[l]) {
			return fmt.Errorf("formats: level %d segment bounds do not span the coordinate array", l)
		}
		for i := 1; i < wantSeg; i++ {
			if c.Seg[l][i] < c.Seg[l][i-1] {
				return fmt.Errorf("formats: level %d segment bounds decrease at %d", l, i)
			}
		}
		// Coordinates within each fiber are strictly increasing and in
		// range — the sortedness every traversal assumes.
		dim := c.Dims[l]
		for f := 0; f+1 < wantSeg; f++ {
			lo, hi := int(c.Seg[l][f]), int(c.Seg[l][f+1])
			for p := lo; p < hi; p++ {
				crd := c.Crd[l][p]
				if crd < 0 || int(crd) >= dim {
					return fmt.Errorf("formats: level %d coordinate %d out of range [0,%d)", l, crd, dim)
				}
				if p > lo && crd <= c.Crd[l][p-1] {
					return fmt.Errorf("formats: level %d fiber %d not strictly increasing at %d", l, f, p)
				}
			}
		}
	}
	if len(c.Vals) != len(c.Crd[lv-1]) {
		return fmt.Errorf("formats: %d values for %d leaf coordinates", len(c.Vals), len(c.Crd[lv-1]))
	}
	return nil
}
