// Package formats implements the compressed storage formats used by the
// system: the compressed sparse fiber (CSF) trie for arbitrary-order
// tensors and CSR for matrices. CSF is the format the paper's statistics
// collector traverses; footprints computed here (values + segment +
// coordinate arrays) define the traffic unit used everywhere else.
package formats

import (
	"fmt"

	"d2t2/internal/checked"
	"d2t2/internal/tensor"
)

// CSF is a compressed-sparse-fiber tensor: a trie with one level per axis
// in Order. Level l stores Crd[l] (all fiber coordinates abutted) and
// Seg[l] (fiber boundaries): the children of node p at level l-1 occupy
// Crd[l][Seg[l][p]:Seg[l][p+1]]. Level 0 has a single implicit root, so
// Seg[0] is [0, len(Crd[0])]. Vals holds leaf values in Crd[last] order.
type CSF struct {
	// Dims are the dimension sizes in *level* order: Dims[l] is the size
	// of the axis stored at level l.
	Dims []int
	// Order[l] is the original tensor axis stored at level l.
	Order []int
	Seg   [][]int32
	Crd   [][]int32
	Vals  []float64
}

// Levels returns the number of trie levels (the tensor order).
func (c *CSF) Levels() int { return len(c.Dims) }

// NNZ returns the number of stored leaf values.
func (c *CSF) NNZ() int { return len(c.Vals) }

// FiberCount returns the number of coordinates stored at a level (the
// total number of fibers entering that level, summed over parents).
func (c *CSF) FiberCount(level int) int { return len(c.Crd[level]) }

// FootprintWords returns the storage footprint in 4-byte words: one word
// per value plus one per coordinate plus one per segment pointer, at every
// level. This is the traffic unit the paper uses ("the sum of the number
// of nonzeros and the size of all the segment and coordinate arrays").
func (c *CSF) FootprintWords() int {
	w := len(c.Vals)
	for l := 0; l < c.Levels(); l++ {
		w += len(c.Crd[l]) + len(c.Seg[l])
	}
	return w
}

// Build constructs a CSF from a COO tensor using the given level order
// (a permutation of axes; nil means natural order). The input is cloned,
// deduplicated and sorted; the original tensor is not modified.
func Build(t *tensor.COO, order []int) *CSF {
	if order == nil {
		order = make([]int, t.Order())
		for a := range order {
			order[a] = a
		}
	}
	if len(order) != t.Order() {
		//d2t2:ignore panicpolicy order arity is a programmer invariant: every caller passes a literal permutation or nil; an error return would infect every construction site for an impossible case
		panic(fmt.Sprintf("formats: order arity %d != tensor order %d", len(order), t.Order()))
	}
	src := t.Clone()
	src.Dedup()
	src.Sort(order)

	n := src.NNZ()
	lv := len(order)
	c := &CSF{
		Dims:  make([]int, lv),
		Order: append([]int(nil), order...),
		Seg:   make([][]int32, lv),
		Crd:   make([][]int32, lv),
		Vals:  append([]float64(nil), src.Vals...),
	}
	for l, a := range order {
		c.Dims[l] = src.Dims[a]
	}
	if n == 0 {
		for l := 0; l < lv; l++ {
			c.Seg[l] = []int32{0}
		}
		return c
	}

	// Seg[0] describes the single root fiber; deeper levels receive their
	// leading 0 when the first node of the parent level is emitted.
	c.Seg[0] = append(c.Seg[0], 0)
	for p := 0; p < n; p++ {
		// Find the first level where this entry's path diverges from the
		// previously emitted one.
		div := 0
		if p > 0 {
			for div = 0; div < lv; div++ {
				a := order[div]
				if src.Crds[a][p] != src.Crds[a][p-1] {
					break
				}
			}
		}
		for l := div; l < lv; l++ {
			a := order[l]
			c.Crd[l] = append(c.Crd[l], checked.Int32(src.Crds[a][p]))
			if l+1 < lv {
				// A new node at level l opens a new fiber at level l+1:
				// record its start (the current length of Crd[l+1]).
				c.Seg[l+1] = append(c.Seg[l+1], checked.Int32(len(c.Crd[l+1])))
			}
		}
	}
	// Close every level's final fiber: Seg[l][i] holds the start of the
	// fiber under parent i; append the overall end as the last boundary.
	for l := 0; l < lv; l++ {
		c.Seg[l] = append(c.Seg[l], checked.Int32(len(c.Crd[l])))
	}
	return c
}

// ToCOO converts the CSF back to a COO tensor in original axis order.
func (c *CSF) ToCOO() *tensor.COO {
	lv := c.Levels()
	dims := make([]int, lv)
	for l, a := range c.Order {
		dims[a] = c.Dims[l]
	}
	out := tensor.New(dims...)
	path := make([]int32, lv)
	coord := make([]int, lv)
	var walk func(level int, node int)
	walk = func(level, node int) {
		start, end := c.Seg[level][node], c.Seg[level][node+1]
		for p := start; p < end; p++ {
			path[level] = c.Crd[level][p]
			if level == lv-1 {
				for l, a := range c.Order {
					coord[a] = int(path[l])
				}
				out.Append(coord, c.Vals[p])
			} else {
				walk(level+1, int(p))
			}
		}
	}
	if c.NNZ() > 0 {
		walk(0, 0)
	}
	return out
}

// Children returns the [start,end) range into Crd[level] of the fiber
// under parent node index at level-1 (for level 0, pass node 0).
func (c *CSF) Children(level, node int) (int, int) {
	return int(c.Seg[level][node]), int(c.Seg[level][node+1])
}

// SubtreeNNZ returns the number of leaf values under node p at the given
// level. Thanks to the trie layout this is a constant-time position
// difference at the leaf level once the node's leaf span is known; here we
// compute it by walking the segment arrays level by level (O(levels)).
func (c *CSF) SubtreeNNZ(level, node int) int {
	lo, hi := node, node+1
	for l := level + 1; l < c.Levels(); l++ {
		lo = int(c.Seg[l][lo])
		hi = int(c.Seg[l][hi])
	}
	// lo/hi now index Crd[last] == Vals.
	if level == c.Levels()-1 {
		return 1
	}
	return hi - lo
}

// LeafSpan returns the [start,end) range of leaf (value) positions under
// node p at the given level.
func (c *CSF) LeafSpan(level, node int) (int, int) {
	lo, hi := node, node+1
	for l := level + 1; l < c.Levels(); l++ {
		lo = int(c.Seg[l][lo])
		hi = int(c.Seg[l][hi])
	}
	return lo, hi
}

// Walk invokes fn for every node in depth-first order with its level,
// node position (index into Crd[level]) and coordinate. Returning false
// from fn prunes the subtree.
func (c *CSF) Walk(fn func(level, pos int, coord int32) bool) {
	var rec func(level, node int)
	rec = func(level, node int) {
		start, end := c.Children(level, node)
		for p := start; p < end; p++ {
			if !fn(level, p, c.Crd[level][p]) {
				continue
			}
			if level+1 < c.Levels() {
				rec(level+1, p)
			}
		}
	}
	if c.NNZ() > 0 {
		rec(0, 0)
	}
}
