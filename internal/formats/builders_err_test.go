package formats

import (
	"testing"

	"d2t2/internal/tensor"
)

// The matrix builders return errors (not panics) for non-matrix input,
// per the panicpolicy gate.
func TestBuildersRejectNonMatrix(t *testing.T) {
	v := tensor.New(4) // order-1 tensor
	if _, err := BuildCSR(v); err == nil {
		t.Fatal("BuildCSR accepted an order-1 tensor")
	}
	if _, err := BuildCSC(v); err == nil {
		t.Fatal("BuildCSC accepted an order-1 tensor")
	}
	if _, err := BuildDCSR(v); err == nil {
		t.Fatal("BuildDCSR accepted an order-1 tensor")
	}
	cube := tensor.New(2, 2, 2)
	if _, err := BuildCSR(cube); err == nil {
		t.Fatal("BuildCSR accepted an order-3 tensor")
	}
}

func TestMustBuildCSRPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuildCSR did not panic on non-matrix input")
		}
	}()
	MustBuildCSR(tensor.New(4))
}
