package formats

import (
	"fmt"
	"sort"

	"d2t2/internal/checked"
	"d2t2/internal/tensor"
)

// CSR is a compressed-sparse-row matrix. Columns within a row are sorted.
// It serves as the reference format for correctness checks: the tiled
// execution backend's results are compared against CSR Gustavson matmul.
type CSR struct {
	R, C   int
	RowPtr []int32
	ColIdx []int32
	Vals   []float64
}

// BuildCSR constructs a CSR matrix from a COO matrix (duplicates
// summed). It returns an error when the input is not a matrix or its
// dimensions exceed the int32 coordinate width.
func BuildCSR(t *tensor.COO) (*CSR, error) {
	if t.Order() != 2 {
		return nil, fmt.Errorf("formats: BuildCSR requires a matrix, got order %d", t.Order())
	}
	if !checked.FitsInt32(t.Dims[0]) || !checked.FitsInt32(t.Dims[1]) {
		return nil, fmt.Errorf("formats: BuildCSR dimensions %dx%d exceed the int32 coordinate width", t.Dims[0], t.Dims[1])
	}
	src := t.Clone()
	src.Dedup() // sorts row-major
	m := &CSR{
		R:      src.Dims[0],
		C:      src.Dims[1],
		RowPtr: make([]int32, src.Dims[0]+1),
		ColIdx: make([]int32, src.NNZ()),
		Vals:   append([]float64(nil), src.Vals...),
	}
	for p := 0; p < src.NNZ(); p++ {
		m.RowPtr[src.Crds[0][p]+1]++
		m.ColIdx[p] = checked.Int32(src.Crds[1][p])
	}
	for i := 0; i < m.R; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m, nil
}

// MustBuildCSR is BuildCSR that panics on error, for tests and fixed
// pipelines whose inputs are matrices by construction.
func MustBuildCSR(t *tensor.COO) *CSR {
	m, err := BuildCSR(t)
	if err != nil {
		panic(err)
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// Row returns the column indices and values of row i (shared slices).
func (m *CSR) Row(i int) ([]int32, []float64) {
	s, e := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[s:e], m.Vals[s:e]
}

// ToCOO converts back to coordinate format.
func (m *CSR) ToCOO() *tensor.COO {
	out := tensor.New(m.R, m.C)
	for i := 0; i < m.R; i++ {
		cols, vals := m.Row(i)
		for p := range cols {
			out.Append([]int{i, int(cols[p])}, vals[p])
		}
	}
	return out
}

// MulGustavson computes C = A×B with Gustavson's row-by-row algorithm.
// It is the reference SpMSpM used to validate the tiled backend.
func MulGustavson(a, b *CSR) (*CSR, error) {
	if a.C != b.R {
		return nil, fmt.Errorf("formats: dimension mismatch %dx%d times %dx%d", a.R, a.C, b.R, b.C)
	}
	out := &CSR{R: a.R, C: b.C, RowPtr: make([]int32, a.R+1)}
	acc := make(map[int32]float64)
	for i := 0; i < a.R; i++ {
		clear(acc)
		aCols, aVals := a.Row(i)
		for p, k := range aCols {
			bCols, bVals := b.Row(int(k))
			av := aVals[p]
			for q, j := range bCols {
				acc[j] += av * bVals[q]
			}
		}
		cols := make([]int32, 0, len(acc))
		for j := range acc {
			cols = append(cols, j)
		}
		sort.Slice(cols, func(x, y int) bool { return cols[x] < cols[y] })
		for _, j := range cols {
			out.ColIdx = append(out.ColIdx, j)
			out.Vals = append(out.Vals, acc[j])
		}
		out.RowPtr[i+1] = checked.Int32(len(out.Vals))
	}
	return out, nil
}

// RowNNZHistogram returns, for each row, the number of stored entries.
func (m *CSR) RowNNZHistogram() []int {
	h := make([]int, m.R)
	for i := 0; i < m.R; i++ {
		h[i] = int(m.RowPtr[i+1] - m.RowPtr[i])
	}
	return h
}
