package formats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"d2t2/internal/tensor"
)

// paperMatrix reproduces the example sparse matrix of Figure 2a spirit:
// a small matrix whose CSF levels we can verify by hand.
func paperMatrix() *tensor.COO {
	m := tensor.New(4, 4)
	m.Append([]int{0, 0}, 1)
	m.Append([]int{0, 2}, 2)
	m.Append([]int{1, 1}, 3)
	m.Append([]int{3, 0}, 4)
	m.Append([]int{3, 3}, 5)
	return m
}

func TestBuildCSFStructure(t *testing.T) {
	c := Build(paperMatrix(), nil)
	if c.Levels() != 2 || c.NNZ() != 5 {
		t.Fatalf("levels=%d nnz=%d", c.Levels(), c.NNZ())
	}
	// Root level: rows 0,1,3.
	if got := c.FiberCount(0); got != 3 {
		t.Fatalf("root fiber count = %d, want 3", got)
	}
	wantRows := []int32{0, 1, 3}
	for i, w := range wantRows {
		if c.Crd[0][i] != w {
			t.Fatalf("Crd[0]=%v, want rows %v", c.Crd[0], wantRows)
		}
	}
	// Seg[0] must be [0, 3].
	if len(c.Seg[0]) != 2 || c.Seg[0][0] != 0 || c.Seg[0][1] != 3 {
		t.Fatalf("Seg[0]=%v", c.Seg[0])
	}
	// Seg[1] must have one boundary per row plus one: [0,2,3,5].
	want := []int32{0, 2, 3, 5}
	if len(c.Seg[1]) != len(want) {
		t.Fatalf("Seg[1]=%v, want %v", c.Seg[1], want)
	}
	for i := range want {
		if c.Seg[1][i] != want[i] {
			t.Fatalf("Seg[1]=%v, want %v", c.Seg[1], want)
		}
	}
	// Column coordinates abutted: [0,2,1,0,3].
	wantCols := []int32{0, 2, 1, 0, 3}
	for i := range wantCols {
		if c.Crd[1][i] != wantCols[i] {
			t.Fatalf("Crd[1]=%v, want %v", c.Crd[1], wantCols)
		}
	}
}

func TestCSFFootprint(t *testing.T) {
	c := Build(paperMatrix(), nil)
	// vals(5) + crd0(3) + seg0(2) + crd1(5) + seg1(4) = 19 words.
	if got := c.FootprintWords(); got != 19 {
		t.Fatalf("footprint = %d, want 19", got)
	}
}

func TestCSFEmpty(t *testing.T) {
	c := Build(tensor.New(5, 5), nil)
	if c.NNZ() != 0 {
		t.Fatal("empty CSF has values")
	}
	back := c.ToCOO()
	if back.NNZ() != 0 {
		t.Fatal("empty CSF round trip produced entries")
	}
}

func TestCSFRoundTrip(t *testing.T) {
	m := paperMatrix()
	c := Build(m, nil)
	if !tensor.Equal(m, c.ToCOO()) {
		t.Fatal("CSF round trip lost data")
	}
}

func TestCSFPermutedOrder(t *testing.T) {
	m := paperMatrix()
	c := Build(m, []int{1, 0}) // column-major CSF
	if c.Dims[0] != 4 {
		t.Fatalf("level dims = %v", c.Dims)
	}
	// Distinct columns: 0,1,2,3 -> 4 root fibers.
	if got := c.FiberCount(0); got != 4 {
		t.Fatalf("column-major root fibers = %d, want 4", got)
	}
	if !tensor.Equal(m, c.ToCOO()) {
		t.Fatal("column-major CSF round trip lost data")
	}
}

func TestCSFSubtreeNNZ(t *testing.T) {
	c := Build(paperMatrix(), nil)
	// Row 0 has 2 entries, row 1 has 1, row 3 has 2.
	want := []int{2, 1, 2}
	for i, w := range want {
		if got := c.SubtreeNNZ(0, i); got != w {
			t.Fatalf("SubtreeNNZ(0,%d) = %d, want %d", i, got, w)
		}
	}
	// Leaf-level subtrees are single values.
	if got := c.SubtreeNNZ(1, 0); got != 1 {
		t.Fatalf("leaf subtree nnz = %d", got)
	}
}

func TestCSF3D(t *testing.T) {
	m := tensor.New(3, 3, 3)
	m.Append([]int{0, 0, 0}, 1)
	m.Append([]int{0, 0, 2}, 2)
	m.Append([]int{0, 1, 0}, 3)
	m.Append([]int{2, 2, 2}, 4)
	c := Build(m, nil)
	if c.FiberCount(0) != 2 { // i = 0, 2
		t.Fatalf("level0 fibers = %d", c.FiberCount(0))
	}
	if c.FiberCount(1) != 3 { // (0,0),(0,1),(2,2)
		t.Fatalf("level1 fibers = %d", c.FiberCount(1))
	}
	if c.FiberCount(2) != 4 {
		t.Fatalf("level2 fibers = %d", c.FiberCount(2))
	}
	if c.SubtreeNNZ(0, 0) != 3 {
		t.Fatalf("subtree under i=0 has %d leaves", c.SubtreeNNZ(0, 0))
	}
	if !tensor.Equal(m, c.ToCOO()) {
		t.Fatal("3-d CSF round trip lost data")
	}
}

func TestCSFWalkVisitsAll(t *testing.T) {
	c := Build(paperMatrix(), nil)
	counts := make([]int, 2)
	c.Walk(func(level, pos int, coord int32) bool {
		counts[level]++
		return true
	})
	if counts[0] != 3 || counts[1] != 5 {
		t.Fatalf("walk visited %v nodes", counts)
	}
	// Pruned walk: skip row 0's subtree.
	visited := 0
	c.Walk(func(level, pos int, coord int32) bool {
		if level == 0 && coord == 0 {
			return false
		}
		visited++
		return true
	})
	if visited != 2+3 { // rows 1,3 plus their 3 leaves
		t.Fatalf("pruned walk visited %d", visited)
	}
}

func TestCSFDuplicatesSummed(t *testing.T) {
	m := tensor.New(2, 2)
	m.Append([]int{1, 1}, 2)
	m.Append([]int{1, 1}, 3)
	c := Build(m, nil)
	if c.NNZ() != 1 || c.Vals[0] != 5 {
		t.Fatalf("duplicates not combined: nnz=%d vals=%v", c.NNZ(), c.Vals)
	}
}

func randomTensor3(r *rand.Rand, d, nnz int) *tensor.COO {
	m := tensor.New(d, d, d)
	for i := 0; i < nnz; i++ {
		m.Append([]int{r.Intn(d), r.Intn(d), r.Intn(d)}, float64(1+r.Intn(5)))
	}
	m.Dedup()
	return m
}

func TestQuickCSFRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomTensor3(r, 8, 60)
		orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}}
		o := orders[r.Intn(len(orders))]
		return tensor.Equal(m, Build(m, o).ToCOO())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCSFLeafInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomTensor3(r, 8, 60)
		c := Build(m, nil)
		// Sum of root-level subtree leaves equals total nnz.
		total := 0
		for i := 0; i < c.FiberCount(0); i++ {
			total += c.SubtreeNNZ(0, i)
		}
		// Seg arrays must be monotone.
		for l := 0; l < c.Levels(); l++ {
			for i := 1; i < len(c.Seg[l]); i++ {
				if c.Seg[l][i] < c.Seg[l][i-1] {
					return false
				}
			}
		}
		return total == c.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
