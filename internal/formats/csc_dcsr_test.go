package formats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"d2t2/internal/tensor"
)

func TestCSCBuildAndCol(t *testing.T) {
	m := tensor.New(3, 4)
	m.Append([]int{0, 1}, 1)
	m.Append([]int{2, 1}, 2)
	m.Append([]int{1, 3}, 3)
	c := MustBuildCSC(m)
	rows, vals := c.Col(1)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 || vals[1] != 2 {
		t.Fatalf("col 1 = %v %v", rows, vals)
	}
	if rows, _ := c.Col(0); len(rows) != 0 {
		t.Fatal("col 0 should be empty")
	}
	if !tensor.Equal(m, c.ToCOO()) {
		t.Fatal("CSC round trip lost data")
	}
}

func TestDCSRHyperSparse(t *testing.T) {
	m := tensor.New(1000000, 1000000)
	m.Append([]int{5, 7}, 1)
	m.Append([]int{5, 9}, 2)
	m.Append([]int{999999, 0}, 3)
	d := MustBuildDCSR(m)
	if d.NumRows() != 2 {
		t.Fatalf("non-empty rows = %d, want 2", d.NumRows())
	}
	// DCSR footprint is tiny; CSR would carry a million row pointers.
	if d.FootprintWords() > 20 {
		t.Fatalf("DCSR footprint = %d", d.FootprintWords())
	}
	csr := MustBuildCSR(m)
	if len(csr.RowPtr) != 1000001 {
		t.Fatalf("CSR rowptr = %d", len(csr.RowPtr))
	}
	if !tensor.Equal(m, d.ToCOO()) {
		t.Fatal("DCSR round trip lost data")
	}
}

func TestSpMV(t *testing.T) {
	a := tensor.FromDense([][]float64{
		{1, 0, 2},
		{0, 3, 0},
	})
	y, err := SpMV(MustBuildCSR(a), []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 || y[1] != 6 {
		t.Fatalf("y = %v", y)
	}
	if _, err := SpMV(MustBuildCSR(a), []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestQuickFormatRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(30)
		m := tensor.New(n, n)
		for i := 0; i < 3*n; i++ {
			m.Append([]int{r.Intn(n), r.Intn(n)}, float64(1+r.Intn(9)))
		}
		m.Dedup()
		return tensor.Equal(m, MustBuildCSC(m).ToCOO()) &&
			tensor.Equal(m, MustBuildDCSR(m).ToCOO()) &&
			tensor.Equal(m, MustBuildCSR(m).ToCOO())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSpMVAgainstDense: SpMV agrees with the dense computation.
func TestQuickSpMVAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(16)
		m := tensor.New(n, n)
		for i := 0; i < 2*n; i++ {
			m.Append([]int{r.Intn(n), r.Intn(n)}, float64(1+r.Intn(5)))
		}
		m.Dedup()
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(r.Intn(7))
		}
		y, err := SpMV(MustBuildCSR(m), x)
		if err != nil {
			return false
		}
		d := m.ToDense()
		for i := 0; i < n; i++ {
			want := 0.0
			for j := 0; j < n; j++ {
				want += d[i][j] * x[j]
			}
			if y[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
