package formats

import (
	"fmt"

	"d2t2/internal/checked"
	"d2t2/internal/tensor"
)

// CSC is a compressed-sparse-column matrix (rows within a column sorted).
type CSC struct {
	R, C   int
	ColPtr []int32
	RowIdx []int32
	Vals   []float64
}

// BuildCSC constructs a CSC matrix from a COO matrix (duplicates
// summed). It returns an error when the input is not a matrix or its
// dimensions exceed the int32 coordinate width.
func BuildCSC(t *tensor.COO) (*CSC, error) {
	if t.Order() != 2 {
		return nil, fmt.Errorf("formats: BuildCSC requires a matrix, got order %d", t.Order())
	}
	if !checked.FitsInt32(t.Dims[0]) || !checked.FitsInt32(t.Dims[1]) {
		return nil, fmt.Errorf("formats: BuildCSC dimensions %dx%d exceed the int32 coordinate width", t.Dims[0], t.Dims[1])
	}
	src := t.Clone()
	src.Dedup()
	src.Sort([]int{1, 0})
	m := &CSC{
		R:      src.Dims[0],
		C:      src.Dims[1],
		ColPtr: make([]int32, src.Dims[1]+1),
		RowIdx: make([]int32, src.NNZ()),
		Vals:   append([]float64(nil), src.Vals...),
	}
	for p := 0; p < src.NNZ(); p++ {
		m.ColPtr[src.Crds[1][p]+1]++
		m.RowIdx[p] = checked.Int32(src.Crds[0][p])
	}
	for j := 0; j < m.C; j++ {
		m.ColPtr[j+1] += m.ColPtr[j]
	}
	return m, nil
}

// MustBuildCSC is BuildCSC that panics on error, for tests and fixed
// pipelines whose inputs are matrices by construction.
func MustBuildCSC(t *tensor.COO) *CSC {
	m, err := BuildCSC(t)
	if err != nil {
		panic(err)
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.Vals) }

// Col returns the row indices and values of column j (shared slices).
func (m *CSC) Col(j int) ([]int32, []float64) {
	s, e := m.ColPtr[j], m.ColPtr[j+1]
	return m.RowIdx[s:e], m.Vals[s:e]
}

// ToCOO converts back to coordinate format.
func (m *CSC) ToCOO() *tensor.COO {
	out := tensor.New(m.R, m.C)
	for j := 0; j < m.C; j++ {
		rows, vals := m.Col(j)
		for p := range rows {
			out.Append([]int{int(rows[p]), j}, vals[p])
		}
	}
	return out
}

// DCSR is a doubly compressed sparse row matrix: only non-empty rows
// carry pointers, making it suitable for hyper-sparse matrices whose row
// count dwarfs the entry count (the regime of several of the paper's
// graph datasets).
type DCSR struct {
	R, C   int
	Rows   []int32 // non-empty row ids, sorted
	RowPtr []int32 // len(Rows)+1 boundaries into ColIdx
	ColIdx []int32
	Vals   []float64
}

// BuildDCSR constructs a DCSR matrix from a COO matrix. It returns an
// error when the input is not a matrix or its dimensions exceed the
// int32 coordinate width.
func BuildDCSR(t *tensor.COO) (*DCSR, error) {
	if t.Order() != 2 {
		return nil, fmt.Errorf("formats: BuildDCSR requires a matrix, got order %d", t.Order())
	}
	if !checked.FitsInt32(t.Dims[0]) || !checked.FitsInt32(t.Dims[1]) {
		return nil, fmt.Errorf("formats: BuildDCSR dimensions %dx%d exceed the int32 coordinate width", t.Dims[0], t.Dims[1])
	}
	src := t.Clone()
	src.Dedup()
	m := &DCSR{R: src.Dims[0], C: src.Dims[1]}
	m.RowPtr = append(m.RowPtr, 0)
	for p := 0; p < src.NNZ(); p++ {
		r := checked.Int32(src.Crds[0][p])
		if len(m.Rows) == 0 || m.Rows[len(m.Rows)-1] != r {
			if len(m.Rows) > 0 {
				m.RowPtr = append(m.RowPtr, checked.Int32(len(m.ColIdx)))
			}
			m.Rows = append(m.Rows, r)
		}
		m.ColIdx = append(m.ColIdx, checked.Int32(src.Crds[1][p]))
		m.Vals = append(m.Vals, src.Vals[p])
	}
	m.RowPtr = append(m.RowPtr, checked.Int32(len(m.ColIdx)))
	return m, nil
}

// MustBuildDCSR is BuildDCSR that panics on error, for tests and fixed
// pipelines whose inputs are matrices by construction.
func MustBuildDCSR(t *tensor.COO) *DCSR {
	m, err := BuildDCSR(t)
	if err != nil {
		panic(err)
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *DCSR) NNZ() int { return len(m.Vals) }

// NumRows returns the number of non-empty rows.
func (m *DCSR) NumRows() int { return len(m.Rows) }

// FootprintWords returns the storage footprint in words — the quantity
// DCSR shrinks versus CSR for hyper-sparse matrices.
func (m *DCSR) FootprintWords() int {
	return len(m.Vals) + len(m.ColIdx) + len(m.Rows) + len(m.RowPtr)
}

// ToCOO converts back to coordinate format.
func (m *DCSR) ToCOO() *tensor.COO {
	out := tensor.New(m.R, m.C)
	for ri, r := range m.Rows {
		for p := m.RowPtr[ri]; p < m.RowPtr[ri+1]; p++ {
			out.Append([]int{int(r), int(m.ColIdx[p])}, m.Vals[p])
		}
	}
	return out
}

// SpMV computes y = A·x with a CSR matrix and a dense vector.
func SpMV(a *CSR, x []float64) ([]float64, error) {
	if len(x) != a.C {
		return nil, fmt.Errorf("formats: SpMV vector length %d != %d columns", len(x), a.C)
	}
	y := make([]float64, a.R)
	for i := 0; i < a.R; i++ {
		cols, vals := a.Row(i)
		acc := 0.0
		for p, j := range cols {
			acc += vals[p] * x[j]
		}
		y[i] = acc
	}
	return y, nil
}
