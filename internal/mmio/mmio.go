// Package mmio reads and writes the two on-disk sparse formats the paper's
// datasets ship in: Matrix Market (.mtx, SuiteSparse) and the FROSTT
// tensor format (.tns). Both are 1-indexed text formats.
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"d2t2/internal/tensor"
)

// ReadMatrixMarket parses a Matrix Market coordinate-format stream into a
// COO matrix. Supported qualifiers: real/integer/pattern and
// general/symmetric. Symmetric inputs are expanded to full storage.
func ReadMatrixMarket(r io.Reader) (*tensor.COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("mmio: bad MatrixMarket header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("mmio: only coordinate format is supported, got %q", header[2])
	}
	pattern := false
	symmetric := false
	for _, q := range header[3:] {
		switch q {
		case "real", "integer", "general":
		case "pattern":
			pattern = true
		case "symmetric", "skew-symmetric":
			symmetric = true
		default:
			return nil, fmt.Errorf("mmio: unsupported qualifier %q", q)
		}
	}

	var m *tensor.COO
	declared := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if m == nil {
			if len(f) != 3 {
				return nil, fmt.Errorf("mmio: bad size line %q", line)
			}
			rows, err1 := strconv.Atoi(f[0])
			cols, err2 := strconv.Atoi(f[1])
			nnz, err3 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil || err3 != nil || rows <= 0 || cols <= 0 || nnz < 0 {
				return nil, fmt.Errorf("mmio: bad size line %q", line)
			}
			m = tensor.New(rows, cols)
			declared = nnz
			continue
		}
		want := 3
		if pattern {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("mmio: bad entry line %q", line)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("mmio: bad entry line %q", line)
		}
		v := 1.0
		if !pattern {
			var err error
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mmio: bad value in %q: %v", line, err)
			}
		}
		if i < 1 || i > m.Dims[0] || j < 1 || j > m.Dims[1] {
			return nil, fmt.Errorf("mmio: entry (%d,%d) out of bounds %v", i, j, m.Dims)
		}
		m.Append([]int{i - 1, j - 1}, v)
		if symmetric && i != j {
			m.Append([]int{j - 1, i - 1}, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("mmio: missing size line")
	}
	stored := m.NNZ()
	if symmetric {
		// Off-diagonal entries were mirrored; count the originals only.
		stored = 0
		for p := 0; p < m.NNZ(); p++ {
			if m.Crds[0][p] <= m.Crds[1][p] {
				stored++
			}
		}
		// Symmetric inputs store one triangle; mirroring can make either
		// triangle the "original", so accept a count match on either side.
		if stored != declared {
			stored = m.NNZ() - stored + countDiagonal(m)
		}
	}
	if stored != declared {
		return nil, fmt.Errorf("mmio: header declares %d entries, found %d", declared, stored)
	}
	m.Dedup()
	return m, nil
}

func countDiagonal(m *tensor.COO) int {
	n := 0
	for p := 0; p < m.NNZ(); p++ {
		if m.Crds[0][p] == m.Crds[1][p] {
			n++
		}
	}
	return n
}

// WriteMatrixMarket writes a COO matrix in general real coordinate format.
func WriteMatrixMarket(w io.Writer, m *tensor.COO) error {
	if m.Order() != 2 {
		return fmt.Errorf("mmio: WriteMatrixMarket requires a matrix, got order %d", m.Order())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintf(bw, "%d %d %d\n", m.Dims[0], m.Dims[1], m.NNZ())
	for p := 0; p < m.NNZ(); p++ {
		fmt.Fprintf(bw, "%d %d %g\n", m.Crds[0][p]+1, m.Crds[1][p]+1, m.Vals[p])
	}
	return bw.Flush()
}

// ReadTNS parses a FROSTT .tns stream: each line is N 1-based coordinates
// followed by a value. Dimensions are inferred as the per-axis maxima
// unless dims is non-nil.
func ReadTNS(r io.Reader, dims []int) (*tensor.COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var coords [][]int
	var vals []float64
	order := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if order == -1 {
			order = len(f) - 1
			if order < 1 {
				return nil, fmt.Errorf("mmio: bad tns line %q", line)
			}
		}
		if len(f) != order+1 {
			return nil, fmt.Errorf("mmio: inconsistent arity in tns line %q", line)
		}
		c := make([]int, order)
		for a := 0; a < order; a++ {
			v, err := strconv.Atoi(f[a])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("mmio: bad coordinate in %q", line)
			}
			c[a] = v - 1
		}
		v, err := strconv.ParseFloat(f[order], 64)
		if err != nil {
			return nil, fmt.Errorf("mmio: bad value in %q", line)
		}
		coords = append(coords, c)
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if order == -1 {
		return nil, fmt.Errorf("mmio: empty tns input")
	}
	if dims == nil {
		dims = make([]int, order)
		for _, c := range coords {
			for a, v := range c {
				if v+1 > dims[a] {
					dims[a] = v + 1
				}
			}
		}
	} else if len(dims) != order {
		return nil, fmt.Errorf("mmio: dims arity %d != tensor order %d", len(dims), order)
	}
	t := tensor.New(dims...)
	for i, c := range coords {
		for a, v := range c {
			if v >= dims[a] {
				return nil, fmt.Errorf("mmio: coordinate %d exceeds dim %d on axis %d", v+1, dims[a], a)
			}
			_ = v
		}
		t.Append(c, vals[i])
	}
	t.Dedup()
	return t, nil
}

// ReadAny reads a tensor from r, sniffing the format from the stream
// itself: a %%MatrixMarket banner selects the Matrix Market reader,
// anything else the FROSTT .tns reader (dims inferred). This is the
// entry point for streamed uploads that arrive without a filename — the
// stream is consumed directly, never spooled to a temporary file.
func ReadAny(r io.Reader) (*tensor.COO, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	banner := "%%matrixmarket"
	head, err := br.Peek(len(banner))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if strings.EqualFold(string(head), banner) {
		return ReadMatrixMarket(br)
	}
	return ReadTNS(br, nil)
}

// WriteTNS writes a tensor in FROSTT format.
func WriteTNS(w io.Writer, t *tensor.COO) error {
	bw := bufio.NewWriter(w)
	for p := 0; p < t.NNZ(); p++ {
		for a := 0; a < t.Order(); a++ {
			fmt.Fprintf(bw, "%d ", t.Crds[a][p]+1)
		}
		fmt.Fprintf(bw, "%g\n", t.Vals[p])
	}
	return bw.Flush()
}
