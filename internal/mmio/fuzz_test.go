package mmio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket checks the reader never panics and that anything
// it accepts survives a write/read round trip.
func FuzzReadMatrixMarket(f *testing.F) {
	seeds := []string{
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 0\n",
		"garbage",
		"%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ReadMatrixMarket(strings.NewReader(s))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted matrix fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("cannot re-write accepted matrix: %v", err)
		}
		if _, err := ReadMatrixMarket(&buf); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzReadTNS checks the tensor reader likewise.
func FuzzReadTNS(f *testing.F) {
	seeds := []string{
		"1 1 1 5.0\n2 3 4 1.5\n",
		"# comment\n1 2 3\n",
		"1\n",
		"0 0 0 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ReadTNS(strings.NewReader(s), nil)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted tensor fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteTNS(&buf, m); err != nil {
			t.Fatalf("cannot re-write accepted tensor: %v", err)
		}
		if _, err := ReadTNS(&buf, m.Dims); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
