package mmio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"d2t2/internal/tensor"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 2.5
3 4 -1
2 2 7
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Dims[0] != 3 || m.Dims[1] != 4 || m.NNZ() != 3 {
		t.Fatalf("dims=%v nnz=%d", m.Dims, m.NNZ())
	}
	d := m.ToDense()
	if d[0][0] != 2.5 || d[2][3] != -1 || d[1][1] != 7 {
		t.Fatalf("values wrong: %v", d)
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 1
2 1 2
3 3 3
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 { // (1,1),(2,1),(1,2),(3,3)
		t.Fatalf("expanded nnz = %d, want 4", m.NNZ())
	}
	d := m.ToDense()
	if d[0][1] != 2 || d[1][0] != 2 {
		t.Fatal("symmetric expansion missing mirror entry")
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Vals[0] != 1 || m.Vals[1] != 1 {
		t.Fatal("pattern entries should have value 1")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2 4\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 3\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3\n",
		"%%MatrixMarket matrix coordinate real general\nnot a size line\n",
		"nonsense header\n2 2 0\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d: invalid input accepted", i)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := tensor.New(5, 7)
	m.Append([]int{0, 6}, 1.5)
	m.Append([]int{4, 0}, -2)
	m.Append([]int{2, 3}, 42)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(m, back) {
		t.Fatal("MatrixMarket round trip lost data")
	}
}

func TestWriteMatrixMarketRejectsTensor(t *testing.T) {
	if err := WriteMatrixMarket(&bytes.Buffer{}, tensor.New(2, 2, 2)); err == nil {
		t.Fatal("3-tensor accepted by matrix writer")
	}
}

func TestReadTNS(t *testing.T) {
	in := `# FROSTT-style
1 1 1 5.0
2 3 4 1.5
`
	m, err := ReadTNS(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() != 3 || m.NNZ() != 2 {
		t.Fatalf("order=%d nnz=%d", m.Order(), m.NNZ())
	}
	if m.Dims[0] != 2 || m.Dims[1] != 3 || m.Dims[2] != 4 {
		t.Fatalf("inferred dims = %v", m.Dims)
	}
}

func TestReadTNSExplicitDims(t *testing.T) {
	in := "1 1 2\n"
	m, err := ReadTNS(strings.NewReader(in), []int{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dims[0] != 10 || m.Dims[1] != 10 {
		t.Fatalf("dims = %v", m.Dims)
	}
	if _, err := ReadTNS(strings.NewReader(in), []int{1, 1, 1}); err == nil {
		t.Fatal("wrong-arity dims accepted")
	}
}

func TestReadTNSErrors(t *testing.T) {
	cases := []string{
		"",
		"1 2\n1 2 3\n",
		"0 1 5\n",
		"1 x 5\n",
	}
	for i, in := range cases {
		if _, err := ReadTNS(strings.NewReader(in), nil); err == nil {
			t.Fatalf("case %d: invalid tns accepted", i)
		}
	}
}

func TestQuickTNSRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := tensor.New(6, 7, 8)
		for i := 0; i < 30; i++ {
			m.Append([]int{r.Intn(6), r.Intn(7), r.Intn(8)}, float64(1+r.Intn(9)))
		}
		m.Dedup()
		var buf bytes.Buffer
		if err := WriteTNS(&buf, m); err != nil {
			return false
		}
		back, err := ReadTNS(&buf, m.Dims)
		if err != nil {
			return false
		}
		return tensor.Equal(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadMatrixMarketSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
3 3 1
2 1 4
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 { // mirrored off-diagonal
		t.Fatalf("nnz = %d", m.NNZ())
	}
}

func TestReadMatrixMarketIntegerAndComments(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
% header comment
2 2 1

1 2 7
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Vals[0] != 7 {
		t.Fatalf("value = %v", m.Vals[0])
	}
	// Unsupported qualifier.
	if _, err := ReadMatrixMarket(strings.NewReader("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 1\n")); err == nil {
		t.Fatal("complex accepted")
	}
}

func TestReadTNSDimsTooSmall(t *testing.T) {
	if _, err := ReadTNS(strings.NewReader("5 5\n"), []int{2, 2}); err == nil {
		t.Fatal("out-of-range coordinate accepted against explicit dims")
	}
}
