// Negative fixture for countername: indexed pre-registered names,
// identifier forwarding, and a justified suppression produce zero
// findings.
package countername_ok

import "expvar"

var panes = expvar.NewMap("dashboard_panes")

var paneNames = [...]string{"optimize", "ingest", "stats"}

// Touch indexes into a fixed name list — the pattern internal/serve
// uses for latency buckets.
func Touch(i int) {
	panes.Add(paneNames[i], 1)
}

// Bump forwards an identifier; callers own the constant.
func Bump(name string) {
	panes.Add(name, 1)
}

// Legacy keeps a dotted name one dashboard still references; the
// suppression records why the convention is waived.
func Legacy() {
	//d2t2:ignore countername grafana panel pins the dotted name until Q4 migration
	panes.Add("legacy.pane", 1)
}
