// Package csfmut is a csfmutation fixture: it is loaded under an import
// path OUTSIDE internal/formats and internal/tiling, so every write to a
// format backing array must be flagged. Reads and writes to local
// slices must not be.
package csfmut

import (
	"d2t2/internal/formats"
	"d2t2/internal/tensor"
)

func mutate(csf *formats.CSF, csr *formats.CSR, dcsr *formats.DCSR) int32 {
	csf.Seg[0][0] = 7                  // want "write to CSF.Seg"
	csf.Crd[0] = append(csf.Crd[0], 1) // want "write to CSF.Crd"
	csr.RowPtr[0]++                    // want "write to CSR.RowPtr"
	dcsr.Rows = nil                    // want "write to DCSR.Rows"
	copy(csf.Vals, []float64{1})       // want "copy into CSF.Vals"

	// Reads of the same fields are fine.
	total := csf.Seg[0][0] + csr.RowPtr[0]

	// Writes to local slices and non-format types are fine.
	local := make([]int32, 4)
	local[0] = total
	return local[0]
}

func construct(t *tensor.COO) *formats.CSF {
	// Building through the package builders is the sanctioned path.
	return formats.Build(t, nil)
}
