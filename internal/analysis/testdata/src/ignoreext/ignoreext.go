// Fixture for suppression-extent rules: an annotation above a
// multi-line statement covers the statement's whole extent, but never
// reaches into a function literal's body.
package ignoreext

import (
	"expvar"

	"d2t2/internal/par"
)

var kinds = expvar.NewMap("fixture_kinds")

// covered: the ignore sits above a call split across lines; the flagged
// concatenation is two lines below the annotation but inside the
// statement's extent, so it is suppressed.
func covered(kind string) {
	//d2t2:ignore countername kinds are a closed enum validated upstream
	kinds.Add(
		"kind_"+kind,
		1,
	)
}

// uncovered: the same write without an annotation must still be flagged.
func uncovered(kind string) {
	kinds.Add(
		"kind_"+kind, // the surviving countername finding
		1,
	)
}

// closureNotBlanketed: the statement extent rule must not let an
// annotation above a par fan-out swallow findings inside the closure
// body — the write below survives.
func closureNotBlanketed(n int) error {
	total := 0
	//d2t2:ignore reductionorder annotation on the call must not blanket the closure
	err := par.ForEach(2, n, func(i int) error {
		total += i // the surviving reductionorder finding
		return nil
	})
	_ = total
	return err
}
