// Fixture for the countername analyzer: expvar registration discipline,
// snake_case names, and dynamic-name bans, including sink discovery
// through a module wrapper.
package countername

import (
	"expvar"
	"fmt"
)

var (
	hits = expvar.NewInt("fixture_hits") // legal: package level, snake_case
	m    = expvar.NewMap("fixture_counters")
)

var badName = expvar.NewInt("Fixture-Hits") // want "not snake_case"

func init() {
	expvar.Publish("fixture_depth", hits) // legal: init-time registration
}

func Record(kind string, n int64) {
	late := expvar.NewInt("late_counter") // want "outside init"
	_ = late
	m.Add("req_"+kind, 1)                 // want "concatenated"
	m.Add(fmt.Sprintf("req_%s", kind), 1) // want "computed by a call"
	m.Add("requests_total", n)            // legal: constant snake_case
	bump("Bad.Name", 1)                   // want "not snake_case"
	bump("good_name", 1)                  // legal: wrapper sink, clean name
}

// bump forwards its name parameter into expvar.Map.Add, so the call
// graph fixpoint marks it a counter sink and checks its callers.
func bump(name string, delta int64) {
	m.Add(name, delta)
}
