// Negative fixture for scratchescape: copies, scratch-internal writes,
// the constructor-registration merge pattern, and a justified
// suppression produce zero findings.
package scratchescape_ok

import (
	"sync"

	"d2t2/internal/par"
)

// Copies materializes fresh backing before anything leaves the closure.
func Copies(rows [][]int) ([][]int, error) {
	out := make([][]int, len(rows))
	var last []int
	err := par.ForEachScratch(4, len(rows),
		func() []int { return make([]int, 0, 8) },
		func(i int, scratch []int) error {
			scratch = append(scratch[:0], rows[i]...)
			out[i] = append([]int(nil), scratch...)
			//d2t2:ignore scratchescape diagnostics-only tap, overwritten before reuse matters
			last = scratch
			return nil
		})
	_ = last
	return out, err
}

type agg struct{ total int }

// Registered is the stats-collector pattern: the scratch *constructor*
// may retain what it creates for a post-join commutative merge; only
// the per-item closure is under the escape contract.
func Registered(n int) (int, error) {
	var mu sync.Mutex
	var aggs []*agg
	err := par.ForEachScratch(4, n,
		func() *agg {
			a := &agg{}
			mu.Lock()
			aggs = append(aggs, a)
			mu.Unlock()
			return a
		},
		func(i int, scratch *agg) error {
			scratch.total += i
			return nil
		})
	sum := 0
	for _, a := range aggs {
		sum += a.total
	}
	return sum, err
}
