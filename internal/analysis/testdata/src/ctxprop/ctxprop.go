// Fixture for the ctxpropagation analyzer: dropped contexts, fresh root
// contexts in library code, and non-wrapper Ctx siblings.
package ctxprop

import "context"

// SlowCtx is the cancellable twin; Slow below duplicates logic instead
// of delegating, so it is flagged.
func SlowCtx(ctx context.Context, n int) int {
	_ = ctx
	return n * 2
}

func Slow(n int) int { // want "not the documented wrapper"
	x := n * 2
	return SlowCtx(context.Background(), x) // want "detaches this path"
}

// RunCtx / Run form the documented wrapper pair: Run's Background() is
// the one licensed fresh root.
func RunCtx(ctx context.Context, n int) int {
	_ = ctx
	return n + 1
}

func Run(n int) int {
	return RunCtx(context.Background(), n)
}

// Handle has a ctx in scope and calls around Slow's cancellable twin.
func Handle(ctx context.Context, n int) int {
	_ = ctx
	return Slow(n) // want "drops the in-scope context"
}

// Detached mints a root context mid-path with no wrapper shape at all.
func Detached(n int) int {
	ctx := context.TODO() // want "context.TODO"
	return RunCtx(ctx, n)
}

// DropsDespiteShape looks like the wrapper, but a function with its own
// ctx parameter is never licensed to mint a fresh root.
func DropsDespiteShape(ctx context.Context, n int) int {
	_ = ctx
	return RunCtx(context.Background(), n) // want "detaches this path"
}

// Rebound: a nested closure introduces its own ctx parameter, which
// becomes the context the fix should thread.
func Rebound(ctx context.Context) func(context.Context) int {
	return func(inner context.Context) int {
		_ = inner
		return Slow(3) // want "drops the in-scope context"
	}
}
