// Negative fixture for ctxpropagation: the wrapper pattern, threaded
// contexts, and a justified suppression produce zero findings.
package ctxprop_ok

import "context"

func SeedCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Seed is the documented non-ctx wrapper: single delegating return.
func Seed(n int) int {
	return SeedCtx(context.Background(), n)
}

// warm deliberately detaches a fire-and-forget path; the suppression
// carries the justification.
func warm(ctx context.Context, n int) int {
	_ = ctx
	//d2t2:ignore ctxpropagation cache warm outlives the request on purpose
	bg := context.Background()
	return SeedCtx(bg, n)
}

// threaded does it right: the in-scope ctx reaches the Ctx sibling.
func threaded(ctx context.Context, n int) int {
	return SeedCtx(ctx, warm(ctx, n))
}

// SeedWorkers is the middle rung of a convenience chain
// (Seed → SeedWorkers → seedWorkersCtx): a delegating wrapper whose
// callee is not its own name-sibling. Its fresh root is licensed by the
// delegation shape.
func SeedWorkers(n, workers int) int {
	return seedWorkersCtx(context.Background(), n, workers)
}

func seedWorkersCtx(ctx context.Context, n, workers int) int {
	_ = ctx
	return n * workers
}
