// Fixture for the reductionorder analyzer: schedule-dependent writes
// inside par fan-out closures.
package reductionorder

import "d2t2/internal/par"

// Bad exercises the captured-scalar, captured-map, and off-index
// slice-write rules.
func Bad(n int) ([]int, map[int]int, error) {
	var all []int
	seen := map[int]int{}
	total := 0
	out := make([]int, n)
	k := 0
	err := par.ForEach(4, n, func(i int) error {
		all = append(all, i) // want "assignment to captured"
		seen[i] = i          // want "write to captured map"
		total++              // want "assignment to captured"
		out[k] = i           // want "independent of the claimed item"
		out[i] = i           // legal: the claimed index's slot
		j := i * 2
		out[j%n] = j // legal: index derived from a closure local
		return nil
	})
	_ = total
	return all, seen, err
}

type acc struct{ sum int }

// BadField writes a field through a captured struct.
func BadField(n int) error {
	var a acc
	err := par.ForEach(2, n, func(i int) error {
		a.sum += i // want "field write through captured"
		return nil
	})
	_ = a
	return err
}

// BadPtr writes through a captured pointer.
func BadPtr(n int, p *int) error {
	return par.ForEach(2, n, func(i int) error {
		*p = i // want "write through captured pointer"
		return nil
	})
}
