// Command panicmain is the panicpolicy negative fixture: panics in main
// packages are allowed.
package main

func main() {
	if len("") != 0 {
		panic("unreachable")
	}
}
