// Fixture for d2t2vet -fix: the Do call inside Caller drops the
// in-scope context; the suggested fix rewrites it to the DoCtx sibling.
// fix_test copies this directory into a temp module, applies the fix,
// and re-typechecks the result.
package ctxfix

import "context"

func DoCtx(ctx context.Context, n int) int {
	_ = ctx
	return n + 1
}

func Do(n int) int {
	return DoCtx(context.Background(), n)
}

func Caller(ctx context.Context, n int) int {
	return Do(n)
}

func CallerArgless(ctx context.Context) int {
	_ = ctx
	return Now()
}

func NowCtx(ctx context.Context) int {
	_ = ctx
	return 7
}

func Now() int {
	return NowCtx(context.Background())
}
