// Fixture for the scratchescape analyzer: scratch references leaking
// out of par.ForEachScratch/MapScratch per-item closures.
package scratchescape

import "d2t2/internal/par"

// Leaks stores a scratch-derived alias to a captured variable.
func Leaks(rows [][]int) ([][]int, error) {
	var leaked []int
	out := make([][]int, len(rows))
	err := par.ForEachScratch(4, len(rows),
		func() []int { return make([]int, 0, 8) },
		func(i int, scratch []int) error {
			buf := scratch[:0]
			for _, v := range rows[i] {
				buf = append(buf, v*v)
			}
			leaked = buf // want "stored to captured"
			out[i] = append([]int(nil), buf...)
			return nil
		})
	_ = leaked
	return out, err
}

// Returns leaks the scratch as the item result.
func Returns(rows [][]int) ([][]int, error) {
	return par.MapScratch(4, len(rows),
		func() []int { return make([]int, 0, 8) },
		func(i int, scratch []int) ([]int, error) {
			for _, v := range rows[i] {
				scratch = append(scratch, v*v)
			}
			return scratch, nil // want "leaks worker-private backing as the item result"
		})
}

// Sends leaks a scratch sub-slice over a channel.
func Sends(rows [][]int, ch chan []int) error {
	return par.ForEachScratch(2, len(rows),
		func() []int { return make([]int, 4) },
		func(i int, scratch []int) error {
			ch <- scratch[:1] // want "sending a scratch-derived value"
			return nil
		})
}

// Wrapped leaks through a composite literal embedding the alias.
type row struct{ vals []int }

func Wrapped(rows [][]int) ([]row, error) {
	return par.MapScratch(2, len(rows),
		func() []int { return make([]int, 0, 8) },
		func(i int, scratch []int) (row, error) {
			scratch = append(scratch[:0], rows[i]...)
			return row{vals: scratch}, nil // want "leaks worker-private backing"
		})
}
