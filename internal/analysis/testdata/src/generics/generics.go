// Loader fixture: generic declarations and instantiations of the par
// kit's generic entry points must type-check and analyze cleanly.
package generics

import "d2t2/internal/par"

type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// Zip instantiates par.Map with a locally declared generic type.
func Zip[K comparable, V any](ks []K, vs []V) ([]Pair[K, V], error) {
	return par.Map(2, len(ks), func(i int) (Pair[K, V], error) {
		return Pair[K, V]{Key: ks[i], Val: vs[i]}, nil
	})
}

// Doubles instantiates the scratch variant with two type arguments.
func Doubles(xs []int) ([]int, error) {
	return par.MapScratch(2, len(xs),
		func() []int { return nil },
		func(i int, scratch []int) (int, error) {
			_ = scratch
			return xs[i] * 2, nil
		})
}
