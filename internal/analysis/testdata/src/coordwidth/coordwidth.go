// Package coordwidth is a coordwidth fixture: unguarded narrowing to
// the int32 coordinate width must be flagged; guarded, constant and
// widening conversions must not be.
package coordwidth

import "math"

func narrowUnguarded(n int, u uint64) int32 {
	a := int32(n) // want "unguarded narrowing of int to int32"
	b := int16(n) // want "unguarded narrowing of int to int16"
	c := int32(u) // want "unguarded narrowing of uint64 to int32"
	return a + int32(b) + c
}

func narrowGuarded(n int) int32 {
	if n > math.MaxInt32 {
		return 0
	}
	return int32(n) // guarded by the MaxInt32 check above
}

func constantsAndWidening(x int32, y int8) (int32, int64, int) {
	k := int32(1 << 20) // constant in range is fine
	w := int64(x)       // widening is fine
	i := int(x)         // int is 64-bit here; widening
	_ = int32(y)        // int8 -> int32 widens
	return k, w, i
}

func suppressedNarrow(n int) int32 {
	//d2t2:ignore coordwidth fixture: exercising the suppression machinery
	return int32(n)
}
