// Negative fixture for reductionorder: per-index slots, post-join
// reductions, and a justified suppression produce zero findings.
package reductionorder_ok

import (
	"sync"

	"d2t2/internal/par"
)

// Sum reduces after the join — the deterministic shape the analyzer
// pushes toward.
func Sum(xs []int) (int, error) {
	parts, err := par.Map(4, len(xs), func(i int) (int, error) {
		return xs[i] * xs[i], nil
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, p := range parts {
		total += p
	}
	return total, nil
}

// Slots writes only into the claimed index's slot.
func Slots(xs []int) ([]int, error) {
	out := make([]int, len(xs))
	err := par.ForEach(4, len(xs), func(i int) error {
		v := xs[i]
		out[i] = v * v
		return nil
	})
	return out, err
}

// Locked documents a commutative mutex-guarded sum; order independence
// is the justification the suppression records.
func Locked(n int) (int, error) {
	var mu sync.Mutex
	total := 0
	err := par.ForEach(4, n, func(i int) error {
		mu.Lock()
		//d2t2:ignore reductionorder commutative integer sum under mu
		total += i
		mu.Unlock()
		return nil
	})
	return total, err
}
