// Package floatdet is a floatdeterminism fixture, loaded under an
// import path inside internal/model so the scoped checks apply.
package floatdet

import (
	"math/rand"
	"sort"
)

// Table mirrors the experiments.Table output type by name; the analyzer
// keys the map-iteration check on the receiver type name.
type Table struct{ Rows [][]string }

func (t *Table) Append(cells ...any) { t.Rows = append(t.Rows, nil) }

func compare(a, b float64, n, m int) bool {
	if a == b { // want "exact == on floating-point operands"
		return true
	}
	if a != 0 { // want "exact != on floating-point operands"
		return false
	}
	if n == m { // integer equality is fine
		return true
	}
	return a < b // ordered float comparison is fine
}

func comparedToleranced(a, b float64) bool {
	const eps = 1e-9
	d := a - b
	return d < eps && d > -eps
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want "package-global math/rand.Shuffle"
	return rand.Intn(5)                // want "package-global math/rand.Intn"
}

func seededRand() int {
	r := rand.New(rand.NewSource(42)) // explicit generator construction is fine
	return r.Intn(5)
}

func rowsFromMap(t *Table, m map[string]float64) {
	for k, v := range m {
		t.Append(k, v) // want "Table.Append inside map iteration"
	}
}

func rowsSorted(t *Table, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m { // map range without output rows is fine
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.Append(k, m[k]) // slice range is fine
	}
}

func suppressed(a, b float64) bool {
	//d2t2:ignore floatdeterminism fixture: exercising the suppression machinery
	return a == b
}
