// Package allowed is the csfmutation negative fixture: the same writes
// as the csfmut fixture, but the test loads it under an import path
// inside internal/tiling, where builders may legitimately mutate the
// backing arrays. No diagnostics are expected.
package allowed

import "d2t2/internal/formats"

func mutateInOwner(csf *formats.CSF, csr *formats.CSR) {
	csf.Seg[0][0] = 7
	csf.Crd[0] = append(csf.Crd[0], 1)
	csr.RowPtr[0]++
}
