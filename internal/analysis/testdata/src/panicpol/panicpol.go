// Package panicpol is a panicpolicy fixture: library panics are
// flagged; Must-prefixed wrappers, annotated invariants and test files
// are exempt.
package panicpol

import "errors"

func libraryPanic(n int) {
	if n < 0 {
		panic("negative") // want "panic in library code"
	}
}

type parser struct{}

func (p *parser) parse(s string) string {
	if s == "" {
		panic("empty input") // want "panic in library code"
	}
	return s
}

// MustParse follows the standard Must convention: exempt.
func MustParse(s string) string {
	if s == "" {
		panic("empty input")
	}
	return s
}

func annotatedInvariant(n int) {
	if n < 0 {
		//d2t2:ignore panicpolicy fixture: exercising the suppression machinery
		panic("unreachable by construction")
	}
}

func returnsError(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}
