package panicpol

// Panics in test files are exempt from panicpolicy even when the loader
// includes them.
func testHelperPanics() {
	panic("test-only panic is fine")
}
