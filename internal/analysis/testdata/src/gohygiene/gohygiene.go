// Package gohygiene is a goroutinehygiene fixture: goroutines without a
// join signal and captured-map writes inside goroutines are flagged;
// WaitGroup/channel-joined launches and private state are not.
package gohygiene

import "sync"

func work() {}

func unjoined() {
	go func() { // want "no join signal"
		work()
	}()
}

func unjoinedNamed() {
	go work() // want "without a visible join"
}

func capturedMap(shared map[string]int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		shared["k"] = 1 // want "write to captured map"
	}()
	wg.Wait()
}

func waitGroupJoined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // Done signals completion: fine
		defer wg.Done()
		work()
	}()
}

func channelJoined() <-chan int {
	ch := make(chan int, 1)
	go func() { // channel send signals completion: fine
		work()
		ch <- 1
	}()
	return ch
}

func namedWithChannel(ch chan int) {
	go producer(ch) // channel argument: caller can join
}

func producer(ch chan int) { ch <- 1 }

func privateMap() {
	done := make(chan struct{})
	go func() {
		local := map[string]int{} // goroutine-private map: fine
		local["k"] = 1
		close(done)
	}()
	<-done
}

func lockedMap(shared map[string]int, mu *sync.Mutex, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		shared["k"] = 1 // lock held: deliberate synchronization
		mu.Unlock()
	}()
}
