// Loader fixture: a package whose only files are _test.go files. The
// loader must surface it when IncludeTests is set and report "no Go
// files" otherwise.
package testonly

import "testing"

func double(n int) int { return n * 2 }

func TestDouble(t *testing.T) {
	if double(2) != 4 {
		t.Fatal("double(2) != 4")
	}
}
