package analysis

import (
	"runtime"
	"testing"
)

// TestBuildConstraintSatisfied pins the loader's //go:build evaluation:
// the suite analyzes the default build configuration (no optional tags),
// so a `race` file is skipped, its `!race` twin kept, and files without
// constraints are always kept. Without this, tag-paired files like
// internal/raceflag's redeclare their symbols in one type-check.
func TestBuildConstraintSatisfied(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"no constraint", "package p\n", true},
		{"race", "//go:build race\n\npackage p\n", false},
		{"not race", "//go:build !race\n\npackage p\n", true},
		{"doc comment then package", "// Package p does things.\npackage p\n", true},
		{"constraint after blank", "\n//go:build race\n\npackage p\n", false},
		{"or with satisfied os", "//go:build race || " + runtime.GOOS + "\n\npackage p\n", true},
		{"and with tag", "//go:build " + runtime.GOOS + " && race\n\npackage p\n", false},
		{"go version tag", "//go:build go1.22\n\npackage p\n", true},
		{"past package clause is not a constraint", "package p\n\n// comment mentioning //go:build race\n", true},
		{"malformed falls through to the parser", "//go:build &&&\n\npackage p\n", true},
	}
	for _, tc := range cases {
		if got := buildConstraintSatisfied([]byte(tc.src)); got != tc.want {
			t.Errorf("%s: buildConstraintSatisfied = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestLoadTagPairedPackage loads internal/raceflag for real: before the
// loader honored build constraints this failed type-checking with
// "Enabled redeclared".
func TestLoadTagPairedPackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Load("d2t2/internal/raceflag")
	if err != nil {
		t.Fatalf("loading a tag-paired package: %v", err)
	}
	obj := p.Types.Scope().Lookup("Enabled")
	if obj == nil {
		t.Fatal("raceflag.Enabled not found")
	}
}
