package analysis

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestBuildConstraintSatisfied pins the loader's //go:build evaluation:
// the suite analyzes the default build configuration (no optional tags),
// so a `race` file is skipped, its `!race` twin kept, and files without
// constraints are always kept. Without this, tag-paired files like
// internal/raceflag's redeclare their symbols in one type-check.
func TestBuildConstraintSatisfied(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"no constraint", "package p\n", true},
		{"race", "//go:build race\n\npackage p\n", false},
		{"not race", "//go:build !race\n\npackage p\n", true},
		{"doc comment then package", "// Package p does things.\npackage p\n", true},
		{"constraint after blank", "\n//go:build race\n\npackage p\n", false},
		{"or with satisfied os", "//go:build race || " + runtime.GOOS + "\n\npackage p\n", true},
		{"and with tag", "//go:build " + runtime.GOOS + " && race\n\npackage p\n", false},
		{"go version tag", "//go:build go1.22\n\npackage p\n", true},
		{"past package clause is not a constraint", "package p\n\n// comment mentioning //go:build race\n", true},
		{"malformed falls through to the parser", "//go:build &&&\n\npackage p\n", true},
	}
	for _, tc := range cases {
		if got := buildConstraintSatisfied([]byte(tc.src)); got != tc.want {
			t.Errorf("%s: buildConstraintSatisfied = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestLoadTagPairedPackage loads internal/raceflag for real: before the
// loader honored build constraints this failed type-checking with
// "Enabled redeclared".
func TestLoadTagPairedPackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Load("d2t2/internal/raceflag")
	if err != nil {
		t.Fatalf("loading a tag-paired package: %v", err)
	}
	obj := p.Types.Scope().Lookup("Enabled")
	if obj == nil {
		t.Fatal("raceflag.Enabled not found")
	}
}

// TestLoadGenericsFixture type-checks a fixture that declares its own
// generic type and instantiates par's generic entry points, then runs
// the full suite over it — instantiation must not confuse callee
// resolution (CalleeOf normalizes through Origin).
func TestLoadGenericsFixture(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "generics"), "d2t2/internal/fixture_generics")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Scope().Lookup("Zip") == nil {
		t.Fatal("generic Zip not in package scope")
	}
	if diags := Run(pkg, Analyzers()); len(diags) != 0 {
		t.Fatalf("generics fixture should be clean under the full suite, got:\n%s", formatDiags(diags))
	}
}

// TestLoadTestOnlyPackage covers a package directory holding only
// _test.go files: invisible by default, loadable with IncludeTests.
func TestLoadTestOnlyPackage(t *testing.T) {
	dir := filepath.Join("testdata", "src", "testonly")

	l1, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l1.LoadDir(dir, "d2t2/internal/fixture_testonly"); err == nil {
		t.Fatal("LoadDir without IncludeTests succeeded on a test-only package; want 'no Go files'")
	} else if !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("unexpected error: %v", err)
	}

	l2, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l2.IncludeTests = true
	pkg, err := l2.LoadDir(dir, "d2t2/internal/fixture_testonly")
	if err != nil {
		t.Fatalf("LoadDir with IncludeTests: %v", err)
	}
	if pkg.Types.Name() != "testonly" {
		t.Fatalf("package name %q, want testonly", pkg.Types.Name())
	}
	if pkg.Types.Scope().Lookup("TestDouble") == nil {
		t.Fatal("TestDouble not found in test-only package scope")
	}
}
