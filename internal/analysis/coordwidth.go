package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"math"
)

// CoordWidth flags lossy integer narrowing into the int32 coordinate
// width without a visible bounds guard. Tile coordinates, segment
// pointers and fiber positions are stored as int32 throughout the
// formats; an unchecked int→int32 conversion on a large tensor silently
// wraps and corrupts the trie instead of failing. A conversion is
// accepted when it is constant and in range, when the enclosing function
// visibly guards against math.MaxInt32, or when it goes through
// internal/checked (which panics on overflow instead of wrapping).
var CoordWidth = &Analyzer{
	Name: "coordwidth",
	Doc:  "flags unguarded narrowing conversions to the int32 coordinate width",
	Run:  runCoordWidth,
}

func runCoordWidth(p *Pass) {
	for _, f := range p.Files {
		var fns []ast.Node // enclosing FuncDecl/FuncLit stack
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				fns = append(fns, e)
				var body *ast.BlockStmt
				if fd, ok := e.(*ast.FuncDecl); ok {
					body = fd.Body
				} else {
					body = e.(*ast.FuncLit).Body
				}
				if body != nil {
					ast.Inspect(body, walk)
				}
				fns = fns[:len(fns)-1]
				return false
			case *ast.CallExpr:
				p.checkNarrowing(e, fns)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

func (p *Pass) checkNarrowing(call *ast.CallExpr, fns []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return
	}
	switch dst.Kind() {
	case types.Int32, types.Int16, types.Int8:
	default:
		return
	}
	arg := call.Args[0]
	at := p.TypeOf(arg)
	if at == nil {
		return
	}
	src, ok := at.Underlying().(*types.Basic)
	if !ok || src.Info()&types.IsInteger == 0 {
		return
	}
	if narrowOK(src.Kind(), dst.Kind()) {
		return
	}
	// Constants that provably fit are fine.
	if av, ok := p.Info.Types[arg]; ok && av.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(av.Value)); exact && fits(v, dst.Kind()) {
			return
		}
	}
	// A function that visibly compares against math.MaxInt32 (or the
	// narrower bounds) is treated as guarded: the idiom is one range
	// check at entry covering the conversions below it.
	for i := len(fns) - 1; i >= 0; i-- {
		if p.mentionsBoundsGuard(fns[i]) {
			return
		}
	}
	p.Reportf(call.Pos(), "unguarded narrowing of %s to %s can silently wrap on large tensors; use checked.Int32 or guard against math.MaxInt32", src.Name(), dst.Name())
}

// narrowOK reports conversions that cannot lose a value in range.
func narrowOK(src, dst types.BasicKind) bool {
	width := func(k types.BasicKind) int {
		switch k {
		case types.Int8, types.Uint8:
			return 8
		case types.Int16, types.Uint16:
			return 16
		case types.Int32, types.Uint32:
			return 32
		default:
			return 64
		}
	}
	return width(src) < width(dst) || (width(src) == width(dst) && src == dst)
}

func fits(v int64, k types.BasicKind) bool {
	switch k {
	case types.Int32:
		return v >= math.MinInt32 && v <= math.MaxInt32
	case types.Int16:
		return v >= math.MinInt16 && v <= math.MaxInt16
	case types.Int8:
		return v >= math.MinInt8 && v <= math.MaxInt8
	}
	return false
}

// mentionsBoundsGuard reports whether the function syntactically
// references math.MaxInt32/MaxInt16/MaxInt8 (the visible guard idiom).
func (p *Pass) mentionsBoundsGuard(fn ast.Node) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "MaxInt32", "MaxInt16", "MaxInt8":
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "math" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
