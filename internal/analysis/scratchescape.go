package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// parPkgPath is the parallelism kit whose closure contracts the
// scratchescape and reductionorder analyzers enforce.
const parPkgPath = "d2t2/internal/par"

// scratchFanouts are the par entry points whose per-item closure
// receives a worker-private scratch value as its second parameter.
var scratchFanouts = map[string]bool{
	"ForEachScratch":    true,
	"ForEachScratchCtx": true,
	"MapScratch":        true,
	"MapScratchCtx":     true,
}

// ScratchEscape enforces the ownership contract of
// par.ForEachScratch/MapScratch (and their Ctx variants): the scratch
// value handed to the per-item closure is for capacity reuse only. A
// reference derived from it (the scratch itself, a field, an element,
// or an alias bound through a local) must not be stored to captured
// variables, returned as the item's result, or sent on a channel —
// which worker touches which item varies run to run, so a leaked
// scratch reference makes results schedule-dependent and races with the
// scratch's next item. Copies are fine: calls (formats builders,
// slices.Clone, copy) launder the taint because they materialize new
// backing. The scratch *constructor* may retain the value it creates —
// that is the registration pattern the stats collector uses for
// post-join commutative merges — so only the per-item closure is
// checked.
var ScratchEscape = &Analyzer{
	Name: "scratchescape",
	Doc:  "flags scratch values of par.ForEachScratch/MapScratch closures escaping via captured variables, returns, or channel sends",
	Run:  runScratchEscape,
}

func runScratchEscape(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := CalleeOf(p.Info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != parPkgPath ||
				!scratchFanouts[callee.Name()] || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			p.checkScratchClosure(lit)
			return true
		})
	}
}

func (p *Pass) checkScratchClosure(lit *ast.FuncLit) {
	scratch := scratchParamObj(p, lit)
	if scratch == nil {
		return
	}
	taint := map[types.Object]bool{scratch: true}
	p.propagateScratchTaint(lit, taint)

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true // multi-value from a call: taint laundered
			}
			for i, lhs := range st.Lhs {
				if !p.aliasesScratch(st.Rhs[i], taint) {
					continue
				}
				root := p.rootObjOf(lhs)
				if root != nil && !withinNode(root, lit) {
					p.ReportNodef(st, "scratch-derived value stored to captured %q escapes the par closure; scratch is capacity-reuse only — copy into per-index state instead", root.Name())
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if p.aliasesScratch(res, taint) {
					p.ReportNodef(st, "returning a scratch-derived value leaks worker-private backing as the item result; copy it (the schedule decides which item reuses it next)")
				}
			}
		case *ast.SendStmt:
			if p.aliasesScratch(st.Value, taint) {
				p.ReportNodef(st, "sending a scratch-derived value on a channel leaks worker-private backing; copy it before the send")
			}
		}
		return true
	})
}

// scratchParamObj returns the object of the closure's scratch parameter
// (the second parameter of the per-item func), or nil when unnamed.
func scratchParamObj(p *Pass, lit *ast.FuncLit) types.Object {
	if lit.Type.Params == nil {
		return nil
	}
	var names []*ast.Ident
	for _, field := range lit.Type.Params.List {
		if len(field.Names) == 0 {
			names = append(names, nil)
			continue
		}
		names = append(names, field.Names...)
	}
	if len(names) < 2 || names[1] == nil || names[1].Name == "_" {
		return nil
	}
	return p.Info.Defs[names[1]]
}

// propagateScratchTaint grows the taint set to locals bound to
// scratch-derived references (x := scratch.buf; for _, v := range
// scratch.rows) until a fixpoint.
func (p *Pass) propagateScratchTaint(lit *ast.FuncLit, taint map[types.Object]bool) {
	for changed := true; changed; {
		changed = false
		mark := func(id *ast.Ident) {
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj != nil && withinNode(obj, lit) && !taint[obj] {
				taint[obj] = true
				changed = true
			}
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if ok && p.aliasesScratch(st.Rhs[i], taint) {
						mark(id)
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i, id := range st.Names {
						if p.aliasesScratch(st.Values[i], taint) {
							mark(id)
						}
					}
				}
			case *ast.RangeStmt:
				if p.rootedAtTaint(st.X, taint) {
					if id, ok := st.Value.(*ast.Ident); ok && referenceLike(p.TypeOf(id)) {
						mark(id)
					}
				}
			}
			return true
		})
	}
}

// aliasesScratch reports whether evaluating e yields a value sharing
// memory with the scratch: a tainted identifier, a selector/index/slice
// chain rooted at one, an address into one, a composite literal
// embedding one, or an append whose result may keep tainted backing.
// Values of basic type never alias (they are copies), and calls other
// than append launder taint — they return freshly built values by the
// codebase's builder conventions.
func (p *Pass) aliasesScratch(e ast.Expr, taint map[types.Object]bool) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return p.aliasesScratch(x.X, taint)
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		return obj != nil && taint[obj] && referenceLike(p.TypeOf(x))
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return referenceLike(p.TypeOf(e)) && p.rootedAtTaint(e, taint)
	case *ast.SliceExpr:
		return p.rootedAtTaint(x.X, taint)
	case *ast.UnaryExpr:
		return x.Op == token.AND && p.rootedAtTaint(x.X, taint)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if p.aliasesScratch(el, taint) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && p.Info.Uses[id] == nil {
			if len(x.Args) > 0 && p.aliasesScratch(x.Args[0], taint) {
				return true
			}
			for i, a := range x.Args[1:] {
				spread := x.Ellipsis.IsValid() && i == len(x.Args)-2
				if spread {
					// Spread copies the elements; it aliases only when
					// the element type itself holds references.
					if p.rootedAtTaint(a, taint) && sliceElemReferenceLike(p.TypeOf(a)) {
						return true
					}
				} else if p.aliasesScratch(a, taint) {
					return true
				}
			}
		}
		return false
	default:
		return false
	}
}

// rootedAtTaint peels selector/index/slice/star/paren/address chains to
// the base identifier and reports whether it is tainted.
func (p *Pass) rootedAtTaint(e ast.Expr, taint map[types.Object]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			e = x.X
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			return obj != nil && taint[obj]
		default:
			return false
		}
	}
}

// rootObjOf peels an assignable expression to its base identifier's
// object: x, x.f, x[i], (*x).f[j] all root at x.
func (p *Pass) rootObjOf(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		default:
			return nil
		}
	}
}

// withinNode reports whether obj is declared inside n's extent.
func withinNode(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}

// referenceLike reports whether values of t can share backing memory:
// slices, maps, pointers, channels, funcs, interfaces, and aggregates
// containing any of those. Basic values and strings are copies.
func referenceLike(t types.Type) bool {
	return refLike(t, 0)
}

func refLike(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return refLike(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLike(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// sliceElemReferenceLike reports whether t is a slice (or array) whose
// element type holds references.
func sliceElemReferenceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return referenceLike(u.Elem())
	case *types.Array:
		return referenceLike(u.Elem())
	}
	return false
}
