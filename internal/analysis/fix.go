package analysis

import (
	"fmt"
	"os"
	"sort"
)

// TextEdit replaces the byte range [Start, End) of Filename with
// NewText. Offsets are byte offsets into the file as parsed (the
// token.Position.Offset of the edited nodes), so edits stay valid only
// until the file changes — d2t2vet computes and applies them in one run.
type TextEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	NewText  string `json:"new_text"`
}

// SuggestedFix is a mechanical rewrite attached to a Diagnostic. All
// edits of one fix apply atomically: if any edit conflicts with an
// already-applied fix, the whole fix is skipped.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// ApplyFixes applies the suggested fixes of the given diagnostics to the
// files on disk. Fixes are applied in diagnostic order; a fix whose
// edits overlap an earlier fix's edits is skipped (re-running d2t2vet
// picks it up against the rewritten source). It returns the filenames
// that changed, the number of fixes applied, and the number skipped.
func ApplyFixes(diags []Diagnostic) (changed []string, applied, skipped int, err error) {
	// Load each touched file once.
	srcs := map[string][]byte{}
	load := func(name string) error {
		if _, ok := srcs[name]; ok {
			return nil
		}
		b, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		srcs[name] = b
		return nil
	}

	type span struct{ start, end int }
	taken := map[string][]span{}
	overlaps := func(name string, start, end int) bool {
		for _, s := range taken[name] {
			if start < s.end && s.start < end {
				return true
			}
		}
		return false
	}

	var accepted []TextEdit
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		ok := true
		for _, e := range d.Fix.Edits {
			if err := load(e.Filename); err != nil {
				return nil, applied, skipped, err
			}
			if e.Start < 0 || e.End < e.Start || e.End > len(srcs[e.Filename]) {
				ok = false
				break
			}
			if overlaps(e.Filename, e.Start, e.End) {
				ok = false
				break
			}
		}
		if !ok {
			skipped++
			continue
		}
		for _, e := range d.Fix.Edits {
			taken[e.Filename] = append(taken[e.Filename], span{e.Start, e.End})
			accepted = append(accepted, e)
		}
		applied++
	}
	if applied == 0 {
		return nil, 0, skipped, nil
	}

	// Group accepted edits by file and apply back-to-front so earlier
	// offsets stay valid.
	byFile := map[string][]TextEdit{}
	for _, e := range accepted {
		byFile[e.Filename] = append(byFile[e.Filename], e)
	}
	for name, edits := range byFile {
		out, err := applyEdits(srcs[name], edits)
		if err != nil {
			return nil, applied, skipped, fmt.Errorf("analysis: fixing %s: %w", name, err)
		}
		if err := os.WriteFile(name, out, 0o644); err != nil {
			return nil, applied, skipped, err
		}
		changed = append(changed, name)
	}
	sort.Strings(changed)
	return changed, applied, skipped, nil
}

// applyEdits applies non-overlapping edits to src and returns the
// rewritten bytes.
func applyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	sorted := append([]TextEdit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start > sorted[j].Start })
	out := append([]byte(nil), src...)
	prevStart := len(src) + 1
	for _, e := range sorted {
		if e.End > prevStart {
			return nil, fmt.Errorf("overlapping edits at offset %d", e.Start)
		}
		prevStart = e.Start
		next := make([]byte, 0, len(out)+len(e.NewText)-(e.End-e.Start))
		next = append(next, out[:e.Start]...)
		next = append(next, e.NewText...)
		next = append(next, out[e.End:]...)
		out = next
	}
	return out, nil
}
