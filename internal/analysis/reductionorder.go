package analysis

import (
	"go/ast"
	"go/types"
)

// parFanouts are the par entry points whose per-item closure runs
// concurrently under the lowest-index-error-wins contract.
var parFanouts = map[string]bool{
	"ForEach":           true,
	"ForEachCtx":        true,
	"ForEachScratch":    true,
	"ForEachScratchCtx": true,
	"Map":               true,
	"MapCtx":            true,
	"MapScratch":        true,
	"MapScratchCtx":     true,
}

// ReductionOrder enforces the determinism contract of closures handed
// to par.ForEach*/Map*: because item→worker scheduling varies run to
// run, the closure may only write into per-index state — the slot of
// the item index it was claimed for (or an index derived from values
// computed inside the closure). Flagged as schedule-dependent:
//
//   - plain assignment to a captured variable (including the
//     `shared = append(shared, ...)` growth pattern — append order is
//     the schedule, and the header write races);
//   - writes to captured maps (racy, and iteration order of the result
//     depends on insertion schedule);
//   - index-assignment to a captured slice at an index computed purely
//     from captured state (no dependence on the claimed index or any
//     closure-local);
//   - field writes through captured structs.
//
// Commutative reductions belong in per-worker scratch state
// (par.ForEachScratch) merged after the join — see scratchescape for
// that side of the contract.
var ReductionOrder = &Analyzer{
	Name: "reductionorder",
	Doc:  "flags schedule-dependent writes (captured scalars, maps, non-index slice slots) inside par.ForEach*/Map* closures",
	Run:  runReductionOrder,
}

func runReductionOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := CalleeOf(p.Info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != parPkgPath ||
				!parFanouts[callee.Name()] || len(call.Args) == 0 {
				return true
			}
			if lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit); ok {
				p.checkFanoutClosure(lit)
			}
			return true
		})
	}
}

func (p *Pass) checkFanoutClosure(lit *ast.FuncLit) {
	// Nested par fan-outs get their own closure visit; skip their bodies
	// here so a finding is attributed to the closure that owns it.
	nested := map[*ast.FuncLit]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := CalleeOf(p.Info, call)
		if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == parPkgPath &&
			parFanouts[callee.Name()] && len(call.Args) > 0 {
			if inner, ok := call.Args[len(call.Args)-1].(*ast.FuncLit); ok {
				nested[inner] = true
			}
		}
		return true
	})

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && nested[fl] {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				p.checkFanoutWrite(lit, lhs)
			}
		case *ast.IncDecStmt:
			p.checkFanoutWrite(lit, st.X)
		}
		return true
	})
}

// checkFanoutWrite flags lhs when it writes captured state in a way
// the par schedule can reorder.
func (p *Pass) checkFanoutWrite(lit *ast.FuncLit, lhs ast.Expr) {
	switch x := lhs.(type) {
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		if obj != nil && isCapturedVar(obj, lit) {
			p.ReportNodef(x, "assignment to captured %q inside a par closure is schedule-dependent (and races); write into the claimed index's slot and reduce after the join", x.Name)
		}
	case *ast.IndexExpr:
		root := p.rootObjOf(x.X)
		if root == nil || !isCapturedVar(root, lit) {
			return
		}
		baseType := p.TypeOf(x.X)
		if baseType == nil {
			return
		}
		if _, isMap := baseType.Underlying().(*types.Map); isMap {
			p.ReportNodef(x, "write to captured map %q inside a par closure races and its insertion order follows the schedule; collect into per-index slots and merge after the join", root.Name())
			return
		}
		if !p.indexMentionsClosureLocal(x, lit) {
			p.ReportNodef(x, "index-assignment to captured %q at an index independent of the claimed item is schedule-dependent; par's contract is one slot per claimed index", root.Name())
		}
	case *ast.SelectorExpr:
		root := p.rootObjOf(x)
		if root != nil && isCapturedVar(root, lit) {
			p.ReportNodef(x, "field write through captured %q inside a par closure races across workers; stage results per index and merge after the join", root.Name())
		}
	case *ast.StarExpr:
		root := p.rootObjOf(x)
		if root != nil && isCapturedVar(root, lit) {
			p.ReportNodef(x, "write through captured pointer %q inside a par closure races across workers; stage results per index and merge after the join", root.Name())
		}
	}
}

// isCapturedVar reports whether obj is a variable declared outside the
// closure. Package-level and parameter objects of enclosing functions
// both count; anything declared inside the closure (parameters
// included) does not.
func isCapturedVar(obj types.Object, lit *ast.FuncLit) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return !withinNode(obj, lit)
}

// indexMentionsClosureLocal reports whether any index expression in the
// chain x[i], x[i][j], ... references a variable declared inside the
// closure — the claimed-index parameter or a local derived from it. A
// chain indexed purely by captured values or constants is
// schedule-independent only by accident.
func (p *Pass) indexMentionsClosureLocal(idx *ast.IndexExpr, lit *ast.FuncLit) bool {
	found := false
	for {
		ast.Inspect(idx.Index, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				obj = p.Info.Defs[id]
			}
			if obj != nil && withinNode(obj, lit) {
				if _, isVar := obj.(*types.Var); isVar {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
		inner, ok := idx.X.(*ast.IndexExpr)
		if !ok {
			return false
		}
		idx = inner
	}
}
