package analysis

import (
	"go/ast"
	"strings"
)

// PanicPolicy flags panic(...) in library code: every package except
// main packages and _test.go files. Library panics turn a caller's
// recoverable input problem into a process abort — the production
// posture the ROADMAP aims at wants returned errors at API boundaries.
// Exemptions: functions whose name starts with "Must" (the standard Go
// convention for panicking wrappers) and sites carrying a
// //d2t2:ignore panicpolicy annotation with a justification (genuine
// programmer-invariant checks, e.g. the checked.Int32 overflow guard).
var PanicPolicy = &Analyzer{
	Name: "panicpolicy",
	Doc:  "flags panic() in non-main, non-test packages; push library code toward returned errors",
	Run:  runPanicPolicy,
}

func runPanicPolicy(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Must") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				// Only the builtin: a local function named panic shadows it.
				if obj := p.Info.Uses[id]; obj != nil && obj.Pkg() != nil {
					return true
				}
				p.Reportf(call.Pos(), "panic in library code aborts the caller's process; return an error (or annotate the invariant with //d2t2:ignore panicpolicy and a justification)")
				return true
			})
		}
	}
}
