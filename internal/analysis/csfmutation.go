package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// csfOwnerFields maps the compressed-format types of internal/formats to
// the backing-array fields whose invariants (sortedness, segment/crd
// consistency, Seg[l] boundaries) only the builders may re-establish.
var csfOwnerFields = map[string]map[string]bool{
	"CSF":  {"Seg": true, "Crd": true, "Vals": true, "Dims": true, "Order": true},
	"CSR":  {"RowPtr": true, "ColIdx": true, "Vals": true},
	"CSC":  {"ColPtr": true, "RowIdx": true, "Vals": true},
	"DCSR": {"Rows": true, "RowPtr": true, "ColIdx": true, "Vals": true},
}

// csfAllowedPrefixes are the packages allowed to mutate format backing
// arrays: the builders themselves and the tiler, which constructs
// per-tile CSF tries in place.
var csfAllowedPrefixes = []string{
	"d2t2/internal/formats",
	"d2t2/internal/tiling",
}

// CSFMutation flags writes to the backing slices of the compressed
// formats (CSF.Seg, CSF.Crd, CSR.RowPtr, ...) outside internal/formats
// and internal/tiling. Those arrays form a trie whose invariants every
// traversal in the system assumes; an out-of-package write (an indexed
// store, a field reassignment, or a copy into the slice) silently breaks
// footprint accounting and traffic measurement.
var CSFMutation = &Analyzer{
	Name: "csfmutation",
	Doc:  "flags writes to CSF/CSR/CSC/DCSR backing arrays outside internal/formats and internal/tiling",
	Run:  runCSFMutation,
}

func runCSFMutation(p *Pass) {
	for _, prefix := range csfAllowedPrefixes {
		if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
			return
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if typ, field := p.formatFieldBase(lhs); typ != "" {
						p.Reportf(lhs.Pos(), "write to %s.%s outside internal/formats and internal/tiling breaks the format invariants; rebuild via the package builders instead", typ, field)
					}
				}
			case *ast.IncDecStmt:
				if typ, field := p.formatFieldBase(st.X); typ != "" {
					p.Reportf(st.X.Pos(), "write to %s.%s outside internal/formats and internal/tiling breaks the format invariants; rebuild via the package builders instead", typ, field)
				}
			case *ast.CallExpr:
				// copy(x.Crd[l], ...) mutates the destination in place.
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "copy" && len(st.Args) == 2 {
					if typ, field := p.formatFieldBase(st.Args[0]); typ != "" {
						p.Reportf(st.Args[0].Pos(), "copy into %s.%s outside internal/formats and internal/tiling breaks the format invariants", typ, field)
					}
				}
			}
			return true
		})
	}
}

// formatFieldBase reports whether expr writes through a guarded field of
// a compressed-format type, peeling index and slice expressions:
// x.Crd[l][i], x.Seg = ..., copy(x.RowPtr, ...).
func (p *Pass) formatFieldBase(expr ast.Expr) (typeName, fieldName string) {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			recv := p.TypeOf(e.X)
			if recv == nil {
				return "", ""
			}
			name := formatTypeName(recv)
			if name == "" {
				return "", ""
			}
			if csfOwnerFields[name][e.Sel.Name] {
				return name, e.Sel.Name
			}
			return "", ""
		default:
			return "", ""
		}
	}
}

// formatTypeName returns "CSF", "CSR", "CSC" or "DCSR" when t (possibly
// behind pointers) is the corresponding type of d2t2/internal/formats.
func formatTypeName(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "d2t2/internal/formats" {
		return ""
	}
	if _, ok := csfOwnerFields[obj.Name()]; ok {
		return obj.Name()
	}
	return ""
}
