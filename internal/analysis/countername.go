package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// counterSnakeRe is the counter naming convention: lower snake_case,
// starting with a letter.
var counterSnakeRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// expvarRegistrars are the expvar package functions that register a
// name in the process-global registry (a duplicate name panics).
var expvarRegistrars = map[string]bool{
	"NewInt":    true,
	"NewFloat":  true,
	"NewMap":    true,
	"NewString": true,
	"Publish":   true,
}

// expvarMapMethods are the expvar.Map methods that take a counter name.
var expvarMapMethods = map[string]bool{
	"Add":      true,
	"AddFloat": true,
	"Set":      true,
	"Get":      true,
	"Delete":   true,
}

// CounterName enforces the observability contract the serve tests and
// dashboards difference against: expvar counters are registered once at
// init (process-global registration from request paths panics on the
// second server in a process), named in snake_case, and never named
// dynamically — a name computed per call can mint unbounded expvar
// entries and breaks the "explicit zeros, pre-registered" discipline of
// internal/serve's metrics surface.
//
// Name arguments are checked at every call whose callee is a counter
// sink: the expvar registrars, expvar.Map methods, and — found by a
// fixpoint over the run's call graph — any module function that
// forwards a string parameter into another sink's name position (so
// metrics.add/get wrappers and their callers are checked too).
var CounterName = &Analyzer{
	Name: "countername",
	Doc:  "flags expvar registration outside init/main, non-snake_case counter names, and dynamically built counter names",
	Run:  runCounterName,
}

func runCounterName(p *Pass) {
	sinks := counterSinks(p.Graph)
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				atInit := d.Name.Name == "init" && d.Recv == nil
				p.checkCounterCalls(d.Body, sinks, atInit)
			case *ast.GenDecl:
				// Package-level initializers run once before main: a
				// registration here is fine, names are still checked.
				p.checkCounterCalls(d, sinks, true)
			}
		}
	}
}

func (p *Pass) checkCounterCalls(root ast.Node, sinks map[*types.Func]int, atInit bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := CalleeOf(p.Info, call)
		if callee == nil {
			return true
		}
		idx, registers := counterSinkIndex(callee, sinks)
		if idx < 0 {
			return true
		}
		if registers && !atInit && p.Pkg.Name() != "main" {
			p.ReportNodef(call, "expvar.%s outside init or package main registers in the process-global registry per call; register counters once at init (a duplicate name panics)", callee.Name())
		}
		if idx < len(call.Args) {
			p.checkCounterNameArg(call.Args[idx])
		}
		return true
	})
}

// checkCounterNameArg applies the naming rules to the expression in a
// sink's name position: constant names must be snake_case; concatenated
// or call-built names are dynamic and flagged; identifiers and indexed
// loads are assumed to come from a pre-registered name list (the
// counterNames/latencyBucketNames pattern in internal/serve).
func (p *Pass) checkCounterNameArg(arg ast.Expr) {
	for {
		paren, ok := arg.(*ast.ParenExpr)
		if !ok {
			break
		}
		arg = paren.X
	}
	if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		name := constant.StringVal(tv.Value)
		if !counterSnakeRe.MatchString(name) {
			p.ReportNodef(arg, "counter name %q is not snake_case; counters are named [a-z][a-z0-9_]* so dashboards and tests can reference them verbatim", name)
		}
		return
	}
	switch arg.(type) {
	case *ast.BinaryExpr:
		p.ReportNodef(arg, "counter name is concatenated at the call site; dynamic names mint unbounded expvar entries — build the fixed name set once at init and index into it")
	case *ast.CallExpr:
		p.ReportNodef(arg, "counter name is computed by a call at the call site; dynamic names mint unbounded expvar entries — build the fixed name set once at init and index into it")
	}
}

// counterSinkIndex returns the name-parameter index of callee when it
// is a counter sink, and whether the sink registers a process-global
// name. Non-sinks return -1.
func counterSinkIndex(callee *types.Func, sinks map[*types.Func]int) (idx int, registers bool) {
	if callee.Pkg() != nil && callee.Pkg().Path() == "expvar" {
		sig, _ := callee.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && expvarRegistrars[callee.Name()] {
			return 0, true
		}
		if sig != nil && sig.Recv() != nil && expvarMapMethods[callee.Name()] && isExpvarMap(sig.Recv().Type()) {
			return 0, false
		}
		return -1, false
	}
	if i, ok := sinks[callee.Origin()]; ok {
		return i, false
	}
	return -1, false
}

func isExpvarMap(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "expvar" && obj.Name() == "Map"
}

// counterSinks finds, by fixpoint over the call graph, module functions
// that forward one of their string parameters into the name position of
// a known sink: metrics.add(name, delta) forwards into expvar.Map.Add,
// Server.Metric(name) into metrics.get, and so on. The returned map
// gives each such function its name-parameter index.
func counterSinks(g *CallGraph) map[*types.Func]int {
	sinks := map[*types.Func]int{}
	if g == nil {
		return sinks
	}
	for changed := true; changed; {
		changed = false
		for _, node := range g.Nodes() {
			if _, done := sinks[node.Func]; done {
				continue
			}
			sig, ok := node.Func.Type().(*types.Signature)
			if !ok {
				continue
			}
			for _, site := range node.Sites {
				idx, _ := counterSinkIndex(site.Callee, sinks)
				if idx < 0 || idx >= len(site.Call.Args) {
					continue
				}
				arg := site.Call.Args[idx]
				id, ok := arg.(*ast.Ident)
				if !ok {
					continue
				}
				obj := node.Pkg.Info.Uses[id]
				if obj == nil {
					continue
				}
				for i := 0; i < sig.Params().Len(); i++ {
					if sig.Params().At(i) == obj {
						sinks[node.Func] = i
						changed = true
						break
					}
				}
				if _, done := sinks[node.Func]; done {
					break
				}
			}
		}
	}
	return sinks
}
