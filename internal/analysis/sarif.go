package analysis

import (
	"encoding/json"
	"path/filepath"
)

// SARIF renders findings as a SARIF 2.1.0 log with one run, so CI can
// upload the file via github/codeql-action/upload-sarif and render each
// finding as an inline PR annotation. File URIs are made relative to
// root (the module root in d2t2vet), which is what the upload action
// expects when the workflow checks out the repository at the workspace
// root.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	type sMessage struct {
		Text string `json:"text"`
	}
	type sRule struct {
		ID               string   `json:"id"`
		ShortDescription sMessage `json:"shortDescription"`
	}
	type sArtifactLocation struct {
		URI string `json:"uri"`
	}
	type sRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
		EndLine     int `json:"endLine,omitempty"`
		EndColumn   int `json:"endColumn,omitempty"`
	}
	type sPhysicalLocation struct {
		ArtifactLocation sArtifactLocation `json:"artifactLocation"`
		Region           sRegion           `json:"region"`
	}
	type sLocation struct {
		PhysicalLocation sPhysicalLocation `json:"physicalLocation"`
	}
	type sResult struct {
		RuleID    string      `json:"ruleId"`
		RuleIndex int         `json:"ruleIndex"`
		Level     string      `json:"level"`
		Message   sMessage    `json:"message"`
		Locations []sLocation `json:"locations"`
	}
	type sDriver struct {
		Name           string  `json:"name"`
		InformationURI string  `json:"informationUri,omitempty"`
		Rules          []sRule `json:"rules"`
	}
	type sTool struct {
		Driver sDriver `json:"driver"`
	}
	type sRun struct {
		Tool    sTool     `json:"tool"`
		Results []sResult `json:"results"`
	}
	type sLog struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []sRun `json:"runs"`
	}

	ruleIndex := map[string]int{}
	rules := make([]sRule, 0, len(analyzers))
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sRule{ID: a.Name, ShortDescription: sMessage{Text: a.Doc}})
	}

	results := make([]sResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Check]
		if !ok {
			// A finding from an analyzer outside the declared set still
			// gets a rule so the log stays self-consistent.
			idx = len(rules)
			ruleIndex[d.Check] = idx
			rules = append(rules, sRule{ID: d.Check, ShortDescription: sMessage{Text: d.Check}})
		}
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
				uri = rel
			}
		}
		region := sRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column}
		if d.End.IsValid() && (d.End.Line > d.Pos.Line || (d.End.Line == d.Pos.Line && d.End.Column >= d.Pos.Column)) {
			region.EndLine = d.End.Line
			region.EndColumn = d.End.Column
		}
		results = append(results, sResult{
			RuleID:    d.Check,
			RuleIndex: idx,
			Level:     "error",
			Message:   sMessage{Text: d.Message},
			Locations: []sLocation{{
				PhysicalLocation: sPhysicalLocation{
					ArtifactLocation: sArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           region,
				},
			}},
		})
	}

	log := sLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sRun{{
			Tool:    sTool{Driver: sDriver{Name: "d2t2vet", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
