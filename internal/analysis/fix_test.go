package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestApplyFixesRewritesCtxCalls runs the -fix pipeline end to end: copy
// the ctxfix fixture into a throwaway module, collect ctxpropagation
// findings, apply their suggested fixes, and prove the rewritten source
// type-checks with zero remaining findings.
func TestApplyFixesRewritesCtxCalls(t *testing.T) {
	tmp := t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", "src", "ctxfix", "ctxfix.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "ctxfix.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module fixmod\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	loadAndRun := func() []Diagnostic {
		l, err := NewLoader(tmp)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := l.Load("fixmod")
		if err != nil {
			t.Fatalf("rewritten fixture fails to load: %v", err)
		}
		return Run(pkg, []*Analyzer{CtxPropagation})
	}

	diags := loadAndRun()
	if len(diags) != 2 {
		t.Fatalf("want 2 findings before the fix (Caller and CallerArgless), got:\n%s", formatDiags(diags))
	}
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			t.Fatalf("finding carries no suggested fix: %s", d)
		}
	}

	changed, applied, skipped, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 || skipped != 0 {
		t.Fatalf("ApplyFixes applied=%d skipped=%d, want 2/0", applied, skipped)
	}
	if len(changed) != 1 || filepath.Base(changed[0]) != "ctxfix.go" {
		t.Fatalf("changed files = %v", changed)
	}

	fixed, err := os.ReadFile(filepath.Join(tmp, "ctxfix.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DoCtx(ctx, n)", "NowCtx(ctx)"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("rewritten source missing %q:\n%s", want, fixed)
		}
	}

	// The fixed tree must type-check (Load re-parses from disk) and be
	// clean under the same analyzer.
	if diags := loadAndRun(); len(diags) != 0 {
		t.Fatalf("findings remain after -fix:\n%s", formatDiags(diags))
	}
}

// TestApplyEditsOverlap checks the conflict policy: of two fixes
// touching the same byte range, one applies and one is skipped whole.
func TestApplyEditsOverlap(t *testing.T) {
	tmp := t.TempDir()
	file := filepath.Join(tmp, "x.txt")
	if err := os.WriteFile(file, []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Fix: &SuggestedFix{Edits: []TextEdit{{Filename: file, Start: 1, End: 3, NewText: "XY"}}}},
		{Fix: &SuggestedFix{Edits: []TextEdit{{Filename: file, Start: 2, End: 4, NewText: "Z"}}}},
	}
	changed, applied, skipped, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 || skipped != 1 || len(changed) != 1 {
		t.Fatalf("applied=%d skipped=%d changed=%v, want 1/1/[x.txt]", applied, skipped, changed)
	}
	got, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aXYdef" {
		t.Fatalf("after overlap resolution got %q, want %q", got, "aXYdef")
	}
}
