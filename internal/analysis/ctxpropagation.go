package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPropagation enforces the cancellation invariant PR 4 threaded
// through the compute stack: once a context enters a function, it flows
// to every callee that can accept one, and fresh root contexts are never
// minted in the middle of a request. Concretely:
//
//  1. context.Background()/context.TODO() are banned outside package
//     main, _test.go files, and the documented non-ctx wrapper pattern:
//     a function whose whole body is one delegation passing a fresh root
//     as the first argument of a context-accepting function, as in
//     `return FooCtx(context.Background(), args...)`. The callee does
//     not have to share the wrapper's name — the module's convenience
//     chains (TileAll → TileAllWorkers → TileAllCtx) put the Background
//     in the middle rung.
//  2. A function that takes a context.Context must not call a module
//     function G without one when a sibling GCtx exists — that drops the
//     caller's deadline on the floor for the duration of G. These
//     findings carry a suggested fix (apply with d2t2vet -fix) that
//     rewrites the call site to the Ctx sibling with the in-scope
//     context as its first argument.
//  3. A function with a Ctx sibling that is not the documented wrapper
//     is flagged: duplicated logic next to a cancellable twin drifts,
//     and the wrapper shape is what licenses its context.Background().
//
// Sibling lookups go through go/types (see CtxVariant), so the check
// crosses package boundaries; module membership of callees is decided by
// the run's call graph, so d2t2vet over ./... sees every edge.
var CtxPropagation = &Analyzer{
	Name: "ctxpropagation",
	Doc:  "flags dropped contexts: Background()/TODO() outside main/tests/wrappers, and calls that bypass a callee's Ctx sibling",
	Run:  runCtxPropagation,
}

func runCtxPropagation(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			p.checkCtxFunc(fd, fn)
		}
	}
}

func (p *Pass) checkCtxFunc(fd *ast.FuncDecl, fn *types.Func) {
	var (
		delegated    *types.Func
		licensedRoot *ast.CallExpr
	)
	if CtxParamIndex(fn) < 0 {
		// Only a function with no ctx of its own can be the wrapper; with
		// a ctx in scope, minting a root is always dropping the caller's.
		delegated, licensedRoot = delegatedCtxCallee(p, fd)
	}
	sib := CtxVariant(fn)
	if CtxParamIndex(fn) < 0 && sib != nil {
		if delegated != nil && strings.EqualFold(delegated.Name(), fn.Name()+"Ctx") {
			return // the documented wrapper of its own Ctx sibling
		}
		p.ReportRangef(fd.Name.Pos(), fd.Name.End(),
			"%s has context-accepting sibling %s but is not the documented wrapper (single `return %s(context.Background(), ...)`); duplicated logic will drift from the cancellable path",
			fn.Name(), sib.Name(), sib.Name())
	}

	// Rule 1: no fresh root contexts outside the wrapper pattern. A
	// delegating wrapper's own root (licensedRoot) is the one exemption:
	// it is handed straight to a cancellable callee, never used mid-path.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if call == licensedRoot {
			return true
		}
		if name := rootContextFunc(p.Info, call); name != "" {
			p.ReportNodef(call,
				"context.%s() in library code detaches this path from the caller's deadline; accept a ctx parameter (or add the documented non-ctx wrapper)", name)
		}
		return true
	})

	// Rule 2: with a ctx in scope, never call around a callee's Ctx
	// sibling. The nearest enclosing ctx parameter (function or closure)
	// names the fix's first argument.
	p.checkCtxThreading(fd.Body, ctxParamName(p, fd.Type))
}

// checkCtxThreading walks body flagging calls to module functions that
// have a Ctx sibling, when ctxName (possibly rebound by nested closures
// with their own ctx parameter) is in scope.
func (p *Pass) checkCtxThreading(body *ast.BlockStmt, ctxName string) {
	var walk func(n ast.Node, ctxName string) bool
	walk = func(n ast.Node, ctxName string) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			inner := ctxName
			if name := ctxParamName(p, e.Type); name != "" {
				inner = name
			}
			ast.Inspect(e.Body, func(m ast.Node) bool { return walk(m, inner) })
			return false
		case *ast.CallExpr:
			if ctxName == "" {
				return true
			}
			callee := CalleeOf(p.Info, e)
			if callee == nil || CtxParamIndex(callee) >= 0 {
				return true
			}
			sib := CtxVariant(callee)
			if sib == nil {
				return true
			}
			// Module membership: either side of the pair is declared in
			// the analyzed packages.
			if p.Graph == nil || (p.Graph.Node(callee) == nil && p.Graph.Node(sib) == nil) {
				return true
			}
			p.ReportFixf(e, p.ctxSiblingFix(e, sib, ctxName),
				"call to %s drops the in-scope context %q; call %s(%s, ...) so cancellation reaches it",
				callee.Name(), ctxName, sib.Name(), ctxName)
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n, ctxName) })
}

// ctxSiblingFix rewrites `G(args...)` to `GCtx(ctx, args...)`. Returns
// nil when the callee name token cannot be located (nothing to edit).
func (p *Pass) ctxSiblingFix(call *ast.CallExpr, sib *types.Func, ctxName string) *SuggestedFix {
	name := calleeNameIdent(call)
	if name == nil {
		return nil
	}
	insert := ctxName
	if len(call.Args) > 0 {
		insert += ", "
	}
	return &SuggestedFix{
		Message: "call the " + sib.Name() + " sibling with " + ctxName,
		Edits: []TextEdit{
			p.Edit(name.Pos(), name.End(), sib.Name()),
			p.Edit(call.Lparen+1, call.Lparen+1, insert),
		},
	}
}

// delegatedCtxCallee matches the documented non-ctx wrapper shape: the
// entire body is one return (or, for void functions, one call)
// delegating to a context-accepting function with context.Background()
// or context.TODO() as first argument. It returns the callee and the
// fresh-root call licensed by the shape, or nils. The callee may be an
// unexported fan-in core (ForEachScratch → forEachScratchCtx) or a
// different rung of a convenience chain (TileAllWorkers → TileAllCtx);
// whether its name pairs with the wrapper's is the caller's concern.
func delegatedCtxCallee(p *Pass, fd *ast.FuncDecl) (*types.Func, *ast.CallExpr) {
	if len(fd.Body.List) != 1 {
		return nil, nil
	}
	var call *ast.CallExpr
	switch st := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(st.Results) != 1 {
			return nil, nil
		}
		call, _ = st.Results[0].(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = st.X.(*ast.CallExpr)
	}
	if call == nil || len(call.Args) == 0 {
		return nil, nil
	}
	callee := CalleeOf(p.Info, call)
	if callee == nil || CtxParamIndex(callee) != 0 {
		return nil, nil
	}
	first, ok := call.Args[0].(*ast.CallExpr)
	if !ok || rootContextFunc(p.Info, first) == "" {
		return nil, nil
	}
	return callee, first
}

// rootContextFunc returns "Background" or "TODO" when call is
// context.Background() or context.TODO(), else "".
func rootContextFunc(info *types.Info, call *ast.CallExpr) string {
	fn := CalleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

// ctxParamName returns the name of ft's context.Context parameter, or
// "" when there is none or it is unnamed/blank.
func ctxParamName(p *Pass, ft *ast.FuncType) string {
	if ft == nil || ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		t := p.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, id := range field.Names {
			if id.Name != "_" {
				return id.Name
			}
		}
	}
	return ""
}

// calleeNameIdent returns the identifier naming the callee — the plain
// ident of `New(...)`, the selector's Sel of `tiling.New(...)` or
// `s.Optimize(...)` — unwrapping parens and generic instantiations.
func calleeNameIdent(call *ast.CallExpr) *ast.Ident {
	fun := call.Fun
	for {
		switch e := fun.(type) {
		case *ast.ParenExpr:
			fun = e.X
		case *ast.IndexExpr:
			fun = e.X
		case *ast.IndexListExpr:
			fun = e.X
		case *ast.SelectorExpr:
			return e.Sel
		case *ast.Ident:
			return e
		default:
			return nil
		}
	}
}
