package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//d2t2:ignore check1,check2 free-form justification
//
// The comment suppresses the named checks on its own line and on the
// line directly below (so it can sit above the offending statement).
// The justification is not parsed but is required by convention; the
// review gate is human.
const ignorePrefix = "//d2t2:ignore"

type ignoreSet struct {
	// byLine maps filename:line to the set of check names ignored there.
	byLine map[string]map[string]bool
}

func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{byLine: map[string]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names, _, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					ig.add(pos.Filename, pos.Line, name)
					ig.add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return ig
}

func (ig *ignoreSet) add(file string, line int, check string) {
	k := key(file, line)
	if ig.byLine[k] == nil {
		ig.byLine[k] = map[string]bool{}
	}
	ig.byLine[k][check] = true
}

func (ig *ignoreSet) suppressed(d Diagnostic) bool {
	set := ig.byLine[key(d.Pos.Filename, d.Pos.Line)]
	return set[d.Check] || set["all"]
}

func key(file string, line int) string {
	return file + "#" + strconv.Itoa(line)
}
