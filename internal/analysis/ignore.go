package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//d2t2:ignore check1,check2 free-form justification
//
// The comment suppresses the named checks on its own line and on the
// line directly below (so it can sit above the offending statement).
// When the annotated line starts a multi-line statement or declaration
// without a nested block — a composite literal in a var declaration or
// assignment, a multi-line call — the suppression covers the construct's
// full extent, so findings reported on its later lines are silenced by
// the one annotation. Block-bearing statements (if/for/func bodies)
// keep the two-line rule: an ignore above an if statement must not
// blanket its whole body. The justification is not parsed but is
// required by convention; the review gate is human.
const ignorePrefix = "//d2t2:ignore"

type ignoreSet struct {
	// byLine maps filename:line to the set of check names ignored there.
	byLine map[string]map[string]bool
}

func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{byLine: map[string]map[string]bool{}}
	for _, f := range files {
		extents := blocklessExtents(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names, _, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				// The annotation covers its own line, the next line, and —
				// when either of those starts a blockless multi-line
				// construct — every line through that construct's end.
				endLine := pos.Line + 1
				if e := extents[pos.Line]; e > endLine {
					endLine = e
				}
				if e := extents[pos.Line+1]; e > endLine {
					endLine = e
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for line := pos.Line; line <= endLine; line++ {
						ig.add(pos.Filename, line, name)
					}
				}
			}
		}
	}
	return ig
}

// blocklessExtents maps the start line of every multi-line statement,
// declaration or spec that carries no nested statement block (var
// declarations, assignments, returns, expression statements, sends,
// field declarations) to its end line. These are the constructs a
// //d2t2:ignore annotation above them should cover in full; anything
// with a block body is excluded so one annotation cannot silently
// blanket dozens of unrelated statements.
func blocklessExtents(fset *token.FileSet, f *ast.File) map[int]int {
	extents := map[int]int{}
	record := func(n ast.Node) {
		// A construct that embeds a function literal (a par fan-out call,
		// a handler registration) spans its closure's body; covering it
		// from one annotation would blanket every statement inside. Those
		// keep the two-line rule — annotate at the finding.
		hasLit := false
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				hasLit = true
				return false
			}
			return !hasLit
		})
		if hasLit {
			return
		}
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end > start && end > extents[start] {
			extents[start] = end
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GenDecl, *ast.ValueSpec, *ast.TypeSpec,
			*ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt,
			*ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.Field:
			record(n)
		}
		return true
	})
	return extents
}

func (ig *ignoreSet) add(file string, line int, check string) {
	k := key(file, line)
	if ig.byLine[k] == nil {
		ig.byLine[k] = map[string]bool{}
	}
	ig.byLine[k][check] = true
}

func (ig *ignoreSet) suppressed(d Diagnostic) bool {
	set := ig.byLine[key(d.Pos.Filename, d.Pos.Line)]
	return set[d.Check] || set["all"]
}

func key(file string, line int) string {
	return file + "#" + strconv.Itoa(line)
}
