package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches one loader (and its type-checked stdlib) across
// fixture subtests; source-importing the standard library dominates the
// cost of a load.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// wantRe matches one expectation inside a // want comment; several may
// follow each other: // want "first" "second"
var wantRe = regexp.MustCompile(`"([^"]*)"`)

// collectWants scans a fixture file for // want markers, returning
// line -> expected message substrings.
func collectWants(t *testing.T, filename string) map[int][]string {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("reading fixture %s: %v", filename, err)
	}
	wants := map[int][]string{}
	for i, line := range strings.Split(string(data), "\n") {
		_, marker, ok := strings.Cut(line, "// want ")
		if !ok {
			continue
		}
		for _, m := range wantRe.FindAllStringSubmatch(marker, -1) {
			wants[i+1] = append(wants[i+1], m[1])
		}
	}
	return wants
}

func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		name     string
		dir      string // under testdata/src
		loadAs   string // import path the fixture pretends to live at
		analyzer *Analyzer
		wantZero bool // ignore markers; expect no findings at this path
	}{
		{name: "csfmutation", dir: "csfmut", loadAs: "d2t2/internal/exec/fixture_csfmut", analyzer: CSFMutation},
		{name: "csfmutation-allowed", dir: "csfmut_allowed", loadAs: "d2t2/internal/tiling/fixture_allowed", analyzer: CSFMutation, wantZero: true},
		{name: "floatdeterminism", dir: "floatdet", loadAs: "d2t2/internal/model/fixture_floatdet", analyzer: FloatDeterminism},
		{name: "floatdeterminism-out-of-scope", dir: "floatdet", loadAs: "d2t2/internal/stats/fixture_floatdet_oos", analyzer: FloatDeterminism, wantZero: true},
		{name: "coordwidth", dir: "coordwidth", loadAs: "d2t2/internal/formats/fixture_coordwidth", analyzer: CoordWidth},
		{name: "goroutinehygiene", dir: "gohygiene", loadAs: "d2t2/internal/exec/fixture_gohygiene", analyzer: GoroutineHygiene},
		{name: "panicpolicy", dir: "panicpol", loadAs: "d2t2/internal/einsum/fixture_panicpol", analyzer: PanicPolicy},
		{name: "panicpolicy-main", dir: "panicmain", loadAs: "d2t2/cmd/fixture_panicmain", analyzer: PanicPolicy, wantZero: true},
		{name: "ctxpropagation", dir: "ctxprop", loadAs: "d2t2/internal/fixture_ctxprop", analyzer: CtxPropagation},
		{name: "ctxpropagation-suppressed", dir: "ctxprop_ok", loadAs: "d2t2/internal/fixture_ctxprop_ok", analyzer: CtxPropagation, wantZero: true},
		{name: "scratchescape", dir: "scratchescape", loadAs: "d2t2/internal/fixture_scratch", analyzer: ScratchEscape},
		{name: "scratchescape-suppressed", dir: "scratchescape_ok", loadAs: "d2t2/internal/fixture_scratch_ok", analyzer: ScratchEscape, wantZero: true},
		{name: "reductionorder", dir: "reductionorder", loadAs: "d2t2/internal/fixture_redorder", analyzer: ReductionOrder},
		{name: "reductionorder-suppressed", dir: "reductionorder_ok", loadAs: "d2t2/internal/fixture_redorder_ok", analyzer: ReductionOrder, wantZero: true},
		{name: "countername", dir: "countername", loadAs: "d2t2/internal/fixture_countername", analyzer: CounterName},
		{name: "countername-suppressed", dir: "countername_ok", loadAs: "d2t2/internal/fixture_countername_ok", analyzer: CounterName, wantZero: true},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := testLoader(t)
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg, err := l.LoadDir(dir, tc.loadAs)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			diags := Run(pkg, []*Analyzer{tc.analyzer})

			if tc.wantZero {
				if len(diags) != 0 {
					t.Fatalf("want no findings at %s, got:\n%s", tc.loadAs, formatDiags(diags))
				}
				return
			}

			// Gather wants across every fixture file.
			wants := map[string]map[int][]string{}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".go") {
					abs := filepath.Join(dir, e.Name())
					wants[abs] = collectWants(t, abs)
				}
			}

			matched := map[string]map[int][]bool{}
			for _, d := range diags {
				lineWants := wants[d.Pos.Filename][d.Pos.Line]
				ok := false
				for i, w := range lineWants {
					if strings.Contains(d.Message, w) {
						if matched[d.Pos.Filename] == nil {
							matched[d.Pos.Filename] = map[int][]bool{}
						}
						if matched[d.Pos.Filename][d.Pos.Line] == nil {
							matched[d.Pos.Filename][d.Pos.Line] = make([]bool, len(lineWants))
						}
						matched[d.Pos.Filename][d.Pos.Line][i] = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected finding: %s", d)
				}
			}
			for file, byLine := range wants {
				for line, subs := range byLine {
					for i, w := range subs {
						got := matched[file][line]
						if got == nil || !got[i] {
							t.Errorf("%s:%d: expected finding containing %q, got none", file, line, w)
						}
					}
				}
			}
		})
	}
}

func formatDiags(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestExpandPatterns(t *testing.T) {
	l := testLoader(t)
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"d2t2":                   false,
		"d2t2/internal/formats":  false,
		"d2t2/internal/analysis": false,
		"d2t2/cmd/d2t2vet":       false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
		if strings.Contains(p, "testdata") {
			t.Fatalf("Expand leaked a testdata package: %s", p)
		}
	}
	for p, seen := range want {
		if !seen {
			t.Fatalf("Expand(./...) missing %s in %v", p, paths)
		}
	}

	sub, err := l.Expand([]string{"./internal/formats"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub[0] != "d2t2/internal/formats" {
		t.Fatalf("Expand(./internal/formats) = %v", sub)
	}

	// A typo'd named package must error, not silently match nothing.
	if _, err := l.Expand([]string{"./no/such/dir"}); err == nil {
		t.Fatal("Expand(./no/such/dir) succeeded; want error")
	}
	if _, err := l.Expand([]string{"./internal/analysis/testdata"}); err == nil {
		t.Fatal("Expand(./internal/analysis/testdata) succeeded; want error (dir exists but holds no Go files)")
	}
}

func TestLoadRealPackage(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.Load("d2t2/internal/formats")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "formats" {
		t.Fatalf("loaded package name %q", pkg.Types.Name())
	}
	if pkg.Types.Scope().Lookup("CSF") == nil {
		t.Fatal("formats.CSF not found in loaded package scope")
	}
}

func TestIgnoreParsing(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "panicpol"), "d2t2/internal/gen/fixture_ignore")
	if err != nil {
		t.Fatal(err)
	}
	// Run with suppression (the annotated panic must not appear).
	diags := Run(pkg, []*Analyzer{PanicPolicy})
	for _, d := range diags {
		if strings.Contains(d.Message, "unreachable by construction") {
			t.Fatalf("suppressed finding leaked: %s", d)
		}
	}
	if len(diags) != 2 {
		t.Fatalf("want exactly the 2 marked findings, got:\n%s", formatDiags(diags))
	}
}

// TestIgnoreExtent pins the multi-line suppression rules: an annotation
// above a statement covers the statement's full extent, but never
// reaches into a function literal's body (so an ignore above a par
// fan-out cannot blanket the closure).
func TestIgnoreExtent(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "ignoreext"), "d2t2/internal/fixture_ignoreext")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkg, []*Analyzer{CounterName, ReductionOrder})
	var gotCounter, gotReduction int
	for _, d := range diags {
		switch d.Check {
		case "countername":
			gotCounter++
		case "reductionorder":
			gotReduction++
		}
	}
	if gotCounter != 1 {
		t.Errorf("want 1 surviving countername finding (covered() suppressed, uncovered() kept), got %d:\n%s",
			gotCounter, formatDiags(diags))
	}
	if gotReduction != 1 {
		t.Errorf("want 1 surviving reductionorder finding inside the closure body, got %d:\n%s",
			gotReduction, formatDiags(diags))
	}
	// The survivors must sit exactly on the marker-comment lines; any
	// other line means the suppressed twin leaked.
	src, err := os.ReadFile(filepath.Join("testdata", "src", "ignoreext", "ignoreext.go"))
	if err != nil {
		t.Fatal(err)
	}
	markers := map[string]int{}
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "surviving countername finding") {
			markers["countername"] = i + 1
		}
		if strings.Contains(line, "surviving reductionorder finding") {
			markers["reductionorder"] = i + 1
		}
	}
	for _, d := range diags {
		if want := markers[d.Check]; want != 0 && d.Pos.Line != want {
			t.Errorf("%s finding on line %d, want marker line %d: %s", d.Check, d.Pos.Line, want, d)
		}
	}
}
