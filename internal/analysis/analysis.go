// Package analysis is a domain-specific static-analysis framework for
// this repository, built against the standard library only (go/parser,
// go/ast, go/types, go/token). It exists because D2T2's correctness
// rests on invariants the Go compiler cannot see: CSF segment and
// coordinate arrays must only be mutated by the format builders, traffic
// counters must merge exactly under the parallel executor, and the
// probabilistic model must stay deterministic so reproduced tables are
// stable run-to-run.
//
// The framework loads packages from source (see Loader), runs a set of
// Analyzers over each, and reports Diagnostics. A finding can be
// suppressed with a justification comment on the same line or the line
// directly above it:
//
//	//d2t2:ignore panicpolicy invariant check, callers pass literals
//
// cmd/d2t2vet wires every analyzer in Analyzers over ./... and exits
// non-zero on findings; CI runs it next to go vet and the race detector.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer at one source position.
// End, when valid, is the end of the flagged node's extent: SARIF output
// renders it as the result region, and suppression matching uses node
// extents so an annotation above a multi-line construct covers all of
// it. Fix, when non-nil, is a mechanical rewrite d2t2vet -fix can apply.
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"pos"`
	End     token.Position `json:"end,omitempty"`
	Message string         `json:"message"`
	Fix     *SuggestedFix  `json:"fix,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass carries one loaded package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Path is the import path the package was loaded under. Analyzers
	// that scope themselves to parts of the tree (csfmutation,
	// floatdeterminism) match on prefixes of this path.
	Path string
	Pkg  *types.Package
	Info *types.Info
	// Graph is the call graph over every package of the current run
	// (not just this one), so callee lookups cross package boundaries.
	Graph *CallGraph

	check string
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, token.NoPos, nil, format, args...)
}

// ReportRangef records a finding spanning [pos, end).
func (p *Pass) ReportRangef(pos, end token.Pos, format string, args ...any) {
	p.report(pos, end, nil, format, args...)
}

// ReportNodef records a finding covering n's full extent.
func (p *Pass) ReportNodef(n ast.Node, format string, args ...any) {
	p.report(n.Pos(), n.End(), nil, format, args...)
}

// ReportFixf records a finding covering n's full extent that carries a
// suggested fix for d2t2vet -fix.
func (p *Pass) ReportFixf(n ast.Node, fix *SuggestedFix, format string, args ...any) {
	p.report(n.Pos(), n.End(), fix, format, args...)
}

func (p *Pass) report(pos, end token.Pos, fix *SuggestedFix, format string, args ...any) {
	d := Diagnostic{
		Check:   p.check,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	}
	if end.IsValid() {
		d.End = p.Fset.Position(end)
	}
	*p.diags = append(*p.diags, d)
}

// Edit builds a TextEdit replacing the source range [pos, end) with
// newText, resolving byte offsets through the pass's file set.
func (p *Pass) Edit(pos, end token.Pos, newText string) TextEdit {
	start := p.Fset.Position(pos)
	stop := p.Fset.Position(end)
	return TextEdit{Filename: start.Filename, Start: start.Offset, End: stop.Offset, NewText: newText}
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.Info.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers lists every check in the suite, sorted by name.
func Analyzers() []*Analyzer {
	as := []*Analyzer{
		CSFMutation,
		FloatDeterminism,
		CoordWidth,
		GoroutineHygiene,
		PanicPolicy,
		CtxPropagation,
		ScratchEscape,
		ReductionOrder,
		CounterName,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Select resolves comma-separated -only/-skip analyzer lists against the
// suite. Empty only means "all"; skip is subtracted afterwards. Unknown
// names in either list are an error, so a typo fails loudly instead of
// silently vetting nothing.
func Select(only, skip string) ([]*Analyzer, error) {
	split := func(s string) ([]string, error) {
		var names []string
		for _, name := range strings.Split(s, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q (run -list for the suite)", name)
			}
			names = append(names, name)
		}
		return names, nil
	}
	onlyNames, err := split(only)
	if err != nil {
		return nil, err
	}
	skipNames, err := split(skip)
	if err != nil {
		return nil, err
	}
	skipped := map[string]bool{}
	for _, name := range skipNames {
		skipped[name] = true
	}
	var out []*Analyzer
	if len(onlyNames) == 0 {
		for _, a := range Analyzers() {
			if !skipped[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	}
	seen := map[string]bool{}
	for _, name := range onlyNames {
		if seen[name] || skipped[name] {
			continue
		}
		seen[name] = true
		out = append(out, ByName(name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// JSON renders findings as an indented JSON array; an empty run renders
// as [] rather than null so consumers can always range over it.
func JSON(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(diags, "", "  ")
}

// Run applies the analyzers to a loaded package and returns the
// surviving findings: diagnostics on lines carrying (or directly below,
// or within the extent of the annotated statement/declaration) a
// matching //d2t2:ignore comment are dropped. Findings are sorted by
// position. The call graph is built over the single package; callers
// analyzing several packages should build one graph over all of them
// and use RunGraph so cross-package callee lookups resolve.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunGraph(pkg, BuildCallGraph([]*Package{pkg}), analyzers)
}

// RunGraph is Run with an externally built call graph, typically
// spanning every package of a d2t2vet invocation.
func RunGraph(pkg *Package, graph *CallGraph, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Path:  pkg.Path,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
			Graph: graph,
			check: a.Name,
			diags: &diags,
		}
		a.Run(pass)
	}
	ig := collectIgnores(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !ig.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept
}
