// Package analysis is a domain-specific static-analysis framework for
// this repository, built against the standard library only (go/parser,
// go/ast, go/types, go/token). It exists because D2T2's correctness
// rests on invariants the Go compiler cannot see: CSF segment and
// coordinate arrays must only be mutated by the format builders, traffic
// counters must merge exactly under the parallel executor, and the
// probabilistic model must stay deterministic so reproduced tables are
// stable run-to-run.
//
// The framework loads packages from source (see Loader), runs a set of
// Analyzers over each, and reports Diagnostics. A finding can be
// suppressed with a justification comment on the same line or the line
// directly above it:
//
//	//d2t2:ignore panicpolicy invariant check, callers pass literals
//
// cmd/d2t2vet wires every analyzer in Analyzers over ./... and exits
// non-zero on findings; CI runs it next to go vet and the race detector.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding of one analyzer at one source position.
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass carries one loaded package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Path is the import path the package was loaded under. Analyzers
	// that scope themselves to parts of the tree (csfmutation,
	// floatdeterminism) match on prefixes of this path.
	Path string
	Pkg  *types.Package
	Info *types.Info

	check string
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.check,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.Info.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers lists every check in the suite, sorted by name.
func Analyzers() []*Analyzer {
	as := []*Analyzer{
		CSFMutation,
		FloatDeterminism,
		CoordWidth,
		GoroutineHygiene,
		PanicPolicy,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to a loaded package and returns the
// surviving findings: diagnostics on lines carrying (or directly below)
// a matching //d2t2:ignore comment are dropped. Findings are sorted by
// position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Path:  pkg.Path,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
			check: a.Name,
			diags: &diags,
		}
		a.Run(pass)
	}
	ig := collectIgnores(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !ig.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept
}
