package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineHygiene flags two launch patterns that have bitten parallel
// tiled execution before: goroutines that carry no join signal (no
// WaitGroup Done, no channel send/close — their completion is
// unobservable, so counters they produce may be read before they merge)
// and writes to maps captured from the enclosing scope (the Go runtime
// only detects those under -race, and only on the schedules the test
// happens to explore). The exact-merge contract of
// internal/exec/parallel.go is the motivating case: every worker must
// write into worker-private state and be joined before the merge loop.
var GoroutineHygiene = &Analyzer{
	Name: "goroutinehygiene",
	Doc:  "flags unjoined goroutine launches and captured-map writes inside goroutines",
	Run:  runGoroutineHygiene,
}

func runGoroutineHygiene(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				// go namedFunc(...): the body is elsewhere; require the
				// join signal at the call site via a waited group or a
				// channel in the argument list.
				if !p.hasChannelArg(g.Call) {
					p.Reportf(g.Pos(), "goroutine launched without a visible join (no func literal with WaitGroup/channel signal, no channel argument); completion is unobservable")
				}
				return true
			}
			if !p.hasJoinSignal(lit) {
				p.Reportf(g.Pos(), "goroutine has no join signal (sync.WaitGroup Done, channel send or close); its completion cannot be awaited")
			}
			p.checkCapturedMapWrites(lit)
			return true
		})
	}
}

// hasJoinSignal reports whether the goroutine body publishes its
// completion: a Done/Add(-1) call on a sync.WaitGroup, a channel send,
// or a close of a channel.
func (p *Pass) hasJoinSignal(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
				return false
			}
			sel, ok := e.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Done" || sel.Sel.Name == "Add" {
				if t := p.TypeOf(sel.X); t != nil && namedTypeName(t) == "WaitGroup" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// hasChannelArg reports whether any argument of the call is a channel —
// the caller can then join on it even though the body is elsewhere.
func (p *Pass) hasChannelArg(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if t := p.TypeOf(a); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return true
			}
		}
	}
	return false
}

// checkCapturedMapWrites flags m[k] = v inside the goroutine when m is
// declared outside the func literal and the body takes no lock.
func (p *Pass) checkCapturedMapWrites(lit *ast.FuncLit) {
	if p.bodyLocks(lit) {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested goroutine literals get their own visit
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			idx, ok := lhs.(*ast.IndexExpr)
			if !ok {
				continue
			}
			base := idx.X
			t := p.TypeOf(base)
			if t == nil {
				continue
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				continue
			}
			if id, ok := base.(*ast.Ident); ok {
				obj := p.Info.ObjectOf(id)
				if obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
					p.Reportf(lhs.Pos(), "write to captured map %q inside goroutine races with other workers; write into worker-private state and merge after the join", id.Name)
				}
			}
		}
		return true
	})
}

// bodyLocks reports whether the goroutine body calls a Lock method —
// treated as evidence of deliberate synchronization.
func (p *Pass) bodyLocks(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
