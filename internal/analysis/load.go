package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path it was loaded under
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of this module from source.
// Imports inside the module resolve to directories under the module
// root; everything else (the standard library) is type-checked by the
// compiler-independent source importer. No export data, build cache or
// network access is needed, which keeps the tool stdlib-only.
type Loader struct {
	ModulePath string
	ModuleRoot string
	// IncludeTests adds _test.go files of the package itself (not
	// external _test packages) to the load. d2t2vet leaves this off:
	// the suite's checks target library code, and panicpolicy exempts
	// tests anyway.
	IncludeTests bool

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

// NewLoader finds the enclosing module of dir (the directory containing
// go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module clause in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		ModuleRoot: root,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*Package{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Expand resolves package patterns relative to the module root. "./..."
// (or "all") walks the whole module; "./x/..." walks a subtree; other
// arguments name single package directories. testdata, vendor and
// dot/underscore directories are skipped, matching the go tool.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return
		}
		path := l.ModulePath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		if !seen[path] && l.hasGoFiles(dir) {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		if pat == "all" {
			pat = "./..."
		}
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "./"
			}
		}
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			// A named (non-wildcard) package must exist: a typo'd path
			// silently matching nothing would report a green gate.
			if st, err := os.Stat(dir); err != nil || !st.IsDir() {
				return nil, fmt.Errorf("analysis: %s: no such package directory", pat)
			}
			if !l.hasGoFiles(dir) {
				return nil, fmt.Errorf("analysis: %s: no Go files", pat)
			}
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") {
			continue
		}
		if strings.HasSuffix(n, "_test.go") && !l.IncludeTests {
			continue
		}
		return true
	}
	return false
}

// buildConstraintSatisfied evaluates a file's //go:build line (if any)
// against the default build configuration the suite analyzes: current
// GOOS/GOARCH, the gc toolchain, any supported go1.N version, and NO
// optional tags. A `//go:build !race` file is analyzed; its `race`
// twin is skipped — without this, tag-paired files (internal/raceflag)
// would redeclare their symbols in one type-check. Legacy `// +build`
// lines without a //go:build line are rare enough in a gofmt'd module
// to ignore.
func buildConstraintSatisfied(src []byte) bool {
	sc := bufio.NewScanner(bytes.NewReader(src))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				return true // malformed: let the parser complain
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "gc" || tag == "unix" || strings.HasPrefix(tag, "go1.")
			})
		}
		// The constraint block ends at the first non-comment, non-blank
		// line (the package clause at the latest).
		if line != "" && !strings.HasPrefix(line, "//") {
			return true
		}
	}
	return true
}

// Load type-checks the package at the given module import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if path != l.ModulePath && !strings.HasPrefix(path, l.ModulePath+"/") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", path, l.ModulePath)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
}

// LoadDir type-checks the package in dir under the given import path.
// The path does not have to correspond to the directory layout; analyzer
// tests use this to load testdata fixtures as if they lived at scoped
// paths like d2t2/internal/model/fixture.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if strings.HasSuffix(n, "_test.go") && !l.IncludeTests {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		if !buildConstraintSatisfied(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	// External test packages (package x_test) cannot be mixed into the
	// package proper; keep only files matching the majority package
	// clause of the non-test files.
	pkgName := files[0].Name.Name
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
			break
		}
	}
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == pkgName {
			kept = append(kept, f)
		}
	}
	files = kept

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = p
	return p, nil
}

// moduleImporter resolves module-internal imports from source via the
// loader and delegates everything else to the stdlib source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
