package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// floatDetPrefixes scope the determinism checks to the packages whose
// outputs land in EXPERIMENTS.md tables: the probabilistic model, the
// optimizer that searches over its predictions, and the experiment
// harness itself.
var floatDetPrefixes = []string{
	"d2t2/internal/model",
	"d2t2/internal/optimizer",
	"d2t2/internal/experiments",
}

// FloatDeterminism flags constructs that make reproduced tables unstable
// run-to-run: exact ==/!= on floating-point operands, package-global
// math/rand use (unseeded, and racy under the parallel executor), and
// map iteration flowing straight into output rows without an
// intervening sort.
var FloatDeterminism = &Analyzer{
	Name: "floatdeterminism",
	Doc:  "flags float ==/!=, global math/rand use and unsorted map iteration into output rows in model, optimizer and experiments",
	Run:  runFloatDeterminism,
}

func runFloatDeterminism(p *Pass) {
	inScope := false
	for _, prefix := range floatDetPrefixes {
		if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if (e.Op == token.EQL || e.Op == token.NEQ) && (isFloat(p.TypeOf(e.X)) || isFloat(p.TypeOf(e.Y))) {
					p.Reportf(e.OpPos, "exact %s on floating-point operands is not reproducible across compilers and reassociation; compare with a tolerance or restructure", e.Op)
				}
			case *ast.SelectorExpr:
				if obj := p.Info.Uses[e.Sel]; obj != nil && isGlobalRandFunc(obj) {
					p.Reportf(e.Pos(), "package-global math/rand.%s is unseeded and racy under the parallel executor; thread an explicit *rand.Rand with a fixed seed", e.Sel.Name)
				}
			case *ast.RangeStmt:
				p.checkMapRangeIntoRows(e)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isGlobalRandFunc reports whether obj is a package-level function of
// math/rand other than the explicit-generator constructors.
func isGlobalRandFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // methods on *rand.Rand are fine
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// checkMapRangeIntoRows flags `for k := range m { ... tbl.Append(...) }`
// where m is a map: iteration order is randomized, so rows land in a
// different order every run. Sorting the keys into a slice first makes
// the range a slice range and the pattern disappears.
func (p *Pass) checkMapRangeIntoRows(r *ast.RangeStmt) {
	t := p.TypeOf(r.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(r.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Append" {
			return true
		}
		recv := p.TypeOf(sel.X)
		if recv == nil || namedTypeName(recv) != "Table" {
			return true
		}
		p.Reportf(call.Pos(), "Table.Append inside map iteration emits rows in randomized order; sort the keys into a slice first")
		return true
	})
}

func namedTypeName(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
