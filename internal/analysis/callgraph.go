package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is a lightweight intra-module call graph built on go/types:
// one node per function or method *declared* in the loaded packages,
// with the statically resolvable call sites in its body as edges. It
// deliberately ignores dynamic dispatch through interfaces and function
// values — the invariants it serves (ctxpropagation's "thread the
// context through") are about concrete call sites, where a missed
// dynamic edge means a missed finding, never a false one.
//
// Callee objects are normalized with types.Func.Origin, so calls to
// generic instantiations (par.MapScratch[T, S]) resolve to the single
// generic declaration's node.
type CallGraph struct {
	nodes   map[*types.Func]*CallNode
	callers map[*types.Func][]*CallNode
}

// CallNode is one declared function with its outgoing static calls.
type CallNode struct {
	Func  *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Sites []CallSite
}

// CallSite is one call expression with a statically resolved callee.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
}

// BuildCallGraph indexes every function declared in pkgs. Packages
// loaded only as type-checked imports (no AST) contribute callee
// identities but no nodes; analyzing them adds their nodes and edges.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes:   map[*types.Func]*CallNode{},
		callers: map[*types.Func][]*CallNode{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CallNode{Func: fn, Decl: fd, Pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := CalleeOf(pkg.Info, call); callee != nil {
						node.Sites = append(node.Sites, CallSite{Call: call, Callee: callee})
					}
					return true
				})
				g.nodes[fn] = node
			}
		}
	}
	for _, node := range g.Nodes() {
		seen := map[*types.Func]bool{}
		for _, site := range node.Sites {
			if !seen[site.Callee] {
				seen[site.Callee] = true
				g.callers[site.Callee] = append(g.callers[site.Callee], node)
			}
		}
	}
	return g
}

// Node returns the graph node for fn (normalized through Origin), or
// nil when fn is not declared in the analyzed packages.
func (g *CallGraph) Node(fn *types.Func) *CallNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Callers returns the nodes holding at least one static call to fn, in
// source order.
func (g *CallGraph) Callers(fn *types.Func) []*CallNode {
	if fn == nil {
		return nil
	}
	out := append([]*CallNode(nil), g.callers[fn.Origin()]...)
	sortNodes(out)
	return out
}

// Nodes returns every node in deterministic (package path, position)
// order.
func (g *CallGraph) Nodes() []*CallNode {
	out := make([]*CallNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sortNodes(out)
	return out
}

func sortNodes(ns []*CallNode) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Pkg.Path != ns[j].Pkg.Path {
			return ns[i].Pkg.Path < ns[j].Pkg.Path
		}
		return ns[i].Decl.Pos() < ns[j].Decl.Pos()
	})
}

// CalleeOf resolves the static callee of a call expression: a named
// function, a method, or a generic instantiation of either. It returns
// nil for builtins, type conversions, and calls through function
// values.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		switch e := fun.(type) {
		case *ast.ParenExpr:
			fun = e.X
		case *ast.IndexExpr: // generic instantiation f[T](...)
			fun = e.X
		case *ast.IndexListExpr: // generic instantiation f[T, U](...)
			fun = e.X
		default:
			goto resolved
		}
	}
resolved:
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return nil
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.Origin()
	}
	return nil
}

// CtxParamIndex returns the index of fn's context.Context parameter, or
// -1 if it takes none.
func CtxParamIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// CtxVariant returns fn's context-accepting sibling — the function or
// method named fn.Name()+"Ctx" in the same scope (package scope for
// functions, the receiver's method set for methods) whose first
// parameter is a context.Context and which otherwise takes one more
// parameter than fn — or nil. The lookup goes through go/types, so it
// works for callees in other packages without their ASTs.
func CtxVariant(fn *types.Func) *types.Func {
	if fn == nil || fn.Pkg() == nil || strings.HasSuffix(fn.Name(), "Ctx") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	name := fn.Name() + "Ctx"
	var cand types.Object
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, fn.Pkg(), name)
		cand = obj
	} else {
		cand = fn.Pkg().Scope().Lookup(name)
	}
	sib, ok := cand.(*types.Func)
	if !ok {
		return nil
	}
	ssig, ok := sib.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if ssig.Params().Len() != sig.Params().Len()+1 || ssig.Params().Len() == 0 {
		return nil
	}
	if !isContextType(ssig.Params().At(0).Type()) {
		return nil
	}
	return sib.Origin()
}
