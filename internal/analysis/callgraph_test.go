package analysis

import (
	"go/types"
	"path/filepath"
	"testing"
)

// TestCallGraphCrossPackage builds one graph over a fixture package and
// the real par package it imports, and checks that call edges resolve
// across the package boundary in both directions (Sites out of the
// fixture, Callers into par).
func TestCallGraphCrossPackage(t *testing.T) {
	l := testLoader(t)
	fix, err := l.LoadDir(filepath.Join("testdata", "src", "reductionorder"), "d2t2/internal/fixture_graph")
	if err != nil {
		t.Fatal(err)
	}
	parPkg, err := l.Load("d2t2/internal/par")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph([]*Package{fix, parPkg})

	forEach, ok := parPkg.Types.Scope().Lookup("ForEach").(*types.Func)
	if !ok {
		t.Fatal("par.ForEach not found")
	}
	if g.Node(forEach) == nil {
		t.Fatal("graph has no node for par.ForEach")
	}

	bad, ok := fix.Types.Scope().Lookup("Bad").(*types.Func)
	if !ok {
		t.Fatal("fixture Bad not found")
	}
	node := g.Node(bad)
	if node == nil {
		t.Fatal("graph has no node for fixture Bad")
	}
	edge := false
	for _, site := range node.Sites {
		if site.Callee == forEach {
			edge = true
		}
	}
	if !edge {
		t.Fatalf("Bad's call sites do not include par.ForEach; got %d site(s)", len(node.Sites))
	}

	callers := g.Callers(forEach)
	found := false
	for _, c := range callers {
		if c.Func == bad {
			found = true
		}
	}
	if !found {
		t.Fatalf("Callers(par.ForEach) does not include fixture Bad (%d caller(s))", len(callers))
	}
}

// TestCtxVariant checks sibling resolution on the real par package:
// ForEach pairs with ForEachCtx, and functions already named *Ctx have
// no variant.
func TestCtxVariant(t *testing.T) {
	l := testLoader(t)
	parPkg, err := l.Load("d2t2/internal/par")
	if err != nil {
		t.Fatal(err)
	}
	forEach := parPkg.Types.Scope().Lookup("ForEach").(*types.Func)
	sib := CtxVariant(forEach)
	if sib == nil || sib.Name() != "ForEachCtx" {
		t.Fatalf("CtxVariant(ForEach) = %v, want ForEachCtx", sib)
	}
	if CtxParamIndex(sib) != 0 {
		t.Fatalf("CtxParamIndex(ForEachCtx) = %d, want 0", CtxParamIndex(sib))
	}
	if got := CtxVariant(sib); got != nil {
		t.Fatalf("CtxVariant(ForEachCtx) = %v, want nil (already a Ctx function)", got)
	}
}
