package tiling

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"d2t2/internal/gen"
)

// TestNewCtxCancellation checks both halves of the context contract: a
// dead context aborts group-by tiling with the context's error, and a
// live context yields exactly the NewParallel result.
func TestNewCtxCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	m := gen.PowerLawGraph(r, 256, 4000, 1.5)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if tt, err := NewCtx(ctx, m, []int{16, 16}, []int{1, 0}, 4); tt != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want (nil, context.Canceled), got (%v, %v)", tt, err)
	}

	plain, err := NewParallel(m, []int{16, 16}, []int{1, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := NewCtx(context.Background(), m, []int{16, 16}, []int{1, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxed) {
		t.Fatal("NewCtx(Background) differs from NewParallel")
	}
}

// TestNewParallelMatchesSerial checks the tentpole invariant: the tiled
// tensor is identical — tiles, CSFs, footprints, outer CSF — at every
// worker count, across 2D and 3D tensors and permuted level orders.
func TestNewParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := []struct {
		name  string
		build func() (*TiledTensor, *TiledTensor, error)
	}{
		{"2d", func() (*TiledTensor, *TiledTensor, error) {
			m := gen.PowerLawGraph(r, 256, 4000, 1.5)
			a, err := NewParallel(m, []int{16, 16}, []int{1, 0}, 1)
			if err != nil {
				return nil, nil, err
			}
			b, err := NewParallel(m, []int{16, 16}, []int{1, 0}, 8)
			return a, b, err
		}},
		{"3d", func() (*TiledTensor, *TiledTensor, error) {
			m := gen.RandomTensor3(r, 40, 50, 60, 2000, [3]float64{0, 0.5, 0})
			a, err := NewParallel(m, []int{8, 8, 8}, []int{2, 0, 1}, 1)
			if err != nil {
				return nil, nil, err
			}
			b, err := NewParallel(m, []int{8, 8, 8}, []int{2, 0, 1}, 8)
			return a, b, err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("tiled tensors differ between Workers=1 and Workers=8")
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSortedKeysOrder pins the SortedKeys contract after the
// single-decode rewrite: keys come back ordered by outer coordinates
// compared level by level in tt.Order.
func TestSortedKeysOrder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := gen.UniformRandom(r, 90, 70, 500)
	tt, err := New(m, []int{8, 8}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	keys := tt.SortedKeys()
	if len(keys) != len(tt.Tiles) {
		t.Fatalf("got %d keys for %d tiles", len(keys), len(tt.Tiles))
	}
	n := len(tt.Dims)
	for i := 1; i < len(keys); i++ {
		ca, cb := Unkey(keys[i-1], n), Unkey(keys[i], n)
		less := false
		for _, ax := range tt.Order {
			if ca[ax] != cb[ax] {
				less = ca[ax] < cb[ax]
				break
			}
		}
		if !less {
			t.Fatalf("keys out of order at %d: %v then %v", i, ca, cb)
		}
	}
}
