package tiling

import "fmt"

// PackTiles implements the paper's §6.7 "packed tiles" scheme: instead of
// retiling the raw data with the optimized configuration, groups of
// already-built base tiles are packed together into super-tiles whose
// logical shape is factors[a]*TileDims[a] per axis. Each packed tile is
// indexed through a small sparse directory, so its footprint is the sum
// of its member footprints plus (order+1) directory words per member.
//
// The returned TiledTensor reuses the member CSFs; only bookkeeping is
// new. This models computing on sets of small tiles without a second
// tiling pass.
func PackTiles(tt *TiledTensor, factors []int) (*TiledTensor, error) {
	n := len(tt.Dims)
	if len(factors) != n {
		return nil, fmt.Errorf("tiling: %d pack factors for order-%d tensor", len(factors), n)
	}
	for a, f := range factors {
		if f < 1 {
			return nil, fmt.Errorf("tiling: pack factor %d on axis %d", f, a)
		}
	}
	out := &TiledTensor{
		Dims:      append([]int(nil), tt.Dims...),
		TileDims:  make([]int, n),
		OuterDims: make([]int, n),
		Order:     append([]int(nil), tt.Order...),
		Tiles:     make(map[uint64]*Tile),
		NNZ:       tt.NNZ,
	}
	out.PackedFrom = append([]int(nil), tt.TileDims...)
	for a := range out.TileDims {
		out.TileDims[a] = tt.TileDims[a] * factors[a]
		out.OuterDims[a] = (tt.Dims[a] + out.TileDims[a] - 1) / out.TileDims[a]
	}
	for _, tile := range tt.Tiles {
		oc := make([]int, n)
		for a := range oc {
			oc[a] = tile.Outer[a] / factors[a]
		}
		k := Key(oc)
		packed := out.Tiles[k]
		if packed == nil {
			packed = &Tile{Outer: oc}
			out.Tiles[k] = packed
		}
		packed.Members = append(packed.Members, tile)
		packed.Footprint += tile.Footprint + n + 1
	}
	for _, packed := range out.Tiles {
		out.TotalFootprint += packed.Footprint
		if packed.Footprint > out.MaxFootprint {
			out.MaxFootprint = packed.Footprint
		}
	}
	out.buildOuterCSF()
	return out, nil
}
