// Package tiling partitions sparse tensors in the coordinate space:
// every tensor axis a is split into tiles of size TileDims[a], producing a
// doubled index space of outer (tile) and inner (within-tile) coordinates
// — the A[i,k] → A[i',k',i,k] transformation of the paper (§2.2). A tiled
// tensor stores one inner CSF per non-empty tile plus an outer CSF over
// tile coordinates; tile footprints (values + metadata words) define the
// traffic unit.
package tiling

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"

	"d2t2/internal/checked"
	"d2t2/internal/formats"
	"d2t2/internal/par"
	"d2t2/internal/tensor"
)

// keyShift packs outer coordinates into a uint64 key, 21 bits per axis
// (sufficient for > 2M tiles per axis, far above anything we tile).
const keyShift = 21

// KeyShift is keyShift for callers outside the package that re-pack
// Key/Unkey keys field by field — the statistics merge path repacks tile
// keys into level order to count CSF fibers without building the CSF.
const KeyShift = keyShift

// Key encodes outer tile coordinates (in axis order) as a map key.
func Key(outer []int) uint64 {
	var k uint64
	for _, c := range outer {
		k = k<<keyShift | uint64(c)
	}
	return k
}

// Unkey decodes a key produced by Key back into n outer coordinates.
func Unkey(k uint64, n int) []int {
	out := make([]int, n)
	UnkeyInto(out, k)
	return out
}

// UnkeyInto decodes a key produced by Key into dst (whose length sets
// the coordinate count) without allocating — the hot-loop form of Unkey
// used by shape re-evaluation over tens of thousands of micro keys.
func UnkeyInto(dst []int, k uint64) {
	for a := len(dst) - 1; a >= 0; a-- {
		dst[a] = int(k & (1<<keyShift - 1))
		k >>= keyShift
	}
}

// Tile is one non-empty coordinate-space tile: its outer coordinates (in
// original axis order) and the CSF over its inner coordinates (in the
// tensor's level order).
type Tile struct {
	Outer     []int
	CSF       *formats.CSF
	Footprint int // words: values + all segment and coordinate arrays
	// Members is non-nil only for packed super-tiles (see PackTiles): the
	// base tiles indexed through the packed directory. CSF is nil then.
	Members []*Tile
}

// NNZ returns the number of stored values in the tile (summed over
// members for packed tiles).
func (t *Tile) NNZ() int {
	if t.Members != nil {
		n := 0
		for _, m := range t.Members {
			n += m.NNZ()
		}
		return n
	}
	return t.CSF.NNZ()
}

// TiledTensor is a sparse tensor partitioned into coordinate-space tiles.
type TiledTensor struct {
	Dims      []int // original dimension sizes, axis order
	TileDims  []int // tile size per axis
	OuterDims []int // ceil(Dims/TileDims) per axis
	// Order is the level order used for both the outer CSF and each inner
	// CSF: Order[l] is the axis stored at level l (the dataflow order).
	Order []int
	// Tiles maps Key(outer coords in axis order) to the tile.
	Tiles map[uint64]*Tile
	// OuterCSF is the CSF over outer tile coordinates in Order; its leaf
	// values are the tile footprints in words.
	OuterCSF *formats.CSF
	// PackedFrom is the member tile size per axis for packed tensors
	// built by PackTiles (nil for directly tiled tensors).
	PackedFrom []int

	TotalFootprint int
	MaxFootprint   int
	NNZ            int
}

// NumTiles returns the number of non-empty tiles.
func (tt *TiledTensor) NumTiles() int { return len(tt.Tiles) }

// MeanFootprint is the paper's SizeTile: average footprint over non-empty
// tiles.
func (tt *TiledTensor) MeanFootprint() float64 {
	if len(tt.Tiles) == 0 {
		return 0
	}
	return float64(tt.TotalFootprint) / float64(len(tt.Tiles))
}

// Lookup returns the tile at the given outer coordinates, or nil.
func (tt *TiledTensor) Lookup(outer ...int) *Tile {
	return tt.Tiles[Key(outer)]
}

// SortedKeys returns tile keys sorted by outer coordinates in Order
// (useful for deterministic iteration). Each key is decoded once into a
// level-order re-packing, so the sort compares plain uint64s instead of
// calling Unkey twice per comparison.
func (tt *TiledTensor) SortedKeys() []uint64 {
	n := len(tt.Dims)
	type keyPair struct{ ord, key uint64 }
	pairs := make([]keyPair, 0, len(tt.Tiles))
	c := make([]int, n)
	for k := range tt.Tiles {
		UnkeyInto(c, k)
		var ord uint64
		for _, ax := range tt.Order {
			ord = ord<<keyShift | uint64(c[ax])
		}
		pairs = append(pairs, keyPair{ord, k})
	}
	// Keys are unique and ord is a bijective re-packing, so this is a
	// strict total order identical to comparing coordinates level by level.
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].ord < pairs[b].ord })
	keys := make([]uint64, len(pairs))
	for i, p := range pairs {
		keys[i] = p.key
	}
	return keys
}

// Tile partitions t into coordinate-space tiles of size tileDims (per
// axis) with inner/outer CSF levels following order (nil = natural).
// The input must be duplicate-free (Dedup'd); entries are not modified.
// All cores are used; the result is byte-identical at any worker count
// (see NewParallel).
func New(t *tensor.COO, tileDims []int, order []int) (*TiledTensor, error) {
	return NewParallel(t, tileDims, order, 0)
}

// NewParallel is New with an explicit worker count (0 = all cores).
// Entries are bucketed by outer tile key in a single group-by pass —
// no global comparison sort over the whole tensor — and each tile's
// inner CSF is built independently on a worker pool. Tiles are merged
// in a deterministic keyed order, so the result is byte-identical for
// every worker count.
func NewParallel(t *tensor.COO, tileDims []int, order []int, workers int) (*TiledTensor, error) {
	return NewCtx(context.Background(), t, tileDims, order, workers)
}

// NewCtx is NewParallel with cooperative cancellation: the parallel
// passes stop claiming work at the next item boundary once ctx is
// cancelled, the serial passes check ctx between phases, and the
// context's error is returned. A never-cancelled ctx yields exactly
// NewParallel's byte-identical result.
func NewCtx(ctx context.Context, t *tensor.COO, tileDims []int, order []int, workers int) (*TiledTensor, error) {
	n := t.Order()
	order, err := validateTiling(t, tileDims, order)
	if err != nil {
		return nil, err
	}

	tt := &TiledTensor{
		Dims:      append([]int(nil), t.Dims...),
		TileDims:  append([]int(nil), tileDims...),
		OuterDims: make([]int, n),
		Order:     append([]int(nil), order...),
		Tiles:     make(map[uint64]*Tile),
		NNZ:       t.NNZ(),
	}
	for a := range tt.OuterDims {
		tt.OuterDims[a] = (t.Dims[a] + tileDims[a] - 1) / tileDims[a]
	}

	gr, err := groupByOuter(ctx, t, tileDims, order, workers)
	if err != nil {
		return nil, err
	}
	inner, groupKeys, starts, entOf := gr.inner, gr.groupKeys, gr.starts, gr.entOf

	innerDims := make([]int, n)
	for l, ax := range order {
		innerDims[l] = tileDims[ax]
	}

	// Pass 4 (parallel per group): sort each group's entries by inner
	// coordinates in level order (a strict total order — the input is
	// duplicate-free) and build its inner CSF. Workers write disjoint
	// slots of the per-group slices; no shared state. Each worker reuses
	// one scratch of column/value buffers across every group it claims
	// (grown once to the largest group, never reallocated per tile), and
	// the Tile structs and their outer-coordinate slices come from two
	// flat backing arrays instead of per-group allocations — all three
	// are retained by the result or reused, so the per-group cost is the
	// inner CSF's exact-sized arrays and nothing else.
	tiles := make([]Tile, len(groupKeys))
	ocBack := make([]int, n*len(groupKeys))
	type tileScratch struct {
		cols [][]int32
		vals []float64
	}
	newScratch := func() *tileScratch { return &tileScratch{cols: make([][]int32, n)} }
	// One comparator shared by every worker (read-only captures): the
	// per-group sort.Slice closure plus its reflection-based swapper were
	// one allocation per tile, visible at micro-tiling granularity.
	cmpInner := func(p, q int) int {
		for l := 0; l < n; l++ {
			if d := inner[l][p] - inner[l][q]; d != 0 {
				return int(d)
			}
		}
		return 0
	}
	err = par.ForEachScratchCtx(ctx, workers, len(groupKeys), newScratch, func(g int, sc *tileScratch) error {
		seg := entOf[starts[g]:starts[g+1]]
		slices.SortFunc(seg, cmpInner)
		if cap(sc.vals) < len(seg) {
			for l := 0; l < n; l++ {
				sc.cols[l] = make([]int32, len(seg))
			}
			sc.vals = make([]float64, len(seg))
		}
		cols := sc.cols
		vals := sc.vals[:len(seg)]
		for l := 0; l < n; l++ {
			col := cols[l][:len(seg)]
			for x, p := range seg {
				col[x] = inner[l][p]
			}
			cols[l] = col
		}
		for x, p := range seg {
			vals[x] = t.Vals[p]
		}
		// The CSF copies out of the scratch and shares innerDims/order —
		// both owned by this tiling and immutable from here on.
		csf := formats.BuildSortedUniqueShared(innerDims, tt.Order, cols, vals)
		// Decode the level-order group key back into axis-order coords.
		k := groupKeys[g]
		oc := ocBack[g*n : (g+1)*n : (g+1)*n]
		for l := n - 1; l >= 0; l-- {
			oc[order[l]] = int(k & (1<<keyShift - 1))
			k >>= keyShift
		}
		tiles[g] = Tile{Outer: oc, CSF: csf, Footprint: csf.FootprintWords()}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Pass 5 (serial): keyed merge in group order. The aggregates are an
	// integer sum and maximum, so the totals are independent of group
	// discovery order. Tiles live in one flat array; the map holds
	// pointers into it.
	for g := range tiles {
		tile := &tiles[g]
		tt.Tiles[Key(tile.Outer)] = tile
		tt.TotalFootprint += tile.Footprint
		if tile.Footprint > tt.MaxFootprint {
			tt.MaxFootprint = tile.Footprint
		}
	}

	tt.buildOuterCSF()
	return tt, nil
}

// validateTiling checks the tile-dims/order arity and the coordinate
// width bounds shared by NewCtx and SummarizeCtx, returning the resolved
// level order (natural when nil). The math.MaxInt32 guard here bounds
// every outer/inner conversion downstream of both entry points.
func validateTiling(t *tensor.COO, tileDims, order []int) ([]int, error) {
	n := t.Order()
	if len(tileDims) != n {
		return nil, fmt.Errorf("tiling: %d tile dims for order-%d tensor", len(tileDims), n)
	}
	if order == nil {
		order = make([]int, n)
		for a := range order {
			order[a] = a
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("tiling: order arity %d != %d", len(order), n)
	}
	for a, td := range tileDims {
		if td < 1 {
			return nil, fmt.Errorf("tiling: tile dim %d on axis %d", td, a)
		}
		if (t.Dims[a]+td-1)/td > 1<<keyShift {
			return nil, fmt.Errorf("tiling: axis %d produces too many tiles", a)
		}
		// Guard the int32 coordinate width up front so the per-entry
		// outer/inner conversions below cannot wrap (coordinates are
		// bounded by the axis dimension).
		if t.Dims[a] > math.MaxInt32 {
			return nil, fmt.Errorf("tiling: axis %d dimension %d exceeds the int32 coordinate width", a, t.Dims[a])
		}
	}
	return order, nil
}

// grouping is the output of the radix group-by passes shared by the full
// tiler and the summary pass: per-entry inner coordinates per level, the
// group keys (packed in level order, first-appearance order), and entry
// indices counting-sorted into per-group contiguous segments of entOf
// (group g owns entOf[starts[g]:starts[g+1]], stable within the group).
type grouping struct {
	inner     [][]int32
	groupKeys []uint64
	starts    []int
	entOf     []int
}

// groupByOuter runs passes 1–3 of the tiler: compute per-entry inner
// coordinates and level-order outer keys in parallel, discover groups
// serially in first-appearance order, and counting-sort entry indices
// into per-group segments. The caller must have validated tileDims/order
// via validateTiling.
func groupByOuter(ctx context.Context, t *tensor.COO, tileDims, order []int, workers int) (*grouping, error) {
	n := t.Order()
	nnz := t.NNZ()

	// Inner coordinates are remainders modulo the tile size, which
	// validateTiling capped at math.MaxInt32 — assert per axis so the
	// int32 narrowing in pass 1 is visibly safe without a per-entry
	// check.
	for _, td := range tileDims {
		if td <= 0 || td > math.MaxInt32 {
			return nil, fmt.Errorf("tiling: tile dim %d out of int32 range", td)
		}
	}

	// Pass 1 (parallel over disjoint entry ranges): per-entry inner
	// coordinates per level and the outer tile key packed in level order.
	// The keyShift guard in validateTiling bounds every outer coordinate
	// below 2^keyShift, so n levels always fit one uint64 (Key relies on
	// the same bound in axis order).
	inner := make([][]int32, n)
	for l := range inner {
		inner[l] = make([]int32, nnz)
	}
	gkeys := make([]uint64, nnz)
	chunks := par.Chunks(workers, nnz)
	if err := par.ForEachCtx(ctx, workers, len(chunks), func(c int) error {
		for p := chunks[c][0]; p < chunks[c][1]; p++ {
			var k uint64
			for l, ax := range order {
				crd := t.Crds[ax][p]
				td := tileDims[ax]
				k = k<<keyShift | uint64(crd/td)
				inner[l][p] = int32(crd % td)
			}
			gkeys[p] = k
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Pass 2 (serial): discover groups in first-appearance order and
	// count entries per group.
	gidOf := make(map[uint64]int, 64)
	groupKeys := make([]uint64, 0, 64)
	counts := make([]int, 0, 64)
	gidPer := make([]int, nnz)
	for p := 0; p < nnz; p++ {
		k := gkeys[p]
		g, ok := gidOf[k]
		if !ok {
			g = len(groupKeys)
			gidOf[k] = g
			groupKeys = append(groupKeys, k)
			counts = append(counts, 0)
		}
		gidPer[p] = g
		counts[g]++
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Pass 3 (serial): counting-sort entry indices into per-group
	// contiguous segments (stable within each group).
	starts := make([]int, len(groupKeys)+1)
	for g, c := range counts {
		starts[g+1] = starts[g] + c
	}
	entOf := make([]int, nnz)
	cursor := append([]int(nil), starts[:len(groupKeys)]...)
	for p := 0; p < nnz; p++ {
		g := gidPer[p]
		entOf[cursor[g]] = p
		cursor[g]++
	}
	return &grouping{inner: inner, groupKeys: groupKeys, starts: starts, entOf: entOf}, nil
}

// TileSummary is the allocation-light alternative to a full tiling: the
// per-tile aggregates the statistics collector's micro summary needs —
// keys, entry counts and CSF footprints — computed without materializing
// an inner CSF per tile. For a tiling at micro granularity this replaces
// tens of thousands of short-lived CSF allocations with three flat
// arrays.
type TileSummary struct {
	OuterDims []int    // micro grid extent per axis
	Keys      []uint64 // axis-order Key() per non-empty tile, ascending
	NNZ       []int32  // stored entries per tile, parallel to Keys
	Footprint []int32  // CSF footprint words per tile, parallel to Keys
	// Fibers[l][i] is the fiber count at CSF level l of tile Keys[i] —
	// exactly FiberCount(l) of the inner CSF NewCtx would build. The
	// statistics merge path sums these per level instead of re-walking
	// tiles, so per-chunk partials reproduce ProbIndex exactly.
	Fibers [][]int32

	TotalFootprint int
}

// Summarize is SummarizeCtx without cancellation.
func Summarize(t *tensor.COO, tileDims, order []int, workers int) (*TileSummary, error) {
	return SummarizeCtx(context.Background(), t, tileDims, order, workers)
}

// SummarizeCtx computes the TileSummary of tiling t by tileDims in level
// order `order` (nil = natural). The per-tile footprints are exactly what
// NewCtx would record (FootprintWords of the per-tile CSF): entries ×
// one value word, plus per level the fiber count (coordinate words) and
// the segment words (parent fibers + 1; 2 at the root). Results are
// byte-identical at any worker count.
func SummarizeCtx(ctx context.Context, t *tensor.COO, tileDims, order []int, workers int) (*TileSummary, error) {
	n := t.Order()
	order, err := validateTiling(t, tileDims, order)
	if err != nil {
		return nil, err
	}
	gr, err := groupByOuter(ctx, t, tileDims, order, workers)
	if err != nil {
		return nil, err
	}
	inner, groupKeys, starts, entOf := gr.inner, gr.groupKeys, gr.starts, gr.entOf

	sum := &TileSummary{
		OuterDims: make([]int, n),
		Keys:      make([]uint64, len(groupKeys)),
		NNZ:       make([]int32, len(groupKeys)),
		Footprint: make([]int32, len(groupKeys)),
		Fibers:    make([][]int32, n),
	}
	fibBack := make([]int32, n*len(groupKeys))
	for l := 0; l < n; l++ {
		sum.Fibers[l] = fibBack[l*len(groupKeys) : (l+1)*len(groupKeys) : (l+1)*len(groupKeys)]
	}
	for a := range sum.OuterDims {
		sum.OuterDims[a] = (t.Dims[a] + tileDims[a] - 1) / tileDims[a]
	}

	cmpInner := func(p, q int) int {
		for l := 0; l < n; l++ {
			if d := inner[l][p] - inner[l][q]; d != 0 {
				return int(d)
			}
		}
		return 0
	}
	// Parallel per group: sort the group's entries by inner coordinates
	// (the same strict total order the CSF build uses) and count fibers
	// per level by divergence — a fiber opens at every entry whose path
	// diverges from its predecessor's at or above that level. Workers
	// write disjoint per-group slots; nothing here allocates.
	if err := par.ForEachCtx(ctx, workers, len(groupKeys), func(g int) error {
		seg := entOf[starts[g]:starts[g+1]]
		slices.SortFunc(seg, cmpInner)
		// Footprint = values + Σ_l coords (fibers[l]) + Σ_l segment words
		// (fibers[l-1]+1 per level, 2 at the root — an n+1 constant plus
		// every non-leaf level's fiber count repeated as its child's
		// segment starts).
		words := len(seg) + n + 1
		var fibArr [8]int
		fib := fibArr[:]
		if n > len(fibArr) {
			fib = make([]int, n)
		}
		for l := 0; l < n; l++ {
			fib[l] = 1 // the first entry opens every level
		}
		for x := 1; x < len(seg); x++ {
			p, q := seg[x], seg[x-1]
			div := 0
			for div < n && inner[div][p] == inner[div][q] {
				div++
			}
			for l := div; l < n; l++ {
				fib[l]++
			}
		}
		for l := 0; l < n; l++ {
			words += fib[l]
			if l < n-1 {
				words += fib[l] // segment entries of level l+1
			}
		}
		// Decode the level-order group key into an axis-order Key.
		k := groupKeys[g]
		var ocArr [8]int
		oc := ocArr[:]
		if n > len(ocArr) {
			oc = make([]int, n)
		}
		for l := n - 1; l >= 0; l-- {
			oc[order[l]] = int(k & (1<<keyShift - 1))
			k >>= keyShift
		}
		sum.Keys[g] = Key(oc[:n])
		sum.NNZ[g] = checked.Int32(len(seg))
		sum.Footprint[g] = checked.Int32(words)
		for l := 0; l < n; l++ {
			sum.Fibers[l][g] = checked.Int32(fib[l])
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Canonical order: ascending axis-order key (what the stats micro
	// summary serializes); keys are unique so the permutation is total.
	perm := make([]int, len(sum.Keys))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(x, y int) bool { return sum.Keys[perm[x]] < sum.Keys[perm[y]] })
	keys := make([]uint64, len(perm))
	nnzs := make([]int32, len(perm))
	fps := make([]int32, len(perm))
	fibs := make([][]int32, n)
	fibsBack := make([]int32, n*len(perm))
	for l := 0; l < n; l++ {
		fibs[l] = fibsBack[l*len(perm) : (l+1)*len(perm) : (l+1)*len(perm)]
	}
	for i, pi := range perm {
		keys[i] = sum.Keys[pi]
		nnzs[i] = sum.NNZ[pi]
		fps[i] = sum.Footprint[pi]
		for l := 0; l < n; l++ {
			fibs[l][i] = sum.Fibers[l][pi]
		}
		sum.TotalFootprint += int(fps[i])
	}
	sum.Keys, sum.NNZ, sum.Footprint, sum.Fibers = keys, nnzs, fps, fibs
	return sum, nil
}

// buildOuterCSF constructs the CSF over outer tile coordinates whose leaf
// values are tile footprints.
func (tt *TiledTensor) buildOuterCSF() {
	oc := tensor.New(tt.OuterDims...)
	for _, k := range tt.SortedKeys() {
		tile := tt.Tiles[k]
		oc.Append(tile.Outer, float64(tile.Footprint))
	}
	tt.OuterCSF = formats.Build(oc, tt.Order)
}

// ToCOO reassembles the original tensor from the tiles (for testing).
func (tt *TiledTensor) ToCOO() *tensor.COO {
	out := tensor.New(tt.Dims...)
	coord := make([]int, len(tt.Dims))
	for _, tile := range tt.Tiles {
		sub := tile.CSF.ToCOO() // axis order restored by CSF
		for p := 0; p < sub.NNZ(); p++ {
			for a := range coord {
				coord[a] = tile.Outer[a]*tt.TileDims[a] + sub.Crds[a][p]
			}
			out.Append(coord, sub.Vals[p])
		}
	}
	return out
}

// Validate checks the tiled tensor's internal invariants: outer
// coordinates within the outer grid, per-tile footprints consistent with
// their CSFs, aggregate totals matching, and nnz conservation. Intended
// for tests and debugging.
func (tt *TiledTensor) Validate() error {
	total, max, nnz := 0, 0, 0
	for k, tile := range tt.Tiles {
		dec := Unkey(k, len(tt.Dims))
		for a := range dec {
			if dec[a] != tile.Outer[a] {
				return fmt.Errorf("tiling: key %v does not match outer %v", dec, tile.Outer)
			}
			if tile.Outer[a] < 0 || tile.Outer[a] >= tt.OuterDims[a] {
				return fmt.Errorf("tiling: outer coordinate %v out of grid %v", tile.Outer, tt.OuterDims)
			}
		}
		if tile.Members == nil {
			if got := tile.CSF.FootprintWords(); got != tile.Footprint {
				return fmt.Errorf("tiling: tile %v footprint %d != CSF %d", tile.Outer, tile.Footprint, got)
			}
		}
		total += tile.Footprint
		if tile.Footprint > max {
			max = tile.Footprint
		}
		nnz += tile.NNZ()
	}
	if total != tt.TotalFootprint || max != tt.MaxFootprint {
		return fmt.Errorf("tiling: aggregate footprints %d/%d != recorded %d/%d",
			total, max, tt.TotalFootprint, tt.MaxFootprint)
	}
	if nnz != tt.NNZ {
		return fmt.Errorf("tiling: tiles hold %d entries, tensor recorded %d", nnz, tt.NNZ)
	}
	return nil
}

// DenseFootprintWords returns the CSF footprint of a completely dense tile
// with the given per-level dimensions: the worst case the Conservative
// scheme provisions for.
func DenseFootprintWords(tileDims []int) int {
	words := 0
	prod := 1
	for _, d := range tileDims {
		// Each level stores prod*d coordinates and prod+1 segment bounds.
		words += prod*d + prod + 1
		prod *= d
	}
	words += prod // values
	return words
}

// ConservativeSquare returns the largest square tile size (power of two)
// whose fully dense footprint fits in bufferWords, for a tensor of the
// given order. This is the paper's Conservative scheme tile dimension.
func ConservativeSquare(bufferWords, order int) int {
	t := 1
	for {
		dims := make([]int, order)
		for a := range dims {
			dims[a] = t * 2
		}
		if DenseFootprintWords(dims) > bufferWords {
			return t
		}
		t *= 2
	}
}
