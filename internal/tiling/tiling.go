// Package tiling partitions sparse tensors in the coordinate space:
// every tensor axis a is split into tiles of size TileDims[a], producing a
// doubled index space of outer (tile) and inner (within-tile) coordinates
// — the A[i,k] → A[i',k',i,k] transformation of the paper (§2.2). A tiled
// tensor stores one inner CSF per non-empty tile plus an outer CSF over
// tile coordinates; tile footprints (values + metadata words) define the
// traffic unit.
package tiling

import (
	"context"
	"fmt"
	"math"
	"sort"

	"d2t2/internal/formats"
	"d2t2/internal/par"
	"d2t2/internal/tensor"
)

// keyShift packs outer coordinates into a uint64 key, 21 bits per axis
// (sufficient for > 2M tiles per axis, far above anything we tile).
const keyShift = 21

// Key encodes outer tile coordinates (in axis order) as a map key.
func Key(outer []int) uint64 {
	var k uint64
	for _, c := range outer {
		k = k<<keyShift | uint64(c)
	}
	return k
}

// Unkey decodes a key produced by Key back into n outer coordinates.
func Unkey(k uint64, n int) []int {
	out := make([]int, n)
	for a := n - 1; a >= 0; a-- {
		out[a] = int(k & (1<<keyShift - 1))
		k >>= keyShift
	}
	return out
}

// Tile is one non-empty coordinate-space tile: its outer coordinates (in
// original axis order) and the CSF over its inner coordinates (in the
// tensor's level order).
type Tile struct {
	Outer     []int
	CSF       *formats.CSF
	Footprint int // words: values + all segment and coordinate arrays
	// Members is non-nil only for packed super-tiles (see PackTiles): the
	// base tiles indexed through the packed directory. CSF is nil then.
	Members []*Tile
}

// NNZ returns the number of stored values in the tile (summed over
// members for packed tiles).
func (t *Tile) NNZ() int {
	if t.Members != nil {
		n := 0
		for _, m := range t.Members {
			n += m.NNZ()
		}
		return n
	}
	return t.CSF.NNZ()
}

// TiledTensor is a sparse tensor partitioned into coordinate-space tiles.
type TiledTensor struct {
	Dims      []int // original dimension sizes, axis order
	TileDims  []int // tile size per axis
	OuterDims []int // ceil(Dims/TileDims) per axis
	// Order is the level order used for both the outer CSF and each inner
	// CSF: Order[l] is the axis stored at level l (the dataflow order).
	Order []int
	// Tiles maps Key(outer coords in axis order) to the tile.
	Tiles map[uint64]*Tile
	// OuterCSF is the CSF over outer tile coordinates in Order; its leaf
	// values are the tile footprints in words.
	OuterCSF *formats.CSF
	// PackedFrom is the member tile size per axis for packed tensors
	// built by PackTiles (nil for directly tiled tensors).
	PackedFrom []int

	TotalFootprint int
	MaxFootprint   int
	NNZ            int
}

// NumTiles returns the number of non-empty tiles.
func (tt *TiledTensor) NumTiles() int { return len(tt.Tiles) }

// MeanFootprint is the paper's SizeTile: average footprint over non-empty
// tiles.
func (tt *TiledTensor) MeanFootprint() float64 {
	if len(tt.Tiles) == 0 {
		return 0
	}
	return float64(tt.TotalFootprint) / float64(len(tt.Tiles))
}

// Lookup returns the tile at the given outer coordinates, or nil.
func (tt *TiledTensor) Lookup(outer ...int) *Tile {
	return tt.Tiles[Key(outer)]
}

// SortedKeys returns tile keys sorted by outer coordinates in Order
// (useful for deterministic iteration). Each key is decoded once into a
// level-order re-packing, so the sort compares plain uint64s instead of
// calling Unkey twice per comparison.
func (tt *TiledTensor) SortedKeys() []uint64 {
	n := len(tt.Dims)
	type keyPair struct{ ord, key uint64 }
	pairs := make([]keyPair, 0, len(tt.Tiles))
	for k := range tt.Tiles {
		c := Unkey(k, n)
		var ord uint64
		for _, ax := range tt.Order {
			ord = ord<<keyShift | uint64(c[ax])
		}
		pairs = append(pairs, keyPair{ord, k})
	}
	// Keys are unique and ord is a bijective re-packing, so this is a
	// strict total order identical to comparing coordinates level by level.
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].ord < pairs[b].ord })
	keys := make([]uint64, len(pairs))
	for i, p := range pairs {
		keys[i] = p.key
	}
	return keys
}

// Tile partitions t into coordinate-space tiles of size tileDims (per
// axis) with inner/outer CSF levels following order (nil = natural).
// The input must be duplicate-free (Dedup'd); entries are not modified.
// All cores are used; the result is byte-identical at any worker count
// (see NewParallel).
func New(t *tensor.COO, tileDims []int, order []int) (*TiledTensor, error) {
	return NewParallel(t, tileDims, order, 0)
}

// NewParallel is New with an explicit worker count (0 = all cores).
// Entries are bucketed by outer tile key in a single group-by pass —
// no global comparison sort over the whole tensor — and each tile's
// inner CSF is built independently on a worker pool. Tiles are merged
// in a deterministic keyed order, so the result is byte-identical for
// every worker count.
func NewParallel(t *tensor.COO, tileDims []int, order []int, workers int) (*TiledTensor, error) {
	return NewCtx(context.Background(), t, tileDims, order, workers)
}

// NewCtx is NewParallel with cooperative cancellation: the parallel
// passes stop claiming work at the next item boundary once ctx is
// cancelled, the serial passes check ctx between phases, and the
// context's error is returned. A never-cancelled ctx yields exactly
// NewParallel's byte-identical result.
func NewCtx(ctx context.Context, t *tensor.COO, tileDims []int, order []int, workers int) (*TiledTensor, error) {
	n := t.Order()
	if len(tileDims) != n {
		return nil, fmt.Errorf("tiling: %d tile dims for order-%d tensor", len(tileDims), n)
	}
	if order == nil {
		order = make([]int, n)
		for a := range order {
			order[a] = a
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("tiling: order arity %d != %d", len(order), n)
	}
	for a, td := range tileDims {
		if td < 1 {
			return nil, fmt.Errorf("tiling: tile dim %d on axis %d", td, a)
		}
		if (t.Dims[a]+td-1)/td > 1<<keyShift {
			return nil, fmt.Errorf("tiling: axis %d produces too many tiles", a)
		}
		// Guard the int32 coordinate width up front so the per-entry
		// outer/inner conversions below cannot wrap (coordinates are
		// bounded by the axis dimension).
		if t.Dims[a] > math.MaxInt32 {
			return nil, fmt.Errorf("tiling: axis %d dimension %d exceeds the int32 coordinate width", a, t.Dims[a])
		}
	}

	tt := &TiledTensor{
		Dims:      append([]int(nil), t.Dims...),
		TileDims:  append([]int(nil), tileDims...),
		OuterDims: make([]int, n),
		Order:     append([]int(nil), order...),
		Tiles:     make(map[uint64]*Tile),
		NNZ:       t.NNZ(),
	}
	for a := range tt.OuterDims {
		tt.OuterDims[a] = (t.Dims[a] + tileDims[a] - 1) / tileDims[a]
	}

	nnz := t.NNZ()

	// Pass 1 (parallel over disjoint entry ranges): per-entry inner
	// coordinates per level and the outer tile key packed in level order.
	// The keyShift guard above bounds every outer coordinate below
	// 2^keyShift, so n levels always fit one uint64 (Key relies on the
	// same bound in axis order).
	inner := make([][]int32, n)
	for l := range inner {
		inner[l] = make([]int32, nnz)
	}
	gkeys := make([]uint64, nnz)
	chunks := par.Chunks(workers, nnz)
	if err := par.ForEachCtx(ctx, workers, len(chunks), func(c int) error {
		for p := chunks[c][0]; p < chunks[c][1]; p++ {
			var k uint64
			for l, ax := range order {
				crd := t.Crds[ax][p]
				td := tileDims[ax]
				k = k<<keyShift | uint64(crd/td)
				inner[l][p] = int32(crd % td)
			}
			gkeys[p] = k
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Pass 2 (serial): discover groups in first-appearance order and
	// count entries per group.
	gidOf := make(map[uint64]int, 64)
	groupKeys := make([]uint64, 0, 64)
	counts := make([]int, 0, 64)
	gidPer := make([]int, nnz)
	for p := 0; p < nnz; p++ {
		k := gkeys[p]
		g, ok := gidOf[k]
		if !ok {
			g = len(groupKeys)
			gidOf[k] = g
			groupKeys = append(groupKeys, k)
			counts = append(counts, 0)
		}
		gidPer[p] = g
		counts[g]++
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Pass 3 (serial): counting-sort entry indices into per-group
	// contiguous segments (stable within each group).
	starts := make([]int, len(groupKeys)+1)
	for g, c := range counts {
		starts[g+1] = starts[g] + c
	}
	entOf := make([]int, nnz)
	cursor := append([]int(nil), starts[:len(groupKeys)]...)
	for p := 0; p < nnz; p++ {
		g := gidPer[p]
		entOf[cursor[g]] = p
		cursor[g]++
	}

	innerDims := make([]int, n)
	for l, ax := range order {
		innerDims[l] = tileDims[ax]
	}

	// Pass 4 (parallel per group): sort each group's entries by inner
	// coordinates in level order (a strict total order — the input is
	// duplicate-free) and build its inner CSF. Workers write disjoint
	// slots of the per-group slice; no shared state.
	tiles := make([]*Tile, len(groupKeys))
	err := par.ForEachCtx(ctx, workers, len(groupKeys), func(g int) error {
		seg := entOf[starts[g]:starts[g+1]]
		sort.Slice(seg, func(x, y int) bool {
			p, q := seg[x], seg[y]
			for l := 0; l < n; l++ {
				if inner[l][p] != inner[l][q] {
					return inner[l][p] < inner[l][q]
				}
			}
			return false
		})
		runCrds := make([][]int32, n)
		for l := 0; l < n; l++ {
			col := make([]int32, len(seg))
			for x, p := range seg {
				col[x] = inner[l][p]
			}
			runCrds[l] = col
		}
		vals := make([]float64, len(seg))
		for x, p := range seg {
			vals[x] = t.Vals[p]
		}
		csf := formats.BuildSortedUnique(innerDims, order, runCrds, vals)
		// Decode the level-order group key back into axis-order coords.
		k := groupKeys[g]
		oc := make([]int, n)
		for l := n - 1; l >= 0; l-- {
			oc[order[l]] = int(k & (1<<keyShift - 1))
			k >>= keyShift
		}
		tiles[g] = &Tile{Outer: oc, CSF: csf, Footprint: csf.FootprintWords()}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Pass 5 (serial): keyed merge in group order. The aggregates are an
	// integer sum and maximum, so the totals are independent of group
	// discovery order.
	for _, tile := range tiles {
		tt.Tiles[Key(tile.Outer)] = tile
		tt.TotalFootprint += tile.Footprint
		if tile.Footprint > tt.MaxFootprint {
			tt.MaxFootprint = tile.Footprint
		}
	}

	tt.buildOuterCSF()
	return tt, nil
}

// buildOuterCSF constructs the CSF over outer tile coordinates whose leaf
// values are tile footprints.
func (tt *TiledTensor) buildOuterCSF() {
	oc := tensor.New(tt.OuterDims...)
	for _, k := range tt.SortedKeys() {
		tile := tt.Tiles[k]
		oc.Append(tile.Outer, float64(tile.Footprint))
	}
	tt.OuterCSF = formats.Build(oc, tt.Order)
}

// ToCOO reassembles the original tensor from the tiles (for testing).
func (tt *TiledTensor) ToCOO() *tensor.COO {
	out := tensor.New(tt.Dims...)
	coord := make([]int, len(tt.Dims))
	for _, tile := range tt.Tiles {
		sub := tile.CSF.ToCOO() // axis order restored by CSF
		for p := 0; p < sub.NNZ(); p++ {
			for a := range coord {
				coord[a] = tile.Outer[a]*tt.TileDims[a] + sub.Crds[a][p]
			}
			out.Append(coord, sub.Vals[p])
		}
	}
	return out
}

// Validate checks the tiled tensor's internal invariants: outer
// coordinates within the outer grid, per-tile footprints consistent with
// their CSFs, aggregate totals matching, and nnz conservation. Intended
// for tests and debugging.
func (tt *TiledTensor) Validate() error {
	total, max, nnz := 0, 0, 0
	for k, tile := range tt.Tiles {
		dec := Unkey(k, len(tt.Dims))
		for a := range dec {
			if dec[a] != tile.Outer[a] {
				return fmt.Errorf("tiling: key %v does not match outer %v", dec, tile.Outer)
			}
			if tile.Outer[a] < 0 || tile.Outer[a] >= tt.OuterDims[a] {
				return fmt.Errorf("tiling: outer coordinate %v out of grid %v", tile.Outer, tt.OuterDims)
			}
		}
		if tile.Members == nil {
			if got := tile.CSF.FootprintWords(); got != tile.Footprint {
				return fmt.Errorf("tiling: tile %v footprint %d != CSF %d", tile.Outer, tile.Footprint, got)
			}
		}
		total += tile.Footprint
		if tile.Footprint > max {
			max = tile.Footprint
		}
		nnz += tile.NNZ()
	}
	if total != tt.TotalFootprint || max != tt.MaxFootprint {
		return fmt.Errorf("tiling: aggregate footprints %d/%d != recorded %d/%d",
			total, max, tt.TotalFootprint, tt.MaxFootprint)
	}
	if nnz != tt.NNZ {
		return fmt.Errorf("tiling: tiles hold %d entries, tensor recorded %d", nnz, tt.NNZ)
	}
	return nil
}

// DenseFootprintWords returns the CSF footprint of a completely dense tile
// with the given per-level dimensions: the worst case the Conservative
// scheme provisions for.
func DenseFootprintWords(tileDims []int) int {
	words := 0
	prod := 1
	for _, d := range tileDims {
		// Each level stores prod*d coordinates and prod+1 segment bounds.
		words += prod*d + prod + 1
		prod *= d
	}
	words += prod // values
	return words
}

// ConservativeSquare returns the largest square tile size (power of two)
// whose fully dense footprint fits in bufferWords, for a tensor of the
// given order. This is the paper's Conservative scheme tile dimension.
func ConservativeSquare(bufferWords, order int) int {
	t := 1
	for {
		dims := make([]int, order)
		for a := range dims {
			dims[a] = t * 2
		}
		if DenseFootprintWords(dims) > bufferWords {
			return t
		}
		t *= 2
	}
}
