package tiling

import (
	"fmt"
	"math/rand"
	"testing"

	"d2t2/internal/gen"
	"d2t2/internal/raceflag"
)

// TestSummarizeMatchesNew pins the summary-only tiler to the full one:
// for every tile the summary's key set, entry count and footprint words
// must equal what NewParallel materializes, at any worker count, across
// 2D and 3D tensors and permuted level orders. This is the invariant
// that lets the statistics collector's micro pass skip building CSFs.
func TestSummarizeMatchesNew(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	type tcase struct {
		name string
		gen  func() (tt *TiledTensor, sum1, sum8 *TileSummary, err error)
	}
	run := []tcase{
		{name: "2d", gen: func() (*TiledTensor, *TileSummary, *TileSummary, error) {
			m := gen.PowerLawGraph(r, 256, 4000, 1.5)
			tt, err := NewParallel(m, []int{16, 16}, []int{1, 0}, 4)
			if err != nil {
				return nil, nil, nil, err
			}
			s1, err := Summarize(m, []int{16, 16}, []int{1, 0}, 1)
			if err != nil {
				return nil, nil, nil, err
			}
			s8, err := Summarize(m, []int{16, 16}, []int{1, 0}, 8)
			return tt, s1, s8, err
		}},
		{name: "3d", gen: func() (*TiledTensor, *TileSummary, *TileSummary, error) {
			m := gen.RandomTensor3(r, 40, 50, 60, 2000, [3]float64{0, 0.5, 0})
			tt, err := NewParallel(m, []int{8, 8, 8}, []int{2, 0, 1}, 4)
			if err != nil {
				return nil, nil, nil, err
			}
			s1, err := Summarize(m, []int{8, 8, 8}, []int{2, 0, 1}, 1)
			if err != nil {
				return nil, nil, nil, err
			}
			s8, err := Summarize(m, []int{8, 8, 8}, []int{2, 0, 1}, 8)
			return tt, s1, s8, err
		}},
	}
	for _, tc := range run {
		t.Run(tc.name, func(t *testing.T) {
			tt, s1, s8, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			for _, sum := range []*TileSummary{s1, s8} {
				if len(sum.Keys) != len(tt.Tiles) {
					t.Fatalf("summary has %d tiles, tiling has %d", len(sum.Keys), len(tt.Tiles))
				}
				if sum.TotalFootprint != tt.TotalFootprint {
					t.Fatalf("TotalFootprint %d != %d", sum.TotalFootprint, tt.TotalFootprint)
				}
				total := 0
				for i, k := range sum.Keys {
					if i > 0 && sum.Keys[i-1] >= k {
						t.Fatalf("keys not strictly ascending at %d", i)
					}
					tile := tt.Tiles[k]
					if tile == nil {
						t.Fatalf("summary key %#x missing from tiling", k)
					}
					if int(sum.NNZ[i]) != tile.NNZ() {
						t.Fatalf("tile %#x: summary nnz %d != %d", k, sum.NNZ[i], tile.NNZ())
					}
					if int(sum.Footprint[i]) != tile.Footprint {
						t.Fatalf("tile %#x: summary footprint %d != CSF footprint %d",
							k, sum.Footprint[i], tile.Footprint)
					}
					for l := range sum.Fibers {
						if int(sum.Fibers[l][i]) != tile.CSF.FiberCount(l) {
							t.Fatalf("tile %#x: summary fibers[%d] %d != CSF fiber count %d",
								k, l, sum.Fibers[l][i], tile.CSF.FiberCount(l))
						}
					}
					total += int(sum.Footprint[i])
				}
				if total != sum.TotalFootprint {
					t.Fatalf("footprints sum to %d, TotalFootprint says %d", total, sum.TotalFootprint)
				}
			}
		})
	}
}

// TestTilingNewAllocs is the allocation regression gate for the radix
// group-by tiler: scratch reuse keeps the per-call allocation count
// bounded by tiles and passes, not entries. The ceiling is ~2x the
// measured steady state so legitimate churn does not flake, while a
// return to per-entry or per-comparison allocation blows through it.
func TestTilingNewAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	r := rand.New(rand.NewSource(1))
	m := gen.PowerLawGraph(r, 2048, 200_000, 1.7)
	for _, tc := range []struct {
		workers int
		ceiling float64
	}{{1, 16000}, {8, 16500}} {
		t.Run(fmt.Sprintf("workers=%d", tc.workers), func(t *testing.T) {
			avg := testing.AllocsPerRun(2, func() {
				tt, err := NewParallel(m, []int{64, 64}, []int{0, 1}, tc.workers)
				if err != nil || tt.NumTiles() == 0 {
					t.Fatalf("tiling failed: %v", err)
				}
			})
			t.Logf("allocs/op: %.0f", avg)
			if avg > tc.ceiling {
				t.Errorf("NewParallel allocates %.0f times per call, ceiling %.0f", avg, tc.ceiling)
			}
		})
	}
}
