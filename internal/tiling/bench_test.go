package tiling

import (
	"fmt"
	"math/rand"
	"testing"

	"d2t2/internal/gen"
)

// BenchmarkTilingNew measures the radix group-by tiler on a power-law
// matrix at several worker counts (the old path was a global comparison
// sort; Workers=1 exercises the serial group-by).
func BenchmarkTilingNew(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	m := gen.PowerLawGraph(r, 2048, 200_000, 1.7)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tt, err := NewParallel(m, []int{64, 64}, []int{0, 1}, workers)
				if err != nil {
					b.Fatal(err)
				}
				if tt.NumTiles() == 0 {
					b.Fatal("no tiles")
				}
			}
		})
	}
}
