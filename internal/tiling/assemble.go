package tiling

import "fmt"

// FromTiles reassembles a TiledTensor from its decoded parts — the
// decode hook the snapshot codec uses. Every derived field (outer grid,
// footprint aggregates, nnz, the outer CSF) is recomputed from the tiles
// rather than trusted from the input, and the result is validated, so a
// reassembled tensor upholds the same invariants as a freshly tiled one.
// Packed super-tiles (PackTiles) are not supported.
func FromTiles(dims, tileDims, order []int, tiles []*Tile) (*TiledTensor, error) {
	n := len(dims)
	if len(tileDims) != n || len(order) != n {
		return nil, fmt.Errorf("tiling: arity mismatch: %d dims, %d tile dims, %d order", n, len(tileDims), len(order))
	}
	seen := make([]bool, n)
	for _, a := range order {
		if a < 0 || a >= n || seen[a] {
			return nil, fmt.Errorf("tiling: order %v is not a permutation of 0..%d", order, n-1)
		}
		seen[a] = true
	}
	tt := &TiledTensor{
		Dims:      append([]int(nil), dims...),
		TileDims:  append([]int(nil), tileDims...),
		OuterDims: make([]int, n),
		Order:     append([]int(nil), order...),
		Tiles:     make(map[uint64]*Tile, len(tiles)),
	}
	for a := 0; a < n; a++ {
		if dims[a] < 1 || tileDims[a] < 1 {
			return nil, fmt.Errorf("tiling: dimension %d / tile dimension %d on axis %d", dims[a], tileDims[a], a)
		}
		tt.OuterDims[a] = (dims[a] + tileDims[a] - 1) / tileDims[a]
		if tt.OuterDims[a] > 1<<keyShift {
			return nil, fmt.Errorf("tiling: axis %d produces too many tiles", a)
		}
	}
	for _, tile := range tiles {
		if tile == nil || tile.Members != nil || tile.CSF == nil {
			return nil, fmt.Errorf("tiling: FromTiles requires plain tiles with inner CSFs")
		}
		if len(tile.Outer) != n {
			return nil, fmt.Errorf("tiling: tile outer arity %d != %d", len(tile.Outer), n)
		}
		k := Key(tile.Outer)
		if _, dup := tt.Tiles[k]; dup {
			return nil, fmt.Errorf("tiling: duplicate tile at %v", tile.Outer)
		}
		tile.Footprint = tile.CSF.FootprintWords()
		tt.Tiles[k] = tile
		tt.TotalFootprint += tile.Footprint
		if tile.Footprint > tt.MaxFootprint {
			tt.MaxFootprint = tile.Footprint
		}
		tt.NNZ += tile.NNZ()
	}
	tt.buildOuterCSF()
	if err := tt.Validate(); err != nil {
		return nil, err
	}
	return tt, nil
}
