package tiling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"d2t2/internal/gen"
	"d2t2/internal/tensor"
)

// fig3Matrix is an 8x8 matrix shaped like the paper's Figure 3 example:
// data concentrated so that a 2x2 conservative tiling leaves many tiles
// empty but a tall-skinny tiling skips a whole outer column.
func fig3Matrix() *tensor.COO {
	m := tensor.New(8, 8)
	for _, e := range [][2]int{{0, 0}, {1, 1}, {2, 0}, {3, 1}, {4, 6}, {5, 7}, {6, 6}, {7, 7}} {
		m.Append([]int{e[0], e[1]}, 1)
	}
	return m
}

func TestKeyRoundTrip(t *testing.T) {
	cases := [][]int{{0}, {1, 2}, {5, 0, 7}, {1000, 2000, 3000}}
	for _, c := range cases {
		got := Unkey(Key(c), len(c))
		for a := range c {
			if got[a] != c[a] {
				t.Fatalf("Unkey(Key(%v)) = %v", c, got)
			}
		}
	}
}

func TestTileBasic(t *testing.T) {
	m := fig3Matrix()
	tt, err := New(m, []int{2, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tt.OuterDims[0] != 4 || tt.OuterDims[1] != 4 {
		t.Fatalf("outer dims = %v", tt.OuterDims)
	}
	// Entries live in tiles (0,0),(1,0),(2,3),(3,3).
	if tt.NumTiles() != 4 {
		t.Fatalf("num tiles = %d, want 4", tt.NumTiles())
	}
	for _, oc := range [][]int{{0, 0}, {1, 0}, {2, 3}, {3, 3}} {
		tile := tt.Lookup(oc...)
		if tile == nil {
			t.Fatalf("missing tile %v", oc)
		}
		if tile.NNZ() != 2 {
			t.Fatalf("tile %v nnz = %d, want 2", oc, tile.NNZ())
		}
	}
	if tt.Lookup(0, 3) != nil {
		t.Fatal("empty tile present")
	}
}

func TestTileRoundTrip(t *testing.T) {
	m := fig3Matrix()
	tt, err := New(m, []int{3, 5}, nil) // non-divisible tile dims
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(m, tt.ToCOO()) {
		t.Fatal("tile round trip lost data")
	}
}

func TestTileFootprints(t *testing.T) {
	m := fig3Matrix()
	tt, _ := New(m, []int{2, 2}, nil)
	total, max := 0, 0
	for _, tile := range tt.Tiles {
		if tile.Footprint != tile.CSF.FootprintWords() {
			t.Fatal("tile footprint inconsistent with CSF")
		}
		total += tile.Footprint
		if tile.Footprint > max {
			max = tile.Footprint
		}
	}
	if total != tt.TotalFootprint || max != tt.MaxFootprint {
		t.Fatalf("aggregate footprints wrong: %d/%d vs %d/%d",
			total, max, tt.TotalFootprint, tt.MaxFootprint)
	}
	if tt.MeanFootprint() != float64(total)/4 {
		t.Fatal("mean footprint wrong")
	}
}

func TestTileOrderPermuted(t *testing.T) {
	m := fig3Matrix()
	tt, err := New(m, []int{2, 2}, []int{1, 0}) // column-major levels
	if err != nil {
		t.Fatal(err)
	}
	// Outer CSF root level must be the column-tile axis: 2 distinct k'.
	if got := tt.OuterCSF.FiberCount(0); got != 2 {
		t.Fatalf("outer CSF root fibers = %d, want 2 (k' in {0,3})", got)
	}
	if !tensor.Equal(m, tt.ToCOO()) {
		t.Fatal("permuted tiling round trip lost data")
	}
}

func TestTileErrors(t *testing.T) {
	m := fig3Matrix()
	if _, err := New(m, []int{2}, nil); err == nil {
		t.Fatal("wrong tile-dim arity accepted")
	}
	if _, err := New(m, []int{0, 2}, nil); err == nil {
		t.Fatal("zero tile dim accepted")
	}
	if _, err := New(m, []int{2, 2}, []int{0}); err == nil {
		t.Fatal("wrong order arity accepted")
	}
}

func TestOuterCSFValuesAreFootprints(t *testing.T) {
	m := fig3Matrix()
	tt, _ := New(m, []int{2, 2}, nil)
	sum := 0.0
	for _, v := range tt.OuterCSF.Vals {
		sum += v
	}
	if int(sum) != tt.TotalFootprint {
		t.Fatalf("outer CSF values sum %v != total footprint %d", sum, tt.TotalFootprint)
	}
}

func TestDenseFootprintWords(t *testing.T) {
	// 2x2 dense tile: vals 4, level0: crd 2 + seg 2(=1+1... prod=1: 1*2 crd, 2 seg),
	// level1: crd 4, seg 3. Total = 4 + (2+2) + (4+3) = 15.
	if got := DenseFootprintWords([]int{2, 2}); got != 15 {
		t.Fatalf("dense footprint = %d, want 15", got)
	}
	// Scaling: order-2 footprint dominated by 2*T^2.
	f := DenseFootprintWords([]int{128, 128})
	if f < 2*128*128 || f > 2*128*128+300 {
		t.Fatalf("128x128 dense footprint = %d", f)
	}
}

func TestConservativeSquare(t *testing.T) {
	// Buffer sized exactly for a 128x128 dense tile must yield 128.
	buf := DenseFootprintWords([]int{128, 128})
	if got := ConservativeSquare(buf, 2); got != 128 {
		t.Fatalf("conservative tile = %d, want 128", got)
	}
	if got := ConservativeSquare(buf-1, 2); got != 64 {
		t.Fatalf("conservative tile = %d, want 64", got)
	}
	// Order-3: T^3 values; a 16^3 buffer gives 16.
	buf3 := DenseFootprintWords([]int{16, 16, 16})
	if got := ConservativeSquare(buf3, 3); got != 16 {
		t.Fatalf("conservative 3-d tile = %d, want 16", got)
	}
}

func TestPackTiles(t *testing.T) {
	m := fig3Matrix()
	base, _ := New(m, []int{2, 2}, nil)
	packed, err := PackTiles(base, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if packed.TileDims[0] != 4 || packed.TileDims[1] != 2 {
		t.Fatalf("packed tile dims = %v", packed.TileDims)
	}
	// Tiles (0,0)+(1,0) merge; (2,3)+(3,3) merge.
	if packed.NumTiles() != 2 {
		t.Fatalf("packed tiles = %d, want 2", packed.NumTiles())
	}
	// Footprint = member footprints + 3 directory words per member.
	want := base.TotalFootprint + 4*3
	if packed.TotalFootprint != want {
		t.Fatalf("packed footprint = %d, want %d", packed.TotalFootprint, want)
	}
}

func TestPackTilesErrors(t *testing.T) {
	m := fig3Matrix()
	base, _ := New(m, []int{2, 2}, nil)
	if _, err := PackTiles(base, []int{2}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := PackTiles(base, []int{0, 1}); err == nil {
		t.Fatal("zero factor accepted")
	}
}

func TestQuickTileRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := gen.UniformRandom(r, 40+r.Intn(40), 40+r.Intn(40), 200)
		td := []int{1 + r.Intn(16), 1 + r.Intn(16)}
		orders := [][]int{{0, 1}, {1, 0}}
		tt, err := New(m, td, orders[r.Intn(2)])
		if err != nil {
			return false
		}
		nnz := 0
		for _, tile := range tt.Tiles {
			nnz += tile.NNZ()
		}
		return nnz == m.NNZ() && tensor.Equal(m, tt.ToCOO())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTile3DRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := gen.RandomTensor3(r, 20, 25, 30, 300, [3]float64{0, 0.5, 0})
		td := []int{1 + r.Intn(8), 1 + r.Intn(8), 1 + r.Intn(8)}
		tt, err := New(m, td, []int{2, 0, 1})
		if err != nil {
			return false
		}
		return tensor.Equal(m, tt.ToCOO())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPackPreservesNNZAndFootprintLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := gen.PowerLawGraph(r, 128, 600, 1.5)
		base, err := New(m, []int{8, 8}, nil)
		if err != nil {
			return false
		}
		packed, err := PackTiles(base, []int{1 + r.Intn(4), 1 + r.Intn(4)})
		if err != nil {
			return false
		}
		nnz := 0
		for _, tile := range packed.Tiles {
			_ = tile
		}
		_ = nnz
		// Packing can only add directory overhead.
		return packed.TotalFootprint >= base.TotalFootprint &&
			packed.NumTiles() <= base.NumTiles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateInvariants(t *testing.T) {
	m := fig3Matrix()
	tt, _ := New(m, []int{2, 2}, nil)
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Packed tensors validate too.
	packed, _ := PackTiles(tt, []int{2, 2})
	if err := packed.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corruptions are caught.
	tt.TotalFootprint++
	if err := tt.Validate(); err == nil {
		t.Fatal("footprint corruption accepted")
	}
	tt.TotalFootprint--
	tt.NNZ++
	if err := tt.Validate(); err == nil {
		t.Fatal("nnz corruption accepted")
	}
}
