package experiments

// Experiment names one reproducible artifact and its runner.
type Experiment struct {
	ID    string
	Paper string // what the paper reports
	Run   func(s *Suite) (*Table, error)
}

// All returns every experiment in paper order. Suite-independent
// experiments (the worked example, the full-size Opal table) adapt the
// suite where needed.
func All() []Experiment {
	return []Experiment{
		{"fig3c", "worked example traffic table", func(*Suite) (*Table, error) { return Fig3c() }},
		{"fig5", "model validation across RF", Fig5},
		{"fig6a", "speedup vs traffic linearity", Fig6a},
		{"fig6b", "D2T2 vs Tailors over Prescient", Fig6b},
		{"fig6c", "D2T2 vs DRT vs Conservative over Prescient", Fig6c},
		{"table4", "TTM and MTTKRP-3 improvements", Table4},
		{"table5", "Opal deployment speedups", func(*Suite) (*Table, error) { return Table5() }},
		{"fig7", "tiling-time overheads", Fig7},
		{"fig8", "tile shape vs sum of correlations", Fig8},
		{"fig9", "statistics ablation", Fig9},
		{"sec66", "optimality vs exhaustive search", Sec66},
		{"sec67", "packed tiles without retiling", Sec67},
		{"ext-refine", "cross-operand refinement ablation (extension)", ExtRefine},
		{"ext-reorder", "degree reordering preprocessing (extension)", ExtReorder},
		{"ext-overbook", "risk-aware overbooking traffic/risk sweep (extension)", ExtOverbook},
		{"coldpipe", "cold-pipeline serial vs parallel wall clock (extension)", ColdPipe},
	}
}

// ByID returns the experiment with the given id, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
