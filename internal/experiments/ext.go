package experiments

import (
	"fmt"

	"d2t2/internal/einsum"
	"d2t2/internal/optimizer"
)

// ExtRefine ablates this implementation's extension beyond the paper:
// the exact cross-operand input-traffic refinement (model/refine.go).
// Without it, the model is the paper's pure mean-field estimator, which
// underestimates correlated A×Aᵀ traffic (§5.3) and can mislead the
// shape choice. Rows report the measured traffic of the optimizer's
// choice without refinement relative to its choice with refinement
// (>1 means the refinement found a better configuration).
func ExtRefine(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIKJ()
	tbl := &Table{
		ID:      "ext-refine",
		Title:   "Extension ablation: exact cross-operand refinement (DESIGN.md §7)",
		Headers: []string{"Matrix", "NoRefineVsRefine"},
	}
	var ratios []float64
	for _, label := range s.MatrixLabels() {
		inputs, err := s.aat(label, e)
		if err != nil {
			return nil, err
		}
		run := func(disable bool) (float64, error) {
			res, err := optimizer.Optimize(e, inputs, optimizer.Options{
				BufferWords:       s.BufferWords(),
				DisableRefinement: disable,
			})
			if err != nil {
				return 0, err
			}
			m, err := measureConfig(s, e, inputs, res.Config, nil)
			if err != nil {
				return 0, err
			}
			return float64(m.Total()), nil
		}
		with, err := run(false)
		if err != nil {
			return nil, err
		}
		without, err := run(true)
		if err != nil {
			return nil, err
		}
		r := without / with
		ratios = append(ratios, r)
		tbl.Append(label, r)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"mean no-refine/refine traffic ratio %.2fx (1.0 = refinement changes nothing)", mean(ratios)))
	return tbl, nil
}
