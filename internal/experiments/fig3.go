package experiments

import (
	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/model"
	"d2t2/internal/tensor"
)

// Fig3c reproduces the worked example of Figure 3: a small Gustavson
// SpMSpM where reshaping tiles to match the data distribution (an empty
// k-column of tiles, rows that prefer tall tiles) reduces both traffic
// and tile iterations. Traffic is counted in nonzeros, as the figure
// does "for simplicity".
//
// The figure's exact matrices are not published; the matrices here are
// reconstructed to exhibit the same two effects the text describes —
// tile-iteration skipping at an empty outer column and fewer B re-fetches
// under a taller i-tile — so the table shape (D2T2 strictly below
// Conservative in total traffic and iterations) is what is reproduced.
func Fig3c() (*Table, error) {
	// 8×8 operands, buffer holding a 2×2 dense tile (Conservative = 2×2).
	a := tensor.New(8, 8)
	for _, e := range [][2]int{{0, 0}, {1, 1}, {2, 0}, {3, 1}, {4, 1}, {5, 0}, {6, 1}, {7, 0}} {
		a.Append([]int{e[0], e[1]}, 1)
	}
	b := tensor.New(8, 8)
	// B rows only in k-tile 0 (rows 0..1) — middle and upper k empty.
	for _, e := range [][2]int{{0, 0}, {0, 5}, {1, 2}, {1, 6}} {
		b.Append([]int{e[0], e[1]}, 1)
	}
	e := einsum.SpMSpMIKJ()
	inputs := map[string]*tensor.COO{"A": a, "B": b}

	tbl := &Table{
		ID:      "fig3c",
		Title:   "Worked example: elements accessed per tiling scheme (Fig. 3c)",
		Headers: []string{"Config", "Traffic A", "Traffic B", "Traffic C", "Total", "Tile iterations"},
	}

	run := func(name string, cfg model.Config) (int64, error) {
		res, err := measureConfig(nil, e, inputs, cfg, &exec.Options{ValuesOnly: true})
		if err != nil {
			return 0, err
		}
		tbl.Append(name, res.Input["A"], res.Input["B"], res.Output,
			res.Total(), res.TileIterations)
		return res.Total(), nil
	}

	cons, err := run("Conservative 2x2", model.Config{"i": 2, "k": 2, "j": 2})
	if err != nil {
		return nil, err
	}
	d2t2, err := run("D2T2 4x1", model.Config{"i": 4, "k": 1, "j": 4})
	if err != nil {
		return nil, err
	}
	if d2t2 < cons {
		tbl.Notes = append(tbl.Notes, "D2T2 reshaped tiles reduce total traffic, as in the paper's example")
	} else {
		tbl.Notes = append(tbl.Notes, "WARNING: reshaped tiles did not reduce traffic")
	}
	return tbl, nil
}
