package experiments

import (
	"fmt"
	"math"

	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/model"
	"d2t2/internal/stats"
	"d2t2/internal/tensor"
)

// Fig5 reproduces the model validation of §5.3 (Figures 5a–5d): for
// SpMSpM-ikj across reorder factors, compare predicted and measured
// traffic for three correlation regimes —
//
//	A×Aᵀ    fully correlated operands (the paper's outlier regime,
//	        where independence makes the model underestimate),
//	A×R     uncorrelated (R random; paper reports 2.9–9.7% mean error),
//	A×A'ᵀ   partially correlated (A' row-shifted).
//
// Rows report per-matrix, per-case mean and worst relative error over
// the RF sweep, and whether the predicted-best RF is measured-optimal
// within 40% (the relative-comparison property D2T2 relies on).
func Fig5(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIKJ()
	tbl := &Table{
		ID:    "fig5",
		Title: "Model validation: predicted vs measured traffic across RF (Fig. 5)",
		Headers: []string{"Matrix", "Case", "MeanErr%", "MaxErr%", "AnalyticErr%", "PredBestRF",
			"MeasBestRF", "RankOK"},
	}

	rfs := []int{1, 2, 4, 8}
	for _, label := range s.MatrixLabels() {
		a, err := s.Matrix(label)
		if err != nil {
			return nil, err
		}
		cases := []struct {
			name string
			b    *tensor.COO
		}{
			{"AxAt", a.Transpose()},
			{"AxR", randomLike(a, label)},
			{"AxA't", gen.ShiftRows(a, s.TileSide/2).Transpose()},
		}
		for _, c := range cases {
			inputs := map[string]*tensor.COO{"A": a, "B": c.b}
			pred, err := validationPredictor(e, inputs, s.TileSide)
			if err != nil {
				return nil, err
			}
			var errs, aerrs []float64
			var totals []struct{ p, m float64 }
			for _, rf := range rfs {
				cfg := pred.SnapConfig(model.Config{
					"i": s.TileSide * rf, "k": s.TileSide / rf, "j": s.TileSide * rf,
				})
				p, err := pred.Predict(cfg)
				if err != nil {
					return nil, err
				}
				// The paper-faithful mean-field prediction for comparison.
				pred.Mode = model.ModeAnalytic
				pa, err := pred.Predict(cfg)
				pred.Mode = model.ModeExact
				if err != nil {
					return nil, err
				}
				m, err := measureConfig(s, e, inputs, cfg, nil)
				if err != nil {
					return nil, err
				}
				rel := math.Abs(p.Total()-float64(m.Total())) / float64(m.Total()) * 100
				errs = append(errs, rel)
				aerrs = append(aerrs, math.Abs(pa.Total()-float64(m.Total()))/float64(m.Total())*100)
				totals = append(totals, struct{ p, m float64 }{p.Total(), float64(m.Total())})
			}
			maxErr := 0.0
			for _, v := range errs {
				if v > maxErr {
					maxErr = v
				}
			}
			bp, bm := 0, 0
			for i, t := range totals {
				if t.p < totals[bp].p {
					bp = i
				}
				if t.m < totals[bm].m {
					bm = i
				}
			}
			rankOK := totals[bp].m <= 1.4*totals[bm].m
			tbl.Append(label, c.name, mean(errs), maxErr, mean(aerrs),
				fmt.Sprintf("%d", rfs[bp]), fmt.Sprintf("%d", rfs[bm]), rankOK)
		}
	}
	tbl.Notes = append(tbl.Notes,
		"paper: AxR mean error 2.9-9.7% (worst <18%); AxAt shows systematic underestimates but preserved relative ordering")
	return tbl, nil
}

// validationPredictor collects stats and builds the traffic model for a
// two-operand kernel.
func validationPredictor(e *einsum.Expr, inputs map[string]*tensor.COO, tileSide int) (*model.Predictor, error) {
	st := make(map[string]*stats.Stats)
	for _, ref := range e.Inputs() {
		base := make([]int, len(ref.Indices))
		for a := range base {
			base[a] = tileSide
		}
		s, _, err := stats.Collect(inputs[ref.Name], base, e.LevelOrder(ref), nil)
		if err != nil {
			return nil, err
		}
		st[ref.Name] = s
	}
	return model.New(e, st)
}

// randomLike builds a random matrix with the same shape and nnz as m.
func randomLike(m *tensor.COO, label string) *tensor.COO {
	r := seededRand("fig5-" + label)
	return gen.UniformRandom(r, m.Dims[1], m.Dims[0], m.NNZ())
}
