package experiments

import (
	"fmt"
	"runtime"
	"time"

	"d2t2/internal/einsum"
	"d2t2/internal/optimizer"
)

// ColdPipe measures the wall-clock of the full cold pipeline —
// conservative tiling, statistics collection, shape sweep, size growth,
// final retiling — serially and at the suite's worker count, on the same
// code path the d2t2d service runs for a cold ingest. The configurations
// chosen at both worker counts must agree exactly (the pipeline's
// determinism gate); the table reports the speedup.
func ColdPipe(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIKJ()
	workers := s.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tbl := &Table{
		ID:    "coldpipe",
		Title: "Cold-pipeline wall clock: serial vs parallel (extension)",
		Headers: []string{"Matrix", "Serial(ms)", fmt.Sprintf("W=%d(ms)", workers),
			"Speedup", "Retile1(ms)", fmt.Sprintf("RetileW=%d(ms)", workers)},
	}
	var speedups []float64
	for _, label := range s.MatrixLabels() {
		inputs, err := s.aat(label, e)
		if err != nil {
			return nil, err
		}
		buffer := s.BufferWords()

		run := func(w int) (*optimizer.Result, time.Duration, time.Duration, error) {
			t0 := time.Now()
			res, err := optimizer.Optimize(e, inputs, optimizer.Options{BufferWords: buffer, Workers: w})
			if err != nil {
				return nil, 0, 0, err
			}
			optDur := time.Since(t0)
			t1 := time.Now()
			if _, err := optimizer.TileAllWorkers(e, inputs, res.Config, w); err != nil {
				return nil, 0, 0, err
			}
			return res, optDur, time.Since(t1), nil
		}
		res1, serialOpt, serialTile, err := run(1)
		if err != nil {
			return nil, err
		}
		resW, parOpt, parTile, err := run(workers)
		if err != nil {
			return nil, err
		}
		for ix, v := range res1.Config {
			if resW.Config[ix] != v {
				return nil, fmt.Errorf("coldpipe: %s: config diverges between worker counts (%v vs %v)",
					label, res1.Config, resW.Config)
			}
		}
		sp := 1.0
		if parOpt > 0 {
			sp = float64(serialOpt) / float64(parOpt)
		}
		speedups = append(speedups, sp)
		tbl.Append(label, serialOpt.Milliseconds(), parOpt.Milliseconds(), sp,
			serialTile.Milliseconds(), parTile.Milliseconds())
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"mean cold-pipeline speedup %.2fx at %d workers on %d cores",
		mean(speedups), workers, runtime.GOMAXPROCS(0)))
	return tbl, nil
}
