package experiments

import (
	"fmt"

	"d2t2/internal/accel"
	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/optimizer"
	"d2t2/internal/schemes"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// Table4 reproduces the higher-order kernel results (paper Table 4):
// TTM and MTTKRP-3 on the FROSTT/Facebook tensor stand-ins against
// random matrices (1% dense; 0.1% for the large tensor W), reporting
// D2T2's traffic improvement over the Conservative square scheme,
// measured with the TACO backend.
func Table4(s *Suite) (*Table, error) {
	tbl := &Table{
		ID:      "table4",
		Title:   "Traffic improvement over Conservative for TTM and MTTKRP-3 (Table 4)",
		Headers: []string{"Label", "Tensor", "TTM", "MTTKRP-3"},
	}
	for _, d := range gen.Tensors() {
		t3 := d.Build(s.Scale)
		density := 0.01
		if d.Label == "W" {
			density = 0.001
		}
		ttm, err := higherOrderImprovement(einsum.TTM(), t3, density, s, "ttm-"+d.Label)
		if err != nil {
			return nil, err
		}
		mttkrp, err := higherOrderImprovement(einsum.MTTKRP3(), t3, density, s, "mttkrp-"+d.Label)
		if err != nil {
			return nil, err
		}
		tbl.Append(d.Label, d.Name, ttm, mttkrp)
	}
	tbl.Notes = append(tbl.Notes,
		"paper: TTM 1.22-24.34x (avg 4.09x... largest for Facebook/Nips3), MTTKRP 1.05-34.31x (avg 5.56x)")
	return tbl, nil
}

// higherOrderInputs binds the kernel's order-3 operand to t3 and
// generates random matrix operands with dimensions compatible with the
// kernel's index variables (Table 3: random matrices sized from the
// tensor dimensions, at the given density).
func higherOrderInputs(e *einsum.Expr, t3 *tensor.COO, density float64, tag string) map[string]*tensor.COO {
	r := seededRand(tag)
	inputs := map[string]*tensor.COO{}
	dims := map[string]int{}
	for _, ref := range e.Inputs() {
		if len(ref.Indices) == 3 {
			inputs[ref.Name] = t3
			for a, ix := range ref.Indices {
				dims[ix] = t3.Dims[a]
			}
		}
	}
	maxDim := 0
	for _, d := range t3.Dims {
		if d > maxDim {
			maxDim = d
		}
	}
	for _, ref := range e.Inputs() {
		if len(ref.Indices) != 3 {
			d := make([]int, len(ref.Indices))
			for a, ix := range ref.Indices {
				if v, ok := dims[ix]; ok {
					d[a] = v
				} else {
					// Free matrix dimension (e.g. TTM's k): max(T1,T2).
					d[a] = maxDim
					dims[ix] = d[a]
				}
			}
			nnz := int(density * float64(d[0]) * float64(d[1]))
			if nnz < 16 {
				nnz = 16
			}
			inputs[ref.Name] = gen.UniformRandom(r, d[0], d[1], nnz)
		}
	}
	return inputs
}

// higherOrderImprovement runs one tensor kernel with D2T2 and
// Conservative tiling and returns the traffic ratio.
func higherOrderImprovement(e *einsum.Expr, t3 *tensor.COO, density float64, s *Suite, tag string) (float64, error) {
	inputs := higherOrderInputs(e, t3, density, tag)

	// Buffer: a dense order-3 conservative tile of the suite's 3-d side.
	side := s.TileSide / 4
	if side < 4 {
		side = 4
	}
	buffer := tiling.DenseFootprintWords([]int{side, side, side})

	consCfg := schemes.Conservative(e, buffer)
	cons, err := measureConfig(s, e, inputs, consCfg, nil)
	if err != nil {
		return 0, err
	}
	opt, err := optimizer.Optimize(e, inputs, optimizer.Options{BufferWords: buffer})
	if err != nil {
		return 0, err
	}
	d2, err := measureConfig(s, e, inputs, opt.Config, nil)
	if err != nil {
		return 0, err
	}
	return accel.TrafficImprovement(&cons.Traffic, &d2.Traffic), nil
}

// Table5 reproduces the Opal deployment experiment (paper Table 5):
// SpMSpM-ikj on eight small SuiteSparse matrices at full size, with
// Opal's 2 KB memory tiles (32×32 conservative tiles), comparing
// D2T2-generated configurations against the Prescient tiling that was
// Opal's previous hand-tuned optimum. Speedups use the Opal machine
// model.
func Table5() (*Table, error) {
	e := einsum.SpMSpMIKJ()
	arch := accel.Opal()
	buffer := arch.InputBufferWords
	tbl := &Table{
		ID:      "table5",
		Title:   "D2T2 speedup over Prescient on Opal, SpMSpM-ikj (Table 5)",
		Headers: []string{"Matrix", "Dimension", "Nonzeros", "Speedup"},
	}
	var sps []float64
	for _, d := range gen.Table5Matrices() {
		a := d.Build(1)
		inputs := map[string]*tensor.COO{"A": a, "B": a.Transpose()}
		presCfg, err := schemes.Prescient(e, inputs, buffer)
		if err != nil {
			return nil, err
		}
		pres, err := measureConfig(nil, e, inputs, presCfg, nil)
		if err != nil {
			return nil, err
		}
		opt, err := optimizer.Optimize(e, inputs, optimizer.Options{BufferWords: buffer})
		if err != nil {
			return nil, err
		}
		d2, err := measureConfig(nil, e, inputs, opt.Config, nil)
		if err != nil {
			return nil, err
		}
		sp := accel.Speedup(&pres.Traffic, &d2.Traffic, arch)
		sps = append(sps, sp)
		tbl.Append(d.Label, fmt.Sprintf("%dx%d", a.Dims[0], a.Dims[1]), a.NNZ(), sp)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"geomean %.2fx (paper: 1.23-3.34x, geomean ~2x)", geomean(sps)))
	return tbl, nil
}
