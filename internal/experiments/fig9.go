package experiments

import (
	"fmt"

	"d2t2/internal/einsum"
	"d2t2/internal/optimizer"
)

// Fig9 reproduces the ablation of §6.7/Figure 9: D2T2's tiling quality
// when sub-setting the collected statistics —
//
//	full        traffic prediction with correlations (the D2T2 default)
//	no-corrs    prediction without the Corrs output-reuse discount
//	corrs-only  tile shape picked by the ΣCorrs threshold alone
//
// Rows report measured traffic of each ablated scheme relative to full
// D2T2 (1.0 = identical; >1 means the simpler scheme moves more data).
// The paper finds simpler schemes are sometimes up to 10% better but
// drop to 69% of D2T2's efficiency in the worst case.
func Fig9(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIKJ()
	tbl := &Table{
		ID:      "fig9",
		Title:   "Ablation: traffic relative to prediction-with-correlations (Fig. 9)",
		Headers: []string{"Matrix", "NoCorrs", "CorrsOnly"},
	}
	var worstNo, worstCo float64 = 1, 1
	var bestNo, bestCo float64 = 1, 1
	for _, label := range s.MatrixLabels() {
		inputs, err := s.aat(label, e)
		if err != nil {
			return nil, err
		}
		run := func(o optimizer.Options) (float64, error) {
			o.BufferWords = s.BufferWords()
			res, err := optimizer.Optimize(e, inputs, o)
			if err != nil {
				return 0, err
			}
			m, err := measureConfig(s, e, inputs, res.Config, nil)
			if err != nil {
				return 0, err
			}
			return float64(m.Total()), nil
		}
		full, err := run(optimizer.Options{})
		if err != nil {
			return nil, err
		}
		noCorr, err := run(optimizer.Options{DisableCorrs: true})
		if err != nil {
			return nil, err
		}
		corrOnly, err := run(optimizer.Options{CorrsOnly: true})
		if err != nil {
			return nil, err
		}
		rn, rc := noCorr/full, corrOnly/full
		if rn > worstNo {
			worstNo = rn
		}
		if rc > worstCo {
			worstCo = rc
		}
		if rn < bestNo {
			bestNo = rn
		}
		if rc < bestCo {
			bestCo = rc
		}
		tbl.Append(label, rn, rc)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"no-corrs best/worst %.2f/%.2f, corrs-only best/worst %.2f/%.2f (paper: simpler schemes up to 10%% better, worst 1/0.69=1.45x worse)",
		bestNo, worstNo, bestCo, worstCo))
	return tbl, nil
}
