package experiments

import (
	"fmt"

	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/gen"
	"d2t2/internal/optimizer"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// OverbookTargets are the overflow-probability sweep points ExtOverbook
// reports and CI records in BENCH_overbook.json. 0 is the conservative
// baseline every other point is compared against.
var OverbookTargets = []float64{0, 0.01, 0.05, 0.1}

// OverbookPoint is one (kernel, target) measurement of the sweep. All
// points of one kernel are measured under the same buffer model
// (InputBufferWords = the optimization budget, OverflowExtra = 1), so
// overflow re-streaming is priced into TrafficMB.
type OverbookPoint struct {
	Kernel     string  `json:"kernel"`
	Target     float64 `json:"target"`
	TileFactor int     `json:"tileFactor"`
	TrafficMB  float64 `json:"trafficMB"`
	// OverflowRate is the measured OverflowFetches / InputFetches;
	// PredictedRate the model's estimate (0 at the conservative point).
	OverflowRate  float64 `json:"overflowRate"`
	PredictedRate float64 `json:"predictedRate"`
	// Utilization is the measured mean words per input-tile fetch over
	// the buffer capacity — the quantity overbooking exists to raise.
	Utilization float64 `json:"utilization"`
}

// overbookCase is one paper kernel bound to suite-scaled inputs.
type overbookCase struct {
	name   string
	e      *einsum.Expr
	inputs map[string]*tensor.COO
	buffer int
}

// overbookCases builds the four paper kernels of the sweep: SpMSpM-ikj
// and SDDMM on the suite's first matrix label, TTM and MTTKRP-3 on the
// first order-3 tensor stand-in with Table 3's random matrix operands.
func overbookCases(s *Suite) ([]overbookCase, error) {
	label := s.MatrixLabels()[0]
	spmspm := einsum.SpMSpMIKJ()
	spmspmIn, err := s.aat(label, spmspm)
	if err != nil {
		return nil, err
	}

	sddmm := einsum.SDDMM()
	m, err := s.Matrix(label)
	if err != nil {
		return nil, err
	}
	maskNNZ := m.Dims[0] * m.Dims[0] / 100
	if maskNNZ < 16 {
		maskNNZ = 16
	}
	sddmmIn := map[string]*tensor.COO{
		"S": gen.UniformRandom(seededRand("overbook-sddmm-"+label), m.Dims[0], m.Dims[0], maskNNZ),
		"A": m,
		"B": m.Transpose(),
	}

	t3 := gen.Tensors()[0].Build(s.Scale)
	side := s.TileSide / 4
	if side < 4 {
		side = 4
	}
	buffer3 := tiling.DenseFootprintWords([]int{side, side, side})

	return []overbookCase{
		{"SpMSpM-ikj", spmspm, spmspmIn, s.BufferWords()},
		{"TTM", einsum.TTM(), higherOrderInputs(einsum.TTM(), t3, 0.01, "overbook-ttm"), buffer3},
		{"MTTKRP-3", einsum.MTTKRP3(), higherOrderInputs(einsum.MTTKRP3(), t3, 0.01, "overbook-mttkrp"), buffer3},
		{"SDDMM", sddmm, sddmmIn, s.BufferWords()},
	}, nil
}

// OverbookSweep runs the risk/traffic sweep: each kernel optimized at
// every OverbookTargets point and executed under the buffer model it was
// costed with. cmd/expbench's bench artifact and the ext-overbook table
// both consume these points.
func OverbookSweep(s *Suite) ([]OverbookPoint, error) {
	cases, err := overbookCases(s)
	if err != nil {
		return nil, err
	}
	var out []OverbookPoint
	for _, c := range cases {
		for _, target := range OverbookTargets {
			res, err := optimizer.Optimize(c.e, c.inputs, optimizer.Options{
				BufferWords:    c.buffer,
				OverflowTarget: target,
			})
			if err != nil {
				return nil, err
			}
			m, err := measureConfig(s, c.e, c.inputs, res.Config, &exec.Options{
				InputBufferWords: c.buffer,
				OverflowExtra:    1,
			})
			if err != nil {
				return nil, err
			}
			pt := OverbookPoint{
				Kernel:     c.name,
				Target:     target,
				TileFactor: res.TileFactor,
				TrafficMB:  mb(m.Total()),
			}
			if m.InputFetches > 0 {
				pt.OverflowRate = float64(m.OverflowFetches) / float64(m.InputFetches)
				pt.Utilization = float64(m.InputTotal()) / float64(m.InputFetches) / float64(c.buffer)
			}
			if res.Risk != nil {
				pt.PredictedRate = res.Risk.PredictedOverflowRate
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// ExtOverbook reports the risk-aware overbooking extension (DESIGN.md
// §18): traffic, measured overflow rate and buffer utilization across
// the OverflowTarget sweep on the four paper kernels. Rows with target 0
// are the conservative baseline.
func ExtOverbook(s *Suite) (*Table, error) {
	pts, err := OverbookSweep(s)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:      "ext-overbook",
		Title:   "Risk-aware overbooking: traffic vs overflow target (DESIGN.md §18)",
		Headers: []string{"Kernel", "Target", "TileFactor", "TrafficMB", "OverflowRate", "PredictedRate", "Utilization"},
	}
	for _, p := range pts {
		tbl.Append(p.Kernel, fmt.Sprintf("%g", p.Target), p.TileFactor,
			p.TrafficMB, fmt.Sprintf("%.4f", p.OverflowRate),
			fmt.Sprintf("%.4f", p.PredictedRate), fmt.Sprintf("%.3f", p.Utilization))
	}
	tbl.Notes = append(tbl.Notes,
		"all points of one kernel measured under the same buffer model (OverflowExtra=1), so overflow re-streaming is priced into TrafficMB")
	return tbl, nil
}
