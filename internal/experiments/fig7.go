package experiments

import (
	"fmt"
	"time"

	"d2t2/internal/einsum"
	"d2t2/internal/model"
	"d2t2/internal/stats"
	"d2t2/internal/tiling"
)

// Fig7 reproduces the overhead analysis (Figure 7): relative to the time
// of the initial (conservative) tiling of the two SpMSpM operands, how
// much extra time statistics collection and tile-scheme optimization add.
// The paper reports averages of 9.3% (collection) and 7.9%
// (optimization).
func Fig7(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIKJ()
	tbl := &Table{
		ID:      "fig7",
		Title:   "D2T2 overheads relative to initial tiling time (Fig. 7)",
		Headers: []string{"Matrix", "Tiling(ms)", "Stats(ms)", "Optimize(ms)", "Stats%", "Optimize%"},
	}
	var statsPct, optPct []float64
	for _, label := range s.MatrixLabels() {
		inputs, err := s.aat(label, e)
		if err != nil {
			return nil, err
		}
		base := []int{s.TileSide, s.TileSide}

		// Initial tiling of both operands.
		t0 := time.Now()
		ttA, err := tiling.New(inputs["A"], base, []int{0, 1})
		if err != nil {
			return nil, err
		}
		ttB, err := tiling.New(inputs["B"], base, []int{0, 1})
		if err != nil {
			return nil, err
		}
		tileDur := time.Since(t0)

		// Statistics collection over the existing tilings. MicroDiv 1
		// keeps this at the paper's CSF-traversal cost (the micro-tile
		// refinement is an implementation extension whose cost is a second
		// tiling pass), and Corrs sampling follows the paper's 1%-of-tiles
		// rate so its fixed cost amortizes the way the original does.
		sample := inputs["A"].Dims[0] / 1000
		if sample < 8 {
			sample = 8
		}
		collectOpts := &stats.Options{MicroDiv: 1, CorrSampleTarget: sample, CorrMaxShift: s.TileSide, SkipExtensions: true}
		t1 := time.Now()
		stA, err := stats.CollectFromTiled(inputs["A"], ttA, collectOpts)
		if err != nil {
			return nil, err
		}
		stB, err := stats.CollectFromTiled(inputs["B"], ttB, collectOpts)
		if err != nil {
			return nil, err
		}
		statsDur := time.Since(t1)

		// Tile scheme optimization: the RF sweep plus size growth on the
		// already-collected statistics (the paper's near-constant-cost
		// Python step).
		t2 := time.Now()
		pred, err := model.New(e, map[string]*stats.Stats{"A": stA, "B": stB})
		if err != nil {
			return nil, err
		}
		pred.Mode = model.ModeAnalytic // the paper's optimizer is analytic
		best := model.Config(nil)
		bestTotal := 0.0
		for _, rf := range []int{1, 2, 4, 8} {
			cfg := model.Config{
				"i": s.TileSide * rf, "k": s.TileSide / rf, "j": s.TileSide * rf,
			}
			p, err := pred.Predict(cfg)
			if err != nil {
				return nil, err
			}
			if best == nil || p.Total() < bestTotal {
				best, bestTotal = cfg, p.Total()
			}
		}
		optDur := time.Since(t2)
		_ = best

		sp := 100 * float64(statsDur) / float64(tileDur)
		op := 100 * float64(optDur) / float64(tileDur)
		statsPct = append(statsPct, sp)
		optPct = append(optPct, op)
		tbl.Append(label, tileDur.Milliseconds(), statsDur.Milliseconds(),
			optDur.Milliseconds(), sp, op)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"averages: statistics %.1f%%, optimization %.1f%% (paper: 9.3%%, 7.9%%)",
		mean(statsPct), mean(optPct)))
	return tbl, nil
}
