package experiments

import (
	"reflect"
	"testing"
)

// TestDeterministicAcrossWorkers is the regression gate for the exact
// counter merge in internal/exec: the same experiment run with one
// worker and with four workers must produce byte-identical table rows
// and notes. Any approximate merge, map-order dependence, or unseeded
// randomness in the measurement path shows up here as a diff.
func TestDeterministicAcrossWorkers(t *testing.T) {
	experiments := []struct {
		name string
		run  func(*Suite) (*Table, error)
		// rowsExact demands byte-identical rows and notes. Fig7 reports
		// wall-clock milliseconds, so only its structure (labels, row
		// count) can be compared across runs.
		rowsExact bool
	}{
		{"fig6a", Fig6a, true},
		{"fig6c", Fig6c, true},
		{"fig7", Fig7, false},
	}
	for _, exp := range experiments {
		t.Run(exp.name, func(t *testing.T) {
			var tables []*Table
			for _, workers := range []int{1, 4} {
				s := &Suite{Scale: 96, TileSide: 32, Labels: []string{"A", "I"}, Workers: workers}
				tbl, err := exp.run(s)
				if err != nil {
					t.Fatalf("%s with Workers=%d: %v", exp.name, workers, err)
				}
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s with Workers=%d produced no rows", exp.name, workers)
				}
				tables = append(tables, tbl)
			}
			if !exp.rowsExact {
				if !reflect.DeepEqual(labelColumn(tables[0]), labelColumn(tables[1])) {
					t.Errorf("row labels differ between Workers=1 and Workers=4:\n1: %v\n4: %v",
						labelColumn(tables[0]), labelColumn(tables[1]))
				}
				return
			}
			if !reflect.DeepEqual(tables[0].Rows, tables[1].Rows) {
				t.Errorf("rows differ between Workers=1 and Workers=4:\n1: %v\n4: %v",
					tables[0].Rows, tables[1].Rows)
			}
			if !reflect.DeepEqual(tables[0].Notes, tables[1].Notes) {
				t.Errorf("notes differ between Workers=1 and Workers=4:\n1: %v\n4: %v",
					tables[0].Notes, tables[1].Notes)
			}
		})
	}
}

func labelColumn(tbl *Table) []string {
	out := make([]string, len(tbl.Rows))
	for i, row := range tbl.Rows {
		out[i] = row[0]
	}
	return out
}
