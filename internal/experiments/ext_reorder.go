package experiments

import (
	"fmt"
	"sort"

	"d2t2/internal/einsum"
	"d2t2/internal/optimizer"
	"d2t2/internal/tensor"
)

// ExtReorder evaluates a preprocessing extension: relabeling rows and
// columns by decreasing degree before tiling. Coordinate-space tiling is
// sensitive to where nonzeros sit; clustering hubs into low coordinates
// concentrates occupancy into fewer, denser tiles, which both the
// statistics and the final schedule exploit. Rows report D2T2's measured
// traffic with reordering relative to without (lower is better).
func ExtReorder(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIKJ()
	tbl := &Table{
		ID:      "ext-reorder",
		Title:   "Extension: degree reordering before tiling (DESIGN.md §8)",
		Headers: []string{"Matrix", "ReorderedVsOriginal"},
	}
	var ratios []float64
	for _, label := range s.MatrixLabels() {
		a, err := s.Matrix(label)
		if err != nil {
			return nil, err
		}
		base, err := d2t2Traffic(e, a, s)
		if err != nil {
			return nil, err
		}
		// Symmetric relabel: the same permutation on rows and columns
		// keeps A×Aᵀ equivalent up to a permutation of the output.
		perm := combinedDegreeOrder(a)
		re := a.Relabel(0, perm).Relabel(1, perm)
		after, err := d2t2Traffic(e, re, s)
		if err != nil {
			return nil, err
		}
		r := after / base
		ratios = append(ratios, r)
		tbl.Append(label, r)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"mean reordered/original traffic %.2fx (<1 means reordering helps; strongest on hub-heavy graphs)",
		mean(ratios)))
	return tbl, nil
}

// combinedDegreeOrder sorts coordinates by row+column occupancy.
func combinedDegreeOrder(a *tensor.COO) []int {
	n := a.Dims[0]
	counts := make([]int, n)
	for p := 0; p < a.NNZ(); p++ {
		counts[a.Crds[0][p]]++
		if a.Crds[1][p] < n {
			counts[a.Crds[1][p]]++
		}
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return counts[perm[a]] > counts[perm[b]] })
	return perm
}

// d2t2Traffic optimizes and measures the kernel for A×Aᵀ.
func d2t2Traffic(e *einsum.Expr, a *tensor.COO, s *Suite) (float64, error) {
	inputs := map[string]*tensor.COO{"A": a, "B": a.Transpose()}
	res, err := optimizer.Optimize(e, inputs, optimizer.Options{BufferWords: s.BufferWords()})
	if err != nil {
		return 0, err
	}
	m, err := measureConfig(s, e, inputs, res.Config, nil)
	if err != nil {
		return 0, err
	}
	return float64(m.Total()), nil
}
