package experiments

import (
	"math/rand"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/model"
	"d2t2/internal/tensor"
)

// TestMeasureConfigUsesEngine pins the experiment harness to the
// compiled measurement engine: every standard paper kernel the figures
// sweep must take the specialized fast path, not the generic walker.
// If a kernel silently falls back, the figure sweeps get slower by an
// order of magnitude — this catches that regression directly.
func TestMeasureConfigUsesEngine(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := gen.PowerLawGraph(r, 64, 600, 1.6)
	c3 := gen.RandomTensor3(r, 16, 12, 10, 300, [3]float64{0, 0, 0})
	cases := []struct {
		name   string
		expr   *einsum.Expr
		inputs map[string]*tensor.COO
		cfg    model.Config
	}{
		{
			name:   "SpMSpMIKJ",
			expr:   einsum.SpMSpMIKJ(),
			inputs: map[string]*tensor.COO{"A": a, "B": a.Transpose()},
			cfg:    model.Config{"i": 8, "k": 8, "j": 8},
		},
		{
			name: "TTM",
			expr: einsum.TTM(),
			inputs: map[string]*tensor.COO{
				"C": c3,
				"B": gen.UniformRandom(r, 8, 10, 40),
			},
			cfg: model.Config{"i": 4, "j": 4, "l": 4, "k": 4},
		},
		{
			name: "MTTKRP",
			expr: einsum.MTTKRP3(),
			inputs: map[string]*tensor.COO{
				"A": c3,
				"B": gen.UniformRandom(r, 9, 12, 40),
				"C": gen.UniformRandom(r, 9, 10, 36),
			},
			cfg: model.Config{"i": 4, "k": 4, "l": 4, "j": 4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := measureConfig(nil, tc.expr, tc.inputs, tc.cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Specialized {
				t.Fatal("measureConfig fell back to the generic walker")
			}
			if res.MACs == 0 {
				t.Fatal("no MACs counted")
			}
		})
	}
}
