package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quick returns the fast suite used throughout these tests.
func quick() *Suite { return QuickSuite() }

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestFig3c(t *testing.T) {
	tbl, err := Fig3c()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	consTotal := cell(t, tbl, 0, 4)
	d2t2Total := cell(t, tbl, 1, 4)
	if d2t2Total >= consTotal {
		t.Fatalf("D2T2 total %v not below conservative %v", d2t2Total, consTotal)
	}
	consIters := cell(t, tbl, 0, 5)
	d2t2Iters := cell(t, tbl, 1, 5)
	if d2t2Iters >= consIters {
		t.Fatalf("D2T2 iterations %v not below conservative %v", d2t2Iters, consIters)
	}
}

func TestFig5Quick(t *testing.T) {
	s := quick()
	s.Labels = []string{"A", "Q"}
	tbl, err := Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2*3 {
		t.Fatalf("rows = %d, want 6 (2 matrices x 3 cases)", len(tbl.Rows))
	}
	// The uncorrelated A×R case must have modest mean error (paper:
	// 2.9-9.7%; we allow 40% at quick scale).
	for _, row := range tbl.Rows {
		if row[1] == "AxR" {
			e, _ := strconv.ParseFloat(row[2], 64)
			if e > 40 {
				t.Fatalf("AxR mean error %v%% too high: %v", e, row)
			}
		}
	}
}

func TestFig6aQuick(t *testing.T) {
	s := quick()
	s.Labels = []string{"A", "I"}
	tbl, err := Fig6a(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Correlation note present.
	if len(tbl.Notes) == 0 || !strings.Contains(tbl.Notes[0], "Pearson") {
		t.Fatalf("missing correlation note: %v", tbl.Notes)
	}
}

func TestFig6bQuick(t *testing.T) {
	s := quick()
	s.Labels = []string{"A", "I"}
	tbl, err := Fig6b(s)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		d2 := cell(t, tbl, r, 1)
		tl := cell(t, tbl, r, 2)
		if d2 <= 0 || tl <= 0 {
			t.Fatalf("non-positive speedups: %v", tbl.Rows[r])
		}
	}
}

func TestFig6cQuick(t *testing.T) {
	s := quick()
	s.Labels = []string{"A", "I"}
	tbl, err := Fig6c(s)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		d2 := cell(t, tbl, r, 1)
		cons := cell(t, tbl, r, 3)
		if d2 <= 0 {
			t.Fatalf("bad D2T2 improvement: %v", tbl.Rows[r])
		}
		// Conservative is never better than Prescient (bigger fitting
		// square): improvement over Prescient <= ~1.
		if cons > 1.1 {
			t.Fatalf("conservative beats prescient: %v", tbl.Rows[r])
		}
	}
}

func TestTable4Quick(t *testing.T) {
	s := &Suite{Scale: 24, TileSide: 32}
	tbl, err := Table4(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 tensors", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		ttm := cell(t, tbl, r, 2)
		mt := cell(t, tbl, r, 3)
		if ttm <= 0 || mt <= 0 {
			t.Fatalf("non-positive improvement: %v", tbl.Rows[r])
		}
	}
}

func TestTable5(t *testing.T) {
	tbl, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 Opal matrices", len(tbl.Rows))
	}
	atLeastOne := false
	for r := range tbl.Rows {
		sp := cell(t, tbl, r, 3)
		if sp < 0.8 {
			t.Fatalf("D2T2 much slower than prescient on %v", tbl.Rows[r])
		}
		if sp > 1.2 {
			atLeastOne = true
		}
	}
	if !atLeastOne {
		t.Fatal("no Opal matrix sped up (paper: 1.23-3.34x)")
	}
}

func TestFig7Quick(t *testing.T) {
	s := quick()
	s.Labels = []string{"A", "E"}
	tbl, err := Fig7(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFig8Quick(t *testing.T) {
	s := quick()
	s.Labels = []string{"A", "Q"}
	tbl, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	// Grid (A) has high shift correlation; uniform p2p (Q) low.
	var sumA, sumQ float64
	for _, row := range tbl.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		switch row[0] {
		case "A":
			sumA = v
		case "Q":
			sumQ = v
		}
	}
	if sumA <= sumQ {
		t.Fatalf("grid corr sum %v not above uniform %v", sumA, sumQ)
	}
}

func TestFig9Quick(t *testing.T) {
	s := quick()
	s.Labels = []string{"A", "Q"}
	tbl, err := Fig9(s)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		if v := cell(t, tbl, r, 1); v <= 0 {
			t.Fatalf("bad ratio: %v", tbl.Rows[r])
		}
	}
}

func TestSec66Quick(t *testing.T) {
	s := quick()
	s.Labels = []string{"E"}
	tbl, err := Sec66(s)
	if err != nil {
		t.Fatal(err)
	}
	// TrafficShare is exhaustive/D2T2 traffic: exhaustive can only be
	// equal or better (<= 100% + rounding).
	if v := cell(t, tbl, 0, 3); v > 101 {
		t.Fatalf("exhaustive worse than D2T2: %v", tbl.Rows[0])
	}
}

func TestSec67Quick(t *testing.T) {
	s := quick()
	s.Labels = []string{"A", "Q"}
	tbl, err := Sec67(s)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		big := cell(t, tbl, r, 1)
		small := cell(t, tbl, r, 2)
		if big <= 0 || small <= 0 {
			t.Fatalf("bad packed ratios: %v", tbl.Rows[r])
		}
	}
}

func TestAllRegistry(t *testing.T) {
	exps := All()
	if len(exps) != 16 {
		t.Fatalf("registry has %d experiments, want 16", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("fig6b"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Headers: []string{"A", "B"}}
	tbl.Append("hello", 3.14159)
	tbl.Notes = append(tbl.Notes, "note text")
	out := tbl.Format()
	for _, want := range []string{"== x: t ==", "hello", "3.14", "note: note text"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestExtRefineQuick(t *testing.T) {
	s := quick()
	s.Labels = []string{"I"}
	tbl, err := ExtRefine(s)
	if err != nil {
		t.Fatal(err)
	}
	if v := cell(t, tbl, 0, 1); v <= 0 {
		t.Fatalf("bad ratio: %v", tbl.Rows[0])
	}
}

func TestSuiteHelpers(t *testing.T) {
	s := DefaultSuite()
	if s.BufferWords() <= 0 {
		t.Fatal("bad buffer")
	}
	if len(s.MatrixLabels()) != 19 {
		t.Fatalf("full suite has %d labels, want 19", len(s.MatrixLabels()))
	}
	m1, err := s.Matrix("K")
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := s.Matrix("K")
	if m1 != m2 {
		t.Fatal("matrix cache miss")
	}
	if _, err := s.Matrix("nope"); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestExtReorderQuick(t *testing.T) {
	s := quick()
	s.Labels = []string{"I"} // hub-heavy power-law: reordering should help
	tbl, err := ExtReorder(s)
	if err != nil {
		t.Fatal(err)
	}
	ratio := cell(t, tbl, 0, 1)
	if ratio <= 0 {
		t.Fatalf("bad ratio %v", ratio)
	}
	if ratio > 1.15 {
		t.Fatalf("degree reordering hurt a power-law matrix: %vx", ratio)
	}
}

func TestTableJSONAndMarkdown(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Headers: []string{"A", "B"}}
	tbl.Append("v", 1.5)
	tbl.Notes = append(tbl.Notes, "n")
	j := tbl.JSON()
	for _, want := range []string{`"id": "x"`, `"v"`, `"1.50"`, `"n"`} {
		if !strings.Contains(j, want) {
			t.Fatalf("json missing %q:\n%s", want, j)
		}
	}
	md := tbl.Markdown()
	for _, want := range []string{"### x: t", "| A | B |", "| v | 1.50 |", "*n*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
