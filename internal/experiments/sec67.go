package experiments

import (
	"fmt"

	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/optimizer"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// Sec67 reproduces the "performance benefits without retiling" study of
// §6.7: instead of retiling the raw data with D2T2's configuration, the
// original conservative tiles are *packed* into super-tiles whose
// dimensions are the D2T2 configuration normalized to multiples of the
// base tile. Each packed tile is indexed through a small directory, so
// it carries extra metadata and cannot reshape below the base
// granularity. Rows report packed-tiles traffic relative to fully
// retiled D2T2 for two base tile sizes; the paper finds a 31% average
// drop at 128×128 base tiles and only 11% at 32×32.
func Sec67(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIKJ()
	tbl := &Table{
		ID:      "sec67",
		Title:   "Packed tiles (no second tiling pass) vs retiled D2T2 (§6.7)",
		Headers: []string{"Matrix", "PackedVsD2T2(base)", "PackedVsD2T2(base/4)"},
	}
	var ratioBig, ratioSmall []float64
	for _, label := range s.MatrixLabels() {
		inputs, err := s.aat(label, e)
		if err != nil {
			return nil, err
		}
		big, err := packedRatio(s, e, inputs, s.BufferWords(), s.TileSide)
		if err != nil {
			return nil, err
		}
		small, err := packedRatio(s, e, inputs, s.BufferWords(), s.TileSide/4)
		if err != nil {
			return nil, err
		}
		ratioBig = append(ratioBig, big)
		ratioSmall = append(ratioSmall, small)
		tbl.Append(label, big, small)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"mean packed/retiled traffic: %.2fx at base, %.2fx at base/4 (paper: 31%% drop at 128, 11%% at 32)",
		mean(ratioBig), mean(ratioSmall)))
	return tbl, nil
}

// packedRatio optimizes with base tiles of the given side, then measures
// (a) fully retiled D2T2 and (b) packed original tiles at the D2T2
// configuration normalized to base multiples, returning traffic(b)/(a).
func packedRatio(s *Suite, e *einsum.Expr, inputs map[string]*tensor.COO, bufferWords, baseSide int) (float64, error) {
	opt, err := optimizer.Optimize(e, inputs, optimizer.Options{
		BufferWords: bufferWords,
		BaseTile:    baseSide,
	})
	if err != nil {
		return 0, err
	}
	retiledRes, err := measureConfig(s, e, inputs, opt.Config, nil)
	if err != nil {
		return 0, err
	}

	// Normalize the D2T2 configuration to multiples of the base tile and
	// pack the original tiles accordingly.
	packed := make(map[string]*tiling.TiledTensor)
	for _, ref := range e.Inputs() {
		base := opt.BaseTiling[ref.Name]
		factors := make([]int, len(ref.Indices))
		for a, ix := range ref.Indices {
			f := (opt.Config[ix] + baseSide/2) / baseSide
			if f < 1 {
				f = 1
			}
			factors[a] = f
		}
		p, err := tiling.PackTiles(base, factors)
		if err != nil {
			return 0, err
		}
		packed[ref.Name] = p
	}
	packedRes, err := exec.Measure(e, packed, nil)
	if err != nil {
		return 0, err
	}
	return float64(packedRes.Total()) / float64(retiledRes.Total()), nil
}
