package experiments

import (
	"fmt"

	"d2t2/internal/einsum"
	"d2t2/internal/optimizer"
	"d2t2/internal/tiling"
)

// Sec66 reproduces the optimality analysis of §6.6: D2T2 against an
// exhaustive-search static scheme that takes the low-traffic shapes from
// the RF sweep and resizes them presciently (binary search on the growth
// factor, executing every candidate and keeping the best measured
// traffic). Reported per matrix: buffer utilization of both schemes and
// D2T2's share of the exhaustive scheme's traffic improvement.
func Sec66(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIKJ()
	tbl := &Table{
		ID:      "sec66",
		Title:   "Optimality: D2T2 vs exhaustive-search static tiling (§6.6)",
		Headers: []string{"Matrix", "D2T2Util%", "ExhUtil%", "TrafficShare%"},
	}
	var utils, shares []float64
	for _, label := range s.MatrixLabels() {
		inputs, err := s.aat(label, e)
		if err != nil {
			return nil, err
		}
		buffer := s.BufferWords()
		opt, err := optimizer.Optimize(e, inputs, optimizer.Options{BufferWords: buffer})
		if err != nil {
			return nil, err
		}
		d2Tiled, err := optimizer.TileAll(e, inputs, opt.Config)
		if err != nil {
			return nil, err
		}
		d2, err := measureConfig(s, e, inputs, opt.Config, nil)
		if err != nil {
			return nil, err
		}
		d2Util := utilization(d2Tiled, buffer)

		// Exhaustive: every RF shape, presciently resized by doubling the
		// output indices while the real tiling fits; keep best measured.
		bestTraffic := float64(d2.Total())
		bestUtil := d2Util
		for _, cand := range opt.Candidates {
			cfg := cand.Config.Clone()
			for {
				grown := cfg.Clone()
				grown["i"] = 2 * grown["i"]
				grown["j"] = 2 * grown["j"]
				tiled, err := optimizer.TileAll(e, inputs, grown)
				if err != nil {
					return nil, err
				}
				if maxFootprint(tiled) > buffer {
					break
				}
				cfg = grown
				if cfg["i"] > inputs["A"].Dims[0] && cfg["j"] > inputs["B"].Dims[1] {
					break
				}
			}
			tiled, err := optimizer.TileAll(e, inputs, cfg)
			if err != nil {
				return nil, err
			}
			res, err := measureConfig(s, e, inputs, cfg, nil)
			if err != nil {
				return nil, err
			}
			if float64(res.Total()) < bestTraffic {
				bestTraffic = float64(res.Total())
				bestUtil = utilization(tiled, buffer)
			}
		}
		share := 100 * bestTraffic / float64(d2.Total())
		utilRatio := 100 * d2Util / maxf(bestUtil, 1e-9)
		utils = append(utils, utilRatio)
		shares = append(shares, share)
		tbl.Append(label, 100*d2Util, 100*bestUtil, share)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"D2T2 reaches %.0f%% of exhaustive buffer utilization and %.0f%% of its traffic improvement on average (paper: 52%%, 92.4%%)",
		mean(utils), mean(shares)))
	return tbl, nil
}

// utilization is the mean resident-tile occupancy of the buffer across
// the kernel's operands: average tile footprint over the buffer size.
func utilization(tiled map[string]*tiling.TiledTensor, buffer int) float64 {
	if len(tiled) == 0 || buffer == 0 {
		return 0
	}
	u := 0.0
	for _, tt := range tiled {
		u += tt.MeanFootprint() / float64(buffer)
	}
	return u / float64(len(tiled))
}

func maxFootprint(tiled map[string]*tiling.TiledTensor) int {
	m := 0
	for _, tt := range tiled {
		if tt.MaxFootprint > m {
			m = tt.MaxFootprint
		}
	}
	return m
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
