package experiments

import (
	"math"

	"d2t2/internal/einsum"
	"d2t2/internal/model"
	"d2t2/internal/stats"
)

// Fig8 reproduces the shape heuristic of Figure 8: per matrix, the sum
// of the Corrs statistic over one base tile of the contracted index,
// against the measured-best tile shape (outer-product-like vs square).
// The paper finds matrices with ΣCorrs < 1.6 favor outer-product tiling
// while the rest prefer square tiles for output reuse.
func Fig8(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIKJ()
	tbl := &Table{
		ID:      "fig8",
		Title:   "Desired tile shape vs sum of correlations (Fig. 8)",
		Headers: []string{"Matrix", "SumCorrs", "BestRF", "Shape", "HeuristicAgrees"},
	}
	agree := 0
	for _, label := range s.MatrixLabels() {
		inputs, err := s.aat(label, e)
		if err != nil {
			return nil, err
		}
		// Corrs of B along its contracted axis k (axis 0 of B(k,j)).
		base := []int{s.TileSide, s.TileSide}
		stB, _, err := stats.Collect(inputs["B"], base, []int{0, 1}, &stats.Options{MicroDiv: 1})
		if err != nil {
			return nil, err
		}
		sum := stB.CorrSum(0, s.TileSide)

		// Measured-best RF over the sweep.
		bestRF, bestTotal := 1, math.Inf(1)
		for _, rf := range []int{1, 2, 4, 8} {
			k := s.TileSide / rf
			cfg := model.Config{"i": s.TileSide * rf, "k": k, "j": s.TileSide * rf}
			res, err := measureConfig(s, e, inputs, cfg, nil)
			if err != nil {
				return nil, err
			}
			if float64(res.Total()) < bestTotal {
				bestRF, bestTotal = rf, float64(res.Total())
			}
		}
		shape := "square-ish"
		if bestRF >= 4 {
			shape = "outer-product"
		}
		heuristic := (sum < 1.6) == (bestRF >= 4)
		if heuristic {
			agree++
		}
		tbl.Append(label, sum, bestRF, shape, heuristic)
	}
	tbl.Notes = append(tbl.Notes,
		"paper: matrices with sum < 1.6 favor outer-product tiles; others prefer square")
	_ = agree
	return tbl, nil
}
