package experiments

import (
	"fmt"
	"math"

	"d2t2/internal/accel"
	"d2t2/internal/drt"
	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/optimizer"
	"d2t2/internal/schemes"
	"d2t2/internal/tiling"
)

// Fig6a reproduces the linearity check of Figure 6a: for SpMSpM-ijk with
// the Extensor-like machine, speedup over Prescient is plotted against
// traffic improvement over Prescient; the paper finds the relationship
// linear ("sparse tensor algebra computation is memory-bound"). The
// table reports both metrics per matrix and the Pearson correlation.
func Fig6a(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIJK()
	arch := s.Arch()
	tbl := &Table{
		ID:      "fig6a",
		Title:   "Speedup vs traffic improvement over Prescient, SpMSpM-ijk (Fig. 6a)",
		Headers: []string{"Matrix", "TrafficImp", "Speedup"},
	}
	var xs, ys []float64
	for _, label := range s.MatrixLabels() {
		inputs, err := s.aat(label, e)
		if err != nil {
			return nil, err
		}
		presCfg, err := schemes.Prescient(e, inputs, s.BufferWords())
		if err != nil {
			return nil, err
		}
		pres, err := measureConfig(s, e, inputs, presCfg, nil)
		if err != nil {
			return nil, err
		}
		opt, err := optimizer.Optimize(e, inputs, optimizer.Options{BufferWords: s.BufferWords()})
		if err != nil {
			return nil, err
		}
		d2, err := measureConfig(s, e, inputs, opt.Config, nil)
		if err != nil {
			return nil, err
		}
		ti := accel.TrafficImprovement(&pres.Traffic, &d2.Traffic)
		sp := accel.Speedup(&pres.Traffic, &d2.Traffic, arch)
		xs = append(xs, ti)
		ys = append(ys, sp)
		tbl.Append(label, ti, sp)
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("Pearson r = %.3f (paper: linear relationship)", pearson(xs, ys)))
	return tbl, nil
}

// Fig6b reproduces the Tailors comparison (Figure 6b): SpMSpM-ijk of
// A×Aᵀ, speedups over Prescient for D2T2 and Tailors (10%% overbooking,
// overflowed tiles pay streaming re-fetch traffic). Paper means: D2T2
// 4.85×, Tailors 1.90× → D2T2 2.54× over Tailors.
func Fig6b(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIJK()
	arch := s.Arch()
	tbl := &Table{
		ID:      "fig6b",
		Title:   "D2T2 and Tailors speedup over Prescient, SpMSpM-ijk (Fig. 6b)",
		Headers: []string{"Matrix", "D2T2", "Tailors", "D2T2/Tailors", "TailorsTile", "Overbook%"},
	}
	var d2s, tls []float64
	for _, label := range s.MatrixLabels() {
		inputs, err := s.aat(label, e)
		if err != nil {
			return nil, err
		}
		presCfg, err := schemes.Prescient(e, inputs, s.BufferWords())
		if err != nil {
			return nil, err
		}
		pres, err := measureConfig(s, e, inputs, presCfg, nil)
		if err != nil {
			return nil, err
		}

		opt, err := optimizer.Optimize(e, inputs, optimizer.Options{BufferWords: s.BufferWords()})
		if err != nil {
			return nil, err
		}
		d2, err := measureConfig(s, e, inputs, opt.Config, nil)
		if err != nil {
			return nil, err
		}

		tailCfg, info, err := schemes.Tailors(e, inputs, s.BufferWords(), 0.10)
		if err != nil {
			return nil, err
		}
		tail, err := measureConfig(s, e, inputs, tailCfg, &exec.Options{
			InputBufferWords: s.BufferWords(),
		})
		if err != nil {
			return nil, err
		}

		spD2 := accel.Speedup(&pres.Traffic, &d2.Traffic, arch)
		spTl := accel.Speedup(&pres.Traffic, &tail.Traffic, arch)
		d2s = append(d2s, spD2)
		tls = append(tls, spTl)
		tbl.Append(label, spD2, spTl, spD2/spTl, info.TileSize, 100*info.OverflowRate)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"means: D2T2 %.2fx, Tailors %.2fx, ratio %.2fx (paper: 4.85x, 1.90x, 2.54x)",
		mean(d2s), mean(tls), mean(d2s)/mean(tls)))
	return tbl, nil
}

// Fig6c reproduces the DRT comparison (Figure 6c): SpMSpM-ikj of A×Aᵀ,
// traffic improvement over Prescient for DRT (dynamic reflexive tiling
// simulator), D2T2 and Conservative. Paper means over Prescient: D2T2
// 1.83×, DRT 1.29× (D2T2/DRT = 1.13× on the DRT-completed subset),
// Conservative 1/2.28 (D2T2 is 4.17× over Conservative).
func Fig6c(s *Suite) (*Table, error) {
	e := einsum.SpMSpMIKJ()
	tbl := &Table{
		ID:      "fig6c",
		Title:   "Traffic improvement over Prescient, SpMSpM-ikj (Fig. 6c)",
		Headers: []string{"Matrix", "D2T2", "DRT", "Conservative"},
	}
	var d2s, drts, cons []float64
	for _, label := range s.MatrixLabels() {
		inputs, err := s.aat(label, e)
		if err != nil {
			return nil, err
		}
		presCfg, err := schemes.Prescient(e, inputs, s.BufferWords())
		if err != nil {
			return nil, err
		}
		pres, err := measureConfig(s, e, inputs, presCfg, nil)
		if err != nil {
			return nil, err
		}

		opt, err := optimizer.Optimize(e, inputs, optimizer.Options{BufferWords: s.BufferWords()})
		if err != nil {
			return nil, err
		}
		d2, err := measureConfig(s, e, inputs, opt.Config, nil)
		if err != nil {
			return nil, err
		}

		// DRT tiles data twice: a static pass at micro granularity (a
		// quarter of the conservative tile), then hardware aggregation of
		// micro tiles into dynamic tiles that fill the buffer.
		consCfg := schemes.Conservative(e, s.BufferWords())
		micro := consCfg["i"] / 4
		if micro < 1 {
			micro = 1
		}
		ttA, err := tiling.New(inputs["A"], []int{micro, micro}, []int{0, 1})
		if err != nil {
			return nil, err
		}
		ttB, err := tiling.New(inputs["B"], []int{micro, micro}, []int{0, 1})
		if err != nil {
			return nil, err
		}
		drtTr, err := drt.Simulate(ttA, ttB, drt.Options{BufferWords: s.BufferWords()})
		if err != nil {
			return nil, err
		}

		consRes, err := measureConfig(s, e, inputs, consCfg, nil)
		if err != nil {
			return nil, err
		}

		impD2 := accel.TrafficImprovement(&pres.Traffic, &d2.Traffic)
		impDRT := accel.TrafficImprovement(&pres.Traffic, drtTr)
		impCons := accel.TrafficImprovement(&pres.Traffic, &consRes.Traffic)
		d2s = append(d2s, impD2)
		drts = append(drts, impDRT)
		cons = append(cons, impCons)
		tbl.Append(label, impD2, impDRT, impCons)
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"means over Prescient: D2T2 %.2fx, DRT %.2fx, Conservative %.2fx; D2T2/DRT %.2fx (paper: 1.83x, 1.29x, ~0.44x, 1.13x)",
		mean(d2s), mean(drts), mean(cons), mean(d2s)/mean(drts)))
	return tbl, nil
}

// pearson computes the correlation coefficient of two series.
func pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := mean(xs), mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx <= 0 || syy <= 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
