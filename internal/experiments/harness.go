// Package experiments reproduces every table and figure of the paper's
// evaluation (§5.3, §6) on the synthetic dataset suite. Each experiment
// is a function from a Suite (scale and buffer settings) to a Table of
// the same rows the paper reports; cmd/expbench prints them all and
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"d2t2/internal/accel"
	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/gen"
	"d2t2/internal/model"
	"d2t2/internal/optimizer"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// Table is one reproduced artifact.
type Table struct {
	ID      string // experiment id, e.g. "fig6b"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Append adds a row, formatting each cell with %v.
func (t *Table) Append(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

// JSON renders the table as a JSON object (id, title, headers, rows,
// notes) for downstream tooling.
func (t *Table) JSON() string {
	b, err := json.MarshalIndent(struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Headers, t.Rows, t.Notes}, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Suite fixes the dataset scale and machine settings for a run.
type Suite struct {
	// Scale divides the paper dataset dimensions (DESIGN.md §3). Larger
	// is faster; 1 is paper-sized.
	Scale int
	// TileSide is the conservative square tile dimension; the buffer is
	// sized to hold one dense TileSide² CSF tile (Extensor holds 128).
	TileSide int
	// Labels restricts matrix experiments to these dataset labels (nil =
	// the full A..S suite).
	Labels []string
	// Workers fixes the worker count for measurements and for the cold
	// pipeline the coldpipe experiment drives (0 = all cores). The
	// parallel partitions merge counters exactly, so tables are identical
	// for any setting; the determinism regression test checks Workers:1
	// against Workers:4.
	Workers int

	mu    sync.Mutex
	cache map[string]*tensor.COO
}

// DefaultSuite is the full-evaluation configuration.
func DefaultSuite() *Suite { return &Suite{Scale: 32, TileSide: 128} }

// QuickSuite is a fast subset used by tests and benchmarks.
func QuickSuite() *Suite {
	return &Suite{Scale: 96, TileSide: 32, Labels: []string{"A", "E", "I", "Q"}}
}

// BufferWords returns the input-buffer capacity implied by TileSide.
func (s *Suite) BufferWords() int {
	return tiling.DenseFootprintWords([]int{s.TileSide, s.TileSide})
}

// Arch returns the Extensor-proportioned architecture at this buffer.
func (s *Suite) Arch() accel.Arch {
	a := accel.Extensor()
	a.InputBufferWords = s.BufferWords()
	a.OutputBufferWords = s.BufferWords()
	return a
}

// Matrix returns (and caches) the synthetic stand-in for a label.
func (s *Suite) Matrix(label string) (*tensor.COO, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		s.cache = make(map[string]*tensor.COO)
	}
	if m := s.cache[label]; m != nil {
		return m, nil
	}
	d, err := gen.ByLabel(label)
	if err != nil {
		return nil, err
	}
	m := d.Build(s.Scale)
	s.cache[label] = m
	return m, nil
}

// MatrixLabels returns the labels this suite evaluates.
func (s *Suite) MatrixLabels() []string {
	if s.Labels != nil {
		return s.Labels
	}
	var out []string
	for _, d := range gen.Matrices() {
		out = append(out, d.Label)
	}
	sort.Strings(out)
	return out
}

// aat builds the A×Aᵀ operand pair for a label, with B laid out for the
// given kernel (B(k,j) = Aᵀ for ikj; B(j,k) = A for ijk).
func (s *Suite) aat(label string, e *einsum.Expr) (map[string]*tensor.COO, error) {
	a, err := s.Matrix(label)
	if err != nil {
		return nil, err
	}
	b := a.Transpose()
	bref, err := e.Input("B")
	if err != nil {
		return nil, err
	}
	// SpMSpM-ijk accesses B(j,k): computing A×Aᵀ needs B's (j,k) layout
	// to equal Aᵀ's (k,j)... B(j,k)=A gives C = A·Aᵀ directly.
	if bref.Indices[0] == "j" {
		b = a.Clone()
	}
	return map[string]*tensor.COO{"A": a, "B": b}, nil
}

// measureConfig tiles the inputs at cfg and measures traffic. The
// worker count resolves opts.Workers, then s.Workers, then all cores;
// the parallel partition merges counters exactly, so the result is the
// same for any choice. s may be nil for suite-less experiments.
func measureConfig(s *Suite, e *einsum.Expr, inputs map[string]*tensor.COO, cfg model.Config, opts *exec.Options) (*exec.Result, error) {
	tiled, err := optimizer.TileAll(e, inputs, cfg)
	if err != nil {
		return nil, err
	}
	var o exec.Options
	if opts != nil {
		o = *opts
	}
	if o.Workers == 0 && s != nil {
		o.Workers = s.Workers
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return exec.Measure(e, tiled, &o)
}

// geomean returns the geometric mean of positive values.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func mb(words int64) float64 { return float64(words) * 4 / (1 << 20) }

// seededRand derives a deterministic generator from a string tag.
func seededRand(tag string) *rand.Rand {
	var seed int64 = 1469598103934665603
	for _, c := range tag {
		seed = (seed ^ int64(c)) * 1099511628211
	}
	return rand.New(rand.NewSource(seed))
}
