package experiments

import "testing"

// TestOverbookSweep is the acceptance gate for risk-aware sizing
// (DESIGN.md §18): across the four paper kernels, nonzero overflow
// targets must actually buy something — lower exec-measured traffic or
// higher buffer utilization than the conservative baseline — on at
// least two kernels, and the measured overflow rate must stay within
// 2× the requested target everywhere.
func TestOverbookSweep(t *testing.T) {
	s := QuickSuite()
	pts, err := OverbookSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4*len(OverbookTargets) {
		t.Fatalf("got %d points, want %d", len(pts), 4*len(OverbookTargets))
	}
	base := map[string]OverbookPoint{}
	for _, p := range pts {
		if p.Target == 0 {
			base[p.Kernel] = p
		}
	}
	improved := map[string]bool{}
	for _, p := range pts {
		t.Logf("%-10s target=%-5g tf=%-3d traffic=%.3fMB overflow=%.4f predicted=%.4f util=%.3f",
			p.Kernel, p.Target, p.TileFactor, p.TrafficMB, p.OverflowRate, p.PredictedRate, p.Utilization)
		if p.Target == 0 {
			if p.OverflowRate != 0 {
				t.Errorf("%s: conservative baseline overflowed (rate %v)", p.Kernel, p.OverflowRate)
			}
			continue
		}
		if p.OverflowRate > 2*p.Target {
			t.Errorf("%s target %g: measured overflow rate %v exceeds 2x target", p.Kernel, p.Target, p.OverflowRate)
		}
		b := base[p.Kernel]
		if p.TrafficMB < b.TrafficMB || p.Utilization > b.Utilization {
			improved[p.Kernel] = true
		}
	}
	if len(improved) < 2 {
		t.Errorf("overbooking improved only %d of 4 kernels (want >= 2): %v", len(improved), improved)
	}
}

// BenchmarkOverbook times the full risk/traffic sweep; CI's bench smoke
// runs it once so regressions in the risk-aware pipeline show up.
func BenchmarkOverbook(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := QuickSuite()
		if _, err := OverbookSweep(s); err != nil {
			b.Fatal(err)
		}
	}
}
