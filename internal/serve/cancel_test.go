package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// cancelScale divides the paper-sized dataset down to a tensor whose
// cold optimize still takes hundreds of milliseconds — long enough that
// a ~100 ms request deadline reliably fires mid-pipeline, short enough
// to keep the suite fast.
const cancelScale = 4

func optimizeReq(id string) map[string]any {
	return map[string]any{
		"kernel": testKernel,
		"inputs": map[string]string{"A": id, "B": id},
		"tile":   32,
	}
}

// TestOptimizeDeadlineAbortsPipeline is the tentpole regression test:
// a request deadline far shorter than the cold pipeline must produce a
// 504 in roughly the deadline — not the full pipeline time — with the
// compute observed to stop (the pool joins cleanly and the process
// goroutine count drains back to its baseline), and an aborted run must
// leave no artifact that perturbs a later identical request: re-running
// against the same cache directory yields bytes identical to a server
// that never timed out.
func TestOptimizeDeadlineAbortsPipeline(t *testing.T) {
	// Server A: generous deadline, private cache — the reference run.
	_, tsA := newTestServer(t, Config{})
	idA := ingestGen(t, tsA.URL, "C", cancelScale)
	coldStart := time.Now()
	respA, bodyA := postJSON(t, tsA.URL+"/v1/optimize", optimizeReq(idA))
	coldTime := time.Since(coldStart)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("reference optimize: status %d: %s", respA.StatusCode, bodyA)
	}

	// Server B0: generous deadline, shared cache dir — ingests the tensor
	// so the short-deadline server below can resolve it from the artifact
	// store (the "previous run of the daemon" path) without its ingest
	// racing the tight deadline.
	dir := t.TempDir()
	_, tsB0 := newTestServer(t, Config{CacheDir: dir})
	idB := ingestGen(t, tsB0.URL, "C", cancelScale)
	if idB != idA {
		t.Fatalf("content address differs across servers: %s vs %s", idB, idA)
	}

	// Server B: deadline far below the measured cold pipeline time.
	baseline := runtime.NumGoroutine()
	deadline := 100 * time.Millisecond
	sB, err := New(Config{CacheDir: dir, RequestTimeout: deadline})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(sB.Handler())
	defer tsB.Close()

	start := time.Now()
	respB, bodyB := postJSON(t, tsB.URL+"/v1/optimize", optimizeReq(idB))
	elapsed := time.Since(start)
	if respB.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline optimize: status %d (want 504): %s", respB.StatusCode, bodyB)
	}
	// "Roughly the deadline": well under the pipeline's own runtime. The
	// bound is adaptive so a slow CI machine scales it with the pipeline.
	bound := coldTime / 2
	if bound < time.Second {
		bound = time.Second
	}
	if elapsed >= bound {
		t.Errorf("504 took %v, want < %v (cold pipeline %v)", elapsed, bound, coldTime)
	}
	if got := sB.Metric("requests_timeout"); got != 1 {
		t.Errorf("requests_timeout = %d, want 1", got)
	}
	if got := sB.Metric("http_errors"); got != 1 {
		t.Errorf("http_errors = %d, want 1 (a deadline expiry is an error)", got)
	}
	// The abandonment is accounted by the flight runner once the last
	// participant departs — asynchronously to the 504 — so poll for it.
	abandonBy := time.Now().Add(10 * time.Second)
	for sB.Metric("pool_abandoned_queued")+sB.Metric("pool_abandoned_running") == 0 && time.Now().Before(abandonBy) {
		time.Sleep(10 * time.Millisecond)
	}
	if q, r := sB.Metric("pool_abandoned_queued"), sB.Metric("pool_abandoned_running"); q+r != 1 {
		t.Errorf("pool_abandoned_queued=%d pool_abandoned_running=%d, want exactly one abandonment", q, r)
	}
	if got := sB.Metric("requests_cancelled"); got != 0 {
		t.Errorf("requests_cancelled = %d, want 0 (deadline, not disconnect)", got)
	}

	// The abandoned pipeline must actually stop: shutdown joins every pool
	// worker, so it hangs if a worker is stuck in abandoned compute.
	tsB.Close()
	joined := make(chan error, 1)
	go func() { joined <- sB.Shutdown(context.Background()) }()
	select {
	case err := <-joined:
		if err != nil {
			t.Errorf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown hung: pool worker never finished the abandoned job")
	}
	drainBy := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(drainBy) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Errorf("goroutines did not drain after abort: %d, baseline %d", n, baseline)
	}

	// Server C: generous deadline over the aborted run's cache directory.
	// Whatever the aborted pipeline left behind (completed statistics
	// collections are legal; partial garbage is not) must not change the
	// answer: bytes must match the never-aborted reference.
	_, tsC := newTestServer(t, Config{CacheDir: dir})
	respC, bodyC := postJSON(t, tsC.URL+"/v1/optimize", optimizeReq(idB))
	if respC.StatusCode != http.StatusOK {
		t.Fatalf("post-abort optimize: status %d: %s", respC.StatusCode, bodyC)
	}
	if !bytes.Equal(bodyC, bodyA) {
		t.Errorf("post-abort optimize differs from reference:\n A: %s C: %s", bodyA, bodyC)
	}
}

// TestOptimizeClientDisconnect checks the disconnect/deadline split: a
// client that hangs up mid-compute increments requests_cancelled and is
// NOT counted as an http error or a timeout.
func TestOptimizeClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := ingestGen(t, ts.URL, "C", cancelScale)
	errsBefore := s.Metric("http_errors")

	enc, err := json.Marshal(optimizeReq(id))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/optimize", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("request completed before the disconnect: status %d", resp.StatusCode)
	}

	// The handler notices the disconnect at runCompute's return; poll
	// until its accounting lands.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metric("requests_cancelled") == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.Metric("requests_cancelled"); got != 1 {
		t.Fatalf("requests_cancelled = %d, want 1", got)
	}
	if got := s.Metric("http_errors"); got != errsBefore {
		t.Errorf("http_errors moved %d -> %d on a client disconnect", errsBefore, got)
	}
	if got := s.Metric("requests_timeout"); got != 0 {
		t.Errorf("requests_timeout = %d, want 0 (disconnect, not deadline)", got)
	}
}

// trickleReader releases its payload in fixed chunks with a pause before
// each one, simulating a slow client upload.
type trickleReader struct {
	data  []byte
	chunk int
	pause time.Duration
}

func (r *trickleReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	time.Sleep(r.pause)
	n := r.chunk
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// TestIngestSlowUpload is the -race regression for the ingest hand-off
// bug: the upload is buffered on the handler goroutine, so a body that
// trickles in past the request deadline yields a deterministic 504 with
// the job abandoned in the queue — no worker ever touches the request —
// and concurrent slow uploads leave the server consistent.
func TestIngestSlowUpload(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 250 * time.Millisecond})

	const uploads = 3
	var wg sync.WaitGroup
	statuses := make([]int, uploads)
	for i := 0; i < uploads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := &trickleReader{
				data:  bytes.Repeat([]byte("x"), 400),
				chunk: 50,
				pause: 60 * time.Millisecond, // 8 chunks ≈ 480 ms > deadline
			}
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/tensors", body)
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/octet-stream")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("upload %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range statuses {
		if code != http.StatusGatewayTimeout {
			t.Errorf("slow upload %d: status %d, want 504", i, code)
		}
	}
	if got := s.Metric("pool_abandoned_queued"); got != uploads {
		t.Errorf("pool_abandoned_queued = %d, want %d (dead ctx must never hand off)", got, uploads)
	}
	if got := s.Metric("ingest_errors"); got != uploads {
		t.Errorf("ingest_errors = %d, want %d", got, uploads)
	}

	// A slow-but-in-time JSON upload still works: buffering preserves the
	// body bytes across the hand-off.
	spec := &trickleReader{
		data:  []byte(`{"gen": {"label": "C", "scale": 1048576}}`),
		chunk: 10,
		pause: 15 * time.Millisecond,
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/tensors", spec)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-time slow upload: status %d: %s", resp.StatusCode, data)
	}
}

// TestWriteComputeError pins the full error-to-status mapping, including
// the 499 client-closed-request path a real disconnected client can
// never observe.
func TestWriteComputeError(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	cases := []struct {
		err      error
		status   int
		counter  string
		httpErrs int64 // expected delta
	}{
		{context.Canceled, statusClientClosedRequest, "requests_cancelled", 0},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, "requests_timeout", 1},
		{ErrShuttingDown, http.StatusServiceUnavailable, "", 1},
		{fmt.Errorf("bad kernel"), http.StatusUnprocessableEntity, "", 1},
	}
	for _, tc := range cases {
		before := s.Metric("http_errors")
		counterBefore := int64(0)
		if tc.counter != "" {
			counterBefore = s.Metric(tc.counter)
		}
		rec := httptest.NewRecorder()
		s.writeComputeError(rec, tc.err, http.StatusUnprocessableEntity)
		if rec.Code != tc.status {
			t.Errorf("%v: status %d, want %d", tc.err, rec.Code, tc.status)
		}
		if got := s.Metric("http_errors") - before; got != tc.httpErrs {
			t.Errorf("%v: http_errors delta %d, want %d", tc.err, got, tc.httpErrs)
		}
		if tc.counter != "" {
			if got := s.Metric(tc.counter) - counterBefore; got != 1 {
				t.Errorf("%v: %s delta %d, want 1", tc.err, tc.counter, got)
			}
		}
	}
}

// TestIsJSONContentType covers the media-type parsing the ingest route
// classifies uploads with.
func TestIsJSONContentType(t *testing.T) {
	cases := []struct {
		ct   string
		want bool
	}{
		{"application/json", true},
		{"Application/JSON", true},
		{"application/json; charset=utf-8", true},
		{"application/problem+json", true},
		{"application/vnd.d2t2.v1+json", true},
		{"", false},
		{"text/plain", false},
		{"application/octet-stream", false},
		{"application/jsonx", false},
		{"json", false},
		{";;", false},
	}
	for _, tc := range cases {
		if got := isJSONContentType(tc.ct); got != tc.want {
			t.Errorf("isJSONContentType(%q) = %v, want %v", tc.ct, got, tc.want)
		}
	}
}
