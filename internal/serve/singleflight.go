package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces identical concurrent cold requests: N requests
// that canonicalize to the same content-addressed ResponseKey run the
// pipeline once, and every participant is served the leader's exact
// bytes. The group only sees requests that already missed the response
// cache, so a flight exists exactly while one cold pipeline is in the
// air for its key.
//
// Abandonment semantics match the uncoalesced path (PR 4):
//
//   - A participant whose own context dies detaches immediately and is
//     answered from its context error (499/504). The flight keeps
//     running for the remaining participants — a follower hanging up
//     must not cancel the leader's pipeline, and the leader hanging up
//     fails the flight over to live followers instead of killing it.
//   - The LAST participant to leave cancels the flight's context, so an
//     abandoned flight stops claiming work at the pipeline's next item
//     boundary exactly like an abandoned solo request.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	metrics *metrics
	// wg joins every flight runner goroutine; Server.Shutdown waits on
	// it after the compute pool drains so no runner outlives the server.
	wg sync.WaitGroup
}

// flight is one in-air pipeline run. body and err are written by the
// runner goroutine before done is closed and read by participants only
// after done is closed, so the channel close is the synchronization
// point; waiters and shared are guarded by the group mutex.
type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	shared  bool
	body    []byte
	err     error
}

func newFlightGroup(m *metrics) *flightGroup {
	return &flightGroup{flights: make(map[string]*flight), metrics: m}
}

// do runs fn for key, coalescing onto an existing flight when one is in
// the air. fn receives the flight's context — cancelled only when every
// participant has left — and its single result is fanned out to all
// participants: the returned body and error are shared. coalesced
// reports whether this caller joined an existing flight (a follower)
// rather than creating it (the leader). When ctx dies first, do returns
// ctx.Err() and the flight flies on without this participant.
func (g *flightGroup) do(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) (body []byte, coalesced bool, err error) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.waiters++
		if !f.shared {
			f.shared = true
			g.metrics.add("singleflight_shared", 1)
		}
		g.mu.Unlock()
		g.metrics.add("pool_coalesced", 1)
		return g.wait(ctx, key, f, true)
	}

	// Leader: the flight context deliberately derives from Background,
	// not from the leader's request context — the leader leaving must
	// not take live followers down with it. Lifetime is bounded because
	// every participant carries the server's RequestTimeout and the last
	// one out cancels the flight.
	//d2t2:ignore ctxpropagation flight outlives its leader by design; lifetime bounded by RequestTimeout
	fctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.flights[key] = f
	g.metrics.add("singleflight_leader", 1)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		f.body, f.err = fn(fctx)
		g.mu.Lock()
		// Identity-checked: a late arrival after the last participant
		// detached this flight may have started a fresh one under the
		// same key.
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	g.mu.Unlock()
	return g.wait(ctx, key, f, false)
}

// wait blocks one participant on a flight until the result lands or the
// participant's own context dies, then runs the departure bookkeeping.
func (g *flightGroup) wait(ctx context.Context, key string, f *flight, follower bool) ([]byte, bool, error) {
	select {
	case <-f.done:
		g.depart(key, f, false)
		return f.body, follower, f.err
	case <-ctx.Done():
		g.depart(key, f, true)
		return nil, follower, ctx.Err()
	}
}

// depart removes one participant from a flight. An early departure
// (the participant's context died before the result landed) that is the
// LAST one detaches the flight from the map — so a new request starts
// fresh instead of joining a doomed flight — and cancels the flight's
// context to stop the pipeline.
func (g *flightGroup) depart(key string, f *flight, early bool) {
	g.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	if last && early && g.flights[key] == f {
		delete(g.flights, key)
	}
	g.mu.Unlock()
	if early {
		g.metrics.add("singleflight_detached", 1)
	}
	if last && early {
		f.cancel()
	}
}

// join blocks until every flight runner has exited. Called during
// Shutdown after the compute pool drains: runners that had not yet
// submitted their job get ErrShuttingDown and terminate promptly.
func (g *flightGroup) join() { g.wg.Wait() }
