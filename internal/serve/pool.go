package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrShuttingDown is returned for work submitted after shutdown began.
var ErrShuttingDown = errors.New("serve: shutting down")

// pool is the bounded compute pool: ingest parsing and the cold
// optimize/predict/stats pipelines are CPU-bound, so at most n jobs run
// at once no matter how many requests are in flight — queued requests
// wait (their queue time counts against the request deadline) instead of
// spawning unbounded pipelines. The jobs channel is unbuffered — a
// successful send means a worker holds the job, so shutdown can never
// strand an accepted job in a buffer.
type pool struct {
	jobs chan func()
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

func newPool(n int) *pool {
	if n < 1 {
		n = 1
	}
	p := &pool{
		jobs: make(chan func()),
		quit: make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case job := <-p.jobs:
					job()
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

// run submits job and blocks until it completes or ctx expires. The
// returned started flag reports whether a worker ever took the job:
//
//   - started == false: the job was abandoned while still queued — it
//     will never run, and err says why (ErrShuttingDown or ctx.Err()).
//   - started == true, err == nil: the job ran to completion; its
//     outputs are safe to read.
//   - started == true, err != nil: ctx expired after hand-off. The
//     worker is still finishing the job (jobs observe the same ctx, so
//     ctx-aware work winds down at its next check), and the caller must
//     NOT read anything the job writes. The job must not touch the
//     request or response writer — hand it buffered data only.
func (p *pool) run(ctx context.Context, job func()) (started bool, err error) {
	// A context that is already dead never hands off: without this check
	// an idle worker and the dead context race in the select below, and a
	// request whose deadline expired while its body was still uploading
	// would sometimes burn a pool slot on work nobody will read.
	if err := ctx.Err(); err != nil {
		return false, err
	}
	done := make(chan struct{})
	wrapped := func() {
		defer close(done)
		job()
	}
	select {
	case p.jobs <- wrapped:
	case <-p.quit:
		return false, ErrShuttingDown
	case <-ctx.Done():
		return false, ctx.Err()
	}
	select {
	case <-done:
		return true, nil
	case <-ctx.Done():
		return true, ctx.Err()
	}
}

// accepting reports whether the pool still takes work — false once
// shutdown has begun. The readiness probe keys off this: a draining
// node must stop advertising itself before its in-flight work ends.
func (p *pool) accepting() bool {
	select {
	case <-p.quit:
		return false
	default:
		return true
	}
}

// shutdown stops accepting work and waits for every worker to exit.
// Safe to call more than once.
func (p *pool) shutdown() {
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
}
