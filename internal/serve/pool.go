package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrShuttingDown is returned for work submitted after shutdown began.
var ErrShuttingDown = errors.New("serve: shutting down")

// pool is a bounded worker pool for ingest jobs: parsing an uploaded
// tensor and collecting its statistics is CPU-bound, so at most n run at
// once no matter how many uploads are in flight. The jobs channel is
// unbuffered — a successful send means a worker holds the job, so
// shutdown can never strand an accepted job in a buffer.
type pool struct {
	jobs chan func()
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

func newPool(n int) *pool {
	if n < 1 {
		n = 1
	}
	p := &pool{
		jobs: make(chan func()),
		quit: make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case job := <-p.jobs:
					job()
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

// run submits job and blocks until it completes or ctx expires while the
// job is still queued or running. A ctx expiry after hand-off does not
// cancel the job itself — the worker finishes it (results land in the
// cache for the retry); only the caller stops waiting.
func (p *pool) run(ctx context.Context, job func()) error {
	done := make(chan struct{})
	wrapped := func() {
		defer close(done)
		job()
	}
	select {
	case p.jobs <- wrapped:
	case <-p.quit:
		return ErrShuttingDown
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// shutdown stops accepting work and waits for every worker to exit.
// Safe to call more than once.
func (p *pool) shutdown() {
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
}
