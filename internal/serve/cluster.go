package serve

import (
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"d2t2/internal/cluster"
	"d2t2/internal/snapshot"
)

// clusterState is the per-server view of a d2t2d cluster: the
// consistent-hash ring over static membership, the authenticated peer
// client, and the lifetime of the async replication goroutines. nil on
// an unclustered server — every cluster rung checks for that and
// degrades to single-node behavior.
type clusterState struct {
	self        string   // this node's base URL (a ring member)
	peers       []string // the other members, in Config.Peers order
	ring        *cluster.Ring
	client      *cluster.Client
	replication int

	secret string

	// ctx bounds the async replication pushes: it outlives any single
	// request by design (replication is best-effort background work) and
	// is cancelled by Shutdown; wg joins every replication goroutine.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// newClusterState wires the ring and peer client from a validated
// config. Membership is self plus every peer; the ring is a pure
// function of that set, so all nodes agree on placement.
func newClusterState(cfg Config) (*clusterState, error) {
	members := append([]string{cfg.SelfURL}, cfg.Peers...)
	ring, err := cluster.NewRing(members, 0)
	if err != nil {
		return nil, err
	}
	// Replication runs detached from request lifetimes on purpose: a
	// push is useful work even after its triggering request was
	// answered. Lifetime is bounded by Shutdown's cancel+join.
	//d2t2:ignore ctxpropagation replication outlives its triggering request by design; bounded by Shutdown
	ctx, cancel := context.WithCancel(context.Background())
	return &clusterState{
		self:        cfg.SelfURL,
		peers:       append([]string(nil), cfg.Peers...),
		ring:        ring,
		client:      cluster.NewClient(cfg.ClusterSecret, cfg.PeerTimeout),
		replication: cfg.Replication,
		secret:      cfg.ClusterSecret,
		ctx:         ctx,
		cancel:      cancel,
	}, nil
}

// owns reports whether this node is key's ring owner.
func (c *clusterState) owns(key string) bool { return c.ring.Owner(key) == c.self }

// peerIndex maps a member URL to its per-peer counter index
// (Config.Peers order), -1 for self or an unknown member.
func (c *clusterState) peerIndex(member string) int {
	for i, p := range c.peers {
		if p == member {
			return i
		}
	}
	return -1
}

// fetchCandidates lists the peers to ask for key, owner first, then
// the rest of the ring in successor order. Asking beyond the owner
// covers artifacts whose replication push has not landed yet and
// owners that restarted with a cold store; the fan-out is bounded by
// cluster size.
func (c *clusterState) fetchCandidates(key string) []string {
	owner := c.ring.Owner(key)
	out := make([]string, 0, len(c.peers))
	if owner != c.self {
		out = append(out, owner)
	}
	for _, m := range c.ring.Successors(key, len(c.peers)+1) {
		if m != c.self && m != owner {
			out = append(out, m)
		}
	}
	return out
}

// close stops the replication machinery: cancel aborts in-flight
// pushes, the join waits for their goroutines.
func (c *clusterState) close() {
	c.cancel()
	c.wg.Wait()
}

// peerFetch is the owner-peer rung of the artifact ladder: ask key's
// owner (then the remaining ring) for the bytes, CRC-verified by the
// client on receipt. Returns nil when no peer holds the artifact or
// the context died — the caller falls through to recompute.
func (s *Server) peerFetch(ctx context.Context, key string) []byte {
	cl := s.cluster
	for _, peer := range cl.fetchCandidates(key) {
		if ctx.Err() != nil {
			return nil
		}
		b, err := cl.client.FetchArtifact(ctx, peer, key)
		idx := cl.peerIndex(peer)
		switch {
		case err == nil:
			s.metrics.addPeer(idx, peerFetchHits, 1)
			return b
		case errors.Is(err, cluster.ErrNotFound):
			s.metrics.add("peer_fetch_misses", 1)
			s.metrics.addPeer(idx, peerFetchMisses, 1)
		default:
			s.metrics.add("peer_fetch_errors", 1)
			s.metrics.addPeer(idx, peerFetchErrors, 1)
		}
	}
	return nil
}

// forwardToOwner relays one cold request to key's owner so the owner's
// singleflight coalesces identical cold work fleet-wide. Returns true
// when the response was fully served from the owner's bytes (which are
// also cache-filled locally). Transport failures and owner 5xx retry
// once; a 4xx from the owner — a deterministic domain failure — and
// exhausted retries both fall back to local compute, so a dead or
// degraded owner costs latency, never availability.
func (s *Server) forwardToOwner(w http.ResponseWriter, r *http.Request, endpoint, key string, canonical []byte) bool {
	cl := s.cluster
	owner := cl.ring.Owner(key)
	ctx := r.Context()
	const attempts = 2
	for i := 0; i < attempts && ctx.Err() == nil; i++ {
		s.metrics.add("forward_attempts", 1)
		res, err := cl.client.Forward(ctx, owner, endpoint, canonical)
		if err != nil {
			continue // transport failure: retry, then local fallback
		}
		if res.Status == http.StatusOK {
			s.metrics.add("forward_success", 1)
			s.metrics.addPeer(cl.peerIndex(owner), peerForwards, 1)
			// Cache-fill with the owner's exact bytes (no re-replication:
			// the owner already drives placement for this key).
			s.persistResponseBytes(key, res.Body, false)
			s.writeBody(w, "forwarded", res.Body)
			return true
		}
		if res.Status < http.StatusInternalServerError {
			break // owner answered authoritatively with a domain failure
		}
	}
	s.metrics.add("forward_fallback_local", 1)
	return false
}

// maybeReplicate pushes one freshly produced artifact toward its ring
// placement: the owner plus the next Replication successors, skipping
// self. Async and best-effort — a failed push only costs a future
// peer-fetch or recompute — with goroutines joined at Shutdown.
func (s *Server) maybeReplicate(key string, artifact []byte) {
	cl := s.cluster
	if cl == nil || cl.replication <= 0 {
		return
	}
	owner := cl.ring.Owner(key)
	targets := make([]string, 0, cl.replication+1)
	if owner != cl.self {
		targets = append(targets, owner)
	}
	for _, m := range cl.ring.Successors(key, cl.replication) {
		if m != cl.self {
			targets = append(targets, m)
		}
	}
	if len(targets) == 0 {
		return
	}
	cl.wg.Add(1)
	go func() {
		defer cl.wg.Done()
		for _, peer := range targets {
			if cl.ctx.Err() != nil {
				return
			}
			if err := cl.client.PushArtifact(cl.ctx, peer, key, artifact); err != nil {
				s.metrics.add("replicate_errors", 1)
				continue
			}
			s.metrics.add("replicate_pushes", 1)
			s.metrics.addPeer(cl.peerIndex(peer), peerReplicas, 1)
		}
	}()
}

// requireClusterAuth gates the internal route set on the shared
// cluster secret (constant-time compare).
func (s *Server) requireClusterAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		cl := s.cluster
		if cl == nil {
			http.NotFound(w, r)
			return
		}
		got := r.Header.Get(cluster.SecretHeader)
		if subtle.ConstantTimeCompare([]byte(got), []byte(cl.secret)) != 1 {
			s.metrics.add("internal_auth_failures", 1)
			s.writeError(w, http.StatusForbidden, fmt.Errorf("cluster secret mismatch"))
			return
		}
		s.metrics.add("internal_requests_total", 1)
		h(w, r)
	}
}

// handleInternalArtifactGet serves one artifact's raw bytes, framed
// and checksummed, from the LOCAL layers only — a peer's read-through
// must never recurse into another peer fetch, or two nodes missing the
// same key would chase each other.
func (s *Server) handleInternalArtifactGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !IsContentAddress(key) {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("malformed content address %q", key))
		return
	}
	b, _, err := s.store.Get(key)
	if err != nil || b == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("artifact %q not held", key))
		return
	}
	s.metrics.add("internal_artifact_serves", 1)
	frame := cluster.EncodeFrame(key, b)
	w.Header().Set("Content-Type", "application/octet-stream")
	s.metrics.add("bytes_served", int64(len(frame)))
	w.Write(frame)
}

// handleInternalArtifactPut admits a replicated artifact. The push is
// unsolicited, so receipt is fully verified before the store sees it:
// the frame CRC, the key match against the path, the content-address
// shape, and the snapshot's own section CRCs via a full decode.
func (s *Server) handleInternalArtifactPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !IsContentAddress(key) {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("malformed content address %q", key))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("read replica push: %w", err))
		return
	}
	gotKey, payload, err := cluster.DecodeFrame(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if gotKey != key {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("frame names key %q, route names %q", gotKey, key))
		return
	}
	if _, err := snapshot.DecodeBytes(payload); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("replica artifact rejected: %w", err))
		return
	}
	if err := s.store.Put(key, payload); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.metrics.add("internal_artifact_stores", 1)
	w.WriteHeader(http.StatusNoContent)
}

// handleInternalPing answers the peer reachability probe.
func (s *Server) handleInternalPing(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "node": s.cluster.self})
}

// anyPeerReachable reports nil when at least one configured peer
// answers a ping — the "ring formed" half of readiness.
func (c *clusterState) anyPeerReachable(ctx context.Context) error {
	var last error
	for _, peer := range c.peers {
		if err := c.client.Ping(ctx, peer); err == nil {
			return nil
		} else {
			last = err
		}
	}
	return fmt.Errorf("no reachable peer of %d: %w", len(c.peers), last)
}

// OwnerOf reports which cluster member owns key, for operators
// debugging placement and for the multi-node e2e harness. ok is false
// on an unclustered server.
func (s *Server) OwnerOf(key string) (owner string, ok bool) {
	if s.cluster == nil {
		return "", false
	}
	return s.cluster.ring.Owner(key), true
}
