package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitForWaiters polls until the flight under key has at least n
// participants (the group mutex makes the read safe in-package).
func waitForWaiters(t *testing.T, g *flightGroup, key string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		g.mu.Lock()
		f := g.flights[key]
		w := 0
		if f != nil {
			w = f.waiters
		}
		g.mu.Unlock()
		if w >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("flight %q never reached %d participants", key, n)
}

type flightResult struct {
	body      []byte
	coalesced bool
	err       error
}

// TestSingleflightGroupCoalesces proves the core contract with a gated
// fn: 8 concurrent do calls for one key run fn exactly once, exactly one
// caller is the leader, and every caller gets the same bytes.
func TestSingleflightGroupCoalesces(t *testing.T) {
	m := newMetrics()
	g := newFlightGroup(m)
	gate := make(chan struct{})
	var runs atomic.Int32
	fn := func(ctx context.Context) ([]byte, error) {
		runs.Add(1)
		<-gate
		return []byte("payload"), nil
	}
	const n = 8
	results := make(chan flightResult, n)
	for i := 0; i < n; i++ {
		go func() {
			b, c, err := g.do(context.Background(), "k", fn)
			results <- flightResult{b, c, err}
		}()
	}
	waitForWaiters(t, g, "k", n)
	close(gate)
	leaders := 0
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("do: %v", r.err)
		}
		if string(r.body) != "payload" {
			t.Fatalf("body %q, want payload", r.body)
		}
		if !r.coalesced {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want exactly 1", leaders)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if got := m.get("singleflight_leader"); got != 1 {
		t.Errorf("singleflight_leader = %d, want 1", got)
	}
	if got := m.get("pool_coalesced"); got != n-1 {
		t.Errorf("pool_coalesced = %d, want %d", got, n-1)
	}
	if got := m.get("singleflight_shared"); got != 1 {
		t.Errorf("singleflight_shared = %d, want 1", got)
	}
	g.join()
}

// TestSingleflightFollowerDetach checks one half of the abandonment
// contract: a follower whose context dies leaves immediately with its
// own context error while the leader's run proceeds uncancelled.
func TestSingleflightFollowerDetach(t *testing.T) {
	m := newMetrics()
	g := newFlightGroup(m)
	gate := make(chan struct{})
	fn := func(ctx context.Context) ([]byte, error) {
		<-gate
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	}
	leaderRes := make(chan flightResult, 1)
	go func() {
		b, c, err := g.do(context.Background(), "k", fn)
		leaderRes <- flightResult{b, c, err}
	}()
	waitForWaiters(t, g, "k", 1)

	fctx, fcancel := context.WithCancel(context.Background())
	followerRes := make(chan flightResult, 1)
	go func() {
		b, c, err := g.do(fctx, "k", fn)
		followerRes <- flightResult{b, c, err}
	}()
	waitForWaiters(t, g, "k", 2)
	fcancel()

	fr := <-followerRes
	if !errors.Is(fr.err, context.Canceled) || !fr.coalesced {
		t.Fatalf("follower got (%v, coalesced=%v), want its own context.Canceled as a follower", fr.err, fr.coalesced)
	}
	if got := m.get("singleflight_detached"); got != 1 {
		t.Errorf("singleflight_detached = %d, want 1", got)
	}

	close(gate)
	lr := <-leaderRes
	if lr.err != nil || string(lr.body) != "ok" {
		t.Fatalf("leader got (%q, %v), want ok — a follower hang-up must not cancel the flight", lr.body, lr.err)
	}
	g.join()
}

// TestSingleflightLeaderFailover checks the other half: the LEADER
// leaving hands the flight over to a live follower instead of killing
// the run.
func TestSingleflightLeaderFailover(t *testing.T) {
	m := newMetrics()
	g := newFlightGroup(m)
	gate := make(chan struct{})
	fn := func(ctx context.Context) ([]byte, error) {
		<-gate
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	}
	lctx, lcancel := context.WithCancel(context.Background())
	leaderRes := make(chan flightResult, 1)
	go func() {
		b, c, err := g.do(lctx, "k", fn)
		leaderRes <- flightResult{b, c, err}
	}()
	waitForWaiters(t, g, "k", 1)

	followerRes := make(chan flightResult, 1)
	go func() {
		b, c, err := g.do(context.Background(), "k", fn)
		followerRes <- flightResult{b, c, err}
	}()
	waitForWaiters(t, g, "k", 2)
	lcancel()

	lr := <-leaderRes
	if !errors.Is(lr.err, context.Canceled) || lr.coalesced {
		t.Fatalf("leader got (%v, coalesced=%v), want its own context.Canceled as the leader", lr.err, lr.coalesced)
	}

	close(gate)
	fr := <-followerRes
	if fr.err != nil || string(fr.body) != "ok" {
		t.Fatalf("follower got (%q, %v), want ok — the flight must fail over to live followers", fr.body, fr.err)
	}
	g.join()
}

// TestSingleflightAbandonCancelsRun checks that the LAST participant to
// leave cancels the flight's context (abandoned compute stops) and
// detaches the flight, so the next identical request starts fresh
// instead of joining a doomed run.
func TestSingleflightAbandonCancelsRun(t *testing.T) {
	m := newMetrics()
	g := newFlightGroup(m)
	started := make(chan struct{})
	fn := func(ctx context.Context) ([]byte, error) {
		close(started)
		<-ctx.Done() // the abandoned pipeline observes the cancellation
		return nil, ctx.Err()
	}
	cctx, cancel := context.WithCancel(context.Background())
	res := make(chan flightResult, 1)
	go func() {
		b, c, err := g.do(cctx, "k", fn)
		res <- flightResult{b, c, err}
	}()
	<-started
	cancel()
	r := <-res
	if !errors.Is(r.err, context.Canceled) {
		t.Fatalf("abandoned participant got %v, want context.Canceled", r.err)
	}
	// fn only returns once the flight ctx is cancelled; join proves it.
	g.join()

	// A fresh request after the abandonment must start a new flight.
	b, coalesced, err := g.do(context.Background(), "k",
		func(ctx context.Context) ([]byte, error) { return []byte("fresh"), nil })
	if err != nil || coalesced || string(b) != "fresh" {
		t.Fatalf("post-abandon do got (%q, coalesced=%v, %v), want a fresh leader run", b, coalesced, err)
	}
	if got := m.get("singleflight_leader"); got != 2 {
		t.Errorf("singleflight_leader = %d, want 2 (abandoned + fresh)", got)
	}
	g.join()
}

// TestSingleflightOptimizeE2E drives the wired path: 8 identical
// concurrent cold optimize requests run the pipeline once (the expvar
// counters prove it) and every client receives byte-identical bodies,
// distinguished only by the X-D2T2-Cache header — one "miss" from the
// leader, the rest "coalesced" (or "hit" for a straggler that arrived
// after the flight landed).
func TestSingleflightOptimizeE2E(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := ingestGen(t, ts.URL, "C", cancelScale)
	enc, err := json.Marshal(optimizeReq(id))
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	bodies := make([][]byte, n)
	caches := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(enc))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			bodies[i] = body
			caches[i] = resp.Header.Get("X-D2T2-Cache")
		}(i)
	}
	wg.Wait()

	miss, coalesced, hit := 0, 0, 0
	for i := 0; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs:\n 0: %s %d: %s", i, bodies[0], i, bodies[i])
		}
		switch caches[i] {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		case "hit":
			hit++
		default:
			t.Errorf("request %d: X-D2T2-Cache %q", i, caches[i])
		}
	}
	if miss != 1 {
		t.Errorf("%d misses, want exactly 1 (one leader ran the pipeline)", miss)
	}
	if coalesced < 1 {
		t.Errorf("no request coalesced — the burst never shared a flight")
	}
	if got := s.Metric("singleflight_leader"); got != 1 {
		t.Errorf("singleflight_leader = %d, want 1", got)
	}
	if got := s.Metric("stats_collect_total"); got != 1 {
		t.Errorf("stats_collect_total = %d, want 1 — the pipeline must run once for the burst", got)
	}
	if got := s.Metric("pool_coalesced"); got != int64(coalesced) {
		t.Errorf("pool_coalesced = %d, but %d responses carried the coalesced header", got, coalesced)
	}
	if got := s.Metric("optimize_cache_hits"); got != int64(hit) {
		t.Errorf("optimize_cache_hits = %d, but %d responses carried the hit header", got, hit)
	}

	// A warm request after the burst is a plain cache hit with the same
	// bytes — the leader persisted exactly what everyone was served.
	resp, body := postJSON(t, ts.URL+"/v1/optimize", optimizeReq(id))
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-D2T2-Cache") != "hit" {
		t.Fatalf("warm request: status %d cache %q", resp.StatusCode, resp.Header.Get("X-D2T2-Cache"))
	}
	if !bytes.Equal(body, bodies[0]) {
		t.Errorf("warm body differs from coalesced body")
	}
}

// TestSingleflightPredictE2E checks the predict route coalesces the
// same way.
func TestSingleflightPredictE2E(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := ingestGen(t, ts.URL, "C", cancelScale)
	enc, err := json.Marshal(map[string]any{
		"kernel": testKernel,
		"inputs": map[string]string{"A": id, "B": id},
		"config": map[string]int{"i": 64, "j": 64, "k": 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(enc))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("predict body %d differs", i)
		}
	}
	if got := s.Metric("singleflight_leader"); got != 1 {
		t.Errorf("singleflight_leader = %d, want 1", got)
	}
	if got := s.Metric("stats_collect_total"); got != 1 {
		t.Errorf("stats_collect_total = %d, want 1", got)
	}
}

// TestSingleflightDeadline checks a whole coalesced burst against a
// deadline far shorter than the pipeline: every participant times out
// with 504 on ITS OWN deadline, the flight is abandoned (the pool job
// observes the cancellation), and the counters attribute each outcome.
func TestSingleflightDeadline(t *testing.T) {
	// Ingest through a generous sibling server sharing the cache dir, so
	// the ingest itself cannot trip the tight deadline.
	dir := t.TempDir()
	_, tsIngest := newTestServer(t, Config{CacheDir: dir})
	id := ingestGen(t, tsIngest.URL, "C", cancelScale)
	s2, ts2 := newTestServer(t, Config{CacheDir: dir, RequestTimeout: 150 * time.Millisecond})

	enc, err := json.Marshal(optimizeReq(id))
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts2.URL+"/v1/optimize", "application/json", bytes.NewReader(enc))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range statuses {
		if code != http.StatusGatewayTimeout {
			t.Errorf("request %d: status %d, want 504", i, code)
		}
	}
	if got := s2.Metric("requests_timeout"); got != n {
		t.Errorf("requests_timeout = %d, want %d — every participant times out on its own deadline", got, n)
	}
	if got := s2.Metric("singleflight_detached"); got != n {
		t.Errorf("singleflight_detached = %d, want %d", got, n)
	}
	// How many flights the burst split into is timing-dependent (under
	// -race arrivals can stagger past each other's deadlines), but every
	// flight that started must be abandoned and accounted exactly once.
	// The abandonment lands asynchronously on the flight runner after the
	// last participant departs; poll for it.
	leaders := s2.Metric("singleflight_leader")
	if leaders < 1 || leaders > n {
		t.Errorf("singleflight_leader = %d, want 1..%d", leaders, n)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s2.Metric("pool_abandoned_queued")+s2.Metric("pool_abandoned_running") < leaders && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if q, r := s2.Metric("pool_abandoned_queued"), s2.Metric("pool_abandoned_running"); q+r != leaders {
		t.Errorf("pool_abandoned_queued=%d pool_abandoned_running=%d, want %d (one per abandoned flight)", q, r, leaders)
	}
}
