package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"d2t2"
	"d2t2/internal/buildinfo"
	"d2t2/internal/snapshot"
	"d2t2/internal/stats"
	"d2t2/internal/tiling"
)

// Config tunes a Server. The zero value is usable: in-memory cache only,
// GOMAXPROCS ingest workers, 30 s request timeout.
type Config struct {
	// CacheDir roots the on-disk artifact cache; "" keeps artifacts in
	// memory only.
	CacheDir string
	// MemCacheBytes bounds the in-memory artifact layer (default 64 MiB).
	MemCacheBytes int64
	// Workers bounds how many requests run compute at once — every
	// CPU-heavy job (ingest parsing, the optimize/predict/stats cold
	// pipelines) goes through one bounded pool of this size, so N
	// concurrent requests queue instead of spawning N pipelines — and
	// also sizes the cold pipeline's worker pool inside each job
	// (default GOMAXPROCS). Cold results are byte-identical at any
	// worker count.
	Workers int
	// RequestTimeout bounds each request end to end: queue wait for a
	// compute slot plus the compute itself (default 30 s). On expiry the
	// request context is cancelled and the cold pipeline stops claiming
	// work at its next item boundary — an abandoned request does not
	// keep burning CPU. Completed sub-steps (a finished statistics
	// collection) still land in the cache for the retry.
	RequestTimeout time.Duration
	// ReadHeaderTimeout bounds reading one request's header block
	// (default 5 s) — the slowloris guard.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading a whole request including its body
	// (default RequestTimeout + 30 s; keep it above RequestTimeout so
	// the handler's deadline, not the connection reaper, decides an
	// accepted request's fate).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing a response (default RequestTimeout +
	// 30 s, above RequestTimeout for the same reason).
	WriteTimeout time.Duration
	// IdleTimeout reaps idle keep-alive connections (default 2 min).
	IdleTimeout time.Duration
	// MaxUploadBytes bounds one tensor upload (default 256 MiB).
	MaxUploadBytes int64
	// DefaultStatsTile is the conservative square tile used when a
	// predict or stats request does not name one (default 128, the
	// paper's sweep midpoint).
	DefaultStatsTile int

	// Peers lists the other d2t2d nodes' base URLs (e.g.
	// "http://10.0.0.2:8421"). Non-empty Peers turns on clustering:
	// the node joins a consistent-hash ring with them, fetches
	// artifacts from key owners before recomputing, forwards cold
	// optimize/predict requests to the owner, and replicates warm
	// artifacts. Empty keeps classic single-node behavior.
	Peers []string
	// SelfURL is this node's own base URL as the peers reach it — its
	// ring identity. Required when Peers is set.
	SelfURL string
	// ClusterSecret authenticates the internal peer routes; every node
	// of one cluster carries the same value. Required when Peers is
	// set.
	ClusterSecret string
	// Replication is how many ring successors (beyond the owner) each
	// warm artifact is pushed to, async and best-effort (default 1;
	// at most len(Peers)).
	Replication int
	// PeerTimeout bounds each single peer call — artifact fetch,
	// forward attempt, replica push, ping (default 5 s).
	PeerTimeout time.Duration
}

// withDefaults fills unset (zero) fields. Negative values are left in
// place for validate to reject — a negative knob is a configuration
// mistake, not a request for the default.
func (c Config) withDefaults() Config {
	if c.MemCacheBytes == 0 {
		c.MemCacheBytes = 64 << 20
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout == 0 && c.RequestTimeout > 0 {
		c.ReadTimeout = c.RequestTimeout + 30*time.Second
	}
	if c.WriteTimeout == 0 && c.RequestTimeout > 0 {
		c.WriteTimeout = c.RequestTimeout + 30*time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.DefaultStatsTile == 0 {
		c.DefaultStatsTile = 128
	}
	if c.PeerTimeout == 0 {
		c.PeerTimeout = 5 * time.Second
	}
	if c.Replication == 0 {
		c.Replication = 1
	}
	c.SelfURL = strings.TrimRight(c.SelfURL, "/")
	for i, p := range c.Peers {
		c.Peers[i] = strings.TrimRight(p, "/")
	}
	return c
}

// validate rejects configurations that would misbehave at runtime.
// Called by New on the post-default config, so a zero field has
// already taken its default — anything still out of range here was an
// explicit, wrong value.
func (c Config) validate() error {
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"RequestTimeout", c.RequestTimeout},
		{"ReadHeaderTimeout", c.ReadHeaderTimeout},
		{"ReadTimeout", c.ReadTimeout},
		{"WriteTimeout", c.WriteTimeout},
		{"IdleTimeout", c.IdleTimeout},
		{"PeerTimeout", c.PeerTimeout},
	} {
		if d.v <= 0 {
			return fmt.Errorf("serve: %s must be positive, got %v", d.name, d.v)
		}
	}
	// The connection reaper must not fire before the handler's own
	// deadline decides an accepted request's fate (PR 4's invariant,
	// previously only true by construction of the defaults).
	if c.ReadTimeout <= c.RequestTimeout {
		return fmt.Errorf("serve: ReadTimeout (%v) must exceed RequestTimeout (%v)", c.ReadTimeout, c.RequestTimeout)
	}
	if c.WriteTimeout <= c.RequestTimeout {
		return fmt.Errorf("serve: WriteTimeout (%v) must exceed RequestTimeout (%v)", c.WriteTimeout, c.RequestTimeout)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("serve: Workers must be positive, got %d", c.Workers)
	}
	if c.MemCacheBytes < 0 {
		return fmt.Errorf("serve: MemCacheBytes must be non-negative, got %d", c.MemCacheBytes)
	}
	if c.MaxUploadBytes <= 0 {
		return fmt.Errorf("serve: MaxUploadBytes must be positive, got %d", c.MaxUploadBytes)
	}
	if c.DefaultStatsTile <= 0 {
		return fmt.Errorf("serve: DefaultStatsTile must be positive, got %d", c.DefaultStatsTile)
	}
	if len(c.Peers) == 0 {
		if c.SelfURL != "" {
			return fmt.Errorf("serve: SelfURL set without Peers; clustering needs both")
		}
		return nil
	}
	if c.SelfURL == "" {
		return fmt.Errorf("serve: Peers set without SelfURL; the node needs its own ring identity")
	}
	if c.ClusterSecret == "" {
		return fmt.Errorf("serve: Peers set without ClusterSecret; internal routes must be authenticated")
	}
	if c.Replication < 0 {
		return fmt.Errorf("serve: Replication must be non-negative, got %d", c.Replication)
	}
	if c.Replication > len(c.Peers) {
		return fmt.Errorf("serve: Replication %d exceeds peer count %d; there are not enough distinct successors", c.Replication, len(c.Peers))
	}
	seen := map[string]bool{}
	for _, raw := range append([]string{c.SelfURL}, c.Peers...) {
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("serve: cluster member %q is not an http(s) base URL", raw)
		}
		// Self duplicated in Peers, or a peer listed twice: both would
		// double that member's ring share.
		if seen[raw] {
			return fmt.Errorf("serve: cluster member %q listed more than once (is the node in its own -peers?)", raw)
		}
		seen[raw] = true
	}
	return nil
}

// Server is the d2t2d optimizer service. Create one with New, mount
// Handler on an HTTP server (or call ListenAndServe), and stop it with
// Shutdown. All state — the tensor registry, the artifact store, the
// statistics session — is per-Server, so tests can run many in one
// process.
type Server struct {
	cfg     Config
	store   *Store
	session *d2t2.Session
	pool    *pool
	flights *flightGroup
	metrics *metrics
	cluster *clusterState // nil when unclustered
	mux     *http.ServeMux

	// draining flips at the top of Shutdown, before in-flight requests
	// finish, so /readyz stops advertising the node while it drains.
	draining atomic.Bool

	mu      sync.Mutex
	tensors map[string]*d2t2.Tensor // content address -> registered tensor
	httpSrv *http.Server
}

// New builds a server from cfg (see Config for defaults). Invalid
// configurations — negative timeouts or sizes, a replication factor
// the peer set cannot satisfy, the node listed in its own peers — are
// rejected here rather than misbehaving at runtime.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	store, err := NewStore(cfg.CacheDir, cfg.MemCacheBytes)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		pool:    newPool(cfg.Workers),
		metrics: newMetrics(),
		tensors: make(map[string]*d2t2.Tensor),
	}
	if len(cfg.Peers) > 0 {
		s.cluster, err = newClusterState(cfg)
		if err != nil {
			return nil, err
		}
		s.metrics.initPeerCounters(len(cfg.Peers))
	}
	s.flights = newFlightGroup(s.metrics)
	s.session = d2t2.NewSession(&storeCache{s: s})
	s.session.Workers = cfg.Workers
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tensors", s.handleIngest)
	mux.HandleFunc("POST /v1/tensors/{id}/delta", s.handleDelta)
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/tensors/{id}/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	if s.cluster != nil {
		mux.HandleFunc("GET /internal/v1/artifact/{key}", s.requireClusterAuth(s.handleInternalArtifactGet))
		mux.HandleFunc("PUT /internal/v1/artifact/{key}", s.requireClusterAuth(s.handleInternalArtifactPut))
		mux.HandleFunc("POST /internal/v1/optimize", s.requireClusterAuth(s.handleInternalOptimize))
		mux.HandleFunc("POST /internal/v1/predict", s.requireClusterAuth(s.handleInternalPredict))
		mux.HandleFunc("POST /internal/v1/batch", s.requireClusterAuth(s.handleInternalBatch))
		mux.HandleFunc("GET /internal/v1/ping", s.requireClusterAuth(s.handleInternalPing))
	}
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler: the route mux wrapped with
// the version header and the per-request timeout.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-D2T2-Version", buildinfo.Version)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		s.mux.ServeHTTP(w, r.WithContext(ctx))
	})
}

// ListenAndServe runs the service on addr until Shutdown. A clean
// shutdown returns nil. The underlying http.Server carries the
// Config's connection timeouts so a client trickling bytes (slowloris)
// cannot hold a connection open indefinitely.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	err := srv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the service gracefully: readiness flips to 503 first
// (load balancers stop routing here while in-flight work is still
// finishing), then the HTTP server (when started via ListenAndServe)
// stops accepting and drains in-flight handlers bounded by ctx, then
// the ingest pool stops and every worker is joined, then every
// coalescing flight runner is joined (after the pool refuses work, a
// straggling flight terminates promptly with ErrShuttingDown), and
// finally the cluster's replication goroutines are cancelled and
// joined. Requests that race past the drain are refused with 503.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	s.pool.shutdown()
	s.flights.join()
	if s.cluster != nil {
		s.cluster.close()
	}
	return err
}

// Metric returns a counter's current value — the e2e tests difference
// these to prove the warm path skipped collection.
func (s *Server) Metric(name string) int64 { return s.metrics.get(name) }

// Vars exposes the server's expvar map so a single-server process
// (cmd/d2t2d) can publish it globally.
func (s *Server) Vars() expvar.Var { return s.metrics.vars }

// storeGet reads an artifact through the full ladder — local memory,
// local disk, then (clustered) the key's owner peer and the rest of the
// ring — and counts which layer served it. Peer bytes are CRC-verified
// by the client and cache-filled locally (without re-replication: the
// producing node already drove placement for the key).
func (s *Server) storeGet(ctx context.Context, key string) ([]byte, Source) {
	b, src, err := s.store.Get(key)
	if err == nil && b != nil {
		switch src {
		case SourceMem:
			s.metrics.add("artifact_mem_hits", 1)
		case SourceDisk:
			s.metrics.add("artifact_disk_hits", 1)
		}
		return b, src
	}
	if s.cluster != nil {
		if pb := s.peerFetch(ctx, key); pb != nil {
			s.metrics.add("artifact_peer_hits", 1)
			_ = s.store.Put(key, pb)
			return pb, SourcePeer
		}
	}
	s.metrics.add("artifact_misses", 1)
	return nil, SourceNone
}

// storeCache plugs the artifact store into the d2t2 Session as its
// statistics cache. StoreStats only runs after an actual collection, so
// stats_collect_total counts real tile-and-collect work — the counter
// the e2e test asserts stays flat across warm requests. The request
// context rides through LoadStats so a statistics miss can try the
// key's owner peer before the session re-collects.
type storeCache struct {
	s *Server
}

func (c *storeCache) LoadStats(ctx context.Context, key string) (*stats.Stats, bool) {
	b, _ := c.s.storeGet(ctx, key)
	if b == nil {
		return nil, false
	}
	a, err := snapshot.DecodeBytes(b)
	if err != nil || a.Stats == nil {
		return nil, false
	}
	return a.Stats, true
}

func (c *storeCache) StoreStats(ctx context.Context, key string, st *stats.Stats, tiled *tiling.TiledTensor) {
	c.s.metrics.add("stats_collect_total", 1)
	b, err := snapshot.EncodeBytes(&snapshot.Artifact{Stats: st, Tiled: tiled})
	if err != nil {
		return
	}
	// Best effort: a failed persist only costs a future re-collection.
	_ = c.s.store.Put(key, b)
	c.s.maybeReplicate(key, b)
}

// LoadPartial / StorePartial / StoreMergedStats implement the session's
// PartialCache extension: mergeable statistics accumulators ride the
// same content-addressed artifact ladder (as PART snapshot sections).
// StoreMergedStats lands finalized statistics produced by a merge under
// its own counter — stats_collect_total keeps meaning "an actual
// tile-and-collect ran", the invariant the e2e tests difference.
func (c *storeCache) LoadPartial(ctx context.Context, key string) (*stats.Partial, bool) {
	b, _ := c.s.storeGet(ctx, key)
	if b == nil {
		return nil, false
	}
	a, err := snapshot.DecodeBytes(b)
	if err != nil || a.Partial == nil {
		return nil, false
	}
	return a.Partial, true
}

func (c *storeCache) StorePartial(ctx context.Context, key string, p *stats.Partial) {
	b, err := snapshot.EncodeBytes(&snapshot.Artifact{Partial: p})
	if err != nil {
		return
	}
	_ = c.s.store.Put(key, b)
	c.s.maybeReplicate(key, b)
}

func (c *storeCache) StoreMergedStats(ctx context.Context, key string, st *stats.Stats) {
	c.s.metrics.add("stats_merge_total", 1)
	b, err := snapshot.EncodeBytes(&snapshot.Artifact{Stats: st})
	if err != nil {
		return
	}
	_ = c.s.store.Put(key, b)
	c.s.maybeReplicate(key, b)
}

// ---- request/response shapes ----

type genSpec struct {
	Label string `json:"label"`
	Scale int    `json:"scale"`
}

type ingestRequest struct {
	Gen *genSpec `json:"gen"`
}

type ingestResponse struct {
	ID     string `json:"id"`
	Dims   []int  `json:"dims"`
	NNZ    int    `json:"nnz"`
	Cached bool   `json:"cached"`
}

type optimizeRequest struct {
	// Kernel is tensor index notation, e.g.
	// "C(i,j) = A(i,k) * B(k,j) | order: i,k,j".
	Kernel string `json:"kernel"`
	// Inputs maps operand names to ingested tensor content addresses.
	Inputs map[string]string `json:"inputs"`
	// Tile sizes the buffer as a dense square tile of this side when
	// BufferWords is zero (default 128).
	Tile         int  `json:"tile,omitempty"`
	BufferWords  int  `json:"bufferWords,omitempty"`
	Analytic     bool `json:"analytic,omitempty"`
	DisableCorrs bool `json:"disableCorrs,omitempty"`
	SkipResize   bool `json:"skipResize,omitempty"`
	// Measure additionally executes the plan and reports exact traffic.
	Measure bool `json:"measure,omitempty"`
	// OverflowTarget enables risk-aware overbooking (see DESIGN.md §18):
	// the acceptable predicted tile-overflow probability, in [0, 1).
	// Zero (or absent) keeps the conservative pipeline and — via
	// omitempty — the exact canonical bytes and response key previous
	// releases produced, so risk points never alias conservative ones.
	OverflowTarget float64 `json:"overflow_target,omitempty"`
	// Calibrate additionally executes the chosen plan and folds the
	// measured-vs-predicted residual into the server session's
	// calibration store. Calibrated responses are stateful (the residual
	// evolves run over run) so they bypass the response cache entirely.
	Calibrate bool `json:"calibrate,omitempty"`
}

// riskResponse mirrors the plan's RiskSummary on the wire; present only
// for overbooked or calibrated requests (omitempty keeps conservative
// response bodies byte-identical to previous releases).
type riskResponse struct {
	OverflowTarget        float64  `json:"overflowTarget"`
	PercentileTile        int      `json:"percentileTile"`
	PredictedOverflowRate float64  `json:"predictedOverflowRate"`
	BufferUtilization     float64  `json:"bufferUtilization"`
	MeasuredOverflowRate  *float64 `json:"measuredOverflowRate,omitempty"`
	CalibrationResidual   *float64 `json:"calibrationResidual,omitempty"`
	CalibrationBias       *float64 `json:"calibrationBias,omitempty"`
}

type optimizeResponse struct {
	Kernel      string         `json:"kernel"`
	Config      map[string]int `json:"config"`
	BaseTile    int            `json:"baseTile"`
	RF          float64        `json:"rf"`
	TileFactor  int            `json:"tileFactor"`
	PredictedMB float64        `json:"predictedMB"`
	MeasuredMB  *float64       `json:"measuredMB,omitempty"`
	Risk        *riskResponse  `json:"risk,omitempty"`
}

type predictRequest struct {
	Kernel    string            `json:"kernel"`
	Inputs    map[string]string `json:"inputs"`
	Config    map[string]int    `json:"config"`
	StatsTile int               `json:"statsTile,omitempty"`
	// OverflowTarget keys risk-separated predictions (a nonzero value
	// gets its own response key and X-D2T2-Risk header, never aliasing
	// the conservative point); Calibrate applies the session's learned
	// residual bias for the kernel's workload class to the prediction —
	// stateful, so calibrated predicts bypass the response cache.
	OverflowTarget float64 `json:"overflow_target,omitempty"`
	Calibrate      bool    `json:"calibrate,omitempty"`
}

type predictResponse struct {
	PredictedMB float64 `json:"predictedMB"`
	// CalibrationBias reports the workload-class bias applied when the
	// request set calibrate (absent otherwise).
	CalibrationBias *float64 `json:"calibrationBias,omitempty"`
}

type statsResponse struct {
	ID        string    `json:"id"`
	Tile      int       `json:"tile"`
	SizeTile  float64   `json:"sizeTile"`
	MaxTile   int       `json:"maxTile"`
	NumTiles  int       `json:"numTiles"`
	PrTileIdx []float64 `json:"prTileIdx"`
	ProbIndex []float64 `json:"probIndex"`
	CorrSums  []float64 `json:"corrSums"`
}

// ---- handlers ----

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.metrics.add("ingest_total", 1)
	// Buffer the upload on the handler goroutine before hand-off: a
	// worker must never touch the request (net/http forbids reads after
	// ServeHTTP returns, so a job abandoned at the deadline would race
	// the exiting handler). JSON gen specs are tiny; raw tensor bodies
	// are bounded by MaxUploadBytes. The read itself is bounded by the
	// server's ReadTimeout, so a slow-trickling client cannot pin the
	// handler forever.
	asJSON := isJSONContentType(r.Header.Get("Content-Type"))
	limit := s.cfg.MaxUploadBytes
	if asJSON {
		limit = s.jsonBodyLimit()
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		s.metrics.add("ingest_errors", 1)
		// An over-limit body is the client's size problem, not a malformed
		// request: report 413 with the limit, distinctly counted, so
		// operators can tell "uploads too big" from "uploads broken".
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.metrics.add("ingest_too_large", 1)
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("upload exceeds the %d-byte limit", mbe.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("read upload: %w", err))
		return
	}
	var resp ingestResponse
	var jobErr error
	ctx := r.Context()
	job := func() { resp, jobErr = s.ingest(ctx, asJSON, body) }
	if err := s.runCompute(r.Context(), job); err != nil {
		// Abandoned while queued (never ran) or at the deadline after
		// hand-off — in the latter case the worker finishes the buffered
		// job on its own (the artifact lands in the cache for a retry)
		// and resp/jobErr must not be read.
		s.metrics.add("ingest_errors", 1)
		s.writeComputeError(w, err, http.StatusInternalServerError)
		return
	}
	if jobErr != nil {
		s.metrics.add("ingest_errors", 1)
		s.writeError(w, http.StatusBadRequest, jobErr)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ingest parses one buffered upload (raw .mtx/.tns bytes, or a JSON
// internal/gen spec), registers it under its content address, and
// persists the tensor artifact (replicating it toward its ring
// placement when clustered, so other nodes can resolve the content
// address without a peer round-trip at optimize time). Runs on a pool
// worker and must not touch the originating request — ctx is the
// request's context, carried for the cache ladder only.
func (s *Server) ingest(ctx context.Context, asJSON bool, body []byte) (ingestResponse, error) {
	var t *d2t2.Tensor
	if asJSON {
		var req ingestRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return ingestResponse{}, fmt.Errorf("decode request: %w", err)
		}
		if req.Gen == nil {
			return ingestResponse{}, fmt.Errorf("JSON ingest requires a \"gen\" spec")
		}
		var err error
		t, err = d2t2.Dataset(req.Gen.Label, req.Gen.Scale)
		if err != nil {
			return ingestResponse{}, err
		}
	} else {
		var err error
		t, err = d2t2.FromStream(bytes.NewReader(body))
		if err != nil {
			return ingestResponse{}, err
		}
	}
	t.Normalize()
	id, t, cached, err := s.registerTensor(ctx, t)
	if err != nil {
		return ingestResponse{}, err
	}
	return ingestResponse{ID: id, Dims: t.Dims(), NNZ: t.NNZ(), Cached: cached}, nil
}

// registerTensor registers a normalized tensor under its content address
// and persists the tensor artifact so later process lives (and, when
// clustered, peers) can resolve the address. Returns the canonical
// registered tensor — the first registration wins so the session memo
// stays keyed to one value — and whether the content was already known.
// A failed store write is counted and skips replication: pushing an
// artifact the local node could not durably hold would advertise state
// it cannot back.
func (s *Server) registerTensor(ctx context.Context, t *d2t2.Tensor) (string, *d2t2.Tensor, bool, error) {
	id, err := s.session.TensorID(t)
	if err != nil {
		return "", nil, false, err
	}
	s.mu.Lock()
	existing, ok := s.tensors[id]
	if !ok {
		s.tensors[id] = t
	}
	s.mu.Unlock()
	if ok {
		t = existing
	} else {
		s.metrics.add("tensors_registered", 1)
	}

	cached := ok
	if !cached {
		if b, _ := s.storeGet(ctx, id); b != nil {
			cached = true
		} else if b, err := snapshot.EncodeBytes(&snapshot.Artifact{Tensor: t.COO()}); err == nil {
			if perr := s.store.Put(id, b); perr != nil {
				s.metrics.add("store_put_errors", 1)
			} else {
				s.maybeReplicate(id, b)
			}
		}
	}
	return id, t, cached, nil
}

// jsonBodyLimit bounds a structured (JSON) request body: 1 MiB — far
// above any real request — further clamped to MaxUploadBytes when the
// operator set the global upload bound even lower, so no body of any
// content type can exceed the configured ceiling.
func (s *Server) jsonBodyLimit() int64 {
	const structuredLimit = 1 << 20
	if s.cfg.MaxUploadBytes < structuredLimit {
		return s.cfg.MaxUploadBytes
	}
	return structuredLimit
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.optimize(w, r, false)
}

// handleInternalOptimize serves a forwarded optimize on the key's
// owner: the same pipeline as the public route, but the forward rung is
// disabled, so a forward terminates here even if ring views disagree —
// a request can hop at most once.
func (s *Server) handleInternalOptimize(w http.ResponseWriter, r *http.Request) {
	s.optimize(w, r, true)
}

// optimize is the shared optimize pipeline. internal marks a forwarded
// request arriving on the authenticated peer route. The ladder per key:
// local cache (mem → disk → peer read-through), then — public route on
// a non-owner only — forward to the owner so its singleflight coalesces
// the cold run fleet-wide, then local compute as the always-available
// fallback.
func (s *Server) optimize(w http.ResponseWriter, r *http.Request, internal bool) {
	start := time.Now()
	defer func() { s.metrics.observeLatency(time.Since(start)) }()
	s.metrics.add("optimize_total", 1)

	var req optimizeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.jsonBodyLimit())).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	k, err := d2t2.ParseKernel(req.Kernel)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.OverflowTarget < 0 || req.OverflowTarget >= 1 {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("overflow_target %v outside [0, 1)", req.OverflowTarget))
		return
	}
	orders := k.InputOrders()
	if req.BufferWords <= 0 {
		tile := req.Tile
		if tile <= 0 {
			tile = s.cfg.DefaultStatsTile
		}
		req.BufferWords = denseSquareWords(tile, maxOrder(orders))
	}
	req.Tile = 0
	req.Kernel = k.String()
	if req.OverflowTarget > 0 {
		s.metrics.add("optimize_overbooked", 1)
	}

	key, canon, err := responseKey("optimize", req)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("X-D2T2-Key", key)
	// The risk header is derived from the request knobs alone, so warm,
	// coalesced and cold responses all advertise the same risk point.
	if h := riskHeader(req.OverflowTarget, req.Calibrate); h != "" {
		w.Header().Set("X-D2T2-Risk", h)
	}
	// Calibrated responses are stateful (the class bias advances on every
	// run), so they never serve from — or land in — the response cache.
	if !req.Calibrate && s.serveCachedResponse(r.Context(), w, key, "optimize_cache_hits") {
		return
	}
	if !internal && s.cluster != nil && !s.cluster.owns(key) {
		if s.forwardToOwner(w, r, "optimize", key, canon) {
			return
		}
	}

	inputs, err := s.resolveInputs(r.Context(), orders, req.Inputs)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	// The cold pipeline runs once per distinct request content: identical
	// concurrent requests coalesce onto one flight and share the leader's
	// bytes. The pipeline itself runs on the bounded pool under the
	// FLIGHT context — cancelled only when every coalesced participant
	// has left — so a deadline or disconnect still stops abandoned
	// compute at its next work-item boundary, but one follower hanging
	// up never kills the run for the rest.
	body, coalesced, err := s.flights.do(r.Context(), key, func(fctx context.Context) ([]byte, error) {
		var resp optimizeResponse
		var jobErr error
		job := func() {
			plan, err := s.session.OptimizeCtx(fctx, k, inputs, d2t2.Options{
				BufferWords:    req.BufferWords,
				Analytic:       req.Analytic,
				DisableCorrs:   req.DisableCorrs,
				SkipResize:     req.SkipResize,
				OverflowTarget: req.OverflowTarget,
				Calibrate:      req.Calibrate,
			})
			if err != nil {
				jobErr = err
				return
			}
			resp = optimizeResponse{
				Kernel:      req.Kernel,
				Config:      plan.Config,
				BaseTile:    plan.BaseTile,
				RF:          plan.RF,
				TileFactor:  plan.TileFactor,
				PredictedMB: plan.PredictedMB,
				Risk:        riskOf(plan),
			}
			if plan.Risk != nil && plan.Risk.Calibration != nil {
				s.metrics.add("calibration_runs", 1)
			}
			if req.Measure {
				report, err := plan.MeasureCtx(fctx)
				if err != nil {
					jobErr = err
					return
				}
				mb := report.TotalMB()
				resp.MeasuredMB = &mb
				if resp.Risk != nil {
					rate := report.OverflowRate()
					resp.Risk.MeasuredOverflowRate = &rate
				}
			}
		}
		if err := s.runCompute(fctx, job); err != nil {
			return nil, err
		}
		if jobErr != nil {
			return nil, &pipelineError{err: jobErr}
		}
		if req.Calibrate {
			return marshalBody(resp)
		}
		return s.marshalAndPersist(key, resp)
	})
	if err != nil {
		s.writeFlightError(w, err)
		return
	}
	s.writeBody(w, cacheStatus(coalesced), body)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.predict(w, r, false)
}

// handleInternalPredict serves a forwarded predict on the key's owner;
// like handleInternalOptimize it never forwards again.
func (s *Server) handleInternalPredict(w http.ResponseWriter, r *http.Request) {
	s.predict(w, r, true)
}

// predict is the shared predict pipeline; see optimize for the ladder.
func (s *Server) predict(w http.ResponseWriter, r *http.Request, internal bool) {
	s.metrics.add("predict_total", 1)
	var req predictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.jsonBodyLimit())).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	k, err := d2t2.ParseKernel(req.Kernel)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.OverflowTarget < 0 || req.OverflowTarget >= 1 {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("overflow_target %v outside [0, 1)", req.OverflowTarget))
		return
	}
	if req.StatsTile <= 0 {
		req.StatsTile = s.cfg.DefaultStatsTile
	}
	req.Kernel = k.String()

	key, canon, err := responseKey("predict", req)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("X-D2T2-Key", key)
	if h := riskHeader(req.OverflowTarget, req.Calibrate); h != "" {
		w.Header().Set("X-D2T2-Risk", h)
	}
	// Bias-adjusted predictions are stateful like calibrated optimizes:
	// never served from or persisted to the response cache.
	if !req.Calibrate && s.serveCachedResponse(r.Context(), w, key, "predict_cache_hits") {
		return
	}
	if !internal && s.cluster != nil && !s.cluster.owns(key) {
		if s.forwardToOwner(w, r, "predict", key, canon) {
			return
		}
	}

	inputs, err := s.resolveInputs(r.Context(), k.InputOrders(), req.Inputs)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	body, coalesced, err := s.flights.do(r.Context(), key, func(fctx context.Context) ([]byte, error) {
		var mb float64
		var jobErr error
		job := func() {
			mb, jobErr = s.session.PredictCtx(fctx, k, inputs, d2t2.TileConfig(req.Config), req.StatsTile)
		}
		if err := s.runCompute(fctx, job); err != nil {
			return nil, err
		}
		if jobErr != nil {
			return nil, &pipelineError{err: jobErr}
		}
		if req.Calibrate {
			bias := s.session.CalibrationBias(k, false)
			return marshalBody(predictResponse{PredictedMB: mb * bias, CalibrationBias: &bias})
		}
		return s.marshalAndPersist(key, predictResponse{PredictedMB: mb})
	})
	if err != nil {
		s.writeFlightError(w, err)
		return
	}
	s.writeBody(w, cacheStatus(coalesced), body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.metrics.add("stats_queries_total", 1)
	id := r.PathValue("id")
	tile := s.cfg.DefaultStatsTile
	if q := r.URL.Query().Get("tile"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad tile %q", q))
			return
		}
		tile = v
	}
	ctx := r.Context()
	t, err := s.tensorByID(ctx, id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	var sum *d2t2.StatsSummary
	var jobErr error
	job := func() { sum, jobErr = s.session.StatsCtx(ctx, t, tile) }
	if err := s.runCompute(ctx, job); err != nil {
		s.writeComputeError(w, err, http.StatusInternalServerError)
		return
	}
	if jobErr != nil {
		s.writeComputeError(w, jobErr, http.StatusUnprocessableEntity)
		return
	}
	s.writeJSON(w, http.StatusOK, statsResponse{
		ID:        id,
		Tile:      tile,
		SizeTile:  sum.SizeTile,
		MaxTile:   sum.MaxTile,
		NumTiles:  sum.NumTiles,
		PrTileIdx: sum.PrTileIdx,
		ProbIndex: sum.ProbIndex,
		CorrSums:  sum.CorrSums,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.tensors)
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"version": buildinfo.Version,
		"tensors": n,
	})
}

// handleReadyz is the readiness probe, distinct from /healthz on
// purpose: /healthz answers "is the process alive" unconditionally,
// while /readyz answers "should a load balancer route new work here" —
// false while draining, when the compute pool stopped accepting, when
// the artifact store's write path is broken, or (clustered) when no
// configured peer is reachable.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := s.readiness(r.Context()); err != nil {
		s.metrics.add("readyz_unready", 1)
		// Unreadiness is a routing signal, not an error — keep it out of
		// http_errors so drains don't light up error dashboards.
		s.writeErrorStatus(w, http.StatusServiceUnavailable, err, false)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// readiness reports why the node should not receive new work, nil when
// it should.
func (s *Server) readiness(ctx context.Context) error {
	if s.draining.Load() {
		return fmt.Errorf("serve: draining")
	}
	if !s.pool.accepting() {
		return fmt.Errorf("serve: compute pool not accepting work")
	}
	if err := s.store.Writable(); err != nil {
		return err
	}
	if s.cluster != nil {
		if err := s.cluster.anyPeerReachable(ctx); err != nil {
			return fmt.Errorf("serve: ring not formed: %w", err)
		}
	}
	return nil
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	body := fmt.Sprintf("{\"version\": %q, \"d2t2d\": %s}\n", buildinfo.Version, s.metrics.vars.String())
	s.metrics.add("bytes_served", int64(len(body)))
	fmt.Fprint(w, body)
}

// ---- plumbing ----

// responseKey derives the content address of a canonical request: the
// struct is re-marshaled after defaults are applied and the kernel is
// normalized, so equivalent requests collide onto one cached response.
// The canonical bytes are returned too — they are the exact body a
// non-owner forwards, so the owner derives the identical key.
func responseKey(endpoint string, req any) (string, []byte, error) {
	canon, err := json.Marshal(req)
	if err != nil {
		return "", nil, err
	}
	return snapshot.ResponseKey(endpoint, canon), canon, nil
}

// riskHeader renders the X-D2T2-Risk header value for a request's risk
// knobs, "" when the request is purely conservative. Derived from the
// request, not the computation, so all cache states agree.
func riskHeader(target float64, calibrate bool) string {
	if target <= 0 && !calibrate {
		return ""
	}
	h := fmt.Sprintf("target=%g", target)
	if calibrate {
		h += "; calibrate"
	}
	return h
}

// riskOf maps a plan's risk summary onto the wire shape (nil for
// conservative plans, keeping their response bodies byte-identical).
func riskOf(plan *d2t2.Plan) *riskResponse {
	rk := plan.Risk
	if rk == nil {
		return nil
	}
	resp := &riskResponse{
		OverflowTarget:        rk.OverflowTarget,
		PercentileTile:        rk.PercentileTile,
		PredictedOverflowRate: rk.PredictedOverflowRate,
		BufferUtilization:     rk.BufferUtilization,
	}
	if c := rk.Calibration; c != nil {
		resp.CalibrationResidual = &c.Residual
		resp.CalibrationBias = &c.BiasAfter
		resp.MeasuredOverflowRate = &c.MeasuredOverflowRate
	}
	return resp
}

// marshalBody marshals a response without persisting it — the stateful
// (calibrated) variant of marshalAndPersist.
func marshalBody(resp any) ([]byte, error) {
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// serveCachedResponse replies with the cached response body for key when
// present. Cache state travels in the X-D2T2-Cache header, never in the
// body, so every state serves byte-identical bodies.
func (s *Server) serveCachedResponse(ctx context.Context, w http.ResponseWriter, key, counter string) bool {
	b, src := s.storeGet(ctx, key)
	if b == nil {
		return false
	}
	body, ok := decodeResponseArtifact(b)
	if !ok {
		return false
	}
	s.metrics.add(counter, 1)
	s.writeBody(w, s.cacheStateFor(key, src), body)
	return true
}

// decodeResponseArtifact extracts the response body from an artifact's
// bytes; ok is false when the bytes don't decode or hold no RESP
// section.
func decodeResponseArtifact(b []byte) ([]byte, bool) {
	a, err := snapshot.DecodeBytes(b)
	if err != nil || a.Response == nil {
		return nil, false
	}
	return a.Response, true
}

// cacheStateFor names a warm artifact hit for the X-D2T2-Cache header:
// "peer" when the bytes were read through from a cluster peer just now,
// "replica" for a local hit on a key this node does not own (the copy
// landed here via replication or an earlier read-through), and "hit"
// for a local hit on an owned key or any unclustered hit.
func (s *Server) cacheStateFor(key string, src Source) string {
	if src == SourcePeer {
		return "peer"
	}
	if s.cluster != nil && !s.cluster.owns(key) {
		s.metrics.add("replica_hits", 1)
		return "replica"
	}
	return "hit"
}

// marshalAndPersist marshals resp once, persists it as a RESP artifact
// under key, and returns the exact bytes every coalesced participant is
// served. Runs inside the flight (before the flight detaches from its
// key), so a request arriving after the flight lands always finds the
// artifact — there is no window where it would re-run the pipeline.
func (s *Server) marshalAndPersist(key string, resp any) ([]byte, error) {
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	s.persistResponseBytes(key, body, true)
	return body, nil
}

// persistResponseBytes persists one response body as a RESP artifact
// under key, best-effort (a failed persist only costs a future re-run
// or forward). replicate pushes the artifact toward its ring placement
// and is set only by producers — cache fills from forwards and peer
// fetches must not re-push, or every read would re-fan the artifact
// out.
func (s *Server) persistResponseBytes(key string, body []byte, replicate bool) {
	b, err := snapshot.EncodeBytes(&snapshot.Artifact{Response: body})
	if err != nil {
		return
	}
	_ = s.store.Put(key, b)
	if replicate {
		s.maybeReplicate(key, b)
	}
}

// cacheStatus names how a coalesced response was produced for the
// X-D2T2-Cache header: the flight leader reports "miss" (it ran the
// pipeline), followers report "coalesced" (they shared the leader's
// run). Warm requests report "hit" via serveCachedResponse.
func cacheStatus(coalesced bool) string {
	if coalesced {
		return "coalesced"
	}
	return "miss"
}

// writeBody serves one JSON body with its cache-status header; every
// cache state serves byte-identical bodies, only the header differs.
func (s *Server) writeBody(w http.ResponseWriter, status string, body []byte) {
	w.Header().Set("X-D2T2-Cache", status)
	w.Header().Set("Content-Type", "application/json")
	s.metrics.add("bytes_served", int64(len(body)))
	w.Write(body)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	s.metrics.add("bytes_served", int64(len(body)))
	w.Write(body)
}

// statusClientClosedRequest is nginx's conventional status for "the
// client went away before the response was ready". No RFC status fits,
// and the client will never read it — it exists for logs and counters.
const statusClientClosedRequest = 499

// runCompute submits a CPU-bound job to the bounded pool and accounts
// the two abandonment modes the pool distinguishes: expired while still
// queued (the job never ran) vs. expired after a worker took it (the
// worker winds the job down on its own ctx check; its outputs must not
// be read).
func (s *Server) runCompute(ctx context.Context, job func()) error {
	started, err := s.pool.run(ctx, job)
	if err != nil && !errors.Is(err, ErrShuttingDown) {
		if started {
			s.metrics.add("pool_abandoned_running", 1)
		} else {
			s.metrics.add("pool_abandoned_queued", 1)
		}
	}
	return err
}

// pipelineError marks a cold-pipeline domain failure (bad kernel,
// unresolvable shapes) as distinct from infrastructure failures, so a
// flight can fan one failure out to every coalesced participant and the
// handler still maps it to 422 rather than 500.
type pipelineError struct{ err error }

func (e *pipelineError) Error() string { return e.err.Error() }
func (e *pipelineError) Unwrap() error { return e.err }

// writeFlightError maps a coalesced compute failure: pipeline domain
// errors are the request's fault (422), everything else — the caller's
// own dead context, pool shutdown, a marshal failure — goes through the
// compute-error mapping (499/504/503/500).
func (s *Server) writeFlightError(w http.ResponseWriter, err error) {
	var perr *pipelineError
	if errors.As(err, &perr) {
		s.writeComputeError(w, perr.err, http.StatusUnprocessableEntity)
		return
	}
	s.writeComputeError(w, err, http.StatusInternalServerError)
}

// writeComputeError maps a compute-path failure to a response. Context
// errors get dedicated accounting: a deadline expiry is the server's
// fault (504, counted in http_errors and requests_timeout), while a
// client disconnect is nobody's error — it increments only
// requests_cancelled and reports 499 without touching http_errors, so
// error dashboards are not polluted by clients hanging up. Pool
// shutdown maps to 503 (load-shed, retry elsewhere); anything else
// falls through to the given status.
func (s *Server) writeComputeError(w http.ResponseWriter, err error, fallback int) {
	switch {
	case errors.Is(err, context.Canceled):
		s.metrics.add("requests_cancelled", 1)
		s.writeErrorStatus(w, statusClientClosedRequest, err, false)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.add("requests_timeout", 1)
		s.writeErrorStatus(w, http.StatusGatewayTimeout, err, true)
	case errors.Is(err, ErrShuttingDown):
		s.writeErrorStatus(w, http.StatusServiceUnavailable, err, true)
	default:
		s.writeErrorStatus(w, fallback, err, true)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeErrorStatus(w, status, err, true)
}

func (s *Server) writeErrorStatus(w http.ResponseWriter, status int, err error, countErr bool) {
	if countErr {
		s.metrics.add("http_errors", 1)
	}
	body, merr := json.Marshal(map[string]string{"error": err.Error()})
	if merr != nil {
		http.Error(w, err.Error(), status)
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	s.metrics.add("bytes_served", int64(len(body)))
	w.Write(body)
}

// resolveInputs maps operand names to registered tensors, loading tensor
// artifacts from the store for addresses registered by an earlier
// process life — or, clustered, ingested on a different node.
func (s *Server) resolveInputs(ctx context.Context, orders map[string]int, ids map[string]string) (d2t2.Inputs, error) {
	inputs := make(d2t2.Inputs, len(ids))
	for name := range orders {
		id, ok := ids[name]
		if !ok {
			return nil, fmt.Errorf("missing input %q", name)
		}
		t, err := s.tensorByID(ctx, id)
		if err != nil {
			return nil, err
		}
		inputs[name] = t
	}
	return inputs, nil
}

// tensorByID returns the registered tensor for a content address,
// falling back to the artifact store (a persisted ingest from a previous
// run of the daemon, or — through the peer rung — an ingest that landed
// on another cluster node).
func (s *Server) tensorByID(ctx context.Context, id string) (*d2t2.Tensor, error) {
	s.mu.Lock()
	t, ok := s.tensors[id]
	s.mu.Unlock()
	if ok {
		return t, nil
	}
	b, _ := s.storeGet(ctx, id)
	if b == nil {
		return nil, fmt.Errorf("unknown tensor %q", id)
	}
	a, err := snapshot.DecodeBytes(b)
	if err != nil {
		return nil, fmt.Errorf("tensor artifact %q: %w", id, err)
	}
	if a.Tensor == nil {
		return nil, fmt.Errorf("artifact %q holds no tensor", id)
	}
	t = d2t2.FromCOO(a.Tensor)
	s.mu.Lock()
	if prior, ok := s.tensors[id]; ok {
		t = prior // lost the reload race; keep one canonical value
	} else {
		s.tensors[id] = t
		s.metrics.add("tensors_registered", 1)
	}
	s.mu.Unlock()
	return t, nil
}

// isJSONContentType reports whether a Content-Type header names a JSON
// body, using real media-type parsing so parameterized ("application/json;
// charset=utf-8"), oddly-cased ("Application/JSON") and structured-suffix
// ("application/problem+json") variants all classify correctly. A missing
// or malformed header is not JSON — the ingest path then treats the body
// as the binary stream format.
func isJSONContentType(ct string) bool {
	if ct == "" {
		return false
	}
	mediaType, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mediaType == "application/json" || strings.HasSuffix(mediaType, "+json")
}

func maxOrder(orders map[string]int) int {
	max := 2
	for _, n := range orders {
		if n > max {
			max = n
		}
	}
	return max
}

// denseSquareWords sizes a buffer for a dense square tile of the given
// side and order, like the CLI's -tile flag.
func denseSquareWords(tile, order int) int {
	dims := make([]int, order)
	for i := range dims {
		dims[i] = tile
	}
	return d2t2.DenseTileWords(dims...)
}
