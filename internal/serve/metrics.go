package serve

import (
	"expvar"
	"fmt"
	"time"
)

// counterNames are pre-registered so /debug/vars reports explicit zeros
// for counters that have not fired yet — dashboards and the e2e tests
// can difference them without existence checks.
var counterNames = []string{
	"ingest_total",
	"ingest_errors",
	"ingest_too_large",
	"store_put_errors",
	"tensors_registered",
	"delta_total",
	"delta_merges",
	"delta_errors",
	"batch_total",
	"batch_jobs_total",
	"batch_job_errors",
	"batch_cache_hits",
	"batch_forwarded_jobs",
	"batch_local_jobs",
	"stats_merge_total",
	"artifact_mem_hits",
	"artifact_disk_hits",
	"artifact_misses",
	"stats_collect_total",
	"optimize_total",
	"optimize_cache_hits",
	"optimize_overbooked",
	"calibration_runs",
	"predict_total",
	"predict_cache_hits",
	"stats_queries_total",
	"bytes_served",
	"http_errors",
	"requests_timeout",
	"requests_cancelled",
	"pool_abandoned_queued",
	"pool_abandoned_running",
	"singleflight_leader",
	"singleflight_shared",
	"singleflight_detached",
	"pool_coalesced",
	"artifact_peer_hits",
	"peer_fetch_misses",
	"peer_fetch_errors",
	"forward_attempts",
	"forward_success",
	"forward_fallback_local",
	"replicate_pushes",
	"replicate_errors",
	"replica_hits",
	"internal_artifact_serves",
	"internal_artifact_stores",
	"internal_requests_total",
	"internal_auth_failures",
	"readyz_unready",
}

// Per-peer counter kinds, indexed in lockstep with peerKindNames. The
// full per-peer name set (peer_<i>_<kind>) is built once at server
// construction — like latencyBucketNames, names handed to expvar are
// never computed per call.
const (
	peerFetchHits = iota
	peerFetchMisses
	peerFetchErrors
	peerForwards
	peerReplicas
	peerKindCount
)

var peerKindNames = [peerKindCount]string{
	"fetch_hits",
	"fetch_misses",
	"fetch_errors",
	"forwards",
	"replicas",
}

// latencyBucketsMs are the upper bounds (inclusive, milliseconds) of the
// optimize-latency histogram; the final bucket is unbounded.
var latencyBucketsMs = []int64{1, 5, 25, 100, 500, 2500}

// latencyBucketNames is the fixed counter-name set of the histogram,
// built once at init and indexed in lockstep with latencyBucketsMs —
// names handed to expvar are never computed per call (countername
// enforces this).
var latencyBucketNames = func() []string {
	names := make([]string, len(latencyBucketsMs))
	for i, b := range latencyBucketsMs {
		names[i] = latencyBucket(b)
	}
	return names
}()

// metrics is a per-server expvar surface. The map is Init'd but never
// expvar.Publish'd under a fixed name: tests start many servers in one
// process and a global Publish of a duplicate name panics. cmd/d2t2d
// publishes its single server's map explicitly.
type metrics struct {
	vars *expvar.Map
	// peerNames[i][kind] is the fixed counter name for peer i — built
	// once by initPeerCounters when the server is clustered, so per-peer
	// accounting indexes a pre-registered name set.
	peerNames [][peerKindCount]string
}

func newMetrics() *metrics {
	m := &metrics{vars: new(expvar.Map).Init()}
	for _, name := range counterNames {
		m.vars.Add(name, 0)
	}
	for _, name := range latencyBucketNames {
		m.vars.Add(name, 0)
	}
	m.vars.Add("optimize_latency_ms_gt_2500", 0)
	return m
}

// latencyBucket formats one histogram counter name. Production code
// goes through latencyBucketNames; this stays exported-to-tests so
// expectations can name buckets without duplicating the format.
func latencyBucket(upperMs int64) string {
	return fmt.Sprintf("optimize_latency_ms_le_%d", upperMs)
}

// initPeerCounters registers the per-peer counter set for n peers.
// Called once from New (before the server takes traffic), so the names
// exist with explicit zeros before any peer call fires. Peer indexes
// follow Config.Peers order.
func (m *metrics) initPeerCounters(n int) {
	m.peerNames = make([][peerKindCount]string, n)
	for i := range m.peerNames {
		for k := 0; k < peerKindCount; k++ {
			m.peerNames[i][k] = fmt.Sprintf("peer_%d_%s", i, peerKindNames[k])
			m.vars.Add(m.peerNames[i][k], 0)
		}
	}
}

func (m *metrics) add(name string, delta int64) { m.vars.Add(name, delta) }

// addPeer bumps one per-peer counter; peer indexes out of the
// configured range (never produced by the ring) are dropped.
func (m *metrics) addPeer(peer, kind int, delta int64) {
	if peer < 0 || peer >= len(m.peerNames) {
		return
	}
	m.vars.Add(m.peerNames[peer][kind], delta)
}

// observeLatency records one optimize duration in the histogram.
// Buckets are cumulative (Prometheus-style): a 3 ms request increments
// le_5, le_25, ... through the unbounded tail's predecessors.
func (m *metrics) observeLatency(d time.Duration) {
	ms := d.Milliseconds()
	hit := false
	for i, b := range latencyBucketsMs {
		if ms <= b {
			m.vars.Add(latencyBucketNames[i], 1)
			hit = true
		}
	}
	if !hit {
		m.vars.Add("optimize_latency_ms_gt_2500", 1)
	}
}

// get returns a counter's current value (0 if never touched); tests
// difference these across requests.
func (m *metrics) get(name string) int64 {
	v := m.vars.Get(name)
	if v == nil {
		return 0
	}
	i, ok := v.(*expvar.Int)
	if !ok {
		return 0
	}
	return i.Value()
}
