package serve

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"
)

func getStatus(t *testing.T, url string) int {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	return res.StatusCode
}

// TestReadyzDrain proves readiness and liveness diverge during a
// graceful shutdown: /readyz flips to 503 the moment Shutdown begins —
// while an in-flight request is still being served — and /healthz keeps
// answering 200, so a load balancer drains the node without a restart
// loop killing it.
func TestReadyzDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusOK {
		t.Fatalf("fresh server readyz: status %d, want 200", got)
	}

	// Hold a request in flight by trickling its body: the ingest handler
	// is inside ServeHTTP, blocked reading the upload, until the pipe
	// closes.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/tensors", pr)
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	type result struct {
		status int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			resc <- result{0, err}
			return
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		resc <- result{res.StatusCode, nil}
	}()
	if _, err := pw.Write([]byte(`{"gen":`)); err != nil {
		t.Fatalf("trickle body: %v", err)
	}
	// Wait until the handler has entered (it counts ingest_total on
	// entry, before reading the body).
	deadline := time.Now().Add(5 * time.Second)
	for s.Metric("ingest_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ingest handler never entered")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Shutdown(context.Background())
	}()

	// The request is still in flight (its body is still open), yet the
	// node must already refuse readiness.
	unreadyBy := time.Now().Add(5 * time.Second)
	for {
		httpErrs := s.Metric("http_errors")
		if got := getStatus(t, ts.URL+"/readyz"); got == http.StatusServiceUnavailable {
			if s.Metric("http_errors") != httpErrs {
				t.Fatalf("an unready probe polluted http_errors")
			}
			break
		}
		if time.Now().After(unreadyBy) {
			t.Fatalf("readyz never flipped to 503 during drain")
		}
		time.Sleep(time.Millisecond)
	}
	if s.Metric("readyz_unready") == 0 {
		t.Fatalf("readyz_unready never counted")
	}
	if got := getStatus(t, ts.URL+"/healthz"); got != http.StatusOK {
		t.Fatalf("healthz during drain: status %d, want 200 (liveness is unconditional)", got)
	}

	// Release the in-flight request; its compute submission races the
	// stopped pool and must come back 503, not hang.
	if _, err := pw.Write([]byte(`{"label":"C","scale":16}}`)); err != nil {
		t.Fatalf("finish body: %v", err)
	}
	pw.Close()
	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight request failed at transport level: %v", r.err)
	}
	if r.status != http.StatusServiceUnavailable {
		t.Fatalf("in-flight request after drain: status %d, want 503", r.status)
	}
	<-done

	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: status %d, want 503", got)
	}
}
