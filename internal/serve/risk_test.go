package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// riskBody is the risk sub-object of an optimize response.
type riskBody struct {
	OverflowTarget        float64  `json:"overflowTarget"`
	PercentileTile        int      `json:"percentileTile"`
	PredictedOverflowRate float64  `json:"predictedOverflowRate"`
	BufferUtilization     float64  `json:"bufferUtilization"`
	MeasuredOverflowRate  *float64 `json:"measuredOverflowRate"`
	CalibrationResidual   *float64 `json:"calibrationResidual"`
	CalibrationBias       *float64 `json:"calibrationBias"`
}

// TestRiskEndToEnd drives risk-aware optimization through the HTTP
// surface: the overbooked point gets its own response key and
// X-D2T2-Risk header (no aliasing against the conservative point,
// warm or cold), calibrated requests bypass the response cache on every
// repeat, and the counters account for both.
func TestRiskEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := ingestGen(t, ts.URL, "C", 1<<20)

	conservative := map[string]any{
		"kernel": testKernel,
		"inputs": map[string]string{"A": id, "B": id},
		"tile":   32,
	}
	overbooked := map[string]any{
		"kernel":          testKernel,
		"inputs":          map[string]string{"A": id, "B": id},
		"tile":            32,
		"overflow_target": 0.05,
	}

	// Conservative cold run: no risk header, no risk object.
	cons, consBody := postJSON(t, ts.URL+"/v1/optimize", conservative)
	if cons.StatusCode != http.StatusOK {
		t.Fatalf("conservative optimize: status %d: %s", cons.StatusCode, consBody)
	}
	if h := cons.Header.Get("X-D2T2-Risk"); h != "" {
		t.Fatalf("conservative response carries X-D2T2-Risk %q", h)
	}
	if bytes.Contains(consBody, []byte(`"risk"`)) {
		t.Fatalf("conservative response carries a risk object: %s", consBody)
	}

	// Overbooked cold run: distinct response key (miss, not the cached
	// conservative bytes), risk header and risk object present.
	over, overBody := postJSON(t, ts.URL+"/v1/optimize", overbooked)
	if over.StatusCode != http.StatusOK {
		t.Fatalf("overbooked optimize: status %d: %s", over.StatusCode, overBody)
	}
	if got := over.Header.Get("X-D2T2-Cache"); got != "miss" {
		t.Fatalf("overbooked point aliased the conservative cache entry (header %q)", got)
	}
	if got := over.Header.Get("X-D2T2-Risk"); got != "target=0.05" {
		t.Fatalf("X-D2T2-Risk = %q, want target=0.05", got)
	}
	if bytes.Equal(overBody, consBody) {
		t.Fatal("overbooked response identical to conservative response")
	}
	if got := s.Metric("optimize_overbooked"); got != 1 {
		t.Fatalf("optimize_overbooked = %d, want 1", got)
	}
	var overResp struct {
		Risk *riskBody `json:"risk"`
	}
	if err := json.Unmarshal(overBody, &overResp); err != nil || overResp.Risk == nil {
		t.Fatalf("overbooked response has no risk object (err %v): %s", err, overBody)
	}
	if overResp.Risk.OverflowTarget != 0.05 || overResp.Risk.BufferUtilization <= 0 {
		t.Fatalf("implausible risk object: %+v", overResp.Risk)
	}
	if overResp.Risk.CalibrationResidual != nil {
		t.Fatalf("uncalibrated response reports a calibration residual: %+v", overResp.Risk)
	}

	// Warm overbooked run: cache hit on its own key, byte-identical, risk
	// header still present (it derives from the request, not the job).
	warm, warmBody := postJSON(t, ts.URL+"/v1/optimize", overbooked)
	if warm.Header.Get("X-D2T2-Cache") != "hit" || !bytes.Equal(warmBody, overBody) {
		t.Fatalf("warm overbooked run not served byte-identically from cache")
	}
	if got := warm.Header.Get("X-D2T2-Risk"); got != "target=0.05" {
		t.Fatalf("warm X-D2T2-Risk = %q, want target=0.05", got)
	}

	// The conservative entry is untouched by the risk point.
	consWarm, consWarmBody := postJSON(t, ts.URL+"/v1/optimize", conservative)
	if consWarm.Header.Get("X-D2T2-Cache") != "hit" || !bytes.Equal(consWarmBody, consBody) {
		t.Fatalf("conservative cache entry disturbed by the risk point")
	}

	// Out-of-range target is a 400, not a silent clamp.
	bad, badBody := postJSON(t, ts.URL+"/v1/optimize", map[string]any{
		"kernel":          testKernel,
		"inputs":          map[string]string{"A": id, "B": id},
		"tile":            32,
		"overflow_target": 1.5,
	})
	if bad.StatusCode != http.StatusBadRequest || !strings.Contains(string(badBody), "overflow_target") {
		t.Fatalf("overflow_target 1.5: status %d body %s", bad.StatusCode, badBody)
	}
}

// TestCalibratedRequestsBypassCache: calibration advances session state,
// so repeated calibrated optimizes must re-run (never cache-hit), bump
// calibration_runs each time, and report a shrinking residual.
func TestCalibratedRequestsBypassCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := ingestGen(t, ts.URL, "C", 1<<20)

	calReq := map[string]any{
		"kernel":          testKernel,
		"inputs":          map[string]string{"A": id, "B": id},
		"tile":            32,
		"overflow_target": 0.05,
		"calibrate":       true,
	}
	var residuals []float64
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/optimize", calReq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("calibrated optimize %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-D2T2-Cache"); got == "hit" {
			t.Fatalf("calibrated optimize %d served from cache (stateful response must re-run)", i)
		}
		if got := resp.Header.Get("X-D2T2-Risk"); got != "target=0.05; calibrate" {
			t.Fatalf("X-D2T2-Risk = %q", got)
		}
		var cr struct {
			Risk *riskBody `json:"risk"`
		}
		if err := json.Unmarshal(body, &cr); err != nil || cr.Risk == nil || cr.Risk.CalibrationResidual == nil {
			t.Fatalf("calibrated response missing residual (err %v): %s", err, body)
		}
		if cr.Risk.CalibrationBias == nil || *cr.Risk.CalibrationBias <= 0 {
			t.Fatalf("calibrated response missing bias: %s", body)
		}
		residuals = append(residuals, *cr.Risk.CalibrationResidual)
		if got := s.Metric("calibration_runs"); got != int64(i+1) {
			t.Fatalf("calibration_runs = %d after run %d, want %d", got, i, i+1)
		}
	}
	for i := 1; i < len(residuals); i++ {
		if residuals[i] >= residuals[i-1] && residuals[i] > 0.01 {
			t.Errorf("residual did not shrink across service calibrations: %v", residuals)
		}
	}

	// A calibrated predict reports the learned class bias.
	resp, body := postJSON(t, ts.URL+"/v1/predict", map[string]any{
		"kernel":    testKernel,
		"inputs":    map[string]string{"A": id, "B": id},
		"config":    map[string]int{"i": 16, "k": 16, "j": 16},
		"statsTile": 32,
		"calibrate": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("calibrated predict: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-D2T2-Risk"); got != "target=0; calibrate" {
		t.Fatalf("calibrated predict X-D2T2-Risk = %q", got)
	}
	var pr struct {
		PredictedMB     float64  `json:"predictedMB"`
		CalibrationBias *float64 `json:"calibrationBias"`
	}
	if err := json.Unmarshal(body, &pr); err != nil || pr.CalibrationBias == nil {
		t.Fatalf("calibrated predict missing bias (err %v): %s", err, body)
	}
	if *pr.CalibrationBias == 1 {
		t.Fatalf("class bias still 1 after %d calibrations", len(residuals))
	}
}
