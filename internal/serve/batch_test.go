package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// postBatch submits jobs to /v1/batch and decodes the per-job results.
func postBatch(t testing.TB, url string, jobs []map[string]any) (*http.Response, []batchJobResult) {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/batch", map[string]any{"jobs": jobs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var br struct {
		Jobs []batchJobResult `json:"jobs"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("batch response: %v: %s", err, body)
	}
	return resp, br.Jobs
}

// TestBatchSharedStats proves the batch scheduler's core claim: N jobs
// against one tensor run the tile-and-collect phase exactly once
// (stats_collect_total == 1 after three cold jobs), results land under
// the same response keys a single /v1/optimize would use, and a warm
// repeat serves every job from the response cache.
func TestBatchSharedStats(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := ingestGen(t, ts.URL, "C", 1<<20)
	job := func(extra map[string]any) map[string]any {
		m := map[string]any{
			"kernel": testKernel,
			"inputs": map[string]string{"A": id, "B": id},
			"tile":   32,
		}
		for k, v := range extra {
			m[k] = v
		}
		return m
	}
	jobs := []map[string]any{
		job(nil),
		job(map[string]any{"disableCorrs": true}),
		job(map[string]any{"skipResize": true}),
	}

	_, results := postBatch(t, ts.URL, jobs)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	keys := map[string]bool{}
	for i, r := range results {
		if r.Error != "" || len(r.Response) == 0 {
			t.Fatalf("job %d failed: %q", i, r.Error)
		}
		if r.Cache != "miss" {
			t.Fatalf("job %d cache %q, want miss", i, r.Cache)
		}
		keys[r.Key] = true
	}
	if len(keys) != 3 {
		t.Fatalf("expected 3 distinct response keys, got %d", len(keys))
	}
	if got := s.Metric("stats_collect_total"); got != 1 {
		t.Fatalf("3 batched jobs on one tensor ran %d collections, want exactly 1", got)
	}
	if got := s.Metric("batch_local_jobs"); got != 3 {
		t.Fatalf("batch_local_jobs = %d, want 3", got)
	}
	if got := s.Metric("batch_jobs_total"); got != 3 {
		t.Fatalf("batch_jobs_total = %d, want 3", got)
	}

	// Warm repeat: every job is a cache hit, byte-identical, and no
	// further collection runs.
	_, warm := postBatch(t, ts.URL, jobs)
	for i, r := range warm {
		if r.Cache != "hit" {
			t.Fatalf("warm job %d cache %q, want hit", i, r.Cache)
		}
		if !bytes.Equal(r.Response, results[i].Response) {
			t.Fatalf("warm job %d response differs from cold", i)
		}
	}
	if got := s.Metric("batch_cache_hits"); got != 3 {
		t.Fatalf("batch_cache_hits = %d, want 3", got)
	}
	if got := s.Metric("stats_collect_total"); got != 1 {
		t.Fatalf("warm batch re-collected: %d", got)
	}

	// The artifacts interoperate with the single-request endpoint: the
	// same job posted to /v1/optimize is a warm hit on the batch's key.
	resp, body := postJSON(t, ts.URL+"/v1/optimize", jobs[0])
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-D2T2-Cache") != "hit" {
		t.Fatalf("single optimize after batch: status %d cache %q", resp.StatusCode, resp.Header.Get("X-D2T2-Cache"))
	}
	if resp.Header.Get("X-D2T2-Key") != results[0].Key {
		t.Fatalf("single optimize key %q, batch key %q", resp.Header.Get("X-D2T2-Key"), results[0].Key)
	}
	// The persisted body carries a trailing newline that json.Marshal
	// compacts away when embedded as a RawMessage — compare trimmed.
	if !bytes.Equal(bytes.TrimSpace(body), bytes.TrimSpace(results[0].Response)) {
		t.Fatalf("single optimize body differs from batch response")
	}

	// A further cold variant still needs no new collection — the frame's
	// statistics are shared across batches too.
	_, more := postBatch(t, ts.URL, []map[string]any{job(map[string]any{"analytic": true})})
	if more[0].Error != "" || more[0].Cache != "miss" {
		t.Fatalf("variant job: cache %q error %q", more[0].Cache, more[0].Error)
	}
	if got := s.Metric("stats_collect_total"); got != 1 {
		t.Fatalf("variant batch re-collected: %d", got)
	}
}

// TestBatchValidationAndPartialFailure covers the request surface: empty
// and oversized batches refuse outright, a bad job fails in its own
// result slot without sinking its batchmates, and duplicate jobs
// coalesce onto one computation.
func TestBatchValidationAndPartialFailure(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := ingestGen(t, ts.URL, "C", 1<<20)

	resp, body := postJSON(t, ts.URL+"/v1/batch", map[string]any{"jobs": []any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", resp.StatusCode, body)
	}
	big := make([]map[string]any, maxBatchJobs+1)
	for i := range big {
		big[i] = map[string]any{"kernel": testKernel, "inputs": map[string]string{"A": id, "B": id}}
	}
	resp, body = postJSON(t, ts.URL+"/v1/batch", map[string]any{"jobs": big})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d: %s", resp.StatusCode, body)
	}

	good := map[string]any{
		"kernel": testKernel,
		"inputs": map[string]string{"A": id, "B": id},
		"tile":   32,
	}
	_, results := postBatch(t, ts.URL, []map[string]any{
		{"kernel": "nonsense", "inputs": map[string]string{}},
		good,
		good, // duplicate of the previous job: same key, shared run
	})
	if results[0].Error == "" || len(results[0].Response) != 0 {
		t.Fatalf("bad kernel job did not fail in place: %+v", results[0])
	}
	if results[1].Error != "" || len(results[1].Response) == 0 {
		t.Fatalf("good job sunk by its batchmate: %q", results[1].Error)
	}
	if results[1].Key != results[2].Key || !bytes.Equal(results[1].Response, results[2].Response) {
		t.Fatalf("duplicate jobs did not share one result")
	}
	if got := s.Metric("batch_job_errors"); got != 1 {
		t.Fatalf("batch_job_errors = %d, want 1", got)
	}
}

const deltaBaseMTX = "%%MatrixMarket matrix coordinate real general\n" +
	"8 8 4\n1 1 1.0\n2 3 2.0\n5 5 1.5\n8 8 3.0\n"

const deltaConcatMTX = "%%MatrixMarket matrix coordinate real general\n" +
	"8 8 6\n1 1 1.0\n1 2 4.0\n2 3 2.0\n5 5 1.5\n7 1 5.0\n8 8 3.0\n"

func uploadMTX(t testing.TB, url, mtx string) string {
	t.Helper()
	resp, err := http.Post(url+"/v1/tensors", "text/plain", strings.NewReader(mtx))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	var ir struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("upload response: %v", err)
	}
	return ir.ID
}

func getStats(t testing.TB, url, id string, tile int) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/tensors/%s/stats?tile=%d", url, id, tile))
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestDeltaMergeMatchesScratch drives POST /v1/tensors/{id}/delta and
// proves the paper-level claim end to end: the delta lands on the same
// content address a from-scratch ingest of the concatenated tensor
// produces, its merged statistics are byte-identical to a fresh
// collection on that tensor (a second server re-collects from scratch
// for comparison), and the merge itself performs no re-collection —
// stats_collect_total stays flat while only the touched tiles are
// re-summarized.
func TestDeltaMergeMatchesScratch(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	baseID := uploadMTX(t, ts.URL, deltaBaseMTX)
	getStats(t, ts.URL, baseID, 4)
	if got := s.Metric("stats_collect_total"); got != 1 {
		t.Fatalf("baseline stats ran %d collections, want 1", got)
	}

	resp, body := postJSON(t, ts.URL+"/v1/tensors/"+baseID+"/delta", map[string]any{
		"crds": [][]int{{0, 1}, {6, 0}},
		"vals": []float64{4, 5},
		"tile": 4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: status %d: %s", resp.StatusCode, body)
	}
	var dr struct {
		ID           string `json:"id"`
		NNZ          int    `json:"nnz"`
		TouchedTiles int    `json:"touchedTiles"`
		TotalTiles   int    `json:"totalTiles"`
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatalf("delta response: %v", err)
	}
	if dr.ID == baseID || dr.NNZ != 6 {
		t.Fatalf("implausible delta result: %s", body)
	}
	// 8x8 at tile 4: base entries live in tiles (0,0) and (1,1); the two
	// delta entries touch (0,0) and open (1,0) — 2 of 3 re-summarized.
	if dr.TouchedTiles != 2 || dr.TotalTiles != 3 {
		t.Fatalf("touched %d/%d tiles, want 2/3: %s", dr.TouchedTiles, dr.TotalTiles, body)
	}
	if got := s.Metric("delta_merges"); got != 1 {
		t.Fatalf("delta_merges = %d, want 1", got)
	}
	if got := s.Metric("stats_merge_total"); got != 1 {
		t.Fatalf("stats_merge_total = %d, want 1", got)
	}

	// The merged statistics are already warm: querying the combined
	// tensor's stats performs no collection.
	mergedStats := getStats(t, ts.URL, dr.ID, 4)
	if got := s.Metric("stats_collect_total"); got != 1 {
		t.Fatalf("stats after delta re-collected: %d collections", got)
	}

	// A pristine server ingesting the concatenated matrix from scratch
	// lands on the same content address and byte-identical statistics.
	s2, ts2 := newTestServer(t, Config{})
	concatID := uploadMTX(t, ts2.URL, deltaConcatMTX)
	if concatID != dr.ID {
		t.Fatalf("delta address %s, from-scratch address %s", dr.ID, concatID)
	}
	scratchStats := getStats(t, ts2.URL, concatID, 4)
	if s2.Metric("stats_collect_total") != 1 {
		t.Fatalf("scratch server should have collected exactly once")
	}
	if !bytes.Equal(mergedStats, scratchStats) {
		t.Fatalf("merged statistics differ from scratch collection:\nmerged:  %s\nscratch: %s", mergedStats, scratchStats)
	}
}

// TestDeltaRejections sweeps the delta request's failure surface.
func TestDeltaRejections(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	baseID := uploadMTX(t, ts.URL, deltaBaseMTX)
	post := func(body map[string]any) int {
		resp, rb := postJSON(t, ts.URL+"/v1/tensors/"+baseID+"/delta", body)
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rb, &e); err != nil || e.Error == "" {
			t.Fatalf("error body not JSON: %s", rb)
		}
		return resp.StatusCode
	}
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"collides with base", map[string]any{"crds": [][]int{{0, 0}}, "vals": []float64{1}}, http.StatusUnprocessableEntity},
		{"intra-delta duplicate", map[string]any{"crds": [][]int{{3, 3}, {3, 3}}, "vals": []float64{1, 1}}, http.StatusUnprocessableEntity},
		{"arity mismatch", map[string]any{"crds": [][]int{{1, 2, 3}}, "vals": []float64{1}}, http.StatusBadRequest},
		{"out of range", map[string]any{"crds": [][]int{{0, 8}}, "vals": []float64{1}}, http.StatusBadRequest},
		{"count mismatch", map[string]any{"crds": [][]int{{3, 3}}, "vals": []float64{1, 2}}, http.StatusBadRequest},
		{"bad tile", map[string]any{"crds": [][]int{{3, 3}}, "vals": []float64{1}, "tile": -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := post(tc.body); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/tensors/sha256:"+strings.Repeat("0", 64)+"/delta",
		map[string]any{"crds": [][]int{{1, 1}}, "vals": []float64{1}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tensor: status %d, want 404", resp.StatusCode)
	}
	if s.Metric("delta_errors") == 0 {
		t.Errorf("delta_errors never moved")
	}
	if s.Metric("delta_merges") != 0 {
		t.Errorf("a rejected delta counted as a merge")
	}
}

// TestIngestTooLarge is the regression test for the upload-limit
// response: a body one byte past MaxUploadBytes must answer 413 (not a
// generic 400) and move the ingest_too_large counter, while a body at
// the limit gets past the reader (failing later as a parse error).
func TestIngestTooLarge(t *testing.T) {
	const limit = 1024
	s, ts := newTestServer(t, Config{MaxUploadBytes: limit})

	resp, err := http.Post(ts.URL+"/v1/tensors", "text/plain",
		bytes.NewReader(make([]byte, limit+1)))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("limit+1 upload: status %d, want 413: %s", resp.StatusCode, body)
	}
	if got := s.Metric("ingest_too_large"); got != 1 {
		t.Fatalf("ingest_too_large = %d, want 1", got)
	}

	resp, err = http.Post(ts.URL+"/v1/tensors", "text/plain",
		bytes.NewReader(make([]byte, limit)))
	if err != nil {
		t.Fatalf("at-limit upload: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("at-limit garbage: status %d, want 400", resp.StatusCode)
	}
	if got := s.Metric("ingest_too_large"); got != 1 {
		t.Fatalf("at-limit upload counted as too large")
	}

	// The JSON path clamps to MaxUploadBytes too: a structured body past
	// the configured bound is 413, not silently admitted under the old
	// hardcoded 1 MiB.
	bigLabel := `{"gen":{"label":"` + strings.Repeat("x", limit) + `","scale":1}}`
	resp, err = http.Post(ts.URL+"/v1/tensors", "application/json", strings.NewReader(bigLabel))
	if err != nil {
		t.Fatalf("json upload: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized JSON body: status %d, want 413", resp.StatusCode)
	}
	if got := s.Metric("ingest_too_large"); got != 2 {
		t.Fatalf("ingest_too_large = %d, want 2", got)
	}
}

// TestIngestStorePutError poisons the artifact store's shard paths with
// regular files so every disk Put fails, and proves ingest still
// answers (registration is in-memory) while the failure is counted —
// the write error must not be swallowed into a replication of bytes the
// node cannot back.
func TestIngestStorePutError(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 256; i++ {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%02x", i)), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, ts := newTestServer(t, Config{CacheDir: dir})
	resp, err := http.Post(ts.URL+"/v1/tensors", "text/plain", strings.NewReader(deltaBaseMTX))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest with broken store: status %d: %s", resp.StatusCode, body)
	}
	if got := s.Metric("store_put_errors"); got != 1 {
		t.Fatalf("store_put_errors = %d, want 1", got)
	}
}

// BenchmarkServeBatchWarm measures a warm 4-job /v1/batch through the
// full handler stack: four response-cache hits plus the per-job
// canonicalization, in one request.
func BenchmarkServeBatchWarm(b *testing.B) {
	s, ts := newTestServer(b, Config{})
	id := ingestGen(b, ts.URL, "C", 1<<20)
	jobs := make([]map[string]any, 4)
	extras := []map[string]any{nil, {"disableCorrs": true}, {"skipResize": true}, {"analytic": true}}
	for i := range jobs {
		jobs[i] = map[string]any{
			"kernel": testKernel,
			"inputs": map[string]string{"A": id, "B": id},
			"tile":   32,
		}
		for k, v := range extras[i] {
			jobs[i][k] = v
		}
	}
	reqBody, _ := json.Marshal(map[string]any{"jobs": jobs})
	h := s.Handler()
	run := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(reqBody))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := run(); code != http.StatusOK { // cold fill
		b.Fatalf("cold batch: status %d", code)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if code := run(); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkServeDeltaSmall measures a small delta ingest end to end:
// collision scan, partial load, touched-tile re-summarize, merge,
// finalize, register. Each iteration appends a fresh coordinate so the
// merge actually runs (addresses differ every time).
func BenchmarkServeDeltaSmall(b *testing.B) {
	_, ts := newTestServer(b, Config{})
	baseID := uploadMTX(b, ts.URL, deltaBaseMTX)
	b.ResetTimer()
	b.ReportAllocs()
	id := baseID
	crd := 0
	for i := 0; i < b.N; i++ {
		// March through unoccupied coordinates of the 8x8 grid; wrap by
		// rebasing on the original tensor.
		if crd%64 == 0 {
			id = baseID
		}
		x, y := (crd/8)%8, crd%8
		crd++
		if (x == 0 && y == 0) || (x == 1 && y == 2) || (x == 4 && y == 4) || (x == 7 && y == 7) ||
			(x == 0 && y == 1) || (x == 6 && y == 0) {
			continue // occupied in the base or an earlier iteration's path
		}
		resp, body := postJSON(b, ts.URL+"/v1/tensors/"+id+"/delta", map[string]any{
			"crds": [][]int{{x, y}},
			"vals": []float64{1},
			"tile": 4,
		})
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("delta: status %d: %s", resp.StatusCode, body)
		}
		var dr struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &dr); err != nil {
			b.Fatal(err)
		}
		id = dr.ID
	}
}
