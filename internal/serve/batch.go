package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"d2t2"
	"d2t2/internal/par"
)

// maxBatchJobs bounds one batch request. Far above any sane batch and
// far below anything that could wedge the node: every job past the
// cache still runs through the bounded compute pool.
const maxBatchJobs = 64

// ---- delta ingest ----

// deltaRequest appends coordinate entries to a stored tensor. Crds[e]
// is entry e's coordinate tuple, Vals[e] its value; entries must not
// collide with the base tensor or each other. Tile picks the stats
// frame to merge at (default DefaultStatsTile).
type deltaRequest struct {
	Crds [][]int   `json:"crds"`
	Vals []float64 `json:"vals"`
	Tile int       `json:"tile,omitempty"`
}

type deltaResponse struct {
	ID     string `json:"id"` // the combined tensor's content address
	Dims   []int  `json:"dims"`
	NNZ    int    `json:"nnz"`
	Cached bool   `json:"cached"`
	// How much re-collection the merge avoided: only the touched tiles
	// were re-summarized.
	TouchedTiles int `json:"touchedTiles"`
	TotalTiles   int `json:"totalTiles"`
	TouchedMicro int `json:"touchedMicro"`
	TotalMicro   int `json:"totalMicro"`
}

// handleDelta serves POST /v1/tensors/{id}/delta: append a coordinate
// delta to a stored tensor, re-tiling only the touched tiles and
// merging statistics instead of re-collecting (session.DeltaCtx). The
// combined tensor is registered and persisted under its own content
// address, and its merged statistics are already warm for following
// stats/predict/optimize requests at the same frame.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	s.metrics.add("delta_total", 1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		s.metrics.add("delta_errors", 1)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("delta exceeds the %d-byte limit", mbe.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("read delta: %w", err))
		return
	}
	var req deltaRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.metrics.add("delta_errors", 1)
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Crds) != len(req.Vals) {
		s.metrics.add("delta_errors", 1)
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("crds holds %d entries, vals %d", len(req.Crds), len(req.Vals)))
		return
	}
	tile := req.Tile
	if tile == 0 {
		tile = s.cfg.DefaultStatsTile
	}
	if tile < 1 {
		s.metrics.add("delta_errors", 1)
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad tile %d", tile))
		return
	}

	ctx := r.Context()
	t, err := s.tensorByID(ctx, r.PathValue("id"))
	if err != nil {
		s.metrics.add("delta_errors", 1)
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	dims := t.Dims()
	delta := d2t2.NewTensor(dims...)
	for e, crd := range req.Crds {
		if len(crd) != len(dims) {
			s.metrics.add("delta_errors", 1)
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("entry %d has %d coordinates, tensor has order %d", e, len(crd), len(dims)))
			return
		}
		for a, c := range crd {
			if c < 0 || c >= dims[a] {
				s.metrics.add("delta_errors", 1)
				s.writeError(w, http.StatusBadRequest,
					fmt.Errorf("entry %d: coordinate %d out of range on axis %d (dim %d)", e, c, a, dims[a]))
				return
			}
		}
		delta.Set(crd, req.Vals[e])
	}

	var resp deltaResponse
	var jobErr error
	job := func() {
		newT, rep, err := s.session.DeltaCtx(ctx, t, delta, tile)
		if err != nil {
			jobErr = err
			return
		}
		id, newT, cached, err := s.registerTensor(ctx, newT)
		if err != nil {
			jobErr = err
			return
		}
		resp = deltaResponse{
			ID:           id,
			Dims:         newT.Dims(),
			NNZ:          newT.NNZ(),
			Cached:       cached,
			TouchedTiles: rep.TouchedTiles,
			TotalTiles:   rep.TotalTiles,
			TouchedMicro: rep.TouchedMicro,
			TotalMicro:   rep.TotalMicro,
		}
	}
	if err := s.runCompute(ctx, job); err != nil {
		s.metrics.add("delta_errors", 1)
		s.writeComputeError(w, err, http.StatusInternalServerError)
		return
	}
	if jobErr != nil {
		// Collisions, duplicate coordinates: the request's fault.
		s.metrics.add("delta_errors", 1)
		s.writeComputeError(w, jobErr, http.StatusUnprocessableEntity)
		return
	}
	s.metrics.add("delta_merges", 1)
	s.writeJSON(w, http.StatusOK, resp)
}

// ---- batch optimize ----

// batchRequest schedules many optimize jobs as one unit. Each job is a
// full optimizeRequest; jobs sharing a tensor share one statistics
// collection.
type batchRequest struct {
	Jobs []optimizeRequest `json:"jobs"`
}

// batchJobResult is one job's outcome. Key is the job's response
// content address (the same key a single /v1/optimize request would
// produce, so the artifacts interoperate); Cache says how the response
// was produced (hit/replica/peer/forwarded/miss); exactly one of
// Response and Error is set.
type batchJobResult struct {
	Key      string          `json:"key"`
	Cache    string          `json:"cache,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
	Error    string          `json:"error,omitempty"`
}

type batchResponse struct {
	Jobs []batchJobResult `json:"jobs"`
}

// batchJob is one distinct unit of batch work: a canonicalized optimize
// request plus the indexes of every submitted job that collapsed onto
// its response key.
type batchJob struct {
	req     optimizeRequest
	k       *d2t2.Kernel
	key     string
	results []int
	inputs  d2t2.Inputs
}

// handleBatch serves POST /v1/batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.batch(w, r, false)
}

// handleInternalBatch serves a forwarded sub-batch on the jobs' ring
// owner; like the other internal routes it never forwards again.
func (s *Server) handleInternalBatch(w http.ResponseWriter, r *http.Request) {
	s.batch(w, r, true)
}

// batch is the shared batch pipeline. Every job is canonicalized
// exactly like a single optimize request, so its response key — and
// its cached artifact — interoperate with /v1/optimize. The ladder per
// distinct key: warm cache, then (public route, clustered) a sub-batch
// forwarded to each key's ring owner, then local compute. All local
// jobs run inside ONE compute-pool slot: statistics are precollected
// sequentially first — jobs sharing a tensor trigger exactly one
// collection — and the per-job searches then fan out on the pool's
// width through internal/par. A job failure is reported in its result
// slot; it never fails the batch.
func (s *Server) batch(w http.ResponseWriter, r *http.Request, internal bool) {
	s.metrics.add("batch_total", 1)
	var breq batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.jsonBodyLimit())).Decode(&breq); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(breq.Jobs) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(breq.Jobs) > maxBatchJobs {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch holds %d jobs, limit is %d", len(breq.Jobs), maxBatchJobs))
		return
	}
	s.metrics.add("batch_jobs_total", int64(len(breq.Jobs)))

	out := make([]batchJobResult, len(breq.Jobs))
	jobs := make(map[string]*batchJob)
	var order []string
	for i, jr := range breq.Jobs {
		k, err := d2t2.ParseKernel(jr.Kernel)
		if err != nil {
			out[i].Error = err.Error()
			s.metrics.add("batch_job_errors", 1)
			continue
		}
		if jr.OverflowTarget < 0 || jr.OverflowTarget >= 1 {
			out[i].Error = fmt.Sprintf("overflow_target %v outside [0, 1)", jr.OverflowTarget)
			s.metrics.add("batch_job_errors", 1)
			continue
		}
		if jr.BufferWords <= 0 {
			tile := jr.Tile
			if tile <= 0 {
				tile = s.cfg.DefaultStatsTile
			}
			jr.BufferWords = denseSquareWords(tile, maxOrder(k.InputOrders()))
		}
		jr.Tile = 0
		jr.Kernel = k.String()
		if jr.OverflowTarget > 0 {
			s.metrics.add("optimize_overbooked", 1)
		}
		key, _, err := responseKey("optimize", jr)
		if err != nil {
			out[i].Error = err.Error()
			s.metrics.add("batch_job_errors", 1)
			continue
		}
		out[i].Key = key
		if j, ok := jobs[key]; ok {
			j.results = append(j.results, i)
			continue
		}
		jobs[key] = &batchJob{req: jr, k: k, key: key, results: []int{i}}
		order = append(order, key)
	}

	ctx := r.Context()

	// Warm rung: a key whose response artifact is already held (locally
	// or on a peer) never reaches compute. Calibrated jobs are stateful
	// and always recompute.
	var cold []*batchJob
	for _, key := range order {
		j := jobs[key]
		if j.req.Calibrate {
			cold = append(cold, j)
			continue
		}
		if b, src := s.storeGet(ctx, key); b != nil {
			if body, ok := decodeResponseArtifact(b); ok {
				s.metrics.add("batch_cache_hits", int64(len(j.results)))
				s.fillBatchJob(out, j, s.cacheStateFor(key, src), body)
				continue
			}
		}
		cold = append(cold, j)
	}

	// Forward rung: cold jobs whose keys another node owns travel to
	// their owners as sub-batches, so each owner's session dedupes the
	// fleet's statistics work. An unreachable owner degrades that group
	// to local compute — latency, never availability.
	local := cold
	if !internal && s.cluster != nil {
		local = local[:0]
		groups := make(map[string][]*batchJob)
		var gorder []string
		for _, j := range cold {
			owner := s.cluster.ring.Owner(j.key)
			if owner == s.cluster.self {
				local = append(local, j)
				continue
			}
			if _, ok := groups[owner]; !ok {
				gorder = append(gorder, owner)
			}
			groups[owner] = append(groups[owner], j)
		}
		for _, owner := range gorder {
			if !s.forwardBatch(ctx, owner, groups[owner], out) {
				local = append(local, groups[owner]...)
			}
		}
	}

	if len(local) > 0 {
		if err := s.runCompute(ctx, func() { s.runBatchLocal(ctx, local, out) }); err != nil {
			s.writeComputeError(w, err, http.StatusInternalServerError)
			return
		}
	}
	s.writeJSON(w, http.StatusOK, batchResponse{Jobs: out})
}

// runBatchLocal executes a batch's local jobs inside one already-held
// compute slot: inputs resolve and statistics precollect sequentially —
// the session memo turns N jobs on one tensor into one collection —
// then the per-job shape searches fan out via internal/par, splitting
// the slot's worker budget across them. Results and failures land in
// each job's own result slots.
func (s *Server) runBatchLocal(ctx context.Context, local []*batchJob, out []batchJobResult) {
	live := make([]*batchJob, 0, len(local))
	for _, j := range local {
		inputs, err := s.resolveInputs(ctx, j.k.InputOrders(), j.req.Inputs)
		if err != nil {
			s.failBatchJob(out, j, err)
			continue
		}
		if err := s.session.PrecollectCtx(ctx, j.k, inputs, d2t2.Options{
			BufferWords:    j.req.BufferWords,
			Analytic:       j.req.Analytic,
			DisableCorrs:   j.req.DisableCorrs,
			SkipResize:     j.req.SkipResize,
			OverflowTarget: j.req.OverflowTarget,
		}); err != nil {
			s.failBatchJob(out, j, err)
			continue
		}
		j.inputs = inputs
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	perJob := s.cfg.Workers / len(live)
	if perJob < 1 {
		perJob = 1
	}
	// Job failures are recorded per slot, never returned: one bad job
	// must not cancel its batchmates. Only a dead ctx stops the sweep.
	perr := par.ForEachCtx(ctx, s.cfg.Workers, len(live), func(i int) error {
		j := live[i]
		plan, err := s.session.OptimizeCtx(ctx, j.k, j.inputs, d2t2.Options{
			BufferWords:    j.req.BufferWords,
			Analytic:       j.req.Analytic,
			DisableCorrs:   j.req.DisableCorrs,
			SkipResize:     j.req.SkipResize,
			Workers:        perJob,
			OverflowTarget: j.req.OverflowTarget,
			Calibrate:      j.req.Calibrate,
		})
		if err != nil {
			s.failBatchJob(out, j, err)
			return nil
		}
		resp := optimizeResponse{
			Kernel:      j.req.Kernel,
			Config:      plan.Config,
			BaseTile:    plan.BaseTile,
			RF:          plan.RF,
			TileFactor:  plan.TileFactor,
			PredictedMB: plan.PredictedMB,
			Risk:        riskOf(plan),
		}
		if plan.Risk != nil && plan.Risk.Calibration != nil {
			s.metrics.add("calibration_runs", 1)
		}
		if j.req.Measure {
			report, err := plan.MeasureCtx(ctx)
			if err != nil {
				s.failBatchJob(out, j, err)
				return nil
			}
			mb := report.TotalMB()
			resp.MeasuredMB = &mb
			if resp.Risk != nil {
				rate := report.OverflowRate()
				resp.Risk.MeasuredOverflowRate = &rate
			}
		}
		var body []byte
		if j.req.Calibrate {
			body, err = marshalBody(resp)
		} else {
			body, err = s.marshalAndPersist(j.key, resp)
		}
		if err != nil {
			s.failBatchJob(out, j, err)
			return nil
		}
		s.metrics.add("batch_local_jobs", int64(len(j.results)))
		s.fillBatchJob(out, j, "miss", body)
		return nil
	})
	if perr != nil {
		for _, j := range live {
			for _, i := range j.results {
				if out[i].Response == nil && out[i].Error == "" {
					out[i].Error = perr.Error()
				}
			}
		}
	}
}

// forwardBatch relays one owner's cold jobs as a sub-batch of canonical
// requests; the owner derives identical keys and runs (or serves) them.
// Responses cache-fill locally without re-replication — the owner
// already drives placement. Returns false when the owner could not be
// used at all (transport failure, bad response shape); then the whole
// group falls back to local compute.
func (s *Server) forwardBatch(ctx context.Context, owner string, group []*batchJob, out []batchJobResult) bool {
	sub := batchRequest{Jobs: make([]optimizeRequest, len(group))}
	for i, j := range group {
		sub.Jobs[i] = j.req
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return false
	}
	res, err := s.cluster.client.Forward(ctx, owner, "batch", body)
	if err != nil || res.Status != http.StatusOK {
		return false
	}
	var br batchResponse
	if err := json.Unmarshal(res.Body, &br); err != nil || len(br.Jobs) != len(group) {
		return false
	}
	for i, j := range group {
		jr := br.Jobs[i]
		if jr.Error != "" || jr.Response == nil {
			s.failBatchJob(out, j, fmt.Errorf("owner %s: %s", owner, jr.Error))
			continue
		}
		if !j.req.Calibrate {
			s.persistResponseBytes(j.key, jr.Response, false)
		}
		s.metrics.add("batch_forwarded_jobs", int64(len(j.results)))
		s.fillBatchJob(out, j, "forwarded", jr.Response)
	}
	return true
}

func (s *Server) fillBatchJob(out []batchJobResult, j *batchJob, cache string, body []byte) {
	for _, i := range j.results {
		out[i].Cache = cache
		out[i].Response = body
	}
}

func (s *Server) failBatchJob(out []batchJobResult, j *batchJob, err error) {
	s.metrics.add("batch_job_errors", int64(len(j.results)))
	for _, i := range j.results {
		out[i].Error = err.Error()
	}
}
