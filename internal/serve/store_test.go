package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func key(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return "sha256:" + hex.EncodeToString(sum[:])
}

func TestStorePathRejectsMalformedKeys(t *testing.T) {
	s, err := NewStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"",
		"sha256:short",
		"md5:" + strings.Repeat("a", 64),
		"sha256:" + strings.Repeat("A", 64), // upper-case hex is not canonical
		"sha256:../" + strings.Repeat("a", 61),
	} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", bad)
		}
	}
}

func TestStoreDiskAndMemLayers(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := key("artifact")
	if err := s.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if b, src, _ := s.Get(k); src != SourceMem || string(b) != "payload" {
		t.Fatalf("fresh Put not served from memory: src=%v b=%q", src, b)
	}

	// A second store over the same directory has a cold memory layer: the
	// first read comes from disk, the second from memory.
	s2, err := NewStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if b, src, _ := s2.Get(k); src != SourceDisk || string(b) != "payload" {
		t.Fatalf("persisted artifact not served from disk: src=%v b=%q", src, b)
	}
	if _, src, _ := s2.Get(k); src != SourceMem {
		t.Fatalf("disk read was not admitted to memory: src=%v", src)
	}

	if _, src, _ := s2.Get(key("absent")); src != SourceNone {
		t.Fatalf("miss reported source %v", src)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s, err := NewStore("", 100) // memory only, tiny budget
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 40)
	ka, kb, kc := key("a"), key("b"), key("c")
	for _, k := range []string{ka, kb, kc} {
		if err := s.Put(k, blob); err != nil {
			t.Fatal(err)
		}
	}
	// 3*40 > 100: the least recently used (a) must be gone.
	if _, src, _ := s.Get(ka); src != SourceNone {
		t.Errorf("oldest entry not evicted: src=%v", src)
	}
	if _, src, _ := s.Get(kc); src != SourceMem {
		t.Errorf("newest entry evicted: src=%v", src)
	}
	if got := s.MemBytes(); got > 100 {
		t.Errorf("memory layer over budget: %d", got)
	}

	// An artifact bigger than the whole budget bypasses memory entirely.
	if err := s.Put(key("huge"), make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	if _, src, _ := s.Get(key("huge")); src != SourceNone {
		t.Errorf("oversized artifact admitted to memory")
	}
	if got := s.MemBytes(); got > 100 {
		t.Errorf("memory layer over budget after oversized Put: %d", got)
	}
}

func TestPoolShutdown(t *testing.T) {
	p := newPool(2)
	ran := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		started, err := p.run(context.Background(), func() { ran <- struct{}{} })
		if err != nil || !started {
			t.Fatalf("run: started=%v err=%v", started, err)
		}
	}
	if len(ran) != 4 {
		t.Fatalf("ran %d jobs, want 4", len(ran))
	}
	p.shutdown()
	p.shutdown() // idempotent
	if started, err := p.run(context.Background(), func() {}); err != ErrShuttingDown || started {
		t.Fatalf("run after shutdown: started=%v err=%v, want ErrShuttingDown", started, err)
	}
}

// TestStoreConcurrentLRU hammers one small-budget store from many
// goroutines mixing Put, Get and re-admission, with the memory budget
// checked continuously: MemBytes must never exceed the configured
// bound, no operation may error, and after the dust settles every
// artifact must still be readable byte-identically from disk even when
// the memory layer evicted it.
func TestStoreConcurrentLRU(t *testing.T) {
	const (
		maxBytes   = 8 << 10
		entryBytes = 1 << 10
		keys       = 48
		workers    = 8
		rounds     = 50
	)
	s, err := NewStore(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	payload := func(i int) []byte {
		b := make([]byte, entryBytes)
		for j := range b {
			b[j] = byte(i + j)
		}
		return b
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w*rounds + r) % keys
				k := key(fmt.Sprintf("concurrent-%d", i))
				if err := s.Put(k, payload(i)); err != nil {
					errs <- fmt.Errorf("Put %d: %w", i, err)
					return
				}
				if b, src, err := s.Get(k); err != nil {
					errs <- fmt.Errorf("Get %d: %w", i, err)
					return
				} else if src != SourceNone && !bytes.Equal(b, payload(i)) {
					errs <- fmt.Errorf("Get %d: corrupted bytes from %v", i, src)
					return
				}
				if mb := s.MemBytes(); mb > maxBytes {
					errs <- fmt.Errorf("memory budget exceeded: %d > %d", mb, maxBytes)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if mb := s.MemBytes(); mb > maxBytes {
		t.Fatalf("final memory budget exceeded: %d > %d", mb, maxBytes)
	}
	// Every key must read back byte-identical — most from disk, since 48
	// KiB of artifacts cannot fit an 8 KiB memory layer.
	fromDisk := 0
	for i := 0; i < keys; i++ {
		k := key(fmt.Sprintf("concurrent-%d", i))
		b, src, err := s.Get(k)
		if err != nil || b == nil {
			t.Fatalf("post-hammer Get %d: src %v, err %v", i, src, err)
		}
		if !bytes.Equal(b, payload(i)) {
			t.Fatalf("post-hammer Get %d: bytes differ", i)
		}
		if src == SourceDisk {
			fromDisk++
		}
	}
	if fromDisk == 0 {
		t.Fatalf("no key was served from disk; eviction never happened?")
	}
}
