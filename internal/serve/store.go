// Package serve implements the d2t2d tiling-optimizer service: a JSON
// HTTP API over the root d2t2 facade, backed by a content-addressed
// artifact cache of binary snapshots (internal/snapshot). Artifacts are
// keyed by SHA-256 content addresses, so identical tensors, statistics
// bundles and optimizer responses are stored and served exactly once.
package serve

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Source says where a Store lookup was satisfied.
type Source int

const (
	// SourceNone means the key was absent from every layer.
	SourceNone Source = iota
	// SourceMem means the in-memory LRU layer had the artifact.
	SourceMem
	// SourceDisk means the artifact was read from the on-disk layer.
	SourceDisk
	// SourcePeer means the artifact was fetched from a cluster peer —
	// produced by Server.storeGet's read-through rung, never by the
	// Store itself.
	SourcePeer
)

// Store is a two-layer content-addressed artifact cache: a bounded
// in-memory LRU of encoded snapshot bytes in front of an optional
// on-disk layer. Keys are content addresses of the form
// "sha256:<64 hex digits>" (snapshot.TensorID / StatsKey / ResponseKey);
// the disk layout shards on the first two hex digits:
//
//	<dir>/<hex[:2]>/<hex>.d2t2snap
//
// Writes to disk go through a temporary file and an atomic rename, so a
// crash never leaves a truncated artifact under its final name. Because
// keys are content addresses the store never overwrites meaningfully
// different data: a second Put for a key is by construction the same
// bytes (responses are canonical, snapshots deterministic).
//
// A Store is safe for concurrent use.
type Store struct {
	dir      string // "" disables the disk layer
	maxBytes int64  // in-memory budget; <=0 disables the memory layer

	mu  sync.Mutex
	ll  *list.List               // front = most recently used
	idx map[string]*list.Element // key -> element whose Value is *storeEntry
	cur int64
}

type storeEntry struct {
	key  string
	data []byte
}

// NewStore opens a store rooted at dir (created if missing; "" for a
// purely in-memory store) holding at most maxBytes of artifact bytes in
// memory.
func NewStore(dir string, maxBytes int64) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: create cache dir: %w", err)
		}
	}
	return &Store{
		dir:      dir,
		maxBytes: maxBytes,
		ll:       list.New(),
		idx:      make(map[string]*list.Element),
	}, nil
}

// IsContentAddress reports whether key is a plain "sha256:<64 hex>"
// content address — the only key shape the store (and the cluster's
// internal artifact routes) accept, so a malicious key can never
// escape the cache directory or poison the memory layer.
func IsContentAddress(key string) bool {
	hex, ok := strings.CutPrefix(key, "sha256:")
	if !ok || len(hex) != 64 {
		return false
	}
	for _, c := range hex {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path maps a content address to its on-disk location, rejecting
// anything that is not a plain content address.
func (s *Store) path(key string) (string, error) {
	if !IsContentAddress(key) {
		return "", fmt.Errorf("serve: malformed content address %q", key)
	}
	hex := strings.TrimPrefix(key, "sha256:")
	return filepath.Join(s.dir, hex[:2], hex+".d2t2snap"), nil
}

// Get returns the artifact bytes for key and the layer that served them,
// or (nil, SourceNone, nil) on a clean miss. The returned slice is
// shared with the cache and must be treated as read-only.
func (s *Store) Get(key string) ([]byte, Source, error) {
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		s.ll.MoveToFront(el)
		data := el.Value.(*storeEntry).data
		s.mu.Unlock()
		return data, SourceMem, nil
	}
	s.mu.Unlock()

	if s.dir == "" {
		return nil, SourceNone, nil
	}
	p, err := s.path(key)
	if err != nil {
		return nil, SourceNone, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, SourceNone, nil
	}
	if err != nil {
		return nil, SourceNone, err
	}
	s.admit(key, data)
	return data, SourceDisk, nil
}

// Put stores the artifact bytes under key in both layers. The slice is
// retained by the memory layer and must not be mutated afterwards.
func (s *Store) Put(key string, data []byte) error {
	if s.dir != "" {
		p, err := s.path(key)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return err
		}
		tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
		if err != nil {
			return err
		}
		_, werr := tmp.Write(data)
		cerr := tmp.Close()
		if werr != nil || cerr != nil {
			os.Remove(tmp.Name())
			if werr != nil {
				return werr
			}
			return cerr
		}
		if err := os.Rename(tmp.Name(), p); err != nil {
			os.Remove(tmp.Name())
			return err
		}
	}
	s.admit(key, data)
	return nil
}

// admit inserts data into the memory layer, evicting least-recently-used
// entries until the byte budget holds. Artifacts larger than the whole
// budget bypass the memory layer (they would only thrash it).
func (s *Store) admit(key string, data []byte) {
	if s.maxBytes <= 0 || int64(len(data)) > s.maxBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.idx[key]; ok {
		// Content-addressed: same key implies same bytes; just refresh.
		s.ll.MoveToFront(el)
		return
	}
	el := s.ll.PushFront(&storeEntry{key: key, data: data})
	s.idx[key] = el
	s.cur += int64(len(data))
	for s.cur > s.maxBytes {
		back := s.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*storeEntry)
		s.ll.Remove(back)
		delete(s.idx, ent.key)
		s.cur -= int64(len(ent.data))
	}
}

// Writable probes the store's write path for the readiness check: a
// memory-only store is always writable; a disk-backed store must be
// able to create, write and remove a file under its root.
func (s *Store) Writable() error {
	if s.dir == "" {
		return nil
	}
	f, err := os.CreateTemp(s.dir, ".readyz-*")
	if err != nil {
		return fmt.Errorf("serve: store not writable: %w", err)
	}
	name := f.Name()
	_, werr := f.Write([]byte("ok"))
	cerr := f.Close()
	rerr := os.Remove(name)
	for _, e := range []error{werr, cerr, rerr} {
		if e != nil {
			return fmt.Errorf("serve: store not writable: %w", e)
		}
	}
	return nil
}

// MemBytes reports the bytes currently held by the memory layer.
func (s *Store) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}
