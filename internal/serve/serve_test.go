package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const testKernel = "C(i,j) = A(i,k) * B(k,j) | order: i,k,j"

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func ingestGen(t testing.TB, url, label string, scale int) string {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/tensors", map[string]any{
		"gen": map[string]any{"label": label, "scale": scale},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	var ir struct {
		ID  string `json:"id"`
		NNZ int    `json:"nnz"`
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("ingest response: %v", err)
	}
	if !strings.HasPrefix(ir.ID, "sha256:") || ir.NNZ == 0 {
		t.Fatalf("implausible ingest response: %s", body)
	}
	return ir.ID
}

// TestEndToEnd drives the full service flow: ingest, cold optimize, warm
// optimize, predict, stats. The warm optimize must be byte-identical to
// the cold one and must skip tiling and collection entirely, which the
// expvar counters prove: optimize_cache_hits rises by one while
// stats_collect_total stays flat.
func TestEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := ingestGen(t, ts.URL, "C", 1<<20)

	// Re-ingesting identical content is a cache hit on the same address.
	resp, body := postJSON(t, ts.URL+"/v1/tensors", map[string]any{
		"gen": map[string]any{"label": "C", "scale": 1 << 20},
	})
	var again struct {
		ID     string `json:"id"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(body, &again); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("re-ingest: status %d err %v: %s", resp.StatusCode, err, body)
	}
	if again.ID != id || !again.Cached {
		t.Fatalf("re-ingest not content-addressed: %s", body)
	}

	optReq := map[string]any{
		"kernel": testKernel,
		"inputs": map[string]string{"A": id, "B": id},
		"tile":   32,
	}
	cold, coldBody := postJSON(t, ts.URL+"/v1/optimize", optReq)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold optimize: status %d: %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-D2T2-Cache"); got != "miss" {
		t.Fatalf("cold optimize cache header %q, want miss", got)
	}
	if cold.Header.Get("X-D2T2-Version") == "" {
		t.Fatalf("version header missing")
	}
	collects := s.Metric("stats_collect_total")
	if collects == 0 {
		t.Fatalf("cold optimize performed no collections")
	}
	hits := s.Metric("optimize_cache_hits")

	warm, warmBody := postJSON(t, ts.URL+"/v1/optimize", optReq)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm optimize: status %d: %s", warm.StatusCode, warmBody)
	}
	if got := warm.Header.Get("X-D2T2-Cache"); got != "hit" {
		t.Fatalf("warm optimize cache header %q, want hit", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("warm response differs from cold:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}
	if got := s.Metric("optimize_cache_hits"); got != hits+1 {
		t.Fatalf("optimize_cache_hits = %d, want %d", got, hits+1)
	}
	if got := s.Metric("stats_collect_total"); got != collects {
		t.Fatalf("warm optimize re-collected statistics: %d -> %d", collects, got)
	}

	var plan struct {
		Config      map[string]int `json:"config"`
		PredictedMB float64        `json:"predictedMB"`
	}
	if err := json.Unmarshal(coldBody, &plan); err != nil {
		t.Fatalf("optimize response: %v", err)
	}
	if len(plan.Config) != 3 || plan.PredictedMB <= 0 {
		t.Fatalf("implausible plan: %s", coldBody)
	}

	// A different query against the same tensors reuses the statistics
	// artifacts even though its response is not cached yet.
	resp, body = postJSON(t, ts.URL+"/v1/predict", map[string]any{
		"kernel":    testKernel,
		"inputs":    map[string]string{"A": id, "B": id},
		"config":    map[string]int{"i": 16, "k": 16, "j": 16},
		"statsTile": 32,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d: %s", resp.StatusCode, body)
	}
	if got := s.Metric("stats_collect_total"); got != collects {
		t.Fatalf("predict re-collected statistics at the optimizer's tiling: %d -> %d", collects, got)
	}
	var pr struct {
		PredictedMB float64 `json:"predictedMB"`
	}
	if err := json.Unmarshal(body, &pr); err != nil || pr.PredictedMB <= 0 {
		t.Fatalf("implausible prediction: %s", body)
	}

	// Warm predict is served from the response cache.
	resp, body2 := postJSON(t, ts.URL+"/v1/predict", map[string]any{
		"kernel":    testKernel,
		"inputs":    map[string]string{"A": id, "B": id},
		"config":    map[string]int{"i": 16, "k": 16, "j": 16},
		"statsTile": 32,
	})
	if resp.Header.Get("X-D2T2-Cache") != "hit" || !bytes.Equal(body, body2) {
		t.Fatalf("warm predict not cached byte-identically")
	}

	// Stats summary endpoint.
	sr, err := http.Get(ts.URL + "/v1/tensors/" + id + "/stats?tile=32")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	body, _ = io.ReadAll(sr.Body)
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d: %s", sr.StatusCode, body)
	}
	var sum struct {
		SizeTile float64 `json:"sizeTile"`
		NumTiles int     `json:"numTiles"`
	}
	if err := json.Unmarshal(body, &sum); err != nil || sum.SizeTile <= 0 || sum.NumTiles <= 0 {
		t.Fatalf("implausible stats summary: %s", body)
	}
}

// TestWarmAcrossRestart proves persistence: a second server over the same
// cache directory serves the optimize response and tensor artifact from
// disk without re-ingesting or re-collecting.
func TestWarmAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{CacheDir: dir})
	id := ingestGen(t, ts1.URL, "C", 1<<20)
	optReq := map[string]any{
		"kernel": testKernel,
		"inputs": map[string]string{"A": id, "B": id},
		"tile":   32,
	}
	cold, coldBody := postJSON(t, ts1.URL+"/v1/optimize", optReq)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold optimize: %d", cold.StatusCode)
	}
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{CacheDir: dir})
	warm, warmBody := postJSON(t, ts2.URL+"/v1/optimize", optReq)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("restarted optimize: status %d: %s", warm.StatusCode, warmBody)
	}
	if warm.Header.Get("X-D2T2-Cache") != "hit" || !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("restart lost the response cache")
	}
	if got := s2.Metric("stats_collect_total"); got != 0 {
		t.Fatalf("restarted server re-collected: %d", got)
	}

	// The tensor artifact also survives: a stats query for the ingested
	// address works without a fresh ingest.
	sr, err := http.Get(ts2.URL + "/v1/tensors/" + id + "/stats?tile=32")
	if err != nil || sr.StatusCode != http.StatusOK {
		t.Fatalf("stats after restart: %v %d", err, sr.StatusCode)
	}
	sr.Body.Close()
}

func TestRawUploadIngest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mtx := "%%MatrixMarket matrix coordinate real general\n4 4 3\n1 1 1.0\n2 3 2.0\n4 4 3.0\n"
	resp, err := http.Post(ts.URL+"/v1/tensors", "text/plain", strings.NewReader(mtx))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	var ir struct {
		ID   string `json:"id"`
		Dims []int  `json:"dims"`
		NNZ  int    `json:"nnz"`
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("response: %v", err)
	}
	if ir.NNZ != 3 || len(ir.Dims) != 2 || ir.Dims[0] != 4 {
		t.Fatalf("wrong parse: %s", body)
	}

	// The same matrix as a .tns upload lands on a different address only
	// because TNS infers tight dims; the parse itself must succeed.
	tns := "1 1 1.0\n2 3 2.0\n4 4 3.0\n"
	resp, err = http.Post(ts.URL+"/v1/tensors", "text/plain", strings.NewReader(tns))
	if err != nil {
		t.Fatalf("tns upload: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tns upload: status %d", resp.StatusCode)
	}
}

func TestErrorPaths(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"bad json", "/v1/optimize", "{", http.StatusBadRequest},
		{"bad kernel", "/v1/optimize", `{"kernel":"nonsense","inputs":{}}`, http.StatusBadRequest},
		{"unknown tensor", "/v1/optimize",
			`{"kernel":"C(i,j) = A(i,k) * B(k,j) | order: i,k,j","inputs":{"A":"sha256:` + strings.Repeat("0", 64) + `","B":"sha256:` + strings.Repeat("0", 64) + `"}}`,
			http.StatusNotFound},
		{"missing input", "/v1/optimize",
			`{"kernel":"C(i,j) = A(i,k) * B(k,j) | order: i,k,j","inputs":{}}`,
			http.StatusNotFound},
		{"bad gen label", "/v1/tensors", `{"gen":{"label":"no-such-label","scale":1}}`, http.StatusBadRequest},
		{"no gen spec", "/v1/tensors", `{}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, body)
		}
	}
	if s.Metric("http_errors") == 0 {
		t.Errorf("http_errors counter never moved")
	}

	resp, err := http.Get(ts.URL + "/v1/tensors/not-an-address/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("stats for bogus id: status %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndVars(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var hz struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if err := json.Unmarshal(body, &hz); err != nil || hz.Status != "ok" || hz.Version == "" {
		t.Fatalf("healthz: %s (err %v)", body, err)
	}
	if resp.Header.Get("X-D2T2-Version") != hz.Version {
		t.Fatalf("header/body version mismatch")
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars struct {
		D2t2d map[string]any `json:"d2t2d"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	for _, name := range []string{"ingest_total", "stats_collect_total", "optimize_cache_hits", "bytes_served"} {
		if _, ok := vars.D2t2d[name]; !ok {
			t.Errorf("counter %q missing from /debug/vars", name)
		}
	}
}

// TestGracefulShutdownUnderLoad hammers the server with concurrent
// ingest and optimize requests while a graceful shutdown runs. Every
// response must be a clean success or a clean 503 — no hangs, no panics,
// and (under -race) no data races between handlers, the pool and
// Shutdown.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	cfg := Config{CacheDir: t.TempDir(), Workers: 2}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := ingestGen(t, ts.URL, "C", 1<<20)
	optBody, _ := json.Marshal(map[string]any{
		"kernel": testKernel,
		"inputs": map[string]string{"A": id, "B": id},
		"tile":   32,
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var resp *http.Response
				var err error
				if i%2 == 0 {
					resp, err = http.Post(ts.URL+"/v1/tensors", "application/json",
						strings.NewReader(fmt.Sprintf(`{"gen":{"label":"C","scale":%d}}`, 1<<20)))
				} else {
					resp, err = http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(optBody))
				}
				if err != nil {
					return // connection refused after listener closes is fine
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("request failed with status %d", resp.StatusCode)
					return
				}
			}
		}(i)
	}

	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
}

// BenchmarkServeOptimizeCached measures the warm /v1/optimize path: a
// response-cache hit served straight from the artifact store.
func BenchmarkServeOptimizeCached(b *testing.B) {
	s, ts := newTestServer(b, Config{})
	id := ingestGen(b, ts.URL, "C", 1<<20)
	optBody, _ := json.Marshal(map[string]any{
		"kernel": testKernel,
		"inputs": map[string]string{"A": id, "B": id},
		"tile":   32,
	})
	h := s.Handler()
	warm := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize", bytes.NewReader(optBody))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := warm(); code != http.StatusOK { // cold fill
		b.Fatalf("cold optimize: status %d", code)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if code := warm(); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}
