package serve

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestConfigValidation sweeps the construction-time rejection surface:
// zero fields take defaults silently, negative or contradictory values
// fail New with an error naming the field, and the cluster field rules
// (peers without identity, identity without peers, unsatisfiable
// replication, the node in its own peer list) all refuse before any
// listener or goroutine exists.
func TestConfigValidation(t *testing.T) {
	valid := func() Config {
		return Config{CacheDir: t.TempDir()}
	}
	clustered := func() Config {
		c := valid()
		c.SelfURL = "http://127.0.0.1:9001"
		c.Peers = []string{"http://127.0.0.1:9002", "http://127.0.0.1:9003"}
		c.ClusterSecret = "s"
		return c
	}

	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // "" = must construct
	}{
		{"zero value defaults", func(c *Config) {}, ""},
		{"clustered defaults", func(c *Config) { *c = clustered() }, ""},
		{"negative request timeout", func(c *Config) { c.RequestTimeout = -time.Second }, "RequestTimeout"},
		{"negative read header timeout", func(c *Config) { c.ReadHeaderTimeout = -1 }, "ReadHeaderTimeout"},
		{"negative read timeout", func(c *Config) { c.ReadTimeout = -time.Second }, "ReadTimeout"},
		{"negative write timeout", func(c *Config) { c.WriteTimeout = -time.Second }, "WriteTimeout"},
		{"negative idle timeout", func(c *Config) { c.IdleTimeout = -time.Second }, "IdleTimeout"},
		{"negative peer timeout", func(c *Config) { c.PeerTimeout = -time.Second }, "PeerTimeout"},
		{"read timeout below request timeout", func(c *Config) {
			c.RequestTimeout = 30 * time.Second
			c.ReadTimeout = 10 * time.Second
		}, "ReadTimeout"},
		{"write timeout below request timeout", func(c *Config) {
			c.RequestTimeout = 30 * time.Second
			c.WriteTimeout = 10 * time.Second
		}, "WriteTimeout"},
		{"negative workers", func(c *Config) { c.Workers = -2 }, "Workers"},
		{"negative mem cache", func(c *Config) { c.MemCacheBytes = -1 }, "MemCacheBytes"},
		{"negative upload bound", func(c *Config) { c.MaxUploadBytes = -5 }, "MaxUploadBytes"},
		{"negative stats tile", func(c *Config) { c.DefaultStatsTile = -128 }, "DefaultStatsTile"},
		{"self URL without peers", func(c *Config) { c.SelfURL = "http://127.0.0.1:9001" }, "SelfURL set without Peers"},
		{"peers without self URL", func(c *Config) {
			*c = clustered()
			c.SelfURL = ""
		}, "without SelfURL"},
		{"peers without secret", func(c *Config) {
			*c = clustered()
			c.ClusterSecret = ""
		}, "ClusterSecret"},
		{"negative replication", func(c *Config) {
			*c = clustered()
			c.Replication = -1
		}, "Replication"},
		{"replication exceeds peers", func(c *Config) {
			*c = clustered()
			c.Replication = 3
		}, "Replication"},
		{"self in own peer list", func(c *Config) {
			*c = clustered()
			c.Peers = append(c.Peers, c.SelfURL)
		}, "listed more than once"},
		{"duplicate peer", func(c *Config) {
			*c = clustered()
			c.Peers = append(c.Peers, c.Peers[0])
		}, "listed more than once"},
		{"peer without scheme", func(c *Config) {
			*c = clustered()
			c.Peers[0] = "127.0.0.1:9002"
		}, "http(s) base URL"},
		{"self with bad scheme", func(c *Config) {
			*c = clustered()
			c.SelfURL = "ftp://127.0.0.1:9001"
		}, "http(s) base URL"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mutate(&cfg)
			s, err := New(cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("New: unexpected error %v", err)
				}
				s.Shutdown(context.Background())
				return
			}
			if err == nil {
				s.Shutdown(context.Background())
				t.Fatalf("New accepted invalid config")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name %q", err, tc.wantErr)
			}
		})
	}
}

// TestConfigJSONBodyLimit pins the structured-body bound: 1 MiB by
// default, but clamped down to MaxUploadBytes when the operator set the
// global upload ceiling lower — a JSON body must never be admitted past
// a bound the raw path would refuse.
func TestConfigJSONBodyLimit(t *testing.T) {
	cases := []struct {
		name   string
		upload int64 // MaxUploadBytes (0 = default)
		want   int64
	}{
		{"default upload bound", 0, 1 << 20},
		{"upload bound above 1MiB", 1 << 30, 1 << 20},
		{"upload bound exactly 1MiB", 1 << 20, 1 << 20},
		{"upload bound below 1MiB clamps", 512, 512},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(Config{CacheDir: t.TempDir(), MaxUploadBytes: tc.upload})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer s.Shutdown(context.Background())
			if got := s.jsonBodyLimit(); got != tc.want {
				t.Fatalf("jsonBodyLimit() = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestConfigTrailingSlashNormalized proves member URLs are compared
// canonically: a trailing slash is not a distinct identity.
func TestConfigTrailingSlashNormalized(t *testing.T) {
	cfg := Config{
		CacheDir:      t.TempDir(),
		SelfURL:       "http://127.0.0.1:9001/",
		Peers:         []string{"http://127.0.0.1:9001"},
		ClusterSecret: "s",
	}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "listed more than once") {
		t.Fatalf("trailing-slash self duplicate not caught: %v", err)
	}
}
