// Package checked provides bounds-checked narrowing into the int32
// coordinate width used by the compressed formats. Tile coordinates,
// segment pointers and fiber positions are stored as int32 throughout
// internal/formats; a raw int→int32 conversion on a tensor with more
// than 2^31 nonzeros or coordinates silently wraps and corrupts the
// trie. These helpers make the overflow loud instead. The coordwidth
// analyzer (internal/analysis) flags raw narrowing conversions and
// points here.
package checked

import (
	"fmt"
	"math"
)

// Int32 converts x to the int32 coordinate width, panicking on overflow
// rather than silently wrapping. The panic is deliberate: an overflow
// here means a tensor exceeded the format's representable range, which
// callers cannot recover from mid-build.
func Int32(x int) int32 {
	if x > math.MaxInt32 || x < math.MinInt32 {
		//d2t2:ignore panicpolicy overflowing the coordinate width mid-build is unrecoverable by construction; the builders validate dimensions up front and this is the backstop
		panic(fmt.Sprintf("checked: %d overflows the int32 coordinate width", x))
	}
	return int32(x)
}

// FitsInt32 reports whether x is representable at the coordinate width.
// Builders use it to validate dimensions up front and return an error
// instead of reaching the Int32 backstop per element.
func FitsInt32(x int) bool {
	return x >= math.MinInt32 && x <= math.MaxInt32
}
