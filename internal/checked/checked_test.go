package checked

import (
	"math"
	"testing"
)

func TestInt32InRange(t *testing.T) {
	for _, x := range []int{0, 1, -1, math.MaxInt32, math.MinInt32} {
		if got := Int32(x); int(got) != x {
			t.Fatalf("Int32(%d) = %d", x, got)
		}
	}
}

func TestInt32Overflow(t *testing.T) {
	for _, x := range []int{math.MaxInt32 + 1, math.MinInt32 - 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Int32(%d) did not panic", x)
				}
			}()
			Int32(x)
		}()
	}
}

func TestFitsInt32(t *testing.T) {
	if !FitsInt32(math.MaxInt32) || FitsInt32(math.MaxInt32+1) {
		t.Fatal("FitsInt32 boundary wrong")
	}
	if !FitsInt32(math.MinInt32) || FitsInt32(math.MinInt32-1) {
		t.Fatal("FitsInt32 lower boundary wrong")
	}
}
