package einsum

import "testing"

// FuzzParse exercises the TIN parser for panics and for consistency: any
// accepted statement must validate, stringify, and re-parse to the same
// normal form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"C(i,j) = A(i,k) * B(k,j) | order: i,k,j",
		"D(i,j) = (A(i) + B(i)) * C(i,j) | order: i,j",
		"X(i,j,k) = C(i,j,l) * B(k,l)",
		"E(i) = A(i) + B(i) + C(i) | order: i",
		"Z(a) = (P(a,b) + Q(a)) * (R(a) + S(a)) | order: a,b",
		"C(i,j =",
		"= A(i)",
		"C(i,j) = A(i,k) ** B(k,j)",
		"C() = A()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		e, err := Parse(s)
		if err != nil {
			return
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("accepted statement fails validation: %q: %v", s, err)
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("stringified statement does not re-parse: %q -> %q: %v", s, e.String(), err)
		}
		if len(e.Products()) != len(e2.Products()) {
			t.Fatalf("round trip changed product count: %q", s)
		}
	})
}
