package einsum

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a TIN statement of the form
//
//	Out(i,j) = <expr> | order: i,k,j
//
// where <expr> is built from tensor accesses Name(i,...), '+', '*' and
// parentheses ('*' binds tighter than '+'). The "| order:" clause is
// optional; if omitted, the order is the output indices followed by the
// contracted indices in order of appearance.
func Parse(s string) (*Expr, error) {
	stmt, orderPart, hasOrder := strings.Cut(s, "|")
	lhs, rhs, ok := strings.Cut(stmt, "=")
	if !ok {
		return nil, fmt.Errorf("einsum: missing '=' in %q", s)
	}
	out, rest, err := parseRef(strings.TrimSpace(lhs))
	if err != nil {
		return nil, fmt.Errorf("einsum: bad output access: %w", err)
	}
	if strings.TrimSpace(rest) != "" {
		return nil, fmt.Errorf("einsum: trailing input after output access: %q", rest)
	}

	p := &parser{input: rhs}
	node, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.input) {
		return nil, fmt.Errorf("einsum: trailing input at %q", p.input[p.pos:])
	}

	e := &Expr{Out: out, RHS: node}
	if hasOrder {
		op := strings.TrimSpace(orderPart)
		op = strings.TrimPrefix(op, "order:")
		for _, ix := range strings.Split(op, ",") {
			ix = strings.TrimSpace(ix)
			if ix == "" {
				return nil, fmt.Errorf("einsum: empty index in order clause")
			}
			e.Order = append(e.Order, ix)
		}
	} else {
		e.Order = append(e.Order, e.Out.Indices...)
		e.Order = append(e.Order, e.Contracted()...)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and fixed kernels.
func MustParse(s string) *Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	input string
	pos   int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

func (p *parser) parseAdd() (Node, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '+' {
			return left, nil
		}
		p.pos++
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = Add{left, right}
	}
}

func (p *parser) parseMul() (Node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '*' {
			return left, nil
		}
		p.pos++
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = Mul{left, right}
	}
}

func (p *parser) parseFactor() (Node, error) {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		inner, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("einsum: missing ')' at %q", p.input[p.pos:])
		}
		p.pos++
		return inner, nil
	}
	ref, rest, err := parseRef(p.input[p.pos:])
	if err != nil {
		return nil, err
	}
	p.pos = len(p.input) - len(rest)
	return ref, nil
}

// parseRef parses Name(i,j,...) from the front of s, returning the
// remainder.
func parseRef(s string) (Ref, string, error) {
	i := 0
	for i < len(s) && unicode.IsSpace(rune(s[i])) {
		i++
	}
	start := i
	for i < len(s) && (isIdent(s[i])) {
		i++
	}
	if start == i {
		return Ref{}, s, fmt.Errorf("expected tensor name at %q", s)
	}
	name := s[start:i]
	if i >= len(s) || s[i] != '(' {
		return Ref{}, s, fmt.Errorf("expected '(' after tensor name %q", name)
	}
	i++
	var indices []string
	for {
		for i < len(s) && unicode.IsSpace(rune(s[i])) {
			i++
		}
		st := i
		for i < len(s) && isIdent(s[i]) {
			i++
		}
		if st == i {
			return Ref{}, s, fmt.Errorf("expected index variable in %q", name)
		}
		indices = append(indices, s[st:i])
		for i < len(s) && unicode.IsSpace(rune(s[i])) {
			i++
		}
		if i >= len(s) {
			return Ref{}, s, fmt.Errorf("unterminated access for %q", name)
		}
		if s[i] == ',' {
			i++
			continue
		}
		if s[i] == ')' {
			i++
			return Ref{Name: name, Indices: indices}, s[i:], nil
		}
		return Ref{}, s, fmt.Errorf("unexpected %q in access for %q", s[i], name)
	}
}

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
