package einsum

// The benchmark kernels of the paper's Table 3, as ready-made expressions.

// SpMSpMIKJ is Gustavson's algorithm: C(i,j) = Σ_k A(i,k)·B(k,j) with
// dataflow order i→k→j. A is row-major; B is row-major over k.
func SpMSpMIKJ() *Expr {
	return MustParse("C(i,j) = A(i,k) * B(k,j) | order: i,k,j")
}

// SpMSpMIJK is the inner-product dataflow: order i→j→k. B is stored (j,k)
// so the kernel computes A·Bᵀ when B holds the transposed operand — this
// matches the paper's A×Aᵀ usage where both operands are row-major.
func SpMSpMIJK() *Expr {
	return MustParse("C(i,j) = A(i,k) * B(j,k) | order: i,j,k")
}

// TTM is the tensor-times-matrix kernel of Table 3:
// X(i,j,k) = Σ_l C(i,j,l)·B(k,l), order i→j→l→k.
func TTM() *Expr {
	return MustParse("X(i,j,k) = C(i,j,l) * B(k,l) | order: i,j,l,k")
}

// MTTKRP3 is the matricized tensor times Khatri-Rao product of Table 3:
// D(i,j) = Σ_{k,l} A(i,k,l)·B(j,k)·C(j,l), order i→k→l→j.
func MTTKRP3() *Expr {
	return MustParse("D(i,j) = A(i,k,l) * B(j,k) * C(j,l) | order: i,k,l,j")
}

// SDDMM is the sampled matrix-matrix product, a common sparse ML kernel:
// E(i,j) = Σ_k S(i,j)·A(i,k)·B(k,j) with the sampling mask S fused into
// the contraction. Order i→j→k keeps the mask stationary per (i,j).
func SDDMM() *Expr {
	return MustParse("E(i,j) = S(i,j) * A(i,k) * B(k,j) | order: i,j,k")
}
