// Package einsum implements the tensor index notation (TIN) the paper
// uses to describe kernels: an output tensor defined by sums and products
// of input tensor accesses, together with a dataflow order over the index
// variables (the loop order of the generated nest, §2).
//
// Example inputs accepted by Parse:
//
//	C(i,j) = A(i,k) * B(k,j)            | order: i,k,j
//	D(i,j) = (A(i) + B(i)) * C(i,j)     | order: i,j
//	X(i,j,k) = C(i,j,l) * B(k,l)        | order: i,j,l,k
//
// The IR is deliberately small: references, binary Add and Mul. The
// traffic model consumes the sum-of-products normal form via Products().
package einsum

import (
	"fmt"
	"strings"
)

// Ref is a tensor access: a tensor name and the index variable bound to
// each axis (Indices[a] indexes axis a).
type Ref struct {
	Name    string
	Indices []string
}

func (r Ref) String() string {
	return r.Name + "(" + strings.Join(r.Indices, ",") + ")"
}

// Node is an expression-tree node: Ref, Add or Mul.
type Node interface {
	fmt.Stringer
	isNode()
}

// Add is elementwise addition (union of sparsity structures).
type Add struct{ A, B Node }

// Mul is elementwise/contraction multiplication (intersection).
type Mul struct{ A, B Node }

func (Ref) isNode() {}
func (Add) isNode() {}
func (Mul) isNode() {}

func (n Add) String() string { return "(" + n.A.String() + " + " + n.B.String() + ")" }
func (n Mul) String() string { return n.A.String() + " * " + n.B.String() }

// Expr is a full TIN statement: output access, right-hand side, and the
// dataflow order over every distinct index variable.
type Expr struct {
	Out   Ref
	RHS   Node
	Order []string
}

func (e *Expr) String() string {
	return fmt.Sprintf("%s = %s | order: %s", e.Out, e.RHS, strings.Join(e.Order, ","))
}

// Inputs returns every tensor reference in the RHS in left-to-right
// order (duplicated names appear once per occurrence).
func (e *Expr) Inputs() []Ref {
	var out []Ref
	var walk func(Node)
	walk = func(n Node) {
		switch v := n.(type) {
		case Ref:
			out = append(out, v)
		case Add:
			walk(v.A)
			walk(v.B)
		case Mul:
			walk(v.A)
			walk(v.B)
		}
	}
	walk(e.RHS)
	return out
}

// Input returns the first reference to the named tensor, or an error.
func (e *Expr) Input(name string) (Ref, error) {
	for _, r := range e.Inputs() {
		if r.Name == name {
			return r, nil
		}
	}
	return Ref{}, fmt.Errorf("einsum: no input tensor %q", name)
}

// Contracted returns the index variables that appear in the RHS but not
// in the output — the reduction variables.
func (e *Expr) Contracted() []string {
	outSet := make(map[string]bool)
	for _, ix := range e.Out.Indices {
		outSet[ix] = true
	}
	seen := make(map[string]bool)
	var res []string
	for _, r := range e.Inputs() {
		for _, ix := range r.Indices {
			if !outSet[ix] && !seen[ix] {
				seen[ix] = true
				res = append(res, ix)
			}
		}
	}
	return res
}

// Products returns the sum-of-products normal form of the RHS: one slice
// of references per summand. (A+B)*C normalizes to [[A,C],[B,C]].
func (e *Expr) Products() [][]Ref {
	var norm func(Node) [][]Ref
	norm = func(n Node) [][]Ref {
		switch v := n.(type) {
		case Ref:
			return [][]Ref{{v}}
		case Add:
			return append(norm(v.A), norm(v.B)...)
		case Mul:
			left, right := norm(v.A), norm(v.B)
			var out [][]Ref
			for _, l := range left {
				for _, r := range right {
					term := make([]Ref, 0, len(l)+len(r))
					term = append(term, l...)
					term = append(term, r...)
					out = append(out, term)
				}
			}
			return out
		}
		return nil
	}
	return norm(e.RHS)
}

// WithOrder returns a copy of the expression with a different dataflow
// order (validated against the expression's indices).
func (e *Expr) WithOrder(order []string) (*Expr, error) {
	out := &Expr{Out: e.Out, RHS: e.RHS, Order: append([]string(nil), order...)}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// OrderPermutations returns every permutation of the expression's index
// variables as a candidate dataflow order. The count is factorial in the
// index count; kernels have 3-4 indices in practice.
func (e *Expr) OrderPermutations() [][]string {
	base := append([]string(nil), e.Order...)
	var out [][]string
	var rec func(k int)
	rec = func(k int) {
		if k == len(base) {
			out = append(out, append([]string(nil), base...))
			return
		}
		for i := k; i < len(base); i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// ProductsIdx returns the sum-of-products normal form with each factor
// given as an occurrence index into Inputs() order, preserving occurrence
// identity for tensors shared between summands.
func (e *Expr) ProductsIdx() [][]int {
	counter := 0
	var norm func(Node) [][]int
	norm = func(n Node) [][]int {
		switch v := n.(type) {
		case Ref:
			idx := counter
			counter++
			return [][]int{{idx}}
		case Add:
			return append(norm(v.A), norm(v.B)...)
		case Mul:
			left, right := norm(v.A), norm(v.B)
			var out [][]int
			for _, l := range left {
				for _, r := range right {
					term := make([]int, 0, len(l)+len(r))
					term = append(term, l...)
					term = append(term, r...)
					out = append(out, term)
				}
			}
			return out
		}
		return nil
	}
	return norm(e.RHS)
}

// OrderPos returns the position of an index variable in the dataflow
// order, or -1.
func (e *Expr) OrderPos(ix string) int {
	for p, o := range e.Order {
		if o == ix {
			return p
		}
	}
	return -1
}

// FetchLevel returns the loop depth at which the given reference must be
// (re)fetched: the position in the dataflow order of the reference's
// innermost own index. The reference stays buffer-resident across loops
// deeper than this level.
func (e *Expr) FetchLevel(r Ref) int {
	level := -1
	for _, ix := range r.Indices {
		if p := e.OrderPos(ix); p > level {
			level = p
		}
	}
	return level
}

// FetchSpace returns the loop indices (outermost first) that drive
// re-fetches of the reference: Order[0 .. FetchLevel].
func (e *Expr) FetchSpace(r Ref) []string {
	return e.Order[:e.FetchLevel(r)+1]
}

// LevelOrder returns the axis permutation that stores the referenced
// tensor with CSF levels in dataflow order: axes sorted by the position
// of their index variable in Order. This is the "tensor storage format
// needs to match the dataflow order" requirement of §2.
func (e *Expr) LevelOrder(r Ref) []int {
	axes := make([]int, len(r.Indices))
	for a := range axes {
		axes[a] = a
	}
	for x := 1; x < len(axes); x++ {
		for y := x; y > 0 && e.OrderPos(r.Indices[axes[y]]) < e.OrderPos(r.Indices[axes[y-1]]); y-- {
			axes[y], axes[y-1] = axes[y-1], axes[y]
		}
	}
	return axes
}

// Validate checks: output indices appear in the RHS, every index has a
// position in the dataflow order, the order has no unknown or duplicate
// entries, and no reference repeats an index variable.
func (e *Expr) Validate() error {
	all := make(map[string]bool)
	for _, r := range append(e.Inputs(), e.Out) {
		seen := make(map[string]bool)
		for _, ix := range r.Indices {
			if seen[ix] {
				return fmt.Errorf("einsum: index %q repeated within %s", ix, r)
			}
			seen[ix] = true
		}
	}
	for _, r := range e.Inputs() {
		for _, ix := range r.Indices {
			all[ix] = true
		}
	}
	for _, ix := range e.Out.Indices {
		if !all[ix] {
			return fmt.Errorf("einsum: output index %q not produced by any input", ix)
		}
	}
	inOrder := make(map[string]bool)
	for _, ix := range e.Order {
		if inOrder[ix] {
			return fmt.Errorf("einsum: index %q duplicated in dataflow order", ix)
		}
		if !all[ix] {
			return fmt.Errorf("einsum: dataflow order names unknown index %q", ix)
		}
		inOrder[ix] = true
	}
	for ix := range all {
		if !inOrder[ix] {
			return fmt.Errorf("einsum: index %q missing from dataflow order", ix)
		}
	}
	return nil
}
