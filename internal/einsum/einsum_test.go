package einsum

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseGustavson(t *testing.T) {
	e := MustParse("C(i,j) = A(i,k) * B(k,j) | order: i,k,j")
	if e.Out.Name != "C" || len(e.Out.Indices) != 2 {
		t.Fatalf("out = %v", e.Out)
	}
	ins := e.Inputs()
	if len(ins) != 2 || ins[0].Name != "A" || ins[1].Name != "B" {
		t.Fatalf("inputs = %v", ins)
	}
	if !reflect.DeepEqual(e.Order, []string{"i", "k", "j"}) {
		t.Fatalf("order = %v", e.Order)
	}
	if got := e.Contracted(); !reflect.DeepEqual(got, []string{"k"}) {
		t.Fatalf("contracted = %v", got)
	}
}

func TestParseDefaultOrder(t *testing.T) {
	e := MustParse("C(i,j) = A(i,k) * B(k,j)")
	if !reflect.DeepEqual(e.Order, []string{"i", "j", "k"}) {
		t.Fatalf("default order = %v", e.Order)
	}
}

func TestParseSumOfProducts(t *testing.T) {
	e := MustParse("D(i,j) = (A(i) + B(i)) * C(i,j) | order: i,j")
	prods := e.Products()
	if len(prods) != 2 {
		t.Fatalf("products = %v", prods)
	}
	if prods[0][0].Name != "A" || prods[0][1].Name != "C" {
		t.Fatalf("first product = %v", prods[0])
	}
	if prods[1][0].Name != "B" || prods[1][1].Name != "C" {
		t.Fatalf("second product = %v", prods[1])
	}
}

func TestParseNested(t *testing.T) {
	e := MustParse("E(i) = (A(i) + B(i)) * (C(i) + D(i)) | order: i")
	if got := len(e.Products()); got != 4 {
		t.Fatalf("distributed products = %d, want 4", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"C(i,j)",                                // no '='
		"C(i,j) = A(i,k * B(k,j)",               // unterminated access
		"C(i,j) = A(i,k) & B(k,j)",              // bad operator
		"C(i,j) = A(i,k) * B(k,j) | order: i,k", // j missing from order
		"C(i,j) = A(i,k) * B(k,j) | order: i,k,j,z", // unknown index
		"C(i,j) = A(i,k) * B(k,j) | order: i,i,k,j", // duplicate
		"C(i,z) = A(i,k) * B(k,j) | order: i,k,j",   // output index unused
		"C(i,j) = A(i,i) * B(i,j) | order: i,j",     // repeated index in ref
		"C(i,j) = A(i,k) * B(k,j) extra | order: i,k,j",
		"C(i,j) = (A(i,k) * B(k,j) | order: i,k,j", // missing ')'
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Fatalf("accepted invalid %q", s)
		}
	}
}

func TestFetchSpaces(t *testing.T) {
	e := SpMSpMIKJ() // order i,k,j
	a, _ := e.Input("A")
	b, _ := e.Input("B")
	// A(i,k): innermost own index is k at position 1 -> fetch space {i,k}.
	if got := e.FetchSpace(a); !reflect.DeepEqual(got, []string{"i", "k"}) {
		t.Fatalf("A fetch space = %v", got)
	}
	// B(k,j): innermost own index j at position 2 -> fetch space {i,k,j}.
	if got := e.FetchSpace(b); !reflect.DeepEqual(got, []string{"i", "k", "j"}) {
		t.Fatalf("B fetch space = %v", got)
	}
}

func TestFetchSpaceInnerProduct(t *testing.T) {
	e := SpMSpMIJK() // order i,j,k
	a, _ := e.Input("A")
	b, _ := e.Input("B")
	if got := e.FetchSpace(a); !reflect.DeepEqual(got, []string{"i", "j", "k"}) {
		t.Fatalf("A fetch space = %v", got)
	}
	if got := e.FetchSpace(b); !reflect.DeepEqual(got, []string{"i", "j", "k"}) {
		t.Fatalf("B fetch space = %v", got)
	}
}

func TestLevelOrder(t *testing.T) {
	e := SpMSpMIKJ()
	b, _ := e.Input("B")
	// B(k,j) with order i,k,j: k (pos 1) before j (pos 2): axes stay (0,1).
	if got := e.LevelOrder(b); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("B level order = %v", got)
	}
	e2 := MustParse("C(i,j) = A(i,k) * B(j,k) | order: i,k,j")
	b2, _ := e2.Input("B")
	// B(j,k): k (pos 1) sorts before j (pos 2): axis 1 first.
	if got := e2.LevelOrder(b2); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("B2 level order = %v", got)
	}
}

func TestKernels(t *testing.T) {
	for _, e := range []*Expr{SpMSpMIKJ(), SpMSpMIJK(), TTM(), MTTKRP3()} {
		if err := e.Validate(); err != nil {
			t.Fatalf("%s: %v", e, err)
		}
	}
	ttm := TTM()
	if got := ttm.Contracted(); !reflect.DeepEqual(got, []string{"l"}) {
		t.Fatalf("TTM contracted = %v", got)
	}
	mt := MTTKRP3()
	if got := mt.Contracted(); !reflect.DeepEqual(got, []string{"k", "l"}) {
		t.Fatalf("MTTKRP contracted = %v", got)
	}
	if len(mt.Products()[0]) != 3 {
		t.Fatal("MTTKRP product should have three factors")
	}
}

func TestMTTKRPFetchSpaces(t *testing.T) {
	e := MTTKRP3() // order i,k,l,j
	a, _ := e.Input("A")
	b, _ := e.Input("B")
	c, _ := e.Input("C")
	if got := e.FetchSpace(a); !reflect.DeepEqual(got, []string{"i", "k", "l"}) {
		t.Fatalf("A fetch space = %v", got)
	}
	// B(j,k): j is innermost (pos 3): refetched over everything.
	if got := e.FetchSpace(b); len(got) != 4 {
		t.Fatalf("B fetch space = %v", got)
	}
	if got := e.FetchSpace(c); len(got) != 4 {
		t.Fatalf("C fetch space = %v", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	e := MustParse("D(i,j) = (A(i) + B(i)) * C(i,j) | order: i,j")
	e2, err := Parse(e.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", e.String(), err)
	}
	if !reflect.DeepEqual(e.Products(), e2.Products()) {
		t.Fatal("string round trip changed products")
	}
}

func TestWithOrderAndPermutations(t *testing.T) {
	e := SpMSpMIKJ()
	v, err := e.WithOrder([]string{"k", "i", "j"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Order, []string{"k", "i", "j"}) {
		t.Fatalf("order = %v", v.Order)
	}
	// The original is untouched.
	if !reflect.DeepEqual(e.Order, []string{"i", "k", "j"}) {
		t.Fatal("WithOrder mutated the receiver")
	}
	// Level orders adapt: A(i,k) under k-major becomes axis order (1,0).
	a, _ := v.Input("A")
	if got := v.LevelOrder(a); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("A level order under kij = %v", got)
	}
	for _, bad := range [][]string{{"i", "k"}, {"i", "k", "z"}, {"i", "i", "k"}} {
		if _, err := e.WithOrder(bad); err == nil {
			t.Fatalf("accepted bad order %v", bad)
		}
	}
	perms := MTTKRP3().OrderPermutations()
	if len(perms) != 24 {
		t.Fatalf("4 indices should give 24 permutations, got %d", len(perms))
	}
}

func TestNodeStrings(t *testing.T) {
	e := MustParse("D(i) = (A(i) + B(i)) * C(i) | order: i")
	s := e.RHS.String()
	if !strings.Contains(s, "A(i) + B(i)") || !strings.Contains(s, "* C(i)") {
		t.Fatalf("node string = %q", s)
	}
	if _, err := e.Input("Z"); err == nil {
		t.Fatal("unknown input accepted")
	}
}

func TestProductsIdxSharedOccurrence(t *testing.T) {
	e := MustParse("D(i) = (A(i) + B(i)) * C(i) | order: i")
	idx := e.ProductsIdx()
	if len(idx) != 2 {
		t.Fatalf("products = %v", idx)
	}
	// C is occurrence 2 in both summands.
	if idx[0][1] != 2 || idx[1][1] != 2 {
		t.Fatalf("shared occurrence not preserved: %v", idx)
	}
}
