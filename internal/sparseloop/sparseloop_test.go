package sparseloop

import (
	"math/rand"
	"testing"

	"d2t2/internal/accel"
	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/gen"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

func tiledPair(t *testing.T, e *einsum.Expr, a, b *tensor.COO, tile int) map[string]*tiling.TiledTensor {
	t.Helper()
	out := make(map[string]*tiling.TiledTensor)
	for name, m := range map[string]*tensor.COO{"A": a, "B": b} {
		ref, err := e.Input(name)
		if err != nil {
			t.Fatal(err)
		}
		tt, err := tiling.New(m, []int{tile, tile}, e.LevelOrder(ref))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = tt
	}
	return out
}

// TestAgreesWithInterpreter: the analytical evaluator must match the
// interpreting backend exactly on input traffic, tile iterations and
// MACs for both SpMSpM dataflows and several structures.
func TestAgreesWithInterpreter(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	cases := map[string]*tensor.COO{
		"banded":   gen.Banded(r, 256, 5, 6),
		"powerlaw": gen.PowerLawGraph(r, 256, 2000, 1.7),
		"uniform":  gen.UniformRandom(r, 256, 256, 1500),
	}
	for name, a := range cases {
		for _, e := range []*einsum.Expr{einsum.SpMSpMIKJ(), einsum.SpMSpMIJK()} {
			b := a.Transpose()
			if bref, _ := e.Input("B"); bref.Indices[0] == "j" {
				b = a.Clone()
			}
			tens := tiledPair(t, e, a, b, 16)
			est, err := Evaluate(e, tens, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := exec.Measure(e, tens, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range []string{"A", "B"} {
				if int64(est.Input[op]) != ref.Input[op] {
					t.Fatalf("%s %v %s: analytic %v != interpreted %d",
						name, e.Order, op, est.Input[op], ref.Input[op])
				}
			}
			if int64(est.TileIterations) != ref.TileIterations {
				t.Fatalf("%s %v: iterations %v != %d", name, e.Order, est.TileIterations, ref.TileIterations)
			}
			if int64(est.Partials) != ref.MACs {
				t.Fatalf("%s %v: partials %v != MACs %d", name, e.Order, est.Partials, ref.MACs)
			}
		}
	}
}

func TestOverbookingCosts(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	a := gen.UniformRandom(r, 64, 64, 1200) // dense-ish tiles
	e := einsum.SpMSpMIKJ()
	tens := tiledPair(t, e, a, a.Transpose(), 16)
	plain, err := Evaluate(e, tens, Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxTile := 0
	for _, tt := range tens {
		if tt.MaxFootprint > maxTile {
			maxTile = tt.MaxFootprint
		}
	}
	over, err := Evaluate(e, tens, Options{InputBufferWords: maxTile / 2})
	if err != nil {
		t.Fatal(err)
	}
	if over.Total() <= plain.Total() || over.OverflowFetches == 0 {
		t.Fatalf("overbooking added no cost: %v vs %v (overflows %v)",
			over.Total(), plain.Total(), over.OverflowFetches)
	}
	// The overbooked analytic totals must also match the interpreter.
	ref, err := exec.Measure(e, tens, &exec.Options{InputBufferWords: maxTile / 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"A", "B"} {
		diff := est(over.Input[op]) - ref.Input[op]
		if diff < -1 || diff > 1 {
			t.Fatalf("%s overbooked: analytic %v != interpreted %d", op, over.Input[op], ref.Input[op])
		}
	}
	if over.Cycles(accel.Extensor()) <= 0 {
		t.Fatal("no cycles")
	}
}

func est(x float64) int64 { return int64(x) }

func TestEvaluateErrors(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	a := gen.UniformRandom(r, 32, 32, 100)
	e := einsum.SpMSpMIKJ()
	tens := tiledPair(t, e, a, a.Transpose(), 8)
	// Missing tensor.
	if _, err := Evaluate(e, map[string]*tiling.TiledTensor{"A": tens["A"]}, Options{}); err == nil {
		t.Fatal("missing tensor accepted")
	}
	// Three-factor kernel unsupported.
	if _, err := Evaluate(einsum.MTTKRP3(), tens, Options{}); err == nil {
		t.Fatal("MTTKRP accepted")
	}
	// Mismatched contracted tile sizes.
	refB, _ := e.Input("B")
	badB, _ := tiling.New(a.Transpose(), []int{4, 4}, e.LevelOrder(refB))
	if _, err := Evaluate(e, map[string]*tiling.TiledTensor{"A": tens["A"], "B": badB}, Options{}); err == nil {
		t.Fatal("tile mismatch accepted")
	}
}
