// Package sparseloop is an analytical accelerator evaluator in the
// spirit of Sparseloop (Wu et al., MICRO 2022) — the execution backend
// the Tailors paper used and one of the backends the D2T2 paper
// evaluates against. Unlike package exec, which interprets the tiled
// loop nest, this evaluator computes expected traffic and cycles in
// closed form from the *actual* tiled data (per-tile footprints and
// occupancy), without visiting iteration points:
//
//   - input traffic sums, per operand, footprint × re-fetch multiplicity,
//     where the multiplicity is the exact count of co-operand tiles in
//     the shared contracted slice (the same joins the hardware's tile
//     filtering performs, but evaluated on tile metadata only);
//   - overbooked buffers (Tailors) charge excess streaming per fetch;
//   - output traffic uses the expected partial-product estimate from the
//     operands' element histograms discounted by within-write reduction;
//   - cycles follow the memory-bound machine model of package accel.
//
// The evaluator is restricted to two-operand single-contraction matrix
// kernels (SpMSpM in any dataflow) — exactly the scope Sparseloop was
// used for in the papers. Its input-traffic numbers agree with the
// interpreting backend exactly; outputs are analytical estimates.
package sparseloop

import (
	"fmt"

	"d2t2/internal/accel"
	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/tiling"
)

// Options configures the analytical evaluation.
type Options struct {
	// InputBufferWords > 0 enables Tailors-style overbooking accounting:
	// tiles larger than the buffer stream their excess on every fetch.
	InputBufferWords int
	// OverflowExtra is the extra traffic per excess word (default 1).
	OverflowExtra float64
}

// Estimate is the analytical evaluation result.
type Estimate struct {
	Input           map[string]float64 // words per operand
	Output          float64
	TileIterations  float64
	Partials        float64 // exact scalar partial products (= MACs)
	OverflowFetches float64
}

// Total returns input + output words.
func (e *Estimate) Total() float64 {
	t := e.Output
	for _, v := range e.Input {
		t += v
	}
	return t
}

// Traffic converts the estimate to an exec.Traffic for use with the
// machine models (values rounded).
func (e *Estimate) Traffic() *exec.Traffic {
	tr := &exec.Traffic{Input: make(map[string]int64, len(e.Input))}
	for name, v := range e.Input {
		tr.Input[name] = int64(v)
	}
	tr.Output = int64(e.Output)
	tr.TileIterations = int64(e.TileIterations)
	tr.MACs = int64(e.Partials)
	tr.OverflowFetches = int64(e.OverflowFetches)
	return tr
}

// Cycles evaluates the estimate on a machine model.
func (e *Estimate) Cycles(a accel.Arch) float64 {
	return accel.Cycles(e.Traffic(), a)
}

// Evaluate analytically prices the kernel over the tiled operands.
func Evaluate(e *einsum.Expr, tensors map[string]*tiling.TiledTensor, opts Options) (*Estimate, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	prods := e.ProductsIdx()
	inputs := e.Inputs()
	if len(prods) != 1 || len(prods[0]) != 2 {
		return nil, fmt.Errorf("sparseloop: only two-operand product kernels are supported")
	}
	contracted := e.Contracted()
	if len(contracted) != 1 {
		return nil, fmt.Errorf("sparseloop: exactly one contracted index required")
	}
	ix := contracted[0]

	type operand struct {
		ref   einsum.Ref
		tt    *tiling.TiledTensor
		kAxis int
	}
	ops := make([]operand, 2)
	for oi, refIdx := range prods[0] {
		ref := inputs[refIdx]
		tt := tensors[ref.Name]
		if tt == nil {
			return nil, fmt.Errorf("sparseloop: missing tensor %q", ref.Name)
		}
		if len(ref.Indices) != 2 {
			return nil, fmt.Errorf("sparseloop: %s is not a matrix", ref)
		}
		k := -1
		for a, v := range ref.Indices {
			if v == ix {
				k = a
			}
		}
		if k < 0 {
			return nil, fmt.Errorf("sparseloop: %s does not carry the contracted index", ref)
		}
		ops[oi] = operand{ref: ref, tt: tt, kAxis: k}
	}
	v, w := ops[0], ops[1]
	if v.tt.TileDims[v.kAxis] != w.tt.TileDims[w.kAxis] {
		return nil, fmt.Errorf("sparseloop: contracted tile sizes differ")
	}
	nSlices := v.tt.OuterDims[v.kAxis]
	if w.tt.OuterDims[w.kAxis] > nSlices {
		nSlices = w.tt.OuterDims[w.kAxis]
	}

	// Per-k'-slice tile counts, footprints and element counts.
	type sliceAgg struct {
		tiles    int
		fp       float64
		overflow int
	}
	agg := func(op operand) ([]sliceAgg, []float64) {
		slices := make([]sliceAgg, nSlices)
		elems := make([]float64, op.tt.Dims[op.kAxis])
		for _, tile := range op.tt.Tiles {
			s := tile.Outer[op.kAxis]
			slices[s].tiles++
			slices[s].fp += fetchCost(tile, opts)
			if b := opts.InputBufferWords; b > 0 && tile.Footprint > b {
				slices[s].overflow++
			}
			coo := tile.CSF.ToCOO()
			for p := 0; p < coo.NNZ(); p++ {
				elems[tile.Outer[op.kAxis]*op.tt.TileDims[op.kAxis]+coo.Crds[op.kAxis][p]]++
			}
		}
		return slices, elems
	}
	vSlices, vElems := agg(v)
	wSlices, wElems := agg(w)

	est := &Estimate{Input: make(map[string]float64, 2)}

	// Re-fetch multiplicity per operand, from the kernel's fetch spaces:
	// an operand whose fetch space includes an extra loop index is fetched
	// once per co-operand tile in its contracted slice; an operand with no
	// extra index is fetched once per own tile with work in the slice.
	traffic := func(self, other operand, selfSlices, otherSlices []sliceAgg) float64 {
		extra := false
		own := map[string]bool{}
		for _, vix := range self.ref.Indices {
			own[vix] = true
		}
		for _, lix := range e.FetchSpace(self.ref) {
			if !own[lix] {
				extra = true
			}
		}
		total := 0.0
		for s := 0; s < nSlices; s++ {
			if extra {
				total += selfSlices[s].fp * float64(otherSlices[s].tiles)
				est.OverflowFetches += float64(selfSlices[s].overflow * otherSlices[s].tiles)
			} else if otherSlices[s].tiles > 0 {
				total += selfSlices[s].fp
				est.OverflowFetches += float64(selfSlices[s].overflow)
			}
		}
		return total
	}
	est.Input[v.ref.Name] += traffic(v, w, vSlices, wSlices)
	est.Input[w.ref.Name] += traffic(w, v, wSlices, vSlices)

	// Tile iterations: pairs sharing a contracted slice.
	for s := 0; s < nSlices; s++ {
		est.TileIterations += float64(vSlices[s].tiles) * float64(wSlices[s].tiles)
	}

	// Exact partial products from element histograms.
	n := len(vElems)
	if len(wElems) < n {
		n = len(wElems)
	}
	for i := 0; i < n; i++ {
		est.Partials += vElems[i] * wElems[i]
	}

	// Output: each scalar partial is written once per stationarity region;
	// within-region reduction is approximated by the contracted tile span
	// density (partials per distinct coordinate cannot be known without
	// executing, so the estimate charges value+coordinate words per
	// partial divided by the contracted tile extent's expected reuse of 1;
	// this is the same simplification Sparseloop's coupled model makes).
	est.Output = 2 * est.Partials
	return est, nil
}

// fetchCost is the per-fetch traffic of a tile under the (possibly
// overbooked) buffer.
func fetchCost(t *tiling.Tile, opts Options) float64 {
	cost := float64(t.Footprint)
	if b := opts.InputBufferWords; b > 0 && t.Footprint > b {
		extra := opts.OverflowExtra
		if extra == 0 {
			extra = 1
		}
		cost += extra * float64(t.Footprint-b)
	}
	return cost
}
