// Package buildinfo carries the version string stamped into the binaries
// at link time:
//
//	go build -ldflags "-X d2t2/internal/buildinfo.Version=v1.2.3" ./cmd/...
//
// Unstamped builds report "dev". The CLIs expose it via -version and the
// d2t2d server reports it in the X-D2T2-Version response header and on
// /healthz.
package buildinfo

// Version is the build version, overridden via -ldflags -X.
var Version = "dev"
