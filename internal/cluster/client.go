package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// maxPeerBody bounds one peer response read. Artifacts are snapshots
// the sender already held in memory; anything past this is a protocol
// violation, not a bigger tensor.
const maxPeerBody = 1 << 30

// Client speaks the internal peer protocol. Every method takes a
// context first and additionally bounds each network attempt with the
// configured per-attempt timeout, so one wedged peer costs at most
// that long before the caller's fallback ladder moves on. A Client is
// safe for concurrent use.
type Client struct {
	httpc   *http.Client
	secret  string
	timeout time.Duration
}

// NewClient builds a peer client carrying the shared cluster secret.
// timeout bounds each single attempt (<= 0 means 5 s).
func NewClient(secret string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Client{
		// Transport defaults (connection pooling, keep-alive) are what we
		// want between long-lived peers; the per-attempt bound comes from
		// the context so it composes with request deadlines.
		httpc:   &http.Client{},
		secret:  secret,
		timeout: timeout,
	}
}

// artifactURL builds the internal artifact route for key on peer.
func artifactURL(peer, key string) string {
	return peer + "/internal/v1/artifact/" + url.PathEscape(key)
}

// FetchArtifact asks peer for the artifact under key, verifying the
// frame CRC and that the peer answered for the requested key. A clean
// peer-side miss returns ErrNotFound; transport and protocol failures
// return their own errors so callers can count them apart.
func (c *Client) FetchArtifact(ctx context.Context, peer, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, artifactURL(peer, key), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(SecretHeader, c.secret)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s artifact fetch: status %d", peer, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, err
	}
	gotKey, payload, err := DecodeFrame(body)
	if err != nil {
		return nil, err
	}
	if gotKey != key {
		return nil, fmt.Errorf("cluster: peer %s answered for key %q, asked %q", peer, gotKey, key)
	}
	return payload, nil
}

// PushArtifact replicates the artifact under key to peer (best-effort
// PUT; the receiver re-verifies the frame CRC and the snapshot's own
// section CRCs before admitting it).
func (c *Client) PushArtifact(ctx context.Context, peer, key string, payload []byte) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	frame := EncodeFrame(key, payload)
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, artifactURL(peer, key), bytes.NewReader(frame))
	if err != nil {
		return err
	}
	req.Header.Set(SecretHeader, c.secret)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("cluster: peer %s artifact push: status %d", peer, resp.StatusCode)
	}
	return nil
}

// ForwardResult is one forwarded request's outcome as the owner
// produced it.
type ForwardResult struct {
	// Status is the owner's HTTP status.
	Status int
	// Body is the owner's exact response bytes — for a 200 these are
	// the fleet-canonical bytes every node serves for the key.
	Body []byte
}

// Forward relays one cold request body to the owner peer's internal
// endpoint ("optimize" or "predict") and returns the owner's verbatim
// answer. The forwarded marker header stops the owner from forwarding
// again. A non-nil error means the owner was never usefully reached
// (transport failure, auth rejection); an HTTP-level failure from the
// owner's pipeline comes back as a ForwardResult with its status.
func (c *Client) Forward(ctx context.Context, peer, endpoint string, body []byte) (*ForwardResult, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		peer+"/internal/v1/"+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set(SecretHeader, c.secret)
	req.Header.Set(ForwardedHeader, "1")
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusForbidden {
		return nil, fmt.Errorf("cluster: peer %s rejected internal auth", peer)
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, err
	}
	return &ForwardResult{Status: resp.StatusCode, Body: respBody}, nil
}

// Ping probes peer's internal surface — the readiness check's
// "ring formed with a reachable peer" signal.
func (c *Client) Ping(ctx context.Context, peer string) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/internal/v1/ping", nil)
	if err != nil {
		return err
	}
	req.Header.Set(SecretHeader, c.secret)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s ping: status %d", peer, resp.StatusCode)
	}
	return nil
}
