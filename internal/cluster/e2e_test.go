package cluster_test

// Multi-node end-to-end tests: three real serve.Servers wired into one
// cluster over loopback HTTP. The httptest listeners exist before the
// servers (each fronted by a swappable handler proxy), so every node
// knows the full member URL set at construction — the same order of
// operations a static -peers deployment has.
//
// The tests prove the cluster's three core claims by counters and bytes:
// identical cold work runs once fleet-wide (sum of singleflight_leader
// across nodes is 1), every node serves byte-identical bodies for a key
// whatever rung produced them, and a dead owner costs latency, never
// availability (forward falls back to local compute).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"d2t2"
	"d2t2/internal/serve"
	"d2t2/internal/snapshot"
)

const e2eKernel = "C(i,j) = A(i,k) * B(k,j) | order: i,k,j"

// handlerProxy lets an httptest listener exist before the handler it
// serves: the test learns every node's URL first, then builds the
// servers with full membership and swaps them in. Swapping in an
// aborting handler later is how a test "kills" a node without closing
// its listener (peers see connection resets, as with a crashed process
// behind a live load balancer).
type handlerProxy struct{ h atomic.Value }

func (p *handlerProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.h.Load().(http.Handler).ServeHTTP(w, r)
}

type testNode struct {
	srv   *serve.Server
	url   string
	proxy *handlerProxy
}

// kill makes the node unreachable mid-connection: every subsequent
// request — internal or public — aborts without a response.
func (n *testNode) kill() {
	n.proxy.h.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
}

// newTestCluster starts n clustered nodes with the given replication
// factor and returns them; everything is torn down with the test.
func newTestCluster(t testing.TB, n, replication int) []*testNode {
	t.Helper()
	const secret = "e2e-cluster-secret"
	nodes := make([]*testNode, n)
	urls := make([]string, n)
	for i := range nodes {
		p := &handlerProxy{}
		p.h.Store(http.NotFoundHandler())
		ts := httptest.NewServer(p)
		t.Cleanup(ts.Close)
		nodes[i] = &testNode{url: ts.URL, proxy: p}
		urls[i] = ts.URL
	}
	for i, nd := range nodes {
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		s, err := serve.New(serve.Config{
			CacheDir:      t.TempDir(),
			Peers:         peers,
			SelfURL:       nd.url,
			ClusterSecret: secret,
			Replication:   replication,
			PeerTimeout:   20 * time.Second,
		})
		if err != nil {
			t.Fatalf("node %d New: %v", i, err)
		}
		nd.srv = s
		nd.proxy.h.Store(s.Handler())
		t.Cleanup(func() { s.Shutdown(context.Background()) })
	}
	return nodes
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func ingestGen(t testing.TB, node *testNode, label string, scale int) string {
	t.Helper()
	resp, body := postJSON(t, node.url+"/v1/tensors", map[string]any{
		"gen": map[string]any{"label": label, "scale": scale},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	var ir struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("ingest response: %v", err)
	}
	return ir.ID
}

// optimizeKeyFor derives the response key a node will compute for an
// optimize request, client-side: the canonical form re-marshals the
// normalized kernel with defaults applied and zero-valued knobs
// omitted, exactly as the handler does. The tests cross-check it
// against the X-D2T2-Key response header, so a drift between this
// mirror and the server fails loudly.
func optimizeKeyFor(t testing.TB, kernel string, inputs map[string]string, tile int) string {
	t.Helper()
	k, err := d2t2.ParseKernel(kernel)
	if err != nil {
		t.Fatalf("parse kernel: %v", err)
	}
	canon, err := json.Marshal(struct {
		Kernel      string            `json:"kernel"`
		Inputs      map[string]string `json:"inputs"`
		BufferWords int               `json:"bufferWords,omitempty"`
	}{k.String(), inputs, d2t2.DenseTileWords(tile, tile)})
	if err != nil {
		t.Fatalf("marshal canonical request: %v", err)
	}
	return snapshot.ResponseKey("optimize", canon)
}

// optimizeVia sends one optimize request to node and returns the cache
// state header, the response key header, and the body.
func optimizeVia(t testing.TB, node *testNode, inputs map[string]string, tile int) (state, key string, body []byte) {
	t.Helper()
	resp, body := postJSON(t, node.url+"/v1/optimize", map[string]any{
		"kernel": e2eKernel,
		"inputs": inputs,
		"tile":   tile,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize via %s: status %d: %s", node.url, resp.StatusCode, body)
	}
	return resp.Header.Get("X-D2T2-Cache"), resp.Header.Get("X-D2T2-Key"), body
}

// ownerAndOthers splits the nodes by ring ownership of key.
func ownerAndOthers(t testing.TB, nodes []*testNode, key string) (owner *testNode, others []*testNode) {
	t.Helper()
	ownerURL, ok := nodes[0].srv.OwnerOf(key)
	if !ok {
		t.Fatalf("OwnerOf on a clustered server returned !ok")
	}
	for _, nd := range nodes {
		if nd.url == ownerURL {
			owner = nd
		} else {
			others = append(others, nd)
		}
	}
	if owner == nil {
		t.Fatalf("owner %s is not a cluster member", ownerURL)
	}
	// Every node must agree on placement.
	for _, nd := range nodes {
		if got, _ := nd.srv.OwnerOf(key); got != ownerURL {
			t.Fatalf("ring views disagree: %s says owner %s, %s says %s",
				nodes[0].url, ownerURL, nd.url, got)
		}
	}
	return owner, others
}

func sumMetric(nodes []*testNode, name string) int64 {
	var total int64
	for _, nd := range nodes {
		total += nd.srv.Metric(name)
	}
	return total
}

// TestClusterColdOptimizeOncePerKey fires identical cold optimize
// requests at every node concurrently and proves by counters that the
// expensive pipeline ran exactly once fleet-wide: one singleflight
// leader across all three nodes, byte-identical bodies everywhere, one
// agreed key.
func TestClusterColdOptimizeOncePerKey(t *testing.T) {
	nodes := newTestCluster(t, 3, 1)
	inputs := map[string]string{
		"A": ingestGen(t, nodes[0], "C", 32),
		"B": ingestGen(t, nodes[0], "D", 32),
	}
	const tile = 64
	wantKey := optimizeKeyFor(t, e2eKernel, inputs, tile)

	const perNode = 2
	var (
		mu     sync.Mutex
		bodies [][]byte
		keys   []string
	)
	var wg sync.WaitGroup
	for _, nd := range nodes {
		for r := 0; r < perNode; r++ {
			wg.Add(1)
			go func(nd *testNode) {
				defer wg.Done()
				_, key, body := optimizeVia(t, nd, inputs, tile)
				mu.Lock()
				bodies = append(bodies, body)
				keys = append(keys, key)
				mu.Unlock()
			}(nd)
		}
	}
	wg.Wait()

	for i, k := range keys {
		if k != wantKey {
			t.Fatalf("request %d: key %s, want %s (client-side canonical mirror drifted?)", i, k, wantKey)
		}
	}
	for i, b := range bodies[1:] {
		if !bytes.Equal(b, bodies[0]) {
			t.Fatalf("request %d body differs:\n%s\nvs\n%s", i+1, b, bodies[0])
		}
	}
	if leaders := sumMetric(nodes, "singleflight_leader"); leaders != 1 {
		t.Fatalf("cold pipeline ran %d times fleet-wide, want exactly 1", leaders)
	}

	// Warm repeats from every node: stats collection must stay flat and
	// no new leader may appear.
	collected := sumMetric(nodes, "stats_collect_total")
	for _, nd := range nodes {
		_, _, body := optimizeVia(t, nd, inputs, tile)
		if !bytes.Equal(body, bodies[0]) {
			t.Fatalf("warm body via %s differs from cold", nd.url)
		}
	}
	if got := sumMetric(nodes, "stats_collect_total"); got != collected {
		t.Fatalf("warm requests re-collected statistics: %d -> %d", collected, got)
	}
	if leaders := sumMetric(nodes, "singleflight_leader"); leaders != 1 {
		t.Fatalf("warm requests started a new flight: %d leaders", leaders)
	}
}

// holdsArtifact asks node — over the authenticated internal route,
// which reads local layers only and never cache-fills — whether it
// holds key right now. This is how the tests observe replica placement
// without perturbing it.
func holdsArtifact(t testing.TB, node *testNode, key string) bool {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, node.url+"/internal/v1/artifact/"+key, nil)
	if err != nil {
		t.Fatalf("build internal get: %v", err)
	}
	req.Header.Set("X-D2T2-Cluster-Secret", "e2e-cluster-secret")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("internal get %s: %v", node.url, err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	switch res.StatusCode {
	case http.StatusOK:
		return true
	case http.StatusNotFound:
		return false
	default:
		t.Fatalf("internal get %s: status %d", node.url, res.StatusCode)
		return false
	}
}

// TestClusterCacheStateLadder walks keys through every X-D2T2-Cache
// state deterministically: forwarded (cold on a non-owner), hit (warm
// on the owner), replica (warm local copy on a non-owner — landed via
// replication or a forward's cache-fill), peer (read-through on a
// non-owner that holds nothing locally).
func TestClusterCacheStateLadder(t *testing.T) {
	nodes := newTestCluster(t, 3, 1)
	inputs := map[string]string{
		"A": ingestGen(t, nodes[0], "C", 32),
		"B": ingestGen(t, nodes[0], "D", 32),
	}
	const tile = 96
	key := optimizeKeyFor(t, e2eKernel, inputs, tile)
	owner, others := ownerAndOthers(t, nodes, key)

	state, gotKey, cold := optimizeVia(t, others[0], inputs, tile)
	if gotKey != key {
		t.Fatalf("served key %s, want %s", gotKey, key)
	}
	if state != "forwarded" {
		t.Fatalf("cold non-owner request: state %q, want \"forwarded\"", state)
	}
	if owner.srv.Metric("singleflight_leader") != 1 {
		t.Fatalf("forward did not run the flight on the owner")
	}

	state, _, body := optimizeVia(t, owner, inputs, tile)
	if state != "hit" || !bytes.Equal(body, cold) {
		t.Fatalf("warm owner request: state %q (want \"hit\"), bytes equal %v", state, bytes.Equal(body, cold))
	}

	// The forwarder cache-filled from the owner's bytes: local copy of a
	// key it does not own.
	state, _, body = optimizeVia(t, others[0], inputs, tile)
	if state != "replica" || !bytes.Equal(body, cold) {
		t.Fatalf("forwarder warm request: state %q (want \"replica\"), bytes equal %v", state, bytes.Equal(body, cold))
	}

	// The other non-owner serves "peer" on its first warm request if the
	// async replica push has not reached it, "replica" if it has —
	// observe which (via the side-effect-free internal route) and assert
	// the matching state, then "replica" ever after.
	wantFirst := "peer"
	if holdsArtifact(t, others[1], key) {
		wantFirst = "replica"
	}
	state, _, body = optimizeVia(t, others[1], inputs, tile)
	if state != wantFirst || !bytes.Equal(body, cold) {
		t.Fatalf("first warm request on %s: state %q (want %q), bytes equal %v", others[1].url, state, wantFirst, bytes.Equal(body, cold))
	}
	state, _, body = optimizeVia(t, others[1], inputs, tile)
	if state != "replica" || !bytes.Equal(body, cold) {
		t.Fatalf("locally filled non-owner: state %q (want \"replica\"), bytes equal %v", state, bytes.Equal(body, cold))
	}

	// Force a guaranteed read-through "peer": a fresh key computed on the
	// owner with the other nodes untouched; the non-successor non-owner
	// (whichever holds nothing after replication quiesces) must fetch.
	const tile2 = 112
	key2 := optimizeKeyFor(t, e2eKernel, inputs, tile2)
	owner2, others2 := ownerAndOthers(t, nodes, key2)
	if state, _, _ := optimizeVia(t, owner2, inputs, tile2); state != "miss" {
		t.Fatalf("cold owner request for key2: state %q, want \"miss\"", state)
	}
	// Wait until the single replica push lands (exactly one non-owner
	// holds key2), then the other one is guaranteed empty.
	var empty *testNode
	deadline := time.Now().Add(10 * time.Second)
	for empty == nil {
		if holdsArtifact(t, others2[0], key2) {
			empty = others2[1]
		} else if holdsArtifact(t, others2[1], key2) {
			empty = others2[0]
		} else if time.Now().After(deadline) {
			t.Fatalf("replica push for key2 never landed on either non-owner")
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if holdsArtifact(t, empty, key2) {
		t.Fatalf("both non-owners hold key2; replication factor 1 should leave one empty")
	}
	state, _, body = optimizeVia(t, empty, inputs, tile2)
	if state != "peer" {
		t.Fatalf("read-through on empty non-owner: state %q, want \"peer\"", state)
	}
	if body == nil {
		t.Fatalf("read-through served no body")
	}
	if hits := sumMetric(nodes, "replica_hits"); hits < 2 {
		t.Fatalf("replica_hits = %d, want >= 2", hits)
	}
}

// TestClusterOwnerKilledMidFlight kills a key's owner and proves the
// fallback ladder preserves availability: the forward fails, the
// serving node computes locally, the client still gets a correct 200 —
// and the surviving nodes still report ready (one live peer suffices),
// while a node whose peers are all dead reports unready.
func TestClusterOwnerKilledMidFlight(t *testing.T) {
	nodes := newTestCluster(t, 3, 1)
	inputs := map[string]string{
		"A": ingestGen(t, nodes[0], "C", 32),
		"B": ingestGen(t, nodes[0], "D", 32),
	}

	// Pick a tile whose key is owned by a node that did NOT ingest (so
	// the surviving path also exercises tensor peer-fetch from node 0).
	tile, key := 0, ""
	var victim *testNode
	var survivors []*testNode
	for cand := 48; cand < 48+64; cand += 8 {
		k := optimizeKeyFor(t, e2eKernel, inputs, cand)
		owner, others := ownerAndOthers(t, nodes, k)
		if owner != nodes[0] {
			tile, key, victim, survivors = cand, k, owner, others
			break
		}
	}
	if victim == nil {
		t.Fatalf("no candidate key owned by a non-ingesting node (ring badly skewed?)")
	}

	victim.kill()

	serving := survivors[0]
	if serving == nodes[0] && len(survivors) > 1 {
		serving = survivors[1] // prefer a node that must fetch tensors remotely
	}
	state, gotKey, body := optimizeVia(t, serving, inputs, tile)
	if gotKey != key {
		t.Fatalf("served key %s, want %s", gotKey, key)
	}
	if state != "miss" {
		t.Fatalf("fallback request: state %q, want \"miss\" (local compute)", state)
	}
	var resp struct {
		PredictedMB float64 `json:"predictedMB"`
	}
	if err := json.Unmarshal(body, &resp); err != nil || resp.PredictedMB <= 0 {
		t.Fatalf("fallback response implausible (err %v): %s", err, body)
	}
	if serving.srv.Metric("forward_fallback_local") != 1 {
		t.Fatalf("forward_fallback_local = %d, want 1", serving.srv.Metric("forward_fallback_local"))
	}
	if serving.srv.Metric("forward_success") != 0 {
		t.Fatalf("forward to a dead owner reported success")
	}
	if serving.srv.Metric("singleflight_leader") != 1 {
		t.Fatalf("local fallback did not run its own flight")
	}

	// Readiness: survivors still see each other.
	for _, nd := range survivors {
		res, err := http.Get(nd.url + "/readyz")
		if err != nil {
			t.Fatalf("readyz %s: %v", nd.url, err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("survivor %s readyz: status %d, want 200", nd.url, res.StatusCode)
		}
	}
	// A fully isolated node is unready: kill the second survivor too and
	// probe the first (its only remaining peers are now both dead).
	survivors[1].kill()
	res, err := http.Get(survivors[0].url + "/readyz")
	if err != nil {
		t.Fatalf("readyz after isolation: %v", err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("isolated node readyz: status %d, want 503", res.StatusCode)
	}
	if survivors[0].srv.Metric("readyz_unready") == 0 {
		t.Fatalf("readyz_unready never counted")
	}
}

// TestClusterReplication runs a cold optimize directly on the owner
// with full replication (R = 2 of 3 nodes) and proves every produced
// artifact lands on every other node: the push counters converge to
// artifacts x targets, and afterwards each node answers warm requests
// from purely local layers (no peer fetch).
func TestClusterReplication(t *testing.T) {
	nodes := newTestCluster(t, 3, 2)
	inputs := map[string]string{
		"A": ingestGen(t, nodes[0], "C", 32),
		"B": ingestGen(t, nodes[0], "D", 32),
	}
	const tile = 80
	key := optimizeKeyFor(t, e2eKernel, inputs, tile)
	owner, _ := ownerAndOthers(t, nodes, key)

	state, _, cold := optimizeVia(t, owner, inputs, tile)
	if state != "miss" {
		t.Fatalf("cold owner request: state %q, want \"miss\"", state)
	}

	// Five artifacts exist fleet-wide: two ingested tensors, two stats
	// bundles, one response. With R=2 each is pushed to both non-producing
	// nodes: 10 successful pushes, 10 verified receipts.
	const wantPushes = 10
	deadline := time.Now().Add(10 * time.Second)
	for {
		pushes := sumMetric(nodes, "replicate_pushes")
		stores := sumMetric(nodes, "internal_artifact_stores")
		if pushes == wantPushes && stores == wantPushes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication never converged: %d pushes, %d stores, want %d each (errors: %d)",
				pushes, stores, wantPushes, sumMetric(nodes, "replicate_errors"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if errs := sumMetric(nodes, "replicate_errors"); errs != 0 {
		t.Fatalf("replicate_errors = %d, want 0", errs)
	}

	// Every node now serves the key from local layers only.
	for _, nd := range nodes {
		before := nd.srv.Metric("artifact_peer_hits")
		state, _, body := optimizeVia(t, nd, inputs, tile)
		want := "replica"
		if nd == owner {
			want = "hit"
		}
		if state != want || !bytes.Equal(body, cold) {
			t.Fatalf("replicated warm request via %s: state %q (want %q), bytes equal %v",
				nd.url, state, want, bytes.Equal(body, cold))
		}
		if nd.srv.Metric("artifact_peer_hits") != before {
			t.Fatalf("node %s reached for a peer despite holding a replica", nd.url)
		}
	}
}

// TestClusterInternalRoutesAuthenticated probes the peer surface
// without the shared secret: every internal route must refuse before
// touching any state.
func TestClusterInternalRoutesAuthenticated(t *testing.T) {
	nodes := newTestCluster(t, 3, 1)
	fakeKey := fmt.Sprintf("sha256:%064d", 1)
	for _, probe := range []struct {
		method, path string
	}{
		{http.MethodGet, "/internal/v1/artifact/" + fakeKey},
		{http.MethodPut, "/internal/v1/artifact/" + fakeKey},
		{http.MethodPost, "/internal/v1/optimize"},
		{http.MethodPost, "/internal/v1/predict"},
		{http.MethodPost, "/internal/v1/batch"},
		{http.MethodGet, "/internal/v1/ping"},
	} {
		req, err := http.NewRequest(probe.method, nodes[0].url+probe.path, bytes.NewReader(nil))
		if err != nil {
			t.Fatalf("build request: %v", err)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", probe.method, probe.path, err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s without secret: status %d, want 403", probe.method, probe.path, res.StatusCode)
		}
	}
	if nodes[0].srv.Metric("internal_auth_failures") != 6 {
		t.Fatalf("internal_auth_failures = %d, want 6", nodes[0].srv.Metric("internal_auth_failures"))
	}
}

// batchVia posts jobs to node's /v1/batch and decodes the results.
func batchVia(t testing.TB, node *testNode, jobs []map[string]any) []struct {
	Key      string          `json:"key"`
	Cache    string          `json:"cache"`
	Response json.RawMessage `json:"response"`
	Error    string          `json:"error"`
} {
	t.Helper()
	resp, body := postJSON(t, node.url+"/v1/batch", map[string]any{"jobs": jobs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch via %s: status %d: %s", node.url, resp.StatusCode, body)
	}
	var br struct {
		Jobs []struct {
			Key      string          `json:"key"`
			Cache    string          `json:"cache"`
			Response json.RawMessage `json:"response"`
			Error    string          `json:"error"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("batch response: %v: %s", err, body)
	}
	return br.Jobs
}

// TestClusterBatchRoutesToOwners submits one mixed batch to a single
// node and proves the scheduler's cluster claims: every job's key and
// placement match the ring (keys the entry node owns run locally as
// "miss", foreign keys travel to their owners as "forwarded"), each
// forwarded job executed on — and its artifact landed on — its owner,
// and the whole fleet ran every job exactly once (sum of
// batch_local_jobs equals the job count). A follow-up single optimize
// on an owner is a warm byte-identical hit, so batch artifacts and the
// single-request path interoperate across the cluster.
func TestClusterBatchRoutesToOwners(t *testing.T) {
	nodes := newTestCluster(t, 3, 1)
	id := ingestGen(t, nodes[0], "C", 1<<20)
	inputs := map[string]string{"A": id, "B": id}

	tiles := []int{32, 48, 64, 96}
	jobs := make([]map[string]any, len(tiles))
	keys := make([]string, len(tiles))
	owners := make([]*testNode, len(tiles))
	var wantForwarded int64
	for i, tile := range tiles {
		jobs[i] = map[string]any{"kernel": e2eKernel, "inputs": inputs, "tile": tile}
		keys[i] = optimizeKeyFor(t, e2eKernel, inputs, tile)
		owners[i], _ = ownerAndOthers(t, nodes, keys[i])
		if owners[i] != nodes[0] {
			wantForwarded++
		}
	}

	results := batchVia(t, nodes[0], jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Error != "" || len(r.Response) == 0 {
			t.Fatalf("job %d (tile %d) failed: %q", i, tiles[i], r.Error)
		}
		if r.Key != keys[i] {
			t.Fatalf("job %d key %q, client mirror derived %q", i, r.Key, keys[i])
		}
		want := "miss"
		if owners[i] != nodes[0] {
			want = "forwarded"
		}
		if r.Cache != want {
			t.Fatalf("job %d (owner %s, entry %s): cache %q, want %q",
				i, owners[i].url, nodes[0].url, r.Cache, want)
		}
		if !holdsArtifact(t, owners[i], keys[i]) {
			t.Fatalf("job %d artifact did not land on its owner %s", i, owners[i].url)
		}
	}
	if got := nodes[0].srv.Metric("batch_forwarded_jobs"); got != wantForwarded {
		t.Fatalf("batch_forwarded_jobs = %d, want %d", got, wantForwarded)
	}
	if got := sumMetric(nodes, "batch_local_jobs"); got != int64(len(jobs)) {
		t.Fatalf("fleet ran %d local jobs, want %d — work duplicated or lost", got, len(jobs))
	}

	// Batch artifacts serve the single-request path: the owner of job 0
	// answers a plain optimize warm, byte-identical to the batch result.
	state, key, body := optimizeVia(t, owners[0], inputs, tiles[0])
	if state != "hit" || key != keys[0] {
		t.Fatalf("single optimize on owner after batch: state %q key %q", state, key)
	}
	if !bytes.Equal(bytes.TrimSpace(body), bytes.TrimSpace(results[0].Response)) {
		t.Fatalf("single optimize body differs from the batch's response")
	}

	// A dead owner degrades its group to local compute — latency, never
	// availability. Find a fresh key owned by a peer, kill that peer,
	// and resubmit through the entry node.
	for _, tile := range []int{40, 56, 72, 80, 112} {
		k := optimizeKeyFor(t, e2eKernel, inputs, tile)
		owner, _ := ownerAndOthers(t, nodes, k)
		if owner == nodes[0] {
			continue
		}
		owner.kill()
		res := batchVia(t, nodes[0], []map[string]any{
			{"kernel": e2eKernel, "inputs": inputs, "tile": tile},
		})
		if res[0].Error != "" || res[0].Cache != "miss" {
			t.Fatalf("batch with dead owner: cache %q error %q, want local miss",
				res[0].Cache, res[0].Error)
		}
		return
	}
	t.Fatalf("no candidate tile owned by a peer; extend the tile list")
}
