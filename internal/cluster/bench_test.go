package cluster_test

// Benchmarks for the three rungs of the cluster read ladder, measured
// through real loopback HTTP on a three-node in-process cluster. The
// numbers land in BENCH_cluster.json; on a 1-core CI runner all three
// servers and the client share one CPU, so treat the absolute values as
// upper bounds — the *ratios* (local hit vs peer fetch vs forward hop)
// are the signal.

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"d2t2"
	"d2t2/internal/cluster"
)

type benchCluster struct {
	nodes  []*testNode
	inputs map[string]string
	tile   int
	key    string
	owner  *testNode
	others []*testNode
}

func newBenchCluster(b *testing.B) *benchCluster {
	b.Helper()
	nodes := newTestCluster(b, 3, 1)
	inputs := map[string]string{
		"A": ingestGen(b, nodes[0], "C", 32),
		"B": ingestGen(b, nodes[0], "D", 32),
	}
	const tile = 64
	key := optimizeKeyFor(b, e2eKernel, inputs, tile)
	owner, others := ownerAndOthers(b, nodes, key)
	// Warm the key on the owner so every benchmark below measures a
	// warm path, not the cold pipeline.
	if state, _, _ := optimizeVia(b, owner, inputs, tile); state != "miss" {
		b.Fatalf("warmup: state %q, want \"miss\"", state)
	}
	return &benchCluster{nodes: nodes, inputs: inputs, tile: tile, key: key, owner: owner, others: others}
}

// BenchmarkClusterWarmLocalHit is the baseline rung: a warm optimize on
// the key's owner, served from the local memory layer through the full
// HTTP handler stack.
func BenchmarkClusterWarmLocalHit(b *testing.B) {
	c := newBenchCluster(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state, _, _ := optimizeVia(b, c.owner, c.inputs, c.tile)
		if state != "hit" {
			b.Fatalf("state %q, want \"hit\"", state)
		}
	}
}

// BenchmarkClusterPeerArtifactFetch is the read-through rung in
// isolation: one authenticated artifact fetch from a peer, including
// frame decode and CRC verification. (The public-route equivalent only
// happens once per key per node — the fetch cache-fills — so the rung
// is measured at the protocol level, where it repeats.)
func BenchmarkClusterPeerArtifactFetch(b *testing.B) {
	c := newBenchCluster(b)
	client := cluster.NewClient("e2e-cluster-secret", 20*time.Second)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.FetchArtifact(ctx, c.owner.url, c.key); err != nil {
			b.Fatalf("FetchArtifact: %v", err)
		}
	}
}

// BenchmarkClusterForwardedRequest is the forward rung: a full
// optimize relayed to the owner's internal route (one extra HTTP hop
// on top of the owner's local hit). This is the steady-state price a
// non-owner pays for a cold key before its local cache fills.
func BenchmarkClusterForwardedRequest(b *testing.B) {
	c := newBenchCluster(b)
	client := cluster.NewClient("e2e-cluster-secret", 20*time.Second)
	k, err := d2t2.ParseKernel(e2eKernel)
	if err != nil {
		b.Fatalf("parse kernel: %v", err)
	}
	canon, err := json.Marshal(struct {
		Kernel      string            `json:"kernel"`
		Inputs      map[string]string `json:"inputs"`
		BufferWords int               `json:"bufferWords,omitempty"`
	}{k.String(), c.inputs, d2t2.DenseTileWords(c.tile, c.tile)})
	if err != nil {
		b.Fatalf("marshal canonical request: %v", err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.Forward(ctx, c.owner.url, "optimize", canon)
		if err != nil {
			b.Fatalf("Forward: %v", err)
		}
		if res.Status != http.StatusOK {
			b.Fatalf("Forward: status %d: %s", res.Status, res.Body)
		}
	}
}
