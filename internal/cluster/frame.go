package cluster

import (
	"fmt"
	"hash/crc32"

	"d2t2/internal/wire"
)

// frameMagic opens every peer artifact frame. Distinct from the
// D2T2SNAP magic on purpose: a frame is a transport envelope, not an
// artifact, and a peer handed a bare snapshot (or vice versa) should
// fail loudly at the first eight bytes.
const frameMagic = "D2T2PEER"

// EncodeFrame wraps one artifact for peer transfer: the frame magic,
// the content-address key and the raw artifact payload (both
// length-prefixed per internal/wire), and a trailing CRC32 (IEEE) of
// the payload. The key rides alongside so the receiver can verify it
// was handed the artifact it asked for (or, on a replication push,
// the artifact the path named), and the CRC covers the payload so
// transit corruption is caught before the bytes reach a store.
func EncodeFrame(key string, payload []byte) []byte {
	buf := make([]byte, 0, len(frameMagic)+8+len(key)+8+len(payload)+4)
	buf = append(buf, frameMagic...)
	buf = wire.AppendBytes(buf, []byte(key))
	buf = wire.AppendBytes(buf, payload)
	return wire.AppendU32(buf, crc32.ChecksumIEEE(payload))
}

// DecodeFrame parses and verifies one peer artifact frame, returning
// the key it names and a copy of the payload. The CRC mismatch path is
// the contract the peer-fetch satellite tests pin: a flipped payload
// byte must surface here, never as a poisoned cache entry.
func DecodeFrame(b []byte) (key string, payload []byte, err error) {
	if len(b) < len(frameMagic) {
		return "", nil, fmt.Errorf("cluster: frame shorter than magic (%d bytes)", len(b))
	}
	if string(b[:len(frameMagic)]) != frameMagic {
		return "", nil, fmt.Errorf("cluster: bad frame magic %q", b[:len(frameMagic)])
	}
	r := wire.NewReader(b[len(frameMagic):])
	keyBytes := r.Bytes()
	body := r.Bytes()
	sum := r.U32()
	if err := r.Err(); err != nil {
		return "", nil, fmt.Errorf("cluster: malformed frame: %w", err)
	}
	if r.Remaining() != 0 {
		return "", nil, fmt.Errorf("cluster: %d trailing bytes after frame", r.Remaining())
	}
	if got := crc32.ChecksumIEEE(body); got != sum {
		return "", nil, fmt.Errorf("cluster: frame CRC mismatch: stored %08x, computed %08x", sum, got)
	}
	// Copy out of the network buffer: the caller will retain the payload
	// in its store, and the frame buffer is transport-owned.
	return string(keyBytes), append([]byte(nil), body...), nil
}
