// Package cluster runs N d2t2d nodes as one logical service. It owns
// the three mechanisms the sharded deployment is built from:
//
//   - a consistent-hash Ring over static membership (virtual nodes,
//     deterministic key→owner mapping for every content address —
//     TensorID, StatsKey and ResponseKey all hash the same way);
//   - a peer artifact Frame: raw D2T2SNAP/response bytes framed with
//     internal/wire conventions and a CRC32 checked on receipt, so a
//     byte flipped in transit is rejected before it can poison a
//     peer's content-addressed store;
//   - a Client for the authenticated internal HTTP surface every node
//     mounts (/internal/v1/artifact/{key}, /internal/v1/optimize,
//     /internal/v1/predict, /internal/v1/ping), with every call
//     context-first so request deadlines reach the network.
//
// The package is deliberately transport-thin: membership is static
// (the -peers flag on cmd/d2t2d), there is no gossip or failure
// detector, and unreachable peers degrade to local work rather than
// erroring — internal/serve owns that fallback ladder.
package cluster

import "errors"

// ErrNotFound reports that a peer answered authoritatively that it does
// not hold the requested artifact (HTTP 404) — a clean miss, distinct
// from a transport or server failure.
var ErrNotFound = errors.New("cluster: artifact not on peer")

// SecretHeader carries the shared cluster secret on every internal
// request; nodes reject internal calls whose header does not match
// their configured secret.
const SecretHeader = "X-D2T2-Cluster-Secret"

// ForwardedHeader marks a request that already crossed one node
// boundary. A node receiving it never forwards again, so a stale ring
// (two nodes each believing the other owns a key) degrades to local
// compute instead of a forwarding loop.
const ForwardedHeader = "X-D2T2-Forwarded"
