package cluster

import (
	"bytes"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	key := "sha256:" + strings.Repeat("ab", 32)
	payload := []byte("D2T2SNAP pretend artifact bytes \x00\x01\x02")
	frame := EncodeFrame(key, payload)
	gotKey, gotPayload, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if gotKey != key {
		t.Fatalf("key round-trip: %q != %q", gotKey, key)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatalf("payload round-trip mismatch")
	}
	// The decode copies: mutating the frame afterwards must not reach
	// the returned payload (it will be retained by a store).
	frame[len(frame)-5] ^= 0xff
	if !bytes.Equal(gotPayload, payload) {
		t.Fatalf("payload aliases the frame buffer")
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	frame := EncodeFrame("k", nil)
	gotKey, gotPayload, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("DecodeFrame empty: %v", err)
	}
	if gotKey != "k" || len(gotPayload) != 0 {
		t.Fatalf("empty round-trip: key %q payload %v", gotKey, gotPayload)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	key := "sha256:" + strings.Repeat("cd", 32)
	payload := bytes.Repeat([]byte("payload"), 64)
	good := EncodeFrame(key, payload)

	// Every single-byte flip in the payload region must fail the CRC;
	// flips in the length prefixes must fail framing. Walk a sample of
	// positions across the whole frame.
	for pos := 0; pos < len(good); pos += 7 {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x20
		if k, p, err := DecodeFrame(bad); err == nil {
			// A flip inside the key bytes changes the key but passes the
			// CRC — the caller's key-match check catches that case, so it
			// is only a failure here if both key and payload survive.
			if k == key && bytes.Equal(p, payload) {
				t.Fatalf("flip at %d went undetected", pos)
			}
		}
	}

	if _, _, err := DecodeFrame(good[:len(good)-2]); err == nil {
		t.Fatalf("truncated frame accepted")
	}
	if _, _, err := DecodeFrame(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatalf("trailing bytes accepted")
	}
	if _, _, err := DecodeFrame([]byte("NOTMAGIC" + strings.Repeat("x", 32))); err == nil {
		t.Fatalf("bad magic accepted")
	}
	if _, _, err := DecodeFrame(nil); err == nil {
		t.Fatalf("empty frame accepted")
	}
}
