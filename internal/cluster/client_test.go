package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const testSecret = "unit-secret"

// peerStub is a minimal internal-surface peer for client tests.
func peerStub(t *testing.T, artifacts map[string][]byte, pushed map[string][]byte) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	auth := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Header.Get(SecretHeader) != testSecret {
				w.WriteHeader(http.StatusForbidden)
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("GET /internal/v1/artifact/{key}", auth(func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		data, ok := artifacts[key]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write(EncodeFrame(key, data))
	}))
	mux.HandleFunc("PUT /internal/v1/artifact/{key}", auth(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		key, payload, err := DecodeFrame(body)
		if err != nil || key != r.PathValue("key") {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		pushed[key] = payload
		w.WriteHeader(http.StatusNoContent)
	}))
	mux.HandleFunc("POST /internal/v1/optimize", auth(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardedHeader) != "1" {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		body, _ := io.ReadAll(r.Body)
		w.Write(append([]byte("echo:"), body...))
	}))
	mux.HandleFunc("GET /internal/v1/ping", auth(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestClientFetchPushForwardPing(t *testing.T) {
	key := "sha256:" + strings.Repeat("ef", 32)
	artifacts := map[string][]byte{key: []byte("artifact-bytes")}
	pushed := map[string][]byte{}
	ts := peerStub(t, artifacts, pushed)
	c := NewClient(testSecret, time.Second)
	ctx := context.Background()

	got, err := c.FetchArtifact(ctx, ts.URL, key)
	if err != nil {
		t.Fatalf("FetchArtifact: %v", err)
	}
	if !bytes.Equal(got, artifacts[key]) {
		t.Fatalf("fetched %q, want %q", got, artifacts[key])
	}

	if _, err := c.FetchArtifact(ctx, ts.URL, "sha256:"+strings.Repeat("00", 32)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing artifact: err = %v, want ErrNotFound", err)
	}

	if err := c.PushArtifact(ctx, ts.URL, key, []byte("replica")); err != nil {
		t.Fatalf("PushArtifact: %v", err)
	}
	if !bytes.Equal(pushed[key], []byte("replica")) {
		t.Fatalf("push landed %q", pushed[key])
	}

	res, err := c.Forward(ctx, ts.URL, "optimize", []byte(`{"kernel":"x"}`))
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if res.Status != http.StatusOK || string(res.Body) != `echo:{"kernel":"x"}` {
		t.Fatalf("forward result: %d %q", res.Status, res.Body)
	}

	if err := c.Ping(ctx, ts.URL); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

func TestClientAuthRejected(t *testing.T) {
	ts := peerStub(t, map[string][]byte{}, map[string][]byte{})
	c := NewClient("wrong-secret", time.Second)
	ctx := context.Background()
	if _, err := c.FetchArtifact(ctx, ts.URL, "sha256:"+strings.Repeat("11", 32)); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("bad secret fetch: err = %v, want auth failure", err)
	}
	if _, err := c.Forward(ctx, ts.URL, "optimize", []byte("{}")); err == nil {
		t.Fatalf("bad secret forward accepted")
	}
	if err := c.Ping(ctx, ts.URL); err == nil {
		t.Fatalf("bad secret ping accepted")
	}
}

func TestClientCorruptFrameRejected(t *testing.T) {
	key := "sha256:" + strings.Repeat("22", 32)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/v1/artifact/{key}", func(w http.ResponseWriter, r *http.Request) {
		frame := EncodeFrame(key, []byte("payload-bytes"))
		frame[len(frame)-6] ^= 0xff // corrupt the payload under its CRC
		w.Write(frame)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := NewClient(testSecret, time.Second)
	if _, err := c.FetchArtifact(context.Background(), ts.URL, key); err == nil {
		t.Fatalf("corrupt frame accepted")
	}
}

func TestClientWrongKeyRejected(t *testing.T) {
	asked := "sha256:" + strings.Repeat("33", 32)
	other := "sha256:" + strings.Repeat("44", 32)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/v1/artifact/{key}", func(w http.ResponseWriter, r *http.Request) {
		w.Write(EncodeFrame(other, []byte("payload")))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := NewClient(testSecret, time.Second)
	if _, err := c.FetchArtifact(context.Background(), ts.URL, asked); err == nil {
		t.Fatalf("mismatched key accepted")
	}
}

func TestClientHonorsContext(t *testing.T) {
	blocked := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/v1/artifact/{key}", func(w http.ResponseWriter, r *http.Request) {
		<-blocked
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	defer close(blocked)
	c := NewClient(testSecret, 10*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.FetchArtifact(ctx, ts.URL, "sha256:"+strings.Repeat("55", 32))
	if err == nil {
		t.Fatalf("blocked fetch succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context deadline ignored: fetch took %v", elapsed)
	}
}
