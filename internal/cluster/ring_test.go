package cluster

import (
	"fmt"
	"testing"
)

func testMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node-%d:8421", i)
	}
	return out
}

func TestRingDeterministicAcrossConstruction(t *testing.T) {
	members := testMembers(3)
	a, err := NewRing(members, 64)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	// A second ring over the same membership — and one built from a
	// rotated member order, as each node lists itself plus its peers in
	// its own order — must agree on every owner.
	b, err := NewRing(members, 64)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	rotated := []string{members[2], members[0], members[1]}
	c, err := NewRing(rotated, 64)
	if err != nil {
		t.Fatalf("NewRing rotated: %v", err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("sha256:%064x", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("same-order rings disagree on %q: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
		if a.Owner(key) != c.Owner(key) {
			t.Fatalf("rotated ring disagrees on %q: %q vs %q", key, a.Owner(key), c.Owner(key))
		}
	}
}

func TestRingDistribution(t *testing.T) {
	members := testMembers(3)
	r, err := NewRing(members, 0) // default vnodes
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("sha256:%064x", i))]++
	}
	for _, m := range members {
		got := counts[m]
		// With 64 vnodes per member the expected share is n/3 ± a wide
		// margin; the point of the check is no member is starved or
		// dominant, not a tight balance bound.
		if got < n/6 || got > n/2+n/6 {
			t.Fatalf("member %q owns %d of %d keys; distribution collapsed: %v", m, got, n, counts)
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	members := testMembers(4)
	r, err := NewRing(members, 32)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("sha256:%064x", i)
		owner := r.Owner(key)
		succ := r.Successors(key, 2)
		if len(succ) != 2 {
			t.Fatalf("key %q: want 2 successors, got %v", key, succ)
		}
		seen := map[string]bool{owner: true}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: successor set %v repeats a member (owner %q)", key, succ, owner)
			}
			seen[s] = true
		}
	}
	// Asking for more successors than exist returns every other member.
	if got := r.Successors("sha256:0", 99); len(got) != len(members)-1 {
		t.Fatalf("oversized successor request returned %d members, want %d", len(got), len(members)-1)
	}
	if r.Successors("sha256:0", 0) != nil {
		t.Fatalf("zero successors should be nil")
	}
}

func TestRingSingleMember(t *testing.T) {
	r, err := NewRing([]string{"http://only:1"}, 8)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	if got := r.Owner("anything"); got != "http://only:1" {
		t.Fatalf("single-member owner = %q", got)
	}
	if got := r.Successors("anything", 3); got != nil {
		t.Fatalf("single-member successors = %v, want none", got)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatalf("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Fatalf("duplicate member accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 8); err == nil {
		t.Fatalf("empty member accepted")
	}
}
