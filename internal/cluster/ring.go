package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"

	"d2t2/internal/checked"
)

// DefaultVirtualNodes is the per-member virtual-node count used when a
// Ring is built with vnodes <= 0. 64 points per member keeps the
// expected ownership imbalance of a small static cluster within a few
// percent while the whole ring still fits in a few kilobytes.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over a static member set. Each member
// is hashed onto the ring at vnodes points; a key is owned by the
// member whose point is the first at or clockwise of the key's hash.
// The mapping is a pure function of (members, vnodes, key) — every
// node of a cluster configured with the same membership computes the
// same owner for every key, with no coordination.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	members []string
	points  []ringPoint // sorted ascending by hash
}

type ringPoint struct {
	hash   uint64
	member int32 // index into members
}

// NewRing builds a ring over the given members (deduplicated input is
// required — a duplicate would silently double that member's share).
// Member strings are opaque identifiers; the service uses base URLs.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", m)
		}
		seen[m] = true
	}
	r := &Ring{
		members: append([]string(nil), members...),
		points:  make([]ringPoint, 0, len(members)*vnodes),
	}
	for i, m := range r.members {
		for v := 0; v < vnodes; v++ {
			h := pointHash(m, v)
			r.points = append(r.points, ringPoint{hash: h, member: checked.Int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		// A 64-bit collision between two members' points is vanishingly
		// rare but must still order deterministically on every node.
		return r.members[pa.member] < r.members[pb.member]
	})
	return r, nil
}

// Members returns the ring's member set in construction order. The
// returned slice is shared and must not be mutated.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member that owns key.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.locate(key)].member]
}

// Successors returns up to n distinct members after key's owner in ring
// order, excluding the owner itself — the replica set for key at
// replication factor n. Fewer than n members exist beyond the owner in
// a small cluster; the slice is correspondingly shorter.
func (r *Ring) Successors(key string, n int) []string {
	if n <= 0 {
		return nil
	}
	start := r.locate(key)
	owner := r.points[start].member
	taken := map[int32]bool{owner: true}
	var out []string
	for step := 1; step < len(r.points) && len(out) < n; step++ {
		p := r.points[(start+step)%len(r.points)]
		if taken[p.member] {
			continue
		}
		taken[p.member] = true
		out = append(out, r.members[p.member])
	}
	return out
}

// locate returns the index of the first point at or clockwise of key's
// hash, wrapping past the top of the hash space to the first point.
func (r *Ring) locate(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// pointHash places one virtual node: SHA-256 over "member\x00vnode",
// truncated to the first 8 big-endian bytes. The NUL separator keeps
// ("ab", 1) and ("a", "b1")-style concatenation collisions apart.
func pointHash(member string, vnode int) uint64 {
	h := sha256.New()
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(vnode)))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

// keyHash places a key on the ring. Keys are content addresses
// ("sha256:<hex>") but the ring does not depend on that shape — any
// string hashes deterministically.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}
