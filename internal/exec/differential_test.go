package exec

import (
	"math/rand"
	"reflect"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// The differential suite runs every kernel shape through both backends
// — the compiled engine and the generic walker (ForceGeneric) — across
// tile sizes, worker counts and buffer-overflow options, and demands
// byte-identical results: equal Traffic structs (every counter,
// including the per-tensor Input map) and bit-identical collected
// outputs. The generic walker is the reference oracle; any divergence
// is an engine bug by definition.

// diffCase is one kernel × input recipe.
type diffCase struct {
	name string
	expr *einsum.Expr
	// inputs builds fresh COO inputs from the seeded source.
	inputs func(r *rand.Rand) map[string]*tensor.COO
	// vars lists the expression's index variables (for square tiling).
	vars []string
	// specialized reports whether compileEngine must accept the kernel.
	specialized bool
}

func diffCases() []diffCase {
	return []diffCase{
		{
			name: "SpMSpMIKJ",
			expr: einsum.SpMSpMIKJ(),
			inputs: func(r *rand.Rand) map[string]*tensor.COO {
				a := gen.PowerLawGraph(r, 48, 500, 1.6)
				return map[string]*tensor.COO{"A": a, "B": a.Transpose()}
			},
			vars:        []string{"i", "k", "j"},
			specialized: true,
		},
		{
			name: "SpMSpMIJK",
			expr: einsum.SpMSpMIJK(),
			inputs: func(r *rand.Rand) map[string]*tensor.COO {
				// B(j,k) = A computes C = A·Aᵀ under the inner-product dataflow.
				a := gen.PowerLawGraph(r, 48, 500, 1.6)
				return map[string]*tensor.COO{"A": a, "B": a.Clone()}
			},
			vars:        []string{"i", "j", "k"},
			specialized: true,
		},
		{
			name: "TTM",
			expr: einsum.TTM(), // X(i,j,k) = C(i,j,l)*B(k,l)
			inputs: func(r *rand.Rand) map[string]*tensor.COO {
				return map[string]*tensor.COO{
					"C": gen.RandomTensor3(r, 18, 14, 10, 400, [3]float64{0, 0, 0}),
					"B": gen.UniformRandom(r, 12, 10, 60),
				}
			},
			vars:        []string{"i", "j", "l", "k"},
			specialized: true,
		},
		{
			name: "MTTKRP",
			expr: einsum.MTTKRP3(), // D(i,j) = A(i,k,l)*B(j,k)*C(j,l)
			inputs: func(r *rand.Rand) map[string]*tensor.COO {
				return map[string]*tensor.COO{
					"A": gen.RandomTensor3(r, 14, 10, 8, 300, [3]float64{0, 0, 0}),
					"B": gen.UniformRandom(r, 9, 10, 40),
					"C": gen.UniformRandom(r, 9, 8, 36),
				}
			},
			vars:        []string{"i", "k", "l", "j"},
			specialized: true,
		},
		{
			name: "SDDMM",
			expr: einsum.SDDMM(), // E(i,j) = S(i,j)*A(i,k)*B(k,j)
			inputs: func(r *rand.Rand) map[string]*tensor.COO {
				n := 32
				return map[string]*tensor.COO{
					"S": gen.UniformRandom(r, n, n, 90),
					"A": gen.UniformRandom(r, n, n, 220),
					"B": gen.UniformRandom(r, n, n, 220),
				}
			},
			vars:        []string{"i", "j", "k"},
			specialized: true,
		},
		{
			// Multi-summand fused kernel: outside the engine's shape
			// class, so both runs must take the generic walker and the
			// Specialized flag must stay false.
			name: "FusedAddMul",
			expr: einsum.MustParse("D(i,j) = (A(i,j) + B(i,j)) * C(i,j) | order: i,j"),
			inputs: func(r *rand.Rand) map[string]*tensor.COO {
				return map[string]*tensor.COO{
					"A": gen.UniformRandom(r, 24, 24, 80),
					"B": gen.UniformRandom(r, 24, 24, 80),
					"C": gen.UniformRandom(r, 24, 24, 140),
				}
			},
			vars:        []string{"i", "j"},
			specialized: false,
		},
	}
}

// tileAll tiles every input of the case with a square per-index tile.
func tileAll(t testing.TB, c diffCase, inputs map[string]*tensor.COO, tile int) map[string]*tiling.TiledTensor {
	t.Helper()
	tiles := make(map[string]int, len(c.vars))
	for _, v := range c.vars {
		tiles[v] = tile
	}
	tens := make(map[string]*tiling.TiledTensor, len(inputs))
	for name, m := range inputs {
		tens[name] = tileFor(t, c.expr, name, m, tiles)
	}
	return tens
}

// diffOptions are the option sets every case runs under. Buffer sizes
// are deliberately small so overflow accounting triggers on real tiles.
func diffOptions() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"collect", Options{CollectOutput: true}},
		{"overflow", Options{
			CollectOutput:     true,
			InputBufferWords:  32,
			OverflowExtra:     1.5,
			OutputBufferWords: 24,
		}},
		{"valuesonly", Options{CollectOutput: true, ValuesOnly: true}},
	}
}

func TestDifferentialEngineVsGeneric(t *testing.T) {
	for _, c := range diffCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inputs := c.inputs(rand.New(rand.NewSource(97)))
			for _, tile := range []int{3, 5, 8} {
				tens := tileAll(t, c, inputs, tile)
				for _, os := range diffOptions() {
					// Reference: generic walker, serial.
					ref := os.opts
					ref.ForceGeneric = true
					ref.Workers = 1
					want, err := Measure(c.expr, tens, &ref)
					if err != nil {
						t.Fatal(err)
					}
					if want.Specialized {
						t.Fatal("ForceGeneric run reported Specialized")
					}
					for _, workers := range []int{1, 8} {
						for _, generic := range []bool{false, true} {
							o := os.opts
							o.ForceGeneric = generic
							o.Workers = workers
							got, err := Measure(c.expr, tens, &o)
							if err != nil {
								t.Fatal(err)
							}
							label := backendLabel(generic, workers, tile, os.name)
							if got.Specialized != (c.specialized && !generic) {
								t.Fatalf("%s: Specialized=%v, want %v",
									label, got.Specialized, c.specialized && !generic)
							}
							if !reflect.DeepEqual(got.Traffic, want.Traffic) {
								t.Fatalf("%s: traffic diverges from oracle:\n got %+v\nwant %+v",
									label, got.Traffic, want.Traffic)
							}
							if !tensor.Equal(got.Out, want.Out) {
								t.Fatalf("%s: collected output is not bit-identical to oracle",
									label)
							}
						}
					}
				}
			}
		})
	}
}

func backendLabel(generic bool, workers, tile int, opts string) string {
	b := "engine"
	if generic {
		b = "generic"
	}
	return b + "/" + opts + "/tile=" + itoa(tile) + "/workers=" + itoa(workers)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestDifferentialPackedTiles repeats the comparison on packed
// super-tiles: the engine predecodes member tiles with origin rebasing,
// which must match the walker's decode exactly.
func TestDifferentialPackedTiles(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	e := einsum.SpMSpMIKJ()
	a := gen.PowerLawGraph(r, 64, 700, 1.6)
	b := a.Transpose()
	base := map[string]int{"i": 8, "k": 8, "j": 8}
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, base),
		"B": tileFor(t, e, "B", b, base),
	}
	factors := map[string][]int{"A": {4, 2}, "B": {2, 4}}
	for name, tt := range tens {
		packed, err := tiling.PackTiles(tt, factors[name])
		if err != nil {
			t.Fatal(err)
		}
		tens[name] = packed
	}
	for _, workers := range []int{1, 8} {
		eng, err := Measure(e, tens, &Options{CollectOutput: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		gen, err := Measure(e, tens, &Options{CollectOutput: true, Workers: workers, ForceGeneric: true})
		if err != nil {
			t.Fatal(err)
		}
		if !eng.Specialized || gen.Specialized {
			t.Fatalf("workers=%d: Specialized flags wrong: engine=%v generic=%v",
				workers, eng.Specialized, gen.Specialized)
		}
		if !reflect.DeepEqual(eng.Traffic, gen.Traffic) {
			t.Fatalf("workers=%d: packed-tile traffic diverges:\n got %+v\nwant %+v",
				workers, eng.Traffic, gen.Traffic)
		}
		if !tensor.Equal(eng.Out, gen.Out) {
			t.Fatalf("workers=%d: packed-tile output not bit-identical", workers)
		}
	}
}
