// Package exec is the measurement backend (the paper's "TACO backend"):
// it executes a tiled tensor-algebra kernel as the modeled accelerator
// would — a loop nest over outer tile coordinates with tile-granularity
// filtering — and records exact input/output traffic, tile iterations and
// multiply counts.
//
// Semantics (paper §6, experimental setup):
//   - The machine is a push memory: an input tile is fetched at an outer
//     iteration point iff its own tile is non-empty and some work exists
//     in the loop subtree below (tile-granularity filtering only; inner
//     emptiness is discovered after the fetch).
//   - An input tensor is re-fetched once per point of its fetch space —
//     every loop level from the outermost down to its innermost own index
//     (it stays buffer-resident across deeper loops).
//   - The output is accumulated on-chip while it is stationary (across
//     loops deeper than its innermost index) and streamed to memory once
//     per point of its own fetch space; partial results separated by
//     outer loops accumulate in main memory.
package exec

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"d2t2/internal/einsum"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// Traffic is the result of one measured execution. All sizes are in
// 4-byte words (CSF values + metadata).
type Traffic struct {
	Input           map[string]int64 // per input tensor occurrence name
	Output          int64
	OutputWrites    int64
	TileIterations  int64 // leaf iterations with work
	MACs            int64 // scalar multiplications performed
	OutputNNZ       int64 // summed nnz of written partial output tiles
	InputFetches    int64 // input tile fetches (overflowing or not)
	OverflowFetches int64 // fetches of tiles exceeding the input buffer
	OutputOverflows int64 // extra chunk writes of overflowing output tiles
}

// InputTotal returns the summed input traffic in words.
func (t *Traffic) InputTotal() int64 {
	var s int64
	for _, v := range t.Input {
		s += v
	}
	return s
}

// Total returns input + output traffic in words.
func (t *Traffic) Total() int64 { return t.InputTotal() + t.Output }

// TotalMB returns total traffic in megabytes (4-byte words).
func (t *Traffic) TotalMB() float64 { return float64(t.Total()) * 4 / (1 << 20) }

// Options configures a measurement.
type Options struct {
	// CollectOutput accumulates the full output tensor for correctness
	// checks. Costs memory proportional to output nnz.
	CollectOutput bool
	// ValuesOnly counts traffic in nonzero values instead of full CSF
	// footprints (values + metadata). The paper's Figure 3 example uses
	// this accounting "for simplicity".
	ValuesOnly bool
	// InputBufferWords, when positive, models Tailors-style overbooked
	// buffers: an input tile larger than the buffer has its excess
	// streamed and re-fetched, costing OverflowExtra additional traffic
	// per excess word on every fetch (default 1.0 — the overflowed
	// portion crosses memory twice).
	InputBufferWords int
	OverflowExtra    float64
	// Workers > 1 partitions the outermost loop's coordinate values
	// across the par worker pool. All traffic counters are exact
	// integers, so any partition merges to the serial result; the option
	// is honored unconditionally unless CollectOutput is set, in which
	// case the output tensor must carry the outermost index (making
	// every worker's collected coordinates disjoint) — otherwise the
	// option is ignored to preserve float determinism.
	Workers int
	// OutputBufferWords, when positive, models the paper's output
	// overflow handling (§6): an accumulated output tile larger than the
	// output buffer is streamed out in chunks as it fills, each chunk a
	// separate partial write whose fragments accumulate in main memory.
	// The extra cost is the re-written metadata of the extra partials.
	OutputBufferWords int
	// Trace receives one CSV line per memory event — useful for driving
	// external simulators. Columns: event (fetch/write), tensor name or
	// "OUT", outer coordinates joined by ';', words moved. Tracing forces
	// serial execution on the generic walker.
	Trace io.Writer
	// ForceGeneric disables the specialized engine and measures on the
	// generic tree-walking interpreter — the reference oracle the
	// differential suite compares the engine against.
	ForceGeneric bool
}

// Result bundles traffic with the optionally collected output.
type Result struct {
	Traffic
	// Output tensor (nil unless Options.CollectOutput).
	Out *tensor.COO
	// Specialized reports whether the measurement ran on a compiled
	// engine (true) or fell back to the generic walker (false).
	Specialized bool
}

// Measure runs the kernel described by e over the given tiled inputs.
// Every input occurrence name in e must be present in tensors; tensors
// must be tiled with level orders matching the dataflow order, and tile
// sizes must agree between tensors sharing an index variable.
func Measure(e *einsum.Expr, tensors map[string]*tiling.TiledTensor, opts *Options) (*Result, error) {
	return MeasureCtx(context.Background(), e, tensors, opts)
}

// MeasureCtx is Measure with cooperative cancellation: the backend
// checks ctx between outer-tile work units (once per outermost
// coordinate value), so a cancelled or deadline-expired context stops
// the measurement at the next tile boundary and returns the context's
// error. A never-cancelled ctx yields exactly Measure's result.
//
// When the kernel is a single product of tensors within the engine's
// shape envelope, the measurement runs on a compiled engine — a
// fixed-rank loop nest with a precomputed per-depth join plan —
// instead of the generic interpreter; Result.Specialized reports which
// path ran. Both paths produce identical Traffic and collected output
// (the differential suite in this package enforces it).
func MeasureCtx(ctx context.Context, e *einsum.Expr, tensors map[string]*tiling.TiledTensor, opts *Options) (*Result, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	r, err := newRunner(e, tensors, opts)
	if err != nil {
		return nil, err
	}
	w := workersFor(e, &r.opts)
	specialized := false
	if p := compileEngine(r); p != nil {
		specialized = true
		if err := p.run(ctx, w); err != nil {
			return nil, err
		}
	} else if w > 1 {
		if err := r.runParallelCtx(ctx, w); err != nil {
			return nil, err
		}
	} else if err := r.runCtx(ctx); err != nil {
		return nil, err
	}
	res := &Result{Traffic: r.traffic, Specialized: specialized}
	if r.collect != nil {
		out := tensor.New(r.outDims...)
		nOut := len(r.outDims)
		coord := make([]int, nOut)
		for k, v := range r.collect {
			for a := nOut - 1; a >= 0; a-- {
				coord[a] = int(k % uint64(r.outDims[a]))
				k /= uint64(r.outDims[a])
			}
			out.Append(coord, v)
		}
		out.Dedup()
		res.Out = out
	}
	return res, nil
}

// refState tracks one RHS tensor occurrence during the walk.
type refState struct {
	ref einsum.Ref
	tt  *tiling.TiledTensor
	// axisOfVar[d] is the tensor axis bound by loop depth d, or -1.
	axisOfVar []int
	// levelAtDepth[d] is this tensor's outer-CSF level entered at loop
	// depth d, or -1 when depth d does not bind one of its indices.
	levelAtDepth []int
	fetchDepth   int
	// entries caches decoded inner-coordinate lists per tile.
	entries map[*tiling.Tile]*entryList
}

type entryList struct {
	crds [][]int32 // per tensor axis
	vals []float64
}

type runner struct {
	e     *einsum.Expr
	refs  []*refState
	prods [][]int // summands as indices into refs
	depth int     // number of loop levels

	outDepth    int   // loop depth after which the output is written
	outAxisVar  []int // per loop depth: output axis bound, or -1
	outTileDims []int // tile size per output axis
	outDims     []int // full size per output axis
	outLevels   []int // output axes sorted by dataflow position

	traffic Traffic
	opts    Options

	// Per-depth loop state.
	bound []int32 // bound outer coordinate per depth

	outAcc  map[uint64]float64 // output accumulator within outDepth scope
	collect map[uint64]float64 // global output accumulator (optional)

	// topOnly restricts the outermost loop to one coordinate value
	// (parallel partitioning into per-tile work units; -1 = no
	// restriction).
	topOnly int32

	// ctx, when non-nil, is consulted once per outermost coordinate;
	// the first observed error is latched in ctxErr and stops the walk.
	ctx    context.Context
	ctxErr error
}

func newRunner(e *einsum.Expr, tensors map[string]*tiling.TiledTensor, opts *Options) (*runner, error) {
	inputs := e.Inputs()
	r := &runner{
		e:       e,
		depth:   len(e.Order),
		bound:   make([]int32, len(e.Order)),
		topOnly: -1,
	}
	if opts != nil {
		r.opts = *opts
	}
	// Negative buffer knobs would silently flip the overflow arithmetic
	// (both here and in the compiled engine, which predecodes the same
	// per-fetch cost) — reject them loudly.
	if r.opts.InputBufferWords < 0 {
		return nil, fmt.Errorf("exec: InputBufferWords must be >= 0, got %d", r.opts.InputBufferWords)
	}
	if r.opts.OverflowExtra < 0 {
		return nil, fmt.Errorf("exec: OverflowExtra must be >= 0, got %v", r.opts.OverflowExtra)
	}
	if r.opts.OutputBufferWords < 0 {
		return nil, fmt.Errorf("exec: OutputBufferWords must be >= 0, got %d", r.opts.OutputBufferWords)
	}

	varTile := make(map[string]int) // tile size per index var
	varDim := make(map[string]int)  // full size per index var
	for _, ref := range inputs {
		tt := tensors[ref.Name]
		if tt == nil {
			return nil, fmt.Errorf("exec: missing tiled tensor %q", ref.Name)
		}
		if len(ref.Indices) != len(tt.Dims) {
			return nil, fmt.Errorf("exec: %s has %d axes, tensor has %d", ref, len(ref.Indices), len(tt.Dims))
		}
		wantOrder := e.LevelOrder(ref)
		for l := range wantOrder {
			if tt.Order[l] != wantOrder[l] {
				return nil, fmt.Errorf("exec: %s tiled with level order %v, dataflow requires %v",
					ref, tt.Order, wantOrder)
			}
		}
		st := &refState{
			ref:          ref,
			tt:           tt,
			axisOfVar:    make([]int, len(e.Order)),
			levelAtDepth: make([]int, len(e.Order)),
			fetchDepth:   e.FetchLevel(ref),
			entries:      make(map[*tiling.Tile]*entryList),
		}
		for d := range e.Order {
			st.axisOfVar[d] = -1
			st.levelAtDepth[d] = -1
		}
		for a, ix := range ref.Indices {
			d := e.OrderPos(ix)
			st.axisOfVar[d] = a
			if prev, ok := varTile[ix]; ok && prev != tt.TileDims[a] {
				return nil, fmt.Errorf("exec: index %q tiled as %d in %s but %d elsewhere",
					ix, tt.TileDims[a], ref, prev)
			}
			varTile[ix] = tt.TileDims[a]
			if prev, ok := varDim[ix]; ok && prev != tt.Dims[a] {
				return nil, fmt.Errorf("exec: index %q sized %d in %s but %d elsewhere",
					ix, tt.Dims[a], ref, prev)
			}
			varDim[ix] = tt.Dims[a]
		}
		// Level entered per depth: the tensor's levels in order.
		for l, a := range tt.Order {
			d := e.OrderPos(ref.Indices[a])
			st.levelAtDepth[d] = l
		}
		r.refs = append(r.refs, st)
	}

	// Summands in terms of occurrence indices.
	r.prods = e.ProductsIdx()

	// Output bookkeeping.
	r.outDepth = e.FetchLevel(e.Out)
	r.outAxisVar = make([]int, len(e.Order))
	for d := range r.outAxisVar {
		r.outAxisVar[d] = -1
	}
	r.outTileDims = make([]int, len(e.Out.Indices))
	r.outDims = make([]int, len(e.Out.Indices))
	for a, ix := range e.Out.Indices {
		d := e.OrderPos(ix)
		r.outAxisVar[d] = a
		t, ok := varTile[ix]
		if !ok {
			return nil, fmt.Errorf("exec: output index %q not bound by any input", ix)
		}
		r.outTileDims[a] = t
		r.outDims[a] = varDim[ix]
	}
	r.outLevels = e.LevelOrder(e.Out)

	r.traffic.Input = make(map[string]int64)
	if r.opts.CollectOutput {
		r.collect = make(map[uint64]float64)
	}
	return r, nil
}

// runCtx executes the outer loop nest serially. cursors[i] is the
// outer-CSF node position of ref i at its last bound level (-1 = ref
// dead, 0 initial). The context is consulted once per outermost
// coordinate value; the first observed error aborts the walk and is
// returned.
func (r *runner) runCtx(ctx context.Context) error {
	r.ctx = ctx
	cursors := make([]int32, len(r.refs))
	r.walk(0, cursors)
	r.ctx = nil
	return r.ctxErr
}

// runOne executes the loop nest restricted to one outermost coordinate
// value — the per-tile work unit of the pool-scheduled fallback.
func (r *runner) runOne(v int32) {
	r.topOnly = v
	cursors := make([]int32, len(r.refs))
	r.walk(0, cursors)
	r.topOnly = -1
}

// clone returns a fresh runner sharing this runner's immutable metadata
// (expression analysis, tiled tensors, options) with private mutable
// state — the per-worker scratch of the pool-scheduled fallback.
func (r *runner) clone() *runner {
	sub := &runner{
		e:           r.e,
		prods:       r.prods,
		depth:       r.depth,
		outDepth:    r.outDepth,
		outAxisVar:  r.outAxisVar,
		outTileDims: r.outTileDims,
		outDims:     r.outDims,
		outLevels:   r.outLevels,
		opts:        r.opts,
		bound:       make([]int32, r.depth),
		topOnly:     -1,
	}
	for _, st := range r.refs {
		sub.refs = append(sub.refs, &refState{
			ref:          st.ref,
			tt:           st.tt,
			axisOfVar:    st.axisOfVar,
			levelAtDepth: st.levelAtDepth,
			fetchDepth:   st.fetchDepth,
			entries:      make(map[*tiling.Tile]*entryList),
		})
	}
	sub.traffic.Input = make(map[string]int64)
	if r.collect != nil {
		sub.collect = make(map[uint64]float64)
	}
	return sub
}

// mergeFrom folds a worker runner's traffic into this one. Every
// counter is an exact integer sum, so the merge is identical under any
// partition of the outermost loop; collected float sums only merge when
// workers own disjoint output keys (enforced by workersFor).
func (r *runner) mergeFrom(sub *runner) {
	for name, words := range sub.traffic.Input {
		r.traffic.Input[name] += words
	}
	r.traffic.Output += sub.traffic.Output
	r.traffic.OutputWrites += sub.traffic.OutputWrites
	r.traffic.TileIterations += sub.traffic.TileIterations
	r.traffic.MACs += sub.traffic.MACs
	r.traffic.OutputNNZ += sub.traffic.OutputNNZ
	r.traffic.InputFetches += sub.traffic.InputFetches
	r.traffic.OverflowFetches += sub.traffic.OverflowFetches
	r.traffic.OutputOverflows += sub.traffic.OutputOverflows
	if r.collect != nil {
		for k, v := range sub.collect {
			r.collect[k] += v
		}
	}
}

// topValues enumerates the outermost loop's candidate coordinate values
// exactly as walk(0) would: the union over summands of the intersection
// of root-level coordinates of each summand's refs, sorted ascending.
func (r *runner) topValues() []int32 {
	values := make(map[int32]bool)
	for _, prod := range r.prods {
		var sets [][]int32
		for _, ri := range prod {
			st := r.refs[ri]
			if st.levelAtDepth[0] < 0 {
				continue
			}
			s, e := st.tt.OuterCSF.Children(0, 0)
			sets = append(sets, st.tt.OuterCSF.Crd[0][s:e])
		}
		if len(sets) == 0 {
			continue
		}
		for _, v := range intersectSorted(sets) {
			values[v] = true
		}
	}
	ordered := make([]int32, 0, len(values))
	for v := range values {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a] < ordered[b] })
	return ordered
}

// walk iterates loop depth d; returns whether any work happened below.
func (r *runner) walk(d int, cursors []int32) bool {
	if d == r.depth {
		return r.leaf(cursors)
	}

	// Collect candidate coordinate values per summand: the intersection
	// of the children of each alive active ref; union across summands.
	type childRange struct {
		ri         int
		start, end int32
	}
	var active []childRange

	summandAlive := func(prod []int) bool {
		for _, ri := range prod {
			if cursors[ri] < 0 {
				return false
			}
		}
		return true
	}

	// Gather active refs (those binding an index at this depth).
	for ri, st := range r.refs {
		l := st.levelAtDepth[d]
		if l < 0 || cursors[ri] < 0 {
			continue
		}
		node := 0
		if l > 0 {
			node = int(cursors[ri])
		}
		s, e := st.tt.OuterCSF.Children(l, node)
		//d2t2:ignore coordwidth s and e are read back out of the int32 Seg array by Children; the round-trip cannot widen past int32, and this is the innermost measurement loop
		active = append(active, childRange{ri, int32(s), int32(e)})
	}

	// For each alive summand, intersect the candidate coordinates of its
	// active refs; collect the union.
	values := make(map[int32]bool)
	for _, prod := range r.prods {
		if !summandAlive(prod) {
			continue
		}
		var sets [][]int32
		for _, ar := range active {
			if !contains(prod, ar.ri) {
				continue
			}
			st := r.refs[ar.ri]
			l := st.levelAtDepth[d]
			sets = append(sets, st.tt.OuterCSF.Crd[l][ar.start:ar.end])
		}
		if len(sets) == 0 {
			// No ref of this summand binds this index: the loop still
			// iterates the full outer dimension for the output; but only
			// positions where some input exists produce work, and this
			// summand does not constrain them. With every index bound by
			// at least one input (validated), this cannot happen.
			continue
		}
		for _, v := range intersectSorted(sets) {
			values[v] = true
		}
	}
	if len(values) == 0 {
		return false
	}
	ordered := make([]int32, 0, len(values))
	for v := range values {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a] < ordered[b] })

	work := false
	next := make([]int32, len(cursors))
	for _, v := range ordered {
		if d == 0 {
			if r.topOnly >= 0 && v != r.topOnly {
				continue
			}
			if r.ctx != nil {
				if err := r.ctx.Err(); err != nil {
					r.ctxErr = err
					return work
				}
			}
		}
		copy(next, cursors)
		// Advance or kill each active ref.
		for _, ar := range active {
			st := r.refs[ar.ri]
			l := st.levelAtDepth[d]
			pos := searchCrd(st.tt.OuterCSF.Crd[l], ar.start, ar.end, v)
			if pos < 0 {
				next[ar.ri] = -1
			} else {
				next[ar.ri] = pos
			}
		}
		// A dead ref kills its summands; if no summand remains, skip.
		alive := false
		for _, prod := range r.prods {
			ok := true
			for _, ri := range prod {
				if next[ri] < 0 {
					ok = false
					break
				}
			}
			if ok {
				alive = true
				break
			}
		}
		if !alive {
			continue
		}
		r.bound[d] = v

		armedOut := false
		if d == r.outDepth {
			r.outAcc = make(map[uint64]float64)
			armedOut = true
		}
		sub := r.walk(d+1, next)
		if sub {
			work = true
			// Fetch every ref whose fetch space completes at this depth.
			for _, st := range r.refs {
				if st.fetchDepth != d {
					continue
				}
				if tile := r.tileOf(st); tile != nil {
					r.traffic.InputFetches++
					cost := int64(tile.Footprint)
					if r.opts.ValuesOnly {
						cost = int64(tile.NNZ())
					} else if b := r.opts.InputBufferWords; b > 0 && tile.Footprint > b {
						extra := r.opts.OverflowExtra
						if extra == 0 {
							extra = 1
						}
						cost += int64(extra * float64(tile.Footprint-b))
						r.traffic.OverflowFetches++
					}
					r.traffic.Input[st.ref.Name] += cost
					if r.opts.Trace != nil {
						r.trace("fetch", st.ref.Name, tile.Outer, cost)
					}
				}
			}
		}
		if armedOut {
			r.flushOutput()
			r.outAcc = nil
		}
	}
	return work
}

// leaf handles a fully bound outer iteration: counts the tile iteration,
// performs the inner-tile computation for MACs and output size.
func (r *runner) leaf(cursors []int32) bool {
	work := false
	for _, prod := range r.prods {
		alive := true
		for _, ri := range prod {
			if cursors[ri] < 0 {
				alive = false
				break
			}
		}
		if !alive {
			continue
		}
		work = true
		r.joinProduct(prod)
	}
	if work {
		r.traffic.TileIterations++
	}
	return work
}

// tileOf returns the tile a ref currently points at, from the bound
// outer coordinates of its own axes.
func (r *runner) tileOf(st *refState) *tiling.Tile {
	outer := make([]int, len(st.ref.Indices))
	for a, ix := range st.ref.Indices {
		d := r.e.OrderPos(ix)
		outer[a] = int(r.bound[d])
	}
	return st.tt.Lookup(outer...)
}

// trace emits one CSV event line; errors are ignored (tracing is a
// diagnostic facility).
func (r *runner) trace(event, name string, outer []int, words int64) {
	var sb strings.Builder
	sb.WriteString(event)
	sb.WriteByte(',')
	sb.WriteString(name)
	sb.WriteByte(',')
	for i, c := range outer {
		if i > 0 {
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, "%d", c)
	}
	fmt.Fprintf(&sb, ",%d\n", words)
	io.WriteString(r.opts.Trace, sb.String())
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// intersectSorted intersects sorted coordinate slices.
func intersectSorted(sets [][]int32) []int32 {
	if len(sets) == 0 {
		return nil
	}
	cur := sets[0]
	for _, s := range sets[1:] {
		var out []int32
		i, j := 0, 0
		for i < len(cur) && j < len(s) {
			switch {
			case cur[i] < s[j]:
				i++
			case cur[i] > s[j]:
				j++
			default:
				out = append(out, cur[i])
				i++
				j++
			}
		}
		cur = out
		if len(cur) == 0 {
			break
		}
	}
	return cur
}

// searchCrd binary-searches crd[start:end) for v, returning its absolute
// position or -1.
func searchCrd(crd []int32, start, end, v int32) int32 {
	lo, hi := start, end
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case crd[mid] < v:
			lo = mid + 1
		case crd[mid] > v:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}
