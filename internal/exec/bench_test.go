package exec

import (
	"math/rand"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/tiling"
)

// benchMeasure runs one kernel under both backends so the engine's
// speedup over the generic walker is a single benchcmp away:
//   go test -bench Measure -benchmem ./internal/exec
func benchMeasure(b *testing.B, e *einsum.Expr, tens map[string]*tiling.TiledTensor) {
	b.Helper()
	for _, mode := range []struct {
		name    string
		generic bool
	}{{"generic", true}, {"engine", false}} {
		b.Run(mode.name, func(b *testing.B) {
			opts := &Options{ForceGeneric: mode.generic, Workers: 1}
			// One warm run outside the timer: the engine predecodes
			// tile entries on first contact, the walker populates its
			// entry cache.
			if res, err := Measure(e, tens, opts); err != nil {
				b.Fatal(err)
			} else if res.Specialized == mode.generic {
				b.Fatalf("Specialized=%v under generic=%v", res.Specialized, mode.generic)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Measure(e, tens, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMeasureSpMSpM(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	a := gen.PowerLawGraph(r, 512, 10000, 1.6)
	e := einsum.SpMSpMIKJ()
	tiles := map[string]int{"i": 32, "k": 32, "j": 32}
	benchMeasure(b, e, map[string]*tiling.TiledTensor{
		"A": tileFor(b, e, "A", a, tiles),
		"B": tileFor(b, e, "B", a.Transpose(), tiles),
	})
}

func BenchmarkMeasureTTM(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	c := gen.RandomTensor3(r, 96, 80, 64, 20000, [3]float64{0, 0, 0})
	m := gen.UniformRandom(r, 64, 64, 2000)
	e := einsum.TTM()
	benchMeasure(b, e, map[string]*tiling.TiledTensor{
		"C": tileFor(b, e, "C", c, map[string]int{"i": 16, "j": 16, "l": 16}),
		"B": tileFor(b, e, "B", m, map[string]int{"k": 16, "l": 16}),
	})
}

func BenchmarkMeasureMTTKRP(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	a := gen.RandomTensor3(r, 96, 64, 48, 15000, [3]float64{0, 0, 0})
	bm := gen.UniformRandom(r, 48, 64, 1500)
	cm := gen.UniformRandom(r, 48, 48, 1200)
	e := einsum.MTTKRP3()
	benchMeasure(b, e, map[string]*tiling.TiledTensor{
		"A": tileFor(b, e, "A", a, map[string]int{"i": 16, "k": 16, "l": 16}),
		"B": tileFor(b, e, "B", bm, map[string]int{"j": 16, "k": 16}),
		"C": tileFor(b, e, "C", cm, map[string]int{"j": 16, "l": 16}),
	})
}

func BenchmarkMeasureSDDMM(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	n := 384
	s := gen.UniformRandom(r, n, n, 6000)
	a := gen.UniformRandom(r, n, 64, 8000)
	bm := gen.UniformRandom(r, 64, n, 8000)
	e := einsum.SDDMM()
	benchMeasure(b, e, map[string]*tiling.TiledTensor{
		"S": tileFor(b, e, "S", s, map[string]int{"i": 16, "j": 16, "k": 16}),
		"A": tileFor(b, e, "A", a, map[string]int{"i": 16, "k": 16}),
		"B": tileFor(b, e, "B", bm, map[string]int{"k": 16, "j": 16}),
	})
}
