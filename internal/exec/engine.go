package exec

import (
	"context"
	"slices"
	"sync"

	"d2t2/internal/par"
)

// engineState is one worker's mutable state for a compiled plan: loop
// cursors, the dense output-tile accumulator, join scratch and private
// traffic counters. All buffers are sized at construction from the
// plan's caps and reused across every tile the worker claims — the
// steady-state inner loops allocate nothing.
type engineState struct {
	p *enginePlan

	cursors  [][]int32 // per depth, per ref: outer-CSF position
	rlo, rhi [][]int32 // per depth, per binds[d] entry: child range
	bound    []int32   // bound outer coordinate per depth

	inputWords []int64 // per ref occurrence
	traffic    Traffic // integer counters only (Input map stays nil)
	collect    map[uint64]float64

	// Hash-join scratch: chained buckets with heads storing position+1
	// (0 = empty), chains built in reverse so iteration ascends —
	// matching the walker's append-order buckets term for term.
	heads   []int32
	nextEnt []int32

	// Relation ping-pong buffers for materialized middle join steps.
	tupBuf [2][]int32
	valBuf [2][]float64

	// Dense per-output-tile accumulator: flat axis-order index within
	// the tile. A stamp per cell replaces clearing; touched lists the
	// live cells of the current tile scope (an entry whose terms sum to
	// zero still counts toward nnz, exactly like the walker's map).
	acc     []float64
	stamp   []uint32
	epoch   uint32
	touched []int32
	ord     []uint64 // flush scratch: level-order sort keys
}

func newEngineState(p *enginePlan) *engineState {
	nrefs := len(p.refs)
	s := &engineState{p: p}
	s.cursors = make([][]int32, p.depth+1)
	for d := range s.cursors {
		s.cursors[d] = make([]int32, nrefs)
	}
	s.rlo = make([][]int32, p.depth)
	s.rhi = make([][]int32, p.depth)
	for d := 0; d < p.depth; d++ {
		s.rlo[d] = make([]int32, len(p.binds[d]))
		s.rhi[d] = make([]int32, len(p.binds[d]))
	}
	s.bound = make([]int32, p.depth)
	s.inputWords = make([]int64, nrefs)
	if p.host.collect != nil {
		s.collect = make(map[uint64]float64)
	}
	if p.maxHeads > 0 {
		s.heads = make([]int32, p.maxHeads)
	}
	if p.maxEnts > 0 {
		s.nextEnt = make([]int32, p.maxEnts)
	}
	s.acc = make([]float64, p.accSize)
	s.stamp = make([]uint32, p.accSize)
	return s
}

// run executes the compiled plan: serially with a per-work-unit context
// check, or over the par pool with one engineState per worker (claimed
// by shared counter for load balance, registered at construction for
// the post-join merge). Traffic merges are exact integer sums; with
// CollectOutput the workers' key ranges are disjoint (workersFor), so
// the collected output is identical at any worker count.
func (p *enginePlan) run(ctx context.Context, workers int) error {
	n := len(p.topVals)
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 1 {
		s := newEngineState(p)
		for vi := 0; vi < n; vi++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			s.runTop(vi)
		}
		s.mergeInto(p.host)
		return nil
	}

	var mu sync.Mutex
	var states []*engineState
	newScratch := func() *engineState {
		s := newEngineState(p)
		mu.Lock()
		states = append(states, s)
		mu.Unlock()
		return s
	}
	err := par.ForEachScratchCtx(ctx, workers, n, newScratch, func(vi int, s *engineState) error {
		s.runTop(vi)
		return nil
	})
	if err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	for _, s := range states {
		s.mergeInto(p.host)
	}
	return nil
}

// runTop executes one outermost work unit: coordinate value topVals[vi],
// with every depth-0 binding ref advanced to its precomputed position.
func (s *engineState) runTop(vi int) {
	p := s.p
	next := s.cursors[1]
	for i := range next {
		next[i] = 0
	}
	for i, b := range p.binds[0] {
		next[b.ri] = p.topPos[i][vi]
	}
	s.bound[0] = p.topVals[vi]
	armed := p.outDepth == 0
	if armed {
		s.beginTile()
	}
	if s.nest(1) {
		s.fetchAt(0)
	}
	if armed {
		s.flushTile()
	}
}

// nest iterates loop depth d: the binding ref with the smallest child
// range drives, the others are probed by binary search (the same
// intersection the walker computes, without materializing it). Returns
// whether any work happened below — the walker's fetch gate.
func (s *engineState) nest(d int) bool {
	p := s.p
	if d == p.depth {
		s.traffic.TileIterations++
		if p.two {
			s.leaf2()
		} else {
			s.leafN()
		}
		return true
	}
	binds := p.binds[d]
	cur := s.cursors[d]
	next := s.cursors[d+1]
	rlo, rhi := s.rlo[d], s.rhi[d]
	drv := 0
	for i, b := range binds {
		node := 0
		if b.level > 0 {
			node = int(cur[b.ri])
		}
		lo, hi := p.refs[b.ri].csf.Children(int(b.level), node)
		//d2t2:ignore coordwidth lo and hi are read back out of the int32 Seg array by Children; the round-trip cannot widen past int32, and this is the innermost measurement loop
		rlo[i], rhi[i] = int32(lo), int32(hi)
		if rhi[i]-rlo[i] < rhi[drv]-rlo[drv] {
			drv = i
		}
	}
	db := binds[drv]
	dcrd := p.refs[db.ri].csf.Crd[db.level]
	copy(next, cur)
	armed := d == p.outDepth
	work := false
	for x := rlo[drv]; x < rhi[drv]; x++ {
		v := dcrd[x]
		next[db.ri] = x
		ok := true
		for i, b := range binds {
			if i == drv {
				continue
			}
			bp := searchCrd(p.refs[b.ri].csf.Crd[b.level], rlo[i], rhi[i], v)
			if bp < 0 {
				ok = false
				break
			}
			next[b.ri] = bp
		}
		if !ok {
			continue
		}
		s.bound[d] = v
		if armed {
			s.beginTile()
		}
		if s.nest(d + 1) {
			work = true
			s.fetchAt(d)
		}
		if armed {
			s.flushTile()
		}
	}
	return work
}

// fetchAt charges every ref whose fetch space completes at depth d: its
// precomputed tile cost at the outer-CSF leaf position the cursors
// point at.
func (s *engineState) fetchAt(d int) {
	p := s.p
	next := s.cursors[d+1]
	for _, ri := range p.fetch[d] {
		er := &p.refs[ri]
		lp := next[ri]
		s.inputWords[ri] += er.cost[lp]
		s.traffic.InputFetches++
		if er.over[lp] {
			s.traffic.OverflowFetches++
		}
	}
}

// beginTile opens a fresh output-tile scope: bump the epoch instead of
// clearing the dense accumulator (a full clear only on the ~never
// wraparound).
func (s *engineState) beginTile() {
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
	s.touched = s.touched[:0]
}

// emit accumulates one output term at tile-local coordinates c — the
// engine's replacement for the walker's outAcc map write — and, when
// collecting, adds the term to the global output at the identical
// chronological position, so collected float sums are bit-identical.
func (s *engineState) emit(v float64, c *[maxEngineOut]int32) {
	p := s.p
	idx := int32(0)
	for a := 0; a < p.nOut; a++ {
		idx = idx*p.outTileDims[a] + c[a]
	}
	if s.stamp[idx] != s.epoch {
		s.stamp[idx] = s.epoch
		s.acc[idx] = v
		s.touched = append(s.touched, idx)
	} else {
		s.acc[idx] += v
	}
	if s.collect != nil {
		var gk uint64
		for a := 0; a < p.nOut; a++ {
			g := uint64(s.bound[p.outOrderPos[a]])*uint64(p.outTileDims[a]) + uint64(c[a])
			gk = gk*uint64(p.outDims[a]) + g
		}
		s.collect[gk] += v
	}
}

// leaf2 is the fused two-operand leaf: hash ri1's tile entries on the
// shared coordinates (exact mixed-radix keys), stream ri0's entries
// through the table, and emit each product directly.
func (s *engineState) leaf2() {
	p := s.p
	cur := s.cursors[p.depth]
	e0 := &p.refs[p.ri0].ents[cur[p.ri0]]
	e1 := &p.refs[p.ri1].ents[cur[p.ri1]]
	heads := s.heads[:p.heads2]
	clear(heads)
	next := s.nextEnt
	for t := len(e1.vals) - 1; t >= 0; t-- {
		k := int32(0)
		for x, a1 := range p.sharedA1 {
			k = k*p.shDims2[x] + e1.crds[a1][t]
		}
		next[t] = heads[k]
		//d2t2:ignore coordwidth t indexes a tile entry list whose length is bounded by the int32 tile volume; this is the innermost join loop
		heads[k] = int32(t) + 1
	}
	nOut := p.nOut
	n0 := len(e0.vals)
	for t := 0; t < n0; t++ {
		k := int32(0)
		for x, a0 := range p.sharedA0 {
			k = k*p.shDims2[x] + e0.crds[a0][t]
		}
		vt := e0.vals[t]
		for q := heads[k]; q != 0; q = next[q-1] {
			pi := int(q - 1)
			s.traffic.MACs++
			var c [maxEngineOut]int32
			for a := 0; a < nOut; a++ {
				if p.outSide[a] == 0 {
					c[a] = e0.crds[p.outAxis[a]][t]
				} else {
					c[a] = e1.crds[p.outAxis[a]][pi]
				}
			}
			s.emit(vt*e1.vals[pi], &c)
		}
	}
}

// leafN is the general leaf: materialize ri0's entries as the initial
// relation, run the precomputed middle join steps through the ping-pong
// buffers, then fuse the last step (or, for a single-ref product, emit
// the relation directly). Step order, tuple order and term order match
// joinProduct exactly.
func (s *engineState) leafN() {
	p := s.p
	cur := s.cursors[p.depth]
	e0 := &p.refs[p.ri0].ents[cur[p.ri0]]
	n := len(e0.vals)
	rank0 := len(e0.crds)
	stride := rank0
	if need := n * stride; cap(s.tupBuf[0]) < need {
		s.tupBuf[0] = make([]int32, need+need/2)
	}
	tup := s.tupBuf[0][:n*stride]
	for t := 0; t < n; t++ {
		for a := 0; a < rank0; a++ {
			tup[t*stride+a] = e0.crds[a][t]
		}
	}
	if cap(s.valBuf[0]) < n {
		s.valBuf[0] = make([]float64, n+n/2)
	}
	vals := s.valBuf[0][:n]
	copy(vals, e0.vals)

	buf := 0
	for mi := range p.mids {
		st := &p.mids[mi]
		en := &p.refs[st.ri].ents[cur[st.ri]]
		s.chain(st, en)
		heads, next := s.heads[:st.heads], s.nextEnt
		ob := 1 - buf
		outTup := s.tupBuf[ob][:0]
		outVals := s.valBuf[ob][:0]
		nt := len(vals)
		for t := 0; t < nt; t++ {
			base := tup[t*stride : (t+1)*stride]
			k := int32(0)
			for x, vp := range st.sharedRel {
				k = k*st.shDims[x] + base[vp]
			}
			for q := heads[k]; q != 0; q = next[q-1] {
				pi := int(q - 1)
				outTup = append(outTup, base...)
				for _, a := range st.newAxes {
					outTup = append(outTup, en.crds[a][pi])
				}
				outVals = append(outVals, vals[t]*en.vals[pi])
			}
		}
		s.traffic.MACs += int64(len(outVals))
		s.tupBuf[ob] = outTup
		s.valBuf[ob] = outVals
		tup, vals, stride, buf = outTup, outVals, st.strideOut, ob
		if len(vals) == 0 {
			return
		}
	}

	if p.last == nil {
		nt := len(vals)
		for t := 0; t < nt; t++ {
			base := tup[t*stride : (t+1)*stride]
			var c [maxEngineOut]int32
			for a := 0; a < p.nOut; a++ {
				c[a] = base[p.outFromTuple[a]]
			}
			s.emit(vals[t], &c)
		}
		return
	}

	st := p.last
	en := &p.refs[st.ri].ents[cur[st.ri]]
	s.chain(st, en)
	heads, next := s.heads[:st.heads], s.nextEnt
	nt := len(vals)
	for t := 0; t < nt; t++ {
		base := tup[t*stride : (t+1)*stride]
		k := int32(0)
		for x, vp := range st.sharedRel {
			k = k*st.shDims[x] + base[vp]
		}
		vt := vals[t]
		for q := heads[k]; q != 0; q = next[q-1] {
			pi := int(q - 1)
			s.traffic.MACs++
			var c [maxEngineOut]int32
			for a := 0; a < p.nOut; a++ {
				if vp := p.outFromTuple[a]; vp >= 0 {
					c[a] = base[vp]
				} else {
					c[a] = en.crds[p.outFromProbe[a]][pi]
				}
			}
			s.emit(vt*en.vals[pi], &c)
		}
	}
}

// chain rebuilds the bucket chains for one join step's probe entries,
// in reverse so bucket iteration ascends by entry position.
func (s *engineState) chain(st *joinStep, en *entryList) {
	heads := s.heads[:st.heads]
	clear(heads)
	next := s.nextEnt
	for t := len(en.vals) - 1; t >= 0; t-- {
		k := int32(0)
		for x, a := range st.sharedAx {
			k = k*st.shDims[x] + en.crds[a][t]
		}
		next[t] = heads[k]
		//d2t2:ignore coordwidth t indexes a tile entry list whose length is bounded by the int32 tile volume; this is the innermost join loop
		heads[k] = int32(t) + 1
	}
}

// flushTile closes an output-tile scope: the touched cells' CSF
// footprint (level-order sort, fiber counting by coordinate divergence,
// overflow chunking) charged to the output traffic — the same
// arithmetic as the walker's flushOutput over its map keys.
func (s *engineState) flushTile() {
	p := s.p
	nnz := len(s.touched)
	if nnz == 0 {
		return
	}
	t := &s.traffic
	if p.host.opts.ValuesOnly {
		t.Output += int64(nnz)
		t.OutputWrites++
		t.OutputNNZ += int64(nnz)
		return
	}
	if cap(s.ord) < nnz {
		s.ord = make([]uint64, nnz+nnz/2)
	}
	ord := s.ord[:nnz]
	nOut := p.nOut
	for i, idx := range s.touched {
		k := idx
		var c [maxEngineOut]int32
		for a := nOut - 1; a >= 0; a-- {
			td := p.outTileDims[a]
			c[a] = k % td
			k /= td
		}
		var o uint64
		for _, a := range p.outLevels {
			o = o*uint64(p.outTileDims[a]) + uint64(c[a])
		}
		ord[i] = o
	}
	slices.Sort(ord)
	var prev [maxEngineOut]int32
	var fibers [maxEngineOut]int
	for i, o := range ord {
		var c [maxEngineOut]int32
		for l := nOut - 1; l >= 0; l-- {
			td := uint64(p.outTileDims[p.outLevels[l]])
			//d2t2:ignore coordwidth the modulus is bounded by the int32 output tile dimension; this is the per-tile flush loop
			c[l] = int32(o % td)
			o /= td
		}
		div := 0
		if i > 0 {
			for div < nOut && c[div] == prev[div] {
				div++
			}
		}
		for l := div; l < nOut; l++ {
			fibers[l]++
		}
		prev = c
	}
	words := nnz
	for l := 0; l < nOut; l++ {
		words += fibers[l]
		if l == 0 {
			words += 2
		} else {
			words += fibers[l-1] + 1
		}
	}
	writes := int64(1)
	if b := p.host.opts.OutputBufferWords; b > 0 && words > b {
		writes = int64((words + b - 1) / b)
		words += int(writes-1) * (nOut + 2)
		t.OutputOverflows += writes - 1
	}
	t.Output += int64(words)
	t.OutputWrites += writes
	t.OutputNNZ += int64(nnz)
}

// mergeInto folds this worker's counters into the host runner — exact
// integer sums per counter and per occurrence, plus the disjoint-key
// collect merge.
func (s *engineState) mergeInto(r *runner) {
	for ri := range s.inputWords {
		if w := s.inputWords[ri]; w != 0 {
			r.traffic.Input[s.p.refs[ri].name] += w
		}
	}
	r.traffic.Output += s.traffic.Output
	r.traffic.OutputWrites += s.traffic.OutputWrites
	r.traffic.TileIterations += s.traffic.TileIterations
	r.traffic.MACs += s.traffic.MACs
	r.traffic.OutputNNZ += s.traffic.OutputNNZ
	r.traffic.InputFetches += s.traffic.InputFetches
	r.traffic.OverflowFetches += s.traffic.OverflowFetches
	r.traffic.OutputOverflows += s.traffic.OutputOverflows
	if r.collect != nil {
		for k, v := range s.collect {
			r.collect[k] += v
		}
	}
}
