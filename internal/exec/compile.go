package exec

import (
	"d2t2/internal/checked"
	"d2t2/internal/einsum"
	"d2t2/internal/formats"
)

// The engine's shape envelope. Kernels outside it fall back to the
// generic walker: the caps bound the per-worker scratch (dense output
// accumulator, join head table) and the fixed-size coordinate arrays
// the compiled loop nest uses.
const (
	maxEngineRefs  = 8       // tensor occurrences per product
	maxEngineDepth = 6       // loop levels
	maxEngineOut   = 4       // output rank
	maxEngineHeads = 1 << 16 // join head-table entries per step
	maxEngineAcc   = 1 << 20 // dense output-tile accumulator entries
)

// bindRef names one outer-CSF level a loop depth advances.
type bindRef struct {
	ri    int32 // index into runner.refs / enginePlan.refs
	level int32 // outer-CSF level entered at this depth
}

// engineRef is one tensor occurrence, predecoded: every tile's entry
// list, fetch cost and overflow flag indexed by the tile's leaf
// position in the outer CSF — so the inner loops never touch a map.
type engineRef struct {
	name string
	csf  *formats.CSF
	ents []entryList
	cost []int64
	over []bool
}

// joinStep is one precomputed hash-join step of the leaf computation:
// probe the accumulated relation against one ref's entries on the
// shared index variables.
type joinStep struct {
	ri        int32   // ref joined in at this step
	sharedRel []int32 // tuple positions of the shared vars in the relation
	sharedAx  []int32 // the same vars as ref axes (ref-axis order)
	shDims    []int32 // tile dim per shared var — mixed-radix key digits
	newAxes   []int32 // ref axes introducing new vars
	heads     int     // head-table size = product of shDims
	strideOut int     // relation stride after this step
}

// enginePlan is a kernel compiled for the measurement engine: the loop
// nest (binds/fetch per depth), the leaf join plan, the output-tile
// accumulator geometry and the predecoded operands. It is immutable
// after compileEngine returns; every worker runs it through a private
// engineState.
type enginePlan struct {
	host  *runner
	depth int
	nOut  int

	binds [][]bindRef // per depth: levels advanced
	fetch [][]int32   // per depth: refs whose fetch space completes here

	outDepth    int
	outOrderPos []int32 // loop depth binding each output axis
	outTileDims []int32
	outDims     []int64
	outLevels   []int32 // output axes in dataflow (level) order
	accSize     int     // product of outTileDims

	refs []engineRef

	// Outermost loop: candidate coordinate values and, per binds[0]
	// entry, the outer-CSF position of each value — the pool's work
	// units, claimed by index.
	topVals []int32
	topPos  [][]int32

	// Fused two-ref join (the SpMSpM/TTM/SDDMM-after-sampling leaf
	// shape): probe ref ri1 hashed on sharedA1, driven by ri0 rows.
	two      bool
	ri0, ri1 int32
	sharedA0 []int32
	sharedA1 []int32
	shDims2  []int32
	heads2   int
	outSide  []int8  // per output axis: 0 = from ri0 entry, 1 = from ri1 entry
	outAxis  []int32 // the tensor axis on that side

	// General chain (1 ref, or ≥3 refs as in MTTKRP/SDDMM): middle
	// steps materialize the relation, the last step is fused with the
	// output reduction.
	mids         []joinStep
	last         *joinStep
	outFromTuple []int32 // relation tuple position per output axis, or -1
	outFromProbe []int32 // last-step ref axis per output axis, or -1

	maxHeads int // scratch sizing: largest head table across steps
	maxEnts  int // scratch sizing: largest entry list across tiles
}

// compileEngine builds the specialized engine for a runner's kernel, or
// returns nil when the kernel is outside the engine's envelope (multiple
// summands, tracing, ForceGeneric, or scratch caps exceeded) — the
// caller then falls back to the generic walker.
func compileEngine(r *runner) *enginePlan {
	o := &r.opts
	if o.Trace != nil || o.ForceGeneric {
		return nil
	}
	if len(r.prods) != 1 || len(r.refs) > maxEngineRefs {
		return nil
	}
	if r.depth < 1 || r.depth > maxEngineDepth || r.outDepth < 0 {
		return nil
	}
	nOut := len(r.e.Out.Indices)
	if nOut < 1 || nOut > maxEngineOut {
		return nil
	}
	accSize := 1
	for _, td := range r.outTileDims {
		accSize *= td
		if accSize > maxEngineAcc {
			return nil
		}
	}
	prod := r.prods[0]
	if len(prod) != len(r.refs) {
		return nil
	}
	seen := make([]bool, len(r.refs))
	for _, ri := range prod {
		if seen[ri] {
			return nil
		}
		seen[ri] = true
	}

	p := &enginePlan{host: r, depth: r.depth, nOut: nOut, outDepth: r.outDepth, accSize: accSize}
	for a := range r.outTileDims {
		p.outTileDims = append(p.outTileDims, checked.Int32(r.outTileDims[a]))
		p.outDims = append(p.outDims, int64(r.outDims[a]))
		p.outOrderPos = append(p.outOrderPos, checked.Int32(r.e.OrderPos(r.e.Out.Indices[a])))
	}
	for _, a := range r.outLevels {
		p.outLevels = append(p.outLevels, checked.Int32(a))
	}
	for d := 0; d < r.depth; d++ {
		var bs []bindRef
		var fs []int32
		for ri, st := range r.refs {
			if l := st.levelAtDepth[d]; l >= 0 {
				bs = append(bs, bindRef{checked.Int32(ri), checked.Int32(l)})
			}
			if st.fetchDepth == d {
				fs = append(fs, checked.Int32(ri))
			}
		}
		if len(bs) == 0 {
			return nil
		}
		p.binds = append(p.binds, bs)
		p.fetch = append(p.fetch, fs)
	}

	if !p.compileJoin(prod) {
		return nil
	}

	for _, st := range r.refs {
		er := buildEngineRef(st, o)
		for i := range er.ents {
			if n := len(er.ents[i].vals); n > p.maxEnts {
				p.maxEnts = n
			}
		}
		p.refs = append(p.refs, er)
	}

	p.compileTop()
	return p
}

// compileJoin precomputes the leaf join plan over the product's refs in
// occurrence order — the same left-deep order joinProduct uses, so the
// engine emits output terms in the identical sequence (the engine's
// float sums are bit-identical to the walker's because addition order
// matches term for term). The engine requires every shared-key radix
// product within maxEngineHeads, which also keeps it inside the regime
// where the walker's 16-bit-per-var hash keys are collision-free.
func (p *enginePlan) compileJoin(prod []int) bool {
	r := p.host
	e := r.e
	ref0 := r.refs[prod[0]].ref
	p.ri0 = checked.Int32(prod[0])

	if len(prod) == 2 {
		p.two = true
		st1 := r.refs[prod[1]]
		p.ri1 = checked.Int32(prod[1])
		heads := 1
		for a1, ix := range st1.ref.Indices {
			a0 := axisOf(ref0, ix)
			if a0 < 0 {
				continue
			}
			p.sharedA0 = append(p.sharedA0, checked.Int32(a0))
			p.sharedA1 = append(p.sharedA1, checked.Int32(a1))
			dim := st1.tt.TileDims[a1]
			p.shDims2 = append(p.shDims2, checked.Int32(dim))
			heads *= dim
			if heads > maxEngineHeads {
				return false
			}
		}
		p.heads2 = heads
		p.maxHeads = heads
		for _, ix := range e.Out.Indices {
			if a0 := axisOf(ref0, ix); a0 >= 0 {
				p.outSide = append(p.outSide, 0)
				p.outAxis = append(p.outAxis, checked.Int32(a0))
			} else if a1 := axisOf(st1.ref, ix); a1 >= 0 {
				p.outSide = append(p.outSide, 1)
				p.outAxis = append(p.outAxis, checked.Int32(a1))
			} else {
				return false
			}
		}
		return true
	}

	vars := append([]string(nil), ref0.Indices...)
	nsteps := len(prod) - 1
	for s := 0; s < nsteps; s++ {
		ri := prod[s+1]
		st := r.refs[ri]
		step := joinStep{ri: checked.Int32(ri)}
		heads := 1
		for a, ix := range st.ref.Indices {
			if pos := indexOfVar(vars, ix); pos >= 0 {
				step.sharedRel = append(step.sharedRel, checked.Int32(pos))
				step.sharedAx = append(step.sharedAx, checked.Int32(a))
				dim := st.tt.TileDims[a]
				step.shDims = append(step.shDims, checked.Int32(dim))
				heads *= dim
				if heads > maxEngineHeads {
					return false
				}
			} else {
				step.newAxes = append(step.newAxes, checked.Int32(a))
			}
		}
		step.heads = heads
		if heads > p.maxHeads {
			p.maxHeads = heads
		}
		if s == nsteps-1 {
			last := step
			p.last = &last
			for _, ix := range e.Out.Indices {
				if pos := indexOfVar(vars, ix); pos >= 0 {
					p.outFromTuple = append(p.outFromTuple, checked.Int32(pos))
					p.outFromProbe = append(p.outFromProbe, -1)
				} else if a := axisOf(st.ref, ix); a >= 0 {
					p.outFromTuple = append(p.outFromTuple, -1)
					p.outFromProbe = append(p.outFromProbe, checked.Int32(a))
				} else {
					return false
				}
			}
			return true
		}
		for _, a := range step.newAxes {
			vars = append(vars, st.ref.Indices[a])
		}
		step.strideOut = len(vars)
		p.mids = append(p.mids, step)
	}

	// Single-ref product: emit straight from ref0 entries.
	for _, ix := range e.Out.Indices {
		pos := indexOfVar(vars, ix)
		if pos < 0 {
			return false
		}
		p.outFromTuple = append(p.outFromTuple, checked.Int32(pos))
		p.outFromProbe = append(p.outFromProbe, -1)
	}
	return true
}

// buildEngineRef predecodes every tile of one occurrence, keyed by the
// tile's leaf position in the outer CSF, and precomputes its fetch cost
// under the options (footprint, ValuesOnly nnz, or overbooked-buffer
// overflow) — the same arithmetic walk performs per fetch.
func buildEngineRef(st *refState, o *Options) engineRef {
	csf := st.tt.OuterCSF
	nl := csf.Levels()
	nleaf := csf.NNZ()
	er := engineRef{
		name: st.ref.Name,
		csf:  csf,
		ents: make([]entryList, nleaf),
		cost: make([]int64, nleaf),
		over: make([]bool, nleaf),
	}
	if nleaf == 0 {
		return er
	}
	outer := make([]int, nl)
	var rec func(level, node int)
	rec = func(level, node int) {
		s, t := csf.Children(level, node)
		for pp := s; pp < t; pp++ {
			outer[csf.Order[level]] = int(csf.Crd[level][pp])
			if level < nl-1 {
				rec(level+1, pp)
				continue
			}
			tile := st.tt.Lookup(outer...)
			cost := int64(tile.Footprint)
			if o.ValuesOnly {
				cost = int64(tile.NNZ())
			} else if b := o.InputBufferWords; b > 0 && tile.Footprint > b {
				extra := o.OverflowExtra
				if extra == 0 {
					extra = 1
				}
				cost += int64(extra * float64(tile.Footprint-b))
				er.over[pp] = true
			}
			er.cost[pp] = cost
			er.ents[pp] = *decodeEntries(st.tt, tile)
		}
	}
	rec(0, 0)
	return er
}

// compileTop enumerates the outermost loop's work units: the candidate
// coordinate values (intersection of every depth-0 ref's root
// coordinates) and, per binding ref, each value's outer-CSF position —
// precomputed once so pool workers claim values without re-probing.
func (p *enginePlan) compileTop() {
	b0 := p.binds[0]
	type rootRange struct {
		lo, hi int32
		crd    []int32
	}
	rs := make([]rootRange, len(b0))
	for i, b := range b0 {
		csf := p.refs[b.ri].csf
		s, t := csf.Children(int(b.level), 0)
		//d2t2:ignore coordwidth s and t are read back out of the int32 Seg array by Children; the round-trip cannot widen past int32
		rs[i] = rootRange{checked.Int32(s), checked.Int32(t), csf.Crd[b.level]}
	}
	pos := make([][]int32, len(b0))
	tmp := make([]int32, len(b0))
	r0 := rs[0]
	for x := r0.lo; x < r0.hi; x++ {
		v := r0.crd[x]
		tmp[0] = x
		ok := true
		for i := 1; i < len(rs); i++ {
			bp := searchCrd(rs[i].crd, rs[i].lo, rs[i].hi, v)
			if bp < 0 {
				ok = false
				break
			}
			tmp[i] = bp
		}
		if !ok {
			continue
		}
		p.topVals = append(p.topVals, v)
		for i := range rs {
			pos[i] = append(pos[i], tmp[i])
		}
	}
	p.topPos = pos
}

func axisOf(ref einsum.Ref, ix string) int {
	for a, v := range ref.Indices {
		if v == ix {
			return a
		}
	}
	return -1
}

func indexOfVar(vars []string, ix string) int {
	for i, v := range vars {
		if v == ix {
			return i
		}
	}
	return -1
}
