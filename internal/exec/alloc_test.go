package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/raceflag"
	"d2t2/internal/tiling"
)

// TestMeasureAllocs is the allocation regression gate for the compiled
// measurement engine: per-Measure allocations are bounded by the plan
// build and the per-tile predecode (O(refs + tiles)), never by entries,
// join tuples or output cells — those all live in reused per-worker
// scratch. The ceiling is ~2x the measured steady state so legitimate
// churn does not flake, while a return to per-node map allocation or
// per-tuple slice growth blows through it immediately.
func TestMeasureAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	r := rand.New(rand.NewSource(23))
	a := gen.PowerLawGraph(r, 256, 6000, 1.6)
	b := a.Transpose()
	e := einsum.SpMSpMIKJ()
	tiles := map[string]int{"i": 16, "k": 16, "j": 16}
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, tiles),
		"B": tileFor(t, e, "B", b, tiles),
	}
	for _, tc := range []struct {
		workers int
		ceiling float64
	}{{1, 4500}, {8, 5000}} {
		t.Run(fmt.Sprintf("workers=%d", tc.workers), func(t *testing.T) {
			opts := &Options{Workers: tc.workers}
			avg := testing.AllocsPerRun(2, func() {
				res, err := Measure(e, tens, opts)
				if err != nil || !res.Specialized || res.MACs == 0 {
					t.Fatalf("measurement failed: %v (specialized=%v)", err, res != nil && res.Specialized)
				}
			})
			t.Logf("allocs/op: %.0f", avg)
			if avg > tc.ceiling {
				t.Errorf("Measure allocates %.0f times per call, ceiling %.0f", avg, tc.ceiling)
			}
		})
	}
}
