package exec

import (
	"sort"

	"d2t2/internal/checked"
	"d2t2/internal/formats"
	"d2t2/internal/tiling"
)

// joinProduct performs the inner-tile computation of one alive summand at
// the current outer iteration point: a left-deep hash join of the member
// tiles over their shared inner index variables. It updates MAC counts
// and accumulates reduced partial results into the output accumulator.
func (r *runner) joinProduct(prod []int) {
	// Relation: tuple coordinates per var in `vars`, and a value each.
	var vars []string
	var tuples []int32
	var vals []float64

	for step, ri := range prod {
		st := r.refs[ri]
		tile := r.tileOf(st)
		if tile == nil {
			return // outer filtering guarantees this does not happen
		}
		ent := r.entriesOf(st, tile)
		n := len(ent.vals)
		if step == 0 {
			vars = append(vars, st.ref.Indices...)
			tuples = make([]int32, 0, n*len(vars))
			for p := 0; p < n; p++ {
				for a := range st.ref.Indices {
					tuples = append(tuples, ent.crds[a][p])
				}
			}
			vals = append(vals, ent.vals...)
			continue
		}

		// Shared vars between the accumulated relation and this ref.
		var sharedRel, sharedRef []int // positions
		var newAxes []int              // ref axes not already bound
		for a, ix := range st.ref.Indices {
			pos := -1
			for vp, v := range vars {
				if v == ix {
					pos = vp
					break
				}
			}
			if pos >= 0 {
				sharedRel = append(sharedRel, pos)
				sharedRef = append(sharedRef, a)
			} else {
				newAxes = append(newAxes, a)
			}
		}

		// Hash the ref entries on the shared coordinates.
		type bucket []int32 // entry positions
		hash := make(map[uint64]bucket, n)
		for p := 0; p < n; p++ {
			var key uint64
			for _, a := range sharedRef {
				key = key<<16 | uint64(uint16(ent.crds[a][p]))
			}
			hash[key] = append(hash[key], checked.Int32(p))
		}

		stride := len(vars)
		newVars := append([]string{}, vars...)
		for _, a := range newAxes {
			newVars = append(newVars, st.ref.Indices[a])
		}
		var outTuples []int32
		var outVals []float64
		for t := 0; t < len(vals); t++ {
			base := tuples[t*stride : (t+1)*stride]
			var key uint64
			for _, vp := range sharedRel {
				key = key<<16 | uint64(uint16(base[vp]))
			}
			for _, p := range hash[key] {
				outTuples = append(outTuples, base...)
				for _, a := range newAxes {
					outTuples = append(outTuples, ent.crds[a][p])
				}
				outVals = append(outVals, vals[t]*ent.vals[p])
			}
		}
		r.traffic.MACs += int64(len(outVals))
		vars, tuples, vals = newVars, outTuples, outVals
		if len(vals) == 0 {
			return
		}
	}
	// Reduce into the output accumulator over the out index variables.
	// (A single-factor summand performs no multiplications but still
	// produces output.)
	outPos := make([]int, len(r.e.Out.Indices))
	for a, ix := range r.e.Out.Indices {
		pos := -1
		for vp, v := range vars {
			if v == ix {
				pos = vp
				break
			}
		}
		outPos[a] = pos // guaranteed >= 0 by validation
	}
	stride := len(vars)
	nOut := len(r.e.Out.Indices)
	for t := 0; t < len(vals); t++ {
		base := tuples[t*stride : (t+1)*stride]
		var innerKey uint64
		for a := 0; a < nOut; a++ {
			innerKey = innerKey*uint64(r.outTileDims[a]) + uint64(base[outPos[a]])
		}
		r.outAcc[innerKey] += vals[t]
		if r.collect != nil {
			var globalKey uint64
			for a := 0; a < nOut; a++ {
				d := r.e.OrderPos(r.e.Out.Indices[a])
				global := uint64(r.bound[d])*uint64(r.outTileDims[a]) + uint64(base[outPos[a]])
				globalKey = globalKey*uint64(r.outDims[a]) + global
			}
			r.collect[globalKey] += vals[t]
		}
	}
}

// entriesOf decodes (and caches) a tile's inner coordinates in axis
// order.
func (r *runner) entriesOf(st *refState, tile *tiling.Tile) *entryList {
	if e := st.entries[tile]; e != nil {
		return e
	}
	e := decodeEntries(st.tt, tile)
	st.entries[tile] = e
	return e
}

// decodeEntries decodes a tile's entries into per-axis coordinate lists
// plus values, in the tile CSF's depth-first storage order (the order
// ToCOO restores). For packed super-tiles (tiling.PackTiles), member
// entries are re-based from member-tile origins to the packed tile's
// origin. Shared by the generic walker's cache and the engine's
// predecode; both paths therefore see identical entry order, which the
// float-determinism argument of the engine relies on.
func decodeEntries(tt *tiling.TiledTensor, tile *tiling.Tile) *entryList {
	n := len(tt.Dims)
	total := tile.NNZ()
	e := &entryList{crds: make([][]int32, n), vals: make([]float64, 0, total)}
	for a := 0; a < n; a++ {
		e.crds[a] = make([]int32, 0, total)
	}
	if tile.Members == nil {
		appendCSFEntries(e, tile.CSF, nil)
	} else {
		off := make([]int32, n)
		for _, m := range tile.Members {
			for a := 0; a < n; a++ {
				off[a] = checked.Int32(m.Outer[a]*tt.PackedFrom[a] - tile.Outer[a]*tt.TileDims[a])
			}
			appendCSFEntries(e, m.CSF, off)
		}
	}
	return e
}

// appendCSFEntries walks one tile CSF depth-first and appends each
// entry's axis-order coordinates (plus the per-axis offset, when
// non-nil) and value.
func appendCSFEntries(e *entryList, csf *formats.CSF, off []int32) {
	lv := csf.Levels()
	if csf.NNZ() == 0 {
		return
	}
	path := make([]int32, lv)
	var rec func(level, node int)
	rec = func(level, node int) {
		s, t := csf.Children(level, node)
		for p := s; p < t; p++ {
			c := csf.Crd[level][p]
			if off != nil {
				c += off[csf.Order[level]]
			}
			path[level] = c
			if level == lv-1 {
				for l := 0; l < lv; l++ {
					a := csf.Order[l]
					e.crds[a] = append(e.crds[a], path[l])
				}
				e.vals = append(e.vals, csf.Vals[p])
			} else {
				rec(level+1, p)
			}
		}
	}
	rec(0, 0)
}

// flushOutput writes the accumulated output tile: its CSF footprint is
// added to the output traffic.
func (r *runner) flushOutput() {
	nnz := len(r.outAcc)
	if nnz == 0 {
		return
	}
	if r.opts.ValuesOnly {
		r.traffic.Output += int64(nnz)
		r.traffic.OutputWrites++
		r.traffic.OutputNNZ += int64(nnz)
		return
	}
	keys := make([]uint64, 0, nnz)
	for k := range r.outAcc {
		keys = append(keys, k)
	}
	// Decode inner coordinates and order them by the output level order.
	nOut := len(r.e.Out.Indices)
	coords := make([][]int32, nnz)
	for i, k := range keys {
		c := make([]int32, nOut)
		for a := nOut - 1; a >= 0; a-- {
			c[a] = checked.Int32(int(k % uint64(r.outTileDims[a])))
			k /= uint64(r.outTileDims[a])
		}
		coords[i] = c
	}
	lv := r.outLevels
	sort.Slice(coords, func(x, y int) bool {
		for _, a := range lv {
			if coords[x][a] != coords[y][a] {
				return coords[x][a] < coords[y][a]
			}
		}
		return false
	})
	// CSF footprint: values + per-level coordinate and segment words.
	words := nnz
	fibers := make([]int, nOut)
	for i := range coords {
		div := 0
		if i > 0 {
			for div = 0; div < nOut; div++ {
				if coords[i][lv[div]] != coords[i-1][lv[div]] {
					break
				}
			}
		}
		for l := div; l < nOut; l++ {
			fibers[l]++
		}
	}
	for l := 0; l < nOut; l++ {
		words += fibers[l] // coordinates
		if l == 0 {
			words += 2
		} else {
			words += fibers[l-1] + 1
		}
	}
	writes := int64(1)
	if b := r.opts.OutputBufferWords; b > 0 && words > b {
		// Overflow streaming (§6): the tile leaves the chip in
		// ceil(words/b) chunks; every extra chunk repeats the per-partial
		// segment overhead (root segment bounds plus a descriptor word).
		writes = int64((words + b - 1) / b)
		words += int(writes-1) * (nOut + 2)
		r.traffic.OutputOverflows += writes - 1
	}
	r.traffic.Output += int64(words)
	r.traffic.OutputWrites += writes
	r.traffic.OutputNNZ += int64(nnz)
	if r.opts.Trace != nil {
		outOuter := make([]int, len(r.e.Out.Indices))
		for a, oix := range r.e.Out.Indices {
			outOuter[a] = int(r.bound[r.e.OrderPos(oix)])
		}
		r.trace("write", "OUT", outOuter, int64(words))
	}
}
