package exec

import (
	"context"
	"sync"

	"d2t2/internal/einsum"
	"d2t2/internal/par"
)

// workersFor decides whether a measurement may run in parallel. Traffic
// counters are exact integer sums, so any partition of the outermost
// loop merges to the serial result — parallel execution is always safe
// for pure measurement. With CollectOutput the outermost loop index
// must additionally appear in the output, so every worker's collected
// coordinates are disjoint and the per-key float sums are byte-identical
// to the serial pass. Tracing interleaves a shared writer and forces
// serial execution.
func workersFor(e *einsum.Expr, opts *Options) int {
	if opts == nil || opts.Workers <= 1 || opts.Trace != nil {
		return 1
	}
	if !opts.CollectOutput {
		return opts.Workers
	}
	first := e.Order[0]
	for _, ix := range e.Out.Indices {
		if ix == first {
			return opts.Workers
		}
	}
	return 1
}

// runParallelCtx schedules the outermost loop's coordinate values as
// work units on the par pool: workers claim tiles from a shared counter
// (no modulo striping, so power-law outer fibers load-balance), reuse
// one clone of the runner as per-worker scratch across every tile they
// claim, and the exact integer traffic merges after the join. Panics
// inside a work unit surface as *par.PanicError under the pool's
// lowest-index-error-wins rule, and ctx is consulted before each claim.
func (r *runner) runParallelCtx(ctx context.Context, workers int) error {
	values := r.topValues()
	if len(values) == 0 {
		return ctx.Err()
	}

	// Workers register their scratch runner at construction (under the
	// lock) for the commutative post-join merge — the sanctioned
	// scratch-escape pattern (see par.ForEachScratch).
	var mu sync.Mutex
	var subs []*runner
	newScratch := func() *runner {
		sub := r.clone()
		mu.Lock()
		subs = append(subs, sub)
		mu.Unlock()
		return sub
	}
	err := par.ForEachScratchCtx(ctx, workers, len(values), newScratch, func(i int, sub *runner) error {
		sub.runOne(values[i])
		return nil
	})
	if err != nil {
		return err
	}

	mu.Lock()
	defer mu.Unlock()
	for _, sub := range subs {
		r.mergeFrom(sub)
	}
	return nil
}
