package exec

import (
	"sort"
	"sync"

	"d2t2/internal/einsum"
	"d2t2/internal/tiling"
)

// workersFor decides whether a measurement may run in parallel: the
// outermost loop index must appear in the output so every worker's
// output accumulators and collected coordinates are disjoint.
func workersFor(e *einsum.Expr, opts *Options) int {
	if opts == nil || opts.Workers <= 1 || opts.Trace != nil {
		return 1
	}
	first := e.Order[0]
	for _, ix := range e.Out.Indices {
		if ix == first {
			return opts.Workers
		}
	}
	return 1
}

// runParallel partitions the outermost loop's coordinate values across
// workers; each worker runs an independent runner restricted to its
// share (topFilter) and the integer traffic counters merge exactly.
func (r *runner) runParallel(e *einsum.Expr, tensors map[string]*tiling.TiledTensor, opts *Options, workers int) error {
	// Enumerate top-level candidate values exactly as walk(0) would:
	// union over summands of the intersection of root-level coordinates.
	values := make(map[int32]bool)
	for _, prod := range r.prods {
		var sets [][]int32
		for _, ri := range prod {
			st := r.refs[ri]
			if st.levelAtDepth[0] < 0 {
				continue
			}
			s, e := st.tt.OuterCSF.Children(0, 0)
			sets = append(sets, st.tt.OuterCSF.Crd[0][s:e])
		}
		if len(sets) == 0 {
			continue
		}
		for _, v := range intersectSorted(sets) {
			values[v] = true
		}
	}
	if len(values) == 0 {
		return nil
	}
	if workers > len(values) {
		workers = len(values)
	}

	ordered := make([]int32, 0, len(values))
	for v := range values {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a] < ordered[b] })

	subs := make([]*runner, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sub, err := newRunner(e, tensors, opts)
		if err != nil {
			return err
		}
		sub.topFilter = make(map[int32]bool)
		for i, v := range ordered {
			if i%workers == w {
				sub.topFilter[v] = true
			}
		}
		subs[w] = sub
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[w] = panicError{p}
				}
			}()
			subs[w].run()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	for _, sub := range subs {
		for name, words := range sub.traffic.Input {
			r.traffic.Input[name] += words
		}
		r.traffic.Output += sub.traffic.Output
		r.traffic.OutputWrites += sub.traffic.OutputWrites
		r.traffic.TileIterations += sub.traffic.TileIterations
		r.traffic.MACs += sub.traffic.MACs
		r.traffic.OutputNNZ += sub.traffic.OutputNNZ
		r.traffic.OverflowFetches += sub.traffic.OverflowFetches
		r.traffic.OutputOverflows += sub.traffic.OutputOverflows
		if r.collect != nil {
			for k, v := range sub.collect {
				r.collect[k] += v
			}
		}
	}
	return nil
}

type panicError struct{ v any }

func (p panicError) Error() string { return "exec: worker panic" }
