package exec

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/par"
	"d2t2/internal/tiling"
)

func spmspmFixture(t testing.TB, seed int64) (*einsum.Expr, map[string]*tiling.TiledTensor) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	a := gen.PowerLawGraph(r, 64, 600, 1.6)
	e := einsum.SpMSpMIKJ()
	tiles := map[string]int{"i": 8, "k": 8, "j": 8}
	return e, map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, tiles),
		"B": tileFor(t, e, "B", a.Transpose(), tiles),
	}
}

// TestMeasureCtxCancelled: a dead context stops the measurement at the
// next outer-tile boundary and surfaces the context's error, on both
// backends and at any worker count.
func TestMeasureCtxCancelled(t *testing.T) {
	e, tens := spmspmFixture(t, 31)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, generic := range []bool{false, true} {
		for _, workers := range []int{1, 8} {
			_, err := MeasureCtx(ctx, e, tens, &Options{ForceGeneric: generic, Workers: workers})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("generic=%v workers=%d: err=%v, want context.Canceled",
					generic, workers, err)
			}
		}
	}
	// A live context yields the usual result.
	if _, err := MeasureCtx(context.Background(), e, tens, nil); err != nil {
		t.Fatal(err)
	}
}

// TestParallelPanicSurfacesValue: a panic inside a worker must come back
// as a *par.PanicError carrying the panic value, not as the discarded
// message the old exec-local wrapper produced. The sabotage (a tile with
// nnz > 0 but a nil leaf coordinate array) trips the walker's per-tile
// decode inside the worker goroutine.
func TestParallelPanicSurfacesValue(t *testing.T) {
	e, tens := spmspmFixture(t, 32)
	for _, tile := range tens["A"].Tiles {
		if tile.CSF != nil && tile.CSF.NNZ() > 0 {
			leaf := len(tile.CSF.Crd) - 1
			tile.CSF.Crd[leaf] = nil
			break
		}
	}
	_, err := Measure(e, tens, &Options{ForceGeneric: true, Workers: 8})
	if err == nil {
		t.Fatal("sabotaged tile measured without error")
	}
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err is %T (%v), want *par.PanicError", err, err)
	}
	if pe.Value == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("panic value was not preserved: %v", err)
	}
}
