package exec

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"d2t2/internal/einsum"
	"d2t2/internal/formats"
	"d2t2/internal/gen"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// tileFor tiles t for the given occurrence of e with per-index tile sizes.
func tileFor(t testing.TB, e *einsum.Expr, name string, m *tensor.COO, tileOf map[string]int) *tiling.TiledTensor {
	t.Helper()
	ref, err := e.Input(name)
	if err != nil {
		t.Fatal(err)
	}
	dims := make([]int, len(ref.Indices))
	for a, ix := range ref.Indices {
		td, ok := tileOf[ix]
		if !ok {
			t.Fatalf("no tile size for index %q", ix)
		}
		dims[a] = td
	}
	tt, err := tiling.New(m, dims, e.LevelOrder(ref))
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func measureSpMSpM(t *testing.T, e *einsum.Expr, a, b *tensor.COO, tiles map[string]int, opts *Options) *Result {
	t.Helper()
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, tiles),
		"B": tileFor(t, e, "B", b, tiles),
	}
	res, err := Measure(e, tens, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGustavsonCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := gen.UniformRandom(r, 30, 40, 150)
	b := gen.UniformRandom(r, 40, 25, 150)
	e := einsum.SpMSpMIKJ()
	res := measureSpMSpM(t, e, a, b, map[string]int{"i": 8, "k": 8, "j": 8}, &Options{CollectOutput: true})

	ref, err := formats.MulGustavson(formats.MustBuildCSR(a), formats.MustBuildCSR(b))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(res.Out, ref.ToCOO()) {
		t.Fatal("tiled Gustavson output differs from CSR reference")
	}
	if res.MACs == 0 || res.TileIterations == 0 {
		t.Fatalf("no work recorded: MACs=%d iters=%d", res.MACs, res.TileIterations)
	}
}

func TestInnerProductCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := gen.UniformRandom(r, 30, 40, 120)
	bt := gen.UniformRandom(r, 25, 40, 120) // B(j,k): already transposed layout
	e := einsum.SpMSpMIJK()
	res := measureSpMSpM(t, e, a, bt, map[string]int{"i": 8, "j": 8, "k": 8}, &Options{CollectOutput: true})

	ref, err := formats.MulGustavson(formats.MustBuildCSR(a), formats.MustBuildCSR(bt.Transpose()))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(res.Out, ref.ToCOO()) {
		t.Fatal("inner-product output differs from reference")
	}
}

func TestBothDataflowsAgreeOnOutput(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := gen.PowerLawGraph(r, 60, 300, 1.5)
	at := a.Transpose()
	ikj := measureSpMSpM(t, einsum.SpMSpMIKJ(), a, at,
		map[string]int{"i": 16, "k": 16, "j": 16}, &Options{CollectOutput: true})
	// SpMSpM-ijk computes A×Bᵀ with B(j,k); pass B = A so C = A·Aᵀ too.
	ijk := measureSpMSpM(t, einsum.SpMSpMIJK(), a, a,
		map[string]int{"i": 16, "j": 16, "k": 16}, &Options{CollectOutput: true})
	if !tensor.Equal(ikj.Out, ijk.Out) {
		t.Fatal("dataflows disagree on A·Aᵀ")
	}
}

// TestFetchCountsHandExample verifies the fetch-space accounting on a
// fully dense small case where counts are analytic.
func TestFetchCountsHandExample(t *testing.T) {
	// Dense 4x4 matrices, 2x2 tiles: outer grid 2x2, all tiles present.
	dense := func() *tensor.COO {
		m := tensor.New(4, 4)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				m.Append([]int{i, j}, 1)
			}
		}
		return m
	}
	e := einsum.SpMSpMIKJ()
	res := measureSpMSpM(t, e, dense(), dense(),
		map[string]int{"i": 2, "k": 2, "j": 2}, &Options{ValuesOnly: true})

	// A(i,k) fetched once per (i',k'): 4 tiles × 4 values.
	if got := res.Input["A"]; got != 16 {
		t.Fatalf("A traffic = %d, want 16", got)
	}
	// B(k,j) fetched once per (i',k',j'): 8 fetches × 4 values.
	if got := res.Input["B"]; got != 32 {
		t.Fatalf("B traffic = %d, want 32", got)
	}
	// Output written once per (i',k',j') leaf: 8 partials × 4 values.
	if res.Output != 32 || res.OutputWrites != 8 {
		t.Fatalf("output traffic = %d in %d writes, want 32 in 8", res.Output, res.OutputWrites)
	}
	if res.TileIterations != 8 {
		t.Fatalf("tile iterations = %d, want 8", res.TileIterations)
	}
	// 2x2 tile product: 8 MACs per pair.
	if res.MACs != 64 {
		t.Fatalf("MACs = %d, want 64", res.MACs)
	}
}

// TestOutputStationarity: in inner-product order the output accumulates
// on-chip across k', so it is written once per (i',j').
func TestOutputStationarityIJK(t *testing.T) {
	dense := func() *tensor.COO {
		m := tensor.New(4, 4)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				m.Append([]int{i, j}, 1)
			}
		}
		return m
	}
	e := einsum.SpMSpMIJK()
	res := measureSpMSpM(t, e, dense(), dense(),
		map[string]int{"i": 2, "j": 2, "k": 2}, &Options{ValuesOnly: true})
	// Writes once per (i',j') = 4; both inputs streamed per (i',j',k') = 8.
	if res.OutputWrites != 4 {
		t.Fatalf("output writes = %d, want 4", res.OutputWrites)
	}
	if res.Input["A"] != 32 || res.Input["B"] != 32 {
		t.Fatalf("input traffic = %v, want 32/32", res.Input)
	}
}

// TestTileFilteringSkipsDeadColumns reproduces the Figure 3 effect: an
// empty B row-of-tiles k' must suppress the fetch of A tiles in column k'.
func TestTileFilteringSkipsDeadColumns(t *testing.T) {
	a := tensor.New(4, 4)
	// A has entries in k-tiles 0 and 1.
	a.Append([]int{0, 0}, 1)
	a.Append([]int{0, 2}, 1)
	b := tensor.New(4, 4)
	// B has rows only in k-tile 0: k' = 1 is dead.
	b.Append([]int{0, 0}, 1)
	b.Append([]int{1, 1}, 1)

	e := einsum.SpMSpMIKJ()
	res := measureSpMSpM(t, e, a, b, map[string]int{"i": 2, "k": 2, "j": 2},
		&Options{ValuesOnly: true})
	// Only A[0,0] tile (1 value) is fetched; A tile at k'=1 is skipped.
	if got := res.Input["A"]; got != 1 {
		t.Fatalf("A traffic = %d, want 1 (dead k' not skipped?)", got)
	}
}

// TestReverseFilteringSkipsB: a B tile with no matching A column tile is
// never fetched.
func TestReverseFilteringSkipsB(t *testing.T) {
	a := tensor.New(4, 4)
	a.Append([]int{0, 0}, 1) // only k-tile 0
	b := tensor.New(4, 4)
	b.Append([]int{0, 0}, 1) // k-tile 0: live
	b.Append([]int{3, 3}, 1) // k-tile 1: dead (no A)
	e := einsum.SpMSpMIKJ()
	res := measureSpMSpM(t, e, a, b, map[string]int{"i": 2, "k": 2, "j": 2},
		&Options{ValuesOnly: true})
	if got := res.Input["B"]; got != 1 {
		t.Fatalf("B traffic = %d, want 1", got)
	}
}

func TestMeasureErrors(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	a := tensor.New(4, 4)
	a.Append([]int{0, 0}, 1)
	ttA, _ := tiling.New(a, []int{2, 2}, []int{0, 1})
	// Missing B.
	if _, err := Measure(e, map[string]*tiling.TiledTensor{"A": ttA}, nil); err == nil {
		t.Fatal("missing tensor accepted")
	}
	// Mismatched tile size on shared index k.
	ttB, _ := tiling.New(a, []int{4, 2}, []int{0, 1})
	if _, err := Measure(e, map[string]*tiling.TiledTensor{"A": ttA, "B": ttB}, nil); err == nil {
		t.Fatal("tile-size mismatch accepted")
	}
	// Wrong level order for B (needs k-major which for B(k,j) is natural;
	// give it j-major instead).
	ttB2, _ := tiling.New(a, []int{2, 2}, []int{1, 0})
	if _, err := Measure(e, map[string]*tiling.TiledTensor{"A": ttA, "B": ttB2}, nil); err == nil {
		t.Fatal("wrong level order accepted")
	}
}

// TestOptionsValidation: negative buffer knobs would silently flip the
// overflow arithmetic, so Measure must reject them loudly instead of
// producing garbage traffic.
func TestOptionsValidation(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	a := tensor.New(4, 4)
	a.Append([]int{0, 0}, 1)
	ttA, _ := tiling.New(a, []int{2, 2}, []int{0, 1})
	ttB, _ := tiling.New(a, []int{2, 2}, []int{0, 1})
	tens := map[string]*tiling.TiledTensor{"A": ttA, "B": ttB}
	cases := []struct {
		name string
		o    *Options
		want string
	}{
		{"negative input buffer", &Options{InputBufferWords: -1}, "InputBufferWords"},
		{"negative overflow extra", &Options{OverflowExtra: -2}, "OverflowExtra"},
		{"negative output buffer", &Options{OutputBufferWords: -3}, "OutputBufferWords"},
	}
	for _, tc := range cases {
		_, err := Measure(e, tens, tc.o)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %s", tc.name, err, tc.want)
		}
	}
	// Zero values stay valid (the overflow model simply off).
	if _, err := Measure(e, tens, &Options{}); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

func TestTTMCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	c := gen.RandomTensor3(r, 12, 10, 8, 200, [3]float64{0, 0, 0})
	b := gen.UniformRandom(r, 9, 8, 30)
	e := einsum.TTM() // X(i,j,k) = C(i,j,l)*B(k,l) | i,j,l,k
	tens := map[string]*tiling.TiledTensor{
		"C": tileFor(t, e, "C", c, map[string]int{"i": 4, "j": 4, "l": 4}),
		"B": tileFor(t, e, "B", b, map[string]int{"k": 4, "l": 4}),
	}
	res, err := Measure(e, tens, &Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	// Dense oracle.
	want := make(map[[3]int]float64)
	for p := 0; p < c.NNZ(); p++ {
		for q := 0; q < b.NNZ(); q++ {
			if c.Crds[2][p] == b.Crds[1][q] {
				want[[3]int{c.Crds[0][p], c.Crds[1][p], b.Crds[0][q]}] += c.Vals[p] * b.Vals[q]
			}
		}
	}
	oracle := tensor.New(12, 10, 9)
	for k, v := range want {
		oracle.Append([]int{k[0], k[1], k[2]}, v)
	}
	oracle.Dedup()
	if !tensor.AlmostEqual(res.Out, oracle, 1e-9) {
		t.Fatal("TTM output differs from oracle")
	}
}

func TestMTTKRPCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := gen.RandomTensor3(r, 10, 8, 6, 150, [3]float64{0, 0, 0})
	b := gen.UniformRandom(r, 7, 8, 25)
	c := gen.UniformRandom(r, 7, 6, 25)
	e := einsum.MTTKRP3() // D(i,j) = A(i,k,l)*B(j,k)*C(j,l) | i,k,l,j
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, map[string]int{"i": 4, "k": 4, "l": 4}),
		"B": tileFor(t, e, "B", b, map[string]int{"j": 4, "k": 4}),
		"C": tileFor(t, e, "C", c, map[string]int{"j": 4, "l": 4}),
	}
	res, err := Measure(e, tens, &Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[[2]int]float64)
	for p := 0; p < a.NNZ(); p++ {
		for q := 0; q < b.NNZ(); q++ {
			if a.Crds[1][p] != b.Crds[1][q] {
				continue
			}
			for s := 0; s < c.NNZ(); s++ {
				if a.Crds[2][p] == c.Crds[1][s] && b.Crds[0][q] == c.Crds[0][s] {
					want[[2]int{a.Crds[0][p], b.Crds[0][q]}] += a.Vals[p] * b.Vals[q] * c.Vals[s]
				}
			}
		}
	}
	oracle := tensor.New(10, 7)
	for k, v := range want {
		oracle.Append([]int{k[0], k[1]}, v)
	}
	oracle.Dedup()
	if !tensor.AlmostEqual(res.Out, oracle, 1e-9) {
		t.Fatal("MTTKRP output differs from oracle")
	}
	if res.MACs == 0 {
		t.Fatal("no MACs counted")
	}
}

func TestAdditionKernel(t *testing.T) {
	// D(i,j) = (A(i,j) + B(i,j)) — union semantics.
	e := einsum.MustParse("D(i,j) = A(i,j) + B(i,j) | order: i,j")
	a := tensor.New(4, 4)
	a.Append([]int{0, 0}, 1)
	b := tensor.New(4, 4)
	b.Append([]int{3, 3}, 2)
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, map[string]int{"i": 2, "j": 2}),
		"B": tileFor(t, e, "B", b, map[string]int{"i": 2, "j": 2}),
	}
	res, err := Measure(e, tens, &Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.NNZ() != 2 {
		t.Fatalf("union output nnz = %d, want 2", res.Out.NNZ())
	}
	d := res.Out.ToDense()
	if d[0][0] != 1 || d[3][3] != 2 {
		t.Fatalf("addition values wrong: %v", d)
	}
}

func TestQuickGustavsonMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 16 + r.Intn(32)
		a := gen.UniformRandom(r, n, n, 4*n)
		b := gen.UniformRandom(r, n, n, 4*n)
		e := einsum.SpMSpMIKJ()
		ti := 1 << r.Intn(4)
		tiles := map[string]int{"i": ti, "k": 1 << r.Intn(4), "j": 1 << r.Intn(4)}
		refA, _ := e.Input("A")
		refB, _ := e.Input("B")
		ttA, err := tiling.New(a, []int{tiles["i"], tiles["k"]}, e.LevelOrder(refA))
		if err != nil {
			return false
		}
		ttB, err := tiling.New(b, []int{tiles["k"], tiles["j"]}, e.LevelOrder(refB))
		if err != nil {
			return false
		}
		res, err := Measure(e, map[string]*tiling.TiledTensor{"A": ttA, "B": ttB},
			&Options{CollectOutput: true})
		if err != nil {
			return false
		}
		ref, err := formats.MulGustavson(formats.MustBuildCSR(a), formats.MustBuildCSR(b))
		if err != nil {
			return false
		}
		return tensor.Equal(res.Out, ref.ToCOO())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTrafficInvariants: traffic is monotone in the sense that every
// input's traffic is at least its total data size when all tiles are live
// and fetched at least once, and tile iterations bound MAC-bearing pairs.
func TestQuickTrafficInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := gen.Banded(r, 64, 4, 4)
		at := a.Transpose()
		e := einsum.SpMSpMIKJ()
		refA, _ := e.Input("A")
		refB, _ := e.Input("B")
		ttA, _ := tiling.New(a, []int{8, 8}, e.LevelOrder(refA))
		ttB, _ := tiling.New(at, []int{8, 8}, e.LevelOrder(refB))
		res, err := Measure(e, map[string]*tiling.TiledTensor{"A": ttA, "B": ttB}, nil)
		if err != nil {
			return false
		}
		// A is fetched at most once per own tile (never more in ikj).
		if res.Input["A"] > int64(ttA.TotalFootprint) {
			return false
		}
		// B's traffic is at least one fetch of every tile that has a
		// matching A column (here: all of them, banded symmetric).
		if res.Input["B"] < int64(ttB.TotalFootprint) {
			return false
		}
		return res.Output > 0 && res.MACs > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestFusedAddMulKernel checks the full fused expression of the paper's
// §4.2.1 example, D(i,j) = (A(i,j) + B(i,j)) * C(i,j), against a dense
// oracle — exercising sum-of-products normalization, shared occurrences
// across summands and union/intersection co-iteration.
func TestFusedAddMulKernel(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	n := 24
	a := gen.UniformRandom(r, n, n, 60)
	bm := gen.UniformRandom(r, n, n, 60)
	cm := gen.UniformRandom(r, n, n, 120)
	e := einsum.MustParse("D(i,j) = (A(i,j) + B(i,j)) * C(i,j) | order: i,j")
	tiles := map[string]int{"i": 6, "j": 6}
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, tiles),
		"B": tileFor(t, e, "B", bm, tiles),
		"C": tileFor(t, e, "C", cm, tiles),
	}
	res, err := Measure(e, tens, &Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	da, db, dc := a.ToDense(), bm.ToDense(), cm.ToDense()
	oracle := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := (da[i][j] + db[i][j]) * dc[i][j]; v != 0 {
				oracle.Append([]int{i, j}, v)
			}
		}
	}
	if !tensor.AlmostEqual(res.Out, oracle, 1e-9) {
		t.Fatal("fused kernel output differs from dense oracle")
	}
	// Filtering: an A tile with no matching C tile must not be fetched.
	// (Soft check: A traffic is at most A's total footprint.)
	ttA := tens["A"]
	if res.Input["A"] > int64(ttA.TotalFootprint) {
		t.Fatalf("A over-fetched: %d > %d", res.Input["A"], ttA.TotalFootprint)
	}
}

// TestFusedFilteringSkips: in (A+B)*C, an A tile in a region where C is
// empty must not be fetched; an A tile must be fetched even where B is
// empty (addition is a union).
func TestFusedFilteringSkips(t *testing.T) {
	e := einsum.MustParse("D(i,j) = (A(i,j) + B(i,j)) * C(i,j) | order: i,j")
	a := tensor.New(4, 4)
	a.Append([]int{0, 0}, 1) // C present here
	a.Append([]int{3, 3}, 1) // C absent here
	bm := tensor.New(4, 4)
	bm.Append([]int{0, 1}, 5) // same tile as A's first entry
	cm := tensor.New(4, 4)
	cm.Append([]int{0, 0}, 2)
	cm.Append([]int{0, 1}, 3)
	tiles := map[string]int{"i": 2, "j": 2}
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, tiles),
		"B": tileFor(t, e, "B", bm, tiles),
		"C": tileFor(t, e, "C", cm, tiles),
	}
	res, err := Measure(e, tens, &Options{ValuesOnly: true, CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	// Only A's (0,0) tile is fetched (1 value); the (3,3) tile has no C.
	if res.Input["A"] != 1 {
		t.Fatalf("A traffic = %d, want 1", res.Input["A"])
	}
	// Result: D(0,0) = 1*2 = 2; D(0,1) = 5*3 = 15.
	d := res.Out.ToDense()
	if d[0][0] != 2 || d[0][1] != 15 {
		t.Fatalf("fused result wrong: %v", d)
	}
}

// TestSDDMMCorrectness validates the fused sampled matmul kernel against
// a dense oracle: E(i,j) = S(i,j) * Σ_k A(i,k)B(k,j). The mask S filters
// outer iterations: a (i',j') region with no mask entries must skip all
// A/B fetches below it.
func TestSDDMMCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	n := 24
	s := gen.UniformRandom(r, n, n, 40)
	a := gen.UniformRandom(r, n, n, 120)
	bm := gen.UniformRandom(r, n, n, 120)
	e := einsum.SDDMM()
	tiles := map[string]int{"i": 6, "j": 6, "k": 6}
	tens := map[string]*tiling.TiledTensor{
		"S": tileFor(t, e, "S", s, tiles),
		"A": tileFor(t, e, "A", a, tiles),
		"B": tileFor(t, e, "B", bm, tiles),
	}
	res, err := Measure(e, tens, &Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	ds, da, db := s.ToDense(), a.ToDense(), bm.ToDense()
	oracle := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if ds[i][j] == 0 {
				continue
			}
			acc := 0.0
			for k := 0; k < n; k++ {
				acc += da[i][k] * db[k][j]
			}
			if v := ds[i][j] * acc; v != 0 {
				oracle.Append([]int{i, j}, v)
			}
		}
	}
	if !tensor.AlmostEqual(res.Out, oracle, 1e-9) {
		t.Fatal("SDDMM output differs from dense oracle")
	}
}

// TestSDDMMMaskFiltering: with an empty mask, nothing at all is fetched.
func TestSDDMMMaskFiltering(t *testing.T) {
	e := einsum.SDDMM()
	s := tensor.New(8, 8)
	s.Append([]int{0, 0}, 1) // only one mask tile
	a := tensor.New(8, 8)
	a.Append([]int{0, 0}, 2)
	a.Append([]int{7, 7}, 3) // far from the mask: never fetched
	bm := tensor.New(8, 8)
	bm.Append([]int{0, 0}, 4)
	bm.Append([]int{7, 7}, 5)
	tiles := map[string]int{"i": 2, "j": 2, "k": 2}
	tens := map[string]*tiling.TiledTensor{
		"S": tileFor(t, e, "S", s, tiles),
		"A": tileFor(t, e, "A", a, tiles),
		"B": tileFor(t, e, "B", bm, tiles),
	}
	res, err := Measure(e, tens, &Options{ValuesOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Input["A"] != 1 || res.Input["B"] != 1 {
		t.Fatalf("mask filtering failed: A=%d B=%d, want 1/1", res.Input["A"], res.Input["B"])
	}
}

// TestOverflowAccounting exercises the Tailors-style overbooked buffer:
// tiles larger than the buffer pay extra streaming traffic and are
// counted in OverflowFetches.
func TestOverflowAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	a := gen.UniformRandom(r, 32, 32, 600) // dense-ish tiles
	e := einsum.SpMSpMIKJ()
	tiles := map[string]int{"i": 16, "k": 16, "j": 16}
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, tiles),
		"B": tileFor(t, e, "B", a.Transpose(), tiles),
	}
	plain, err := Measure(e, tens, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a buffer below the largest tile so overflows occur.
	maxTile := 0
	for _, tt := range tens {
		if tt.MaxFootprint > maxTile {
			maxTile = tt.MaxFootprint
		}
	}
	over, err := Measure(e, tens, &Options{InputBufferWords: maxTile / 2})
	if err != nil {
		t.Fatal(err)
	}
	if over.OverflowFetches == 0 {
		t.Fatal("no overflow fetches recorded")
	}
	if over.InputTotal() <= plain.InputTotal() {
		t.Fatalf("overflow did not add traffic: %d vs %d", over.InputTotal(), plain.InputTotal())
	}
	if plain.OverflowFetches != 0 {
		t.Fatal("overflow counted without a buffer bound")
	}
	// Larger penalty multiplies the excess.
	over2, err := Measure(e, tens, &Options{InputBufferWords: maxTile / 2, OverflowExtra: 3})
	if err != nil {
		t.Fatal(err)
	}
	if over2.InputTotal() <= over.InputTotal() {
		t.Fatal("OverflowExtra had no effect")
	}
}

// TestParallelMatchesSerial: the partitioned execution must produce
// byte-identical traffic counters and the same output tensor.
func TestParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	a := gen.PowerLawGraph(r, 256, 3000, 1.6)
	e := einsum.SpMSpMIKJ()
	tiles := map[string]int{"i": 16, "k": 16, "j": 16}
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, tiles),
		"B": tileFor(t, e, "B", a.Transpose(), tiles),
	}
	serial, err := Measure(e, tens, &Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Measure(e, tens, &Options{CollectOutput: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Input["A"] != parallel.Input["A"] || serial.Input["B"] != parallel.Input["B"] {
		t.Fatalf("input traffic differs: %v vs %v", serial.Input, parallel.Input)
	}
	if serial.Output != parallel.Output || serial.MACs != parallel.MACs ||
		serial.TileIterations != parallel.TileIterations ||
		serial.OutputWrites != parallel.OutputWrites {
		t.Fatalf("counters differ: %+v vs %+v", serial.Traffic, parallel.Traffic)
	}
	if !tensor.AlmostEqual(serial.Out, parallel.Out, 1e-12) {
		t.Fatal("outputs differ")
	}
}

// TestParallelIgnoredWhenUnsafe: a kernel whose output lacks the
// outermost index falls back to serial (still correct).
func TestParallelIgnoredWhenUnsafe(t *testing.T) {
	// Order k,i,j: output C(i,j) does not carry k (the outermost index).
	e := einsum.MustParse("C(i,j) = A(i,k) * B(k,j) | order: k,i,j")
	r := rand.New(rand.NewSource(16))
	a := gen.UniformRandom(r, 64, 64, 400)
	tiles := map[string]int{"i": 16, "k": 16, "j": 16}
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, tiles),
		"B": tileFor(t, e, "B", a.Transpose(), tiles),
	}
	serial, err := Measure(e, tens, &Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Measure(e, tens, &Options{CollectOutput: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AlmostEqual(serial.Out, par.Out, 1e-12) {
		t.Fatal("unsafe-parallel fallback broke correctness")
	}
}

// TestOutputOverflowStreaming: an output tile larger than the output
// buffer is streamed in chunks (extra writes + chunk overhead).
func TestOutputOverflowStreaming(t *testing.T) {
	dense := func() *tensor.COO {
		m := tensor.New(8, 8)
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				m.Append([]int{i, j}, 1)
			}
		}
		return m
	}
	e := einsum.SpMSpMIJK() // output stationary per (i',j'): big tiles
	tiles := map[string]int{"i": 8, "j": 8, "k": 8}
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", dense(), tiles),
		"B": tileFor(t, e, "B", dense(), tiles),
	}
	plain, err := Measure(e, tens, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.OutputOverflows != 0 {
		t.Fatal("overflow without a bound")
	}
	// The single 8x8 output tile (~147 words) against a 50-word buffer.
	over, err := Measure(e, tens, &Options{OutputBufferWords: 50})
	if err != nil {
		t.Fatal(err)
	}
	if over.OutputOverflows == 0 {
		t.Fatal("no output overflow recorded")
	}
	if over.Output <= plain.Output || over.OutputWrites <= plain.OutputWrites {
		t.Fatalf("overflow added no cost: %d/%d vs %d/%d",
			over.Output, over.OutputWrites, plain.Output, plain.OutputWrites)
	}
	// The value payload is unchanged — only chunking overhead is added.
	if over.OutputNNZ != plain.OutputNNZ {
		t.Fatal("overflow changed output nnz")
	}
}

// TestPackedTilesExecution: executing packed super-tiles must produce
// exactly the same output values as executing the retiled configuration
// (the packed directory only changes footprints, not semantics).
func TestPackedTilesExecution(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	a := gen.Banded(r, 128, 4, 6)
	e := einsum.SpMSpMIKJ()
	base := map[string]int{"i": 8, "k": 8, "j": 8}
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, base),
		"B": tileFor(t, e, "B", a.Transpose(), base),
	}
	// A(i,k) grows (4x, 2x); B(k,j) must grow its shared k by the same
	// 2x and j by 4x so the outer grids stay aligned.
	factors := map[string][]int{"A": {4, 2}, "B": {2, 4}}
	packed := make(map[string]*tiling.TiledTensor)
	for name, tt := range tens {
		p, err := tiling.PackTiles(tt, factors[name])
		if err != nil {
			t.Fatal(err)
		}
		packed[name] = p
	}
	want, err := Measure(e, map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, map[string]int{"i": 32, "k": 16, "j": 32}),
		"B": tileFor(t, e, "B", a.Transpose(), map[string]int{"i": 32, "k": 16, "j": 32}),
	}, &Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Measure(e, packed, &Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AlmostEqual(got.Out, want.Out, 1e-9) {
		t.Fatal("packed execution produced different values")
	}
	// Packed tiles carry directory overhead: traffic is at least the
	// retiled configuration's.
	if got.InputTotal() < want.InputTotal() {
		t.Fatalf("packed input traffic %d below retiled %d", got.InputTotal(), want.InputTotal())
	}
}

// TestTraceEvents: the trace facility emits one CSV line per fetch and
// write, totals matching the traffic counters.
func TestTraceEvents(t *testing.T) {
	a := tensor.New(4, 4)
	a.Append([]int{0, 0}, 1)
	a.Append([]int{2, 2}, 1)
	e := einsum.SpMSpMIKJ()
	tiles := map[string]int{"i": 2, "k": 2, "j": 2}
	tens := map[string]*tiling.TiledTensor{
		"A": tileFor(t, e, "A", a, tiles),
		"B": tileFor(t, e, "B", a.Transpose(), tiles),
	}
	var buf strings.Builder
	res, err := Measure(e, tens, &Options{Trace: &buf, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	fetches, writes := 0, 0
	var fetchWords, writeWords int64
	for _, line := range lines {
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			t.Fatalf("bad trace line %q", line)
		}
		w, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			t.Fatalf("bad words in %q", line)
		}
		switch parts[0] {
		case "fetch":
			fetches++
			fetchWords += w
		case "write":
			writes++
			writeWords += w
		default:
			t.Fatalf("unknown event %q", parts[0])
		}
	}
	if fetchWords != res.InputTotal() {
		t.Fatalf("trace fetch words %d != input traffic %d", fetchWords, res.InputTotal())
	}
	if writeWords != res.Output || int64(writes) != res.OutputWrites {
		t.Fatalf("trace writes %d/%d != output %d/%d", writes, writeWords, res.OutputWrites, res.Output)
	}
}
