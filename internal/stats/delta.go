package stats

import (
	"context"
	"fmt"

	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// DeltaReport summarizes how much work a delta application localized:
// how many base and micro tiles the delta touched (and were therefore
// re-summarized) out of the totals after the merge. The serve layer
// surfaces these so operators can see the re-collection that was
// avoided.
type DeltaReport struct {
	TouchedTiles int // base tiles re-summarized
	TotalTiles   int // base tiles after the merge
	TouchedMicro int // micro tiles re-summarized
	TotalMicro   int // micro tiles after the merge
}

// ApplyDelta is ApplyDeltaCtx with a background context.
func ApplyDelta(p *Partial, old, delta *tensor.COO, workers int) (*Partial, *DeltaReport, error) {
	return ApplyDeltaCtx(context.Background(), p, old, delta, workers)
}

// ApplyDeltaCtx folds a coordinate delta into an existing partial
// without re-collecting the base tensor: entry-granularity accumulators
// (histograms, sketches, corr multisets) merge additively from a
// delta-only gather, while the per-tile tables are re-summarized only
// for the base and micro tiles the delta touches and spliced over the
// old records. The result equals CollectPartialCtx on the concatenated
// tensor byte for byte (and so does its Finalize), at any worker count.
//
// old must be the Normalized (sorted, duplicate-free) tensor p was
// collected from, and delta must not collide with old's coordinates or
// its own — a collision would sum values under Dedup and invalidate the
// purely additive entry statistics. Intra-delta duplicates are detected
// here; collisions against old are the caller's contract (the Session
// merge-scans the sorted base before calling).
func ApplyDeltaCtx(ctx context.Context, p *Partial, old, delta *tensor.COO, workers int) (*Partial, *DeltaReport, error) {
	n := len(p.Dims)
	if old.Order() != n || delta.Order() != n {
		return nil, nil, fmt.Errorf("stats: delta arity: partial order %d, base %d, delta %d", n, old.Order(), delta.Order())
	}
	for a := 0; a < n; a++ {
		if old.Dims[a] != p.Dims[a] || delta.Dims[a] != p.Dims[a] {
			return nil, nil, fmt.Errorf("stats: delta dims: partial %v, base %v, delta %v", p.Dims, old.Dims, delta.Dims)
		}
	}
	if old.NNZ() != p.NNZ {
		return nil, nil, fmt.Errorf("stats: partial covers %d entries, base tensor has %d", p.NNZ, old.NNZ())
	}
	for a := 0; a < n; a++ {
		for pos := 0; pos < delta.NNZ(); pos++ {
			if c := delta.Crds[a][pos]; c < 0 || c >= p.Dims[a] {
				return nil, nil, fmt.Errorf("stats: delta entry %d: coordinate %d out of range on axis %d", pos, c, a)
			}
		}
	}
	if delta.NNZ() == 0 {
		return p, &DeltaReport{TotalTiles: len(p.TileKeys), TotalMicro: len(p.MicroKeys)}, nil
	}
	dd := delta.Clone()
	dd.Dedup()
	if dd.NNZ() != delta.NNZ() {
		return nil, nil, fmt.Errorf("stats: delta contains %d duplicate coordinates", delta.NNZ()-dd.NNZ())
	}

	// Entry-granularity accumulators are append-only: gather the delta
	// alone in the partial's exact frame and merge additively.
	dp, err := collectPartial(ctx, delta, paramsFromPartial(p), workers)
	if err != nil {
		return nil, nil, err
	}

	out := &Partial{
		Dims:             p.Dims,
		TileDims:         p.TileDims,
		Order:            p.Order,
		MicroDims:        p.MicroDims,
		CorrAxes:         p.CorrAxes,
		CorrMaxShift:     p.CorrMaxShift,
		CorrSampleTarget: p.CorrSampleTarget,
		TileCorrMaxShift: p.TileCorrMaxShift,
		SkipExtensions:   p.SkipExtensions,
		NNZ:              p.NNZ + delta.NNZ(),
	}
	if !p.SkipExtensions {
		out.ElemCounts = make([][]int32, n)
		out.Sketches = make([][]uint64, n)
		for ax := 0; ax < n; ax++ {
			cnt := make([]int32, len(p.ElemCounts[ax]))
			copy(cnt, p.ElemCounts[ax])
			for v, c := range dp.ElemCounts[ax] {
				cnt[v] += c
			}
			out.ElemCounts[ax] = cnt
			out.Sketches[ax] = mergeSortedBounded(p.Sketches[ax], dp.Sketches[ax], sketchSize)
		}
	}
	out.CorrOff = make([][]int32, len(p.CorrAxes))
	out.CorrRest = make([][]uint64, len(p.CorrAxes))
	for i := range p.CorrAxes {
		out.CorrOff[i], out.CorrRest[i] = mergeCorrAccum(p.CorrOff[i], p.CorrRest[i], dp.CorrOff[i], dp.CorrRest[i])
	}

	// Per-tile tables cannot merge additively — a touched tile's fiber
	// counts and footprint depend on the union of its entries — so the
	// touched tiles are re-summarized from (old entries in those tiles) +
	// delta and spliced over the old records. Touched base and micro key
	// sets are computed separately: micro tiles need not nest in base
	// tiles when TileDims is not a micro multiple.
	rep := &DeltaReport{}
	touchedT := touchedKeys(delta, p.TileDims)
	subT := filterPlus(old, p.TileDims, touchedT, delta)
	sumT, err := tiling.SummarizeCtx(ctx, subT, p.TileDims, p.Order, workers)
	if err != nil {
		return nil, nil, err
	}
	out.TileKeys, out.TileNNZ, out.TileFP, out.TileFibers =
		spliceTable(p.TileKeys, p.TileNNZ, p.TileFP, p.TileFibers, touchedT, sumT.Keys, sumT.NNZ, sumT.Footprint, sumT.Fibers)
	rep.TouchedTiles = len(sumT.Keys)
	rep.TotalTiles = len(out.TileKeys)

	touchedM := touchedKeys(delta, p.MicroDims)
	subM := filterPlus(old, p.MicroDims, touchedM, delta)
	sumM, err := tiling.SummarizeCtx(ctx, subM, p.MicroDims, p.Order, workers)
	if err != nil {
		return nil, nil, err
	}
	out.MicroKeys, out.MicroNNZ, out.MicroFP, _ =
		spliceTable(p.MicroKeys, p.MicroNNZ, p.MicroFP, nil, touchedM, sumM.Keys, sumM.NNZ, sumM.Footprint, nil)
	rep.TouchedMicro = len(sumM.Keys)
	rep.TotalMicro = len(out.MicroKeys)
	return out, rep, nil
}

// touchedKeys returns the set of tile keys (at the given grid) that hold
// at least one delta entry.
func touchedKeys(delta *tensor.COO, tileDims []int) map[uint64]struct{} {
	n := delta.Order()
	oc := make([]int, n)
	set := make(map[uint64]struct{})
	for pos := 0; pos < delta.NNZ(); pos++ {
		for a := 0; a < n; a++ {
			oc[a] = delta.Crds[a][pos] / tileDims[a]
		}
		set[tiling.Key(oc)] = struct{}{}
	}
	return set
}

// filterPlus builds the sub-tensor holding every old entry that falls in
// a touched tile, plus every delta entry (all of which do by
// construction) — exactly the touched tiles' entry population in the
// concatenated tensor.
func filterPlus(old *tensor.COO, tileDims []int, touched map[uint64]struct{}, delta *tensor.COO) *tensor.COO {
	n := old.Order()
	sub := tensor.New(old.Dims...)
	oc := make([]int, n)
	coord := make([]int, n)
	for pos := 0; pos < old.NNZ(); pos++ {
		for a := 0; a < n; a++ {
			oc[a] = old.Crds[a][pos] / tileDims[a]
		}
		if _, ok := touched[tiling.Key(oc)]; !ok {
			continue
		}
		for a := 0; a < n; a++ {
			coord[a] = old.Crds[a][pos]
		}
		sub.Append(coord, old.Vals[pos])
	}
	for pos := 0; pos < delta.NNZ(); pos++ {
		for a := 0; a < n; a++ {
			coord[a] = delta.Crds[a][pos]
		}
		sub.Append(coord, delta.Vals[pos])
	}
	return sub
}

// spliceTable replaces the touched keys' records in a key-ascending
// table with freshly summarized ones (whose key set is exactly the
// non-empty touched keys) and returns the merged table, still
// ascending. fibers is nil for micro tables.
func spliceTable(oldKeys []uint64, oldNNZ, oldFP []int32, oldFib [][]int32, touched map[uint64]struct{}, newKeys []uint64, newNNZ, newFP []int32, newFib [][]int32) ([]uint64, []int32, []int32, [][]int32) {
	total := len(oldKeys) + len(newKeys)
	keys := make([]uint64, 0, total)
	nnz := make([]int32, 0, total)
	fp := make([]int32, 0, total)
	var fib [][]int32
	if oldFib != nil {
		fib = make([][]int32, len(oldFib))
		back := make([]int32, len(oldFib)*total)
		for l := range fib {
			fib[l] = back[l*total : l*total : (l+1)*total]
		}
	}
	take := func(k []uint64, nz, f []int32, fbs [][]int32, i int) {
		keys = append(keys, k[i])
		nnz = append(nnz, nz[i])
		fp = append(fp, f[i])
		for l := range fib {
			fib[l] = append(fib[l], fbs[l][i])
		}
	}
	i, j := 0, 0
	for i < len(oldKeys) || j < len(newKeys) {
		if i < len(oldKeys) {
			if _, drop := touched[oldKeys[i]]; drop {
				i++
				continue
			}
		}
		switch {
		case j >= len(newKeys):
			take(oldKeys, oldNNZ, oldFP, oldFib, i)
			i++
		case i >= len(oldKeys) || newKeys[j] < oldKeys[i]:
			take(newKeys, newNNZ, newFP, newFib, j)
			j++
		default:
			take(oldKeys, oldNNZ, oldFP, oldFib, i)
			i++
		}
	}
	return keys, nnz, fp, fib
}
