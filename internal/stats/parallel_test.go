package stats

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"d2t2/internal/gen"
)

// TestCollectCtxCancellation checks that a dead context aborts
// collection before any reduction runs and that a live context is
// observationally identical to plain Collect.
func TestCollectCtxCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	m := gen.PowerLawGraph(r, 256, 4000, 1.5)
	opts := func() *Options { return &Options{MicroDiv: 4, Workers: 4} }

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if s, tt, err := CollectCtx(ctx, m, []int{32, 32}, []int{1, 0}, opts()); s != nil || tt != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want (nil, nil, context.Canceled), got (%v, %v, %v)", s, tt, err)
	}

	plain, _, err := Collect(m, []int{32, 32}, []int{1, 0}, opts())
	if err != nil {
		t.Fatal(err)
	}
	ctxed, _, err := CollectCtx(context.Background(), m, []int{32, 32}, []int{1, 0}, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxed) {
		t.Fatal("CollectCtx(Background) differs from Collect")
	}
}

// TestCollectWorkersDeterministic checks that every collected statistic
// — including the micro summary and the portable encoding tables — is
// identical at any worker count.
func TestCollectWorkersDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := gen.PowerLawGraph(r, 512, 8000, 1.6)
	base := Options{MicroDiv: 4}

	o1 := base
	o1.Workers = 1
	s1, _, err := Collect(m, []int{32, 32}, []int{1, 0}, &o1)
	if err != nil {
		t.Fatal(err)
	}
	o8 := base
	o8.Workers = 8
	s8, _, err := Collect(m, []int{32, 32}, []int{1, 0}, &o8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s8) {
		t.Fatal("stats differ between Workers=1 and Workers=8")
	}
	p1, p8 := s1.Portable(), s8.Portable()
	if !reflect.DeepEqual(p1, p8) {
		t.Fatal("portable stats differ between Workers=1 and Workers=8")
	}
}

// TestSketchMergeMatchesSerial pins the bottom-k merge invariant the
// chunked entry pass relies on: merging per-part sketches equals one
// serial pass over all hashes.
func TestSketchMergeMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	hashes := make([]uint64, 5000)
	for i := range hashes {
		hashes[i] = hash64(uint64(r.Int63()))
	}
	serial := newBottomK(sketchSize)
	for _, h := range hashes {
		serial.add(h)
	}
	parts := []*bottomK{newBottomK(sketchSize), newBottomK(sketchSize), newBottomK(sketchSize)}
	for i, h := range hashes {
		parts[i%3].add(h)
	}
	merged := newBottomK(sketchSize)
	// Merge in reverse order to exercise order independence too.
	for i := len(parts) - 1; i >= 0; i-- {
		merged.merge(parts[i])
	}
	if !reflect.DeepEqual(serial.values(), merged.values()) {
		t.Fatal("merged sketch differs from serial sketch")
	}
}
