package stats

import (
	"fmt"
	"math/rand"
	"testing"

	"d2t2/internal/gen"
	"d2t2/internal/tiling"
)

// BenchmarkCollectFromTiled measures the full statistics pass (including
// the micro-tile summary retiling) at several worker counts.
func BenchmarkCollectFromTiled(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	m := gen.PowerLawGraph(r, 2048, 200_000, 1.7)
	tt, err := tiling.New(m, []int{64, 64}, []int{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := CollectFromTiled(m, tt, &Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if s.NumTiles == 0 {
					b.Fatal("no tiles")
				}
			}
		})
	}
}
