package stats

import "sort"

// sketchSize is the bottom-k sketch capacity: 256 hashes estimate
// Jaccard similarity within a few percent, plenty for the binary
// correlated-vs-independent decision the model makes.
const sketchSize = 256

// bottomK keeps the k smallest hashes seen — a classic MinHash variant
// whose merge supports Jaccard estimation between sets.
type bottomK struct {
	k    int
	heap []uint64 // max-heap of the k smallest values
}

func newBottomK(k int) *bottomK { return &bottomK{k: k} }

func (b *bottomK) add(h uint64) {
	if len(b.heap) < b.k {
		b.heap = append(b.heap, h)
		b.up(len(b.heap) - 1)
		return
	}
	if h >= b.heap[0] {
		return
	}
	// Replace the current maximum.
	b.heap[0] = h
	b.down(0)
}

func (b *bottomK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if b.heap[parent] >= b.heap[i] {
			return
		}
		b.heap[parent], b.heap[i] = b.heap[i], b.heap[parent]
		i = parent
	}
}

func (b *bottomK) down(i int) {
	n := len(b.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && b.heap[l] > b.heap[largest] {
			largest = l
		}
		if r < n && b.heap[r] > b.heap[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		b.heap[i], b.heap[largest] = b.heap[largest], b.heap[i]
		i = largest
	}
}

// merge folds o's contents into b. The heap holds the k-smallest
// multiset of everything added, and the k-smallest of a union equals the
// k-smallest of the per-part k-smallest, so merging per-chunk sketches
// reproduces the serial single-pass sketch exactly in any order.
func (b *bottomK) merge(o *bottomK) {
	for _, h := range o.heap {
		b.add(h)
	}
}

// multiset returns the sketch's k-smallest multiset sorted ascending,
// duplicates retained — the mergeable accumulator form Partial carries.
// Merging two multisets and truncating to k reproduces the k-smallest of
// the union; deduplicating first would drop a duplicate hash that
// straddles two partials and break the monoid.
func (b *bottomK) multiset() []uint64 {
	out := append([]uint64(nil), b.heap...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// dedupSorted removes adjacent duplicates from a sorted slice in place —
// the final step turning a k-smallest multiset into the set form values
// returns and SketchJaccard consumes.
func dedupSorted(s []uint64) []uint64 {
	w := 0
	for i, v := range s {
		if i > 0 && v == s[w-1] {
			continue
		}
		s[w] = v
		w++
	}
	return s[:w]
}

// values returns the sketch contents sorted ascending (duplicates
// removed: the pair sets the sketch summarizes are sets).
func (b *bottomK) values() []uint64 {
	return dedupSorted(b.multiset())
}

// SketchJaccard estimates the Jaccard similarity of the sets two sorted
// bottom-k sketches summarize.
func SketchJaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	k := sketchSize
	if len(a) < k {
		k = len(a)
	}
	if len(b) < k {
		k = len(b)
	}
	// Merge the two sketches, keep the k smallest distinct values, count
	// how many appear in both.
	i, j, taken, both := 0, 0, 0, 0
	for taken < k && (i < len(a) || j < len(b)) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			i++
		case i >= len(a) || b[j] < a[i]:
			j++
		default:
			both++
			i++
			j++
		}
		taken++
	}
	return float64(both) / float64(taken)
}

// hash64 is splitmix64, a fast high-quality mixing function.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
