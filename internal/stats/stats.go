// Package stats implements the paper's Tile Statistics Collector (§4.3,
// §4.4): from a single conservative tiling pass it extracts the handful
// of statistics the probabilistic traffic model needs —
//
//	SizeTile   mean tile footprint (values + metadata words)
//	MaxTile    maximum tile footprint
//	PrTileIdx  per-outer-level conditional occupancy probabilities
//	ProbIndex  per-inner-level conditional fiber densities
//	Corrs      shift-correlation of coordinates along a contracted axis
//	TileCorrs  shift-correlation of outer-slice occupancy
//
// In addition the collector retains a micro-tile occupancy summary
// (tiles at 1/MicroDiv of the base tile per axis) so that occupancy
// statistics can be re-evaluated exactly at any candidate tile shape
// whose dimensions are multiples of the micro tile (see shape.go). The
// paper extrapolates base statistics analytically instead; we expose both
// paths and ablate them in experiment E-9.
package stats

import (
	"context"
	"fmt"
	"sync"

	"d2t2/internal/par"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// Options controls statistics collection. The zero value selects the
// defaults documented on each field.
type Options struct {
	// MicroDiv is the number of micro tiles per base tile along every
	// axis (default 8). Candidate tile shapes evaluated by EvalShape must
	// be multiples of baseTile/MicroDiv.
	MicroDiv int
	// CorrMaxShift bounds the shift range of Corrs in element units
	// (default 2× the base tile dimension of the axis).
	CorrMaxShift int
	// CorrSampleTarget is the approximate number of source positions
	// sampled per axis when computing Corrs (default 512; the paper
	// samples 1% of tiles).
	CorrSampleTarget int
	// TileCorrMaxShift bounds the shift range of TileCorrs in base-tile
	// units (default 64).
	TileCorrMaxShift int
	// CorrAxes lists the original axes for which Corrs is computed
	// (default: every axis).
	CorrAxes []int
	// SkipExtensions omits the statistics this implementation adds beyond
	// the paper (per-element histograms and pair sketches), leaving
	// exactly the paper's collection pass — used by the Fig. 7 overhead
	// measurement. The model falls back to mean-field paths where the
	// extension statistics are missing.
	SkipExtensions bool
	// Workers bounds the worker pool used to partition collection over
	// tile and entry ranges (0 = all cores). Every reduction is
	// order-independent, so the collected statistics are byte-identical
	// at any worker count.
	Workers int
}

func (o *Options) withDefaults() Options {
	out := Options{MicroDiv: 8, CorrSampleTarget: 512, TileCorrMaxShift: 64}
	if o != nil {
		if o.MicroDiv > 0 {
			out.MicroDiv = o.MicroDiv
		}
		if o.CorrMaxShift > 0 {
			out.CorrMaxShift = o.CorrMaxShift
		}
		if o.CorrSampleTarget > 0 {
			out.CorrSampleTarget = o.CorrSampleTarget
		}
		if o.TileCorrMaxShift > 0 {
			out.TileCorrMaxShift = o.TileCorrMaxShift
		}
		out.CorrAxes = o.CorrAxes
		out.SkipExtensions = o.SkipExtensions
		out.Workers = o.Workers
	}
	return out
}

// Stats holds everything the collector extracts for one tensor.
type Stats struct {
	Dims         []int // original dimension sizes
	BaseTileDims []int // the conservative tiling the stats were taken at
	Order        []int // CSF level order (axis per level)
	NNZ          int

	// Paper statistics (§4.3).
	SizeTile  float64
	MaxTile   int
	NumTiles  int
	PrTileIdx []float64 // per outer CSF level, conditional on parents
	ProbIndex []float64 // per inner CSF level, conditional on parents

	// Correlation proxies (§4.4), indexed by original axis.
	Corrs     map[int][]float64 // normalized to 1 at shift 0
	TileCorrs [][]float64       // per axis, conditional survival per tile shift

	// ElemCounts[a][v] is the number of stored entries with coordinate v
	// on axis a — the per-element slice histogram that powers the exact
	// partial-product (output) estimate for contractions (refine.go).
	ElemCounts [][]int32
	// PairSketch[a] is a bottom-k MinHash sketch of the tensor's
	// (coordinate on axis a, base-tile bucket of the remaining
	// coordinates) pairs. Comparing two operands' sketches on their
	// shared contracted axis estimates how aligned their structures are —
	// the signal that decides whether contraction collisions behave as
	// correlated (A×Aᵀ) or independent (A×random) in the output model.
	PairSketch [][]uint64

	// occupancy[a][i] reports whether outer slice i along axis a holds at
	// least one non-empty base tile.
	occupancy [][]bool

	micro *microSummary
}

// PTileBase returns the product of PrTileIdx over all outer levels: the
// estimated probability that a base tile is non-empty (Eq. 9).
func (s *Stats) PTileBase() float64 {
	p := 1.0
	for _, v := range s.PrTileIdx {
		p *= v
	}
	return p
}

// DensityBase returns the product of ProbIndex over all inner levels: the
// estimated probability that an element of a non-empty tile is non-zero
// (Eq. 10).
func (s *Stats) DensityBase() float64 {
	p := 1.0
	for _, v := range s.ProbIndex {
		p *= v
	}
	return p
}

// LevelOfAxis returns the CSF level that stores the given axis.
func (s *Stats) LevelOfAxis(axis int) int {
	for l, a := range s.Order {
		if a == axis {
			return l
		}
	}
	return -1
}

// Collect tiles t conservatively with baseTileDims (level order `order`,
// nil = natural), computes all statistics, and returns them together with
// the initial tiling for downstream reuse. This mirrors the toolchain of
// Figure 1: conservative tiling → statistics collection.
func Collect(t *tensor.COO, baseTileDims []int, order []int, opts *Options) (*Stats, *tiling.TiledTensor, error) {
	return CollectCtx(context.Background(), t, baseTileDims, order, opts)
}

// CollectCtx is Collect with cooperative cancellation: the tiling pass
// and every partitioned collection pass stop claiming work once ctx is
// cancelled, and the context's error is returned. A never-cancelled ctx
// yields exactly Collect's byte-identical statistics.
func CollectCtx(ctx context.Context, t *tensor.COO, baseTileDims []int, order []int, opts *Options) (*Stats, *tiling.TiledTensor, error) {
	o := opts.withDefaults()
	tt, err := tiling.NewCtx(ctx, t, baseTileDims, order, o.Workers)
	if err != nil {
		return nil, nil, err
	}
	s, err := CollectFromTiledCtx(ctx, t, tt, &o)
	if err != nil {
		return nil, nil, err
	}
	return s, tt, nil
}

// CollectFromTiled computes statistics given an existing conservative
// tiling of t. The raw tensor is needed for the micro-tile summary and
// the element-granularity Corrs.
func CollectFromTiled(t *tensor.COO, tt *tiling.TiledTensor, opts *Options) (*Stats, error) {
	return CollectFromTiledCtx(context.Background(), t, tt, opts)
}

// CollectFromTiledCtx is CollectFromTiled with cooperative cancellation
// (see CollectCtx).
func CollectFromTiledCtx(ctx context.Context, t *tensor.COO, tt *tiling.TiledTensor, opts *Options) (*Stats, error) {
	o := opts.withDefaults()
	n := len(tt.Dims)
	s := &Stats{
		Dims:         append([]int(nil), tt.Dims...),
		BaseTileDims: append([]int(nil), tt.TileDims...),
		Order:        append([]int(nil), tt.Order...),
		NNZ:          tt.NNZ,
		SizeTile:     tt.MeanFootprint(),
		MaxTile:      tt.MaxFootprint,
		NumTiles:     tt.NumTiles(),
		Corrs:        make(map[int][]float64),
	}

	// PrTileIdx: level-conditional occupancy from the outer CSF.
	oc := tt.OuterCSF
	s.PrTileIdx = make([]float64, n)
	for l := 0; l < n; l++ {
		ax := tt.Order[l]
		dim := tt.OuterDims[ax]
		parents := 1
		if l > 0 {
			parents = oc.FiberCount(l - 1)
		}
		if parents == 0 || dim == 0 {
			s.PrTileIdx[l] = 0
			continue
		}
		s.PrTileIdx[l] = float64(oc.FiberCount(l)) / (float64(parents) * float64(dim))
	}

	// Snapshot the tiles into a slice for range partitioning. The map
	// iteration order varies run to run, but every per-tile reduction
	// below is a commutative integer sum or boolean OR, so the collected
	// statistics do not depend on it (or on the worker count).
	tilesArr := make([]*tiling.Tile, 0, len(tt.Tiles))
	for _, tile := range tt.Tiles {
		tilesArr = append(tilesArr, tile)
	}
	tileChunks := par.Chunks(o.Workers, len(tilesArr))

	// One parallel pass over tile ranges: per-level fiber totals (for
	// ProbIndex) and outer-slice occupancy. Each worker accumulates into
	// one lazily-created scratch aggregate across every chunk it claims
	// (per-worker arenas, not per-chunk allocations); the scratches are
	// registered under a mutex and merged afterwards. Registration order
	// varies run to run, but the merge is a commutative integer sum and
	// boolean OR, so the result is byte-identical at any worker count.
	type tileAgg struct {
		fibers []int
		occ    [][]bool
	}
	var tmu sync.Mutex
	var taggs []*tileAgg
	newTileAgg := func() *tileAgg {
		a := &tileAgg{fibers: make([]int, n), occ: make([][]bool, n)}
		for ax := 0; ax < n; ax++ {
			a.occ[ax] = make([]bool, tt.OuterDims[ax])
		}
		tmu.Lock()
		taggs = append(taggs, a)
		tmu.Unlock()
		return a
	}
	if err := par.ForEachScratchCtx(ctx, o.Workers, len(tileChunks), newTileAgg, func(c int, a *tileAgg) error {
		for _, tile := range tilesArr[tileChunks[c][0]:tileChunks[c][1]] {
			for l := 0; l < n; l++ {
				a.fibers[l] += tile.CSF.FiberCount(l)
			}
			for ax, crd := range tile.Outer {
				a.occ[ax][crd] = true
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	fiberTotals := make([]int, n)
	s.occupancy = make([][]bool, n)
	for ax := 0; ax < n; ax++ {
		s.occupancy[ax] = make([]bool, tt.OuterDims[ax])
	}
	for _, a := range taggs {
		for l, v := range a.fibers {
			fiberTotals[l] += v
		}
		for ax := range a.occ {
			for i, b := range a.occ[ax] {
				if b {
					s.occupancy[ax][i] = true
				}
			}
		}
	}

	// ProbIndex: level-conditional fiber densities aggregated over tiles.
	s.ProbIndex = make([]float64, n)
	for l := 0; l < n; l++ {
		ax := tt.Order[l]
		parents := len(tt.Tiles)
		if l > 0 {
			parents = fiberTotals[l-1]
		}
		if parents == 0 {
			s.ProbIndex[l] = 0
			continue
		}
		s.ProbIndex[l] = float64(fiberTotals[l]) / (float64(parents) * float64(tt.TileDims[ax]))
	}

	// Per-element slice histograms and pair sketches (one pass over the
	// raw entries, partitioned into disjoint entry ranges) — extension
	// statistics beyond the paper's collector. Per-chunk histograms sum
	// elementwise; per-chunk bottom-k sketches merge into the k-smallest
	// multiset of all hashes, so both match the serial pass exactly.
	if !o.SkipExtensions {
		entryChunks := par.Chunks(o.Workers, t.NNZ())
		type entryAgg struct {
			counts   [][]int32
			sketches []*bottomK
		}
		var emu sync.Mutex
		var eaggs []*entryAgg
		newEntryAgg := func() *entryAgg {
			ea := &entryAgg{counts: make([][]int32, n), sketches: make([]*bottomK, n)}
			for a := 0; a < n; a++ {
				ea.counts[a] = make([]int32, t.Dims[a])
				ea.sketches[a] = newBottomK(sketchSize)
			}
			emu.Lock()
			eaggs = append(eaggs, ea)
			emu.Unlock()
			return ea
		}
		// Same per-worker scratch discipline as the tile pass: histograms
		// sum elementwise and bottom-k sketches merge into the k-smallest
		// multiset, both order-independent, so accumulating across whichever
		// chunks a worker happens to claim matches the serial pass exactly.
		if err := par.ForEachScratchCtx(ctx, o.Workers, len(entryChunks), newEntryAgg, func(c int, ea *entryAgg) error {
			for p := entryChunks[c][0]; p < entryChunks[c][1]; p++ {
				for a := 0; a < n; a++ {
					ea.counts[a][t.Crds[a][p]]++
					// Pair key: axis coordinate × coarse bucket of the rest.
					var rest uint64
					for b := 0; b < n; b++ {
						if b == a {
							continue
						}
						bucket := t.Crds[b][p] / tt.TileDims[b]
						rest = rest*uint64(tt.OuterDims[b]+1) + uint64(bucket)
					}
					ea.sketches[a].add(hash64(uint64(t.Crds[a][p])<<26 ^ rest))
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		s.ElemCounts = make([][]int32, n)
		sketches := make([]*bottomK, n)
		for a := 0; a < n; a++ {
			s.ElemCounts[a] = make([]int32, t.Dims[a])
			sketches[a] = newBottomK(sketchSize)
		}
		for _, ea := range eaggs {
			for a := 0; a < n; a++ {
				for v, c := range ea.counts[a] {
					s.ElemCounts[a][v] += c
				}
				sketches[a].merge(ea.sketches[a])
			}
		}
		s.PairSketch = make([][]uint64, n)
		for a := 0; a < n; a++ {
			s.PairSketch[a] = sketches[a].values()
		}
	}

	// TileCorrs per axis (occupancy was reduced above; read-only here).
	s.TileCorrs = make([][]float64, n)
	if err := par.ForEachCtx(ctx, o.Workers, n, func(a int) error {
		s.TileCorrs[a] = tileCorrs(s.occupancy[a], o.TileCorrMaxShift)
		return nil
	}); err != nil {
		return nil, err
	}

	// Element-granularity Corrs along the requested axes, one worker per
	// axis (each axis reads the raw tensor independently and the result
	// lands in its own slot).
	axes := o.CorrAxes
	if axes == nil {
		axes = make([]int, n)
		for a := range axes {
			axes[a] = a
		}
	}
	for _, ax := range axes {
		if ax < 0 || ax >= n {
			return nil, fmt.Errorf("stats: corr axis %d out of range", ax)
		}
	}
	corrs, err := par.MapCtx(ctx, o.Workers, len(axes), func(i int) ([]float64, error) {
		ax := axes[i]
		maxShift := o.CorrMaxShift
		if maxShift == 0 {
			maxShift = 2 * tt.TileDims[ax]
		}
		return corrsAxis(t, ax, maxShift, o.CorrSampleTarget), nil
	})
	if err != nil {
		return nil, err
	}
	for i, ax := range axes {
		s.Corrs[ax] = corrs[i]
	}

	// Micro-tile occupancy summary for exact shape re-evaluation.
	micro, err := buildMicroSummary(ctx, t, tt, o.MicroDiv, o.Workers)
	if err != nil {
		return nil, err
	}
	s.micro = micro
	return s, nil
}

// CorrSum returns Σ_{s=0}^{limit} Corrs(axis, s), the output-reuse proxy
// the optimizer thresholds on (Fig. 8) and the model divides by (Eq. 20).
// Shifts beyond the computed range are extrapolated with the mean of the
// final quarter of the curve.
func (s *Stats) CorrSum(axis, limit int) float64 {
	c := s.Corrs[axis]
	if len(c) == 0 {
		return 1
	}
	sum := 0.0
	for sft := 0; sft <= limit && sft < len(c); sft++ {
		sum += c[sft]
	}
	if limit >= len(c) {
		// Extrapolate the tail with a geometric decay fitted from the
		// last two quarters of the computed curve: correlations fall off
		// past the structure's bandwidth, so persisting the edge value
		// across thousands of shifts would wildly overestimate reuse.
		q := len(c) / 4
		if q == 0 {
			q = 1
		}
		last, prev := 0.0, 0.0
		for i := len(c) - q; i < len(c); i++ {
			last += c[i]
		}
		for i := len(c) - 2*q; i < len(c)-q && i >= 0; i++ {
			prev += c[i]
		}
		last /= float64(q)
		rho := 0.5
		if prev > 0 {
			rho = last * float64(q) / prev / float64(q)
			if rho > 0.99 {
				rho = 0.99
			}
			if rho < 0 {
				rho = 0
			}
		}
		// Remaining shifts decay geometrically per quarter-block:
		// Σ_{b>=1} last·q·rho^b, truncated at the remaining length.
		remaining := float64(limit - len(c) + 1)
		blocks := remaining / float64(q)
		tailSum := 0.0
		weight := 1.0
		for b := 0.0; b < blocks && weight > 1e-6; b++ {
			weight *= rho
			span := float64(q)
			if rem := remaining - b*float64(q); rem < span {
				span = rem
			}
			tailSum += last * weight * span
		}
		sum += tailSum
	}
	if sum < 1 {
		sum = 1
	}
	return sum
}

// EOuterMerged implements Eq. 18: the effective number of outer-index
// iterations along axis when `factor` adjacent base tiles are merged,
// estimated from TileCorrs. factor 1 returns the occupied base count.
func (s *Stats) EOuterMerged(axis, factor int) float64 {
	occ := 0
	for _, b := range s.occupancy[axis] {
		if b {
			occ++
		}
	}
	if factor <= 1 || occ == 0 {
		return float64(occ)
	}
	tc := s.TileCorrs[axis]
	den := 0.0
	for sft := 0; sft < factor; sft++ {
		if sft < len(tc) {
			den += tc[sft]
		} else if len(tc) > 0 {
			den += tc[len(tc)-1]
		}
	}
	if den < 1 {
		den = 1
	}
	e := float64(occ) / den
	if e < 1 {
		e = 1
	}
	return e
}

// EOuterExact returns the exact number of occupied merged slices along
// axis when base tiles are merged in groups of `factor` — what Eq. 18
// approximates. Used to validate the approximation.
func (s *Stats) EOuterExact(axis, factor int) int {
	if factor < 1 {
		factor = 1
	}
	seen := make(map[int]bool)
	for i, b := range s.occupancy[axis] {
		if b {
			seen[i/factor] = true
		}
	}
	return len(seen)
}

// OccupiedBase returns the number of occupied base-granularity outer
// slices along axis.
func (s *Stats) OccupiedBase(axis int) int {
	n := 0
	for _, b := range s.occupancy[axis] {
		if b {
			n++
		}
	}
	return n
}
