package stats

import (
	"context"
	"fmt"
	"sort"

	"d2t2/internal/checked"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// microSummary is a compact occupancy map of the tensor at micro-tile
// granularity (base tile / MicroDiv per axis). It is what lets the model
// re-evaluate occupancy statistics exactly at any candidate tile shape
// whose dimensions are micro multiples, instead of assuming P_tile stays
// constant across shapes.
type microSummary struct {
	dims      []int // original dims
	microDims []int // micro tile size per axis
	outerDims []int // micro grid extent per axis
	keys      []uint64
	nnz       []int32
	footprint []int32
	// fpScale calibrates the Σ-of-member-footprints estimate: merging
	// micro CSFs shares upper-level metadata, so the sum overestimates a
	// retiled CSF's footprint. The scale is fit once against the exact
	// base tiling and applied to every candidate shape.
	fpScale float64
}

func buildMicroSummary(ctx context.Context, t *tensor.COO, tt *tiling.TiledTensor, microDiv, workers int) (*microSummary, error) {
	if microDiv < 1 {
		microDiv = 1
	}
	md := make([]int, len(tt.TileDims))
	for a, td := range tt.TileDims {
		md[a] = td / microDiv
		if md[a] < 1 {
			md[a] = 1
		}
	}
	ms := &microSummary{
		dims:      append([]int(nil), t.Dims...),
		microDims: md,
	}
	// Keys are stored in ascending order. The consumers aggregate the
	// micro entries order-insensitively (integer sums, maxima, set
	// counts), but the Portable encoding serializes this table verbatim —
	// a canonical order keeps the portable bytes byte-identical across
	// runs and worker counts.
	estBase := 0
	if microDiv == 1 {
		// Fast path: at micro = base the existing tiling IS the summary; no
		// second tiling pass is needed (this keeps MicroDiv=1 collection at
		// CSF-traversal cost, the regime of the paper's Fig. 7 overheads).
		ms.outerDims = append([]int(nil), tt.OuterDims...)
		ms.keys = make([]uint64, 0, len(tt.Tiles))
		for k := range tt.Tiles {
			ms.keys = append(ms.keys, k)
		}
		sort.Slice(ms.keys, func(i, j int) bool { return ms.keys[i] < ms.keys[j] })
		ms.nnz = make([]int32, len(ms.keys))
		ms.footprint = make([]int32, len(ms.keys))
		for i, k := range ms.keys {
			tile := tt.Tiles[k]
			ms.nnz[i] = checked.Int32(tile.NNZ())
			ms.footprint[i] = checked.Int32(tile.Footprint)
			estBase += tile.Footprint
		}
	} else {
		// The micro pass only needs per-tile entry counts and footprints,
		// so it runs the tiler's summary mode: same radix group-by, same
		// footprint words, no short-lived CSF per micro tile. The keys come
		// back sorted ascending already.
		sum, err := tiling.SummarizeCtx(ctx, t, md, tt.Order, workers)
		if err != nil {
			return nil, err
		}
		ms.outerDims = sum.OuterDims
		ms.keys = sum.Keys
		ms.nnz = sum.NNZ
		ms.footprint = sum.Footprint
		estBase = sum.TotalFootprint
	}

	// Fit the footprint calibration at the base shape, where the exact
	// retiled footprint is known from the initial tiling.
	ms.fpScale = 1
	if estBase > 0 && tt.TotalFootprint > 0 {
		ms.fpScale = float64(tt.TotalFootprint) / float64(estBase)
	}
	return ms, nil
}

// ShapeStats summarizes the tensor's occupancy under one candidate tile
// shape, evaluated exactly from the micro summary.
type ShapeStats struct {
	TileDims  []int
	OuterDims []int
	NumTiles  int       // non-empty tiles
	PTile     float64   // NumTiles / Π OuterDims
	Marginal  []float64 // per axis: occupied slice fraction
	Occupied  []int     // per axis: occupied slice count
	SizeTile  float64   // mean footprint words over non-empty tiles
	MaxTile   int
	// MaxTileBound is the uncalibrated sum of member micro-tile
	// footprints for the largest tile: a true upper bound on the retiled
	// CSF footprint (member boundaries align, so merging only shares
	// metadata). Fit guarantees must use this, not MaxTile.
	MaxTileBound int
	MeanNNZ      float64 // mean nnz per non-empty tile
	Density      float64 // MeanNNZ / tile area
	// PrefixOccupied[l] is the number of distinct outer coordinate
	// prefixes over levels 0..l (in the tensor's level order). The last
	// entry equals NumTiles. PrefixOccupied[l] / Π_{m<=l} OuterDims gives
	// the probability that a partially-bound subtree is non-empty — the
	// marginalized "∃ rest" terms of the traffic model (Eq. 5/14/15).
	PrefixOccupied []int
	// Order is the level order the prefixes follow (axis per level).
	Order []int
	// GroupOuter/GroupFP enumerate every non-empty tile at this shape:
	// outer coordinates in axis order and the calibrated footprint. They
	// power the model's exact cross-operand refinement (DESIGN.md §4).
	GroupOuter [][]int32
	GroupFP    []float64
	// FPScale is the calibration factor already applied to GroupFP,
	// SizeTile and MaxTile (1 when uncalibrated). GroupFP[i]/FPScale
	// recovers tile i's uncalibrated member-sum — like MaxTileBound, a
	// true upper bound on the retiled CSF footprint. The overflow
	// methods divide the calibration back out so risk admission never
	// under-predicts (the calibrated estimate can sit below a tile's
	// real footprint at shapes far from the statistics frame).
	FPScale float64
}

// PPrefix returns the probability that a subtree bound at levels 0..l is
// non-empty: PrefixOccupied[l] / Π_{m<=l} N_m.
func (sh *ShapeStats) PPrefix(l int) float64 {
	if l < 0 {
		return 1
	}
	dom := 1.0
	for m := 0; m <= l; m++ {
		dom *= float64(sh.OuterDims[sh.Order[m]])
	}
	if dom == 0 {
		return 0
	}
	return float64(sh.PrefixOccupied[l]) / dom
}

// boundScale returns the factor dividing GroupFP back to the
// uncalibrated member-sum bound (1 when never calibrated).
func (sh *ShapeStats) boundScale() float64 {
	if sh.FPScale > 0 {
		return sh.FPScale
	}
	return 1
}

// OverflowQuantile returns the smallest tile-footprint bound f (words)
// such that at most an `overflow` fraction of the non-empty tiles
// exceed f — the percentile that replaces MaxTile in the risk-aware
// Eq. 22 seed (Tailors-style overbooking). Footprints are the
// uncalibrated member-sum bounds (see FPScale), so a buffer sized to
// the quantile truly holds all but the allowed fraction of tiles.
// overflow = 0 returns the maximum (= MaxTileBound); a tensor with no
// tiles returns 0. The computation sorts a copy of GroupFP, so it is
// deterministic for a given shape.
func (sh *ShapeStats) OverflowQuantile(overflow float64) float64 {
	n := len(sh.GroupFP)
	if n == 0 {
		return 0
	}
	if overflow <= 0 {
		m := sh.GroupFP[0]
		for _, fp := range sh.GroupFP[1:] {
			if fp > m {
				m = fp
			}
		}
		return m / sh.boundScale()
	}
	sorted := append([]float64(nil), sh.GroupFP...)
	sort.Float64s(sorted)
	// `allow` tiles may exceed the returned footprint.
	allow := int(overflow * float64(n))
	if allow >= n {
		allow = n - 1
	}
	return sorted[n-1-allow] / sh.boundScale()
}

// OverflowStats returns the fraction of non-empty tiles whose footprint
// bound exceeds the buffer budget and their summed excess words — the
// model-side counterpart of exec's OverflowFetches accounting. Like
// OverflowQuantile it uses the uncalibrated member-sum bounds, so the
// rate never under-predicts the machine's per-tile overflow fraction.
// The excess accumulates in GroupFP's canonical tile-key order, so the
// float sum is deterministic.
func (sh *ShapeStats) OverflowStats(budgetWords float64) (rate, excessWords float64) {
	n := len(sh.GroupFP)
	if n == 0 {
		return 0, 0
	}
	scale := sh.boundScale()
	scaledBudget := budgetWords * scale
	over := 0
	for _, fp := range sh.GroupFP {
		if fp > scaledBudget {
			over++
			excessWords += fp - scaledBudget
		}
	}
	return float64(over) / float64(n), excessWords / scale
}

// EvalShape aggregates the micro summary into tiles of the given
// per-axis dimensions, which must be positive multiples of the micro tile
// dimensions. Footprints are summed over members, a slight overestimate
// of a retiled CSF's footprint (shared upper-level metadata), consistent
// across candidates.
func (s *Stats) EvalShape(tileDims []int) (*ShapeStats, error) {
	ms := s.micro
	if ms == nil {
		return nil, fmt.Errorf("stats: no micro summary collected")
	}
	n := len(ms.dims)
	if len(tileDims) != n {
		return nil, fmt.Errorf("stats: %d tile dims for order-%d tensor", len(tileDims), n)
	}
	factors := make([]int, n)
	for a, td := range tileDims {
		if td < 1 {
			return nil, fmt.Errorf("stats: tile dim %d on axis %d", td, a)
		}
		if td%ms.microDims[a] != 0 {
			return nil, fmt.Errorf("stats: tile dim %d on axis %d is not a multiple of micro dim %d",
				td, a, ms.microDims[a])
		}
		factors[a] = td / ms.microDims[a]
	}

	out := &ShapeStats{
		TileDims:  append([]int(nil), tileDims...),
		OuterDims: make([]int, n),
		Marginal:  make([]float64, n),
		Occupied:  make([]int, n),
	}
	area := 1.0
	for a := range out.OuterDims {
		out.OuterDims[a] = (ms.dims[a] + tileDims[a] - 1) / tileDims[a]
		area *= float64(tileDims[a])
	}

	// Aggregation state is laid out flat — an index map into an []agg
	// slice, []bool occupancy per axis over one backing array, and prefix
	// sets only for the middle levels (the first level's prefix count is
	// the axis occupancy of Order[0]; the last level's is NumTiles, both
	// free) — so the per-micro-key loop below allocates nothing. This is
	// the optimizer's hottest loop: EvalShape runs per (ref, candidate
	// shape) and ms.keys is the full micro-tile population.
	type agg struct {
		nnz, fp int
	}
	gid := make(map[uint64]int32, len(ms.keys)/2+1)
	aggs := make([]agg, 0, len(ms.keys)/2+1)
	gkeys := make([]uint64, 0, len(ms.keys)/2+1)
	occTotal := 0
	for a := 0; a < n; a++ {
		occTotal += out.OuterDims[a]
	}
	occBack := make([]bool, occTotal)
	axisOcc := make([][]bool, n)
	for a, off := 0, 0; a < n; a++ {
		axisOcc[a] = occBack[off : off+out.OuterDims[a] : off+out.OuterDims[a]]
		off += out.OuterDims[a]
	}
	var prefixOcc []map[uint64]struct{}
	if n > 2 {
		prefixOcc = make([]map[uint64]struct{}, n)
		for l := 1; l < n-1; l++ {
			prefixOcc[l] = make(map[uint64]struct{})
		}
	}
	mc := make([]int, n)
	oc := make([]int, n)
	for idx, k := range ms.keys {
		tiling.UnkeyInto(mc, k)
		for a := range oc {
			oc[a] = mc[a] / factors[a]
			axisOcc[a][oc[a]] = true
		}
		if n > 2 {
			pk := uint64(oc[s.Order[0]])
			for l := 1; l < n-1; l++ {
				pk = pk<<21 | uint64(oc[s.Order[l]])
				prefixOcc[l][pk] = struct{}{}
			}
		}
		gk := tiling.Key(oc)
		g, ok := gid[gk]
		if !ok {
			g = checked.Int32(len(aggs))
			gid[gk] = g
			aggs = append(aggs, agg{})
			gkeys = append(gkeys, gk)
		}
		aggs[g].nnz += int(ms.nnz[idx])
		aggs[g].fp += int(ms.footprint[idx])
	}
	out.Order = append([]int(nil), s.Order...)
	out.PrefixOccupied = make([]int, n)
	for a := 0; a < n; a++ {
		cnt := 0
		for _, b := range axisOcc[a] {
			if b {
				cnt++
			}
		}
		out.Occupied[a] = cnt
	}
	// The level-0 prefix is just the first level's axis coordinate and the
	// full prefix is the whole outer coordinate, so both counts come from
	// state already built; only middle levels (order ≥ 3) need real sets.
	if n > 0 {
		out.PrefixOccupied[0] = out.Occupied[s.Order[0]]
		out.PrefixOccupied[n-1] = len(aggs)
	}
	for l := 1; l < n-1; l++ {
		out.PrefixOccupied[l] = len(prefixOcc[l])
	}

	out.NumTiles = len(aggs)
	out.FPScale = ms.fpScale
	totalFP, totalNNZ := 0, 0
	// Sort the groups by key through a permutation so the enumeration
	// below is canonical regardless of first-appearance order.
	perm := make([]int, len(gkeys))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(x, y int) bool { return gkeys[perm[x]] < gkeys[perm[y]] })
	out.GroupOuter = make([][]int32, 0, len(aggs))
	out.GroupFP = make([]float64, 0, len(aggs))
	ocBack := make([]int32, n*len(aggs))
	for gi, pi := range perm {
		g := aggs[pi]
		totalFP += g.fp
		totalNNZ += g.nnz
		if g.fp > out.MaxTile {
			out.MaxTile = g.fp
		}
		tiling.UnkeyInto(mc, gkeys[pi])
		oc32 := ocBack[gi*n : (gi+1)*n : (gi+1)*n]
		for a, v := range mc {
			oc32[a] = checked.Int32(v)
		}
		out.GroupOuter = append(out.GroupOuter, oc32)
		out.GroupFP = append(out.GroupFP, float64(g.fp))
	}
	if out.NumTiles > 0 {
		out.MaxTileBound = out.MaxTile
		out.SizeTile = ms.fpScale * float64(totalFP) / float64(out.NumTiles)
		out.MaxTile = int(ms.fpScale * float64(out.MaxTile))
		out.MeanNNZ = float64(totalNNZ) / float64(out.NumTiles)
		out.Density = out.MeanNNZ / area
		for i := range out.GroupFP {
			out.GroupFP[i] *= ms.fpScale
		}
	}
	domain := 1.0
	for _, d := range out.OuterDims {
		domain *= float64(d)
	}
	if domain > 0 {
		out.PTile = float64(out.NumTiles) / domain
	}
	for a := 0; a < n; a++ {
		if out.OuterDims[a] > 0 {
			out.Marginal[a] = float64(out.Occupied[a]) / float64(out.OuterDims[a])
		}
	}
	return out, nil
}

// MicroDims returns the micro tile dimensions candidate shapes must be
// multiples of.
func (s *Stats) MicroDims() []int {
	if s.micro == nil {
		return nil
	}
	return append([]int(nil), s.micro.microDims...)
}

// SnapToMicro rounds each tile dimension to the nearest positive multiple
// of the micro dimension, clamped to the tensor dimension rounded up to a
// micro multiple.
func (s *Stats) SnapToMicro(tileDims []int) []int {
	return s.SnapToMicroInto(make([]int, len(tileDims)), tileDims)
}

// SnapToMicroInto is SnapToMicro writing into dst (which must have
// len(tileDims) and may alias tileDims for in-place snapping). It returns
// dst. This is the allocation-free variant the model's snapping hot path
// uses.
func (s *Stats) SnapToMicroInto(dst, tileDims []int) []int {
	out := dst
	for a, td := range tileDims {
		m := s.micro.microDims[a]
		q := (td + m/2) / m
		if q < 1 {
			q = 1
		}
		maxQ := (s.Dims[a] + m - 1) / m
		if q > maxQ {
			q = maxQ
		}
		out[a] = q * m
	}
	return out
}
