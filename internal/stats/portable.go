package stats

import "fmt"

// Portable is the fully-exported flattened view of Stats, including the
// unexported occupancy map and micro-tile summary. It exists for codecs:
// the snapshot package serializes a Portable and reconstructs the Stats
// with FromPortable. The view aliases the Stats' backing arrays — it is
// a read-only window, not a deep copy.
type Portable struct {
	Dims         []int
	BaseTileDims []int
	Order        []int
	NNZ          int

	SizeTile float64
	MaxTile  int
	NumTiles int

	PrTileIdx []float64
	ProbIndex []float64

	Corrs     map[int][]float64
	TileCorrs [][]float64

	ElemCounts [][]int32
	PairSketch [][]uint64

	Occupancy [][]bool
	Micro     *PortableMicro
}

// PortableMicro is the exported view of the micro-tile occupancy summary.
type PortableMicro struct {
	Dims      []int
	MicroDims []int
	OuterDims []int
	Keys      []uint64
	NNZ       []int32
	Footprint []int32
	FPScale   float64
}

// Portable returns the codec view of the statistics bundle.
func (s *Stats) Portable() *Portable {
	p := &Portable{
		Dims:         s.Dims,
		BaseTileDims: s.BaseTileDims,
		Order:        s.Order,
		NNZ:          s.NNZ,
		SizeTile:     s.SizeTile,
		MaxTile:      s.MaxTile,
		NumTiles:     s.NumTiles,
		PrTileIdx:    s.PrTileIdx,
		ProbIndex:    s.ProbIndex,
		Corrs:        s.Corrs,
		TileCorrs:    s.TileCorrs,
		ElemCounts:   s.ElemCounts,
		PairSketch:   s.PairSketch,
		Occupancy:    s.occupancy,
	}
	if s.micro != nil {
		p.Micro = &PortableMicro{
			Dims:      s.micro.dims,
			MicroDims: s.micro.microDims,
			OuterDims: s.micro.outerDims,
			Keys:      s.micro.keys,
			NNZ:       s.micro.nnz,
			Footprint: s.micro.footprint,
			FPScale:   s.micro.fpScale,
		}
	}
	return p
}

// FromPortable reconstructs a Stats from its codec view, validating the
// cross-field arities every consumer assumes, so a decoded bundle is
// safe to hand to the model and optimizer without re-deriving anything.
func FromPortable(p *Portable) (*Stats, error) {
	n := len(p.Dims)
	if n == 0 {
		return nil, fmt.Errorf("stats: portable bundle has no dimensions")
	}
	if len(p.BaseTileDims) != n || len(p.Order) != n {
		return nil, fmt.Errorf("stats: portable arity mismatch: %d dims, %d base tile dims, %d order",
			n, len(p.BaseTileDims), len(p.Order))
	}
	seen := make([]bool, n)
	for _, a := range p.Order {
		if a < 0 || a >= n || seen[a] {
			return nil, fmt.Errorf("stats: portable order %v is not a permutation of 0..%d", p.Order, n-1)
		}
		seen[a] = true
	}
	if len(p.PrTileIdx) != n || len(p.ProbIndex) != n || len(p.TileCorrs) != n || len(p.Occupancy) != n {
		return nil, fmt.Errorf("stats: portable per-level tables do not match order %d", n)
	}
	for ax := range p.Corrs {
		if ax < 0 || ax >= n {
			return nil, fmt.Errorf("stats: portable corr axis %d out of range", ax)
		}
	}
	if p.ElemCounts != nil && len(p.ElemCounts) != n {
		return nil, fmt.Errorf("stats: portable ElemCounts arity %d != %d", len(p.ElemCounts), n)
	}
	if p.PairSketch != nil && len(p.PairSketch) != n {
		return nil, fmt.Errorf("stats: portable PairSketch arity %d != %d", len(p.PairSketch), n)
	}
	s := &Stats{
		Dims:         p.Dims,
		BaseTileDims: p.BaseTileDims,
		Order:        p.Order,
		NNZ:          p.NNZ,
		SizeTile:     p.SizeTile,
		MaxTile:      p.MaxTile,
		NumTiles:     p.NumTiles,
		PrTileIdx:    p.PrTileIdx,
		ProbIndex:    p.ProbIndex,
		Corrs:        p.Corrs,
		TileCorrs:    p.TileCorrs,
		ElemCounts:   p.ElemCounts,
		PairSketch:   p.PairSketch,
		occupancy:    p.Occupancy,
	}
	if s.Corrs == nil {
		s.Corrs = make(map[int][]float64)
	}
	if m := p.Micro; m != nil {
		if len(m.Dims) != n || len(m.MicroDims) != n || len(m.OuterDims) != n {
			return nil, fmt.Errorf("stats: portable micro summary arity mismatch")
		}
		if len(m.NNZ) != len(m.Keys) || len(m.Footprint) != len(m.Keys) {
			return nil, fmt.Errorf("stats: portable micro summary has %d keys, %d nnz, %d footprints",
				len(m.Keys), len(m.NNZ), len(m.Footprint))
		}
		for a := 0; a < n; a++ {
			if m.MicroDims[a] < 1 {
				return nil, fmt.Errorf("stats: portable micro dimension %d on axis %d", m.MicroDims[a], a)
			}
		}
		s.micro = &microSummary{
			dims:      m.Dims,
			microDims: m.MicroDims,
			outerDims: m.OuterDims,
			keys:      m.Keys,
			nnz:       m.NNZ,
			footprint: m.Footprint,
			fpScale:   m.FPScale,
		}
	}
	return s, nil
}
