package stats

import (
	"slices"

	"d2t2/internal/tensor"
)

// corrsAxis computes the paper's Corrs statistic (Eq. 11) generalized to
// arbitrary-order tensors: for positions k and k+s along the given axis,
// the overlap between the sets of "rest" coordinates (all other axes) of
// their entries, summed over sampled k and normalized so shift 0 is 1.
//
// The paper averages within sampled tiles; we compute against the full
// coordinate range with sampled source positions, which measures the same
// reduction potential (overlaps produce output reuse wherever they fall)
// while bounding cost by sampleTarget × maxShift merge passes.
func corrsAxis(t *tensor.COO, axis, maxShift, sampleTarget int) []float64 {
	dim := t.Dims[axis]
	if maxShift >= dim {
		maxShift = dim - 1
	}
	if maxShift < 0 {
		maxShift = 0
	}
	// Choose sampled source positions up front so only the entries inside
	// their shift windows are grouped and sorted — this is what keeps the
	// collection pass proportional to the paper's 1%-of-tiles sampling
	// rather than to the whole tensor.
	stride := 1
	if sampleTarget > 0 && dim > sampleTarget {
		stride = dim / sampleTarget
	}
	needed := make([]bool, dim)
	sources := make([]int, 0, dim/stride+1)
	for k := 0; k < dim; k += stride {
		sources = append(sources, k)
		for s := 0; s <= maxShift && k+s < dim; s++ {
			needed[k+s] = true
		}
	}

	// Group the needed entries by coordinate along axis; the "rest" of
	// each entry is encoded into a single uint64 key. Count-then-fill into
	// one flat backing array instead of a map of growing slices: two
	// passes over the entries, a handful of allocations total.
	cnt := make([]int32, dim+1)
	for p := 0; p < t.NNZ(); p++ {
		if k := t.Crds[axis][p]; needed[k] {
			cnt[k+1]++
		}
	}
	off := make([]int32, dim+1)
	for k := 0; k < dim; k++ {
		off[k+1] = off[k] + cnt[k+1]
	}
	flat := make([]uint64, off[dim])
	cur := make([]int32, dim)
	copy(cur, off[:dim])
	for p := 0; p < t.NNZ(); p++ {
		k := t.Crds[axis][p]
		if !needed[k] {
			continue
		}
		var key uint64
		for a := 0; a < t.Order(); a++ {
			if a == axis {
				continue
			}
			key = key*uint64(t.Dims[a]) + uint64(t.Crds[a][p])
		}
		flat[cur[k]] = key
		cur[k]++
	}
	rest := func(k int) []uint64 { return flat[off[k]:off[k+1]] }
	for k := 0; k < dim; k++ {
		slices.Sort(rest(k))
	}

	overlap := make([]float64, maxShift+1)
	base := 0.0
	for _, k := range sources {
		lk := rest(k)
		if len(lk) == 0 {
			continue
		}
		base += float64(len(lk))
		for s := 0; s <= maxShift && k+s < dim; s++ {
			ls := rest(k + s)
			if len(ls) == 0 {
				continue
			}
			overlap[s] += float64(sortedIntersection(lk, ls))
		}
	}
	out := make([]float64, maxShift+1)
	if base == 0 {
		out[0] = 1
		return out
	}
	for s := range out {
		out[s] = overlap[s] / base
	}
	// Normalize so shift 0 is exactly 1 (it equals base by construction).
	if out[0] > 0 && out[0] != 1 {
		for s := range out {
			out[s] /= out[0]
		}
	}
	out[0] = 1
	return out
}

// sortedIntersection returns |a ∩ b| for sorted slices.
func sortedIntersection(a, b []uint64) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// tileCorrs computes the paper's TileCorrs statistic (Eq. 12) with the
// conditional normalization of DESIGN.md §4: TileCorrs[s] is the
// probability that slice i+s is occupied given slice i is, so shift 0 is
// 1, an uncorrelated sparse occupancy gives the marginal density, and a
// fully dense occupancy gives 1 at every shift.
func tileCorrs(occ []bool, maxShift int) []float64 {
	if maxShift >= len(occ) {
		maxShift = len(occ) - 1
	}
	if maxShift < 0 {
		maxShift = 0
	}
	out := make([]float64, maxShift+1)
	out[0] = 1
	for s := 1; s <= maxShift; s++ {
		both, valid := 0, 0
		for i := 0; i+s < len(occ); i++ {
			if occ[i] {
				valid++
				if occ[i+s] {
					both++
				}
			}
		}
		if valid > 0 {
			out[s] = float64(both) / float64(valid)
		}
	}
	return out
}
