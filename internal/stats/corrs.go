package stats

import (
	"slices"

	"d2t2/internal/tensor"
)

// corrPlan is the deterministic sampling frame behind the paper's Corrs
// statistic (Eq. 11): which source positions along the axis are sampled
// and which positions must therefore be gathered. The plan is a pure
// function of (dim, maxShift, sampleTarget) — independent of the data —
// which is what makes per-chunk corr accumulators mergeable: every
// partial gathers the same positions, so their per-position rest-key
// multisets concatenate into exactly the multisets a from-scratch gather
// over the combined entries would produce.
type corrPlan struct {
	dim      int
	maxShift int
	needed   []bool
	sources  []int
}

func newCorrPlan(dim, maxShift, sampleTarget int) *corrPlan {
	if maxShift >= dim {
		maxShift = dim - 1
	}
	if maxShift < 0 {
		maxShift = 0
	}
	// Choose sampled source positions up front so only the entries inside
	// their shift windows are grouped and sorted — this is what keeps the
	// collection pass proportional to the paper's 1%-of-tiles sampling
	// rather than to the whole tensor.
	stride := 1
	if sampleTarget > 0 && dim > sampleTarget {
		stride = dim / sampleTarget
	}
	pl := &corrPlan{dim: dim, maxShift: maxShift, needed: make([]bool, dim)}
	for k := 0; k < dim; k += stride {
		pl.sources = append(pl.sources, k)
		for s := 0; s <= maxShift && k+s < dim; s++ {
			pl.needed[k+s] = true
		}
	}
	return pl
}

// gather groups the needed entries by coordinate along axis; the "rest"
// of each entry (all other axes) is encoded into a single uint64 key.
// Count-then-fill into one flat backing array instead of a map of
// growing slices: two passes over the entries, a handful of allocations
// total. Each position's slice flat[off[k]:off[k+1]] comes back sorted —
// the canonical accumulator form Partial serializes and Merge merges.
func (pl *corrPlan) gather(t *tensor.COO, axis int) (off []int32, flat []uint64) {
	dim := pl.dim
	cnt := make([]int32, dim+1)
	for p := 0; p < t.NNZ(); p++ {
		if k := t.Crds[axis][p]; pl.needed[k] {
			cnt[k+1]++
		}
	}
	off = make([]int32, dim+1)
	for k := 0; k < dim; k++ {
		off[k+1] = off[k] + cnt[k+1]
	}
	flat = make([]uint64, off[dim])
	cur := make([]int32, dim)
	copy(cur, off[:dim])
	for p := 0; p < t.NNZ(); p++ {
		k := t.Crds[axis][p]
		if !pl.needed[k] {
			continue
		}
		var key uint64
		for a := 0; a < t.Order(); a++ {
			if a == axis {
				continue
			}
			key = key*uint64(t.Dims[a]) + uint64(t.Crds[a][p])
		}
		flat[cur[k]] = key
		cur[k]++
	}
	for k := 0; k < dim; k++ {
		slices.Sort(flat[off[k]:off[k+1]])
	}
	return off, flat
}

// finalize replays the overlap accumulation over a gathered (or merged)
// accumulator: for positions k and k+s along the axis, the overlap
// between the rest-key multisets of their entries, summed over sampled k
// and normalized so shift 0 is 1. The replay is deterministic given the
// sorted per-position multisets, so identical accumulators yield
// byte-identical curves regardless of how they were assembled.
func (pl *corrPlan) finalize(off []int32, flat []uint64) []float64 {
	rest := func(k int) []uint64 { return flat[off[k]:off[k+1]] }
	overlap := make([]float64, pl.maxShift+1)
	base := 0.0
	for _, k := range pl.sources {
		lk := rest(k)
		if len(lk) == 0 {
			continue
		}
		base += float64(len(lk))
		for s := 0; s <= pl.maxShift && k+s < pl.dim; s++ {
			ls := rest(k + s)
			if len(ls) == 0 {
				continue
			}
			overlap[s] += float64(sortedIntersection(lk, ls))
		}
	}
	out := make([]float64, pl.maxShift+1)
	if base == 0 {
		out[0] = 1
		return out
	}
	for s := range out {
		out[s] = overlap[s] / base
	}
	// Normalize so shift 0 is exactly 1 (it equals base by construction).
	if out[0] > 0 && out[0] != 1 {
		for s := range out {
			out[s] /= out[0]
		}
	}
	out[0] = 1
	return out
}

// corrsAxis computes the paper's Corrs statistic (Eq. 11) generalized to
// arbitrary-order tensors, as one plan → gather → finalize composition.
//
// The paper averages within sampled tiles; we compute against the full
// coordinate range with sampled source positions, which measures the same
// reduction potential (overlaps produce output reuse wherever they fall)
// while bounding cost by sampleTarget × maxShift merge passes.
func corrsAxis(t *tensor.COO, axis, maxShift, sampleTarget int) []float64 {
	pl := newCorrPlan(t.Dims[axis], maxShift, sampleTarget)
	off, flat := pl.gather(t, axis)
	return pl.finalize(off, flat)
}

// sortedIntersection returns |a ∩ b| for sorted slices.
func sortedIntersection(a, b []uint64) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// tileCorrs computes the paper's TileCorrs statistic (Eq. 12) with the
// conditional normalization of DESIGN.md §4: TileCorrs[s] is the
// probability that slice i+s is occupied given slice i is, so shift 0 is
// 1, an uncorrelated sparse occupancy gives the marginal density, and a
// fully dense occupancy gives 1 at every shift.
func tileCorrs(occ []bool, maxShift int) []float64 {
	if maxShift >= len(occ) {
		maxShift = len(occ) - 1
	}
	if maxShift < 0 {
		maxShift = 0
	}
	out := make([]float64, maxShift+1)
	out[0] = 1
	for s := 1; s <= maxShift; s++ {
		both, valid := 0, 0
		for i := 0; i+s < len(occ); i++ {
			if occ[i] {
				valid++
				if occ[i+s] {
					both++
				}
			}
		}
		if valid > 0 {
			out[s] = float64(both) / float64(valid)
		}
	}
	return out
}
