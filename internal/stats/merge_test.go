// Monoid-law and byte-identity tests for the mergeable statistics
// accumulators. This file lives in the external test package so it can
// compare artifacts through the snapshot codec (which imports stats):
// every equality below is an equality of encoded snapshot bytes, the
// strongest form the service's content-addressed cache relies on.
package stats_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"d2t2/internal/gen"
	"d2t2/internal/snapshot"
	"d2t2/internal/stats"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

func partialBytes(t *testing.T, p *stats.Partial) []byte {
	t.Helper()
	b, err := snapshot.EncodeBytes(&snapshot.Artifact{Partial: p})
	if err != nil {
		t.Fatalf("encode partial: %v", err)
	}
	return b
}

func statsBytes(t *testing.T, s *stats.Stats) []byte {
	t.Helper()
	b, err := snapshot.EncodeBytes(&snapshot.Artifact{Stats: s})
	if err != nil {
		t.Fatalf("encode stats: %v", err)
	}
	return b
}

// mergeCase is one (tensor, frame) fixture shared by the law tests.
type mergeCase struct {
	name     string
	t        *tensor.COO
	tileDims []int
	order    []int
	opts     *stats.Options
}

func mergeCases(t *testing.T) []mergeCase {
	r := rand.New(rand.NewSource(11))
	return []mergeCase{
		{
			name:     "2d-powerlaw",
			t:        gen.PowerLawGraph(r, 256, 4000, 1.5),
			tileDims: []int{16, 16},
			order:    []int{1, 0},
		},
		{
			name:     "3d-skewed",
			t:        gen.RandomTensor3(r, 40, 50, 60, 2000, [3]float64{0, 0.5, 0}),
			tileDims: []int{8, 8, 8},
			order:    []int{2, 0, 1},
			opts:     &stats.Options{MicroDiv: 4, CorrSampleTarget: 64, TileCorrMaxShift: 16},
		},
		{
			name:     "2d-paper-only",
			t:        gen.PowerLawGraph(r, 128, 1500, 1.3),
			tileDims: []int{16, 16},
			order:    nil,
			opts:     &stats.Options{SkipExtensions: true},
		},
	}
}

// splitByTileParity partitions the tensor's entries into two
// tile-disjoint halves: every entry of a base tile lands on the side of
// the tile's coordinate-sum parity. Tile dims are chosen so micro tiles
// nest inside base tiles, keeping both key sets disjoint across parts.
func splitByTileParity(m *tensor.COO, tileDims []int) (*tensor.COO, *tensor.COO) {
	a, b := tensor.New(m.Dims...), tensor.New(m.Dims...)
	coord := make([]int, m.Order())
	for p := 0; p < m.NNZ(); p++ {
		parity := 0
		for ax := range coord {
			coord[ax] = m.Crds[ax][p]
			parity += coord[ax] / tileDims[ax]
		}
		if parity%2 == 0 {
			a.Append(coord, m.Vals[p])
		} else {
			b.Append(coord, m.Vals[p])
		}
	}
	return a, b
}

// TestPartialFinalizeMatchesCollect pins the accumulator path to the
// direct collector: CollectPartial → Finalize must reproduce Collect's
// statistics bundle byte-identically on the snapshot wire, at worker
// counts 1 and 8.
func TestPartialFinalizeMatchesCollect(t *testing.T) {
	for _, tc := range mergeCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			var o stats.Options
			if tc.opts != nil {
				o = *tc.opts
			}
			o.Workers = 1
			direct, _, err := stats.Collect(tc.t, tc.tileDims, tc.order, &o)
			if err != nil {
				t.Fatal(err)
			}
			want := statsBytes(t, direct)
			var pb1 []byte
			for _, workers := range []int{1, 8} {
				o.Workers = workers
				p, err := stats.CollectPartial(tc.t, tc.tileDims, tc.order, &o)
				if err != nil {
					t.Fatal(err)
				}
				if workers == 1 {
					pb1 = partialBytes(t, p)
				} else if !bytes.Equal(pb1, partialBytes(t, p)) {
					t.Fatalf("partial bytes differ between workers 1 and %d", workers)
				}
				s, err := p.Finalize()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, statsBytes(t, s)) {
					t.Fatalf("workers=%d: finalized partial differs from direct collection", workers)
				}
			}
		})
	}
}

// TestMergeMonoidLaws checks the algebra the batch and delta paths rely
// on: commutativity, associativity, and the empty-tensor identity, all
// as snapshot-byte equalities, plus agreement of the merged partial with
// a from-scratch collection over the concatenated entries.
func TestMergeMonoidLaws(t *testing.T) {
	for _, tc := range mergeCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			var o stats.Options
			if tc.opts != nil {
				o = *tc.opts
			}
			o.Workers = 4
			collect := func(m *tensor.COO) *stats.Partial {
				p, err := stats.CollectPartial(m, tc.tileDims, tc.order, &o)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			half1, half2 := splitByTileParity(tc.t, tc.tileDims)
			double := make([]int, len(tc.tileDims))
			for a, td := range tc.tileDims {
				double[a] = 2 * td
			}
			quarter1, quarter2 := splitByTileParity(half1, double)
			pa, pb, pc := collect(quarter1), collect(quarter2), collect(half2)
			whole := collect(tc.t)
			empty := collect(tensor.New(tc.t.Dims...))

			ab, err := stats.Merge(pa, pb)
			if err != nil {
				t.Fatal(err)
			}
			ba, err := stats.Merge(pb, pa)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(partialBytes(t, ab), partialBytes(t, ba)) {
				t.Fatal("Merge is not commutative")
			}

			abc1, err := stats.Merge(ab, pc)
			if err != nil {
				t.Fatal(err)
			}
			bc, err := stats.Merge(pb, pc)
			if err != nil {
				t.Fatal(err)
			}
			abc2, err := stats.Merge(pa, bc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(partialBytes(t, abc1), partialBytes(t, abc2)) {
				t.Fatal("Merge is not associative")
			}

			if !bytes.Equal(partialBytes(t, abc1), partialBytes(t, whole)) {
				t.Fatal("merged partials differ from a from-scratch collection")
			}

			le, err := stats.Merge(empty, whole)
			if err != nil {
				t.Fatal(err)
			}
			re, err := stats.Merge(whole, empty)
			if err != nil {
				t.Fatal(err)
			}
			wb := partialBytes(t, whole)
			if !bytes.Equal(wb, partialBytes(t, le)) || !bytes.Equal(wb, partialBytes(t, re)) {
				t.Fatal("the empty collection is not a Merge identity")
			}

			sMerged, err := abc1.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			direct, _, err := stats.Collect(tc.t, tc.tileDims, tc.order, &o)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(statsBytes(t, direct), statsBytes(t, sMerged)) {
				t.Fatal("finalized merge differs from direct collection")
			}
		})
	}
}

// TestMergeRejects pins the two refusal modes: mismatched collection
// frames and overlapping tile key sets (a tile split across partials).
func TestMergeRejects(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := gen.PowerLawGraph(r, 64, 600, 1.4)
	p16, err := stats.CollectPartial(m, []int{16, 16}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := stats.CollectPartial(m, []int{8, 8}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stats.Merge(p16, p8); err == nil || !strings.Contains(err.Error(), "frame mismatch") {
		t.Fatalf("frame mismatch not rejected: %v", err)
	}
	if _, err := stats.Merge(p16, p16); err == nil || !strings.Contains(err.Error(), "present in both") {
		t.Fatalf("overlapping tile keys not rejected: %v", err)
	}
}

// TestApplyDeltaMatchesConcat is the delta-ingest acceptance criterion:
// folding a coordinate delta into an existing partial must equal a
// from-scratch collection over the concatenated tensor, byte for byte,
// both as a partial and after Finalize, at worker counts 1 and 8 — while
// touching only the tiles the delta lands in.
func TestApplyDeltaMatchesConcat(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	base := gen.PowerLawGraph(r, 256, 4000, 1.5)
	base.Dedup()
	tileDims := []int{16, 16}
	order := []int{1, 0}

	seen := make(map[[2]int]bool, base.NNZ())
	for p := 0; p < base.NNZ(); p++ {
		seen[[2]int{base.Crds[0][p], base.Crds[1][p]}] = true
	}
	delta := tensor.New(base.Dims...)
	for delta.NNZ() < 120 {
		c := [2]int{r.Intn(base.Dims[0]), r.Intn(base.Dims[1])}
		if seen[c] {
			continue
		}
		seen[c] = true
		delta.Append([]int{c[0], c[1]}, r.NormFloat64())
	}

	concat := base.Clone()
	coord := make([]int, 2)
	for p := 0; p < delta.NNZ(); p++ {
		coord[0], coord[1] = delta.Crds[0][p], delta.Crds[1][p]
		concat.Append(coord, delta.Vals[p])
	}
	concat.Dedup()
	if concat.NNZ() != base.NNZ()+delta.NNZ() {
		t.Fatalf("delta collided with base: %d entries, want %d", concat.NNZ(), base.NNZ()+delta.NNZ())
	}

	for _, workers := range []int{1, 8} {
		o := &stats.Options{Workers: workers}
		pBase, err := stats.CollectPartial(base, tileDims, order, o)
		if err != nil {
			t.Fatal(err)
		}
		merged, rep, err := stats.ApplyDelta(pBase, base, delta, workers)
		if err != nil {
			t.Fatal(err)
		}
		pConcat, err := stats.CollectPartial(concat, tileDims, order, o)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(partialBytes(t, merged), partialBytes(t, pConcat)) {
			t.Fatalf("workers=%d: delta-applied partial differs from concat collection", workers)
		}
		sMerged, err := merged.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		sConcat, _, err := stats.Collect(concat, tileDims, order, o)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(statsBytes(t, sMerged), statsBytes(t, sConcat)) {
			t.Fatalf("workers=%d: finalized delta stats differ from concat stats", workers)
		}
		if rep.TouchedTiles == 0 || rep.TouchedTiles > delta.NNZ() {
			t.Fatalf("implausible touched-tile count %d for %d delta entries", rep.TouchedTiles, delta.NNZ())
		}
		if rep.TouchedTiles >= rep.TotalTiles {
			t.Fatalf("delta touched %d of %d tiles — nothing was localized", rep.TouchedTiles, rep.TotalTiles)
		}
	}
}

// TestApplyDeltaRejects covers the guarded failure modes: duplicate
// coordinates inside the delta, out-of-range coordinates, and a base
// tensor that does not match the partial.
func TestApplyDeltaRejects(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	base := gen.PowerLawGraph(r, 64, 600, 1.4)
	base.Dedup()
	p, err := stats.CollectPartial(base, []int{8, 8}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	dup := tensor.New(base.Dims...)
	dup.Append([]int{1, 1}, 1)
	dup.Append([]int{1, 1}, 2)
	if _, _, err := stats.ApplyDelta(p, base, dup, 1); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("intra-delta duplicate not rejected: %v", err)
	}

	wrongBase := tensor.New(base.Dims...)
	ok := tensor.New(base.Dims...)
	ok.Append([]int{0, 0}, 1)
	if _, _, err := stats.ApplyDelta(p, wrongBase, ok, 1); err == nil || !strings.Contains(err.Error(), "covers") {
		t.Fatalf("mismatched base not rejected: %v", err)
	}
}

// TestPartialSnapshotRoundTrip pins the PART section codec: encode →
// decode → encode must be byte-identical, and the decoder must reject a
// partial whose tables were corrupted in flight.
func TestPartialSnapshotRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	m := gen.PowerLawGraph(r, 128, 2000, 1.5)
	p, err := stats.CollectPartial(m, []int{16, 16}, []int{1, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := partialBytes(t, p)
	a, err := snapshot.DecodeBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if a.Partial == nil {
		t.Fatal("decoded artifact lost the partial section")
	}
	b2, err := snapshot.EncodeBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("partial snapshot round trip is not byte-identical")
	}

	// A decoded partial must come back usable: its finalization equals
	// the original's.
	s1, err := p.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Partial.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(statsBytes(t, s1), statsBytes(t, s2)) {
		t.Fatal("decoded partial finalizes differently")
	}

	bad := *p
	bad.NNZ++ // breaks entry-count conservation
	if _, err := snapshot.EncodeBytes(&snapshot.Artifact{Partial: &bad}); err != nil {
		t.Fatalf("encode does not validate: %v", err)
	}
	badBytes := partialBytes(t, &bad)
	if _, err := snapshot.DecodeBytes(badBytes); err == nil {
		t.Fatal("corrupted partial accepted by decoder")
	}
}

// TestPartialKeyDistinct pins the content-address separation between
// finalized and accumulator artifacts for identical parameters.
func TestPartialKeyDistinct(t *testing.T) {
	id := "sha256:00"
	pk := snapshot.PartialKey(id, []int{16, 16}, []int{0, 1}, 8)
	sk := snapshot.StatsKey(id, []int{16, 16}, []int{0, 1}, 8)
	if pk == sk {
		t.Fatal("PartialKey collides with StatsKey")
	}
	if pk != snapshot.PartialKey(id, []int{16, 16}, []int{0, 1}, 8) {
		t.Fatal("PartialKey is not deterministic")
	}
}

// TestSummarizeFibersMatchCSF cross-checks, through the public stats
// path, that the fiber counts the merge path sums are the CSF's: the
// finalized ProbIndex of a partial must equal the collector's on a
// tensor where every level has non-trivial fan-out.
func TestSummarizeFibersMatchCSF(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	m := gen.RandomTensor3(r, 30, 30, 30, 1500, [3]float64{0.3, 0, 0.3})
	tt, err := tiling.New(m, []int{8, 8, 8}, []int{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := stats.CollectFromTiled(m, tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := stats.CollectPartial(m, []int{8, 8, 8}, []int{1, 2, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for l := range direct.ProbIndex {
		if s.ProbIndex[l] != direct.ProbIndex[l] {
			t.Fatalf("ProbIndex[%d]: partial %v, direct %v", l, s.ProbIndex[l], direct.ProbIndex[l])
		}
		if s.PrTileIdx[l] != direct.PrTileIdx[l] {
			t.Fatalf("PrTileIdx[%d]: partial %v, direct %v", l, s.PrTileIdx[l], direct.PrTileIdx[l])
		}
	}
}
