package stats

import (
	"fmt"
	"math/rand"
	"testing"

	"d2t2/internal/gen"
	"d2t2/internal/raceflag"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// TestCollectFromTiledAllocs is the allocation regression gate for the
// statistics pass. The summary-only micro tiling plus per-worker
// scratch accumulators hold a full collection (including the micro-tile
// retiling of a 200k-entry matrix) to a few hundred allocations; the
// ceiling is several times the measured steady state, but far below the
// ~200k the CSF-materializing path used to burn.
func TestCollectFromTiledAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	r := rand.New(rand.NewSource(1))
	m := gen.PowerLawGraph(r, 2048, 200_000, 1.7)
	tt, err := tiling.New(m, []int{64, 64}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		workers int
		ceiling float64
	}{{1, 1500}, {8, 2000}} {
		t.Run(fmt.Sprintf("workers=%d", tc.workers), func(t *testing.T) {
			avg := testing.AllocsPerRun(2, func() {
				s, err := CollectFromTiled(m, tt, &Options{Workers: tc.workers})
				if err != nil || s.NumTiles == 0 {
					t.Fatalf("collect failed: %v", err)
				}
			})
			t.Logf("allocs/op: %.0f", avg)
			if avg > tc.ceiling {
				t.Errorf("CollectFromTiled allocates %.0f times per call, ceiling %.0f", avg, tc.ceiling)
			}
		})
	}
}

// TestMergeAllocs gates the merge path's allocation budget: combining
// two 100k-entry partials must cost only the merged tables and sketch
// scratch — far below a re-collection. The split is by tile-index
// parity so the halves' tile tables are disjoint, as Merge requires.
func TestMergeAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	r := rand.New(rand.NewSource(2))
	m := gen.PowerLawGraph(r, 2048, 200_000, 1.7)
	tileDims := []int{64, 64}
	order := []int{0, 1}
	a, b := tensor.New(m.Dims...), tensor.New(m.Dims...)
	coord := make([]int, m.Order())
	for p := 0; p < m.NNZ(); p++ {
		parity := 0
		for ax := range coord {
			coord[ax] = m.Crds[ax][p]
			parity += coord[ax] / tileDims[ax]
		}
		if parity%2 == 0 {
			a.Append(coord, m.Vals[p])
		} else {
			b.Append(coord, m.Vals[p])
		}
	}
	pa, err := CollectPartial(a, tileDims, order, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := CollectPartial(b, tileDims, order, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(2, func() {
		merged, err := Merge(pa, pb)
		if err != nil || merged == nil {
			t.Fatalf("merge failed: %v", err)
		}
	})
	t.Logf("allocs/op: %.0f", avg)
	const ceiling = 400
	if avg > ceiling {
		t.Errorf("Merge allocates %.0f times per call, ceiling %d", avg, ceiling)
	}
}
