package stats

import (
	"fmt"
	"math/rand"
	"testing"

	"d2t2/internal/gen"
	"d2t2/internal/raceflag"
	"d2t2/internal/tiling"
)

// TestCollectFromTiledAllocs is the allocation regression gate for the
// statistics pass. The summary-only micro tiling plus per-worker
// scratch accumulators hold a full collection (including the micro-tile
// retiling of a 200k-entry matrix) to a few hundred allocations; the
// ceiling is several times the measured steady state, but far below the
// ~200k the CSF-materializing path used to burn.
func TestCollectFromTiledAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	r := rand.New(rand.NewSource(1))
	m := gen.PowerLawGraph(r, 2048, 200_000, 1.7)
	tt, err := tiling.New(m, []int{64, 64}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		workers int
		ceiling float64
	}{{1, 1500}, {8, 2000}} {
		t.Run(fmt.Sprintf("workers=%d", tc.workers), func(t *testing.T) {
			avg := testing.AllocsPerRun(2, func() {
				s, err := CollectFromTiled(m, tt, &Options{Workers: tc.workers})
				if err != nil || s.NumTiles == 0 {
					t.Fatalf("collect failed: %v", err)
				}
			})
			t.Logf("allocs/op: %.0f", avg)
			if avg > tc.ceiling {
				t.Errorf("CollectFromTiled allocates %.0f times per call, ceiling %.0f", avg, tc.ceiling)
			}
		})
	}
}
