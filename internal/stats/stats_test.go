package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"d2t2/internal/gen"
	"d2t2/internal/tensor"
)

func denseMatrix(n int) *tensor.COO {
	m := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Append([]int{i, j}, 1)
		}
	}
	return m
}

func diagMatrix(n int) *tensor.COO {
	m := tensor.New(n, n)
	for i := 0; i < n; i++ {
		m.Append([]int{i, i}, 1)
	}
	return m
}

func TestCollectDense(t *testing.T) {
	m := denseMatrix(16)
	s, tt, err := Collect(m, []int{4, 4}, nil, &Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tt.NumTiles() != 16 {
		t.Fatalf("tiles = %d", tt.NumTiles())
	}
	// Every outer level fully occupied.
	for l, p := range s.PrTileIdx {
		if math.Abs(p-1) > 1e-12 {
			t.Fatalf("PrTileIdx[%d] = %v, want 1", l, p)
		}
	}
	if math.Abs(s.PTileBase()-1) > 1e-12 {
		t.Fatalf("PTile = %v", s.PTileBase())
	}
	// Every inner level fully dense.
	for l, p := range s.ProbIndex {
		if math.Abs(p-1) > 1e-12 {
			t.Fatalf("ProbIndex[%d] = %v, want 1", l, p)
		}
	}
	if s.DensityBase() != 1 {
		t.Fatalf("density = %v", s.DensityBase())
	}
	// All tiles identical.
	if s.MaxTile != int(s.SizeTile) {
		t.Fatalf("SizeTile %v != MaxTile %d for uniform tiles", s.SizeTile, s.MaxTile)
	}
}

func TestCollectDiagonal(t *testing.T) {
	m := diagMatrix(16)
	s, tt, err := Collect(m, []int{4, 4}, nil, &Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tt.NumTiles() != 4 {
		t.Fatalf("diagonal tiles = %d", tt.NumTiles())
	}
	// P_tile = 4/16.
	if math.Abs(s.PTileBase()-0.25) > 1e-12 {
		t.Fatalf("PTile = %v, want 0.25", s.PTileBase())
	}
	// Root level: all 4 row-tiles occupied; second level: 1 of 4 each.
	if math.Abs(s.PrTileIdx[0]-1) > 1e-12 || math.Abs(s.PrTileIdx[1]-0.25) > 1e-12 {
		t.Fatalf("PrTileIdx = %v", s.PrTileIdx)
	}
	// Within a tile: all 4 rows occupied, 1 of 4 columns per row.
	if math.Abs(s.ProbIndex[0]-1) > 1e-12 || math.Abs(s.ProbIndex[1]-0.25) > 1e-12 {
		t.Fatalf("ProbIndex = %v", s.ProbIndex)
	}
}

func TestCorrsDiagonalVsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	diag := gen.Banded(r, 256, 1, 3) // near-diagonal band
	rnd := gen.UniformRandom(r, 256, 256, 768)

	sd, _, err := Collect(diag, []int{16, 16}, nil, &Options{MicroDiv: 2, CorrMaxShift: 32})
	if err != nil {
		t.Fatal(err)
	}
	sr, _, err := Collect(rnd, []int{16, 16}, nil, &Options{MicroDiv: 2, CorrMaxShift: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Banded data: adjacent rows overlap in columns, so Corrs at shift 1
	// must be clearly positive and larger than for random data.
	cd, cr := sd.Corrs[0][1], sr.Corrs[0][1]
	if cd < 0.2 {
		t.Fatalf("banded Corrs[1] = %v, want substantial overlap", cd)
	}
	if cd <= cr {
		t.Fatalf("banded Corrs[1]=%v not above random %v", cd, cr)
	}
	// Both normalize to 1 at shift 0.
	if sd.Corrs[0][0] != 1 || sr.Corrs[0][0] != 1 {
		t.Fatal("Corrs not normalized at shift 0")
	}
	// CorrSum over a tile for banded data must be well above random's.
	if sd.CorrSum(0, 16) <= sr.CorrSum(0, 16) {
		t.Fatalf("CorrSum banded %v <= random %v", sd.CorrSum(0, 16), sr.CorrSum(0, 16))
	}
}

func TestCorrSumExtrapolation(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := gen.Banded(r, 128, 2, 4)
	s, _, err := Collect(m, []int{16, 16}, nil, &Options{MicroDiv: 2, CorrMaxShift: 8})
	if err != nil {
		t.Fatal(err)
	}
	in := s.CorrSum(0, 8)
	beyond := s.CorrSum(0, 64)
	if beyond < in {
		t.Fatalf("extrapolated CorrSum %v < in-range %v", beyond, in)
	}
	if s.CorrSum(0, 0) != 1 {
		t.Fatalf("CorrSum(0) = %v", s.CorrSum(0, 0))
	}
}

func TestTileCorrsDenseAndSparse(t *testing.T) {
	dense := tileCorrs([]bool{true, true, true, true, true, true}, 3)
	for s, v := range dense {
		if math.Abs(v-1) > 0.26 { // edge effects shrink long shifts slightly
			t.Fatalf("dense TileCorrs[%d] = %v", s, v)
		}
	}
	sparse := tileCorrs([]bool{true, false, false, false, true, false, false, false}, 3)
	if sparse[0] != 1 {
		t.Fatal("TileCorrs[0] != 1")
	}
	if sparse[1] != 0 || sparse[2] != 0 {
		t.Fatalf("isolated slices should have zero shift correlation: %v", sparse)
	}
}

func TestEOuterMergedLimits(t *testing.T) {
	m := denseMatrix(32)
	s, _, err := Collect(m, []int{4, 4}, nil, &Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Dense occupancy: merging m base tiles divides the iteration count.
	if got := s.EOuterMerged(0, 1); got != 8 {
		t.Fatalf("EOuterMerged(0,1) = %v, want 8", got)
	}
	got := s.EOuterMerged(0, 4)
	if math.Abs(got-2) > 0.8 {
		t.Fatalf("EOuterMerged(0,4) = %v, want ~2", got)
	}
	if exact := s.EOuterExact(0, 4); exact != 2 {
		t.Fatalf("EOuterExact(0,4) = %d, want 2", exact)
	}

	// Sparse uncorrelated occupancy (~20% of slices): merging two tiles
	// must shrink iterations far less than 2x.
	r := rand.New(rand.NewSource(3))
	sp := gen.UniformRandom(r, 4096, 4096, 110)
	ss, _, err := Collect(sp, []int{8, 8}, nil, &Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := ss.EOuterMerged(0, 1)
	merged := ss.EOuterMerged(0, 2)
	if merged < 0.7*base {
		t.Fatalf("uncorrelated merge should not halve iterations: %v -> %v", base, merged)
	}
	// The Eq.18 approximation should track the exact merged count.
	exact := float64(ss.EOuterExact(0, 2))
	if merged < 0.7*exact || merged > 1.3*exact {
		t.Fatalf("EOuterMerged %v deviates from exact %v", merged, exact)
	}
}

func TestEvalShapeMatchesDirectTiling(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m := gen.PowerLawGraph(r, 256, 2000, 1.6)
	s, _, err := Collect(m, []int{16, 16}, nil, &Options{MicroDiv: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate a different shape and compare against actually tiling.
	for _, shape := range [][]int{{32, 8}, {8, 32}, {16, 16}, {64, 4}} {
		got, err := s.EvalShape(shape)
		if err != nil {
			t.Fatal(err)
		}
		want, err2 := directShape(m, shape)
		if err2 != nil {
			t.Fatal(err2)
		}
		if got.NumTiles != want.num {
			t.Fatalf("shape %v: NumTiles %d != direct %d", shape, got.NumTiles, want.num)
		}
		if got.Occupied[0] != want.occ0 || got.Occupied[1] != want.occ1 {
			t.Fatalf("shape %v: occupied (%d,%d) != direct (%d,%d)",
				shape, got.Occupied[0], got.Occupied[1], want.occ0, want.occ1)
		}
		// Calibrated footprint aggregation tracks the true retiled
		// footprint within 25%.
		if got.SizeTile < 0.75*want.size || got.SizeTile > 1.25*want.size {
			t.Fatalf("shape %v: SizeTile %v vs direct %v", shape, got.SizeTile, want.size)
		}
	}
}

type directStats struct {
	num, occ0, occ1 int
	size            float64
}

func directShape(m *tensor.COO, shape []int) (directStats, error) {
	s2, tt, err := Collect(m, shape, nil, &Options{MicroDiv: 1})
	if err != nil {
		return directStats{}, err
	}
	return directStats{
		num:  tt.NumTiles(),
		occ0: s2.OccupiedBase(0),
		occ1: s2.OccupiedBase(1),
		size: tt.MeanFootprint(),
	}, nil
}

func TestEvalShapeErrors(t *testing.T) {
	m := diagMatrix(32)
	s, _, err := Collect(m, []int{8, 8}, nil, &Options{MicroDiv: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EvalShape([]int{3, 8}); err == nil {
		t.Fatal("non-multiple shape accepted")
	}
	if _, err := s.EvalShape([]int{8}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := s.EvalShape([]int{0, 8}); err == nil {
		t.Fatal("zero dim accepted")
	}
}

func TestSnapToMicro(t *testing.T) {
	m := diagMatrix(64)
	s, _, err := Collect(m, []int{16, 16}, nil, &Options{MicroDiv: 4}) // micro = 4
	if err != nil {
		t.Fatal(err)
	}
	got := s.SnapToMicro([]int{5, 100})
	if got[0] != 4 {
		t.Fatalf("snap 5 -> %d, want 4", got[0])
	}
	if got[1] != 64 {
		t.Fatalf("snap 100 -> %d, want clamp to 64", got[1])
	}
	if got := s.SnapToMicro([]int{1, 1}); got[0] != 4 || got[1] != 4 {
		t.Fatalf("snap 1 -> %v, want micro minimum", got)
	}
}

func TestQuickEvalShapeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := gen.UniformRandom(r, 128, 128, 400)
		s, _, err := Collect(m, []int{16, 16}, nil, &Options{MicroDiv: 4})
		if err != nil {
			return false
		}
		shapes := [][]int{{16, 16}, {32, 8}, {8, 32}, {4, 64}, {64, 4}}
		sh := shapes[r.Intn(len(shapes))]
		ev, err := s.EvalShape(sh)
		if err != nil {
			return false
		}
		// Invariants: probabilities in [0,1]; tiles bounded by domain and
		// by nnz; marginals consistent with occupied counts.
		if ev.PTile < 0 || ev.PTile > 1 {
			return false
		}
		if ev.NumTiles > m.NNZ() || ev.NumTiles < 1 {
			return false
		}
		for a := range ev.Marginal {
			if ev.Marginal[a] < 0 || ev.Marginal[a] > 1 {
				return false
			}
			if ev.Occupied[a] > ev.OuterDims[a] {
				return false
			}
		}
		return ev.MaxTile >= int(ev.SizeTile)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCollect3DTensor(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := gen.RandomTensor3(r, 64, 64, 64, 2000, [3]float64{0, 0, 0.5})
	s, tt, err := Collect(m, []int{8, 8, 8}, []int{0, 1, 2}, &Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tt.NumTiles() != s.NumTiles {
		t.Fatal("tile count mismatch")
	}
	if len(s.PrTileIdx) != 3 || len(s.ProbIndex) != 3 {
		t.Fatalf("level stats arity wrong: %v %v", s.PrTileIdx, s.ProbIndex)
	}
	for l := 0; l < 3; l++ {
		if s.PrTileIdx[l] <= 0 || s.PrTileIdx[l] > 1 {
			t.Fatalf("PrTileIdx[%d] = %v", l, s.PrTileIdx[l])
		}
		if s.ProbIndex[l] <= 0 || s.ProbIndex[l] > 1 {
			t.Fatalf("ProbIndex[%d] = %v", l, s.ProbIndex[l])
		}
	}
	if _, err := s.EvalShape([]int{16, 8, 4}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelOfAxisAndSketches(t *testing.T) {
	m := diagMatrix(32)
	s, _, err := Collect(m, []int{8, 8}, []int{1, 0}, &Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.LevelOfAxis(1) != 0 || s.LevelOfAxis(0) != 1 {
		t.Fatalf("level mapping wrong: %v", s.Order)
	}
	if s.LevelOfAxis(5) != -1 {
		t.Fatal("unknown axis should map to -1")
	}
	// Identical tensors sketch identically; a transpose of a diagonal is
	// itself, so Jaccard must be 1.
	s2, _, err := Collect(m.Transpose(), []int{8, 8}, nil, &Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	if j := SketchJaccard(s.PairSketch[0], s2.PairSketch[1]); j < 0.99 {
		t.Fatalf("diagonal self-similarity = %v, want ~1", j)
	}
	// Element counts: every row and column of the diagonal holds one.
	for a := 0; a < 2; a++ {
		for _, c := range s.ElemCounts[a] {
			if c != 1 {
				t.Fatalf("diag elem counts wrong: %v", s.ElemCounts[a][:8])
			}
		}
	}
}

func TestSketchJaccardProperties(t *testing.T) {
	b1 := newBottomK(sketchSize)
	b2 := newBottomK(sketchSize)
	b3 := newBottomK(sketchSize)
	for i := 0; i < 5000; i++ {
		h := hash64(uint64(i))
		b1.add(h)
		if i%2 == 0 {
			b2.add(h)
		}
		b3.add(hash64(uint64(i + 1000000)))
	}
	// Identical sets -> 1.
	if j := SketchJaccard(b1.values(), b1.values()); j != 1 {
		t.Fatalf("self Jaccard = %v", j)
	}
	// Half-subset: J = |A∩B|/|A∪B| = 2500/5000 = 0.5 (±sketch noise).
	if j := SketchJaccard(b1.values(), b2.values()); j < 0.35 || j > 0.65 {
		t.Fatalf("subset Jaccard = %v, want ~0.5", j)
	}
	// Disjoint sets -> ~0.
	if j := SketchJaccard(b1.values(), b3.values()); j > 0.05 {
		t.Fatalf("disjoint Jaccard = %v, want ~0", j)
	}
	// Empty sketch -> 0.
	if j := SketchJaccard(nil, b1.values()); j != 0 {
		t.Fatalf("empty Jaccard = %v", j)
	}
}
