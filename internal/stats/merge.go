package stats

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"d2t2/internal/par"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// Partial is the mergeable accumulator form of a statistics collection:
// every reduction the collector performs — entry histograms, bottom-k
// sketch multisets, corr rest-key multisets, per-tile and per-micro-tile
// summary records — kept in its pre-normalization state, before any
// division or averaging. Two partials over entry-disjoint pieces of the
// same tensor Merge into exactly the partial a from-scratch collection
// over the combined entries would produce, and Finalize turns a partial
// into the same Stats CollectFromTiled computes: every final float is a
// ratio of exactly-merged integers or a deterministic replay over
// identically-sorted data, so the Portable/snapshot bytes match a serial
// collection byte for byte.
//
// The parameter fields (Dims through SkipExtensions) pin the collection
// frame; Merge refuses partials whose frames differ. The table fields
// are keyed by tile; Merge requires the key sets disjoint — partition
// entries along tile boundaries (for both the base and the micro grid)
// or use ApplyDelta, which re-summarizes the straddled tiles.
type Partial struct {
	Dims     []int // original dimension sizes
	TileDims []int // conservative base tiling the stats frame uses
	Order    []int // CSF level order (axis per level)
	// MicroDims is the resolved micro tile size per axis
	// (max(1, TileDims/MicroDiv)).
	MicroDims []int

	// CorrAxes lists the axes Corrs is collected for; CorrMaxShift holds
	// the resolved shift bound per listed axis (parallel slices).
	CorrAxes     []int
	CorrMaxShift []int

	CorrSampleTarget int
	TileCorrMaxShift int
	SkipExtensions   bool

	NNZ int

	// Entry-granularity accumulators: ElemCounts[a][v] sums elementwise;
	// Sketches[a] is the sorted k-smallest hash multiset (duplicates
	// retained — see bottomK.multiset); CorrOff[i]/CorrRest[i] hold the
	// per-position sorted rest-key multisets of corr axis CorrAxes[i]
	// (CorrOff[i][k]..CorrOff[i][k+1] bounds position k's keys).
	ElemCounts [][]int32
	Sketches   [][]uint64
	CorrOff    [][]int32
	CorrRest   [][]uint64

	// Per-tile records at the base tiling, keys ascending:
	// TileFibers[l][i] is the CSF level-l fiber count of tile TileKeys[i].
	TileKeys   []uint64
	TileNNZ    []int32
	TileFP     []int32
	TileFibers [][]int32

	// Per-tile records at the micro tiling, keys ascending.
	MicroKeys []uint64
	MicroNNZ  []int32
	MicroFP   []int32
}

// partialParams is the resolved collection frame: what CollectPartialCtx
// derives from Options and what ApplyDelta reads back from an existing
// Partial so the delta-only gather runs in the identical frame.
type partialParams struct {
	dims, tileDims, order, microDims []int
	corrAxes, corrMaxShift           []int
	corrSampleTarget                 int
	tileCorrMaxShift                 int
	skipExtensions                   bool
}

func paramsFromPartial(p *Partial) *partialParams {
	return &partialParams{
		dims:             p.Dims,
		tileDims:         p.TileDims,
		order:            p.Order,
		microDims:        p.MicroDims,
		corrAxes:         p.CorrAxes,
		corrMaxShift:     p.CorrMaxShift,
		corrSampleTarget: p.CorrSampleTarget,
		tileCorrMaxShift: p.TileCorrMaxShift,
		skipExtensions:   p.SkipExtensions,
	}
}

// CollectPartial is CollectPartialCtx with a background context.
func CollectPartial(t *tensor.COO, baseTileDims, order []int, opts *Options) (*Partial, error) {
	return CollectPartialCtx(context.Background(), t, baseTileDims, order, opts)
}

// CollectPartialCtx collects the mergeable accumulator form of the
// statistics for t at the given conservative tiling, under the same
// options Collect takes. Finalize on the result reproduces CollectCtx's
// Stats byte-identically (Portable/snapshot bytes equal) at any worker
// count; partials over entry-disjoint chunks of a tensor Merge into the
// partial of the whole. An empty tensor yields the monoid identity for
// its frame.
func CollectPartialCtx(ctx context.Context, t *tensor.COO, baseTileDims, order []int, opts *Options) (*Partial, error) {
	o := opts.withDefaults()
	n := t.Order()
	if len(baseTileDims) != n {
		return nil, fmt.Errorf("stats: %d tile dims for order-%d tensor", len(baseTileDims), n)
	}
	if order == nil {
		order = make([]int, n)
		for a := range order {
			order[a] = a
		}
	}
	microDims := make([]int, n)
	for a, td := range baseTileDims {
		microDims[a] = td / o.MicroDiv
		if microDims[a] < 1 {
			microDims[a] = 1
		}
	}
	axes := o.CorrAxes
	if axes == nil {
		axes = make([]int, n)
		for a := range axes {
			axes[a] = a
		}
	}
	for _, ax := range axes {
		if ax < 0 || ax >= n {
			return nil, fmt.Errorf("stats: corr axis %d out of range", ax)
		}
	}
	maxShifts := make([]int, len(axes))
	for i, ax := range axes {
		maxShifts[i] = o.CorrMaxShift
		if maxShifts[i] == 0 {
			maxShifts[i] = 2 * baseTileDims[ax]
		}
	}
	prm := &partialParams{
		dims:             append([]int(nil), t.Dims...),
		tileDims:         append([]int(nil), baseTileDims...),
		order:            append([]int(nil), order...),
		microDims:        microDims,
		corrAxes:         append([]int(nil), axes...),
		corrMaxShift:     maxShifts,
		corrSampleTarget: o.CorrSampleTarget,
		tileCorrMaxShift: o.TileCorrMaxShift,
		skipExtensions:   o.SkipExtensions,
	}
	return collectPartial(ctx, t, prm, o.Workers)
}

// collectPartial runs the accumulator-form collection in a fully
// resolved frame. The entry pass mirrors CollectFromTiledCtx's exactly
// (same scratch discipline, same pair-key construction), and the tile
// and micro tables come from the summary-only tiler, which task-for-task
// matches what NewCtx materializes (see TestSummarizeMatchesNew).
func collectPartial(ctx context.Context, t *tensor.COO, prm *partialParams, workers int) (*Partial, error) {
	n := len(prm.dims)
	tsum, err := tiling.SummarizeCtx(ctx, t, prm.tileDims, prm.order, workers)
	if err != nil {
		return nil, err
	}
	msum := tsum
	if !slices.Equal(prm.microDims, prm.tileDims) {
		msum, err = tiling.SummarizeCtx(ctx, t, prm.microDims, prm.order, workers)
		if err != nil {
			return nil, err
		}
	}

	p := &Partial{
		Dims:             prm.dims,
		TileDims:         prm.tileDims,
		Order:            prm.order,
		MicroDims:        prm.microDims,
		CorrAxes:         prm.corrAxes,
		CorrMaxShift:     prm.corrMaxShift,
		CorrSampleTarget: prm.corrSampleTarget,
		TileCorrMaxShift: prm.tileCorrMaxShift,
		SkipExtensions:   prm.skipExtensions,
		NNZ:              t.NNZ(),
		TileKeys:         tsum.Keys,
		TileNNZ:          tsum.NNZ,
		TileFP:           tsum.Footprint,
		TileFibers:       tsum.Fibers,
		MicroKeys:        msum.Keys,
		MicroNNZ:         msum.NNZ,
		MicroFP:          msum.Footprint,
	}

	if !prm.skipExtensions {
		outerDims := make([]int, n)
		for a := range outerDims {
			outerDims[a] = (prm.dims[a] + prm.tileDims[a] - 1) / prm.tileDims[a]
		}
		entryChunks := par.Chunks(workers, t.NNZ())
		type entryAgg struct {
			counts   [][]int32
			sketches []*bottomK
		}
		var emu sync.Mutex
		var eaggs []*entryAgg
		newEntryAgg := func() *entryAgg {
			ea := &entryAgg{counts: make([][]int32, n), sketches: make([]*bottomK, n)}
			for a := 0; a < n; a++ {
				ea.counts[a] = make([]int32, prm.dims[a])
				ea.sketches[a] = newBottomK(sketchSize)
			}
			emu.Lock()
			eaggs = append(eaggs, ea)
			emu.Unlock()
			return ea
		}
		if err := par.ForEachScratchCtx(ctx, workers, len(entryChunks), newEntryAgg, func(c int, ea *entryAgg) error {
			for pos := entryChunks[c][0]; pos < entryChunks[c][1]; pos++ {
				for a := 0; a < n; a++ {
					ea.counts[a][t.Crds[a][pos]]++
					// Pair key: axis coordinate × coarse bucket of the rest.
					var rest uint64
					for b := 0; b < n; b++ {
						if b == a {
							continue
						}
						bucket := t.Crds[b][pos] / prm.tileDims[b]
						rest = rest*uint64(outerDims[b]+1) + uint64(bucket)
					}
					ea.sketches[a].add(hash64(uint64(t.Crds[a][pos])<<26 ^ rest))
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		p.ElemCounts = make([][]int32, n)
		sketches := make([]*bottomK, n)
		for a := 0; a < n; a++ {
			p.ElemCounts[a] = make([]int32, prm.dims[a])
			sketches[a] = newBottomK(sketchSize)
		}
		for _, ea := range eaggs {
			for a := 0; a < n; a++ {
				for v, c := range ea.counts[a] {
					p.ElemCounts[a][v] += c
				}
				sketches[a].merge(ea.sketches[a])
			}
		}
		p.Sketches = make([][]uint64, n)
		for a := 0; a < n; a++ {
			p.Sketches[a] = sketches[a].multiset()
		}
	}

	type corrAcc struct {
		off  []int32
		flat []uint64
	}
	accs, err := par.MapCtx(ctx, workers, len(prm.corrAxes), func(i int) (corrAcc, error) {
		ax := prm.corrAxes[i]
		pl := newCorrPlan(prm.dims[ax], prm.corrMaxShift[i], prm.corrSampleTarget)
		off, flat := pl.gather(t, ax)
		return corrAcc{off, flat}, nil
	})
	if err != nil {
		return nil, err
	}
	p.CorrOff = make([][]int32, len(accs))
	p.CorrRest = make([][]uint64, len(accs))
	for i, acc := range accs {
		p.CorrOff[i] = acc.off
		p.CorrRest[i] = acc.flat
	}
	return p, nil
}

// frameEqual reports whether two partials share the same collection
// frame: only then are their accumulators about the same statistic.
func (p *Partial) frameEqual(q *Partial) error {
	switch {
	case !slices.Equal(p.Dims, q.Dims):
		return fmt.Errorf("stats: merge frame mismatch: dims %v vs %v", p.Dims, q.Dims)
	case !slices.Equal(p.TileDims, q.TileDims):
		return fmt.Errorf("stats: merge frame mismatch: tile dims %v vs %v", p.TileDims, q.TileDims)
	case !slices.Equal(p.Order, q.Order):
		return fmt.Errorf("stats: merge frame mismatch: order %v vs %v", p.Order, q.Order)
	case !slices.Equal(p.MicroDims, q.MicroDims):
		return fmt.Errorf("stats: merge frame mismatch: micro dims %v vs %v", p.MicroDims, q.MicroDims)
	case !slices.Equal(p.CorrAxes, q.CorrAxes):
		return fmt.Errorf("stats: merge frame mismatch: corr axes %v vs %v", p.CorrAxes, q.CorrAxes)
	case !slices.Equal(p.CorrMaxShift, q.CorrMaxShift):
		return fmt.Errorf("stats: merge frame mismatch: corr shifts %v vs %v", p.CorrMaxShift, q.CorrMaxShift)
	case p.CorrSampleTarget != q.CorrSampleTarget:
		return fmt.Errorf("stats: merge frame mismatch: corr sample target %d vs %d", p.CorrSampleTarget, q.CorrSampleTarget)
	case p.TileCorrMaxShift != q.TileCorrMaxShift:
		return fmt.Errorf("stats: merge frame mismatch: tile corr shift %d vs %d", p.TileCorrMaxShift, q.TileCorrMaxShift)
	case p.SkipExtensions != q.SkipExtensions:
		return fmt.Errorf("stats: merge frame mismatch: skip extensions %v vs %v", p.SkipExtensions, q.SkipExtensions)
	}
	return nil
}

// Merge combines two partials over entry-disjoint pieces of one tensor
// into the partial of the combined entries: integer tables sum, sketch
// and corr multisets merge sorted, tile tables union. It is functional
// (neither input is mutated) and a commutative, associative monoid whose
// identity is the empty tensor's partial for the same frame. Both tile
// key sets (base and micro) must be disjoint — a tile with entries in
// both partials cannot be reconstructed from summaries alone; use
// ApplyDelta for that case.
func Merge(a, b *Partial) (*Partial, error) {
	if err := a.frameEqual(b); err != nil {
		return nil, err
	}
	n := len(a.Dims)
	out := &Partial{
		Dims:             a.Dims,
		TileDims:         a.TileDims,
		Order:            a.Order,
		MicroDims:        a.MicroDims,
		CorrAxes:         a.CorrAxes,
		CorrMaxShift:     a.CorrMaxShift,
		CorrSampleTarget: a.CorrSampleTarget,
		TileCorrMaxShift: a.TileCorrMaxShift,
		SkipExtensions:   a.SkipExtensions,
		NNZ:              a.NNZ + b.NNZ,
	}

	var err error
	out.TileKeys, out.TileNNZ, out.TileFP, out.TileFibers, err =
		mergeTables(a.TileKeys, a.TileNNZ, a.TileFP, a.TileFibers, b.TileKeys, b.TileNNZ, b.TileFP, b.TileFibers)
	if err != nil {
		return nil, fmt.Errorf("stats: merge base tables: %w", err)
	}
	out.MicroKeys, out.MicroNNZ, out.MicroFP, _, err =
		mergeTables(a.MicroKeys, a.MicroNNZ, a.MicroFP, nil, b.MicroKeys, b.MicroNNZ, b.MicroFP, nil)
	if err != nil {
		return nil, fmt.Errorf("stats: merge micro tables: %w", err)
	}

	if !a.SkipExtensions {
		out.ElemCounts = make([][]int32, n)
		out.Sketches = make([][]uint64, n)
		for ax := 0; ax < n; ax++ {
			cnt := make([]int32, len(a.ElemCounts[ax]))
			copy(cnt, a.ElemCounts[ax])
			for v, c := range b.ElemCounts[ax] {
				cnt[v] += c
			}
			out.ElemCounts[ax] = cnt
			out.Sketches[ax] = mergeSortedBounded(a.Sketches[ax], b.Sketches[ax], sketchSize)
		}
	}

	out.CorrOff = make([][]int32, len(a.CorrAxes))
	out.CorrRest = make([][]uint64, len(a.CorrAxes))
	for i := range a.CorrAxes {
		out.CorrOff[i], out.CorrRest[i] = mergeCorrAccum(a.CorrOff[i], a.CorrRest[i], b.CorrOff[i], b.CorrRest[i])
	}
	return out, nil
}

// mergeTables unions two key-ascending tile tables, erroring on a key
// present in both. fibers may be nil on both sides (micro tables).
func mergeTables(ka []uint64, na, fa []int32, fba [][]int32, kb []uint64, nb, fb []int32, fbb [][]int32) ([]uint64, []int32, []int32, [][]int32, error) {
	total := len(ka) + len(kb)
	keys := make([]uint64, 0, total)
	nnz := make([]int32, 0, total)
	fp := make([]int32, 0, total)
	var fib [][]int32
	if fba != nil {
		fib = make([][]int32, len(fba))
		back := make([]int32, len(fba)*total)
		for l := range fib {
			fib[l] = back[l*total : l*total : (l+1)*total]
		}
	}
	take := func(k []uint64, nz, f []int32, fbs [][]int32, i int) {
		keys = append(keys, k[i])
		nnz = append(nnz, nz[i])
		fp = append(fp, f[i])
		for l := range fib {
			fib[l] = append(fib[l], fbs[l][i])
		}
	}
	i, j := 0, 0
	for i < len(ka) && j < len(kb) {
		switch {
		case ka[i] < kb[j]:
			take(ka, na, fa, fba, i)
			i++
		case ka[i] > kb[j]:
			take(kb, nb, fb, fbb, j)
			j++
		default:
			return nil, nil, nil, nil, fmt.Errorf("tile key %#x present in both partials (split tile — partition on tile boundaries or use ApplyDelta)", ka[i])
		}
	}
	for ; i < len(ka); i++ {
		take(ka, na, fa, fba, i)
	}
	for ; j < len(kb); j++ {
		take(kb, nb, fb, fbb, j)
	}
	return keys, nnz, fp, fib, nil
}

// mergeSortedBounded merges two sorted multisets keeping the k smallest
// values (duplicates retained) — the bottom-k sketch merge in multiset
// form.
func mergeSortedBounded(a, b []uint64, k int) []uint64 {
	m := len(a) + len(b)
	if m > k {
		m = k
	}
	out := make([]uint64, 0, m)
	i, j := 0, 0
	for len(out) < k && (i < len(a) || j < len(b)) {
		if j >= len(b) || (i < len(a) && a[i] <= b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return out
}

// mergeCorrAccum merges two per-position sorted rest-key multisets.
func mergeCorrAccum(offA []int32, flatA []uint64, offB []int32, flatB []uint64) ([]int32, []uint64) {
	dim := len(offA) - 1
	off := make([]int32, dim+1)
	flat := make([]uint64, len(flatA)+len(flatB))
	w := int32(0)
	for k := 0; k < dim; k++ {
		la := flatA[offA[k]:offA[k+1]]
		lb := flatB[offB[k]:offB[k+1]]
		i, j := 0, 0
		for i < len(la) || j < len(lb) {
			if j >= len(lb) || (i < len(la) && la[i] <= lb[j]) {
				flat[w] = la[i]
				i++
			} else {
				flat[w] = lb[j]
				j++
			}
			w++
		}
		off[k+1] = w
	}
	return off, flat
}

// Validate checks the cross-field invariants every consumer of a Partial
// assumes — arities, key ordering, offset monotonicity, entry-count
// conservation — so a decoded artifact is safe to Merge and Finalize.
func (p *Partial) Validate() error {
	n := len(p.Dims)
	if n == 0 {
		return fmt.Errorf("stats: partial has no dimensions")
	}
	if len(p.TileDims) != n || len(p.Order) != n || len(p.MicroDims) != n {
		return fmt.Errorf("stats: partial arity mismatch: %d dims, %d tile dims, %d order, %d micro dims",
			n, len(p.TileDims), len(p.Order), len(p.MicroDims))
	}
	seen := make([]bool, n)
	for _, a := range p.Order {
		if a < 0 || a >= n || seen[a] {
			return fmt.Errorf("stats: partial order %v is not a permutation of 0..%d", p.Order, n-1)
		}
		seen[a] = true
	}
	for a := 0; a < n; a++ {
		if p.Dims[a] < 0 || p.TileDims[a] < 1 || p.MicroDims[a] < 1 {
			return fmt.Errorf("stats: partial axis %d: dim %d, tile %d, micro %d", a, p.Dims[a], p.TileDims[a], p.MicroDims[a])
		}
	}
	if len(p.CorrMaxShift) != len(p.CorrAxes) || len(p.CorrOff) != len(p.CorrAxes) || len(p.CorrRest) != len(p.CorrAxes) {
		return fmt.Errorf("stats: partial corr tables: %d axes, %d shifts, %d offsets, %d rests",
			len(p.CorrAxes), len(p.CorrMaxShift), len(p.CorrOff), len(p.CorrRest))
	}
	for i, ax := range p.CorrAxes {
		if ax < 0 || ax >= n {
			return fmt.Errorf("stats: partial corr axis %d out of range", ax)
		}
		if len(p.CorrOff[i]) != p.Dims[ax]+1 {
			return fmt.Errorf("stats: partial corr axis %d: %d offsets for dim %d", ax, len(p.CorrOff[i]), p.Dims[ax])
		}
		if off := p.CorrOff[i]; len(off) > 0 {
			if off[0] != 0 || int(off[len(off)-1]) != len(p.CorrRest[i]) {
				return fmt.Errorf("stats: partial corr axis %d: offsets span [%d,%d] over %d keys",
					ax, off[0], off[len(off)-1], len(p.CorrRest[i]))
			}
			for k := 1; k < len(off); k++ {
				if off[k] < off[k-1] {
					return fmt.Errorf("stats: partial corr axis %d: offsets decrease at %d", ax, k)
				}
			}
		}
	}
	if p.SkipExtensions {
		if p.ElemCounts != nil || p.Sketches != nil {
			return fmt.Errorf("stats: partial carries extension tables despite SkipExtensions")
		}
	} else {
		if len(p.ElemCounts) != n || len(p.Sketches) != n {
			return fmt.Errorf("stats: partial extension tables: %d counts, %d sketches for order %d",
				len(p.ElemCounts), len(p.Sketches), n)
		}
		for a := 0; a < n; a++ {
			if len(p.ElemCounts[a]) != p.Dims[a] {
				return fmt.Errorf("stats: partial elem counts axis %d: %d for dim %d", a, len(p.ElemCounts[a]), p.Dims[a])
			}
			if len(p.Sketches[a]) > sketchSize {
				return fmt.Errorf("stats: partial sketch axis %d holds %d > %d hashes", a, len(p.Sketches[a]), sketchSize)
			}
			if !slices.IsSorted(p.Sketches[a]) {
				return fmt.Errorf("stats: partial sketch axis %d is not sorted", a)
			}
		}
	}
	checkTable := func(what string, keys []uint64, nnz, fp []int32, fibers [][]int32) error {
		if len(nnz) != len(keys) || len(fp) != len(keys) {
			return fmt.Errorf("stats: partial %s table: %d keys, %d nnz, %d footprints", what, len(keys), len(nnz), len(fp))
		}
		total := 0
		for i, k := range keys {
			if i > 0 && keys[i-1] >= k {
				return fmt.Errorf("stats: partial %s keys not strictly ascending at %d", what, i)
			}
			if nnz[i] < 1 || fp[i] < 1 {
				return fmt.Errorf("stats: partial %s tile %#x: nnz %d, footprint %d", what, k, nnz[i], fp[i])
			}
			total += int(nnz[i])
		}
		if total != p.NNZ {
			return fmt.Errorf("stats: partial %s table covers %d entries, NNZ says %d", what, total, p.NNZ)
		}
		if fibers != nil {
			if len(fibers) != n {
				return fmt.Errorf("stats: partial %s fibers: %d levels for order %d", what, len(fibers), n)
			}
			for l := range fibers {
				if len(fibers[l]) != len(keys) {
					return fmt.Errorf("stats: partial %s fibers level %d: %d for %d tiles", what, l, len(fibers[l]), len(keys))
				}
			}
		}
		return nil
	}
	if err := checkTable("base", p.TileKeys, p.TileNNZ, p.TileFP, p.TileFibers); err != nil {
		return err
	}
	return checkTable("micro", p.MicroKeys, p.MicroNNZ, p.MicroFP, nil)
}

// Finalize normalizes the accumulators into the Stats bundle
// CollectFromTiled computes, byte-identically: occupancy probabilities
// and fiber densities as ratios of the merged integer tables, sketches
// deduplicated into their set form, corr curves replayed over the merged
// multisets by the same plan the gathers used.
func (p *Partial) Finalize() (*Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Dims)
	outerDims := make([]int, n)
	for a := range outerDims {
		outerDims[a] = (p.Dims[a] + p.TileDims[a] - 1) / p.TileDims[a]
	}
	s := &Stats{
		Dims:         append([]int(nil), p.Dims...),
		BaseTileDims: append([]int(nil), p.TileDims...),
		Order:        append([]int(nil), p.Order...),
		NNZ:          p.NNZ,
		NumTiles:     len(p.TileKeys),
		Corrs:        make(map[int][]float64),
	}

	totalFP := 0
	for _, fp := range p.TileFP {
		totalFP += int(fp)
		if int(fp) > s.MaxTile {
			s.MaxTile = int(fp)
		}
	}
	if s.NumTiles > 0 {
		s.SizeTile = float64(totalFP) / float64(s.NumTiles)
	}

	// PrTileIdx: the outer CSF's level-l fiber count is the number of
	// distinct level-order coordinate prefixes of length l+1 — countable
	// from the sorted level-order re-packing of the tile keys without
	// building the CSF.
	lk := make([]uint64, len(p.TileKeys))
	oc := make([]int, n)
	for i, k := range p.TileKeys {
		tiling.UnkeyInto(oc, k)
		var ord uint64
		for _, ax := range p.Order {
			ord = ord<<tiling.KeyShift | uint64(oc[ax])
		}
		lk[i] = ord
	}
	slices.Sort(lk)
	outerFibers := make([]int, n)
	for l := 0; l < n; l++ {
		shift := uint(tiling.KeyShift * (n - 1 - l))
		cnt := 0
		var prev uint64
		for i, k := range lk {
			if pre := k >> shift; i == 0 || pre != prev {
				cnt++
				prev = pre
			}
		}
		outerFibers[l] = cnt
	}
	s.PrTileIdx = make([]float64, n)
	for l := 0; l < n; l++ {
		dim := outerDims[p.Order[l]]
		parents := 1
		if l > 0 {
			parents = outerFibers[l-1]
		}
		if parents == 0 || dim == 0 {
			s.PrTileIdx[l] = 0
			continue
		}
		s.PrTileIdx[l] = float64(outerFibers[l]) / (float64(parents) * float64(dim))
	}

	// ProbIndex: level-conditional fiber densities from the summed
	// per-tile fiber counts.
	fiberTotals := make([]int, n)
	for l := 0; l < n; l++ {
		for _, f := range p.TileFibers[l] {
			fiberTotals[l] += int(f)
		}
	}
	s.ProbIndex = make([]float64, n)
	for l := 0; l < n; l++ {
		parents := len(p.TileKeys)
		if l > 0 {
			parents = fiberTotals[l-1]
		}
		if parents == 0 {
			s.ProbIndex[l] = 0
			continue
		}
		s.ProbIndex[l] = float64(fiberTotals[l]) / (float64(parents) * float64(p.TileDims[p.Order[l]]))
	}

	// Outer-slice occupancy and its shift correlations.
	s.occupancy = make([][]bool, n)
	for ax := 0; ax < n; ax++ {
		s.occupancy[ax] = make([]bool, outerDims[ax])
	}
	for _, k := range p.TileKeys {
		tiling.UnkeyInto(oc, k)
		for ax, c := range oc {
			s.occupancy[ax][c] = true
		}
	}
	s.TileCorrs = make([][]float64, n)
	for ax := 0; ax < n; ax++ {
		s.TileCorrs[ax] = tileCorrs(s.occupancy[ax], p.TileCorrMaxShift)
	}

	if !p.SkipExtensions {
		s.ElemCounts = p.ElemCounts
		s.PairSketch = make([][]uint64, n)
		for ax := 0; ax < n; ax++ {
			s.PairSketch[ax] = dedupSorted(append([]uint64(nil), p.Sketches[ax]...))
		}
	}

	for i, ax := range p.CorrAxes {
		pl := newCorrPlan(p.Dims[ax], p.CorrMaxShift[i], p.CorrSampleTarget)
		s.Corrs[ax] = pl.finalize(p.CorrOff[i], p.CorrRest[i])
	}

	microFP := 0
	for _, fp := range p.MicroFP {
		microFP += int(fp)
	}
	microOuter := make([]int, n)
	for a := range microOuter {
		microOuter[a] = (p.Dims[a] + p.MicroDims[a] - 1) / p.MicroDims[a]
	}
	fpScale := 1.0
	if microFP > 0 && totalFP > 0 {
		fpScale = float64(totalFP) / float64(microFP)
	}
	s.micro = &microSummary{
		dims:      s.Dims,
		microDims: append([]int(nil), p.MicroDims...),
		outerDims: microOuter,
		keys:      p.MicroKeys,
		nnz:       p.MicroNNZ,
		footprint: p.MicroFP,
		fpScale:   fpScale,
	}
	return s, nil
}
