package optimizer

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/gen"
	"d2t2/internal/model"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// buffer sized for a 32x32 dense tile.
func buf32() int { return tiling.DenseFootprintWords([]int{32, 32}) }

func gustavsonInputs(seed int64, build func(r *rand.Rand) *tensor.COO) map[string]*tensor.COO {
	r := rand.New(rand.NewSource(seed))
	a := build(r)
	return map[string]*tensor.COO{"A": a, "B": a.Transpose()}
}

func TestOptimizeBasics(t *testing.T) {
	inputs := gustavsonInputs(31, func(r *rand.Rand) *tensor.COO {
		return gen.PowerLawGraph(r, 512, 4000, 1.7)
	})
	e := einsum.SpMSpMIKJ()
	res, err := Optimize(e, inputs, Options{BufferWords: buf32()})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseTile != 32 {
		t.Fatalf("base tile = %d, want 32", res.BaseTile)
	}
	if len(res.Candidates) < 1 || len(res.Candidates) > 6 {
		t.Fatalf("candidates = %d, want 1..6 RFs (unfit shapes are skipped)", len(res.Candidates))
	}
	for _, ix := range e.Order {
		if res.Config[ix] < 1 {
			t.Fatalf("config misses %q: %v", ix, res.Config)
		}
	}
	if res.Predicted == nil || res.Predicted.Total() <= 0 {
		t.Fatal("no prediction for final config")
	}
	if res.Stats["A"] == nil || res.BaseTiling["B"] == nil {
		t.Fatal("stats/base tiling not returned")
	}
}

// TestOptimizedConfigFits: the defining guarantee of D2T2 — every input
// tile of the final configuration actually fits the buffer.
func TestOptimizedConfigFits(t *testing.T) {
	cases := []func(r *rand.Rand) *tensor.COO{
		func(r *rand.Rand) *tensor.COO { return gen.Banded(r, 512, 8, 8) },
		func(r *rand.Rand) *tensor.COO { return gen.PowerLawGraph(r, 512, 5000, 1.8) },
		func(r *rand.Rand) *tensor.COO { return gen.UniformRandom(r, 512, 512, 3000) },
		func(r *rand.Rand) *tensor.COO { return gen.Grid5Point(r, 4096) },
	}
	e := einsum.SpMSpMIKJ()
	for ci, build := range cases {
		inputs := gustavsonInputs(int64(40+ci), build)
		res, err := Optimize(e, inputs, Options{BufferWords: buf32()})
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		tiled, err := TileAll(e, inputs, res.Config)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for name, tt := range tiled {
			if tt.MaxFootprint > buf32() {
				t.Fatalf("case %d: %s max tile %d exceeds buffer %d (config %v)",
					ci, name, tt.MaxFootprint, buf32(), res.Config)
			}
		}
	}
}

// TestOptimizeReducesTrafficVsConservative: the headline property — the
// optimized configuration's measured traffic beats the conservative
// square baseline (or at worst matches it closely).
func TestOptimizeReducesTrafficVsConservative(t *testing.T) {
	cases := map[string]func(r *rand.Rand) *tensor.COO{
		"grid":     func(r *rand.Rand) *tensor.COO { return gen.Grid5Point(r, 4096) },
		"powerlaw": func(r *rand.Rand) *tensor.COO { return gen.PowerLawGraph(r, 512, 4000, 1.8) },
		"banded":   func(r *rand.Rand) *tensor.COO { return gen.Banded(r, 512, 6, 8) },
	}
	e := einsum.SpMSpMIKJ()
	for name, build := range cases {
		inputs := gustavsonInputs(51, build)
		res, err := Optimize(e, inputs, Options{BufferWords: buf32()})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		opt, err := TileAll(e, inputs, res.Config)
		if err != nil {
			t.Fatal(err)
		}
		optRes, err := exec.Measure(e, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		baseRes, err := exec.Measure(e, res.BaseTiling, nil)
		if err != nil {
			t.Fatal(err)
		}
		if float64(optRes.Total()) > 1.10*float64(baseRes.Total()) {
			t.Fatalf("%s: optimized traffic %d worse than conservative %d (config %v)",
				name, optRes.Total(), baseRes.Total(), res.Config)
		}
	}
}

func TestOptionsVariants(t *testing.T) {
	inputs := gustavsonInputs(61, func(r *rand.Rand) *tensor.COO {
		return gen.Banded(r, 512, 6, 8)
	})
	e := einsum.SpMSpMIKJ()

	// SkipResize keeps the area at the base tile's.
	res, err := Optimize(e, inputs, Options{BufferWords: buf32(), SkipResize: true})
	if err != nil {
		t.Fatal(err)
	}
	area := res.Config["i"] * res.Config["k"]
	if area > 2*32*32 {
		t.Fatalf("SkipResize grew the area: %v", res.Config)
	}

	// CorrsOnly picks square for banded (high reuse) data.
	resC, err := Optimize(e, inputs, Options{BufferWords: buf32(), CorrsOnly: true, SkipResize: true})
	if err != nil {
		t.Fatal(err)
	}
	if resC.RF != 1 {
		t.Fatalf("CorrsOnly on banded data chose RF=%v, want square", resC.RF)
	}

	// CorrsOnly picks outer-product for uncorrelated data.
	inputsU := gustavsonInputs(62, func(r *rand.Rand) *tensor.COO {
		return gen.UniformRandom(r, 512, 512, 2000)
	})
	resU, err := Optimize(e, inputsU, Options{BufferWords: buf32(), CorrsOnly: true, SkipResize: true})
	if err != nil {
		t.Fatal(err)
	}
	if resU.RF != 8 {
		t.Fatalf("CorrsOnly on uniform data chose RF=%v, want outer-product", resU.RF)
	}

	// DisableCorrs still optimizes.
	if _, err := Optimize(e, inputs, Options{BufferWords: buf32(), DisableCorrs: true}); err != nil {
		t.Fatal(err)
	}

	// Analytic mode still optimizes.
	if _, err := Optimize(e, inputs, Options{BufferWords: buf32(), Mode: model.ModeAnalytic}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeErrors(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	if _, err := Optimize(e, nil, Options{BufferWords: 0}); err == nil {
		t.Fatal("zero buffer accepted")
	}
	if _, err := Optimize(e, map[string]*tensor.COO{}, Options{BufferWords: 1000}); err == nil {
		t.Fatal("missing inputs accepted")
	}
}

func TestOptimizeTTM(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	c := gen.RandomTensor3(r, 128, 96, 80, 6000, [3]float64{0, 0, 0.4})
	b := gen.UniformRandom(r, 96, 80, 800)
	e := einsum.TTM()
	buffer := tiling.DenseFootprintWords([]int{16, 16, 16})
	res, err := Optimize(e, map[string]*tensor.COO{"C": c, "B": b}, Options{BufferWords: buffer})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseTile != 16 {
		t.Fatalf("TTM base tile = %d, want 16", res.BaseTile)
	}
	tiled, err := TileAll(e, map[string]*tensor.COO{"C": c, "B": b}, res.Config)
	if err != nil {
		t.Fatal(err)
	}
	for name, tt := range tiled {
		if tt.MaxFootprint > buffer {
			t.Fatalf("TTM %s tile overflows: %d > %d", name, tt.MaxFootprint, buffer)
		}
	}
	if _, err := exec.Measure(e, tiled, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTileAllErrors(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	if _, err := TileAll(e, map[string]*tensor.COO{}, model.Config{"i": 2, "k": 2, "j": 2}); err == nil {
		t.Fatal("missing input accepted")
	}
	a := tensor.New(4, 4)
	if _, err := TileAll(e, map[string]*tensor.COO{"A": a, "B": a}, model.Config{"i": 2}); err == nil {
		t.Fatal("incomplete config accepted")
	}
}

// TestQuickFitGuarantee: for randomized structures and buffer sizes, the
// final configuration's actual max tile never exceeds the buffer — the
// defining guarantee of the scheme (property-based version of
// TestOptimizedConfigFits).
func TestQuickFitGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a *tensor.COO
		switch seed % 4 {
		case 0:
			a = gen.Banded(r, 256+r.Intn(256), 2+r.Intn(8), 4+r.Intn(6))
		case 1:
			a = gen.PowerLawGraph(r, 256+r.Intn(256), 1500+r.Intn(2000), 1.4+r.Float64())
		case 2:
			a = gen.UniformRandom(r, 200+r.Intn(300), 200+r.Intn(300), 1000+r.Intn(2000))
		default:
			a = gen.BipartiteBlocks(r, 300+r.Intn(200), 20+r.Intn(30), 4+r.Intn(4), 4+r.Intn(5))
		}
		side := []int{16, 32, 64}[r.Intn(3)]
		buffer := tiling.DenseFootprintWords([]int{side, side})
		inputs := map[string]*tensor.COO{"A": a, "B": a.Transpose()}
		e := einsum.SpMSpMIKJ()
		res, err := Optimize(e, inputs, Options{BufferWords: buffer})
		if err != nil {
			return false
		}
		tiled, err := TileAll(e, inputs, res.Config)
		if err != nil {
			return false
		}
		for _, tt := range tiled {
			if tt.MaxFootprint > buffer {
				t.Logf("seed %d: config %v max %d > buffer %d", seed, res.Config, tt.MaxFootprint, buffer)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectDataflow(t *testing.T) {
	inputs := gustavsonInputs(91, func(r *rand.Rand) *tensor.COO {
		return gen.Banded(r, 256, 6, 8)
	})
	e := einsum.SpMSpMIKJ()
	best, cands, err := SelectDataflow(e, inputs,
		[][]string{{"i", "k", "j"}, {"i", "j", "k"}, {"k", "i", "j"}},
		Options{BufferWords: buf32()})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	for _, c := range cands {
		if c.Predicted <= 0 || c.Result == nil {
			t.Fatalf("bad candidate %+v", c)
		}
		if best.Predicted.Total() > c.Predicted {
			t.Fatalf("best %v worse than candidate %v", best.Predicted.Total(), c.Predicted)
		}
	}
	// Each candidate executes correctly under its own order.
	for _, c := range cands {
		variant, err := e.WithOrder(c.Order)
		if err != nil {
			t.Fatal(err)
		}
		tiled, err := TileAll(variant, inputs, c.Result.Config)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Measure(variant, tiled, nil); err != nil {
			t.Fatalf("order %v fails to execute: %v", c.Order, err)
		}
	}
}

func TestOrderPermutations(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	perms := e.OrderPermutations()
	if len(perms) != 6 {
		t.Fatalf("3 indices should give 6 permutations, got %d", len(perms))
	}
	seen := map[string]bool{}
	for _, p := range perms {
		key := fmt.Sprint(p)
		if seen[key] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[key] = true
	}
	if _, err := e.WithOrder([]string{"i", "k"}); err == nil {
		t.Fatal("incomplete order accepted")
	}
}

// TestOptimizeFusedKernel: the paper supports "possibly fused" kernels;
// the pipeline must run end-to-end on a fused add-multiply expression
// (the model falls back to mean-field paths for multi-summand RHS).
func TestOptimizeFusedKernel(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	a := gen.Banded(r, 256, 4, 5)
	b := gen.UniformRandom(r, 256, 256, 800)
	c := gen.Banded(r, 256, 8, 6)
	e := einsum.MustParse("D(i,j) = (A(i,j) + B(i,j)) * C(i,j) | order: i,j")
	inputs := map[string]*tensor.COO{"A": a, "B": b, "C": c}
	buffer := tiling.DenseFootprintWords([]int{32, 32})
	res, err := Optimize(e, inputs, Options{BufferWords: buffer})
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := TileAll(e, inputs, res.Config)
	if err != nil {
		t.Fatal(err)
	}
	for name, tt := range tiled {
		if tt.MaxFootprint > buffer {
			t.Fatalf("%s tile overflows: %d > %d", name, tt.MaxFootprint, buffer)
		}
	}
	m, err := exec.Measure(e, tiled, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() <= 0 {
		t.Fatal("no traffic measured")
	}
}

// TestOptimizeSDDMM runs the three-factor sampled-matmul kernel through
// the pipeline.
func TestOptimizeSDDMM(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	s := gen.UniformRandom(r, 256, 256, 500)
	a := gen.Banded(r, 256, 5, 6)
	b := gen.Banded(r, 256, 5, 6)
	e := einsum.SDDMM()
	inputs := map[string]*tensor.COO{"S": s, "A": a, "B": b}
	buffer := tiling.DenseFootprintWords([]int{32, 32})
	res, err := Optimize(e, inputs, Options{BufferWords: buffer})
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := TileAll(e, inputs, res.Config)
	if err != nil {
		t.Fatal(err)
	}
	m, err := exec.Measure(e, tiled, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The mask bounds the output: every output coordinate needs an S
	// entry, so output nnz per write cannot exceed the mask's total.
	if m.OutputNNZ > int64(s.NNZ())*int64(res.Config["k"]+1) {
		t.Fatalf("SDDMM output nnz %d implausible vs mask %d", m.OutputNNZ, s.NNZ())
	}
}
