// Risk-aware size optimization (ROADMAP item 5, DESIGN.md §18).
//
// The conservative pipeline sizes every tile for the largest footprint
// the model can construct (Eq. 22's MaxTile), which leaves most of the
// buffer idle on skewed tensors. Under a positive Options.OverflowTarget
// the optimizer instead picks sizes from the tile-footprint distribution
// the model already materializes per candidate shape
// (stats.ShapeStats.GroupFP, memoized per snapped config): the Eq. 22
// seed uses the (1−target) footprint quantile, admission checks the
// predicted per-operand overflow rate against the target, and every
// candidate is costed with overflow-adjusted traffic — the model-side
// mirror of exec's OverflowExtra×(footprint−buffer) per-fetch charge —
// so the sweep's first-strict-minimum rule carries over unchanged.
package optimizer

import (
	"context"
	"fmt"
	"math"
	"sort"

	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/model"
	"d2t2/internal/tensor"
)

// RiskReport summarizes a risk-aware sizing decision. It is attached to
// Result.Risk only when OverflowTarget > 0 or a calibration ran.
type RiskReport struct {
	// OverflowTarget / OverflowExtra echo the effective knobs.
	OverflowTarget float64
	OverflowExtra  float64
	// PercentileTile is the (1−target) footprint quantile (words) that
	// replaced MaxTile in the Eq. 22 seed; 0 when resizing was skipped.
	PercentileTile int
	// PredictedOverflowRate is the modeled probability that a tile fetch
	// overflows the buffer at the final config (the max of the
	// fetch-weighted aggregate and the per-operand tile fractions).
	PredictedOverflowRate float64
	// PredictedOverflowWords is the modeled extra traffic (words) from
	// overflow re-streaming at the final config.
	PredictedOverflowWords float64
	// BufferUtilization is the mean fetched-tile footprint over the
	// buffer capacity at the final config (max across operands) — the
	// quantity overbooking exists to raise.
	BufferUtilization float64
	// Calibration holds the measurement-backend comparison when
	// Options.Calibrate was set.
	Calibration *CalibrationReport
}

// CalibrationReport is the outcome of one calibration run: the chosen
// config executed on the measurement backend and compared against the
// (bias-adjusted) prediction.
type CalibrationReport struct {
	// Class is the workload-class key the residual accumulated under.
	Class string
	// PredictedWords is the overflow-adjusted predicted traffic,
	// including the class bias in effect before this run; MeasuredWords
	// the exec-measured total under the same buffer model.
	PredictedWords float64
	MeasuredWords  float64
	// Residual is |measured − predicted| / measured before the bias
	// update — the quantity repeated calibrated optimizes shrink.
	Residual float64
	// BiasAfter is the class bias after folding in this observation.
	BiasAfter float64
	// PredictedOverflowRate / MeasuredOverflowRate compare the modeled
	// overflow probability against the machine's OverflowFetches over
	// InputFetches.
	PredictedOverflowRate float64
	MeasuredOverflowRate  float64
}

// CalibClass is the workload-class key calibration residuals accumulate
// under: kernels with the same einsum structure and evaluation mode
// share one residual bias.
func CalibClass(e *einsum.Expr, mode model.Mode) string {
	if mode == model.ModeAnalytic {
		return e.String() + "|analytic"
	}
	return e.String()
}

// riskEval is the model-side overflow assessment of one config.
type riskEval struct {
	fetchRate float64 // fetch-weighted predicted overflow probability
	tileRate  float64 // max per-operand fraction of overflowing tiles
	premium   float64 // expected extra words from overflow re-streaming
	util      float64 // max per-operand mean footprint / buffer
}

// evalRisk prices cfg's overflow behavior from the footprint
// distribution: per operand, the fraction of tiles above the buffer and
// their summed excess, scaled to fetches via the predicted traffic
// (fetches ≈ predicted words / mean tile footprint, spread uniformly
// over the operand's distinct tiles). The premium mirrors exec's
// OverflowExtra arithmetic: extra × (footprint − buffer) per
// overflowing fetch. Terms accumulate in the kernel's fixed occurrence
// order, so the result is deterministic.
func evalRisk(pred *model.Predictor, e *einsum.Expr, cfg model.Config, p *model.Prediction, o Options) (riskEval, error) {
	var rk riskEval
	budget := float64(o.BufferWords)
	totalFetches := 0.0
	overFetches := 0.0
	for _, ref := range e.Inputs() {
		sh, err := pred.EvalRef(ref, cfg)
		if err != nil {
			return riskEval{}, err
		}
		rate, excess := sh.OverflowStats(budget)
		if rate > rk.tileRate {
			rk.tileRate = rate
		}
		if u := sh.SizeTile / budget; u > rk.util {
			rk.util = u
		}
		if sh.SizeTile <= 0 || sh.NumTiles == 0 {
			continue
		}
		fetches := p.Input[ref.Name] / sh.SizeTile
		totalFetches += fetches
		overFetches += rate * fetches
		rk.premium += o.OverflowExtra * excess * (fetches / float64(sh.NumTiles))
	}
	if totalFetches > 0 {
		rk.fetchRate = overFetches / totalFetches
	}
	return rk, nil
}

// report folds this evaluation into a RiskReport, preserving the
// PercentileTile recorded by the growth seed (prev may be nil).
func (rk riskEval) report(o Options, prev *RiskReport) *RiskReport {
	r := &RiskReport{
		OverflowTarget:         o.OverflowTarget,
		OverflowExtra:          o.OverflowExtra,
		PredictedOverflowRate:  maxF(rk.fetchRate, rk.tileRate),
		PredictedOverflowWords: rk.premium,
		BufferUtilization:      rk.util,
	}
	if prev != nil {
		r.PercentileTile = prev.PercentileTile
		r.Calibration = prev.Calibration
	}
	return r
}

// growRisk is grow's risk-aware variant: the Eq. 22 seed uses the
// (1−target) footprint quantile instead of the maximum, admission
// requires every operand's predicted overflow rate within the target,
// and the greedy doubling compares overflow-adjusted totals.
func (r *Result) growRisk(ctx context.Context, pred *model.Predictor, upIdx string, o Options) error {
	// Percentile seed: TileFactor = BufferWords / quantile.
	qTile := 0.0
	for _, ref := range r.Expr.Inputs() {
		sh, err := pred.EvalRef(ref, r.Config)
		if err != nil {
			return err
		}
		if q := sh.OverflowQuantile(o.OverflowTarget); q > qTile {
			qTile = q
		}
	}
	r.TileFactor = 1
	if qTile > 0 {
		r.TileFactor = int(float64(o.BufferWords) / qTile)
	}
	if r.TileFactor < 1 {
		r.TileFactor = 1
	}
	r.Risk = &RiskReport{
		OverflowTarget: o.OverflowTarget,
		OverflowExtra:  o.OverflowExtra,
		PercentileTile: int(math.Ceil(qTile)),
	}

	fits := func(cfg model.Config) (bool, error) {
		for _, ref := range r.Expr.Inputs() {
			sh, err := pred.EvalRef(ref, cfg)
			if err != nil {
				return false, err
			}
			if rate, _ := sh.OverflowStats(float64(o.BufferWords)); rate > o.OverflowTarget {
				return false, nil
			}
		}
		return true, nil
	}
	cost := func(cfg model.Config) (float64, error) {
		p, err := pred.Predict(cfg)
		if err != nil {
			return 0, err
		}
		rk, err := evalRisk(pred, r.Expr, cfg, p, o)
		if err != nil {
			return 0, err
		}
		return p.Total() + rk.premium, nil
	}

	// Seed: scale the primary output index by the percentile TileFactor,
	// backing off until the overflow rate is within target.
	for tf := r.TileFactor; tf > 1; tf /= 2 {
		cand := r.Config.Clone()
		cand[upIdx] = r.snapIdx(upIdx, cand[upIdx]*tf)
		ok, err := fits(cand)
		if err != nil {
			return err
		}
		if ok {
			r.Config = cand
			break
		}
	}

	// Greedy doubling, round-robin over all index variables, accepting a
	// doubling when the overflow rate stays within target and the
	// overflow-adjusted total does not regress.
	idxs := append([]string(nil), r.Expr.Order...)
	sort.Strings(idxs)
	cur, err := cost(r.Config)
	if err != nil {
		return err
	}
	for pass := 0; pass < o.MaxGrowthDoublings; pass++ {
		improved := false
		for _, ix := range idxs {
			if err := ctx.Err(); err != nil {
				return err
			}
			cand := r.Config.Clone()
			cand[ix] = r.snapIdx(ix, cand[ix]*2)
			if cand[ix] == r.Config[ix] {
				continue
			}
			ok, err := fits(cand)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			c, err := cost(cand)
			if err != nil {
				return err
			}
			if c <= cur*1.001 {
				r.Config = cand
				cur = c
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return nil
}

// calibrate closes the loop: tile the inputs at the final config, run
// the measurement backend under the same buffer model the candidates
// were costed with, and fold the traffic residual into the calibration
// store (Options.Calibration, or a run-local store when nil).
func (r *Result) calibrate(ctx context.Context, pred *model.Predictor, inputs map[string]*tensor.COO, o Options) error {
	for _, ref := range r.Expr.Inputs() {
		if inputs[ref.Name] == nil {
			return fmt.Errorf("optimizer: calibration requires raw input %q (stats-only precollection cannot be measured)", ref.Name)
		}
	}
	calib := o.Calibration
	if calib == nil {
		calib = model.NewCalibration()
	}
	class := CalibClass(r.Expr, o.Mode)

	rk, err := evalRisk(pred, r.Expr, r.Config, r.Predicted, o)
	if err != nil {
		return err
	}
	// r.Predicted already carries the class bias when Options.Calibration
	// was supplied (the predictor was constructed with it), so the
	// residual below is against the bias-adjusted level.
	predicted := r.Predicted.Total() + rk.premium

	tts, err := TileAllCtx(ctx, r.Expr, inputs, r.Config, o.Workers)
	if err != nil {
		return err
	}
	eo := &exec.Options{Workers: o.Workers}
	if o.OverflowTarget > 0 {
		eo.InputBufferWords = o.BufferWords
		eo.OverflowExtra = o.OverflowExtra
	}
	m, err := exec.MeasureCtx(ctx, r.Expr, tts, eo)
	if err != nil {
		return err
	}
	measured := float64(m.Total())
	measuredRate := 0.0
	if m.InputFetches > 0 {
		measuredRate = float64(m.OverflowFetches) / float64(m.InputFetches)
	}
	residual := 0.0
	if measured > 0 {
		residual = math.Abs(measured-predicted) / measured
	}
	bias := calib.Observe(class, predicted, measured)

	if r.Risk == nil {
		r.Risk = &RiskReport{OverflowTarget: o.OverflowTarget, OverflowExtra: o.OverflowExtra}
	}
	r.Risk.Calibration = &CalibrationReport{
		Class:                 class,
		PredictedWords:        predicted,
		MeasuredWords:         measured,
		Residual:              residual,
		BiasAfter:             bias,
		PredictedOverflowRate: maxF(rk.fetchRate, rk.tileRate),
		MeasuredOverflowRate:  measuredRate,
	}
	return nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
