package optimizer

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/model"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

func cancelFixture(t *testing.T) (map[string]*tensor.COO, int) {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	a := gen.PowerLawGraph(r, 512, 8000, 1.6)
	return map[string]*tensor.COO{"A": a, "B": a.Transpose()},
		tiling.DenseFootprintWords([]int{64, 64})
}

// TestOptimizeCtxPreCancelled pins the fast-fail contract: a dead
// context aborts the pipeline at its first work-item boundary and
// surfaces the context's own error, not a wrapped variant.
func TestOptimizeCtxPreCancelled(t *testing.T) {
	inputs, buffer := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OptimizeCtx(ctx, einsum.SpMSpMIKJ(), inputs, Options{BufferWords: buffer, Workers: 4})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want (nil, context.Canceled), got (%v, %v)", res, err)
	}
}

// TestOptimizeCtxDeadlineAborts runs the cold pipeline against a
// deadline far shorter than the pipeline itself and checks that the
// deadline error propagates out instead of the pipeline running to
// completion.
func TestOptimizeCtxDeadlineAborts(t *testing.T) {
	inputs, buffer := cancelFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := OptimizeCtx(ctx, einsum.SpMSpMIKJ(), inputs, Options{BufferWords: buffer, Workers: 4})
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want (nil, context.DeadlineExceeded), got (%v, %v)", res, err)
	}
}

func TestTileAllCtxPreCancelled(t *testing.T) {
	inputs, _ := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := model.Config{"i": 32, "j": 32, "k": 32}
	tiled, err := TileAllCtx(ctx, einsum.SpMSpMIKJ(), inputs, cfg, 4)
	if tiled != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want (nil, context.Canceled), got (%v, %v)", tiled, err)
	}
}

// TestOptimizeCtxBackgroundMatchesOptimize guards the wrapper contract:
// threading a live context through the pipeline must not perturb the
// result relative to the plain entry point.
func TestOptimizeCtxBackgroundMatchesOptimize(t *testing.T) {
	inputs, buffer := cancelFixture(t)
	opts := Options{BufferWords: buffer, Workers: 4}
	plain, err := Optimize(einsum.SpMSpMIKJ(), inputs, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := OptimizeCtx(context.Background(), einsum.SpMSpMIKJ(), inputs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxed) {
		t.Fatal("OptimizeCtx(Background) differs from Optimize")
	}
}
