package optimizer

import (
	"fmt"

	"d2t2/internal/einsum"
	"d2t2/internal/tensor"
)

// Dataflow selection (extension). The paper assumes the accelerator's
// dataflow order is given and optimizes tiling for it (§2: "we assume
// the user has provided a valid dataflow order"). Since the traffic
// model prices any order, the same machinery can also *choose* the
// order: run the pipeline per candidate and keep the lowest predicted
// traffic. This is the lightweight counterpart of auto-scheduling
// systems (the paper's related work [1, 14]), made cheap by the model.

// DataflowCandidate records one evaluated order.
type DataflowCandidate struct {
	Order     []string
	Result    *Result
	Predicted float64
}

// SelectDataflow runs the D2T2 pipeline for each candidate dataflow
// order (nil = all permutations of the kernel's indices) and returns the
// result with minimal predicted traffic. Statistics are re-collected per
// order because tensor level orders must match the dataflow.
func SelectDataflow(e *einsum.Expr, inputs map[string]*tensor.COO, orders [][]string, opts Options) (*Result, []DataflowCandidate, error) {
	if orders == nil {
		orders = e.OrderPermutations()
	}
	var cands []DataflowCandidate
	bestIdx := -1
	for _, order := range orders {
		variant, err := e.WithOrder(order)
		if err != nil {
			return nil, nil, err
		}
		res, err := Optimize(variant, inputs, opts)
		if err != nil {
			return nil, nil, err
		}
		cands = append(cands, DataflowCandidate{
			Order:     append([]string(nil), order...),
			Result:    res,
			Predicted: res.Predicted.Total(),
		})
		if bestIdx < 0 || cands[len(cands)-1].Predicted < cands[bestIdx].Predicted {
			bestIdx = len(cands) - 1
		}
	}
	if bestIdx < 0 {
		return nil, nil, fmt.Errorf("optimizer: no dataflow candidates")
	}
	return cands[bestIdx].Result, cands, nil
}
