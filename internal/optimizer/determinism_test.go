package optimizer

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/snapshot"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// TestOptimizeWorkersByteIdentical is the cold-pipeline determinism
// gate: the optimizer result, the portable statistics encoding, and the
// retiled snapshot artifacts must be byte-identical between Workers=1
// and Workers=8. Run with -race in CI to double as the parallel-path
// race check.
func TestOptimizeWorkersByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := gen.PowerLawGraph(r, 512, 8000, 1.6)
	inputs := map[string]*tensor.COO{"A": a, "B": a.Transpose()}
	e := einsum.SpMSpMIKJ()
	buffer := tiling.DenseFootprintWords([]int{64, 64})

	run := func(workers int) (*Result, map[string]*tiling.TiledTensor) {
		res, err := Optimize(e, inputs, Options{BufferWords: buffer, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		tiled, err := TileAllWorkers(e, inputs, res.Config, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res, tiled
	}
	res1, tiled1 := run(1)
	res8, tiled8 := run(8)

	// Result equality covers Config, RF, TileFactor, every candidate's
	// prediction (float bit patterns included), and the collected Stats
	// and BaseTiling maps.
	if !reflect.DeepEqual(res1, res8) {
		t.Fatal("optimizer results differ between Workers=1 and Workers=8")
	}

	// Portable statistics bytes via the snapshot codec.
	for name, st := range res1.Stats {
		b1, err := snapshot.EncodeBytes(&snapshot.Artifact{Stats: st})
		if err != nil {
			t.Fatal(err)
		}
		b8, err := snapshot.EncodeBytes(&snapshot.Artifact{Stats: res8.Stats[name]})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b8) {
			t.Fatalf("portable stats bytes for %q differ between worker counts", name)
		}
	}

	// Retiled snapshot artifacts.
	for name, tt := range tiled1 {
		b1, err := snapshot.EncodeBytes(&snapshot.Artifact{Tiled: tt})
		if err != nil {
			t.Fatal(err)
		}
		b8, err := snapshot.EncodeBytes(&snapshot.Artifact{Tiled: tiled8[name]})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b8) {
			t.Fatalf("retiled snapshot bytes for %q differ between worker counts", name)
		}
	}
}

// TestOptimizeRepeatRunsByteIdentical guards against run-to-run
// nondeterminism at a fixed worker count (map iteration leaking into an
// encoding, for example): two independent parallel runs must produce
// identical portable bytes.
func TestOptimizeRepeatRunsByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := gen.UniformRandom(r, 300, 300, 5000)
	inputs := map[string]*tensor.COO{"A": a, "B": a.Transpose()}
	e := einsum.SpMSpMIKJ()
	buffer := tiling.DenseFootprintWords([]int{64, 64})

	encode := func() []byte {
		res, err := Optimize(e, inputs, Options{BufferWords: buffer, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		var buf []byte
		for _, name := range []string{"A", "B"} {
			b, err := snapshot.EncodeBytes(&snapshot.Artifact{Stats: res.Stats[name]})
			if err != nil {
				t.Fatal(err)
			}
			buf = append(buf, b...)
		}
		return buf
	}
	if !bytes.Equal(encode(), encode()) {
		t.Fatal("repeated parallel runs produced different portable stats bytes")
	}
}
