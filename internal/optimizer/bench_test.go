package optimizer

import (
	"fmt"
	"math/rand"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// BenchmarkColdOptimize measures the full cold pipeline — conservative
// tiling, statistics collection, shape sweep, size growth — at several
// worker counts.
func BenchmarkColdOptimize(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := gen.PowerLawGraph(r, 2048, 200_000, 1.7)
	inputs := map[string]*tensor.COO{"A": a, "B": a.Transpose()}
	e := einsum.SpMSpMIKJ()
	buffer := tiling.DenseFootprintWords([]int{64, 64})
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Optimize(e, inputs, Options{BufferWords: buffer, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Config) == 0 {
					b.Fatal("empty config")
				}
			}
		})
	}
}
