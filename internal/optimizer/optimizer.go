// Package optimizer implements D2T2's tiling scheme optimizer (paper
// §5.2) — the top of the toolchain in Figure 1. Given a kernel, its input
// tensors and a buffer budget it:
//
//  1. Tiles the inputs with the Conservative square configuration.
//  2. Collects the Tile Statistics (package stats).
//  3. Sweeps tile *shapes* at constant area — the reorder-factor (RF)
//     family {i: T·RF, k: T/RF} of Eq. 21 — and picks the shape whose
//     predicted traffic (package model) is minimal.
//  4. Conservatively grows tile *size*: starting from the TileFactor
//     bound of Eq. 22 (buffer / max occupied tile), output-index tile
//     dimensions are doubled greedily while every input's largest actual
//     tile still fits in the buffer.
//
// The result is a static, non-uniform rectangular configuration that is
// guaranteed to fit the input buffer — no specialized hardware needed.
package optimizer

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"d2t2/internal/einsum"
	"d2t2/internal/model"
	"d2t2/internal/par"
	"d2t2/internal/stats"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// Options configures the optimizer. Zero values select defaults.
type Options struct {
	// BufferWords is the accelerator input-buffer capacity in 4-byte
	// words. Required.
	BufferWords int
	// RFs are the candidate reorder factors (default ¼, ½, 1, 2, 4, 8).
	// Values > 1 grow the primary output index and shrink the contracted
	// index; values < 1 do the opposite.
	RFs []float64
	// Mode selects the statistics evaluation mode (default ModeExact).
	Mode model.Mode
	// DisableCorrs turns off the Corrs output-reuse discount (Fig. 9
	// ablation "w/o Correlations").
	DisableCorrs bool
	// CorrsOnly picks the tile shape from the Corrs sum alone — square
	// when ΣCorrs ≥ CorrsThreshold, outer-product-like otherwise (Fig. 9
	// ablation "Using Correlations only", threshold from Fig. 8).
	CorrsOnly bool
	// CorrsThreshold is the Fig. 8 decision boundary (default 1.6).
	CorrsThreshold float64
	// DisableRefinement turns off the model's exact cross-operand
	// input-traffic computation, leaving the paper's pure mean-field
	// estimates (ablated in experiment ext-refine).
	DisableRefinement bool
	// SkipResize stops after shape optimization (no TileFactor growth).
	SkipResize bool
	// MicroDiv is forwarded to the statistics collector (default 8).
	MicroDiv int
	// BaseTile overrides the conservative square tile dimension used for
	// the initial tiling (0 = derive from BufferWords). Used by the §6.7
	// packed-tiles study, which varies the initial tile size.
	BaseTile int
	// MaxGrowthDoublings bounds the greedy size growth (default 10).
	MaxGrowthDoublings int
	// Precollected supplies per-input statistics collected earlier (e.g.
	// restored from a d2t2d snapshot artifact). An entry must have been
	// collected at this optimization's conservative base tile and the
	// kernel's level order for its input — mismatches are an error.
	// Matching inputs skip the tile-and-collect phase entirely;
	// Result.BaseTiling then has no entry for them.
	Precollected map[string]*stats.Stats
	// Workers bounds the worker pool for the cold pipeline: per-input
	// tiling + statistics collection run concurrently, and the RF shape
	// sweep evaluates candidates in parallel against the read-only
	// predictor (0 = all cores). Results are byte-identical at any
	// worker count.
	Workers int
	// OverflowTarget enables risk-aware sizing (Tailors-style
	// overbooking, DESIGN.md §18): the acceptable predicted probability
	// that a tile fetched by the measurement machine overflows the input
	// buffer. 0 — the default — keeps the worst-case conservative
	// pipeline, byte-identical to previous releases. Positive targets
	// replace the Eq. 22 MaxTile seed with the (1−target) footprint
	// quantile and cost candidates with overflow-adjusted traffic. Must
	// be in [0, 1).
	OverflowTarget float64
	// OverflowExtra is the extra traffic charged per excess word on each
	// overflowing fetch when costing overbooked candidates — the same
	// coefficient exec.Options.OverflowExtra applies when measuring
	// (default 1.0: the excess crosses memory twice). Must be >= 0.
	OverflowExtra float64
	// Calibrate runs the measurement backend on the chosen config after
	// optimization, compares measured against predicted traffic, and
	// folds the residual into Calibration (a per-call store when nil).
	// Requires raw input tensors (stats-only precollection cannot be
	// measured). The outcome lands in Result.Risk.Calibration.
	Calibrate bool
	// Calibration is the per-workload-class residual-bias store
	// calibration runs feed and predictions consult. Nil leaves the raw
	// model; d2t2.Session supplies a session-lifetime store so repeated
	// calibrated optimizes converge.
	Calibration *model.Calibration
}

func (o Options) withDefaults() Options {
	if o.RFs == nil {
		o.RFs = []float64{0.25, 0.5, 1, 2, 4, 8}
	}
	//d2t2:ignore floatdeterminism zero-value sentinel for an unset Options field, not a computed float
	if o.CorrsThreshold == 0 {
		o.CorrsThreshold = 1.6
	}
	if o.MicroDiv == 0 {
		o.MicroDiv = 8
	}
	if o.MaxGrowthDoublings == 0 {
		o.MaxGrowthDoublings = 10
	}
	//d2t2:ignore floatdeterminism zero-value sentinel for an unset Options field, not a computed float
	if o.OverflowExtra == 0 {
		o.OverflowExtra = 1
	}
	return o
}

// Candidate records one evaluated shape.
type Candidate struct {
	RF        float64
	Config    model.Config
	Predicted *model.Prediction
}

// Result is the optimizer's output.
type Result struct {
	Expr *einsum.Expr
	// BaseTile is the Conservative square tile dimension.
	BaseTile int
	// Config is the final per-index tile configuration.
	Config model.Config
	// RF is the chosen reorder factor; TileFactor the Eq. 22 bound that
	// seeded size growth (the percentile variant under a positive
	// OverflowTarget).
	RF         float64
	TileFactor int
	// Risk summarizes the risk-aware sizing decision and any calibration
	// run. Nil on the conservative path (OverflowTarget 0, Calibrate
	// off), keeping that Result byte-identical to previous releases.
	Risk *RiskReport
	// Stats and BaseTiling are reusable byproducts of the initial pass.
	Stats      map[string]*stats.Stats
	BaseTiling map[string]*tiling.TiledTensor
	// Predicted is the model's estimate for Config.
	Predicted  *model.Prediction
	Candidates []Candidate
}

// Optimize runs the full D2T2 pipeline for kernel e over the inputs.
func Optimize(e *einsum.Expr, inputs map[string]*tensor.COO, opts Options) (*Result, error) {
	return OptimizeCtx(context.Background(), e, inputs, opts)
}

// OptimizeCtx is Optimize with cooperative cancellation: the per-input
// tile-and-collect fan-out, the RF shape sweep and the greedy size
// growth all consult ctx between work items, so a cancelled or
// deadline-expired context stops the pipeline near the cancellation
// point and returns the context's error instead of running the
// remaining compute to completion. A never-cancelled ctx yields exactly
// Optimize's byte-identical result at any worker count.
func OptimizeCtx(ctx context.Context, e *einsum.Expr, inputs map[string]*tensor.COO, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if o.BufferWords <= 0 {
		return nil, fmt.Errorf("optimizer: BufferWords must be positive")
	}
	if o.OverflowTarget < 0 || o.OverflowTarget >= 1 {
		return nil, fmt.Errorf("optimizer: OverflowTarget %v outside [0, 1)", o.OverflowTarget)
	}
	if o.OverflowExtra < 0 {
		return nil, fmt.Errorf("optimizer: OverflowExtra %v must be >= 0", o.OverflowExtra)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}

	// 1. Conservative base tile: square across every index variable,
	// sized so the highest-order input's dense tile fits.
	for _, ref := range e.Inputs() {
		if inputs[ref.Name] == nil && o.Precollected[ref.Name] == nil {
			return nil, fmt.Errorf("optimizer: missing input %q", ref.Name)
		}
	}
	baseTile, err := o.ConservativeBase(e)
	if err != nil {
		return nil, err
	}

	// 2. Initial tiling + statistics collection.
	res := &Result{
		Expr:       e,
		BaseTile:   baseTile,
		Stats:      make(map[string]*stats.Stats),
		BaseTiling: make(map[string]*tiling.TiledTensor),
	}
	// Unique inputs tile-and-collect concurrently; the result maps are
	// filled serially in input order afterwards, and the lowest-index
	// error wins, so the outcome matches the old serial loop exactly.
	type collected struct {
		s  *stats.Stats
		tt *tiling.TiledTensor
	}
	var work []einsum.Ref
	seen := make(map[string]bool)
	for _, ref := range e.Inputs() {
		if seen[ref.Name] {
			continue
		}
		seen[ref.Name] = true
		work = append(work, ref)
	}
	cols, err := par.MapCtx(ctx, o.Workers, len(work), func(i int) (collected, error) {
		ref := work[i]
		base := make([]int, len(ref.Indices))
		for a := range base {
			base[a] = baseTile
		}
		if st := o.Precollected[ref.Name]; st != nil {
			if err := precollectedMatches(st, base, e.LevelOrder(ref)); err != nil {
				return collected{}, fmt.Errorf("optimizer: precollected stats for %q: %w", ref.Name, err)
			}
			return collected{s: st}, nil
		}
		s, tt, err := stats.CollectCtx(ctx, inputs[ref.Name], base, e.LevelOrder(ref),
			&stats.Options{MicroDiv: o.MicroDiv, Workers: o.Workers})
		if err != nil {
			return collected{}, err
		}
		return collected{s: s, tt: tt}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, ref := range work {
		res.Stats[ref.Name] = cols[i].s
		if cols[i].tt != nil {
			res.BaseTiling[ref.Name] = cols[i].tt
		}
	}

	pred, err := model.New(e, res.Stats)
	if err != nil {
		return nil, err
	}
	pred.Mode = o.Mode
	pred.UseCorrs = !o.DisableCorrs
	pred.DisableRefinement = o.DisableRefinement
	if o.Calibration != nil {
		pred.Calib = o.Calibration
		pred.CalibClass = CalibClass(e, o.Mode)
	}

	// 3. Shape optimization.
	upIdx, downIdxs := shapeAxes(e)
	best := -1
	rfs := o.RFs
	if o.CorrsOnly {
		rfs = []float64{corrsOnlyRF(e, res.Stats, baseTile, o)}
	}
	// Several RFs snap to the same config, and each evaluation is a full
	// shape pass per input plus a prediction — so configs are built and
	// snapped serially (cheap), deduped on a canonical key, and only the
	// unique survivors evaluate concurrently against the read-only
	// predictor. The representative RF of a merged group reproduces the
	// serial sweep's keep rules: a fitting config is kept under its first
	// RF; a non-fitting config is kept only when one of its RFs is exactly
	// the base shape's 1.
	type uniqueCand struct {
		cfg      model.Config
		firstRF  float64
		firstIdx int // position of firstRF in rfs
		rf1Idx   int // position of the literal RF 1, or -1
	}
	var uniq []*uniqueCand
	seenCfg := make(map[string]int, len(rfs))
	var keyBuf []byte
	for i, rf := range rfs {
		cfg := make(model.Config, len(e.Order))
		for _, ix := range e.Order {
			cfg[ix] = baseTile
		}
		cfg[upIdx] = scaleDim(baseTile, rf)
		for _, ix := range downIdxs {
			cfg[ix] = scaleDim(baseTile, 1/rf)
		}
		cfg = pred.SnapConfigInPlace(cfg)
		keyBuf = keyBuf[:0]
		for _, ix := range e.Order {
			keyBuf = strconv.AppendInt(keyBuf, int64(cfg[ix]), 10)
			keyBuf = append(keyBuf, ',')
		}
		//d2t2:ignore floatdeterminism rf ranges over the literal RFs slice; matching the literal 1 exactly is intended
		isOne := rf == 1
		if j, ok := seenCfg[string(keyBuf)]; ok {
			if isOne && uniq[j].rf1Idx < 0 {
				uniq[j].rf1Idx = i
			}
			continue
		}
		seenCfg[string(keyBuf)] = len(uniq)
		uc := &uniqueCand{cfg: cfg, firstRF: rf, firstIdx: i, rf1Idx: -1}
		if isOne {
			uc.rf1Idx = i
		}
		uniq = append(uniq, uc)
	}
	type swept struct {
		fits bool
		p    *model.Prediction
		cost float64 // overflow-adjusted total; only set under a positive OverflowTarget
	}
	sweeps, err := par.MapCtx(ctx, o.Workers, len(uniq), func(i int) (swept, error) {
		uc := uniq[i]
		// Area-preserving reshapes still change the CSF *metadata*
		// footprint (tall tiles carry more fibers and segment bounds), so
		// the fit guarantee must be re-checked per candidate against the
		// conservative upper bound — or, under a positive OverflowTarget,
		// against the predicted per-operand overflow rate.
		fitsShape := true
		for _, ref := range e.Inputs() {
			sh, err := pred.EvalRef(ref, uc.cfg)
			if err != nil {
				return swept{}, err
			}
			if o.OverflowTarget > 0 {
				if rate, _ := sh.OverflowStats(float64(o.BufferWords)); rate > o.OverflowTarget {
					fitsShape = false
					break
				}
			} else if sh.MaxTileBound > o.BufferWords {
				fitsShape = false
				break
			}
		}
		if !fitsShape && uc.rf1Idx < 0 {
			return swept{}, nil // dropped: no RF keeps a non-fitting config
		}
		p, err := pred.Predict(uc.cfg)
		if err != nil {
			return swept{}, err
		}
		sw := swept{fits: fitsShape, p: p}
		if o.OverflowTarget > 0 {
			rk, err := evalRisk(pred, e, uc.cfg, p, o)
			if err != nil {
				return swept{}, err
			}
			sw.cost = p.Total() + rk.premium
		}
		return sw, nil
	})
	if err != nil {
		return nil, err
	}
	// Survivors append in the order of the RF that kept them (the first
	// RF for fitting configs, the literal 1 otherwise), so the
	// first-strict-minimum pick is byte-identical to the pre-dedupe sweep.
	type keptCand struct {
		pos  int
		cost float64
		cand Candidate
	}
	kept := make([]keptCand, 0, len(uniq))
	for i, sw := range sweeps {
		if sw.p == nil {
			continue
		}
		uc := uniq[i]
		pos, rf := uc.firstIdx, uc.firstRF
		if !sw.fits {
			pos, rf = uc.rf1Idx, 1
		}
		kept = append(kept, keptCand{pos: pos, cost: sw.cost, cand: Candidate{RF: rf, Config: uc.cfg, Predicted: sw.p}})
	}
	sort.Slice(kept, func(x, y int) bool { return kept[x].pos < kept[y].pos })
	bestCost := 0.0
	for _, kc := range kept {
		res.Candidates = append(res.Candidates, kc.cand)
		if o.OverflowTarget > 0 {
			// First strict minimum of the overflow-adjusted total.
			if best < 0 || kc.cost < bestCost {
				best = len(res.Candidates) - 1
				bestCost = kc.cost
			}
		} else if best < 0 || kc.cand.Predicted.Total() < res.Candidates[best].Predicted.Total() {
			best = len(res.Candidates) - 1
		}
	}
	chosen := res.Candidates[best]
	res.RF = chosen.RF
	res.Config = chosen.Config.Clone()
	res.Predicted = chosen.Predicted

	// 4. Size optimization.
	if !o.SkipResize {
		if o.OverflowTarget > 0 {
			err = res.growRisk(ctx, pred, upIdx, o)
		} else {
			err = res.grow(ctx, pred, upIdx, o)
		}
		if err != nil {
			return nil, err
		}
		p, err := pred.Predict(res.Config)
		if err != nil {
			return nil, err
		}
		res.Predicted = p
	}

	// 5. Risk report + calibration. Both are gated on their knobs, so the
	// conservative path (OverflowTarget 0, Calibrate off) never reaches
	// this code and stays byte-identical.
	if o.OverflowTarget > 0 {
		rk, err := evalRisk(pred, e, res.Config, res.Predicted, o)
		if err != nil {
			return nil, err
		}
		res.Risk = rk.report(o, res.Risk)
	}
	if o.Calibrate {
		if err := res.calibrate(ctx, pred, inputs, o); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ConservativeBase returns the conservative square base tile dimension
// Optimize derives for kernel e under these options: Options.BaseTile if
// set, otherwise the largest power-of-two square whose dense tile of the
// kernel's highest-order input fits BufferWords. Exported so callers that
// collect (or cache) statistics ahead of Optimize — the d2t2d Session
// path — can key them by the exact tiling Optimize will require.
func (o Options) ConservativeBase(e *einsum.Expr) (int, error) {
	if o.BufferWords <= 0 {
		return 0, fmt.Errorf("optimizer: BufferWords must be positive")
	}
	maxOrder := 0
	for _, ref := range e.Inputs() {
		if len(ref.Indices) > maxOrder {
			maxOrder = len(ref.Indices)
		}
	}
	baseTile := o.BaseTile
	if baseTile == 0 {
		baseTile = tiling.ConservativeSquare(o.BufferWords, maxOrder)
	}
	if baseTile < 1 {
		return 0, fmt.Errorf("optimizer: buffer of %d words cannot hold any tile", o.BufferWords)
	}
	return baseTile, nil
}

// precollectedMatches verifies supplied statistics were collected at the
// base tiling and level order this optimization requires.
func precollectedMatches(st *stats.Stats, base, order []int) error {
	if len(st.BaseTileDims) != len(base) {
		return fmt.Errorf("collected for an order-%d tensor, need order %d", len(st.BaseTileDims), len(base))
	}
	for a := range base {
		if st.BaseTileDims[a] != base[a] {
			return fmt.Errorf("collected at base tile %v, need %v", st.BaseTileDims, base)
		}
	}
	if len(st.Order) != len(order) {
		return fmt.Errorf("collected with %d levels, need %d", len(st.Order), len(order))
	}
	for l := range order {
		if st.Order[l] != order[l] {
			return fmt.Errorf("collected in level order %v, need %v", st.Order, order)
		}
	}
	return nil
}

// shapeAxes picks the index scaled up (the outermost output index in the
// dataflow order) and the indices scaled down (the contracted indices) by
// the RF sweep.
func shapeAxes(e *einsum.Expr) (string, []string) {
	outSet := make(map[string]bool)
	for _, ix := range e.Out.Indices {
		outSet[ix] = true
	}
	up := e.Out.Indices[0]
	for _, ix := range e.Order {
		if outSet[ix] {
			up = ix
			break
		}
	}
	return up, e.Contracted()
}

func scaleDim(base int, rf float64) int {
	d := int(float64(base)*rf + 0.5)
	if d < 1 {
		d = 1
	}
	return d
}

// corrsOnlyRF implements the Fig. 8 heuristic: low ΣCorrs (little output
// reuse) prefers outer-product-like tiles; high ΣCorrs prefers square.
func corrsOnlyRF(e *einsum.Expr, st map[string]*stats.Stats, baseTile int, o Options) float64 {
	contracted := e.Contracted()
	if len(contracted) == 0 {
		return 1
	}
	// Use the operand that carries the contraction with output indices —
	// the same choice the model's corrDivisor makes.
	sum := 0.0
	n := 0
	for _, ref := range e.Inputs() {
		for a, ix := range ref.Indices {
			if ix == contracted[0] {
				sum += st[ref.Name].CorrSum(a, baseTile)
				n++
			}
		}
	}
	if n > 0 {
		sum /= float64(n)
	}
	if sum < o.CorrsThreshold {
		return 8 // outer-product-like
	}
	return 1 // square
}

// grow implements the size optimization: seed with the Eq. 22 TileFactor
// on the primary output index, then greedily double output-index tile
// dimensions while every input's largest actual tile fits the buffer.
// ctx is consulted once per candidate doubling — each candidate costs a
// model prediction, the growth loop's unit of work.
func (r *Result) grow(ctx context.Context, pred *model.Predictor, upIdx string, o Options) error {
	// Eq. 22: TileFactor = BufferSize / MaxTiles at the chosen shape.
	maxTile := 0
	for _, ref := range r.Expr.Inputs() {
		sh, err := pred.EvalRef(ref, r.Config)
		if err != nil {
			return err
		}
		if sh.MaxTile > maxTile {
			maxTile = sh.MaxTile
		}
	}
	r.TileFactor = 1
	if maxTile > 0 {
		r.TileFactor = o.BufferWords / maxTile
	}
	if r.TileFactor < 1 {
		r.TileFactor = 1
	}

	fits := func(cfg model.Config) (bool, error) {
		for _, ref := range r.Expr.Inputs() {
			sh, err := pred.EvalRef(ref, cfg)
			if err != nil {
				return false, err
			}
			// The conservative upper bound keeps D2T2's guarantee: the
			// retiled footprint never exceeds the member-sum estimate.
			if sh.MaxTileBound > o.BufferWords {
				return false, nil
			}
		}
		return true, nil
	}

	// Seed: scale the primary output index by the TileFactor, backing off
	// until it fits (the Eq. 22 estimate is conservative but the footprint
	// aggregation is approximate).
	for tf := r.TileFactor; tf > 1; tf /= 2 {
		cand := r.Config.Clone()
		cand[upIdx] = r.snapIdx(upIdx, cand[upIdx]*tf)
		ok, err := fits(cand)
		if err != nil {
			return err
		}
		if ok {
			r.Config = cand
			break
		}
	}

	// Greedy doubling over every index variable, round-robin: accept a
	// doubling when the grown tiles still fit and the model predicts no
	// traffic regression (ties go to the larger tile — fewer tile
	// iterations for free). Growing contracted indices matters for
	// high-reuse data such as diagonal matrices, where the contracted
	// span bounds the iteration count.
	idxs := append([]string(nil), r.Expr.Order...)
	sort.Strings(idxs)
	cur, err := pred.Predict(r.Config)
	if err != nil {
		return err
	}
	for pass := 0; pass < o.MaxGrowthDoublings; pass++ {
		improved := false
		for _, ix := range idxs {
			if err := ctx.Err(); err != nil {
				return err
			}
			cand := r.Config.Clone()
			cand[ix] = r.snapIdx(ix, cand[ix]*2)
			if cand[ix] == r.Config[ix] {
				continue
			}
			ok, err := fits(cand)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			p, err := pred.Predict(cand)
			if err != nil {
				return err
			}
			if p.Total() <= cur.Total()*1.001 {
				r.Config = cand
				cur = p
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return nil
}

// snapIdx rounds a single index's tile size to the micro granularity of
// a tensor that carries it, clamped to the dimension.
func (r *Result) snapIdx(ix string, v int) int {
	for _, ref := range r.Expr.Inputs() {
		for a, rix := range ref.Indices {
			if rix != ix {
				continue
			}
			st := r.Stats[ref.Name]
			m := st.MicroDims()[a]
			q := (v + m/2) / m
			if q < 1 {
				q = 1
			}
			if maxQ := (st.Dims[a] + m - 1) / m; q > maxQ {
				q = maxQ
			}
			return q * m
		}
	}
	return v
}

// TileAll tiles every input with the final configuration (the second
// tiling pass of the pipeline), ready for the measurement backend. All
// cores are used; see TileAllWorkers.
func TileAll(e *einsum.Expr, inputs map[string]*tensor.COO, cfg model.Config) (map[string]*tiling.TiledTensor, error) {
	return TileAllWorkers(e, inputs, cfg, 0)
}

// TileAllWorkers is TileAll with an explicit worker count (0 = all
// cores): inputs retile concurrently, each on the parallel tiler. The
// output is identical at any worker count.
func TileAllWorkers(e *einsum.Expr, inputs map[string]*tensor.COO, cfg model.Config, workers int) (map[string]*tiling.TiledTensor, error) {
	return TileAllCtx(context.Background(), e, inputs, cfg, workers)
}

// TileAllCtx is TileAllWorkers with cooperative cancellation: the
// per-input fan-out and each input's tiler stop claiming work once ctx
// is cancelled.
func TileAllCtx(ctx context.Context, e *einsum.Expr, inputs map[string]*tensor.COO, cfg model.Config, workers int) (map[string]*tiling.TiledTensor, error) {
	refs := e.Inputs()
	tts, err := par.MapCtx(ctx, workers, len(refs), func(i int) (*tiling.TiledTensor, error) {
		ref := refs[i]
		m := inputs[ref.Name]
		if m == nil {
			return nil, fmt.Errorf("optimizer: missing input %q", ref.Name)
		}
		dims := make([]int, len(ref.Indices))
		for a, ix := range ref.Indices {
			td, ok := cfg[ix]
			if !ok {
				return nil, fmt.Errorf("optimizer: config misses %q", ix)
			}
			if td > m.Dims[a] {
				td = m.Dims[a]
			}
			dims[a] = td
		}
		return tiling.NewCtx(ctx, m, dims, e.LevelOrder(ref), workers)
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*tiling.TiledTensor, len(refs))
	for i, ref := range refs {
		out[ref.Name] = tts[i]
	}
	return out, nil
}
