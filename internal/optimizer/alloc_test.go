package optimizer

import (
	"fmt"
	"math/rand"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/raceflag"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// TestColdOptimizeAllocs is the allocation regression gate for the full
// cold pipeline: conservative tiling, statistics, the deduplicated RF
// sweep with memoized shape evaluation, and size growth. The ceiling is
// ~2x the measured steady state — a return to per-candidate config
// cloning or per-RF shape re-evaluation multiplies the count well past
// it.
func TestColdOptimizeAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	r := rand.New(rand.NewSource(1))
	a := gen.PowerLawGraph(r, 2048, 200_000, 1.7)
	inputs := map[string]*tensor.COO{"A": a, "B": a.Transpose()}
	e := einsum.SpMSpMIKJ()
	buffer := tiling.DenseFootprintWords([]int{64, 64})
	for _, tc := range []struct {
		workers int
		ceiling float64
	}{{1, 40000}, {8, 41000}} {
		t.Run(fmt.Sprintf("workers=%d", tc.workers), func(t *testing.T) {
			avg := testing.AllocsPerRun(2, func() {
				res, err := Optimize(e, inputs, Options{BufferWords: buffer, Workers: tc.workers})
				if err != nil || len(res.Config) == 0 {
					t.Fatalf("optimize failed: %v", err)
				}
			})
			t.Logf("allocs/op: %.0f", avg)
			if avg > tc.ceiling {
				t.Errorf("Optimize allocates %.0f times per call, ceiling %.0f", avg, tc.ceiling)
			}
		})
	}
}
