package optimizer

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/gen"
	"d2t2/internal/model"
	"d2t2/internal/stats"
	"d2t2/internal/tensor"
)

func riskInputs(t *testing.T) map[string]*tensor.COO {
	t.Helper()
	return gustavsonInputs(77, func(r *rand.Rand) *tensor.COO {
		return gen.PowerLawGraph(r, 512, 4000, 1.7)
	})
}

// TestRiskOptionsValidation: the risk knobs must be rejected loudly when
// out of range, before any tiling work starts.
func TestRiskOptionsValidation(t *testing.T) {
	inputs := riskInputs(t)
	e := einsum.SpMSpMIKJ()
	cases := []struct {
		name string
		o    Options
		want string
	}{
		{"negative target", Options{BufferWords: buf32(), OverflowTarget: -0.1}, "OverflowTarget"},
		{"target one", Options{BufferWords: buf32(), OverflowTarget: 1}, "OverflowTarget"},
		{"target above one", Options{BufferWords: buf32(), OverflowTarget: 1.5}, "OverflowTarget"},
		{"negative extra", Options{BufferWords: buf32(), OverflowTarget: 0.05, OverflowExtra: -1}, "OverflowExtra"},
	}
	for _, tc := range cases {
		_, err := Optimize(e, inputs, tc.o)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %s", tc.name, err, tc.want)
		}
	}
}

// TestOverflowTargetZeroIdentity: the satellite-3 property — an explicit
// OverflowTarget of 0 is not a separate mode, it IS the conservative
// path. The full Result must be deeply equal to a plain run at any
// worker count, and Risk must stay nil.
func TestOverflowTargetZeroIdentity(t *testing.T) {
	inputs := riskInputs(t)
	e := einsum.SpMSpMIKJ()
	plain, err := Optimize(e, inputs, Options{BufferWords: buf32(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		res, err := Optimize(e, inputs, Options{
			BufferWords:    buf32(),
			OverflowTarget: 0,
			Workers:        workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Risk != nil {
			t.Fatalf("workers=%d: OverflowTarget=0 produced a RiskReport: %+v", workers, res.Risk)
		}
		if !reflect.DeepEqual(res.Config, plain.Config) || res.TileFactor != plain.TileFactor || res.RF != plain.RF {
			t.Fatalf("workers=%d: OverflowTarget=0 diverged from the plain run:\n got %v tf=%d rf=%v\nwant %v tf=%d rf=%v",
				workers, res.Config, res.TileFactor, res.RF, plain.Config, plain.TileFactor, plain.RF)
		}
		if res.Predicted.Total() != plain.Predicted.Total() {
			t.Fatalf("workers=%d: predicted total %v != plain %v", workers, res.Predicted.Total(), plain.Predicted.Total())
		}
	}
}

// TestRiskDeterminism: the risk-aware path must also be worker-count
// invariant — the sweep, the percentile seed and the greedy doubling all
// resolve ties in fixed kernel order.
func TestRiskDeterminism(t *testing.T) {
	inputs := riskInputs(t)
	e := einsum.SpMSpMIKJ()
	var ref *Result
	for _, workers := range []int{1, 8} {
		res, err := Optimize(e, inputs, Options{
			BufferWords:    buf32(),
			OverflowTarget: 0.05,
			Workers:        workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Risk == nil {
			t.Fatal("positive OverflowTarget produced no RiskReport")
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Config, ref.Config) {
			t.Fatalf("workers=%d: config %v != workers=1 config %v", workers, res.Config, ref.Config)
		}
		if !reflect.DeepEqual(res.Risk, ref.Risk) {
			t.Fatalf("workers=%d: risk report %+v != workers=1 %+v", workers, res.Risk, ref.Risk)
		}
	}
}

// TestRiskReportShape: a positive target yields a self-consistent
// RiskReport — rate within target, utilization in (0, 1+], a percentile
// tile no larger than the buffer times a small overbooking factor.
func TestRiskReportShape(t *testing.T) {
	inputs := riskInputs(t)
	e := einsum.SpMSpMIKJ()
	res, err := Optimize(e, inputs, Options{BufferWords: buf32(), OverflowTarget: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rk := res.Risk
	if rk == nil {
		t.Fatal("no risk report")
	}
	if rk.OverflowTarget != 0.1 {
		t.Errorf("target echo = %v", rk.OverflowTarget)
	}
	if rk.PredictedOverflowRate > 0.1 {
		t.Errorf("predicted rate %v exceeds target", rk.PredictedOverflowRate)
	}
	if rk.BufferUtilization <= 0 {
		t.Errorf("utilization = %v, want > 0", rk.BufferUtilization)
	}
	if rk.PercentileTile <= 0 || rk.PercentileTile > buf32() {
		t.Errorf("percentile tile = %d, want in (0, %d]", rk.PercentileTile, buf32())
	}
}

// TestRiskMeasuredWithinTarget: the end-to-end guarantee — executing the
// risk-sized config under the buffer model it was costed with keeps the
// machine-measured overflow rate within 2x the requested target.
func TestRiskMeasuredWithinTarget(t *testing.T) {
	inputs := riskInputs(t)
	e := einsum.SpMSpMIKJ()
	for _, target := range []float64{0.01, 0.1} {
		res, err := Optimize(e, inputs, Options{BufferWords: buf32(), OverflowTarget: target})
		if err != nil {
			t.Fatal(err)
		}
		tts, err := TileAll(e, inputs, res.Config)
		if err != nil {
			t.Fatal(err)
		}
		m, err := exec.Measure(e, tts, &exec.Options{InputBufferWords: buf32(), OverflowExtra: 1})
		if err != nil {
			t.Fatal(err)
		}
		rate := 0.0
		if m.InputFetches > 0 {
			rate = float64(m.OverflowFetches) / float64(m.InputFetches)
		}
		if rate > 2*target {
			t.Errorf("target %g: measured overflow rate %v exceeds 2x target (config %v)", target, rate, res.Config)
		}
	}
}

// TestCalibrationResidualShrinks pins the acceptance criterion for the
// calibration loop: repeated calibrated optimizes against a shared
// residual store converge — each run's traffic residual is strictly
// smaller than the previous one's (or already below 1%).
func TestCalibrationResidualShrinks(t *testing.T) {
	inputs := riskInputs(t)
	e := einsum.SpMSpMIKJ()
	calib := model.NewCalibration()
	var residuals []float64
	for i := 0; i < 4; i++ {
		res, err := Optimize(e, inputs, Options{
			BufferWords:    buf32(),
			OverflowTarget: 0.05,
			Calibrate:      true,
			Calibration:    calib,
		})
		if err != nil {
			t.Fatal(err)
		}
		cr := res.Risk.Calibration
		if cr == nil {
			t.Fatal("Calibrate=true produced no CalibrationReport")
		}
		if cr.Class != CalibClass(e, 0) {
			t.Fatalf("class = %q, want %q", cr.Class, CalibClass(e, 0))
		}
		if cr.MeasuredWords <= 0 || cr.PredictedWords <= 0 {
			t.Fatalf("run %d: degenerate calibration %+v", i, cr)
		}
		residuals = append(residuals, cr.Residual)
		t.Logf("run %d: predicted=%.0f measured=%.0f residual=%.4f bias=%.4f",
			i, cr.PredictedWords, cr.MeasuredWords, cr.Residual, cr.BiasAfter)
	}
	for i := 1; i < len(residuals); i++ {
		if residuals[i] >= residuals[i-1] && residuals[i] > 0.01 {
			t.Errorf("residual did not shrink: run %d = %v, run %d = %v (all: %v)",
				i-1, residuals[i-1], i, residuals[i], residuals)
		}
	}
	if got := calib.Runs(CalibClass(e, 0)); got != 4 {
		t.Errorf("calibration store recorded %d runs, want 4", got)
	}
}

// TestCalibrationRequiresRawInputs: stats-only precollection cannot be
// executed, so a calibrated optimize over it must fail loudly rather
// than silently skipping the measurement.
func TestCalibrationRequiresRawInputs(t *testing.T) {
	inputs := riskInputs(t)
	e := einsum.SpMSpMIKJ()
	plain, err := Optimize(e, inputs, Options{BufferWords: buf32()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Optimize(e, nil, Options{
		BufferWords:  buf32(),
		Calibrate:    true,
		Precollected: map[string]*stats.Stats{"A": plain.Stats["A"], "B": plain.Stats["B"]},
	})
	if err == nil || !strings.Contains(err.Error(), "calibration requires raw input") {
		t.Fatalf("err = %v, want calibration-requires-raw-input", err)
	}
}
