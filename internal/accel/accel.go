// Package accel models the evaluation machines: an Extensor-like push
// memory accelerator (the architecture both Tailors and DRT were
// evaluated against) and the Opal 16nm CGRA (§6.4). The model is the one
// the paper's Figure 6a justifies empirically: sparse tensor algebra is
// memory-bound, so runtime is the maximum of the memory time (traffic /
// bandwidth) and the compute time (MACs / peak), plus a fixed per-tile
// orchestration cost.
package accel

import (
	"d2t2/internal/exec"
	"d2t2/internal/tiling"
)

// Arch describes one accelerator configuration.
type Arch struct {
	Name string
	// InputBufferWords is the per-operand tile buffer capacity in 4-byte
	// words.
	InputBufferWords int
	// OutputBufferWords bounds the on-chip output tile (overflowing
	// partials are streamed out, the non-standard modification of §6 the
	// paper adds for D2T2's output tiles).
	OutputBufferWords int
	// BandwidthWordsPerCycle is the main-memory bandwidth seen by the
	// tile engine.
	BandwidthWordsPerCycle float64
	// MACsPerCycle is the peak multiply throughput.
	MACsPerCycle float64
	// TileOverheadCycles is the fixed orchestration cost per tile
	// iteration (descriptor fetch, drain, swap).
	TileOverheadCycles float64
	// FrequencyGHz converts cycles to seconds for absolute numbers.
	FrequencyGHz float64
}

// Extensor returns the Extensor-derived configuration used by the
// Tailors and DRT comparisons: a PE buffer holding a 128×128 dense CSF
// tile, with bandwidth and compute matching the published architecture's
// proportions (68.3 GB/s HBM per PE cluster, 128 MACs/cycle, 1 GHz).
func Extensor() Arch {
	return Arch{
		Name:                   "extensor",
		InputBufferWords:       tiling.DenseFootprintWords([]int{128, 128}),
		OutputBufferWords:      tiling.DenseFootprintWords([]int{128, 128}),
		BandwidthWordsPerCycle: 16, // 64 B/cycle = 64 GB/s at 1 GHz
		MACsPerCycle:           128,
		TileOverheadCycles:     64,
		FrequencyGHz:           1.0,
	}
}

// Opal returns the Opal CGRA configuration of §6.4: 2 KB memory tiles
// supporting a conservative 32×32 matrix tile, a 1.75 MB global buffer,
// and a modest streaming bandwidth — the regime where tiling quality
// dominates end-to-end runtime.
func Opal() Arch {
	return Arch{
		Name:                   "opal",
		InputBufferWords:       tiling.DenseFootprintWords([]int{32, 32}),
		OutputBufferWords:      tiling.DenseFootprintWords([]int{32, 32}),
		BandwidthWordsPerCycle: 4,
		MACsPerCycle:           16,
		TileOverheadCycles:     128, // CGRA reconfiguration/drain is costlier
		FrequencyGHz:           0.5,
	}
}

// Cycles returns the modeled execution time in cycles for a measured
// traffic profile: memory and compute overlap (max), tile orchestration
// does not.
func Cycles(t *exec.Traffic, a Arch) float64 {
	mem := float64(t.Total()) / a.BandwidthWordsPerCycle
	comp := float64(t.MACs) / a.MACsPerCycle
	busy := mem
	if comp > busy {
		busy = comp
	}
	return busy + float64(t.TileIterations)*a.TileOverheadCycles
}

// Seconds converts a traffic profile to modeled wall-clock seconds.
func Seconds(t *exec.Traffic, a Arch) float64 {
	return Cycles(t, a) / (a.FrequencyGHz * 1e9)
}

// Speedup returns reference time / target time under the architecture:
// how much faster `target` is than `reference`.
func Speedup(reference, target *exec.Traffic, a Arch) float64 {
	rt := Cycles(target, a)
	if rt == 0 {
		return 1
	}
	return Cycles(reference, a) / rt
}

// TrafficImprovement returns the paper's traffic metric:
// (In_ref + Out_ref) / (In_trg + Out_trg).
func TrafficImprovement(reference, target *exec.Traffic) float64 {
	den := float64(target.Total())
	if den == 0 {
		return 1
	}
	return float64(reference.Total()) / den
}

// Roofline summarizes where an execution sits on the machine's roofline:
// its arithmetic intensity (MACs per byte moved), the machine's ridge
// point, and whether the run is memory- or compute-bound.
type Roofline struct {
	IntensityMACsPerByte float64
	RidgeMACsPerByte     float64
	MemoryBound          bool
	// AchievableMACsPerCycle is the roof at this intensity.
	AchievableMACsPerCycle float64
}

// RooflineOf analyzes a measured execution against a machine model.
func RooflineOf(t *exec.Traffic, a Arch) Roofline {
	bytes := float64(t.Total()) * 4
	r := Roofline{RidgeMACsPerByte: a.MACsPerCycle / (a.BandwidthWordsPerCycle * 4)}
	if bytes > 0 {
		r.IntensityMACsPerByte = float64(t.MACs) / bytes
	}
	r.MemoryBound = r.IntensityMACsPerByte < r.RidgeMACsPerByte
	if r.MemoryBound {
		r.AchievableMACsPerCycle = r.IntensityMACsPerByte * a.BandwidthWordsPerCycle * 4
	} else {
		r.AchievableMACsPerCycle = a.MACsPerCycle
	}
	return r
}
