package accel

import "d2t2/internal/exec"

// Energy modeling (extension beyond the paper). Memory-bound sparse
// kernels spend most of their energy moving data: DRAM accesses cost two
// orders of magnitude more than on-chip SRAM reads or MACs (the standard
// accelerator energy hierarchy, cf. Eyeriss/Extensor analyses). Because
// D2T2 minimizes DRAM traffic, the traffic reports translate directly
// into an energy estimate — useful when comparing schemes whose runtimes
// tie but whose traffic differs.

// EnergyModel holds per-event energy costs in picojoules.
type EnergyModel struct {
	DRAMPerWord  float64 // off-chip access per 4-byte word
	SRAMPerWord  float64 // on-chip buffer access per word
	MACEnergy    float64 // one multiply-accumulate
	TileOverhead float64 // per tile iteration (control, descriptors)
}

// DefaultEnergy returns costs in the conventional 45nm-derived ratios
// (DRAM ≈ 200x SRAM ≈ 640x MAC for 32-bit operations).
func DefaultEnergy() EnergyModel {
	return EnergyModel{
		DRAMPerWord:  640,
		SRAMPerWord:  3.2,
		MACEnergy:    1.0,
		TileOverhead: 50,
	}
}

// EnergyPJ estimates the energy of a measured execution in picojoules:
// every traffic word crosses DRAM once and the on-chip buffer twice
// (fill + drain/use), every MAC reads its operands from SRAM.
func EnergyPJ(t *exec.Traffic, m EnergyModel) float64 {
	words := float64(t.Total())
	return words*(m.DRAMPerWord+2*m.SRAMPerWord) +
		float64(t.MACs)*(m.MACEnergy+3*m.SRAMPerWord) +
		float64(t.TileIterations)*m.TileOverhead
}

// EnergyImprovement returns reference energy / target energy.
func EnergyImprovement(reference, target *exec.Traffic, m EnergyModel) float64 {
	te := EnergyPJ(target, m)
	if te == 0 {
		return 1
	}
	return EnergyPJ(reference, m) / te
}

// OverbookingEnergy validates the energy side of risk-aware sizing
// (DESIGN.md §18): both runs must be measured under the same buffer
// model, so the overbooked traffic already carries its overflow
// re-streaming premium in the input words (exec charges
// OverflowExtra × (footprint − buffer) per overflowing fetch). Returns
// the conservative-over-overbooked energy ratio — above 1 means the
// larger tiles' reuse savings paid for the overflow penalty — and the
// overbooked run's measured overflow rate for checking against the
// optimizer's target.
func OverbookingEnergy(conservative, overbooked *exec.Traffic, m EnergyModel) (ratio, overflowRate float64) {
	ratio = EnergyImprovement(conservative, overbooked, m)
	if overbooked.InputFetches > 0 {
		overflowRate = float64(overbooked.OverflowFetches) / float64(overbooked.InputFetches)
	}
	return ratio, overflowRate
}
