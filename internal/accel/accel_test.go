package accel

import (
	"testing"

	"d2t2/internal/exec"
)

func traffic(words, macs, iters int64) *exec.Traffic {
	return &exec.Traffic{
		Input:          map[string]int64{"A": words / 2, "B": words - words/2},
		Output:         0,
		MACs:           macs,
		TileIterations: iters,
	}
}

func TestCyclesMemoryBound(t *testing.T) {
	a := Extensor()
	tr := traffic(16000, 100, 0)
	// Memory: 16000/16 = 1000 cycles; compute: 100/128 < 1.
	if got := Cycles(tr, a); got != 1000 {
		t.Fatalf("cycles = %v, want 1000", got)
	}
}

func TestCyclesComputeBound(t *testing.T) {
	a := Extensor()
	tr := traffic(16, 128000, 0)
	if got := Cycles(tr, a); got != 1000 {
		t.Fatalf("cycles = %v, want 1000 (compute bound)", got)
	}
}

func TestTileOverheadAdds(t *testing.T) {
	a := Extensor()
	tr := traffic(1600, 0, 10)
	want := 100 + 10*a.TileOverheadCycles
	if got := Cycles(tr, a); got != want {
		t.Fatalf("cycles = %v, want %v", got, want)
	}
}

func TestSpeedupAndTraffic(t *testing.T) {
	a := Extensor()
	slow := traffic(32000, 0, 0)
	fast := traffic(16000, 0, 0)
	if got := Speedup(slow, fast, a); got != 2 {
		t.Fatalf("speedup = %v, want 2", got)
	}
	if got := TrafficImprovement(slow, fast); got != 2 {
		t.Fatalf("traffic improvement = %v, want 2", got)
	}
	// Degenerate zero-traffic target.
	if got := TrafficImprovement(slow, traffic(0, 0, 0)); got != 1 {
		t.Fatalf("zero target improvement = %v", got)
	}
}

func TestArchPresets(t *testing.T) {
	ex, op := Extensor(), Opal()
	// Extensor's buffer must hold a 128x128 dense CSF tile; Opal's a
	// 32x32 (the 2 KB memory tile constraint of §6.4).
	if ex.InputBufferWords < 2*128*128 {
		t.Fatalf("extensor buffer too small: %d", ex.InputBufferWords)
	}
	if op.InputBufferWords < 2*32*32 || op.InputBufferWords > 4*32*32 {
		t.Fatalf("opal buffer out of range: %d", op.InputBufferWords)
	}
	if ex.Name == op.Name {
		t.Fatal("presets share a name")
	}
}

func TestSeconds(t *testing.T) {
	a := Extensor() // 1 GHz
	tr := traffic(16000, 0, 0)
	if got := Seconds(tr, a); got != 1000/1e9 {
		t.Fatalf("seconds = %v", got)
	}
}

func TestEnergyModel(t *testing.T) {
	m := DefaultEnergy()
	trafficOnly := traffic(1000, 0, 0)
	e1 := EnergyPJ(trafficOnly, m)
	want := 1000 * (m.DRAMPerWord + 2*m.SRAMPerWord)
	if e1 != want {
		t.Fatalf("traffic energy = %v, want %v", e1, want)
	}
	// MACs add compute + SRAM operand energy.
	withMACs := traffic(1000, 500, 0)
	if EnergyPJ(withMACs, m) <= e1 {
		t.Fatal("MAC energy missing")
	}
	// DRAM dominates: halving traffic nearly halves energy for
	// memory-bound profiles.
	half := traffic(500, 0, 0)
	imp := EnergyImprovement(trafficOnly, half, m)
	if imp < 1.99 || imp > 2.01 {
		t.Fatalf("energy improvement = %v, want ~2", imp)
	}
	if EnergyImprovement(trafficOnly, traffic(0, 0, 0), m) != 1 {
		t.Fatal("zero-target improvement should be 1")
	}
}

// TestOverbookingEnergy: the energy-side validation of risk-aware
// sizing — an overbooked run whose reuse savings beat its overflow
// premium comes out ahead, and the measured overflow rate is reported
// from the machine counters, not the model.
func TestOverbookingEnergy(t *testing.T) {
	m := DefaultEnergy()
	cons := traffic(10000, 500, 100)
	cons.InputFetches = 200
	over := traffic(7000, 500, 40) // premium already priced into the words
	over.InputFetches = 100
	over.OverflowFetches = 5

	ratio, rate := OverbookingEnergy(cons, over, m)
	if ratio <= 1 {
		t.Fatalf("ratio = %v, want > 1 for the cheaper overbooked run", ratio)
	}
	if want := EnergyImprovement(cons, over, m); ratio != want {
		t.Fatalf("ratio = %v, want EnergyImprovement %v", ratio, want)
	}
	if rate != 0.05 {
		t.Fatalf("overflow rate = %v, want 0.05", rate)
	}

	// No fetch counters (analytic traffic): rate degrades to 0, not NaN.
	if _, rate := OverbookingEnergy(cons, traffic(7000, 0, 0), m); rate != 0 {
		t.Fatalf("rate without fetch counters = %v, want 0", rate)
	}
}

func TestRoofline(t *testing.T) {
	a := Extensor() // ridge = 128 / 64 B = 2 MACs/byte
	memBound := traffic(100000, 1000, 0)
	r := RooflineOf(memBound, a)
	if !r.MemoryBound {
		t.Fatalf("low-intensity run not memory bound: %+v", r)
	}
	if r.RidgeMACsPerByte != 2 {
		t.Fatalf("ridge = %v, want 2", r.RidgeMACsPerByte)
	}
	compBound := traffic(100, 1000000, 0)
	r2 := RooflineOf(compBound, a)
	if r2.MemoryBound {
		t.Fatalf("high-intensity run memory bound: %+v", r2)
	}
	if r2.AchievableMACsPerCycle != a.MACsPerCycle {
		t.Fatalf("compute roof = %v", r2.AchievableMACsPerCycle)
	}
}
