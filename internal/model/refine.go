package model

import (
	"math"
	"sync"

	"d2t2/internal/stats"
)

// Cross-operand input-traffic refinement (ModeExact only).
//
// The paper's model multiplies single-tensor probabilities, assuming
// operand sparsity structures are uncorrelated (§4.2.1). For kernels such
// as A×Aᵀ that assumption fails in a correlated direction (§5.3). Because
// the collector retains per-tile occupancy at the candidate shape
// (stats.ShapeStats.GroupOuter), the expected fetch count of an operand
// can instead be computed exactly for single-product kernels:
//
//	Traffic_V = Σ_{tiles t of V} fp(t) × Π_{cofactors W} factor_W(t)
//
// where factor_W(t) is, for a cofactor that binds extra loop indices
// (indices in V's fetch space that V does not carry), the number of
// distinct extra-index assignments of W consistent with t's shared
// coordinates — the exact re-fetch multiplicity — and, for a cofactor
// binding no extras, an indicator that W has any data consistent with
// t's shared coordinates (the exact tile-filter term).
//
// The refinement applies when every extra index is owned by exactly one
// cofactor; otherwise (joint conditions across cofactors, e.g. MTTKRP's
// B and C sharing l) the mean-field path is used. ModeAnalytic never
// refines — it is the paper-faithful model used in the Fig. 9 ablation.

// cofactorPlan describes how one cofactor constrains V's fetches.
type cofactorPlan struct {
	// sharedV are V's axis positions whose coordinates key the lookup;
	// sharedW are the corresponding axis positions in W.
	sharedV, sharedW []int
	// count is non-nil for extras-owning cofactors: shared-coordinate key
	// → number of distinct extra-index assignments.
	count map[uint64]int
	// exists is non-nil for filter cofactors: key → any data present.
	exists map[uint64]struct{}
}

// refinedInputTraffic computes the exact expected traffic for occurrence
// vi under a single-product kernel, or (0, false) when the preconditions
// fail and the caller must fall back to the mean-field estimate.
func (p *Predictor) refinedInputTraffic(vi int, views []*tensorView, prod []int) (float64, bool) {
	e := p.Expr
	v := views[vi]
	if v.sh == nil || len(v.sh.GroupOuter) == 0 {
		return 0, false
	}
	own := make(map[string]int, len(v.ref.Indices)) // index var -> V axis
	for a, ix := range v.ref.Indices {
		own[ix] = a
	}
	fetch := e.FetchSpace(v.ref)
	extraOwner := make(map[string]int) // extra index -> count of cofactors carrying it
	var extras []string
	for _, ix := range fetch {
		if _, ok := own[ix]; !ok {
			extras = append(extras, ix)
			extraOwner[ix] = 0
		}
	}
	for _, wi := range prod {
		if wi == vi {
			continue
		}
		for _, ix := range views[wi].ref.Indices {
			if _, isExtra := extraOwner[ix]; isExtra {
				extraOwner[ix]++
			}
		}
	}
	for _, ix := range extras {
		if extraOwner[ix] != 1 {
			return 0, false
		}
	}

	var plans []cofactorPlan
	for _, wi := range prod {
		if wi == vi {
			continue
		}
		w := views[wi]
		if w.sh == nil {
			return 0, false
		}
		var plan cofactorPlan
		var wExtras []int
		for a, ix := range w.ref.Indices {
			if va, ok := own[ix]; ok {
				// Shared coordinate: tile sizes must agree for the outer
				// grids to align.
				if w.tileDims[a] != v.tileDims[va] {
					return 0, false
				}
				plan.sharedV = append(plan.sharedV, va)
				plan.sharedW = append(plan.sharedW, a)
			} else if _, isExtra := extraOwner[ix]; isExtra {
				wExtras = append(wExtras, a)
			}
			// Other indices of W lie below V's fetch level and are
			// marginalized by the projections below.
		}
		if len(wExtras) > 0 {
			plan.count = make(map[uint64]int)
			seen := make(map[uint64]map[uint64]struct{})
			for _, oc := range w.sh.GroupOuter {
				key := projKey(oc, plan.sharedW)
				ext := projKey(oc, wExtras)
				s := seen[key]
				if s == nil {
					s = make(map[uint64]struct{})
					seen[key] = s
				}
				s[ext] = struct{}{}
			}
			for key, s := range seen {
				plan.count[key] = len(s)
			}
		} else {
			plan.exists = make(map[uint64]struct{})
			for _, oc := range w.sh.GroupOuter {
				plan.exists[projKey(oc, plan.sharedW)] = struct{}{}
			}
		}
		plans = append(plans, plan)
	}

	traffic := 0.0
	for t, oc := range v.sh.GroupOuter {
		f := v.sh.GroupFP[t]
		mult := 1.0
		for _, plan := range plans {
			key := projKey(oc, plan.sharedV)
			if plan.count != nil {
				mult *= float64(plan.count[key])
			} else if _, ok := plan.exists[key]; !ok {
				mult = 0
			}
			if mult <= 0 {
				break
			}
		}
		traffic += f * mult
	}
	return traffic, true
}

// projKey packs the coordinates at the given axis positions into a key.
func projKey(oc []int32, axes []int) uint64 {
	var k uint64
	for _, a := range axes {
		k = k<<21 | uint64(oc[a])
	}
	return k
}

// refinedOutput computes the output-traffic estimate for two-factor
// single-contraction kernels from exact cross-operand statistics:
//
//   - the total partial-product count is Σ_e cV(e)·cW(e) over the
//     contracted axis element histograms (exact — it equals the MAC
//     count of the execution),
//   - the write count is Σ over contracted tile slices of
//     cntV(slice)·cntW(slice) (exact for leaf-level writes; an upper
//     bound that is capped for stationary outputs),
//   - within-write reduction divides partials by the Corrs sum over the
//     contraction extent covered by one write (Eq. 20's discount).
//
// Returns (words, true) or (0, false) when preconditions fail.
func (p *Predictor) refinedOutput(views []*tensorView, prod []int, cfg Config, outerN map[string]float64) (float64, bool) {
	e := p.Expr
	if len(prod) != 2 {
		return 0, false
	}
	contracted := e.Contracted()
	if len(contracted) != 1 {
		return 0, false
	}
	ix := contracted[0]
	v, w := views[prod[0]], views[prod[1]]
	if v.sh == nil || w.sh == nil {
		return 0, false
	}
	axV, axW := axisOf(v, ix), axisOf(w, ix)
	if axV < 0 || axW < 0 {
		return 0, false
	}
	if v.st.Dims[axV] != w.st.Dims[axW] || v.tileDims[axV] != w.tileDims[axW] {
		return 0, false
	}

	// Exact total partial products.
	cV, cW := v.st.ElemCounts[axV], w.st.ElemCounts[axW]
	if cV == nil || cW == nil {
		return 0, false
	}
	partials := 0.0
	for i := range cV {
		partials += float64(cV[i]) * float64(cW[i])
	}
	if partials <= 0 {
		return 0, true
	}

	// Exact tile-level pair count along the contracted slices.
	nSlices := v.sh.OuterDims[axV]
	sliceV := make([]int32, nSlices)
	for _, oc := range v.sh.GroupOuter {
		sliceV[oc[axV]]++
	}
	sliceW := make([]int32, nSlices)
	for _, oc := range w.sh.GroupOuter {
		sliceW[oc[axW]]++
	}
	leafPairs := 0.0
	for s := 0; s < nSlices; s++ {
		leafPairs += float64(sliceV[s]) * float64(sliceW[s])
	}

	outDepth := e.FetchLevel(e.Out)
	writes := leafPairs
	if outDepth < len(e.Order)-1 {
		// Output is stationary across deeper loops: distinct out-tile
		// combinations bound the writes.
		bound := 1.0
		for d := 0; d <= outDepth; d++ {
			bound *= outerN[e.Order[d]]
		}
		if bound < writes {
			writes = bound
		}
	}
	if writes < 1 {
		writes = 1
	}

	// Within-write contraction extent: the inner tile span, plus the
	// whole outer range when the contraction loop sits below the
	// output's stationarity level.
	extent := cfg[ix]
	if e.OrderPos(ix) > outDepth {
		extent = v.st.Dims[axV]
	}
	corr := 1.0
	if p.UseCorrs {
		corr = p.corrDivisor(ix, Config{ix: extent}, prod, views)
		if corr < 1 {
			corr = 1
		}
	}
	// The Corrs sum measures how much two contracted slices overlap when
	// both contribute — but a collision also needs both slices to carry
	// data for the same write. Damp the discount by the expected partial
	// density of one write region (λ ≥ 1 keeps the full discount; sparse
	// writes keep most partials distinct).
	outArea := 1.0
	for _, oix := range e.Out.Indices {
		outArea *= float64(cfg[oix])
	}
	lambda := partials / writes / maxFloat(outArea, 1)
	if lambda > 1 {
		lambda = 1
	}
	// How much of the Corrs discount applies depends on whether the two
	// operands select *aligned* structure (A×Aᵀ: every overlap collides)
	// or independent structure (A×random: collisions additionally need
	// density λ). The operands' pair sketches estimate that alignment.
	align := 0.0
	if len(v.st.PairSketch) > axV && len(w.st.PairSketch) > axW {
		align = stats.SketchJaccard(v.st.PairSketch[axV], w.st.PairSketch[axW])
	}
	damp := align + (1-align)*lambda
	reduction := 1 + (corr-1)*damp
	written := partials / reduction
	if written > partials {
		written = partials
	}

	// CSF words: values + leaf coordinates + root fibers per write.
	rootAxis := e.LevelOrder(e.Out)[0]
	rootDim := float64(cfg[e.Out.Indices[rootAxis]])
	fibers := writes * rootDim
	if fibers > written {
		fibers = written
	}
	return 2*written + 2*fibers + 3*writes, true
}

// axisOf returns the view's axis bound to the index variable, or -1.
func axisOf(v *tensorView, ix string) int {
	for a, vix := range v.ref.Indices {
		if vix == ix {
			return a
		}
	}
	return -1
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Calibration residuals (risk-aware optimization, DESIGN.md §18).
//
// The model's absolute traffic level carries a workload-dependent bias
// (metadata aggregation, mean-field terms outside the refinement's
// applicability). Since PR 8 the measurement backend is cheap enough to
// close the loop: a calibration run executes the chosen config, compares
// measured against predicted traffic, and folds the residual into a
// per-workload-class multiplicative bias. Predictions scale uniformly by
// the class bias, so candidate *rankings* (and thus chosen configs) are
// unchanged — only the absolute traffic level converges toward the
// measurement, geometrically: each observation takes a half step in log
// space, so the log-residual halves per calibration run.

// calibMinBias/calibMaxBias bound the learned correction so one
// pathological measurement cannot poison a class.
const (
	calibMinBias = 0.25
	calibMaxBias = 4.0
)

// Calibration accumulates per-workload-class residual biases. The zero
// value is not usable; use NewCalibration. All methods are safe for
// concurrent use.
type Calibration struct {
	mu   sync.Mutex
	bias map[string]float64
	runs map[string]int
}

// NewCalibration returns an empty calibration store (every class bias 1).
func NewCalibration() *Calibration {
	return &Calibration{bias: make(map[string]float64), runs: make(map[string]int)}
}

// Bias returns the multiplicative correction for a workload class; 1 for
// a class never observed.
func (c *Calibration) Bias(class string) float64 {
	if c == nil {
		return 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.bias[class]; ok {
		return b
	}
	return 1
}

// Runs returns how many observations a class has absorbed.
func (c *Calibration) Runs(class string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs[class]
}

// Observe folds one (predicted, measured) traffic pair — predicted
// already includes the current bias — into the class and returns the
// updated bias: bias ← clamp(bias × √(measured/predicted)). With a
// stable workload the residual ratio r = measured/predicted evolves as
// r ← √r, so |log r| halves monotonically run over run.
func (c *Calibration) Observe(class string, predicted, measured float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.bias[class]
	if !ok {
		b = 1
	}
	c.runs[class]++
	if predicted <= 0 || measured <= 0 {
		return b
	}
	ratio := measured / predicted
	b *= math.Sqrt(ratio)
	if b < calibMinBias {
		b = calibMinBias
	}
	if b > calibMaxBias {
		b = calibMaxBias
	}
	c.bias[class] = b
	return b
}
