// Package model implements D2T2's probabilistic memory model (paper §4,
// §5.1): it predicts the input and output traffic of a tiled sparse
// tensor-algebra kernel from per-tensor statistics, without executing it.
//
// For each input tensor V the model computes (Eq. 7/13)
//
//	Traffic_V = SizeTile_V × Σ_{fetch space} P(V accessed)
//
// where the fetch space is every loop level down to V's innermost own
// index and the access probability combines V's own tile occupancy with
// the marginalized existence probabilities of its co-multiplied tensors
// (Eq. 14/15). Output traffic follows Eq. 19/20, with the Corrs statistic
// discounting partial products that reduce together.
//
// Two evaluation modes are provided:
//
//   - ModeExact (default): occupancy statistics are re-evaluated at each
//     candidate shape from the collector's micro-tile summary, so P_tile,
//     PrTileIdx and SizeTile respond to the shape exactly.
//   - ModeAnalytic: the paper-faithful path — base-tiling statistics are
//     extrapolated analytically (P_tile held constant, iteration counts
//     corrected by TileCorrs per Eq. 18). Used in the E-9 ablation.
package model

import (
	"fmt"
	"math"
	"sync"

	"d2t2/internal/checked"
	"d2t2/internal/einsum"
	"d2t2/internal/stats"
)

// Mode selects how statistics respond to candidate shapes.
type Mode int

const (
	ModeExact Mode = iota
	ModeAnalytic
)

// Config assigns a tile size to every index variable of the kernel.
type Config map[string]int

// Clone returns a copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Predictor predicts traffic for one kernel over fixed input statistics.
type Predictor struct {
	Expr  *einsum.Expr
	Stats map[string]*stats.Stats // keyed by input occurrence name
	Mode  Mode
	// UseCorrs enables the Corrs output-reuse discount (Eq. 20). The
	// Fig. 9 ablation turns it off.
	UseCorrs bool
	// DisableRefinement turns off the exact cross-operand input-traffic
	// computation of refine.go, leaving the paper's pure mean-field model
	// even in ModeExact.
	DisableRefinement bool
	// Calib, when non-nil, scales every prediction by the workload class
	// CalibClass's residual bias learned from measurement-backend
	// calibration runs (refine.go). Nil — the default — leaves the raw
	// model untouched.
	Calib      *Calibration
	CalibClass string

	// Shape-evaluation memo: EvalShape is a full pass over the micro-tile
	// summary and the optimizer's sweep re-derives the same snapped shape
	// for many candidates (several RFs snap to the same config, and the
	// fits-check plus Predict both need the shape). The memo is keyed by
	// (occurrence name, snapped dims) and lives for the predictor's
	// lifetime; EvalShape is deterministic and ShapeStats is read-only
	// after construction, so sharing one result across candidates and
	// goroutines is safe. Orders beyond maxMemoOrder bypass the memo.
	shapeMu   sync.Mutex
	shapeMemo map[shapeMemoKey]*stats.ShapeStats
}

// maxMemoOrder bounds the fixed-size dims array used as a comparable memo
// key; higher-order tensors (none exist in the 21-bit tile-key regime)
// fall back to uncached evaluation.
const maxMemoOrder = 8

type shapeMemoKey struct {
	name string
	n    int
	dims [maxMemoOrder]int32
}

// evalShapeMemo returns st.EvalShape(snapped) through the predictor's
// memo. snapped is copied into the key, so callers may reuse the slice.
func (p *Predictor) evalShapeMemo(name string, st *stats.Stats, snapped []int) (*stats.ShapeStats, error) {
	if len(snapped) > maxMemoOrder {
		return st.EvalShape(snapped)
	}
	key := shapeMemoKey{name: name, n: len(snapped)}
	for a, v := range snapped {
		key.dims[a] = checked.Int32(v)
	}
	p.shapeMu.Lock()
	sh, ok := p.shapeMemo[key]
	p.shapeMu.Unlock()
	if ok {
		return sh, nil
	}
	sh, err := st.EvalShape(snapped)
	if err != nil {
		return nil, err
	}
	p.shapeMu.Lock()
	if p.shapeMemo == nil {
		p.shapeMemo = make(map[shapeMemoKey]*stats.ShapeStats)
	}
	if prev, ok := p.shapeMemo[key]; ok {
		// A concurrent evaluation won the race; both results are
		// deterministic and identical — keep the first for stability.
		sh = prev
	} else {
		p.shapeMemo[key] = sh
	}
	p.shapeMu.Unlock()
	return sh, nil
}

// EvalRef evaluates the shape statistics of one input occurrence under
// cfg: tile dims are read off the config in the ref's index order,
// snapped to micro granularity, and evaluated through the predictor's
// shape memo. This is the entry point the optimizer's fits-checks share
// with Predict so each distinct (ref, snapped shape) is computed once per
// predictor.
func (p *Predictor) EvalRef(ref einsum.Ref, cfg Config) (*stats.ShapeStats, error) {
	st := p.Stats[ref.Name]
	if st == nil {
		return nil, fmt.Errorf("model: missing stats for %q", ref.Name)
	}
	dims := make([]int, len(ref.Indices))
	for a, ix := range ref.Indices {
		td, ok := cfg[ix]
		if !ok || td < 1 {
			return nil, fmt.Errorf("model: config misses index %q", ix)
		}
		dims[a] = td
	}
	snapped := st.SnapToMicroInto(dims, dims)
	return p.evalShapeMemo(ref.Name, st, snapped)
}

// New builds a predictor. Every input occurrence of e must have stats.
func New(e *einsum.Expr, st map[string]*stats.Stats) (*Predictor, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	for _, ref := range e.Inputs() {
		s := st[ref.Name]
		if s == nil {
			return nil, fmt.Errorf("model: missing stats for %q", ref.Name)
		}
		if len(s.Dims) != len(ref.Indices) {
			return nil, fmt.Errorf("model: %s has %d indices, stats describe order-%d tensor",
				ref, len(ref.Indices), len(s.Dims))
		}
	}
	return &Predictor{Expr: e, Stats: st, Mode: ModeExact, UseCorrs: true}, nil
}

// Prediction is the model's traffic estimate in words.
type Prediction struct {
	Input  map[string]float64
	Output float64
}

// InputTotal returns the summed predicted input traffic.
func (p *Prediction) InputTotal() float64 {
	s := 0.0
	for _, v := range p.Input {
		s += v
	}
	return s
}

// Total returns predicted input + output traffic.
func (p *Prediction) Total() float64 { return p.InputTotal() + p.Output }

// tensorView is the per-occurrence evaluation of one candidate config:
// the statistics of the tensor at its candidate tile shape.
type tensorView struct {
	ref      einsum.Ref
	st       *stats.Stats
	tileDims []int // per axis
	outerN   []int // outer domain per axis
	sizeTile float64
	maxTile  int
	density  float64
	// pPrefix[l] = P(subtree bound at levels 0..l is non-empty).
	pPrefix []float64
	order   []int // level order (axis per level)
	// sh holds the full shape evaluation in ModeExact (nil in analytic
	// mode); it powers the cross-operand refinement (refine.go).
	sh *stats.ShapeStats
}

// view evaluates one occurrence under cfg.
func (p *Predictor) view(ref einsum.Ref, cfg Config) (*tensorView, error) {
	st := p.Stats[ref.Name]
	tileDims := make([]int, len(ref.Indices))
	for a, ix := range ref.Indices {
		td, ok := cfg[ix]
		if !ok || td < 1 {
			return nil, fmt.Errorf("model: config misses index %q", ix)
		}
		if td > st.Dims[a] {
			td = st.Dims[a]
		}
		tileDims[a] = td
	}
	v := &tensorView{ref: ref, st: st, order: p.Expr.LevelOrder(ref)}
	v.outerN = make([]int, len(tileDims))

	if p.Mode == ModeExact {
		snapped := st.SnapToMicroInto(tileDims, tileDims)
		sh, err := p.evalShapeMemo(ref.Name, st, snapped)
		if err != nil {
			return nil, err
		}
		v.tileDims = snapped
		v.sh = sh
		copy(v.outerN, sh.OuterDims)
		v.sizeTile = sh.SizeTile
		v.maxTile = sh.MaxTile
		v.density = sh.Density
		v.pPrefix = make([]float64, len(tileDims))
		for l := range v.pPrefix {
			v.pPrefix[l] = sh.PPrefix(l)
		}
		return v, nil
	}

	// Analytic mode: hold base statistics, adjust iteration counts.
	v.tileDims = tileDims
	for a, td := range tileDims {
		v.outerN[a] = (st.Dims[a] + td - 1) / td
	}
	v.sizeTile = st.SizeTile
	v.maxTile = st.MaxTile
	v.density = st.DensityBase()
	// P over level prefixes from the base PrTileIdx chain. The paper
	// holds tile probabilities constant for same-area reshapes; when a
	// tile dimension grows past the base tile, slice occupancy is
	// corrected with the TileCorrs-based effective iteration count of
	// Eq. 18: fraction_merged = (E_merged × f / occupied_base) × base.
	v.pPrefix = make([]float64, len(tileDims))
	acc := 1.0
	for l, ax := range v.order {
		pl := st.PrTileIdx[l]
		if f := tileDims[ax] / st.BaseTileDims[ax]; f > 1 {
			if occ := float64(st.OccupiedBase(ax)); occ > 0 {
				mult := st.EOuterMerged(ax, f) * float64(f) / occ
				if mult < 1 {
					mult = 1
				}
				pl = clamp01(pl * mult)
			}
		}
		acc = clamp01(acc * pl)
		v.pPrefix[l] = acc
	}
	return v, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// pTile returns the full-tile non-empty probability.
func (v *tensorView) pTile() float64 { return v.pPrefix[len(v.pPrefix)-1] }

// pBound returns P(∃ unbound . V non-empty) when the loop indices in
// `boundVars` are bound. Bound own indices always form a prefix of the
// tensor's level order; unbound deeper levels are marginalized.
func (v *tensorView) pBound(boundVars map[string]bool) float64 {
	last := -1
	for l, ax := range v.order {
		if boundVars[v.ref.Indices[ax]] {
			last = l
		} else {
			break
		}
	}
	if last < 0 {
		return 1 // nothing bound: tensor certainly has data somewhere
	}
	return v.pPrefix[last]
}

// SnapConfig rounds every index's tile size to the micro granularity the
// statistics were collected at (and clamps to the dimension), matching
// what Predict evaluates in ModeExact. Use it to tile data consistently
// with a prediction. The input config is left untouched; callers on the
// sweep hot path that own their config should use SnapConfigInPlace.
func (p *Predictor) SnapConfig(cfg Config) Config {
	return p.SnapConfigInPlace(cfg.Clone())
}

// SnapConfigInPlace is SnapConfig without the defensive copy: cfg itself
// is MUTATED — every index's tile size is overwritten with its snapped
// value — and returned for chaining. A small fixed-size buffer keeps the
// per-call allocation at zero for tensors up to order maxMemoOrder.
func (p *Predictor) SnapConfigInPlace(cfg Config) Config {
	var buf [maxMemoOrder]int
	for _, ref := range p.Expr.Inputs() {
		st := p.Stats[ref.Name]
		dims := buf[:0]
		if len(ref.Indices) > maxMemoOrder {
			dims = make([]int, 0, len(ref.Indices))
		}
		for a, ix := range ref.Indices {
			td := cfg[ix]
			if td > st.Dims[a] {
				td = st.Dims[a]
			}
			dims = append(dims, td)
		}
		snapped := st.SnapToMicroInto(dims, dims)
		for a, ix := range ref.Indices {
			cfg[ix] = snapped[a]
		}
	}
	return cfg
}

// Predict estimates traffic for one tile configuration.
func (p *Predictor) Predict(cfg Config) (*Prediction, error) {
	e := p.Expr
	views := make([]*tensorView, 0, len(e.Inputs()))
	for _, ref := range e.Inputs() {
		v, err := p.view(ref, cfg)
		if err != nil {
			return nil, err
		}
		views = append(views, v)
	}
	prods := e.ProductsIdx()

	// Outer iteration counts per index variable (consistent across
	// tensors by construction; take from any view).
	outerN := make(map[string]float64)
	for _, v := range views {
		for a, ix := range v.ref.Indices {
			outerN[ix] = float64(v.outerN[a])
		}
	}

	pred := &Prediction{Input: make(map[string]float64)}

	// Input traffic per occurrence (Eq. 13, 16, 17 generalized). For
	// single-product kernels in ModeExact, the exact cross-operand
	// refinement replaces the mean-field product when applicable.
	for vi, v := range views {
		if p.Mode == ModeExact && !p.DisableRefinement && len(prods) == 1 {
			if tr, ok := p.refinedInputTraffic(vi, views, prods[0]); ok {
				pred.Input[v.ref.Name] += tr
				continue
			}
		}
		fetch := e.FetchSpace(v.ref)
		bound := make(map[string]bool, len(fetch))
		points := 1.0
		for _, ix := range fetch {
			bound[ix] = true
			points *= outerN[ix]
		}
		// Access probability: own tile non-empty and, for the best case
		// over summands containing this occurrence, all co-factors have
		// data consistent with the bound indices.
		access := 0.0
		for _, prod := range prods {
			if !containsInt(prod, vi) {
				continue
			}
			pr := v.pTile()
			for _, wi := range prod {
				if wi == vi {
					continue
				}
				pr *= views[wi].pBound(bound)
			}
			access += pr
		}
		access = clamp01(access)
		pred.Input[v.ref.Name] += v.sizeTile * points * access
	}

	// Output traffic: the exact cross-operand path for two-factor
	// single-contraction kernels in ModeExact, Eq. 19/20 otherwise.
	refined := false
	if p.Mode == ModeExact && !p.DisableRefinement && len(prods) == 1 {
		if out, ok := p.refinedOutput(views, prods[0], cfg, outerN); ok {
			pred.Output = out
			refined = true
		}
	}
	if !refined {
		pred.Output = p.predictOutput(cfg, views, prods, outerN)
	}

	// Per-workload-class calibration bias (refine.go): a uniform scale on
	// every traffic term, so rankings between configs are unchanged while
	// the absolute level converges toward the measurement backend. The
	// nil/unseen case multiplies by exactly 1 and is skipped, keeping the
	// uncalibrated path byte-identical.
	if p.Calib != nil {
		//d2t2:ignore floatdeterminism Bias returns the exact literal 1 for nil/unseen classes; skipping that neutral multiply keeps uncalibrated predictions byte-identical
		if f := p.Calib.Bias(p.CalibClass); f != 1 {
			for k := range pred.Input {
				pred.Input[k] *= f
			}
			pred.Output *= f
		}
	}
	return pred, nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// predictOutput estimates output traffic: expected number of output-tile
// writes times expected written-tile size.
func (p *Predictor) predictOutput(cfg Config, views []*tensorView, prods [][]int, outerN map[string]float64) float64 {
	e := p.Expr
	outDepth := e.FetchLevel(e.Out)

	// Store probability per full-domain point: sum over products of the
	// joint tile probability (addition adds probabilities, Eq. 8).
	pLeaf := 0.0
	for _, prod := range prods {
		pr := 1.0
		for _, vi := range prod {
			pr *= views[vi].pTile()
		}
		pLeaf += pr
	}
	pLeaf = clamp01(pLeaf)

	above, below := 1.0, 1.0
	for d, ix := range e.Order {
		if d <= outDepth {
			above *= outerN[ix]
		} else {
			below *= outerN[ix]
		}
	}
	writes := above * clamp01(below*pLeaf)
	if writes <= 0 {
		return 0
	}

	// Expected size of one written tile: for each summand, candidate
	// partial products per output element = Π_{contracted below write}
	// T_ix × Π member densities, discounted by the Corrs reduction sum
	// per contracted variable (Eq. 20).
	outArea := 1.0
	outTile := make(map[string]int)
	for _, ix := range e.Out.Indices {
		outArea *= float64(cfg[ix])
		outTile[ix] = cfg[ix]
	}
	pElem := 0.0
	for _, prod := range prods {
		term := 1.0
		for _, vi := range prod {
			term *= views[vi].density
		}
		for _, ix := range e.Contracted() {
			// The inner tile extent of the contracted index always
			// accumulates within one write (Eq. 20 numerator T_k)...
			term *= float64(cfg[ix])
			// ...and contracted *outer* loops below the output's
			// stationarity level also accumulate on-chip across tiles.
			if e.OrderPos(ix) > outDepth {
				term *= outerN[ix]
			}
			if p.UseCorrs {
				term /= p.corrDivisor(ix, cfg, prod, views)
			}
		}
		pElem += term
	}
	pElem = clamp01(pElem)
	nnz := pElem * outArea

	// Metadata estimate consistent with the CSF footprint of a 2-level
	// (or deeper) output tile: values + leaf coordinates + root fibers.
	rootAxis := e.LevelOrder(e.Out)[0]
	rootDim := float64(cfg[e.Out.Indices[rootAxis]])
	rootFibers := math.Min(rootDim, nnz)
	words := 2*nnz + 2*rootFibers + 3
	return writes * words
}

// corrDivisor returns Σ_{s=0..T_ix} Corrs(W, s) for the product member W
// whose rows are summed by the contraction — the operand carrying the
// contracted index whose non-contracted output index sits deepest in the
// dataflow order (B in SpMSpM-ikj: reducing over k adds rows of B[k,j],
// so collisions are overlaps between B's rows; the paper's §4.4 choice).
func (p *Predictor) corrDivisor(ix string, cfg Config, prod []int, views []*tensorView) float64 {
	e := p.Expr
	outSet := make(map[string]bool)
	for _, o := range e.Out.Indices {
		outSet[o] = true
	}
	best, bestScore, bestAxis := -1, -1, -1
	for _, vi := range prod {
		v := views[vi]
		axis := -1
		score := -1
		for a, vix := range v.ref.Indices {
			if vix == ix {
				axis = a
			}
			if outSet[vix] {
				if pos := e.OrderPos(vix); pos > score {
					score = pos
				}
			}
		}
		if axis >= 0 && score > bestScore {
			best, bestScore, bestAxis = vi, score, axis
		}
	}
	if best < 0 {
		return 1
	}
	return views[best].st.CorrSum(bestAxis, cfg[ix])
}
