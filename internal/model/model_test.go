package model

import (
	"math"
	"math/rand"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/gen"
	"d2t2/internal/stats"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// buildPredictor collects stats for a Gustavson A×B kernel.
func buildPredictor(t *testing.T, e *einsum.Expr, mats map[string]*tensor.COO, baseTile int, microDiv int) *Predictor {
	t.Helper()
	st := make(map[string]*stats.Stats)
	for _, ref := range e.Inputs() {
		m := mats[ref.Name]
		base := make([]int, len(ref.Indices))
		for a := range base {
			base[a] = baseTile
		}
		s, _, err := stats.Collect(m, base, e.LevelOrder(ref), &stats.Options{MicroDiv: microDiv})
		if err != nil {
			t.Fatal(err)
		}
		st[ref.Name] = s
	}
	p, err := New(e, st)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// measureCfg runs the measurement backend at a (snapped) config.
func measureCfg(t *testing.T, e *einsum.Expr, mats map[string]*tensor.COO, cfg Config) *exec.Result {
	t.Helper()
	tens := make(map[string]*tiling.TiledTensor)
	for _, ref := range e.Inputs() {
		dims := make([]int, len(ref.Indices))
		for a, ix := range ref.Indices {
			dims[a] = cfg[ix]
			if d := mats[ref.Name].Dims[a]; dims[a] > d {
				dims[a] = d
			}
		}
		tt, err := tiling.New(mats[ref.Name], dims, e.LevelOrder(ref))
		if err != nil {
			t.Fatal(err)
		}
		tens[ref.Name] = tt
	}
	res, err := exec.Measure(e, tens, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func denseMat(n int) *tensor.COO {
	m := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Append([]int{i, j}, 1)
		}
	}
	return m
}

func TestPredictDenseExact(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	mats := map[string]*tensor.COO{"A": denseMat(16), "B": denseMat(16)}
	p := buildPredictor(t, e, mats, 4, 2)
	cfg := Config{"i": 4, "k": 4, "j": 4}
	pred, err := p.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := measureCfg(t, e, mats, cfg)
	// Dense data: every probability is 1 and the model must be exact on
	// inputs.
	if math.Abs(pred.Input["A"]-float64(got.Input["A"])) > 1e-6 {
		t.Fatalf("A: predicted %v, measured %d", pred.Input["A"], got.Input["A"])
	}
	if math.Abs(pred.Input["B"]-float64(got.Input["B"])) > 1e-6 {
		t.Fatalf("B: predicted %v, measured %d", pred.Input["B"], got.Input["B"])
	}
	// Output: dense 4x4 partial tiles; prediction within 20% (metadata
	// estimate is approximate).
	ratio := pred.Output / float64(got.Output)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("output: predicted %v, measured %d (ratio %v)", pred.Output, got.Output, ratio)
	}
}

func TestPredictGustavsonEquation16And17Shape(t *testing.T) {
	// Hand-checkable diagonal case: A = B = diagonal 32x32, tiles 8.
	// Diagonal tiles only: 4 tiles; PrTileIdx(B,k') = 1 (every k' row of
	// tiles occupied); P_tile(A) = 1/4... verify relative structure: A and
	// B see identical traffic by symmetry.
	e := einsum.SpMSpMIKJ()
	d := tensor.New(32, 32)
	for i := 0; i < 32; i++ {
		d.Append([]int{i, i}, 1)
	}
	mats := map[string]*tensor.COO{"A": d, "B": d.Clone()}
	p := buildPredictor(t, e, mats, 8, 2)
	cfg := Config{"i": 8, "k": 8, "j": 8}
	pred, err := p.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := measureCfg(t, e, mats, cfg)
	// Diagonal×diagonal: A fetched once per diagonal tile; B once per
	// (i',k',j') with all tiles diagonal = once per diagonal position.
	for _, name := range []string{"A", "B"} {
		rel := pred.Input[name] / float64(got.Input[name])
		if rel < 0.9 || rel > 1.1 {
			t.Fatalf("%s: predicted %v, measured %d", name, pred.Input[name], got.Input[name])
		}
	}
}

// TestPredictTracksMeasurementAcrossShapes is the in-package version of
// the paper's model validation (Fig. 5): across reorder factors, the
// predicted total must track measured total within a modest band, and
// relative ordering of clearly-different shapes must be preserved.
func TestPredictTracksMeasurementAcrossShapes(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	cases := map[string]*tensor.COO{
		"banded":   gen.Banded(r, 512, 6, 8),
		"powerlaw": gen.PowerLawGraph(r, 512, 4096, 1.7),
		"uniform":  gen.UniformRandom(r, 512, 512, 4096),
	}
	e := einsum.SpMSpMIKJ()
	for name, a := range cases {
		b := a.Transpose()
		mats := map[string]*tensor.COO{"A": a, "B": b}
		p := buildPredictor(t, e, mats, 32, 8)

		type point struct {
			pred, meas float64
		}
		var pts []point
		for _, rf := range []int{1, 2, 4, 8} {
			cfg := p.SnapConfig(Config{"i": 32 * rf, "k": 32 / rf, "j": 32 * rf})
			pred, err := p.Predict(cfg)
			if err != nil {
				t.Fatal(err)
			}
			meas := measureCfg(t, e, mats, cfg)
			pts = append(pts, point{pred.Total(), float64(meas.Total())})
		}
		// Band check. For weakly correlated inputs (banded, uniform) the
		// model is tight: total within 1.5x. For power-law A×Aᵀ the tile
		// occupancies of A and Aᵀ are strongly correlated and the paper's
		// independence assumption systematically *underestimates* (§5.3,
		// Fig. 5b–d outliers); we only require the underestimate
		// direction there and rely on the ordering check below.
		for i, pt := range pts {
			ratio := pt.pred / pt.meas
			if name == "powerlaw" {
				if ratio > 1.5 {
					t.Fatalf("%s rf=2^%d: overestimate %v vs %v contradicts §5.3", name, i, pt.pred, pt.meas)
				}
				continue
			}
			if ratio < 1/1.5 || ratio > 1.5 {
				t.Fatalf("%s rf=2^%d: predicted %v vs measured %v", name, i, pt.pred, pt.meas)
			}
		}
		// Ordering: the predicted-best shape must be within 40% of the
		// measured-best shape's actual traffic.
		bestPred, bestMeas := 0, 0
		for i, pt := range pts {
			if pt.pred < pts[bestPred].pred {
				bestPred = i
			}
			if pt.meas < pts[bestMeas].meas {
				bestMeas = i
			}
		}
		if pts[bestPred].meas > 1.4*pts[bestMeas].meas {
			t.Fatalf("%s: predicted-best shape rf=2^%d costs %v, true best rf=2^%d costs %v",
				name, bestPred, pts[bestPred].meas, bestMeas, pts[bestMeas].meas)
		}
	}
}

func TestAnalyticModeRuns(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	a := gen.Banded(r, 256, 4, 6)
	mats := map[string]*tensor.COO{"A": a, "B": a.Transpose()}
	e := einsum.SpMSpMIKJ()
	p := buildPredictor(t, e, mats, 16, 4)
	p.Mode = ModeAnalytic
	base, err := p.Predict(Config{"i": 16, "k": 16, "j": 16})
	if err != nil {
		t.Fatal(err)
	}
	if base.Total() <= 0 {
		t.Fatal("analytic mode predicts no traffic")
	}
	// Growing i with banded (correlated) occupancy must reduce B traffic
	// (fewer effective i' iterations re-fetch B).
	grown, err := p.Predict(Config{"i": 64, "k": 16, "j": 16})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Input["B"] >= base.Input["B"] {
		t.Fatalf("B traffic did not drop when i' merged: %v -> %v",
			base.Input["B"], grown.Input["B"])
	}
}

func TestCorrsReducesOutputPrediction(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	a := gen.Banded(r, 256, 3, 6) // strongly shift-correlated
	mats := map[string]*tensor.COO{"A": a, "B": a.Transpose()}
	e := einsum.SpMSpMIKJ()
	p := buildPredictor(t, e, mats, 16, 4)
	cfg := Config{"i": 16, "k": 16, "j": 16}
	with, err := p.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.UseCorrs = false
	without, err := p.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if with.Output >= without.Output {
		t.Fatalf("Corrs discount missing: with=%v without=%v", with.Output, without.Output)
	}
	// Input predictions are unaffected by the Corrs toggle.
	if with.Input["A"] != without.Input["A"] || with.Input["B"] != without.Input["B"] {
		t.Fatal("Corrs toggle changed input predictions")
	}
}

func TestPredictErrors(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	if _, err := New(e, nil); err == nil {
		t.Fatal("missing stats accepted")
	}
	a := denseMat(8)
	mats := map[string]*tensor.COO{"A": a, "B": a.Clone()}
	p := buildPredictor(t, e, mats, 4, 2)
	if _, err := p.Predict(Config{"i": 4, "k": 4}); err == nil {
		t.Fatal("config missing index accepted")
	}
}

func TestPredictTTMAndMTTKRP(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	a3 := gen.RandomTensor3(r, 64, 48, 40, 3000, [3]float64{0, 0, 0.4})
	bm := gen.UniformRandom(r, 48, 40, 200)
	cm := gen.UniformRandom(r, 48, 40, 200)

	// TTM: X(i,j,k) = C(i,j,l)*B(k,l)
	e := einsum.TTM()
	st := make(map[string]*stats.Stats)
	s1, _, err := stats.Collect(a3, []int{8, 8, 8}, mustInput(t, e, "C"), &stats.Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	st["C"] = s1
	s2, _, err := stats.Collect(bm, []int{8, 8}, mustInput(t, e, "B"), &stats.Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	st["B"] = s2
	p, err := New(e, st)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := p.Predict(Config{"i": 8, "j": 8, "l": 8, "k": 8})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Total() <= 0 {
		t.Fatal("TTM prediction empty")
	}
	meas := measureCfg(t, e, map[string]*tensor.COO{"C": a3, "B": bm},
		Config{"i": 8, "j": 8, "l": 8, "k": 8})
	ratio := pred.Total() / float64(meas.Total())
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("TTM prediction off: %v vs %d", pred.Total(), meas.Total())
	}

	// MTTKRP smoke: predictor constructs and returns positive traffic.
	e2 := einsum.MTTKRP3()
	st2 := make(map[string]*stats.Stats)
	sa, _, err := stats.Collect(a3, []int{8, 8, 8}, mustInput(t, e2, "A"), &stats.Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	sb, _, err := stats.Collect(bm, []int{8, 8}, mustInput(t, e2, "B"), &stats.Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	sc, _, err := stats.Collect(cm, []int{8, 8}, mustInput(t, e2, "C"), &stats.Options{MicroDiv: 2})
	if err != nil {
		t.Fatal(err)
	}
	st2["A"], st2["B"], st2["C"] = sa, sb, sc
	p2, err := New(e2, st2)
	if err != nil {
		t.Fatal(err)
	}
	pred2, err := p2.Predict(Config{"i": 8, "k": 8, "l": 8, "j": 8})
	if err != nil {
		t.Fatal(err)
	}
	if pred2.Total() <= 0 {
		t.Fatal("MTTKRP prediction empty")
	}
}

func mustInput(t *testing.T, e *einsum.Expr, name string) []int {
	t.Helper()
	ref, err := e.Input(name)
	if err != nil {
		t.Fatal(err)
	}
	return e.LevelOrder(ref)
}

func TestConfigClone(t *testing.T) {
	c := Config{"i": 1}
	d := c.Clone()
	d["i"] = 2
	if c["i"] != 1 {
		t.Fatal("Clone aliased the map")
	}
}

// TestRefinementImprovesCorrelatedPrediction: the exact cross-operand
// refinement must reduce input-traffic error on A×Aᵀ power-law operands
// relative to the pure mean-field model (which §5.3 reports as
// systematically underestimating).
func TestRefinementImprovesCorrelatedPrediction(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	a := gen.PowerLawGraph(r, 512, 4096, 1.7)
	mats := map[string]*tensor.COO{"A": a, "B": a.Transpose()}
	e := einsum.SpMSpMIKJ()
	p := buildPredictor(t, e, mats, 32, 8)
	cfg := p.SnapConfig(Config{"i": 32, "k": 32, "j": 32})

	refined, err := p.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.DisableRefinement = true
	meanfield, err := p.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meas := measureCfg(t, e, mats, cfg)
	truth := float64(meas.InputTotal())

	errRefined := math.Abs(refined.InputTotal() - truth)
	errMean := math.Abs(meanfield.InputTotal() - truth)
	if errRefined > errMean {
		t.Fatalf("refinement increased input error: %.0f vs %.0f (truth %.0f)",
			errRefined, errMean, truth)
	}
	// On this kernel the refined input estimate is essentially exact.
	if errRefined > 0.02*truth {
		t.Fatalf("refined input traffic off by %.1f%%", 100*errRefined/truth)
	}
}

// TestRefinementFallsBackForMultiOwnerExtras: MTTKRP's B operand has
// extra indices owned by two cofactors; the model must fall back to the
// mean-field path and still produce a finite prediction.
func TestRefinementFallsBackForMultiOwnerExtras(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	a3 := gen.RandomTensor3(r, 48, 40, 32, 1500, [3]float64{0, 0, 0})
	bm := gen.UniformRandom(r, 40, 40, 160)
	cm := gen.UniformRandom(r, 40, 32, 160)
	e := einsum.MTTKRP3()
	st := make(map[string]*stats.Stats)
	for name, m := range map[string]*tensor.COO{"A": a3, "B": bm, "C": cm} {
		ref, _ := e.Input(name)
		base := make([]int, len(ref.Indices))
		for a := range base {
			base[a] = 8
		}
		s, _, err := stats.Collect(m, base, e.LevelOrder(ref), &stats.Options{MicroDiv: 2})
		if err != nil {
			t.Fatal(err)
		}
		st[name] = s
	}
	p, err := New(e, st)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := p.Predict(Config{"i": 8, "k": 8, "l": 8, "j": 8})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Input["B"] <= 0 || math.IsNaN(pred.Input["B"]) || math.IsInf(pred.Input["B"], 0) {
		t.Fatalf("B fallback prediction bad: %v", pred.Input["B"])
	}
}

// TestRefinedOutputAccuracy pins the headline property of the refined
// output estimator: for two-operand single-contraction kernels the
// predicted output traffic lands within 35% of the measured value on
// structurally different matrices and both dataflows (the mean-field
// model is off by 10-100x on some of these).
func TestRefinedOutputAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	cases := map[string]*tensor.COO{
		"grid":    gen.Grid5Point(r, 4096),
		"uniform": gen.UniformRandom(r, 512, 512, 3000),
		"banded":  gen.Banded(r, 512, 6, 8),
	}
	for name, a := range cases {
		for _, kernel := range []*einsum.Expr{einsum.SpMSpMIKJ(), einsum.SpMSpMIJK()} {
			b := a.Transpose()
			if bref, _ := kernel.Input("B"); bref.Indices[0] == "j" {
				b = a.Clone()
			}
			mats := map[string]*tensor.COO{"A": a, "B": b}
			p := buildPredictor(t, kernel, mats, 32, 8)
			cfg := p.SnapConfig(Config{"i": 32, "k": 32, "j": 32})
			pred, err := p.Predict(cfg)
			if err != nil {
				t.Fatal(err)
			}
			meas := measureCfg(t, kernel, mats, cfg)
			ratio := pred.Output / float64(meas.Output)
			if ratio < 0.65 || ratio > 1.35 {
				t.Fatalf("%s %v: refined output %v vs measured %d (ratio %.2f)",
					name, kernel.Order, pred.Output, meas.Output, ratio)
			}
		}
	}
}
