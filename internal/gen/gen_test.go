package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"d2t2/internal/tensor"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestGrid5Point(t *testing.T) {
	m := Grid5Point(rng(), 100)
	if m.Dims[0] != 100 {
		t.Fatalf("dims = %v", m.Dims)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior rows have exactly 5 entries; total close to 5n.
	if m.NNZ() < 4*100 || m.NNZ() > 5*100 {
		t.Fatalf("nnz = %d, want ~5 per row", m.NNZ())
	}
	// Stencil structure: every entry within distance g of diagonal.
	g := 10
	for p := 0; p < m.NNZ(); p++ {
		d := m.Crds[0][p] - m.Crds[1][p]
		if d < -g || d > g {
			t.Fatalf("entry at distance %d from diagonal", d)
		}
	}
}

func TestFEMBlockedSymmetricBanded(t *testing.T) {
	m := FEMBlocked(rng(), 300, 3, 4, 10)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	dense := m.ToDense()
	for p := 0; p < m.NNZ(); p++ {
		i, j := m.Crds[0][p], m.Crds[1][p]
		if dense[j][i] == 0 {
			t.Fatalf("asymmetric entry (%d,%d)", i, j)
		}
		if abs(i-j) > (10+1)*3 {
			t.Fatalf("entry (%d,%d) outside band", i, j)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestCircuitLikeHasDiagonal(t *testing.T) {
	m := CircuitLike(rng(), 200, 2, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	onDiag := 0
	for p := 0; p < m.NNZ(); p++ {
		if m.Crds[0][p] == m.Crds[1][p] {
			onDiag++
		}
	}
	if onDiag != 200 {
		t.Fatalf("diagonal entries = %d, want 200", onDiag)
	}
}

func TestPowerLawGraphSkew(t *testing.T) {
	m := PowerLawGraph(rng(), 1000, 8000, 1.8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Column in-degrees must be skewed: top 10% of columns should hold a
	// disproportionate share of entries.
	colDeg := make([]int, 1000)
	for p := 0; p < m.NNZ(); p++ {
		colDeg[m.Crds[1][p]]++
	}
	top := 0
	for c := 0; c < 100; c++ {
		top += colDeg[c]
	}
	if float64(top) < 0.3*float64(m.NNZ()) {
		t.Fatalf("power-law skew too weak: top-10%% columns hold %d/%d", top, m.NNZ())
	}
}

func TestUniformRandomRect(t *testing.T) {
	m := UniformRandom(rng(), 50, 80, 400)
	if m.Dims[0] != 50 || m.Dims[1] != 80 {
		t.Fatalf("dims = %v", m.Dims)
	}
	if m.NNZ() < 350 || m.NNZ() > 400 { // dedup may remove a few
		t.Fatalf("nnz = %d", m.NNZ())
	}
}

func TestBandedAndDiagonal(t *testing.T) {
	b := Banded(rng(), 100, 3, 4)
	for p := 0; p < b.NNZ(); p++ {
		if abs(b.Crds[0][p]-b.Crds[1][p]) > 3 {
			t.Fatal("banded entry outside band")
		}
	}
	d := Diagonal(rng(), 64)
	if d.NNZ() != 64 {
		t.Fatalf("diagonal nnz = %d", d.NNZ())
	}
}

func TestRandomTensor3(t *testing.T) {
	m := RandomTensor3(rng(), 20, 30, 40, 500, [3]float64{0, 0.5, 1})
	if m.Order() != 3 {
		t.Fatal("not order 3")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Skewed axis 2 should concentrate in the low half.
	low := 0
	for p := 0; p < m.NNZ(); p++ {
		if m.Crds[2][p] < 20 {
			low++
		}
	}
	if float64(low) < 0.55*float64(m.NNZ()) {
		t.Fatalf("axis-2 skew missing: %d/%d in low half", low, m.NNZ())
	}
}

func TestShiftRows(t *testing.T) {
	m := tensor.New(10, 10)
	m.Append([]int{9, 3}, 2)
	m.Append([]int{0, 0}, 1)
	s := ShiftRows(m, 2)
	d := s.ToDense()
	if d[1][3] != 2 || d[2][0] != 1 {
		t.Fatalf("shift wrong: %v", d)
	}
	if !tensor.Equal(m, ShiftRows(s, -2)) {
		t.Fatal("shift round trip failed")
	}
}

func TestDatasetsBuildAndAreDeterministic(t *testing.T) {
	for _, d := range Matrices() {
		m1 := d.Build(64)
		if err := m1.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Label, err)
		}
		if m1.NNZ() == 0 {
			t.Fatalf("%s: empty", d.Label)
		}
		m2 := d.Build(64)
		if !tensor.Equal(m1, m2) {
			t.Fatalf("%s: not deterministic", d.Label)
		}
	}
}

func TestTensorDatasets(t *testing.T) {
	for _, d := range Tensors() {
		m := d.Build(16)
		if m.Order() != 3 {
			t.Fatalf("%s: order %d", d.Label, m.Order())
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Label, err)
		}
	}
}

func TestTable5MatricesFullSize(t *testing.T) {
	for _, d := range Table5Matrices() {
		m := d.Build(1)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Label, err)
		}
		if m.Dims[0] < 1000 {
			t.Fatalf("%s: table-5 matrices are built at full size, got %v", d.Label, m.Dims)
		}
	}
}

func TestByLabel(t *testing.T) {
	d, err := ByLabel("C")
	if err != nil || d.Name != "rma10" {
		t.Fatalf("ByLabel(C) = %v, %v", d.Name, err)
	}
	if _, err := ByLabel("ZZZ"); err == nil {
		t.Fatal("unknown label accepted")
	}
	d2, err := ByLabel("bwm2000")
	if err != nil || d2.Class != "banded chemical" {
		t.Fatalf("ByLabel(bwm2000) = %+v, %v", d2, err)
	}
}

func TestQuickGeneratorsValidate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ms := []*tensor.COO{
			Grid5Point(r, 64+r.Intn(64)),
			FEMBlocked(r, 100+r.Intn(100), 1+r.Intn(4), 1+r.Intn(4), 2+r.Intn(10)),
			PowerLawGraph(r, 100+r.Intn(200), 500, 1.3+r.Float64()),
			NearDiagGraph(r, 100+r.Intn(200), 400, 5+r.Intn(30)),
			UniformRandom(r, 50+r.Intn(50), 50+r.Intn(50), 300),
		}
		for _, m := range ms {
			if m.Validate() != nil || m.NNZ() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBipartiteBlocks(t *testing.T) {
	m := BipartiteBlocks(rng(), 400, 20, 6, 7)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// ~80% of 20 blocks of 42 cells, minus dedup collisions.
	if m.NNZ() < 400 || m.NNZ() > 900 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	// Block structure: the mean number of distinct columns per occupied
	// row stays near the block width (not scattered across the matrix).
	rows := make(map[int]map[int]bool)
	for p := 0; p < m.NNZ(); p++ {
		i := m.Crds[0][p]
		if rows[i] == nil {
			rows[i] = make(map[int]bool)
		}
		rows[i][m.Crds[1][p]] = true
	}
	spanSum, n := 0, 0
	for _, cols := range rows {
		min, max := 1<<30, -1
		for c := range cols {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		// Rows participating in a single block span <= ~2 block widths.
		if max-min <= 14 {
			spanSum++
		}
		n++
	}
	if float64(spanSum) < 0.5*float64(n) {
		t.Fatalf("block locality missing: %d/%d rows compact", spanSum, n)
	}
}
