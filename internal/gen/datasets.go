package gen

import (
	"fmt"
	"math/rand"

	"d2t2/internal/tensor"
)

// Dataset describes one synthetic stand-in for a paper dataset (Table 2 or
// Table 5 of the paper). Build produces the tensor at a given scale: the
// linear dimensions of the paper's original are divided by scale (nnz
// scales with dims so per-row structure is preserved). Scale 1 reproduces
// the paper's sizes; experiments use larger scales to stay laptop-sized.
type Dataset struct {
	Label string // paper label (A..W, or Table 5 name)
	Name  string // original dataset name
	Rows  int    // paper dimensions
	Cols  int
	Depth int // 0 for matrices
	NNZ   int
	Class string // structural class (documentation)
	build func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO
}

// Build synthesizes the dataset at the given scale with a deterministic
// per-dataset seed. Scale must be >= 1.
func (d Dataset) Build(scale int) *tensor.COO {
	if scale < 1 {
		scale = 1
	}
	r := rand.New(rand.NewSource(seedFor(d.Label)))
	rows := maxInt(d.Rows/scale, 64)
	cols := maxInt(d.Cols/scale, 64)
	depth := 0
	if d.Depth > 0 {
		depth = maxInt(d.Depth/scale, 8)
	}
	nnz := maxInt(d.NNZ/scale, 256)
	return d.build(r, rows, cols, depth, nnz)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func seedFor(label string) int64 {
	var s int64 = 7919
	for _, c := range label {
		s = s*131 + int64(c)
	}
	return s
}

// Matrices returns the SuiteSparse stand-ins of Table 2 (labels A..S).
func Matrices() []Dataset {
	mk := func(label, name string, rows, cols, nnz int, class string,
		build func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO) Dataset {
		return Dataset{Label: label, Name: name, Rows: rows, Cols: cols, NNZ: nnz, Class: class, build: build}
	}
	perRow := func(nnz, rows int) int { return maxInt(nnz/maxInt(rows, 1), 1) }

	return []Dataset{
		mk("A", "mc2depi", 525825, 525825, 2100225, "epidemiology grid",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return Grid5Point(r, rows)
			}),
		mk("B", "consph", 83334, 83334, 6010480, "FEM sphere",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return FEMBlocked(r, rows, 3, perRow(nnz, rows)/6, 24)
			}),
		mk("C", "rma10", 46835, 46835, 2329092, "3-D CFD",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return FEMBlocked(r, rows, 4, perRow(nnz, rows)/8, 16)
			}),
		mk("D", "sx-mathoverflow", 24818, 24818, 239978, "temporal graph",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return PowerLawGraph(r, rows, nnz, 1.8)
			}),
		mk("E", "scircuit", 170998, 170998, 958936, "circuit",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return CircuitLike(r, rows, 2, 10)
			}),
		mk("F", "mac_econ_fwd500", 206500, 206500, 1273389, "economics",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return EconLike(r, rows, 40)
			}),
		mk("G", "shipsec1", 140874, 140874, 3568176, "FEM ship",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return FEMBlocked(r, rows, 3, perRow(nnz, rows)/6, 40)
			}),
		mk("H", "pwtk", 217918, 217918, 11524432, "FEM wind tunnel",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return FEMBlocked(r, rows, 6, perRow(nnz, rows)/12, 20)
			}),
		mk("I", "soc-sign-epinions", 131828, 131828, 841372, "social graph",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return PowerLawGraph(r, rows, nnz, 1.9)
			}),
		mk("J", "cop20k_A", 121192, 121192, 2624331, "accelerator physics",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return FEMBlocked(r, rows, 2, perRow(nnz, rows)/4, 120)
			}),
		mk("K", "geom", 7343, 7343, 23796, "geometry graph",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return PowerLawGraph(r, rows, nnz, 1.4)
			}),
		mk("L", "pdb1HYS", 36417, 36417, 4344765, "protein",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return FEMBlocked(r, rows, 8, perRow(nnz, rows)/16, 12)
			}),
		mk("M", "cant", 62451, 62451, 4007383, "FEM cantilever",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return FEMBlocked(r, rows, 3, perRow(nnz, rows)/6, 10)
			}),
		mk("N", "bcsstk17", 10974, 10974, 428650, "stiffness",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return FEMBlocked(r, rows, 4, perRow(nnz, rows)/8, 14)
			}),
		mk("O", "email-EuAll", 265214, 265214, 420045, "email graph",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return PowerLawGraph(r, rows, nnz, 2.1)
			}),
		mk("P", "amazon0302", 262111, 262111, 1234877, "co-purchase",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return NearDiagGraph(r, rows, nnz, 24)
			}),
		mk("Q", "p2p-Gnutella", 62586, 62586, 147892, "p2p graph",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return UniformRandom(r, rows, cols, nnz)
			}),
		mk("R", "soc-Epinions1", 75888, 75888, 508837, "social graph",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return PowerLawGraph(r, rows, nnz, 1.7)
			}),
		mk("S", "sx-askubuntu", 159316, 159316, 596933, "temporal graph",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return PowerLawGraph(r, rows, nnz, 2.0)
			}),
	}
}

// Tensors returns the FROSTT/Facebook 3-tensor stand-ins (labels T..W).
func Tensors() []Dataset {
	mk := func(label, name string, d0, d1, d2, nnz int, skew [3]float64) Dataset {
		return Dataset{Label: label, Name: name, Rows: d0, Cols: d1, Depth: d2, NNZ: nnz,
			Class: "3-tensor",
			build: func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return RandomTensor3(r, rows, cols, depth, nnz, skew)
			}}
	}
	return []Dataset{
		// Chicago-crime3 has tiny trailing modes; keep them unscaled-ish by
		// listing the paper dims (scaling clamps at 8 anyway).
		mk("T", "Chicago-crime3", 6187, 78, 33, 2597198, [3]float64{0.5, 0, 0}),
		mk("U", "Uber3", 183, 1140, 1717, 1117629, [3]float64{0, 0.3, 0.3}),
		mk("V", "Facebook", 1504, 42390, 39986, 737934, [3]float64{0.8, 1.2, 1.2}),
		mk("W", "Nips3", 2483, 2863, 14307, 3101609, [3]float64{0.2, 0.2, 0.6}),
	}
}

// Table5Matrices returns the eight small SuiteSparse matrices used in the
// Opal deployment experiment (paper Table 5), generated at full size.
func Table5Matrices() []Dataset {
	mk := func(name string, rows, cols, nnz int, class string,
		build func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO) Dataset {
		return Dataset{Label: name, Name: name, Rows: rows, Cols: cols, NNZ: nnz, Class: class, build: build}
	}
	return []Dataset{
		mk("bcsstm26", 1922, 1922, 1922, "diagonal mass",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO { return Diagonal(r, rows) }),
		mk("bwm2000", 2000, 2000, 7996, "banded chemical",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO { return Banded(r, rows, 2, 4) }),
		mk("G33", 2000, 2000, 8000, "random 4-regular",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO { return UniformRandom(r, rows, cols, nnz) }),
		mk("N_biocarta", 1922, 1996, 4335, "biology bipartite",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return BipartiteBlocks(r, maxInt(rows, cols), nnz/36, 6, 7)
			}),
		mk("progas", 1650, 1900, 8897, "LP",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return NearDiagGraph(r, maxInt(rows, cols), nnz, 40)
			}),
		mk("qiulp", 1192, 1900, 4492, "LP",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO {
				return NearDiagGraph(r, maxInt(rows, cols), nnz, 60)
			}),
		mk("tols2000", 2000, 2000, 5184, "stability",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO { return Banded(r, rows, 6, 3) }),
		mk("west2021", 2021, 2021, 7310, "chemical eng",
			func(r *rand.Rand, rows, cols, depth, nnz int) *tensor.COO { return CircuitLike(r, rows, 2, 3) }),
	}
}

// ByLabel returns the dataset with the given label from any of the suites.
func ByLabel(label string) (Dataset, error) {
	for _, set := range [][]Dataset{Matrices(), Tensors(), Table5Matrices()} {
		for _, d := range set {
			if d.Label == label || d.Name == label {
				return d, nil
			}
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", label)
}
