// Package gen synthesizes sparse matrices and tensors that stand in for
// the paper's SuiteSparse, FROSTT and Facebook datasets (DESIGN.md §3/§5).
// Each generator targets a structural class — banded FEM, stencil grid,
// circuit, power-law graph, near-diagonal graph, economic model, random
// tensor — because the D2T2 statistics (tile occupancy, within-tile
// density, shift correlations) are determined by that structure rather
// than by exact values.
//
// All generators are deterministic given their *rand.Rand.
package gen

import (
	"math"
	"math/rand"

	"d2t2/internal/tensor"
)

// clampAppend adds (i,j) if in bounds; values are 1+U(0,1) to avoid
// accidental numeric cancellation in Dedup.
func clampAppend(m *tensor.COO, r *rand.Rand, i, j int) {
	if i < 0 || j < 0 || i >= m.Dims[0] || j >= m.Dims[1] {
		return
	}
	m.Append([]int{i, j}, 1+r.Float64())
}

// Grid5Point builds the adjacency structure of a g×g 5-point stencil grid
// (g = floor(sqrt(n))), the structure of epidemiology matrices such as
// mc2depi: ~4-5 entries per row hugging the diagonal plus two side bands
// at distance g.
func Grid5Point(r *rand.Rand, n int) *tensor.COO {
	g := int(math.Sqrt(float64(n)))
	if g < 2 {
		g = 2
	}
	n = g * g
	m := tensor.New(n, n)
	for y := 0; y < g; y++ {
		for x := 0; x < g; x++ {
			i := y*g + x
			clampAppend(m, r, i, i)
			if x+1 < g {
				clampAppend(m, r, i, i+1)
			}
			if x > 0 {
				clampAppend(m, r, i, i-1)
			}
			if y+1 < g {
				clampAppend(m, r, i, i+g)
			}
			if y > 0 {
				clampAppend(m, r, i, i-g)
			}
		}
	}
	m.Dedup()
	return m
}

// FEMBlocked builds a symmetric finite-element-style matrix: nodes carry
// `block` degrees of freedom forming dense blocks; each node couples to
// `neighbors` nearby nodes within `band` node positions. This mimics
// consph/rma10/shipsec1/pwtk/cant/pdb1HYS-type matrices: dense small
// blocks along a diagonal band, strong shift correlation.
func FEMBlocked(r *rand.Rand, n, block, neighbors, band int) *tensor.COO {
	if block < 1 {
		block = 1
	}
	nodes := n / block
	if nodes < 1 {
		nodes = 1
	}
	n = nodes * block
	m := tensor.New(n, n)
	addBlock := func(a, b int) {
		for di := 0; di < block; di++ {
			for dj := 0; dj < block; dj++ {
				clampAppend(m, r, a*block+di, b*block+dj)
			}
		}
	}
	for a := 0; a < nodes; a++ {
		addBlock(a, a)
		for k := 0; k < neighbors; k++ {
			off := 1 + r.Intn(band)
			b := a + off
			if b >= nodes {
				continue
			}
			addBlock(a, b)
			addBlock(b, a)
		}
	}
	m.Dedup()
	return m
}

// CircuitLike builds a scircuit-style matrix: strong diagonal, a few
// local couplings per row, and a handful of dense rows/columns (supply
// rails) that touch a large fraction of the circuit.
func CircuitLike(r *rand.Rand, n, avgDeg, denseLines int) *tensor.COO {
	m := tensor.New(n, n)
	for i := 0; i < n; i++ {
		clampAppend(m, r, i, i)
		deg := 1 + r.Intn(2*avgDeg)
		for k := 0; k < deg; k++ {
			// Mostly local couplings with occasional long hops.
			var j int
			if r.Float64() < 0.85 {
				j = i + r.Intn(2*avgDeg*8+1) - avgDeg*8
			} else {
				j = r.Intn(n)
			}
			clampAppend(m, r, i, j)
		}
	}
	for l := 0; l < denseLines; l++ {
		line := r.Intn(n)
		stride := 3 + r.Intn(12)
		for j := r.Intn(stride); j < n; j += stride {
			clampAppend(m, r, line, j)
			clampAppend(m, r, j, line)
		}
	}
	m.Dedup()
	return m
}

// EconLike builds a mac_econ-style input-output matrix: sector blocks with
// intra-block structure plus a band of inter-sector flows and a few dense
// aggregate columns.
func EconLike(r *rand.Rand, n, sectors int) *tensor.COO {
	m := tensor.New(n, n)
	secSize := n / sectors
	if secSize < 1 {
		secSize = 1
	}
	for i := 0; i < n; i++ {
		clampAppend(m, r, i, i)
		sec := i / secSize
		// Intra-sector couplings.
		for k := 0; k < 3; k++ {
			clampAppend(m, r, i, sec*secSize+r.Intn(secSize))
		}
		// Flows to neighboring sectors.
		for k := 0; k < 2; k++ {
			tgt := sec + 1 + r.Intn(3)
			if tgt*secSize < n {
				clampAppend(m, r, i, tgt*secSize+r.Intn(secSize))
			}
		}
	}
	// Aggregate columns.
	for c := 0; c < sectors/4+1; c++ {
		col := r.Intn(n)
		for i := 0; i < n; i += 2 + r.Intn(6) {
			clampAppend(m, r, i, col)
		}
	}
	m.Dedup()
	return m
}

// PowerLawGraph builds a directed graph adjacency matrix with zipf-like
// in-degree (soc-Epinions/sx-askubuntu/email-EuAll class): hub columns
// receive most edges; rows have small bounded out-degree. alpha controls
// skew (larger = more skewed).
func PowerLawGraph(r *rand.Rand, n, edges int, alpha float64) *tensor.COO {
	m := tensor.New(n, n)
	// Inverse-CDF sampling of a discrete power law over column ids.
	sample := func() int {
		u := r.Float64()
		// x in [1,n], p(x) ~ x^-alpha via inverse transform of the
		// continuous envelope.
		x := math.Pow(float64(n), 1-alpha)*u + (1 - u)
		v := int(math.Pow(x, 1/(1-alpha)))
		if v < 1 {
			v = 1
		}
		if v > n {
			v = n
		}
		return v - 1
	}
	for e := 0; e < edges; e++ {
		i := r.Intn(n)
		j := sample()
		clampAppend(m, r, i, j)
	}
	m.Dedup()
	return m
}

// NearDiagGraph builds an amazon0302-style co-purchase graph: ids are
// assigned by crawl order so most edges land near the diagonal, with a
// geometric spread and a small fraction of long-range links.
func NearDiagGraph(r *rand.Rand, n, edges, spread int) *tensor.COO {
	m := tensor.New(n, n)
	for e := 0; e < edges; e++ {
		i := r.Intn(n)
		var j int
		if r.Float64() < 0.9 {
			// Geometric offset around i.
			off := 1
			for r.Float64() < 0.7 && off < spread {
				off++
			}
			if r.Intn(2) == 0 {
				off = -off
			}
			j = i + off*(1+r.Intn(4))
		} else {
			j = r.Intn(n)
		}
		clampAppend(m, r, i, j)
	}
	m.Dedup()
	return m
}

// UniformRandom builds an Erdős–Rényi-style matrix with the given number
// of entries placed uniformly (p2p-Gnutella class, and the RAND operands
// of Table 3).
func UniformRandom(r *rand.Rand, rows, cols, nnz int) *tensor.COO {
	m := tensor.New(rows, cols)
	for e := 0; e < nnz; e++ {
		clampAppend(m, r, r.Intn(rows), r.Intn(cols))
	}
	m.Dedup()
	return m
}

// Banded builds a matrix with entries only within halfBand of the
// diagonal, filled to the requested per-row count.
func Banded(r *rand.Rand, n, halfBand, perRow int) *tensor.COO {
	m := tensor.New(n, n)
	for i := 0; i < n; i++ {
		clampAppend(m, r, i, i)
		for k := 0; k < perRow-1; k++ {
			off := r.Intn(2*halfBand+1) - halfBand
			clampAppend(m, r, i, i+off)
		}
	}
	m.Dedup()
	return m
}

// Diagonal builds a pure diagonal matrix (bcsstm26 is a diagonal mass
// matrix).
func Diagonal(r *rand.Rand, n int) *tensor.COO {
	m := tensor.New(n, n)
	for i := 0; i < n; i++ {
		clampAppend(m, r, i, i)
	}
	return m
}

// RandomTensor3 builds an order-3 tensor with nnz entries. Axis skews
// bias coordinates toward low indices: skew 0 means uniform; larger skews
// concentrate mass (Chicago-crime/Uber/Nips class).
func RandomTensor3(r *rand.Rand, d0, d1, d2, nnz int, skew [3]float64) *tensor.COO {
	t := tensor.New(d0, d1, d2)
	draw := func(dim int, s float64) int {
		if s <= 0 {
			return r.Intn(dim)
		}
		// Beta(1, 1+s)-like skew toward 0 via power transform.
		return int(math.Pow(r.Float64(), 1+s) * float64(dim))
	}
	for e := 0; e < nnz; e++ {
		c := []int{draw(d0, skew[0]), draw(d1, skew[1]), draw(d2, skew[2])}
		for a, v := range c {
			if v >= t.Dims[a] {
				c[a] = t.Dims[a] - 1
			}
		}
		t.Append(c, 1+r.Float64())
	}
	t.Dedup()
	return t
}

// BipartiteBlocks builds an incidence-like matrix of scattered dense
// blocks (N_biocarta-style biological pathway networks: groups of rows
// sharing groups of columns). Blocks are placed with a bias toward the
// diagonal, giving clustered occupancy rather than hub columns.
func BipartiteBlocks(r *rand.Rand, n, blocks, rowsPer, colsPer int) *tensor.COO {
	m := tensor.New(n, n)
	for b := 0; b < blocks; b++ {
		r0 := r.Intn(n - rowsPer)
		// Column group near the row group with some scatter.
		c0 := r0 + r.Intn(n/4) - n/8
		if c0 < 0 {
			c0 = 0
		}
		if c0 > n-colsPer {
			c0 = n - colsPer
		}
		for i := 0; i < rowsPer; i++ {
			for j := 0; j < colsPer; j++ {
				if r.Float64() < 0.8 {
					clampAppend(m, r, r0+i, c0+j)
				}
			}
		}
	}
	m.Dedup()
	return m
}

// ShiftRows returns a copy of the matrix with every entry's row index
// shifted by s (mod rows). The paper uses shifted copies (A') to build the
// partially correlated validation case of §5.3.
func ShiftRows(m *tensor.COO, s int) *tensor.COO {
	out := tensor.New(m.Dims...)
	for p := 0; p < m.NNZ(); p++ {
		i := (m.Crds[0][p] + s) % m.Dims[0]
		if i < 0 {
			i += m.Dims[0]
		}
		out.Append([]int{i, m.Crds[1][p]}, m.Vals[p])
	}
	out.Dedup()
	return out
}
