package wire

import (
	"math"
	"reflect"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	var b []byte
	b = AppendU8(b, 7)
	b = AppendU32(b, 0xdeadbeef)
	b = AppendU64(b, 1<<63)
	b = AppendI64(b, -42)
	b = AppendF64(b, math.Pi)
	ints := []int{0, -1, math.MaxInt32 + 1}
	i32s := []int32{0, 5, math.MaxInt32}
	u64s := []uint64{1, math.MaxUint64}
	f64s := []float64{0, -0.5, math.Inf(1)}
	bools := []bool{true, false, true}
	b = AppendInts(b, ints)
	b = AppendI32s(b, i32s)
	b = AppendU64s(b, u64s)
	b = AppendF64s(b, f64s)
	b = AppendBools(b, bools)

	r := NewReader(b)
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<63 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Ints(); !reflect.DeepEqual(got, ints) {
		t.Errorf("Ints = %v", got)
	}
	if got := r.I32s(); !reflect.DeepEqual(got, i32s) {
		t.Errorf("I32s = %v", got)
	}
	if got := r.U64s(); !reflect.DeepEqual(got, u64s) {
		t.Errorf("U64s = %v", got)
	}
	if got := r.F64s(); !reflect.DeepEqual(got, f64s) {
		t.Errorf("F64s = %v", got)
	}
	if got := r.Bools(); !reflect.DeepEqual(got, bools) {
		t.Errorf("Bools = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

func TestReaderLatchesFirstError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if got := r.U64(); got != 0 {
		t.Errorf("truncated U64 = %d, want 0", got)
	}
	first := r.Err()
	if first == nil {
		t.Fatalf("no error after truncated read")
	}
	// Every later read returns zero values and keeps the original error.
	if got := r.U8(); got != 0 {
		t.Errorf("U8 after error = %d", got)
	}
	if r.Ints() != nil || r.F64s() != nil {
		t.Errorf("slice reads after error are not nil")
	}
	if r.Err() != first {
		t.Errorf("latched error was replaced")
	}
}

// TestLengthPrefixBounded is the allocation-safety property the fuzz
// targets lean on: a corrupted count can never exceed the bytes that
// actually remain, so decoders never allocate more than the input size.
func TestLengthPrefixBounded(t *testing.T) {
	huge := AppendU64(nil, math.MaxUint64)
	if got := NewReader(huge).Ints(); got != nil {
		t.Errorf("huge count returned a slice of %d", len(got))
	}
	if err := NewReader(huge).Err(); err != nil {
		t.Errorf("Err before any read: %v", err)
	}

	// Count that fits the prefix but not the payload.
	b := AppendU64(nil, 3) // declares 3 u64 elements, provides none
	r := NewReader(b)
	if r.U64s() != nil || r.Err() == nil {
		t.Errorf("short payload accepted")
	}
}

func TestI32sRejectsNegativeEncodings(t *testing.T) {
	b := AppendU64(nil, 1)
	b = AppendU32(b, 0x80000000) // int32(-2147483648): not a valid coordinate
	r := NewReader(b)
	if r.I32s() != nil || r.Err() == nil {
		t.Fatalf("negative int32 encoding accepted")
	}
}
