// Package wire provides the primitive byte-level encoding shared by the
// snapshot codec layers: little-endian fixed-width integers, IEEE-754
// float bits, and length-prefixed slices. Readers are error-latching —
// after the first malformed read every subsequent call returns zero
// values and Err() reports the original problem — so decoders can be
// written as straight-line code and check once at the end.
//
// Slice length prefixes are validated against the bytes actually
// remaining in the buffer before allocation, so a corrupted or
// adversarial length cannot drive a multi-gigabyte allocation (the fuzz
// targets lean on this).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU32 appends v little-endian.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends v little-endian.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendI64 appends v as its two's-complement u64 bits.
func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

// AppendF64 appends the IEEE-754 bits of v.
func AppendF64(b []byte, v float64) []byte { return AppendU64(b, math.Float64bits(v)) }

// AppendInts appends a u64 count followed by each element as i64.
func AppendInts(b []byte, xs []int) []byte {
	b = AppendU64(b, uint64(len(xs)))
	for _, x := range xs {
		b = AppendI64(b, int64(x))
	}
	return b
}

// AppendI32s appends a u64 count followed by each element as 4 bytes.
func AppendI32s(b []byte, xs []int32) []byte {
	b = AppendU64(b, uint64(len(xs)))
	for _, x := range xs {
		b = AppendU32(b, uint32(x))
	}
	return b
}

// AppendU64s appends a u64 count followed by the raw elements.
func AppendU64s(b []byte, xs []uint64) []byte {
	b = AppendU64(b, uint64(len(xs)))
	for _, x := range xs {
		b = AppendU64(b, x)
	}
	return b
}

// AppendF64s appends a u64 count followed by the elements' float bits.
func AppendF64s(b []byte, xs []float64) []byte {
	b = AppendU64(b, uint64(len(xs)))
	for _, x := range xs {
		b = AppendF64(b, x)
	}
	return b
}

// AppendBytes appends a u64 count followed by the raw bytes — the
// framing the cluster peer protocol uses for keys and artifact
// payloads.
func AppendBytes(b []byte, xs []byte) []byte {
	b = AppendU64(b, uint64(len(xs)))
	return append(b, xs...)
}

// AppendBools appends a u64 count followed by one byte per element.
func AppendBools(b []byte, xs []bool) []byte {
	b = AppendU64(b, uint64(len(xs)))
	for _, x := range xs {
		v := uint8(0)
		if x {
			v = 1
		}
		b = append(b, v)
	}
	return b
}

// Reader decodes a buffer written with the Append helpers. Methods after
// a failed read return zero values; Err reports the first failure.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail("wire: truncated input: need %d bytes at offset %d, have %d", n, r.off, r.Remaining())
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// count reads a u64 length prefix and validates it against the bytes
// remaining at elemSize bytes per element.
func (r *Reader) count(elemSize int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()/elemSize) {
		r.fail("wire: length prefix %d exceeds remaining input (%d bytes, %d per element)",
			n, r.Remaining(), elemSize)
		return 0
	}
	return int(n)
}

// Ints reads a slice written by AppendInts. A nil slice is returned for
// count zero.
func (r *Reader) Ints() []int {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.I64())
	}
	return out
}

// I32s reads a slice written by AppendI32s. Every int32 D2T2 serializes
// is a coordinate or a segment offset, so negative encodings (values
// above math.MaxInt32) are rejected as corruption rather than
// reinterpreted.
func (r *Reader) I32s() []int32 {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		u := r.U32()
		if u > math.MaxInt32 {
			r.fail("wire: int32 element %d out of range (%d)", i, u)
			return nil
		}
		out[i] = int32(u)
	}
	return out
}

// U64s reads a slice written by AppendU64s.
func (r *Reader) U64s() []uint64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	return out
}

// F64s reads a slice written by AppendF64s.
func (r *Reader) F64s() []float64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Bytes reads a slice written by AppendBytes. The returned slice
// aliases the reader's buffer — copy it if the buffer outlives the
// read. A nil slice is returned for count zero.
func (r *Reader) Bytes() []byte {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	return r.take(n)
}

// Bools reads a slice written by AppendBools.
func (r *Reader) Bools() []bool {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.U8() != 0
	}
	return out
}
