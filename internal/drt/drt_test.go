package drt

import (
	"math/rand"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/gen"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

func tileAAT(t *testing.T, a *tensor.COO, tile int) (*tiling.TiledTensor, *tiling.TiledTensor) {
	t.Helper()
	ttA, err := tiling.New(a, []int{tile, tile}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ttB, err := tiling.New(a.Transpose(), []int{tile, tile}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return ttA, ttB
}

func TestSimulateErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := gen.UniformRandom(r, 64, 64, 200)
	ttA, ttB := tileAAT(t, a, 8)
	if _, err := Simulate(ttA, ttB, Options{}); err == nil {
		t.Fatal("zero buffer accepted")
	}
	bad, _ := tiling.New(a, []int{4, 4}, []int{0, 1})
	if _, err := Simulate(ttA, bad, Options{BufferWords: 1000}); err == nil {
		t.Fatal("mismatched shared tile accepted")
	}
	t3, _ := tiling.New(gen.RandomTensor3(r, 8, 8, 8, 20, [3]float64{0, 0, 0}),
		[]int{4, 4, 4}, nil)
	if _, err := Simulate(t3, t3, Options{BufferWords: 1000}); err == nil {
		t.Fatal("3-tensor accepted")
	}
}

// TestSimulateMatchesStaticOnTinyBuffer: with a buffer that fits exactly
// one base tile, DRT cannot aggregate and must behave like the static
// schedule: same MACs, A fetched once per tile, B per (i', k', j').
func TestSimulateMatchesStaticOnTinyBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := gen.Banded(r, 128, 4, 6)
	tile := 16
	ttA, ttB := tileAAT(t, a, tile)

	// Buffer exactly one dense-ish base tile: use the max observed
	// footprint so no aggregation is possible beyond single tiles.
	buffer := ttA.MaxFootprint
	if ttB.MaxFootprint > buffer {
		buffer = ttB.MaxFootprint
	}

	drtRes, err := Simulate(ttA, ttB, Options{BufferWords: buffer})
	if err != nil {
		t.Fatal(err)
	}

	e := einsum.SpMSpMIKJ()
	static, err := exec.Measure(e, map[string]*tiling.TiledTensor{"A": ttA, "B": ttB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if drtRes.MACs != static.MACs {
		t.Fatalf("MACs differ: drt %d vs static %d", drtRes.MACs, static.MACs)
	}
	// A is fetched once per aggregate with merged-structure accounting:
	// total A traffic is bounded by the values plus per-row metadata.
	if drtRes.Input["A"] > int64(4*a.NNZ()+8*len(ttA.Tiles)) {
		t.Fatalf("A traffic %d implausibly high", drtRes.Input["A"])
	}
	if drtRes.Input["A"] < int64(a.NNZ()) {
		t.Fatalf("A traffic %d below one pass over the values", drtRes.Input["A"])
	}
}

// TestAggregationReducesBTraffic: with a large buffer DRT groups rows and
// fetches B fewer times than the static schedule.
func TestAggregationReducesBTraffic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := gen.Banded(r, 256, 6, 8)
	ttA, ttB := tileAAT(t, a, 16)
	buffer := 16 * ttA.MaxFootprint

	drtRes, err := Simulate(ttA, ttB, Options{BufferWords: buffer})
	if err != nil {
		t.Fatal(err)
	}
	e := einsum.SpMSpMIKJ()
	static, err := exec.Measure(e, map[string]*tiling.TiledTensor{"A": ttA, "B": ttB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if drtRes.Input["B"] >= static.Input["B"] {
		t.Fatalf("aggregation did not reduce B traffic: drt %d vs static %d",
			drtRes.Input["B"], static.Input["B"])
	}
	if drtRes.MACs != static.MACs {
		t.Fatalf("aggregation changed the computation: %d vs %d MACs", drtRes.MACs, static.MACs)
	}
}

// TestAggregatesRespectBuffer: no aggregate the simulator builds may
// exceed the buffer (single base tiles are exempt by construction).
func TestAggregatesRespectBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := gen.PowerLawGraph(r, 256, 3000, 1.7)
	ttA, ttB := tileAAT(t, a, 16)
	buffer := 4 * ttA.MaxFootprint
	res, err := Simulate(ttA, ttB, Options{BufferWords: buffer})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity on accounting: totals positive, output written.
	if res.Input["A"] <= 0 || res.Input["B"] <= 0 || res.Output <= 0 {
		t.Fatalf("missing traffic: %+v", res)
	}
	// Conservation: A traffic covers at least the values once.
	if res.Input["A"] < int64(a.NNZ()) {
		t.Fatalf("A fetched less than one pass over values: %d < %d", res.Input["A"], a.NNZ())
	}
}

func TestValuesOnlyAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := gen.UniformRandom(r, 64, 64, 300)
	ttA, ttB := tileAAT(t, a, 8)
	res, err := Simulate(ttA, ttB, Options{BufferWords: 10 * ttA.MaxFootprint, ValuesOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// Values-only A traffic equals nnz when each tile is fetched once.
	if res.Input["A"] != int64(a.NNZ()) {
		t.Fatalf("values-only A traffic %d, want %d", res.Input["A"], a.NNZ())
	}
}

func TestDebugCounters(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := gen.Banded(r, 128, 3, 5)
	ttA, ttB := tileAAT(t, a, 8)
	DebugCounters = &Counters{}
	defer func() { DebugCounters = nil }()
	if _, err := Simulate(ttA, ttB, Options{BufferWords: 8 * ttA.MaxFootprint}); err != nil {
		t.Fatal(err)
	}
	c := DebugCounters
	if c.Groups == 0 || c.Spans == 0 || c.SpanK < c.Spans || c.GroupRows < c.Groups {
		t.Fatalf("counters not populated: %+v", c)
	}
}
