// Package drt simulates Dynamic Reflexive Tiling (Odemuyiwa et al.,
// ASPLOS 2023) for the SpMSpM-ikj (Gustavson) dataflow: hardware that
// walks conservatively-tiled micro-tiles and greedily aggregates adjacent
// tiles into larger dynamic tiles that maximize buffer occupancy, while
// keeping the shared (k) dimension span identical for both operands —
// the "reflexive" constraint.
//
// The greedy aggregation modeled here (documented in DESIGN.md §3):
//
//  1. Rows of A-tiles are grouped: consecutive i' rows join a row group
//     while the group's largest prospective aggregate still fits.
//  2. Within a row group, k' tiles aggregate left-to-right while (a) the
//     A aggregate (row group × k-span) fits the A buffer and (b) every
//     B column aggregate over the k-span fits the B buffer.
//  3. Each aggregate is fetched once; B column aggregates are fetched
//     once per row group; partial outputs are produced per
//     (row group, k-span, j') with on-chip reduction over the span.
//
// This captures DRT's two wins over static square tiles — fewer B
// re-fetches (row grouping) and fewer, larger output partials (k-span
// reduction) — with a purely local view of the data, which is exactly
// the limitation the paper exploits (§6.2: "DRT's tile aggregation
// hardware only has a local view of the matrix data").
package drt

import (
	"fmt"
	"sort"

	"d2t2/internal/checked"
	"d2t2/internal/exec"
	"d2t2/internal/tiling"
)

// Options configures the simulator.
type Options struct {
	// BufferWords is the per-operand buffer capacity.
	BufferWords int
	// ValuesOnly switches traffic accounting to nonzeros only.
	ValuesOnly bool
}

// Simulate runs DRT-style dynamic tiling for C = A×B (Gustavson) over
// base-tiled operands. A must be tiled row-major (i,k) and B row-major
// (k,j) with identical square base tiles.
func Simulate(a, b *tiling.TiledTensor, opts Options) (*exec.Traffic, error) {
	if opts.BufferWords <= 0 {
		return nil, fmt.Errorf("drt: BufferWords must be positive")
	}
	if len(a.Dims) != 2 || len(b.Dims) != 2 {
		return nil, fmt.Errorf("drt: Simulate requires matrices")
	}
	if a.TileDims[1] != b.TileDims[0] {
		return nil, fmt.Errorf("drt: shared-dimension tile mismatch %d vs %d", a.TileDims[1], b.TileDims[0])
	}

	tr := &exec.Traffic{Input: make(map[string]int64)}

	// Index A tiles by row, B tiles by (k,j).
	aRows := make(map[int][]*tiling.Tile)
	for _, t := range a.Tiles {
		aRows[t.Outer[0]] = append(aRows[t.Outer[0]], t)
	}
	for _, row := range aRows {
		sort.Slice(row, func(x, y int) bool { return row[x].Outer[1] < row[y].Outer[1] })
	}
	bByK := make(map[int][]*tiling.Tile) // k' -> tiles sorted by j'
	for _, t := range b.Tiles {
		bByK[t.Outer[0]] = append(bByK[t.Outer[0]], t)
	}
	for _, row := range bByK {
		sort.Slice(row, func(x, y int) bool { return row[x].Outer[1] < row[y].Outer[1] })
	}

	// mergedCost estimates the footprint of an aggregated tile: the
	// hardware merges member tiles into one structure with shared
	// metadata, so the cost is that of a single CSF over the union —
	// values + leaf coordinates + root fibers — rather than the sum of
	// member footprints.
	mergedCost := func(nnz, fibers, rowExtent int) int {
		if opts.ValuesOnly {
			return nnz
		}
		if fibers > nnz {
			fibers = nnz
		}
		if fibers > rowExtent {
			fibers = rowExtent
		}
		return 2*nnz + 2*fibers + 3
	}

	rowIDs := make([]int, 0, len(aRows))
	for i := range aRows {
		rowIDs = append(rowIDs, i)
	}
	sort.Ints(rowIDs)

	// Group consecutive occupied rows. A group is feasible while its
	// narrowest processable aggregate — a single k' column across the
	// group's rows — still fits the buffer after merging (the group is
	// then processed span by span, so the whole row panel never needs to
	// be resident at once). This is what lets the dynamic scheme build
	// tall aggregates that slash B re-fetches.
	var groups [][]int
	var cur []int
	colNNZ := make(map[int]int) // k' -> group nnz in that column
	colFib := make(map[int]int) // k' -> summed root fibers
	for _, i := range rowIDs {
		feasible := true
		for _, t := range aRows[i] {
			extent := (len(cur) + 1) * a.TileDims[0]
			k := t.Outer[1]
			if mergedCost(colNNZ[k]+t.NNZ(), colFib[k]+t.CSF.FiberCount(0), extent) > opts.BufferWords {
				feasible = false
				break
			}
		}
		if len(cur) > 0 && !feasible {
			groups = append(groups, cur)
			cur = nil
			clear(colNNZ)
			clear(colFib)
		}
		cur = append(cur, i)
		for _, t := range aRows[i] {
			colNNZ[t.Outer[1]] += t.NNZ()
			colFib[t.Outer[1]] += t.CSF.FiberCount(0)
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}

	if DebugCounters != nil {
		DebugCounters.Groups += len(groups)
		for _, g := range groups {
			DebugCounters.GroupRows += len(g)
		}
	}
	for _, group := range groups {
		// Occupied k' columns for this group, in order.
		kSet := make(map[int][]*tiling.Tile) // k' -> A tiles of the group
		for _, i := range group {
			for _, t := range aRows[i] {
				kSet[t.Outer[1]] = append(kSet[t.Outer[1]], t)
			}
		}
		ks := make([]int, 0, len(kSet))
		for k := range kSet {
			ks = append(ks, k)
		}
		sort.Ints(ks)

		// Greedy k-span aggregation under both buffer constraints, using
		// merged-structure footprints.
		rowExtent := len(group) * a.TileDims[0]
		for lo := 0; lo < len(ks); {
			hi := lo
			aNNZ, aFib := 0, 0
			bColNNZ := make(map[int]int)
			bColFib := make(map[int]int)
			for hi < len(ks) {
				k := ks[hi]
				add, addFib := 0, 0
				for _, t := range kSet[k] {
					add += t.NNZ()
					addFib += t.CSF.FiberCount(0)
				}
				spanExtent := (hi - lo + 1) * b.TileDims[0]
				ok := mergedCost(aNNZ+add, aFib+addFib, rowExtent) <= opts.BufferWords
				if ok {
					for _, t := range bByK[k] {
						j := t.Outer[1]
						if mergedCost(bColNNZ[j]+t.NNZ(), bColFib[j]+t.CSF.FiberCount(0), spanExtent) > opts.BufferWords {
							ok = false
							break
						}
					}
				}
				if !ok && hi > lo {
					break
				}
				// Always take at least one k (a single base tile fits by
				// construction of the conservative base tiling).
				aNNZ += add
				aFib += addFib
				for _, t := range bByK[k] {
					bColNNZ[t.Outer[1]] += t.NNZ()
					bColFib[t.Outer[1]] += t.CSF.FiberCount(0)
				}
				hi++
				if !ok {
					break
				}
			}
			span := ks[lo:hi]
			spanExtent := len(span) * b.TileDims[0]
			if DebugCounters != nil {
				DebugCounters.Spans++
				DebugCounters.SpanK += len(span)
			}

			// Fetch the A aggregate once.
			tr.Input["A"] += int64(mergedCost(aNNZ, aFib, rowExtent))
			// Fetch each occupied B column aggregate once; join for the
			// output partial.
			colIDs := make([]int, 0, len(bColNNZ))
			for j := range bColNNZ {
				colIDs = append(colIDs, j)
			}
			sort.Ints(colIDs)
			for _, j := range colIDs {
				tr.Input["B"] += int64(mergedCost(bColNNZ[j], bColFib[j], spanExtent))
				tr.TileIterations++
				outNNZ, outRows, macs := joinAggregate(a, b, group, span, j)
				tr.MACs += macs
				if outNNZ > 0 {
					tr.OutputWrites++
					tr.OutputNNZ += outNNZ
					if opts.ValuesOnly {
						tr.Output += outNNZ
					} else {
						// CSF footprint: values + leaf coordinates + the
						// exact count of occupied output rows.
						tr.Output += 2*outNNZ + 2*outRows + 3
					}
				}
			}
			lo = hi
		}
	}
	return tr, nil
}

// joinAggregate multiplies the aggregated A tile (rows of group, k-span)
// with the aggregated B column j, returning distinct output coordinates
// and multiply count.
func joinAggregate(a, b *tiling.TiledTensor, group []int, span []int, j int) (int64, int64, int64) {
	// Collect B rows of the span: k (global inner) -> columns.
	bRows := make(map[int][]int32)
	for _, k := range span {
		t := b.Lookup(k, j)
		if t == nil {
			continue
		}
		coo := t.CSF.ToCOO()
		for p := 0; p < coo.NNZ(); p++ {
			gk := k*b.TileDims[0] + coo.Crds[0][p]
			bRows[gk] = append(bRows[gk], checked.Int32(coo.Crds[1][p]))
		}
	}
	var macs int64
	out := make(map[int64]bool)
	rows := make(map[int64]bool)
	for _, i := range group {
		for _, k := range span {
			t := a.Lookup(i, k)
			if t == nil {
				continue
			}
			coo := t.CSF.ToCOO()
			for p := 0; p < coo.NNZ(); p++ {
				gk := k*a.TileDims[1] + coo.Crds[1][p]
				cols := bRows[gk]
				macs += int64(len(cols))
				gi := int64(i*a.TileDims[0] + coo.Crds[0][p])
				if len(cols) > 0 {
					rows[gi] = true
				}
				for _, c := range cols {
					out[gi<<32|int64(c)] = true
				}
			}
		}
	}
	return int64(len(out)), int64(len(rows)), macs
}
