package drt

// DebugCounters is set by tests to observe aggregation decisions.
var DebugCounters *Counters

// Counters records aggregation shape statistics.
type Counters struct {
	Groups, Spans int
	SpanK         int // total k micro-tiles covered by spans
	GroupRows     int
}
