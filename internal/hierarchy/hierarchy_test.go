package hierarchy

import (
	"math/rand"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/gen"
	"d2t2/internal/optimizer"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

func inputsFor(seed int64) map[string]*tensor.COO {
	r := rand.New(rand.NewSource(seed))
	a := gen.Banded(r, 512, 6, 8)
	return map[string]*tensor.COO{"A": a, "B": a.Transpose()}
}

func TestOptimizeAndMeasureTwoLevel(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	inputs := inputsFor(61)
	opts := Options{
		L2BufferWords: tiling.DenseFootprintWords([]int{128, 128}),
		L1BufferWords: tiling.DenseFootprintWords([]int{16, 16}),
	}
	plan, err := Optimize(e, inputs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Both levels configured; L1 dims never exceed L2 dims.
	for _, ix := range e.Order {
		if plan.L1[ix] < 1 || plan.L2[ix] < 1 {
			t.Fatalf("incomplete plan: L1=%v L2=%v", plan.L1, plan.L2)
		}
		if plan.L1[ix] > plan.L2[ix] {
			t.Fatalf("L1 tile %q=%d exceeds L2 %d", ix, plan.L1[ix], plan.L2[ix])
		}
	}

	// Fit guarantees at both levels.
	l2Tiled, err := optimizer.TileAll(e, inputs, plan.L2)
	if err != nil {
		t.Fatal(err)
	}
	for name, tt := range l2Tiled {
		if tt.MaxFootprint > opts.L2BufferWords {
			t.Fatalf("%s L2 tile overflows: %d > %d", name, tt.MaxFootprint, opts.L2BufferWords)
		}
	}

	rep, err := Measure(e, inputs, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs == 0 {
		t.Fatal("no live L2 pairs")
	}
	// The global level re-reads the data the DRAM level loaded at least
	// once per pair use: global traffic >= DRAM input traffic is typical
	// for Gustavson (B re-fetched at both levels); at minimum both levels
	// must report work.
	if rep.DRAM.Total() <= 0 || rep.Global.Total() <= 0 {
		t.Fatalf("missing traffic: dram=%d global=%d", rep.DRAM.Total(), rep.Global.Total())
	}
	// The L1 schedule performs exactly the same multiplications.
	if rep.Global.MACs != rep.DRAM.MACs {
		t.Fatalf("hierarchy changed the computation: %d vs %d MACs", rep.Global.MACs, rep.DRAM.MACs)
	}
}

func TestOptimizeErrors(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	inputs := inputsFor(62)
	if _, err := Optimize(e, inputs, Options{L2BufferWords: 0, L1BufferWords: 10}); err == nil {
		t.Fatal("zero L2 accepted")
	}
	if _, err := Optimize(e, inputs, Options{L2BufferWords: 10, L1BufferWords: 10}); err == nil {
		t.Fatal("L1 >= L2 accepted")
	}
	if _, err := Optimize(einsum.MTTKRP3(), nil, Options{L2BufferWords: 100, L1BufferWords: 10}); err == nil {
		t.Fatal("three-operand kernel accepted")
	}
}

func TestTwoLevelBeatsFlatPEOnGlobalReuse(t *testing.T) {
	// The point of the hierarchy: tiling DRAM→global with big L2 tiles
	// slashes DRAM traffic versus tiling DRAM directly at PE granularity.
	e := einsum.SpMSpMIKJ()
	inputs := inputsFor(63)
	l1 := tiling.DenseFootprintWords([]int{16, 16})
	l2 := tiling.DenseFootprintWords([]int{128, 128})

	plan, err := Optimize(e, inputs, Options{L2BufferWords: l2, L1BufferWords: l1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Measure(e, inputs, plan)
	if err != nil {
		t.Fatal(err)
	}

	flat, err := optimizer.Optimize(e, inputs, optimizer.Options{BufferWords: l1})
	if err != nil {
		t.Fatal(err)
	}
	flatTiled, err := optimizer.TileAll(e, inputs, flat.Config)
	if err != nil {
		t.Fatal(err)
	}
	flatRes, err := measureFlat(e, flatTiled)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DRAM.Total() >= flatRes {
		t.Fatalf("two-level DRAM traffic %d not below flat PE-granularity %d",
			rep.DRAM.Total(), flatRes)
	}
}

func measureFlat(e *einsum.Expr, tiled map[string]*tiling.TiledTensor) (int64, error) {
	res, err := exec.Measure(e, tiled, nil)
	if err != nil {
		return 0, err
	}
	return res.Total(), nil
}
