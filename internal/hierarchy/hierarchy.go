// Package hierarchy extends D2T2 to a two-level memory hierarchy — the
// structure of the Opal CGRA (§6.4: a 1.75 MB global buffer feeding 2 KB
// memory tiles). The tensor is tiled twice:
//
//	DRAM ── L2 tiles (fit the global buffer) ── L1 tiles (fit a PE buffer)
//
// The L2 configuration is optimized by the ordinary D2T2 pipeline
// against DRAM traffic. The L1 configuration is optimized on the
// heaviest live L2 tile pair (the densest subproblem the PEs will see)
// and reused for every pair, matching how a static two-level schedule is
// deployed. Measurement executes both levels: the L2 loop nest for DRAM
// traffic, and the L1 loop nest inside every live L2 pair for
// global-buffer traffic.
//
// The package supports two-operand single-contraction matrix kernels
// (SpMSpM in any dataflow), the scope of the paper's Opal deployment.
package hierarchy

import (
	"fmt"

	"d2t2/internal/einsum"
	"d2t2/internal/exec"
	"d2t2/internal/model"
	"d2t2/internal/optimizer"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// Options sizes the two buffer levels in words.
type Options struct {
	L2BufferWords int // global buffer
	L1BufferWords int // per-PE buffer
}

// Plan is a two-level tiling configuration.
type Plan struct {
	L2 model.Config
	L1 model.Config
	// L2Result retains the full optimizer output for the outer level.
	L2Result *optimizer.Result
}

// Report is the measured two-level traffic.
type Report struct {
	// DRAM is the off-chip traffic of the L2 schedule.
	DRAM exec.Traffic
	// Global is the global-buffer→PE traffic summed over all live L2
	// tile pairs executing the L1 schedule.
	Global exec.Traffic
	// Pairs is the number of live L2 tile pairs executed.
	Pairs int
}

// Optimize produces a two-level plan for kernel e.
func Optimize(e *einsum.Expr, inputs map[string]*tensor.COO, opts Options) (*Plan, error) {
	if opts.L2BufferWords <= 0 || opts.L1BufferWords <= 0 {
		return nil, fmt.Errorf("hierarchy: both buffer sizes must be positive")
	}
	if opts.L1BufferWords >= opts.L2BufferWords {
		return nil, fmt.Errorf("hierarchy: L1 buffer must be smaller than L2")
	}
	names, _, err := kernelShape(e)
	if err != nil {
		return nil, err
	}

	l2, err := optimizer.Optimize(e, inputs, optimizer.Options{BufferWords: opts.L2BufferWords})
	if err != nil {
		return nil, err
	}

	// Pick the heaviest live L2 pair as the L1 optimization subproblem.
	tiled, err := optimizer.TileAll(e, inputs, l2.Config)
	if err != nil {
		return nil, err
	}
	subA, subB, err := heaviestPair(e, tiled[names[0]], tiled[names[1]])
	if err != nil {
		return nil, err
	}
	subInputs := map[string]*tensor.COO{names[0]: subA, names[1]: subB}
	l1, err := optimizer.Optimize(e, subInputs, optimizer.Options{BufferWords: opts.L1BufferWords})
	if err != nil {
		return nil, err
	}
	return &Plan{L2: l2.Config, L1: l1.Config, L2Result: l2}, nil
}

// kernelShape validates the kernel and returns the two operand names and
// the contracted index.
func kernelShape(e *einsum.Expr) ([2]string, string, error) {
	var names [2]string
	if err := e.Validate(); err != nil {
		return names, "", err
	}
	prods := e.ProductsIdx()
	ins := e.Inputs()
	if len(prods) != 1 || len(prods[0]) != 2 {
		return names, "", fmt.Errorf("hierarchy: two-operand product kernels only")
	}
	contracted := e.Contracted()
	if len(contracted) != 1 {
		return names, "", fmt.Errorf("hierarchy: one contracted index required")
	}
	for i, ri := range prods[0] {
		if len(ins[ri].Indices) != 2 {
			return names, "", fmt.Errorf("hierarchy: %s is not a matrix", ins[ri])
		}
		names[i] = ins[ri].Name
	}
	return names, contracted[0], nil
}

// heaviestPair extracts the sub-tensors of the L2 tile pair with the
// largest combined footprint among pairs sharing a contracted slice.
func heaviestPair(e *einsum.Expr, ta, tb *tiling.TiledTensor) (*tensor.COO, *tensor.COO, error) {
	refs := e.Inputs()
	axA := contractedAxis(e, refs[0])
	axB := contractedAxis(e, refs[1])
	if axA < 0 || axB < 0 {
		return nil, nil, fmt.Errorf("hierarchy: contracted axis missing")
	}
	bySlice := make(map[int]*tiling.Tile)
	for _, tile := range tb.Tiles {
		s := tile.Outer[axB]
		if cur := bySlice[s]; cur == nil || tile.Footprint > cur.Footprint {
			bySlice[s] = tile
		}
	}
	var bestA, bestB *tiling.Tile
	best := -1
	for _, tile := range ta.Tiles {
		mate := bySlice[tile.Outer[axA]]
		if mate == nil {
			continue
		}
		if w := tile.Footprint + mate.Footprint; w > best {
			best, bestA, bestB = w, tile, mate
		}
	}
	if bestA == nil {
		return nil, nil, fmt.Errorf("hierarchy: no live L2 tile pair")
	}
	return tileToCOO(ta, bestA), tileToCOO(tb, bestB), nil
}

func contractedAxis(e *einsum.Expr, ref einsum.Ref) int {
	contracted := e.Contracted()[0]
	for a, ix := range ref.Indices {
		if ix == contracted {
			return a
		}
	}
	return -1
}

// tileToCOO materializes a tile's contents as a standalone tensor whose
// dimensions are the tile dimensions.
func tileToCOO(tt *tiling.TiledTensor, tile *tiling.Tile) *tensor.COO {
	sub := tile.CSF.ToCOO()
	out := tensor.New(tt.TileDims...)
	coord := make([]int, len(tt.TileDims))
	for p := 0; p < sub.NNZ(); p++ {
		for a := range coord {
			coord[a] = sub.Crds[a][p]
		}
		out.Append(coord, sub.Vals[p])
	}
	return out
}

// Measure executes the two-level plan: the L2 schedule against DRAM and
// the L1 schedule inside every live L2 pair against the global buffer.
func Measure(e *einsum.Expr, inputs map[string]*tensor.COO, plan *Plan) (*Report, error) {
	names, _, err := kernelShape(e)
	if err != nil {
		return nil, err
	}
	tiled, err := optimizer.TileAll(e, inputs, plan.L2)
	if err != nil {
		return nil, err
	}
	dram, err := exec.Measure(e, tiled, nil)
	if err != nil {
		return nil, err
	}
	rep := &Report{DRAM: dram.Traffic, Global: exec.Traffic{Input: make(map[string]int64)}}

	refs := e.Inputs()
	ta, tb := tiled[names[0]], tiled[names[1]]
	axA, axB := contractedAxis(e, refs[0]), contractedAxis(e, refs[1])
	byB := make(map[int][]*tiling.Tile)
	for _, tile := range tb.Tiles {
		byB[tile.Outer[axB]] = append(byB[tile.Outer[axB]], tile)
	}
	for _, tileA := range ta.Tiles {
		for _, tileB := range byB[tileA.Outer[axA]] {
			subInputs := map[string]*tensor.COO{
				names[0]: tileToCOO(ta, tileA),
				names[1]: tileToCOO(tb, tileB),
			}
			subTiled, err := optimizer.TileAll(e, subInputs, plan.L1)
			if err != nil {
				return nil, err
			}
			res, err := exec.Measure(e, subTiled, nil)
			if err != nil {
				return nil, err
			}
			for name, w := range res.Input {
				rep.Global.Input[name] += w
			}
			rep.Global.Output += res.Output
			rep.Global.OutputWrites += res.OutputWrites
			rep.Global.TileIterations += res.TileIterations
			rep.Global.MACs += res.MACs
			rep.Pairs++
		}
	}
	return rep, nil
}
