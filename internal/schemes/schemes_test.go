package schemes

import (
	"math/rand"
	"testing"

	"d2t2/internal/einsum"
	"d2t2/internal/gen"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

func buf(t int) int { return tiling.DenseFootprintWords([]int{t, t}) }

func inputsAAT(seed int64, build func(r *rand.Rand) *tensor.COO) map[string]*tensor.COO {
	r := rand.New(rand.NewSource(seed))
	a := build(r)
	return map[string]*tensor.COO{"A": a, "B": a.Transpose()}
}

func TestConservative(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	cfg := Conservative(e, buf(32))
	for _, ix := range []string{"i", "k", "j"} {
		if cfg[ix] != 32 {
			t.Fatalf("conservative cfg[%s] = %d, want 32", ix, cfg[ix])
		}
	}
	// Order-3 kernel: the 3-d dense tile bound applies.
	e3 := einsum.TTM()
	cfg3 := Conservative(e3, tiling.DenseFootprintWords([]int{8, 8, 8}))
	if cfg3["i"] != 8 {
		t.Fatalf("3-d conservative tile = %d, want 8", cfg3["i"])
	}
}

func TestPrescientLargerThanConservativeOnSparse(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	inputs := inputsAAT(81, func(r *rand.Rand) *tensor.COO {
		return gen.UniformRandom(r, 1024, 1024, 2000) // very sparse
	})
	cfg, err := Prescient(e, inputs, buf(32))
	if err != nil {
		t.Fatal(err)
	}
	if cfg["i"] <= 32 {
		t.Fatalf("prescient tile %d not larger than conservative 32 on sparse data", cfg["i"])
	}
	// The guarantee: actual max tile fits.
	fp, err := maxTileAt(e, inputs, cfg["i"])
	if err != nil {
		t.Fatal(err)
	}
	if fp > buf(32) {
		t.Fatalf("prescient tile %d overflows: %d > %d", cfg["i"], fp, buf(32))
	}
}

func TestPrescientDenseEqualsConservative(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	dense := tensor.New(128, 128)
	for i := 0; i < 128; i++ {
		for j := 0; j < 128; j++ {
			dense.Append([]int{i, j}, 1)
		}
	}
	inputs := map[string]*tensor.COO{"A": dense, "B": dense.Clone()}
	cfg, err := Prescient(e, inputs, buf(32))
	if err != nil {
		t.Fatal(err)
	}
	// Fully dense data: nothing bigger than the conservative tile fits.
	if cfg["i"] != 32 {
		t.Fatalf("prescient on dense = %d, want 32", cfg["i"])
	}
}

func TestTailorsOverbooks(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	// Power-law data: a few heavy tiles, most tiny — the Tailors sweet
	// spot: big tiles with a bounded overflow fraction.
	inputs := inputsAAT(82, func(r *rand.Rand) *tensor.COO {
		return gen.PowerLawGraph(r, 1024, 6000, 1.9)
	})
	cfg, info, err := Tailors(e, inputs, buf(32), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := Prescient(e, inputs, buf(32))
	if err != nil {
		t.Fatal(err)
	}
	if cfg["i"] < pres["i"] {
		t.Fatalf("tailors tile %d smaller than prescient %d", cfg["i"], pres["i"])
	}
	if info.OverflowRate > 0.10 {
		t.Fatalf("overbooking rate %v exceeds budget", info.OverflowRate)
	}
	if info.TileSize != cfg["i"] {
		t.Fatalf("info.TileSize %d != config %d", info.TileSize, cfg["i"])
	}
}

func TestTailorsDefaultsRate(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	inputs := inputsAAT(83, func(r *rand.Rand) *tensor.COO {
		return gen.UniformRandom(r, 256, 256, 1000)
	})
	_, info, err := Tailors(e, inputs, buf(32), 0)
	if err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Fatal("no info returned")
	}
}

func TestSchemesMissingInput(t *testing.T) {
	e := einsum.SpMSpMIKJ()
	if _, err := Prescient(e, map[string]*tensor.COO{}, buf(32)); err == nil {
		t.Fatal("missing input accepted by Prescient")
	}
	if _, _, err := Tailors(e, map[string]*tensor.COO{}, buf(32), 0.1); err == nil {
		t.Fatal("missing input accepted by Tailors")
	}
}
