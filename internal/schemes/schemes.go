// Package schemes implements the baseline tiling schemes the paper
// evaluates against (§2.3, §6):
//
//   - Conservative: square tiles sized so a fully dense tile fits the
//     buffer (the Extensor-style static default).
//   - Prescient: the largest square tile whose *actual* maximum occupied
//     tile fits the buffer, found by search over the data (the oracle
//     square baseline of the Tailors paper).
//   - Tailors: overbooked square tiles — the largest square size whose
//     tile-footprint distribution overflows the buffer for at most an
//     overbooking-rate fraction of tiles; overflowing tiles pay streaming
//     re-fetch traffic at execution time (exec.Options.InputBufferWords).
//
// The dynamic baseline, DRT, lives in package drt.
package schemes

import (
	"fmt"

	"d2t2/internal/einsum"
	"d2t2/internal/model"
	"d2t2/internal/tensor"
	"d2t2/internal/tiling"
)

// Conservative returns the square configuration whose dense worst case
// fits bufferWords, for every index variable of e.
func Conservative(e *einsum.Expr, bufferWords int) model.Config {
	maxOrder := 0
	for _, ref := range e.Inputs() {
		if len(ref.Indices) > maxOrder {
			maxOrder = len(ref.Indices)
		}
	}
	t := tiling.ConservativeSquare(bufferWords, maxOrder)
	cfg := make(model.Config, len(e.Order))
	for _, ix := range e.Order {
		cfg[ix] = t
	}
	return cfg
}

// maxTileAt tiles every input with square tiles of size t and returns
// the largest tile footprint observed across all inputs.
func maxTileAt(e *einsum.Expr, inputs map[string]*tensor.COO, t int) (int, error) {
	maxFP := 0
	for _, ref := range e.Inputs() {
		m := inputs[ref.Name]
		if m == nil {
			return 0, fmt.Errorf("schemes: missing input %q", ref.Name)
		}
		dims := make([]int, len(ref.Indices))
		for a := range dims {
			dims[a] = t
			if dims[a] > m.Dims[a] {
				dims[a] = m.Dims[a]
			}
		}
		tt, err := tiling.New(m, dims, e.LevelOrder(ref))
		if err != nil {
			return 0, err
		}
		if tt.MaxFootprint > maxFP {
			maxFP = tt.MaxFootprint
		}
	}
	return maxFP, nil
}

// Prescient binary-searches the largest square tile size (between the
// conservative size and the full dimension) whose actual largest tile
// fits bufferWords. It presciently inspects the data, which is why the
// paper treats it as an oracle baseline.
func Prescient(e *einsum.Expr, inputs map[string]*tensor.COO, bufferWords int) (model.Config, error) {
	lo := 0
	for _, ix := range Conservative(e, bufferWords) {
		lo = ix
		break
	}
	hi := lo
	for _, ref := range e.Inputs() {
		m := inputs[ref.Name]
		if m == nil {
			return nil, fmt.Errorf("schemes: missing input %q", ref.Name)
		}
		for _, d := range m.Dims {
			if d > hi {
				hi = d
			}
		}
	}
	// Galloping + binary search on the largest fitting size. Feasibility
	// is monotone in practice (larger tiles hold at least as much data).
	best := lo
	for lo <= hi {
		mid := (lo + hi) / 2
		if mid < 1 {
			mid = 1
		}
		fp, err := maxTileAt(e, inputs, mid)
		if err != nil {
			return nil, err
		}
		if fp <= bufferWords {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	cfg := make(model.Config, len(e.Order))
	for _, ix := range e.Order {
		cfg[ix] = best
	}
	return cfg, nil
}

// TailorsInfo reports the overbooking decision.
type TailorsInfo struct {
	TileSize      int
	OverflowRate  float64 // fraction of non-empty tiles exceeding buffer
	OverflowTiles int
	TotalTiles    int
}

// Tailors finds the largest square tile size whose footprint distribution
// keeps the overflowing-tile fraction at or below rate (the paper's
// Tailors configuration uses 10%). Overbooked tiles are legal: the
// execution backend charges their excess as streaming re-fetch traffic.
func Tailors(e *einsum.Expr, inputs map[string]*tensor.COO, bufferWords int, rate float64) (model.Config, *TailorsInfo, error) {
	if rate <= 0 {
		rate = 0.10
	}
	cons := 0
	for _, v := range Conservative(e, bufferWords) {
		cons = v
		break
	}
	maxDim := cons
	for _, ref := range e.Inputs() {
		m := inputs[ref.Name]
		if m == nil {
			return nil, nil, fmt.Errorf("schemes: missing input %q", ref.Name)
		}
		for _, d := range m.Dims {
			if d > maxDim {
				maxDim = d
			}
		}
	}

	overflowAt := func(t int) (float64, int, int, error) {
		over, total := 0, 0
		for _, ref := range e.Inputs() {
			m := inputs[ref.Name]
			dims := make([]int, len(ref.Indices))
			for a := range dims {
				dims[a] = t
				if dims[a] > m.Dims[a] {
					dims[a] = m.Dims[a]
				}
			}
			tt, err := tiling.New(m, dims, e.LevelOrder(ref))
			if err != nil {
				return 0, 0, 0, err
			}
			total += tt.NumTiles()
			for _, tile := range tt.Tiles {
				if tile.Footprint > bufferWords {
					over++
				}
			}
		}
		if total == 0 {
			return 0, 0, 0, nil
		}
		return float64(over) / float64(total), over, total, nil
	}

	// Bisect for the largest size within the overbooking budget. The
	// overflow fraction grows with tile size in practice (bigger tiles
	// concentrate more data per tile), making bisection sound here.
	lo, hi := cons, maxDim
	best := cons
	info := &TailorsInfo{TileSize: cons}
	for lo <= hi {
		mid := (lo + hi) / 2
		if mid < 1 {
			mid = 1
		}
		frac, over, total, err := overflowAt(mid)
		if err != nil {
			return nil, nil, err
		}
		if frac <= rate {
			best = mid
			info = &TailorsInfo{TileSize: mid, OverflowRate: frac, OverflowTiles: over, TotalTiles: total}
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	cfg := make(model.Config, len(e.Order))
	for _, ix := range e.Order {
		cfg[ix] = best
	}
	return cfg, info, nil
}
